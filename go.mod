module drmap

go 1.24
