// Package drmap is a from-scratch Go reproduction of "DRMap: A Generic
// DRAM Data Mapping Policy for Energy-Efficient Processing of
// Convolutional Neural Networks" (Putra, Hanif, Shafique - DAC 2020).
//
// The package is a facade over the implementation packages:
//
//   - a cycle-accurate DRAM command simulator with DDR3-1600 timing and
//     the SALP-1 / SALP-2 / SALP-MASA subarray-parallel architectures,
//     plus a named backend registry seeded with DDR4/LPDDR3/LPDDR4/HBM2
//     generality presets (internal/dram, internal/memctrl - the
//     Ramulator substitute);
//   - a Micron-power-calc / VAMPIRE-style DRAM energy model
//     (internal/vampire);
//   - the Fig. 1 characterization harness (internal/profile);
//   - CNN workloads, layer partitioning and the four reuse scheduling
//     schemes (internal/cnn, internal/tiling, internal/accel);
//   - the six Table I mapping policies including DRMap itself
//     (internal/mapping);
//   - the analytical EDP model (Eq. 2-3) and the DSE of Algorithm 1
//     (internal/core);
//   - paper-style table renderers (internal/report).
//
// # Quick start
//
//	profiles, _ := drmap.CharacterizeAll()
//	ev, _ := drmap.NewEvaluator(profiles[0], drmap.TableII(), 1)
//	res, _ := drmap.RunDSE(drmap.AlexNet(), ev, drmap.Schedules(), drmap.TableIPolicies())
//	fmt.Println(drmap.RenderDSE(res))
package drmap

import (
	"context"
	"fmt"
	"io"

	"drmap/internal/accel"
	"drmap/internal/cluster"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/memctrl"
	"drmap/internal/profile"
	"drmap/internal/report"
	"drmap/internal/service"
	"drmap/internal/tiling"
	"drmap/internal/trace"
	"drmap/internal/vampire"
)

// DRAM architecture and configuration types.
type (
	// Arch identifies a DRAM controller capability (DDR3-style or a
	// SALP variant); the identity of a DRAM system is a Backend.
	Arch = dram.Arch
	// Backend is a registered DRAM system: ID, display name, config.
	Backend = dram.Backend
	// DRAMConfig bundles geometry, timing and power of a DRAM system.
	DRAMConfig = dram.Config
	// Geometry is the channel/rank/chip/bank/subarray/row/column shape.
	Geometry = dram.Geometry
	// Timing holds the JEDEC timing parameters in clock cycles.
	Timing = dram.Timing
	// Power holds IDD currents and related electrical parameters.
	Power = dram.Power
	// Address identifies one burst-sized DRAM location.
	Address = dram.Address
)

// Architectures evaluated by the paper.
const (
	DDR3     = dram.DDR3
	SALP1    = dram.SALP1
	SALP2    = dram.SALP2
	SALPMASA = dram.SALPMASA
)

// Archs lists the four architectures in paper order.
func Archs() []Arch { return dram.Archs }

// RegisterBackend adds a DRAM system to the backend registry, making
// it addressable by every tool, example and service endpoint.
func RegisterBackend(b Backend) error { return dram.Register(b) }

// LookupBackend returns the backend registered under id.
func LookupBackend(id string) (Backend, bool) { return dram.Lookup(id) }

// Backends lists every registered DRAM backend sorted by ID: the four
// paper architectures, the generality presets (DDR4-2400, LPDDR3-1600,
// LPDDR4-3200, HBM2-PC) and any runtime registrations, in one
// deterministic listing.
func Backends() []Backend { return dram.Backends() }

// PaperBackends lists the four paper architectures in figure order.
func PaperBackends() []Backend { return dram.PaperBackends() }

// DDR3Config returns the paper's DDR3-1600 2Gb x8 configuration.
func DDR3Config() DRAMConfig { return dram.DDR3Config() }

// SALP1Config returns the SALP-1 configuration.
func SALP1Config() DRAMConfig { return dram.SALP1Config() }

// SALP2Config returns the SALP-2 configuration.
func SALP2Config() DRAMConfig { return dram.SALP2Config() }

// SALPMASAConfig returns the SALP-MASA configuration.
func SALPMASAConfig() DRAMConfig { return dram.SALPMASAConfig() }

// ConfigFor returns the preset configuration of an architecture.
func ConfigFor(a Arch) DRAMConfig { return dram.ConfigFor(a) }

// DDR4Config returns the DDR4-2400 generality preset.
func DDR4Config() DRAMConfig { return dram.DDR4Config() }

// LPDDR3Config returns the LPDDR3-1600 generality preset.
func LPDDR3Config() DRAMConfig { return dram.LPDDR3Config() }

// LPDDR4Config returns the LPDDR4-3200 generality preset.
func LPDDR4Config() DRAMConfig { return dram.LPDDR4Config() }

// HBM2Config returns the HBM2 pseudo-channel generality preset.
func HBM2Config() DRAMConfig { return dram.HBM2Config() }

// Workload types.
type (
	// Layer is one CNN layer's tensor geometry.
	Layer = cnn.Layer
	// Network is an ordered list of layers.
	Network = cnn.Network
	// AccelConfig is the TPU-like accelerator of Table II.
	AccelConfig = accel.Config
)

// AlexNet returns the paper's evaluation workload.
func AlexNet() Network { return cnn.AlexNet() }

// VGG16 returns the VGG-16 extension workload.
func VGG16() Network { return cnn.VGG16() }

// LeNet5 returns a small smoke-test workload.
func LeNet5() Network { return cnn.LeNet5() }

// ResNet18 returns the ResNet-18 extension workload.
func ResNet18() Network { return cnn.ResNet18() }

// TableII returns the paper's accelerator configuration.
func TableII() AccelConfig { return accel.TableII() }

// Partitioning and scheduling types.
type (
	// Tiling fixes the outer-loop step sizes (layer partitioning).
	Tiling = tiling.Tiling
	// Schedule is a DRAM access scheduling scheme (reuse priority).
	Schedule = tiling.Schedule
	// Traffic aggregates DRAM element volumes of a layer.
	Traffic = tiling.Traffic
)

// The four scheduling schemes of the paper.
const (
	IfmsReuse     = tiling.IfmsReuse
	WghsReuse     = tiling.WghsReuse
	OfmsReuse     = tiling.OfmsReuse
	AdaptiveReuse = tiling.AdaptiveReuse
)

// Schedules lists the four scheduling schemes in paper order.
func Schedules() []Schedule { return tiling.Schedules }

// EnumerateTilings returns every divisor-aligned partitioning of the
// layer that fits the accelerator's buffers.
func EnumerateTilings(l Layer, cfg AccelConfig) []Tiling { return tiling.Enumerate(l, cfg) }

// EstimateTraffic computes the DRAM traffic of a layer under a tiling
// and schedule.
func EstimateTraffic(l Layer, t Tiling, s Schedule, batch int) Traffic {
	return tiling.Estimate(l, t, s, batch)
}

// Mapping policy types.
type (
	// MappingPolicy is a DRAM data-mapping loop order.
	MappingPolicy = mapping.Policy
	// AccessCounts splits a tile stream into the four access categories.
	AccessCounts = mapping.Counts
)

// TableIPolicies returns the six mapping policies of the paper's
// Table I.
func TableIPolicies() []MappingPolicy { return mapping.TableI() }

// DRMapPolicy returns the paper's proposed policy (Mapping-3).
func DRMapPolicy() MappingPolicy { return mapping.DRMap() }

// DefaultPolicy returns the commodity subarray-unaware mapping.
func DefaultPolicy() MappingPolicy { return mapping.Default() }

// Simulation and characterization types.
type (
	// Controller is the cycle-accurate DRAM memory controller.
	Controller = memctrl.Controller
	// ControllerOptions tune the controller (page policy, refresh...).
	ControllerOptions = memctrl.Options
	// SimResult is a controller run's command log and cycle accounting.
	SimResult = memctrl.Result
	// Request is one burst-sized DRAM transaction.
	Request = trace.Request
	// EnergyModel is the VAMPIRE-style DRAM energy model.
	EnergyModel = vampire.Model
	// EnergyBreakdown itemizes a run's energy in joules.
	EnergyBreakdown = vampire.Breakdown
	// Profile is a Fig. 1 characterization of one architecture.
	Profile = profile.Profile
	// AccessKind classifies a DRAM access by its row-buffer condition.
	AccessKind = trace.AccessKind
	// AccessCost is a per-access (cycles, energy) pair.
	AccessCost = profile.Cost
)

// The five access conditions of Fig. 1.
const (
	AccessRowHit         = trace.AccessRowHit
	AccessRowMiss        = trace.AccessRowMiss
	AccessRowConflict    = trace.AccessRowConflict
	AccessSubarraySwitch = trace.AccessSubarraySwitch
	AccessBankSwitch     = trace.AccessBankSwitch
)

// NewController builds a cycle-accurate controller for a configuration.
func NewController(cfg DRAMConfig, opt ControllerOptions) (*Controller, error) {
	return memctrl.New(cfg, opt)
}

// NewEnergyModel builds the energy model for a configuration.
func NewEnergyModel(cfg DRAMConfig) (*EnergyModel, error) { return vampire.New(cfg) }

// Characterize measures one configuration's per-access-condition costs
// (the paper's Fig. 1).
func Characterize(cfg DRAMConfig) (*Profile, error) { return profile.Characterize(cfg) }

// CharacterizeBackend measures one registered DRAM system; the profile
// carries the backend identity for labeling.
func CharacterizeBackend(b Backend) (*Profile, error) { return profile.CharacterizeBackend(b) }

// CharacterizeAll measures every registered backend in ID order (the
// deterministic Backends listing).
func CharacterizeAll() ([]*Profile, error) { return profile.CharacterizeAll() }

// CharacterizePaper measures the four paper architectures in figure
// order - the set the paper's figures are defined over.
func CharacterizePaper() ([]*Profile, error) { return profile.CharacterizePaper() }

// EDP model and DSE types.
type (
	// Evaluator prices layer/tiling/schedule/mapping combinations.
	Evaluator = core.Evaluator
	// LayerEDP is the modeled DRAM cost of a layer.
	LayerEDP = core.LayerEDP
	// DSEResult is Algorithm 1's outcome for a network.
	DSEResult = core.DSEResult
	// Fig9Point is one bar of the paper's Fig. 9.
	Fig9Point = core.Fig9Point
	// LayerSpec bundles the inputs of a trace-driven layer simulation.
	LayerSpec = core.LayerSpec
)

// The count/price split: a design point's access-count structure is
// independent of the DRAM device's characterization - only the
// per-access costs change (DRMap Sec. V-B). Evaluator.CountScheduleColumn
// computes a grid column's counts once; Evaluator.PriceCells and
// Evaluator.MinOverColumn reprice them under any evaluator whose
// CountKey matches (the paper's four architectures share one), with
// results bit-for-bit identical to the direct scan. The service's
// count-plan cache, Fig9Series and the registry sweep are built on it.
type (
	// CellCounts is the read/write access-count structure of one
	// (tiling, policy) design point.
	CellCounts = core.CellCounts
	// CountColumn is the backend-independent count plan of one
	// (layer, schedule) grid column.
	CountColumn = core.CountColumn
	// CountKey is the projection of an evaluator its counts depend on;
	// equal keys mean interchangeable count plans.
	CountKey = core.CountKey
	// FlatColumn is a CountColumn vectorized into packed per-category
	// planes (CountColumn.Flatten); Evaluator.PriceFlat/PriceFlatInto
	// reprice it as a branch-light linear scan, bit-for-bit equal to
	// PriceCells. The service's plan cache stores columns in this form.
	FlatColumn = core.FlatColumn
)

// SimulateLayer prices a layer by running its tile streams through the
// cycle-accurate controller and energy model instead of the analytical
// category counts - the validation path of the paper's tool flow.
func SimulateLayer(cfg DRAMConfig, pol MappingPolicy, spec LayerSpec, bytesPerElement int) (LayerEDP, error) {
	return core.SimulateLayer(cfg, pol, spec, bytesPerElement)
}

// Multi-layer cycle-accurate simulation on the discrete-event engines.
type (
	// SimLayerResult is one layer's simulated outcome: exact cycles and
	// energy, tile-group and request counts, and the per-kind DRAM
	// command census.
	SimLayerResult = core.SimLayerResult
	// SimOptions tune SimulateNetwork: controller knobs, the
	// serial/parallel engine choice, and a per-layer completion hook.
	SimOptions = core.SimOptions
)

// SimulateNetwork simulates every layer of a workload cycle-accurately
// on the internal/sim discrete-event kernel. With opt.Parallel the
// layers' tile-stream controllers run concurrently across cores -
// bit-for-bit identical to the serial engine, only faster.
func SimulateNetwork(ctx context.Context, cfg DRAMConfig, pol MappingPolicy, specs []LayerSpec, opt SimOptions) ([]SimLayerResult, error) {
	return core.SimulateNetwork(ctx, cfg, pol, specs, opt)
}

// TotalLayerName labels Fig. 9's aggregate pseudo-layer.
const TotalLayerName = core.TotalLayerName

// NewEvaluator builds an EDP evaluator from a characterization profile.
func NewEvaluator(p *Profile, cfg AccelConfig, batch int) (*Evaluator, error) {
	return core.NewEvaluator(p, cfg, batch)
}

// RunDSE executes Algorithm 1 over a network.
func RunDSE(net Network, ev *Evaluator, schedules []Schedule, policies []MappingPolicy) (*DSEResult, error) {
	return core.RunDSE(net, ev, schedules, policies)
}

// Objective selects what the DSE minimizes (EDP, energy or delay).
type Objective = core.Objective

// The supported DSE objectives.
const (
	MinimizeEDP    = core.MinimizeEDP
	MinimizeEnergy = core.MinimizeEnergy
	MinimizeDelay  = core.MinimizeDelay
)

// RunDSEObjective is RunDSE under an explicit optimization objective.
func RunDSEObjective(net Network, ev *Evaluator, schedules []Schedule, policies []MappingPolicy, obj Objective) (*DSEResult, error) {
	return core.RunDSEObjective(net, ev, schedules, policies, obj)
}

// Fig9Series regenerates one subplot of the paper's Fig. 9.
func Fig9Series(net Network, s Schedule, evs []*Evaluator, policies []MappingPolicy) ([]Fig9Point, error) {
	return core.Fig9Series(net, s, evs, policies)
}

// DRMapImprovement returns DRMap's EDP improvement over the worst
// mapping for one architecture (the paper's headline result).
func DRMapImprovement(points []Fig9Point, arch Arch) (float64, error) {
	return core.DRMapImprovement(points, arch)
}

// SALPImprovement returns a SALP architecture's EDP improvement over
// DDR3 for one mapping policy (Key Observation 4).
func SALPImprovement(points []Fig9Point, policyID int, arch Arch) (float64, error) {
	return core.SALPImprovement(points, policyID, arch)
}

// EnergyOfRun computes the energy breakdown of a controller run under
// an energy model, wiring the controller's cycle accounting into the
// model's activity summary. It works from the run's per-kind command
// census, so it needs no retained command log.
func EnergyOfRun(model *EnergyModel, sim *SimResult) EnergyBreakdown {
	act := vampire.ActivityFromCounts(sim.KindCounts, sim.DeviceActiveCycles, sim.TotalCycles)
	act.ExtraOpenSubarrayCycles = sim.ExtraOpenSubarrayCycles
	return model.Energy(act)
}

// WriteRequests encodes a request stream in the text trace format.
func WriteRequests(w io.Writer, reqs []Request) error { return trace.WriteRequests(w, reqs) }

// ReadRequests decodes a request stream from the text trace format.
func ReadRequests(r io.Reader) ([]Request, error) { return trace.ReadRequests(r) }

// WriteCommands encodes a controller command log as text.
func WriteCommands(w io.Writer, cmds []Command) error { return trace.WriteCommands(w, cmds) }

// Command is one DRAM command with its issue cycle.
type Command = trace.Command

// Report renderers.

// RenderFig1 renders the characterization table.
func RenderFig1(profiles []*Profile) string { return report.Fig1Table(profiles) }

// RenderTableI renders the six mapping policies.
func RenderTableI() string { return report.TableI() }

// RenderFig9 renders one Fig. 9 subplot as a table.
func RenderFig9(points []Fig9Point, schedule string) string {
	return report.Fig9Table(points, schedule)
}

// RenderImprovements renders the headline improvement percentages.
func RenderImprovements(points []Fig9Point) string { return report.ImprovementsTable(points) }

// RenderSALPGains renders Key Observation 4's table.
func RenderSALPGains(points []Fig9Point) string { return report.SALPGainsTable(points) }

// RenderDSE renders Algorithm 1's per-layer outcome.
func RenderDSE(res *DSEResult) string { return report.DSETable(res) }

// RenderFig9Chart renders one Fig. 9 subplot as a log-scale bar chart,
// the way the paper draws it.
func RenderFig9Chart(points []Fig9Point, schedule string) string {
	return report.Fig9Chart(points, schedule)
}

// Multi-channel placements (DRMap flowchart step 5 and its parallel
// generalization).

// RankSpillAddresses lays a tile out rank by rank (the literal step 5).
func RankSpillAddresses(p MappingPolicy, bursts int64, g Geometry) []Address {
	return mapping.RankSpill(p, bursts, g)
}

// ChannelInterleavedAddresses spreads a tile round-robin across all
// channel/rank units, exploiting channel-level parallelism.
func ChannelInterleavedAddresses(p MappingPolicy, bursts int64, g Geometry) []Address {
	return mapping.ChannelInterleaved(p, bursts, g)
}

// Evaluators builds one evaluator per paper architecture, sharing an
// accelerator configuration - the common setup for Fig. 9 runs. Use
// BackendEvaluator to price any other registered backend.
func Evaluators(cfg AccelConfig, batch int) ([]*Evaluator, error) {
	profiles, err := CharacterizePaper()
	if err != nil {
		return nil, err
	}
	evs := make([]*Evaluator, 0, len(profiles))
	for _, p := range profiles {
		ev, err := NewEvaluator(p, cfg, batch)
		if err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	return evs, nil
}

// Concurrent serving (package service, the engine behind drmap-serve).
type (
	// Service is the concurrent, cacheable DSE/characterization engine.
	Service = service.Service
	// ServiceOptions tune a Service (workers, cache bound, accelerator).
	ServiceOptions = service.Options
	// ServiceCacheStats snapshots the result cache counters.
	ServiceCacheStats = service.CacheStats
	// DSERequest / DSEResponse are the JSON shapes of /api/v1/dse.
	DSERequest  = service.DSERequest
	DSEResponse = service.DSEResponse
	// CharacterizeRequest / CharacterizeResponse are the JSON shapes of
	// /api/v1/characterize.
	CharacterizeRequest  = service.CharacterizeRequest
	CharacterizeResponse = service.CharacterizeResponse
)

// NewService builds the concurrent DSE/characterization service.
func NewService(opt ServiceOptions) *Service { return service.New(opt) }

// Job-oriented serving (the /api/v2/jobs surface): asynchronous
// submit, status + progress, NDJSON/SSE event streaming, cancel. The
// v1 endpoints are synchronous wrappers over the same JobManager.
// Remote consumers should prefer the typed SDK in package
// drmap/client.
type (
	// JobManager owns the v2 job lifecycle around a Service.
	JobManager = service.JobManager
	// JobManagerOptions tune a JobManager (store bound, TTL, clock).
	JobManagerOptions = service.JobManagerOptions
	// JobRequest is the POST /api/v2/jobs body (kind + payload).
	JobRequest = service.JobRequest
	// JobView is a job as the API reports it.
	JobView = service.JobView
	// JobEvent is one entry of a job's streamed event log.
	JobEvent = service.JobEvent
	// JobKind / JobState name the workload kinds and lifecycle states.
	JobKind  = service.JobKind
	JobState = service.JobState
)

// NewJobManager builds the v2 job manager around a Service; install it
// via ServerOptions.Jobs (or let NewHandler build a default one).
func NewJobManager(svc *Service, opt JobManagerOptions) *JobManager {
	return service.NewJobManager(svc, opt)
}

// Distributed serving (package cluster): a coordinator shards the DSE
// column grid over HTTP workers and merges results bit-for-bit equal to
// serial RunDSE; see cmd/drmap-serve -role and cmd/drmap-worker.
type (
	// DSEJob is a fully resolved DSE run - the unit a cluster
	// distributes and the input of a custom ServiceOptions.Runner.
	DSEJob = service.DSEJob
	// BatchRequest / BatchResponse are the JSON shapes of /api/v1/batch.
	BatchRequest  = service.BatchRequest
	BatchResponse = service.BatchResponse
	// ServiceMetric is one GET /metrics counter.
	ServiceMetric = service.Metric
	// ClusterCoordinator shards DSE jobs across registered workers; it
	// implements the service's DSERunner.
	ClusterCoordinator = cluster.Coordinator
	// ClusterCoordinatorOptions tune a coordinator (TTL, shard sizing).
	ClusterCoordinatorOptions = cluster.CoordinatorOptions
	// ClusterWorker executes shards on a local Service and heartbeats
	// its registration to a coordinator.
	ClusterWorker = cluster.Worker
	// ClusterWorkerOptions tune a worker (identity, URLs, heartbeat).
	ClusterWorkerOptions = cluster.WorkerOptions
	// ClusterWorkerInfo identifies a registered worker in a
	// coordinator's membership.
	ClusterWorkerInfo = cluster.WorkerInfo
)

// ErrNoWorkers marks a distributed run attempted with no live workers;
// a Service configured with a cluster Runner answers such jobs from its
// local pool.
var ErrNoWorkers = service.ErrNoWorkers

// NewClusterCoordinator builds a DSE shard coordinator with an empty
// worker membership. Install it as ServiceOptions.Runner (and mount its
// endpoints via ServerOptions.Mount) to distribute a service's DSE and
// batch traffic.
func NewClusterCoordinator(opt ClusterCoordinatorOptions) *ClusterCoordinator {
	return cluster.NewCoordinator(opt)
}

// NewClusterWorker wraps a Service as a cluster worker: mount its shard
// endpoint with Mount and keep it registered with Run.
func NewClusterWorker(svc *Service, opt ClusterWorkerOptions) *ClusterWorker {
	return cluster.NewWorker(svc, opt)
}

// ParallelDSE is RunDSE with the layer x schedule x policy grid fanned
// over a worker pool (workers <= 0 means one per CPU). The result is
// bit-for-bit identical to RunDSE's.
func ParallelDSE(ctx context.Context, net Network, ev *Evaluator, schedules []Schedule, policies []MappingPolicy, workers int) (*DSEResult, error) {
	return service.ParallelDSE(ctx, net, ev, schedules, policies, core.MinimizeEDP, workers)
}

// ParallelDSEObjective is ParallelDSE under an explicit objective.
func ParallelDSEObjective(ctx context.Context, net Network, ev *Evaluator, schedules []Schedule, policies []MappingPolicy, obj Objective, workers int) (*DSEResult, error) {
	return service.ParallelDSE(ctx, net, ev, schedules, policies, obj, workers)
}

// BackendEvaluator characterizes one registered backend and builds an
// evaluator for it - the one-liner behind "run the DSE on DDR4".
func BackendEvaluator(id string, cfg AccelConfig, batch int) (*Evaluator, error) {
	b, ok := LookupBackend(id)
	if !ok {
		return nil, fmt.Errorf("drmap: unknown DRAM backend %q", id)
	}
	p, err := CharacterizeBackend(b)
	if err != nil {
		return nil, err
	}
	return NewEvaluator(p, cfg, batch)
}

// ParallelCharacterizeAll is CharacterizeAll with the registered
// backends fanned over a worker pool; every worker builds its own
// controllers.
func ParallelCharacterizeAll(ctx context.Context, workers int) ([]*Profile, error) {
	return service.CharacterizeBackends(ctx, dram.Backends(), workers)
}

// JSON mirrors of the report renderers (machine-readable output).
type (
	// ProfileJSON is the Fig. 1 characterization of one architecture.
	ProfileJSON = report.ProfileJSON
	// PolicyJSON is one Table I mapping policy.
	PolicyJSON = report.PolicyJSON
	// DSEResultJSON is Algorithm 1's outcome for a network.
	DSEResultJSON = report.DSEJSON
	// Fig9PointJSON is one bar of Fig. 9.
	Fig9PointJSON = report.Fig9PointJSON
	// BackendJSON is one registered DRAM backend with its summaries.
	BackendJSON = report.BackendJSON
)

// EncodeJSON marshals any of the JSON mirror types with indentation.
func EncodeJSON(v any) (string, error) { return report.EncodeJSON(v) }

// Fig1JSON encodes the characterization of every profile.
func Fig1JSON(profiles []*Profile) []report.ProfileJSON { return report.Fig1JSON(profiles) }

// TableIJSON encodes the six Table I mapping policies.
func TableIJSON() []report.PolicyJSON { return report.TableIJSON() }

// DSEJSON encodes Algorithm 1's outcome under the evaluator's timing.
func DSEJSON(res *DSEResult, tm Timing) report.DSEJSON { return report.DSEResultJSON(res, tm) }

// Fig9JSON encodes one Fig. 9 subplot's points.
func Fig9JSON(points []Fig9Point) []report.Fig9PointJSON { return report.Fig9JSON(points) }

// BackendsJSON encodes a backend list in the order given (Backends()
// supplies the ID-sorted registry).
func BackendsJSON(backends []Backend) []report.BackendJSON { return report.BackendsJSON(backends) }

// RenderBackends renders the backend registry as a table.
func RenderBackends(backends []Backend) string { return report.BackendsTable(backends) }
