// Package tiling implements layer partitioning and DRAM access
// scheduling for CNN accelerators, following the tiled loop nest of the
// DRMap paper's Fig. 3. A Tiling fixes the outer-loop step sizes
// (Th, Tw, Tj, Ti; Tp = P and Tq = Q as in Algorithm 1), a Schedule
// fixes the outer-loop order through the reuse priority it implements,
// and the two together determine how many times each data tile travels
// between DRAM and the on-chip buffers - the SmartShuttle-style traffic
// model the DSE consumes.
package tiling

import (
	"fmt"
	"sort"

	"drmap/internal/accel"
	"drmap/internal/cnn"
)

// Schedule selects the reuse priority of the outer loops.
type Schedule int

const (
	// IfmsReuse keeps input-feature-map tiles resident (loop order
	// h, w, i with j innermost): ifms are fetched once.
	IfmsReuse Schedule = iota
	// WghsReuse keeps weight tiles resident (loop order j, i with h, w
	// innermost): weights are fetched once.
	WghsReuse
	// OfmsReuse keeps partial sums resident (loop order h, w, j with i
	// innermost): ofms are written once and never re-read.
	OfmsReuse
	// AdaptiveReuse picks, per layer, whichever of the three schedules
	// moves the fewest bytes (the SmartShuttle policy the paper cites).
	AdaptiveReuse
)

// Schedules lists the four schemes in the order of the paper's Fig. 9.
var Schedules = []Schedule{IfmsReuse, WghsReuse, OfmsReuse, AdaptiveReuse}

// String names the schedule as in the paper.
func (s Schedule) String() string {
	switch s {
	case IfmsReuse:
		return "ifms-reuse"
	case WghsReuse:
		return "wghs-reuse"
	case OfmsReuse:
		return "ofms-reuse"
	case AdaptiveReuse:
		return "adaptive-reuse"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Tiling is one layer partitioning: the outer-loop step sizes of Fig. 3.
type Tiling struct {
	Th int // ofms height step
	Tw int // ofms width step
	Tj int // ofms depth step
	Ti int // ifms depth step
}

// String renders the tiling compactly.
func (t Tiling) String() string {
	return fmt.Sprintf("Th=%d Tw=%d Tj=%d Ti=%d", t.Th, t.Tw, t.Tj, t.Ti)
}

// Validate checks the tiling against the layer bounds.
func (t Tiling) Validate(l cnn.Layer) error {
	check := func(name string, v, max int) error {
		if v < 1 || v > max {
			return fmt.Errorf("tiling: %s=%d outside [1,%d] for layer %s", name, v, max, l.Name)
		}
		return nil
	}
	if err := check("Th", t.Th, l.H); err != nil {
		return err
	}
	if err := check("Tw", t.Tw, l.W); err != nil {
		return err
	}
	if err := check("Tj", t.Tj, l.J); err != nil {
		return err
	}
	return check("Ti", t.Ti, l.I)
}

// ifmSpan returns the input rows/columns covered by an output tile span.
func ifmSpan(outSpan, stride, kernel int) int {
	return (outSpan-1)*stride + kernel
}

// IfmTileElems returns the element count of one full ifms tile.
func (t Tiling) IfmTileElems(l cnn.Layer) int64 {
	return int64(ifmSpan(t.Th, l.Stride, l.P)) * int64(ifmSpan(t.Tw, l.Stride, l.Q)) * int64(t.Ti)
}

// WgtTileElems returns the element count of one full weights tile.
func (t Tiling) WgtTileElems(l cnn.Layer) int64 {
	return int64(l.P) * int64(l.Q) * int64(t.Ti) * int64(t.Tj)
}

// OfmTileElems returns the element count of one full ofms tile.
func (t Tiling) OfmTileElems(l cnn.Layer) int64 {
	return int64(t.Th) * int64(t.Tw) * int64(t.Tj)
}

// Fits reports whether all three tiles fit their on-chip buffers.
func (t Tiling) Fits(l cnn.Layer, cfg accel.Config) bool {
	iB, wB, oB := cfg.BufElems()
	return t.IfmTileElems(l) <= iB && t.WgtTileElems(l) <= wB && t.OfmTileElems(l) <= oB
}

// divisors returns the positive divisors of n in ascending order.
func divisors(n int) []int {
	var ds []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			ds = append(ds, d)
			if q := n / d; q != d {
				ds = append(ds, q)
			}
		}
	}
	sort.Ints(ds)
	return ds
}

// Enumerate returns every divisor-aligned tiling of the layer that fits
// the accelerator buffers, in deterministic order. Divisor alignment
// keeps tiles uniform (no remainder tiles), matching the step-size
// choices of Algorithm 1; the traffic model nevertheless handles
// non-divisor tilings exactly.
func Enumerate(l cnn.Layer, cfg accel.Config) []Tiling {
	var out []Tiling
	for _, th := range divisors(l.H) {
		for _, tw := range divisors(l.W) {
			for _, tj := range divisors(l.J) {
				for _, ti := range divisors(l.I) {
					t := Tiling{Th: th, Tw: tw, Tj: tj, Ti: ti}
					if t.Fits(l, cfg) {
						out = append(out, t)
					}
				}
			}
		}
	}
	return out
}

// TileGroup describes one set of identical DRAM tile streams: Loads
// streams of Elems elements each, in the given direction. The analytic
// EDP model prices each stream with the mapping policy's access-category
// counts.
type TileGroup struct {
	Elems int64
	Loads int64
	Write bool
}

// span describes tiles along one dimension: nFull tiles of size full
// plus an optional remainder tile.
type span struct {
	full  int
	nFull int64
	rem   int
}

func splitDim(total, step int) span {
	return span{full: step, nFull: int64(total / step), rem: total % step}
}

// sizes iterates the distinct (size, count) pairs of the span.
func (s span) sizes() [](struct {
	Size  int
	Count int64
}) {
	out := make([]struct {
		Size  int
		Count int64
	}, 0, 2)
	if s.nFull > 0 {
		out = append(out, struct {
			Size  int
			Count int64
		}{s.full, s.nFull})
	}
	if s.rem > 0 {
		out = append(out, struct {
			Size  int
			Count int64
		}{s.rem, 1})
	}
	return out
}

// tiles returns the number of tiles along the span.
func (s span) tiles() int64 {
	n := s.nFull
	if s.rem > 0 {
		n++
	}
	return n
}

// TensorGroups keeps the tile streams of the three tensors separate,
// for analyses that attribute DRAM cost per data type.
type TensorGroups struct {
	Ifm []TileGroup
	Wgt []TileGroup
	Ofm []TileGroup
}

// All flattens the three tensors' groups.
func (tg TensorGroups) All() []TileGroup {
	out := make([]TileGroup, 0, len(tg.Ifm)+len(tg.Wgt)+len(tg.Ofm))
	out = append(out, tg.Ifm...)
	out = append(out, tg.Wgt...)
	out = append(out, tg.Ofm...)
	return out
}

// TileGroups expands a (layer, tiling, schedule) combination into the
// distinct DRAM tile streams it generates for one batch of images,
// with exact edge-tile sizes. AdaptiveReuse resolves to the concrete
// schedule minimizing total traffic before expansion.
func TileGroups(l cnn.Layer, t Tiling, s Schedule, batch int) []TileGroup {
	return TileGroupsByTensor(l, t, s, batch).All()
}

// TileGroupsByTensor is TileGroups with the per-tensor split retained.
func TileGroupsByTensor(l cnn.Layer, t Tiling, s Schedule, batch int) TensorGroups {
	if s == AdaptiveReuse {
		s = ResolveAdaptive(l, t, batch)
	}
	b := int64(batch)
	hs := splitDim(l.H, t.Th)
	ws := splitDim(l.W, t.Tw)
	js := splitDim(l.J, t.Tj)
	is := splitDim(l.I, t.Ti)
	nh, nw, nj, ni := hs.tiles(), ws.tiles(), js.tiles(), is.tiles()

	var ifmLoads, wgtLoads int64
	var ofmReads, ofmWrites int64 // per ofm tile
	switch s {
	case IfmsReuse:
		ifmLoads = 1
		wgtLoads = nh * nw
		ofmReads = ni - 1
		ofmWrites = ni
	case WghsReuse:
		ifmLoads = nj
		wgtLoads = 1
		ofmReads = ni - 1
		ofmWrites = ni
	case OfmsReuse:
		ifmLoads = nj
		wgtLoads = nh * nw
		ofmReads = 0
		ofmWrites = 1
	default:
		panic(fmt.Sprintf("tiling: unresolved schedule %v", s))
	}

	var out TensorGroups
	// ifms tiles: indexed by (h, w, i); each image has its own set.
	for _, sh := range hs.sizes() {
		for _, sw := range ws.sizes() {
			for _, si := range is.sizes() {
				elems := int64(ifmSpan(sh.Size, l.Stride, l.P)) *
					int64(ifmSpan(sw.Size, l.Stride, l.Q)) * int64(si.Size)
				count := sh.Count * sw.Count * si.Count * b
				out.Ifm = append(out.Ifm, TileGroup{Elems: elems, Loads: count * ifmLoads})
			}
		}
	}
	// weights tiles: indexed by (i, j); re-fetched per image because the
	// batch loop is outermost in Fig. 3.
	for _, si := range is.sizes() {
		for _, sj := range js.sizes() {
			elems := int64(l.P) * int64(l.Q) * int64(si.Size) * int64(sj.Size)
			count := si.Count * sj.Count * b
			out.Wgt = append(out.Wgt, TileGroup{Elems: elems, Loads: count * wgtLoads})
		}
	}
	// ofms tiles: indexed by (h, w, j) per image; reads and writes are
	// separate streams.
	for _, sh := range hs.sizes() {
		for _, sw := range ws.sizes() {
			for _, sj := range js.sizes() {
				elems := int64(sh.Size) * int64(sw.Size) * int64(sj.Size)
				count := sh.Count * sw.Count * sj.Count * b
				if ofmReads > 0 {
					out.Ofm = append(out.Ofm, TileGroup{Elems: elems, Loads: count * ofmReads})
				}
				out.Ofm = append(out.Ofm, TileGroup{Elems: elems, Loads: count * ofmWrites, Write: true})
			}
		}
	}
	return out
}

// Traffic aggregates the DRAM element volumes of a layer under a
// (tiling, schedule) pair.
type Traffic struct {
	IfmReadElems  int64
	WgtReadElems  int64
	OfmReadElems  int64
	OfmWriteElems int64
	// Resolved is the concrete schedule (AdaptiveReuse resolves to one
	// of the three fixed schemes).
	Resolved Schedule
}

// TotalElems sums all element movement.
func (tr Traffic) TotalElems() int64 {
	return tr.IfmReadElems + tr.WgtReadElems + tr.OfmReadElems + tr.OfmWriteElems
}

// Estimate computes the traffic of a layer under a tiling and schedule
// for one batch.
func Estimate(l cnn.Layer, t Tiling, s Schedule, batch int) Traffic {
	if s == AdaptiveReuse {
		s = ResolveAdaptive(l, t, batch)
	}
	b := int64(batch)
	hs := splitDim(l.H, t.Th)
	ws := splitDim(l.W, t.Tw)
	js := splitDim(l.J, t.Tj)
	is := splitDim(l.I, t.Ti)
	nj, ni := js.tiles(), is.tiles()

	var ifm int64
	for _, sh := range hs.sizes() {
		for _, sw := range ws.sizes() {
			for _, si := range is.sizes() {
				elems := int64(ifmSpan(sh.Size, l.Stride, l.P)) *
					int64(ifmSpan(sw.Size, l.Stride, l.Q)) * int64(si.Size)
				ifm += elems * sh.Count * sw.Count * si.Count
			}
		}
	}
	ifm *= b
	wgt := l.WgtElems() * b
	ofm := l.OfmElems() * b

	tr := Traffic{Resolved: s}
	switch s {
	case IfmsReuse:
		tr.IfmReadElems = ifm
		tr.WgtReadElems = wgt * hs.tiles() * ws.tiles()
		tr.OfmReadElems = ofm * (ni - 1)
		tr.OfmWriteElems = ofm * ni
	case WghsReuse:
		tr.IfmReadElems = ifm * nj
		tr.WgtReadElems = wgt
		tr.OfmReadElems = ofm * (ni - 1)
		tr.OfmWriteElems = ofm * ni
	case OfmsReuse:
		tr.IfmReadElems = ifm * nj
		tr.WgtReadElems = wgt * hs.tiles() * ws.tiles()
		tr.OfmWriteElems = ofm
	}
	return tr
}

// ResolveAdaptive returns the fixed schedule with the least total
// traffic for the layer and tiling, which is how the paper's
// adaptive-reuse scheme chooses per layer.
func ResolveAdaptive(l cnn.Layer, t Tiling, batch int) Schedule {
	best := IfmsReuse
	bestElems := Estimate(l, t, IfmsReuse, batch).TotalElems()
	for _, s := range []Schedule{WghsReuse, OfmsReuse} {
		if e := Estimate(l, t, s, batch).TotalElems(); e < bestElems {
			best, bestElems = s, e
		}
	}
	return best
}
