package tiling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"drmap/internal/accel"
	"drmap/internal/cnn"
)

func alexConv2(t *testing.T) cnn.Layer {
	t.Helper()
	return cnn.AlexNet().Layers[1] // 27x27x256 ofm, I=96, 5x5 s1 p2
}

func TestScheduleStrings(t *testing.T) {
	cases := map[Schedule]string{
		IfmsReuse:     "ifms-reuse",
		WghsReuse:     "wghs-reuse",
		OfmsReuse:     "ofms-reuse",
		AdaptiveReuse: "adaptive-reuse",
		Schedule(9):   "Schedule(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Schedule(%d) = %q, want %q", int(s), got, want)
		}
	}
}

func TestTilingValidate(t *testing.T) {
	l := alexConv2(t)
	good := Tiling{Th: 27, Tw: 9, Tj: 64, Ti: 32}
	if err := good.Validate(l); err != nil {
		t.Errorf("valid tiling rejected: %v", err)
	}
	bads := []Tiling{
		{Th: 0, Tw: 1, Tj: 1, Ti: 1},
		{Th: 28, Tw: 1, Tj: 1, Ti: 1},
		{Th: 1, Tw: 28, Tj: 1, Ti: 1},
		{Th: 1, Tw: 1, Tj: 257, Ti: 1},
		{Th: 1, Tw: 1, Tj: 1, Ti: 97},
	}
	for _, b := range bads {
		if err := b.Validate(l); err == nil {
			t.Errorf("invalid tiling accepted: %v", b)
		}
	}
}

func TestTileElems(t *testing.T) {
	l := alexConv2(t) // stride 1, P=Q=5
	tl := Tiling{Th: 9, Tw: 9, Tj: 32, Ti: 16}
	// ifm tile: (9-1)*1+5 = 13 per spatial dim.
	if got := tl.IfmTileElems(l); got != 13*13*16 {
		t.Errorf("ifm tile = %d, want %d", got, 13*13*16)
	}
	if got := tl.WgtTileElems(l); got != 5*5*16*32 {
		t.Errorf("wgt tile = %d, want %d", got, 5*5*16*32)
	}
	if got := tl.OfmTileElems(l); got != 9*9*32 {
		t.Errorf("ofm tile = %d, want %d", got, 9*9*32)
	}
}

func TestStridedIfmTile(t *testing.T) {
	l := cnn.AlexNet().Layers[0] // stride 4, 11x11
	tl := Tiling{Th: 5, Tw: 5, Tj: 8, Ti: 3}
	// (5-1)*4+11 = 27 per spatial dim.
	if got := tl.IfmTileElems(l); got != 27*27*3 {
		t.Errorf("strided ifm tile = %d, want %d", got, 27*27*3)
	}
}

func TestFitsRespectsEachBuffer(t *testing.T) {
	l := alexConv2(t)
	cfg := accel.TableII()
	if !(Tiling{Th: 9, Tw: 9, Tj: 32, Ti: 16}).Fits(l, cfg) {
		t.Error("small tiling should fit 64KB buffers")
	}
	// 27x27 ofm tile with Tj=256 = 186624 elements > 64K: oB overflow.
	if (Tiling{Th: 27, Tw: 27, Tj: 256, Ti: 1}).Fits(l, cfg) {
		t.Error("oB-overflowing tiling accepted")
	}
	// Weights: 5*5*96*256 = 614400 > 64K: wB overflow.
	if (Tiling{Th: 1, Tw: 1, Tj: 256, Ti: 96}).Fits(l, cfg) {
		t.Error("wB-overflowing tiling accepted")
	}
}

func TestEnumerateAllFitAndDivide(t *testing.T) {
	l := alexConv2(t)
	cfg := accel.TableII()
	tilings := Enumerate(l, cfg)
	if len(tilings) == 0 {
		t.Fatal("no tilings enumerated for AlexNet CONV2")
	}
	for _, tl := range tilings {
		if !tl.Fits(l, cfg) {
			t.Fatalf("enumerated tiling %v does not fit", tl)
		}
		if l.H%tl.Th != 0 || l.W%tl.Tw != 0 || l.J%tl.Tj != 0 || l.I%tl.Ti != 0 {
			t.Fatalf("enumerated tiling %v not divisor-aligned", tl)
		}
	}
}

func TestEnumerateCoversEveryAlexNetLayer(t *testing.T) {
	cfg := accel.TableII()
	for _, l := range cnn.AlexNet().Layers {
		if got := len(Enumerate(l, cfg)); got == 0 {
			t.Errorf("layer %s: no feasible tilings", l.Name)
		}
	}
}

func TestOfmsReuseWritesOfmsExactlyOnce(t *testing.T) {
	l := alexConv2(t)
	tl := Tiling{Th: 9, Tw: 9, Tj: 32, Ti: 16}
	tr := Estimate(l, tl, OfmsReuse, 1)
	if tr.OfmWriteElems != l.OfmElems() {
		t.Errorf("ofms-reuse writes = %d, want %d", tr.OfmWriteElems, l.OfmElems())
	}
	if tr.OfmReadElems != 0 {
		t.Errorf("ofms-reuse reads ofms %d times, want 0", tr.OfmReadElems)
	}
}

func TestWghsReuseFetchesWeightsOnce(t *testing.T) {
	l := alexConv2(t)
	tl := Tiling{Th: 9, Tw: 9, Tj: 32, Ti: 16}
	tr := Estimate(l, tl, WghsReuse, 1)
	if tr.WgtReadElems != l.WgtElems() {
		t.Errorf("wghs-reuse weight traffic = %d, want %d", tr.WgtReadElems, l.WgtElems())
	}
}

func TestIfmsReuseFetchesIfmsOnce(t *testing.T) {
	l := alexConv2(t)
	// Full-width tiles eliminate halo overlap in W; Th=27 full height.
	tl := Tiling{Th: 27, Tw: 27, Tj: 16, Ti: 8}
	tr := Estimate(l, tl, IfmsReuse, 1)
	// One load per ifm tile: total = sum of tile elems, which for the
	// full spatial tile is the (unpadded) receptive field of the layer.
	wantSpan := int64((27-1)*1 + 5)
	want := wantSpan * wantSpan * int64(l.I)
	if tr.IfmReadElems != want {
		t.Errorf("ifms-reuse ifm traffic = %d, want %d", tr.IfmReadElems, want)
	}
}

func TestHaloGrowsIfmTraffic(t *testing.T) {
	l := alexConv2(t)
	coarse := Estimate(l, Tiling{Th: 27, Tw: 27, Tj: 16, Ti: 8}, IfmsReuse, 1)
	fine := Estimate(l, Tiling{Th: 3, Tw: 3, Tj: 16, Ti: 8}, IfmsReuse, 1)
	if fine.IfmReadElems <= coarse.IfmReadElems {
		t.Errorf("finer spatial tiling should increase halo traffic: %d vs %d",
			fine.IfmReadElems, coarse.IfmReadElems)
	}
}

func TestTrafficScalesWithBatch(t *testing.T) {
	l := alexConv2(t)
	tl := Tiling{Th: 9, Tw: 9, Tj: 32, Ti: 16}
	for _, s := range []Schedule{IfmsReuse, WghsReuse, OfmsReuse} {
		one := Estimate(l, tl, s, 1)
		four := Estimate(l, tl, s, 4)
		if four.TotalElems() != 4*one.TotalElems() {
			t.Errorf("%v: batch-4 traffic %d != 4x batch-1 %d", s, four.TotalElems(), one.TotalElems())
		}
	}
}

func TestPartialSumSpillsGrowWithITiles(t *testing.T) {
	l := alexConv2(t)
	few := Estimate(l, Tiling{Th: 9, Tw: 9, Tj: 16, Ti: 96}, WghsReuse, 1)
	many := Estimate(l, Tiling{Th: 9, Tw: 9, Tj: 16, Ti: 8}, WghsReuse, 1)
	if few.OfmReadElems != 0 {
		t.Errorf("single i-tile should spill no partial sums, got %d", few.OfmReadElems)
	}
	if many.OfmReadElems == 0 || many.OfmWriteElems <= few.OfmWriteElems {
		t.Errorf("many i-tiles should spill partial sums: reads=%d writes=%d vs writes=%d",
			many.OfmReadElems, many.OfmWriteElems, few.OfmWriteElems)
	}
}

func TestAdaptiveNeverWorseThanFixed(t *testing.T) {
	cfg := accel.TableII()
	for _, l := range cnn.AlexNet().Layers {
		tilings := Enumerate(l, cfg)
		if len(tilings) > 50 {
			tilings = tilings[:50]
		}
		for _, tl := range tilings {
			adaptive := Estimate(l, tl, AdaptiveReuse, 1).TotalElems()
			for _, s := range []Schedule{IfmsReuse, WghsReuse, OfmsReuse} {
				if fixed := Estimate(l, tl, s, 1).TotalElems(); adaptive > fixed {
					t.Fatalf("layer %s tiling %v: adaptive (%d) worse than %v (%d)",
						l.Name, tl, adaptive, s, fixed)
				}
			}
		}
	}
}

func TestResolveAdaptiveReturnsFixedSchedule(t *testing.T) {
	l := alexConv2(t)
	s := ResolveAdaptive(l, Tiling{Th: 9, Tw: 9, Tj: 32, Ti: 16}, 1)
	if s == AdaptiveReuse {
		t.Error("ResolveAdaptive returned AdaptiveReuse")
	}
}

func TestTileGroupsConsistentWithEstimate(t *testing.T) {
	// The grouped tile streams must account for exactly the volumes the
	// closed-form traffic model reports.
	cfg := accel.TableII()
	for _, l := range cnn.AlexNet().Layers {
		tilings := Enumerate(l, cfg)
		step := len(tilings)/10 + 1
		for i := 0; i < len(tilings); i += step {
			tl := tilings[i]
			for _, s := range []Schedule{IfmsReuse, WghsReuse, OfmsReuse} {
				tr := Estimate(l, tl, s, 1)
				var reads, writes int64
				for _, g := range TileGroups(l, tl, s, 1) {
					if g.Write {
						writes += g.Elems * g.Loads
					} else {
						reads += g.Elems * g.Loads
					}
				}
				wantReads := tr.IfmReadElems + tr.WgtReadElems + tr.OfmReadElems
				if reads != wantReads {
					t.Fatalf("%s %v %v: grouped reads %d != estimate %d", l.Name, tl, s, reads, wantReads)
				}
				if writes != tr.OfmWriteElems {
					t.Fatalf("%s %v %v: grouped writes %d != estimate %d", l.Name, tl, s, writes, tr.OfmWriteElems)
				}
			}
		}
	}
}

func TestNonDivisorTilingHandledExactly(t *testing.T) {
	// 27 split by 10: two full tiles and a remainder of 7.
	l := alexConv2(t)
	tl := Tiling{Th: 10, Tw: 27, Tj: 256, Ti: 96}
	tr := Estimate(l, tl, OfmsReuse, 1)
	if tr.OfmWriteElems != l.OfmElems() {
		t.Errorf("remainder tiling loses ofm elements: %d != %d", tr.OfmWriteElems, l.OfmElems())
	}
	// ifm traffic: rows covered = 2 full tiles of (10-1)+5=14 and one of
	// (7-1)+5=11 -> 39 rows x 27 cols (full width tile = 31 wide though:
	// (27-1)+5=31) x 96 channels, times Nj=1.
	want := int64(14+14+11) * 31 * 96
	if tr.IfmReadElems != want {
		t.Errorf("remainder ifm traffic = %d, want %d", tr.IfmReadElems, want)
	}
}

func TestFCLayerTiling(t *testing.T) {
	l := cnn.AlexNet().Layers[5] // FC6 9216->4096
	cfg := accel.TableII()
	tilings := Enumerate(l, cfg)
	if len(tilings) == 0 {
		t.Fatal("no tilings for FC6")
	}
	tl := Tiling{Th: 1, Tw: 1, Tj: 1024, Ti: 64}
	tr := Estimate(l, tl, WghsReuse, 1)
	if tr.WgtReadElems != l.WgtElems() {
		t.Errorf("FC6 wghs-reuse weights = %d, want %d", tr.WgtReadElems, l.WgtElems())
	}
	// FC traffic is weight-dominated.
	if tr.WgtReadElems < 10*tr.IfmReadElems {
		t.Errorf("FC6 should be weight-dominated: wgt=%d ifm=%d", tr.WgtReadElems, tr.IfmReadElems)
	}
}

func TestTrafficNonNegativeProperty(t *testing.T) {
	l := alexConv2(t)
	f := func(th, tw, tj, ti uint8, sIdx uint8, batch uint8) bool {
		tl := Tiling{
			Th: 1 + int(th)%l.H,
			Tw: 1 + int(tw)%l.W,
			Tj: 1 + int(tj)%l.J,
			Ti: 1 + int(ti)%l.I,
		}
		s := []Schedule{IfmsReuse, WghsReuse, OfmsReuse, AdaptiveReuse}[sIdx%4]
		b := 1 + int(batch)%4
		tr := Estimate(l, tl, s, b)
		if tr.IfmReadElems < 0 || tr.WgtReadElems < 0 || tr.OfmReadElems < 0 || tr.OfmWriteElems < 0 {
			return false
		}
		// Any schedule must move at least the compulsory traffic.
		min := int64(b) * (l.OfmElems())
		return tr.TotalElems() >= min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Error(err)
	}
}

func TestGroupsPositiveProperty(t *testing.T) {
	l := cnn.AlexNet().Layers[2]
	f := func(th, tj, ti uint8) bool {
		tl := Tiling{
			Th: 1 + int(th)%l.H,
			Tw: l.W,
			Tj: 1 + int(tj)%l.J,
			Ti: 1 + int(ti)%l.I,
		}
		for _, g := range TileGroups(l, tl, OfmsReuse, 1) {
			if g.Elems <= 0 || g.Loads <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(19))}); err != nil {
		t.Error(err)
	}
}

func TestDivisors(t *testing.T) {
	got := divisors(27)
	want := []int{1, 3, 9, 27}
	if len(got) != len(want) {
		t.Fatalf("divisors(27) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("divisors(27) = %v, want %v", got, want)
		}
	}
	if d := divisors(96); len(d) != 12 {
		t.Errorf("divisors(96) count = %d, want 12", len(d))
	}
}

func TestTilingString(t *testing.T) {
	s := Tiling{Th: 1, Tw: 2, Tj: 3, Ti: 4}.String()
	if s != "Th=1 Tw=2 Tj=3 Ti=4" {
		t.Errorf("Tiling.String() = %q", s)
	}
}
