package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"regexp"
)

// TraceHeader carries a request's trace ID between processes: client →
// serve, serve → coordinator dispatch → worker. Handlers echo it on
// responses so callers learn server-generated IDs.
const TraceHeader = "X-Drmap-Trace-Id"

// traceIDRe bounds what we accept from the wire: inbound IDs that are
// not short hex tokens are replaced rather than propagated, since trace
// IDs end up in logs, metrics labels, and exposition output.
var traceIDRe = regexp.MustCompile(`^[a-f0-9]{8,32}$`)

// NewTraceID returns a fresh 16-byte random trace ID in lowercase hex.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// math-free fallback: rand.Read on supported platforms never
		// fails; if it somehow does, a fixed ID beats a panic mid-request.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether id is safe to propagate as-is.
func ValidTraceID(id string) bool {
	return traceIDRe.MatchString(id)
}

type traceKey struct{}

// WithTrace attaches a trace ID to ctx.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom returns the context's trace ID, or "" when none is set.
func TraceFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// EnsureTrace returns ctx carrying a trace ID and that ID: an existing
// context ID is kept, a valid candidate (e.g. an inbound header) is
// adopted, and otherwise a fresh ID is generated.
func EnsureTrace(ctx context.Context, candidate string) (context.Context, string) {
	if id := TraceFrom(ctx); id != "" {
		return ctx, id
	}
	if ValidTraceID(candidate) {
		return WithTrace(ctx, candidate), candidate
	}
	id := NewTraceID()
	return WithTrace(ctx, id), id
}
