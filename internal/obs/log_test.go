package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerJSONShape(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithTrace(context.Background(), "cafecafecafecafe")
	LogWith(ctx, logger).Info("request done", "route", "/api/v1/dse", "status", 200)

	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	for k, want := range map[string]any{
		"msg":      "request done",
		"level":    "INFO",
		"trace_id": "cafecafecafecafe",
		"route":    "/api/v1/dse",
		"status":   float64(200),
	} {
		if line[k] != want {
			t.Fatalf("field %s = %v, want %v (line %s)", k, line[k], want, buf.String())
		}
	}
	if _, ok := line["time"]; !ok {
		t.Fatalf("missing time field: %s", buf.String())
	}
}

func TestNewLoggerLevelsAndText(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hidden")
	logger.Warn("shown")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("level filtering wrong:\n%s", out)
	}

	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "yaml"); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestLogWithNil(t *testing.T) {
	// Must not panic, and must not write anywhere.
	LogWith(context.Background(), nil).Info("dropped")
}
