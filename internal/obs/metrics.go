// Package obs is the telemetry layer under every drmap process: a
// labeled metrics registry rendered in Prometheus text exposition
// format, trace-ID generation and context/header propagation, slog
// construction for the -log-level/-log-format flags, opt-in pprof
// mounting, and build identification via debug/buildinfo.
//
// The registry holds two kinds of series. Instruments - counters,
// gauges and fixed-bucket histograms, each optionally labeled - are
// created once and updated on the hot path with atomics. Gatherers are
// snapshot callbacks polled at scrape time, the bridge for counters
// that already live elsewhere (the service's cache stats, the job
// store, cluster membership). Both render through one exposition
// writer that emits # HELP/# TYPE metadata, escapes label values, and
// sorts families and label sets so the output is deterministic and
// parseable by any standard Prometheus scraper (and by this package's
// own strict ParseExposition).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric kinds, as rendered on # TYPE lines.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Label is one name/value pair of a labeled series.
type Label struct {
	Key   string
	Value string
}

// Sample is one gathered series value: gatherers return these at
// scrape time for metrics whose source of truth lives outside the
// registry's instruments.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// DurationBuckets are the default histogram bounds for request/phase
// durations in seconds: half a millisecond to ten seconds, roughly
// logarithmic, matching the spread between a warm reprice (~ms) and a
// cold multi-network DSE (~seconds).
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefaultMaxChildren bounds a capped vec (see Vec cap semantics on
// CounterVec): trace-labeled series keep only the most recent IDs so
// tracing cannot grow the exposition without bound.
const DefaultMaxChildren = 64

// Registry owns a process's metric families. It is safe for concurrent
// use; instrument lookups on the hot path are lock-free after creation
// (callers hold the returned Counter/Gauge/Histogram).
type Registry struct {
	mu        sync.Mutex
	families  map[string]*family
	gatherers []func() []Sample
	described map[string]description
}

type description struct {
	kind string
	help string
}

// family is one named instrument family and its children (one per
// label-value combination).
type family struct {
	name     string
	kind     string
	help     string
	labels   []string
	buckets  []float64 // histograms only
	maxKids  int       // 0 = unbounded
	mu       sync.Mutex
	children map[string]child
	kidOrder []string // insertion order, for capped eviction
}

type child interface {
	samples(name string, labels []Label) []Sample
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families:  make(map[string]*family),
		described: make(map[string]description),
	}
}

// Describe records exposition metadata for a gathered metric name (one
// that arrives via AddGatherer samples rather than an instrument), so
// its family still renders # HELP/# TYPE lines. Instruments carry
// their own metadata; describing an instrument name is ignored.
func (r *Registry) Describe(name, kind, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.described[name] = description{kind: kind, help: help}
}

// AddGatherer registers a snapshot callback polled at every scrape.
// Gatherers bridge counters whose source of truth lives elsewhere
// (cache stats structs, membership sizes); names they emit should be
// Described for full metadata.
func (r *Registry) AddGatherer(g func() []Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gatherers = append(r.gatherers, g)
}

// lookup returns the named family, creating it on first use; re-lookup
// with the same name returns the existing family (so two components
// can share one instrument), and a kind or label-arity mismatch
// panics - it is a programming error, not a runtime condition.
func (r *Registry) lookup(name, kind, help string, labels []string, buckets []float64, maxKids int) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s(%d labels), was %s(%d labels)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{
		name: name, kind: kind, help: help,
		labels: labels, buckets: buckets, maxKids: maxKids,
		children: make(map[string]child),
	}
	r.families[name] = f
	return f
}

// Counter registers (or returns) a counter family with the given label
// names. Use With(values...) for a child to Inc/Add.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, KindCounter, help, labels, nil, 0)}
}

// CappedCounter is Counter with a bounded child set: past max children
// (<= 0 means DefaultMaxChildren) the oldest label combination is
// evicted. For high-cardinality labels like trace IDs, where "the last
// N" is exactly the observability wanted.
func (r *Registry) CappedCounter(name, help string, max int, labels ...string) *CounterVec {
	if max <= 0 {
		max = DefaultMaxChildren
	}
	return &CounterVec{f: r.lookup(name, KindCounter, help, labels, nil, max)}
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, KindGauge, help, labels, nil, 0)}
}

// Histogram registers (or returns) a fixed-bucket histogram family.
// buckets are upper bounds in increasing order, without +Inf (added
// implicitly); nil means DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DurationBuckets
	}
	return &HistogramVec{f: r.lookup(name, KindHistogram, help, labels, buckets, 0)}
}

// childFor returns the family's child for the given label values,
// creating (and, for capped families, evicting) as needed.
func (f *family) childFor(values []string, build func() child) child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := build()
	f.children[key] = c
	f.kidOrder = append(f.kidOrder, key)
	if f.maxKids > 0 && len(f.kidOrder) > f.maxKids {
		evict := f.kidOrder[0]
		f.kidOrder = f.kidOrder[1:]
		delete(f.children, evict)
	}
	return c
}

// labelsFor reconstructs a child's label set from its key.
func (f *family) labelsFor(key string) []Label {
	if len(f.labels) == 0 {
		return nil
	}
	values := strings.Split(key, "\x00")
	out := make([]Label, len(f.labels))
	for i, name := range f.labels {
		out[i] = Label{Key: name, Value: values[i]}
	}
	return out
}

// --- counter ---------------------------------------------------------

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// Counter is one monotonically increasing series.
type Counter struct{ v atomic.Int64 }

func (c *Counter) samples(name string, labels []Label) []Sample {
	return []Sample{{Name: name, Labels: labels, Value: float64(c.v.Load())}}
}

// With returns the child for the given label values (in the family's
// label-name order).
func (cv *CounterVec) With(values ...string) *Counter {
	return cv.f.childFor(values, func() child { return &Counter{} }).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// --- gauge -----------------------------------------------------------

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// Gauge is one series that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

func (g *Gauge) samples(name string, labels []Label) []Sample {
	return []Sample{{Name: name, Labels: labels, Value: g.Value()}}
}

// With returns the child for the given label values.
func (gv *GaugeVec) With(values ...string) *Gauge {
	return gv.f.childFor(values, func() child { return &Gauge{} }).(*Gauge)
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		want := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, want) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// --- histogram -------------------------------------------------------

// HistogramVec is a labeled fixed-bucket histogram family.
type HistogramVec struct{ f *family }

// Histogram is one series of bucketed observations.
type Histogram struct {
	bounds []float64      // upper bounds, ascending, excluding +Inf
	counts []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// With returns the child for the given label values.
func (hv *HistogramVec) With(values ...string) *Histogram {
	bounds := hv.f.buckets
	return hv.f.childFor(values, func() child {
		return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	}).(*Histogram)
}

// Observe records one value into its bucket.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		want := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, want) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// BucketCounts returns the cumulative per-bucket counts, one per bound
// plus the +Inf bucket (which equals Count).
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

func (h *Histogram) samples(name string, labels []Label) []Sample {
	cum := h.BucketCounts()
	out := make([]Sample, 0, len(cum)+2)
	for i, bound := range h.bounds {
		out = append(out, Sample{
			Name:   name + "_bucket",
			Labels: append(append([]Label{}, labels...), Label{Key: "le", Value: formatFloat(bound)}),
			Value:  float64(cum[i]),
		})
	}
	out = append(out, Sample{
		Name:   name + "_bucket",
		Labels: append(append([]Label{}, labels...), Label{Key: "le", Value: "+Inf"}),
		Value:  float64(cum[len(cum)-1]),
	})
	out = append(out,
		Sample{Name: name + "_sum", Labels: labels, Value: h.Sum()},
		Sample{Name: name + "_count", Labels: labels, Value: float64(h.Count())},
	)
	return out
}

// --- exposition ------------------------------------------------------

// renderedFamily groups one name's samples with its metadata for
// output assembly.
type renderedFamily struct {
	name    string
	kind    string
	help    string
	samples []Sample
}

// WritePrometheus renders every instrument family and every gathered
// sample in the Prometheus text exposition format (version 0.0.4):
// one # HELP and # TYPE line per family, then its samples with label
// sets escaped and key-sorted, families sorted by name. Gathered
// samples whose names were never Described render as gauges (counters
// when the name ends in _total) with a placeholder help string, so the
// output always parses.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	gatherers := append([]func() []Sample{}, r.gatherers...)
	described := make(map[string]description, len(r.described))
	for k, v := range r.described {
		described[k] = v
	}
	r.mu.Unlock()

	byName := make(map[string]*renderedFamily)
	add := func(famName, kind, help string, ss ...Sample) {
		rf, ok := byName[famName]
		if !ok {
			rf = &renderedFamily{name: famName, kind: kind, help: help}
			byName[famName] = rf
		}
		rf.samples = append(rf.samples, ss...)
	}

	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string{}, f.kidOrder...)
		kids := make([]child, len(keys))
		for i, k := range keys {
			kids[i] = f.children[k]
		}
		f.mu.Unlock()
		add(f.name, f.kind, f.help) // family renders even with no children yet
		for i, k := range keys {
			add(f.name, f.kind, f.help, kids[i].samples(f.name, f.labelsFor(k))...)
		}
	}
	for _, g := range gatherers {
		for _, s := range g() {
			d, ok := described[s.Name]
			if !ok {
				kind := KindGauge
				if strings.HasSuffix(s.Name, "_total") {
					kind = KindCounter
				}
				d = description{kind: kind, help: "drmap metric " + s.Name + "."}
			}
			add(s.Name, d.kind, d.help, s)
		}
	}

	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		rf := byName[n]
		fmt.Fprintf(&b, "# HELP %s %s\n", rf.name, escapeHelp(rf.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", rf.name, rf.kind)
		lines := make([]string, 0, len(rf.samples))
		for _, s := range rf.samples {
			lines = append(lines, sampleLine(s))
		}
		sort.Strings(lines)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Expose renders WritePrometheus to a string.
func (r *Registry) Expose() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

// sampleLine renders one sample: name{k1="v1",k2="v2"} value, label
// keys sorted, values escaped.
func sampleLine(s Sample) string {
	var b strings.Builder
	b.WriteString(s.Name)
	if len(s.Labels) > 0 {
		labels := append([]Label{}, s.Labels...)
		sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(s.Value))
	return b.String()
}

// formatFloat renders a sample value: integral values as plain
// integers (lifetime counters must render as `name 1000000`, not
// `name 1e+06`), everything else in shortest-roundtrip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
