package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies a running drmap binary: enough to tie a trace
// or a metrics scrape back to the exact source revision that produced
// it.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for local builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit hash, when the binary was built inside
	// a checkout; empty otherwise.
	Revision string `json:"revision,omitempty"`
	// BuildTime is the VCS commit timestamp (RFC 3339), when known.
	BuildTime string `json:"build_time,omitempty"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
}

// Build reads the binary's embedded build information.
func Build() BuildInfo {
	out := BuildInfo{Version: "(devel)", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if info.Main.Version != "" {
		out.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.time":
			out.BuildTime = s.Value
		case "vcs.modified":
			out.Dirty = s.Value == "true"
		}
	}
	return out
}

// shortRevision trims a revision hash for label values.
func shortRevision(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}

// RegisterBuildInfo exposes the binary's identity as the conventional
// constant-1 drmap_build_info gauge, labeled with version, go version
// and (short) revision.
func RegisterBuildInfo(r *Registry) {
	b := Build()
	rev := shortRevision(b.Revision)
	if rev == "" {
		rev = "unknown"
	}
	r.Gauge("drmap_build_info",
		"Build identity of this binary; value is always 1.",
		"version", "go_version", "revision").
		With(b.Version, b.GoVersion, rev).Set(1)
}
