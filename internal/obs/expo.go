package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// ParsedMetric is one sample line of a parsed exposition page.
type ParsedMetric struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family of a parsed exposition page:
// metadata plus its samples (for histograms, the _bucket/_sum/_count
// series keep their suffixed names in Samples).
type ParsedFamily struct {
	Name    string
	Kind    string
	Help    string
	Samples []ParsedMetric
}

// Exposition is a parsed /metrics page, indexed by family name.
type Exposition struct {
	Families map[string]*ParsedFamily
}

// Value returns the sample with the given name and exact label set,
// reporting whether it exists. Histogram series are looked up by their
// suffixed name (name_bucket, name_sum, name_count); labels may be nil
// for unlabeled samples.
func (e *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	fam := e.Families[familyOf(name)]
	if fam == nil {
		return 0, false
	}
	for _, s := range fam.Samples {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Has reports whether the page contains a family with the given name.
func (e *Exposition) Has(family string) bool {
	return e.Families[family] != nil
}

// familyOf strips a histogram series suffix to its family name.
func familyOf(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			return strings.TrimSuffix(name, suffix)
		}
	}
	return name
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ParseExposition parses a Prometheus text exposition page strictly:
// every sample must belong to a family announced by # HELP and # TYPE
// lines, names must be legal, label sets must be well formed, and
// values must parse as floats. It exists so tests (and the CI e2e
// scrape) fail on output a real Prometheus scraper would reject.
func ParseExposition(text string) (*Exposition, error) {
	exp := &Exposition{Families: make(map[string]*ParsedFamily)}
	helpSeen := make(map[string]bool)
	typeSeen := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: malformed HELP line %q", lineNo, line)
			}
			if helpSeen[name] {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			helpSeen[name] = true
			fam := exp.family(name)
			fam.Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			switch kind {
			case KindCounter, KindGauge, KindHistogram, "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q for %s", lineNo, kind, name)
			}
			if typeSeen[name] {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			typeSeen[name] = true
			exp.family(name).Kind = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		m, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		famName := familyOf(m.Name)
		fam := exp.Families[famName]
		// A _sum/_count/_bucket suffix only folds into a family when that
		// family was announced as a histogram; otherwise the bare name is
		// its own family (e.g. a counter literally named foo_count).
		if fam == nil || (famName != m.Name && fam.Kind != KindHistogram) {
			famName = m.Name
			fam = exp.Families[famName]
		}
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s has no preceding HELP/TYPE", lineNo, m.Name)
		}
		if !helpSeen[famName] || !typeSeen[famName] {
			return nil, fmt.Errorf("line %d: family %s missing %s", lineNo, famName,
				map[bool]string{true: "TYPE", false: "HELP"}[helpSeen[famName]])
		}
		fam.Samples = append(fam.Samples, m)
	}
	for name, fam := range exp.Families {
		if fam.Kind == "" {
			return nil, fmt.Errorf("family %s has HELP but no TYPE", name)
		}
	}
	return exp, nil
}

func (e *Exposition) family(name string) *ParsedFamily {
	fam := e.Families[name]
	if fam == nil {
		fam = &ParsedFamily{Name: name}
		e.Families[name] = fam
	}
	return fam
}

// parseSampleLine parses `name{k="v",...} value` (labels optional).
func parseSampleLine(line string) (ParsedMetric, error) {
	m := ParsedMetric{}
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		m.Name = rest[:brace]
		rest = rest[brace+1:]
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return m, fmt.Errorf("sample %s: %w", m.Name, err)
		}
		m.Labels = labels
		rest = tail
	} else {
		if space < 0 {
			return m, fmt.Errorf("malformed sample line %q", line)
		}
		m.Name = rest[:space]
		rest = rest[space:]
	}
	if !metricNameRe.MatchString(m.Name) {
		return m, fmt.Errorf("illegal metric name %q", m.Name)
	}
	rest = strings.TrimLeft(rest, " ")
	// A timestamp after the value is legal in the format; take the first
	// field as the value.
	valueField := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		valueField = rest[:i]
	}
	v, err := parseValue(valueField)
	if err != nil {
		return m, fmt.Errorf("sample %s: bad value %q", m.Name, valueField)
	}
	m.Value = v
	return m, nil
}

// parseLabels consumes `k="v",...}` and returns the labels plus the
// remainder of the line after the closing brace.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("malformed label set near %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !labelNameRe.MatchString(name) {
			return nil, "", fmt.Errorf("illegal label name %q", name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s: value not quoted", name)
		}
		s = s[1:]
		var b strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if s == "" {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				esc := s[0]
				s = s[1:]
				switch esc {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", name, esc)
				}
				continue
			}
			b.WriteByte(c)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = b.String()
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		return nil, "", fmt.Errorf("label %s: expected , or } near %q", name, s)
	}
}

// parseValue parses a sample value, including the format's +Inf/-Inf
// and NaN spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return inf(1), nil
	case "-Inf":
		return inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func inf(sign int) float64 {
	v, _ := strconv.ParseFloat("inf", 64)
	if sign < 0 {
		return -v
	}
	return v
}

// FamilyNames returns the page's family names, sorted.
func (e *Exposition) FamilyNames() []string {
	out := make([]string, 0, len(e.Families))
	for n := range e.Families {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
