// Go runtime health metrics for both daemons: goroutine count and
// heap footprint from runtime/metrics, plus the process start time so
// scrapers compute uptime as time() - drmap_process_start_time_seconds.
package obs

import (
	"runtime/metrics"
	"time"
)

// processStart anchors uptime; package init runs before main, so this
// is as close to process birth as a pure-Go reading gets.
var processStart = time.Now()

// ProcessStart returns when this process started.
func ProcessStart() time.Time { return processStart }

// RegisterRuntimeMetrics describes and gathers the Go runtime health
// family on reg: drmap_go_goroutines, drmap_go_heap_bytes and
// drmap_process_start_time_seconds.
func RegisterRuntimeMetrics(reg *Registry) {
	reg.Describe("drmap_go_goroutines", KindGauge,
		"Live goroutines in this process (runtime/metrics).")
	reg.Describe("drmap_go_heap_bytes", KindGauge,
		"Bytes occupied by live heap objects (runtime/metrics).")
	reg.Describe("drmap_process_start_time_seconds", KindGauge,
		"Unix time the process started; uptime = time() - this.")
	reg.AddGatherer(func() []Sample {
		// A fresh sample slice per gather: scrapes run concurrently.
		samples := []metrics.Sample{
			{Name: "/sched/goroutines:goroutines"},
			{Name: "/memory/classes/heap/objects:bytes"},
		}
		metrics.Read(samples)
		return []Sample{
			{Name: "drmap_go_goroutines", Value: float64(samples[0].Value.Uint64())},
			{Name: "drmap_go_heap_bytes", Value: float64(samples[1].Value.Uint64())},
			{Name: "drmap_process_start_time_seconds", Value: float64(processStart.UnixNano()) / 1e9},
		}
	})
}
