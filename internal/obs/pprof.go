package obs

import (
	"net/http"
	"net/http/pprof"
)

// MountPprof wires the runtime profiling handlers under /debug/pprof
// on a custom mux - net/http/pprof only self-registers on
// http.DefaultServeMux, which the daemons deliberately do not serve.
// Callers gate this behind the -pprof flag: the endpoints expose heap
// contents and must be opted into.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
