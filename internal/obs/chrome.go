// Chrome trace-event export: converts an assembled TraceTree into the
// JSON object format (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
// that chrome://tracing and Perfetto load directly, so a DRMap trace
// can be inspected on the standard timeline UI with zero dependencies
// on our side. Each process in the tree becomes a pid with a
// process_name metadata event; spans become "X" (complete) events laid
// out on greedily assigned lanes (tids) so overlapping siblings render
// side by side.
package obs

import (
	"encoding/json"
	"sort"
	"time"
)

type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders the tree as Chrome trace-event JSON.
func ChromeTrace(t *TraceTree) []byte {
	var spans []Span
	var walk func(*TraceNode)
	walk = func(n *TraceNode) {
		spans = append(spans, n.Span)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })

	// Timestamps are microseconds relative to the trace start; Chrome
	// dislikes absolute Unix-epoch micros (they overflow the UI zoom).
	var epoch time.Time
	if len(spans) > 0 {
		epoch = spans[0].Start
	}

	// One pid per process, in order of appearance.
	pids := map[string]int{}
	var procs []string
	for _, s := range spans {
		if _, ok := pids[s.Process]; !ok {
			pids[s.Process] = len(pids) + 1
			procs = append(procs, s.Process)
		}
	}

	file := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, p := range procs {
		name := p
		if name == "" {
			name = "drmap"
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pids[p], Tid: 0,
			Args: map[string]string{"name": name},
		})
	}

	// Greedy lane assignment per process: each span takes the lowest
	// lane whose previous occupant already ended.
	laneEnds := map[int][]time.Time{}
	for _, s := range spans {
		pid := pids[s.Process]
		lanes := laneEnds[pid]
		tid := -1
		for i, end := range lanes {
			if !end.After(s.Start) {
				tid = i
				break
			}
		}
		if tid < 0 {
			tid = len(lanes)
			lanes = append(lanes, time.Time{})
		}
		lanes[tid] = s.End
		laneEnds[pid] = lanes

		args := map[string]string{"span_id": s.SpanID}
		if s.ParentID != "" {
			args["parent_id"] = s.ParentID
		}
		if s.Error != "" {
			args["error"] = s.Error
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  "drmap",
			Ph:   "X",
			Ts:   float64(s.Start.Sub(epoch).Microseconds()),
			Dur:  float64(s.End.Sub(s.Start).Microseconds()),
			Pid:  pid,
			Tid:  tid + 1,
			Args: args,
		})
	}
	out, err := json.Marshal(file)
	if err != nil {
		// map[string]string and floats cannot fail to marshal; keep the
		// endpoint total anyway.
		return []byte(`{"traceEvents":[],"displayTimeUnit":"ms"}`)
	}
	return out
}
