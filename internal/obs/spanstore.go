// SpanStore: the bounded in-process trace store behind
// GET /api/v1/traces. Spans arrive one at a time (from this process's
// instrumentation and from worker shard responses, forwarded by the
// coordinator); the store groups them by trace ID, classifies each
// trace when its root span completes (route for synchronous requests,
// job kind for v2 jobs), and retains traces under a tail-sampling
// policy: errors are always kept (up to an error budget), so are the
// slowest N per classification key, and everything else ring-evicts
// oldest-first under entry and byte bounds.
package obs

import (
	"sort"
	"sync"
	"time"
)

// SpanStoreOptions configures a SpanStore; zero values take defaults.
type SpanStoreOptions struct {
	// MaxTraces bounds retained traces (default 256).
	MaxTraces int
	// MaxSpansPerTrace bounds one trace's spans; overflow is dropped
	// and counted (default 512).
	MaxSpansPerTrace int
	// MaxBytes bounds the store's estimated resident span bytes
	// (default 4 MiB).
	MaxBytes int64
	// SlowestPerKey pins the slowest N traces per classification key
	// - route or job kind - against ring eviction (default 8).
	SlowestPerKey int
	// MaxErrorTraces bounds how many error traces stay pinned; beyond
	// it, error traces age out like any other (default 64).
	MaxErrorTraces int
	// Process names this process on spans that arrive without one
	// (default "drmap").
	Process string
}

// SpanStoreStats is a point-in-time accounting snapshot.
type SpanStoreStats struct {
	Traces       int   `json:"traces"`
	Bytes        int64 `json:"bytes"`
	Recorded     int64 `json:"recorded"`
	DroppedSpans int64 `json:"dropped_spans"`
	Evicted      int64 `json:"evicted_traces"`
}

// TraceSummary is one trace's index entry: enough to list, rank and
// link traces without shipping their spans.
type TraceSummary struct {
	TraceID        string    `json:"trace_id"`
	Root           string    `json:"root"`
	Key            string    `json:"key"`
	Start          time.Time `json:"start"`
	DurationMillis float64   `json:"duration_ms"`
	Spans          int       `json:"spans"`
	DroppedSpans   int       `json:"dropped_spans,omitempty"`
	Error          bool      `json:"error,omitempty"`
	Complete       bool      `json:"complete"`
}

// SpanStore implements SpanSink with tail-sampling retention.
type SpanStore struct {
	mu        sync.Mutex
	opt       SpanStoreOptions
	traces    map[string]*traceEntry
	order     []string // insertion order, oldest first
	slow      map[string][]slowRef
	errPinned int
	bytes     int64
	recorded  int64
	dropped   int64
	evicted   int64
}

type slowRef struct {
	id  string
	dur time.Duration
}

type traceEntry struct {
	id         string
	spans      []Span
	bytes      int64
	dropped    int
	hasRoot    bool
	rootName   string
	key        string
	keyPrio    int
	err        bool
	start      time.Time
	end        time.Time
	pinnedErr  bool
	pinnedSlow bool
	slowKey    string
}

// NewSpanStore returns a store with opt's bounds.
func NewSpanStore(opt SpanStoreOptions) *SpanStore {
	if opt.MaxTraces <= 0 {
		opt.MaxTraces = 256
	}
	if opt.MaxSpansPerTrace <= 0 {
		opt.MaxSpansPerTrace = 512
	}
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = 4 << 20
	}
	if opt.SlowestPerKey <= 0 {
		opt.SlowestPerKey = 8
	}
	if opt.MaxErrorTraces <= 0 {
		opt.MaxErrorTraces = 64
	}
	if opt.Process == "" {
		opt.Process = "drmap"
	}
	return &SpanStore{
		opt:    opt,
		traces: make(map[string]*traceEntry),
		slow:   make(map[string][]slowRef),
	}
}

// Process returns the store's default process name, for stamping onto
// span contexts.
func (st *SpanStore) Process() string { return st.opt.Process }

// RecordSpan implements SpanSink.
func (st *SpanStore) RecordSpan(s Span) {
	if s.TraceID == "" || s.SpanID == "" {
		return
	}
	if s.Process == "" {
		s.Process = st.opt.Process
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.recorded++
	e := st.traces[s.TraceID]
	if e == nil {
		e = &traceEntry{id: s.TraceID}
		st.traces[s.TraceID] = e
		st.order = append(st.order, s.TraceID)
	}
	if s.Error != "" {
		// An error marks the trace even when its span overflows the
		// per-trace cap: tail sampling must not lose failures to volume.
		e.err = true
	}
	if len(e.spans) >= st.opt.MaxSpansPerTrace {
		e.dropped++
		st.dropped++
	} else {
		sz := s.sizeBytes()
		e.spans = append(e.spans, s)
		e.bytes += sz
		st.bytes += sz
		if e.start.IsZero() || s.Start.Before(e.start) {
			e.start = s.Start
		}
		if s.End.After(e.end) {
			e.end = s.End
		}
	}
	if e.rootName == "" {
		e.rootName = s.Name
	}
	if s.Root {
		name, key, prio := rootKey(s)
		if !e.hasRoot || prio >= e.keyPrio {
			e.rootName, e.key, e.keyPrio = name, key, prio
		}
		e.hasRoot = true
	}
	if e.hasRoot {
		st.pinLocked(e)
	}
	st.enforceLocked(e.id)
}

// rootKey classifies a root span for tail sampling: a job kind beats a
// route beats the bare span name, so a v2 request whose job.run root
// completes after the HTTP request root ends up keyed per job kind.
func rootKey(s Span) (name, key string, prio int) {
	if kind, ok := s.Attr("kind"); ok && kind != "" {
		return s.Name, "job:" + kind, 2
	}
	if route, ok := s.Attr("route"); ok && route != "" {
		return s.Name, route, 1
	}
	return s.Name, s.Name, 0
}

// pinLocked re-evaluates a classified trace's pins: the error budget,
// and the slowest-N ranking of its current key (moving it between key
// lists when a later root re-classified it).
func (st *SpanStore) pinLocked(e *traceEntry) {
	if e.err && !e.pinnedErr && st.errPinned < st.opt.MaxErrorTraces {
		e.pinnedErr = true
		st.errPinned++
	}
	dur := e.end.Sub(e.start)
	if e.slowKey != "" && e.slowKey != e.key {
		st.removeSlowLocked(e.slowKey, e.id)
		e.slowKey = ""
		e.pinnedSlow = false
	}
	list := st.slow[e.key]
	for i := range list {
		if list[i].id == e.id {
			list[i].dur = dur
			sortSlow(list)
			st.slow[e.key] = list
			return
		}
	}
	if len(list) < st.opt.SlowestPerKey {
		list = append(list, slowRef{id: e.id, dur: dur})
	} else if dur > list[0].dur {
		// Unpin the displaced minimum; it becomes ring-evictable.
		if old := st.traces[list[0].id]; old != nil {
			old.pinnedSlow = false
			old.slowKey = ""
		}
		list[0] = slowRef{id: e.id, dur: dur}
	} else {
		return
	}
	sortSlow(list)
	st.slow[e.key] = list
	e.pinnedSlow = true
	e.slowKey = e.key
}

func sortSlow(list []slowRef) {
	sort.Slice(list, func(i, j int) bool { return list[i].dur < list[j].dur })
}

func (st *SpanStore) removeSlowLocked(key, id string) {
	list := st.slow[key]
	for i := range list {
		if list[i].id == id {
			st.slow[key] = append(list[:i], list[i+1:]...)
			if len(st.slow[key]) == 0 {
				delete(st.slow, key)
			}
			return
		}
	}
}

// enforceLocked ring-evicts oldest-first until the entry and byte
// bounds hold, skipping pinned traces and the trace just appended (so
// bounds hold to within the newest trace). When only pinned traces
// remain, the oldest pinned one goes anyway: bounds win over pins.
func (st *SpanStore) enforceLocked(current string) {
	for len(st.order) > st.opt.MaxTraces || st.bytes > st.opt.MaxBytes {
		victim := -1
		for i, id := range st.order {
			if id == current {
				continue
			}
			e := st.traces[id]
			if e != nil && !e.pinnedErr && !e.pinnedSlow {
				victim = i
				break
			}
		}
		if victim < 0 {
			for i, id := range st.order {
				if id != current {
					victim = i
					break
				}
			}
		}
		if victim < 0 {
			return // only the current trace is left; let it stand
		}
		st.evictLocked(victim)
	}
}

func (st *SpanStore) evictLocked(i int) {
	id := st.order[i]
	st.order = append(st.order[:i], st.order[i+1:]...)
	e := st.traces[id]
	delete(st.traces, id)
	if e == nil {
		return
	}
	st.bytes -= e.bytes
	if e.pinnedErr {
		st.errPinned--
	}
	if e.slowKey != "" {
		st.removeSlowLocked(e.slowKey, id)
	}
	st.evicted++
}

func (e *traceEntry) summary() TraceSummary {
	return TraceSummary{
		TraceID:        e.id,
		Root:           e.rootName,
		Key:            e.key,
		Start:          e.start,
		DurationMillis: float64(e.end.Sub(e.start).Microseconds()) / 1000.0,
		Spans:          len(e.spans),
		DroppedSpans:   e.dropped,
		Error:          e.err,
		Complete:       e.hasRoot,
	}
}

// Summaries returns up to limit trace summaries, newest-first
// (limit <= 0 means all retained traces).
func (st *SpanStore) Summaries(limit int) []TraceSummary {
	st.mu.Lock()
	defer st.mu.Unlock()
	if limit <= 0 || limit > len(st.order) {
		limit = len(st.order)
	}
	out := make([]TraceSummary, 0, limit)
	for i := len(st.order) - 1; i >= 0 && len(out) < limit; i-- {
		if e := st.traces[st.order[i]]; e != nil {
			out = append(out, e.summary())
		}
	}
	return out
}

// Summary returns one trace's summary.
func (st *SpanStore) Summary(id string) (TraceSummary, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.traces[id]
	if e == nil {
		return TraceSummary{}, false
	}
	return e.summary(), true
}

// Slowest returns the n slowest retained traces, slowest first.
func (st *SpanStore) Slowest(n int) []TraceSummary {
	all := st.Summaries(0)
	sort.Slice(all, func(i, j int) bool { return all[i].DurationMillis > all[j].DurationMillis })
	if n > 0 && n < len(all) {
		all = all[:n]
	}
	return all
}

// Stats returns the store's accounting snapshot.
func (st *SpanStore) Stats() SpanStoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return SpanStoreStats{
		Traces:       len(st.order),
		Bytes:        st.bytes,
		Recorded:     st.recorded,
		DroppedSpans: st.dropped,
		Evicted:      st.evicted,
	}
}

// Tree assembles one retained trace into its span tree.
func (st *SpanStore) Tree(id string) (*TraceTree, bool) {
	st.mu.Lock()
	e := st.traces[id]
	if e == nil {
		st.mu.Unlock()
		return nil, false
	}
	spans := make([]Span, len(e.spans))
	copy(spans, e.spans)
	sum := e.summary()
	st.mu.Unlock()
	return AssembleTree(id, sum, spans), true
}

// TraceNode is one span plus its children, sorted by start time.
type TraceNode struct {
	Span
	Children []*TraceNode `json:"children,omitempty"`
}

// TraceTree is the assembled form of one trace: its summary plus the
// parent-linked span forest. Spans whose parent was not retained (or
// lives only in another process's store) surface as extra roots
// rather than vanishing.
type TraceTree struct {
	TraceID string       `json:"trace_id"`
	Summary TraceSummary `json:"summary"`
	Roots   []*TraceNode `json:"roots"`
}

// AssembleTree links spans into a TraceTree by parent ID.
func AssembleTree(id string, sum TraceSummary, spans []Span) *TraceTree {
	nodes := make(map[string]*TraceNode, len(spans))
	ordered := make([]*TraceNode, 0, len(spans))
	for _, s := range spans {
		n := &TraceNode{Span: s}
		if _, dup := nodes[s.SpanID]; !dup {
			nodes[s.SpanID] = n
		}
		ordered = append(ordered, n)
	}
	tree := &TraceTree{TraceID: id, Summary: sum}
	for _, n := range ordered {
		parent := nodes[n.ParentID]
		if n.ParentID == "" || parent == nil || parent == n {
			tree.Roots = append(tree.Roots, n)
			continue
		}
		parent.Children = append(parent.Children, n)
	}
	sortNodes(tree.Roots)
	for _, n := range ordered {
		sortNodes(n.Children)
	}
	return tree
}

func sortNodes(ns []*TraceNode) {
	sort.Slice(ns, func(i, j int) bool {
		if !ns[i].Start.Equal(ns[j].Start) {
			return ns[i].Start.Before(ns[j].Start)
		}
		return ns[i].SpanID < ns[j].SpanID
	})
}
