// Span primitives for the in-process distributed tracer: a
// dependency-free span model (name, wall-clock start/end, parent link,
// typed attributes), context plumbing that rides the same contexts the
// trace IDs already ride, and the small composition pieces
// (SpanBuffer, TeeSpans, ForwardSpans) that let a worker record spans
// locally, ship them inside its shard response, and have the
// coordinator splice them into one cross-process tree.
//
// Everything is optional at every seam: a context without a SpanSink
// makes StartSpan/RecordSpan no-ops (nil *ActiveSpan methods are safe
// to call), so instrumented code paths cost two context lookups when
// tracing is off.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"
	"time"
)

// SpanHeader carries the caller's span ID on cross-process hops
// (coordinator dispatch → worker shard request), so the worker's spans
// parent to the coordinator's dispatch span and the assembled tree is
// one connected graph.
const SpanHeader = "X-Drmap-Span-Id"

// NewSpanID returns a fresh 8-byte random span ID in lowercase hex.
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Same stance as NewTraceID: a fixed ID beats a panic.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidSpanID reports whether id is safe to adopt from the wire; span
// IDs share the trace-ID alphabet and bounds.
func ValidSpanID(id string) bool { return traceIDRe.MatchString(id) }

// Attr is one typed span attribute. Value always holds the canonical
// text rendering; Kind preserves the source type so exporters (the
// Chrome trace converter, the dashboard) can format numerics natively.
type Attr struct {
	Key   string `json:"key"`
	Kind  string `json:"kind"` // "string", "int", "float", "bool"
	Value string `json:"value"`
}

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Kind: "string", Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr {
	return Attr{Key: key, Kind: "int", Value: strconv.Itoa(value)}
}

// F64 builds a float attribute.
func F64(key string, value float64) Attr {
	return Attr{Key: key, Kind: "float", Value: strconv.FormatFloat(value, 'g', -1, 64)}
}

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr {
	return Attr{Key: key, Kind: "bool", Value: strconv.FormatBool(value)}
}

// Span is one finished operation in a trace. Spans are recorded only
// when complete (End is always set), JSON round-trip exactly, and are
// self-describing enough to cross processes: a worker returns its
// spans inside the shard response and the coordinator records them
// verbatim.
//
// Root marks a span that completes its process-local view of the
// trace: the HTTP request span on a synchronous request, the job.run
// span on a detached v2 job. The SpanStore uses root completion to
// classify the trace (route/job-kind) for tail sampling.
type Span struct {
	TraceID  string    `json:"trace_id"`
	SpanID   string    `json:"span_id"`
	ParentID string    `json:"parent_id,omitempty"`
	Name     string    `json:"name"`
	Process  string    `json:"process,omitempty"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Attrs    []Attr    `json:"attrs,omitempty"`
	Error    string    `json:"error,omitempty"`
	Root     bool      `json:"root,omitempty"`
}

// Duration is the span's wall-clock extent.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Attr returns the value of the named attribute and whether it exists.
func (s Span) Attr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// sizeBytes estimates the span's resident footprint for the span
// store's byte budget. An estimate is fine: the budget bounds memory
// order-of-magnitude, not exactly.
func (s Span) sizeBytes() int64 {
	n := 112 + len(s.TraceID) + len(s.SpanID) + len(s.ParentID) +
		len(s.Name) + len(s.Process) + len(s.Error)
	for _, a := range s.Attrs {
		n += 48 + len(a.Key) + len(a.Kind) + len(a.Value)
	}
	return int64(n)
}

// SpanSink receives finished spans. The SpanStore is the usual sink;
// SpanBuffer collects spans for cross-process return, and TeeSpans
// fans one stream to both.
type SpanSink interface {
	RecordSpan(Span)
}

type (
	spanSinkKey    struct{}
	spanParentKey  struct{}
	spanProcessKey struct{}
)

// spanParent tracks the current parent span. boundary marks a parent
// recorded by another process (or another span store): the next span
// started under it still links to that parent ID but is a Root span
// locally, because no local span will ever close above it.
type spanParent struct {
	id       string
	boundary bool
}

// WithSpanSink attaches a span sink to ctx; spans started or recorded
// under ctx are delivered to it.
func WithSpanSink(ctx context.Context, sink SpanSink) context.Context {
	if sink == nil {
		return ctx
	}
	return context.WithValue(ctx, spanSinkKey{}, sink)
}

// SpanSinkFrom returns the context's span sink, or nil.
func SpanSinkFrom(ctx context.Context) SpanSink {
	sink, _ := ctx.Value(spanSinkKey{}).(SpanSink)
	return sink
}

// WithSpanParent adopts a parent span recorded elsewhere (a remote
// caller's dispatch span passed via SpanHeader, or a request span that
// ended before a detached job ran). Spans started under the returned
// context link to id but are local roots.
func WithSpanParent(ctx context.Context, id string) context.Context {
	if !ValidSpanID(id) {
		return ctx
	}
	return context.WithValue(ctx, spanParentKey{}, spanParent{id: id, boundary: true})
}

// SpanIDFrom returns the current span's ID - the ID new child spans
// would parent to - or "" when no span is open. Cross-process callers
// put it in SpanHeader; the job manager captures it at submit time.
func SpanIDFrom(ctx context.Context) string {
	p, _ := ctx.Value(spanParentKey{}).(spanParent)
	return p.id
}

// WithSpanProcess names the process recording spans under ctx (e.g.
// "drmap-serve", "worker/w1"); StartSpan and RecordSpan stamp it on
// every span so the assembled tree shows which process ran what.
func WithSpanProcess(ctx context.Context, name string) context.Context {
	if name == "" {
		return ctx
	}
	return context.WithValue(ctx, spanProcessKey{}, name)
}

// SpanProcessFrom returns the context's process name, or "".
func SpanProcessFrom(ctx context.Context) string {
	name, _ := ctx.Value(spanProcessKey{}).(string)
	return name
}

// ActiveSpan is an in-flight span returned by StartSpan. All methods
// are safe on a nil receiver, so call sites never branch on whether
// tracing is enabled.
type ActiveSpan struct {
	mu   sync.Mutex
	sink SpanSink
	span Span
	done bool
}

// ID returns the span's ID ("" on a nil/no-op span).
func (a *ActiveSpan) ID() string {
	if a == nil {
		return ""
	}
	return a.span.SpanID
}

// SetAttr appends attributes to the span.
func (a *ActiveSpan) SetAttr(attrs ...Attr) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.span.Attrs = append(a.span.Attrs, attrs...)
	a.mu.Unlock()
}

// Fail marks the span failed with err's message.
func (a *ActiveSpan) Fail(err error) {
	if a == nil || err == nil {
		return
	}
	a.mu.Lock()
	a.span.Error = err.Error()
	a.mu.Unlock()
}

// End completes the span and delivers it to the sink. Extra calls are
// no-ops, so deferred Ends compose with explicit early Ends.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return
	}
	a.done = true
	a.span.End = time.Now()
	span := a.span
	sink := a.sink
	a.mu.Unlock()
	sink.RecordSpan(span)
}

// StartSpan opens a span under ctx's current parent and returns a
// context in which the new span is the parent. Without a sink or a
// trace ID on ctx it returns (ctx, nil) - and the nil handle's
// methods are all no-ops.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *ActiveSpan) {
	sink := SpanSinkFrom(ctx)
	trace := TraceFrom(ctx)
	if sink == nil || trace == "" {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanParentKey{}).(spanParent)
	a := &ActiveSpan{
		sink: sink,
		span: Span{
			TraceID:  trace,
			SpanID:   NewSpanID(),
			ParentID: parent.id,
			Name:     name,
			Process:  SpanProcessFrom(ctx),
			Start:    time.Now(),
			Attrs:    attrs,
			Root:     parent.id == "" || parent.boundary,
		},
	}
	ctx = context.WithValue(ctx, spanParentKey{}, spanParent{id: a.span.SpanID})
	return ctx, a
}

// RecordSpan records an already-finished interval (a retroactive span:
// queue wait, a merge that was timed anyway) as a child of ctx's
// current span. Without a sink or trace ID it is a no-op.
func RecordSpan(ctx context.Context, name string, start, end time.Time, attrs ...Attr) {
	sink := SpanSinkFrom(ctx)
	trace := TraceFrom(ctx)
	if sink == nil || trace == "" {
		return
	}
	parent, _ := ctx.Value(spanParentKey{}).(spanParent)
	sink.RecordSpan(Span{
		TraceID:  trace,
		SpanID:   NewSpanID(),
		ParentID: parent.id,
		Name:     name,
		Process:  SpanProcessFrom(ctx),
		Start:    start,
		End:      end,
		Attrs:    attrs,
	})
}

// ForwardSpans records spans produced by another process (a worker's
// shard response) into ctx's sink. Forwarded spans keep their IDs and
// parents - that is what stitches the cross-process tree together -
// but lose Root: only this process's own root spans may complete the
// trace, and a missing trace ID is filled from ctx.
func ForwardSpans(ctx context.Context, spans []Span) {
	sink := SpanSinkFrom(ctx)
	if sink == nil || len(spans) == 0 {
		return
	}
	trace := TraceFrom(ctx)
	for _, s := range spans {
		if s.SpanID == "" {
			continue
		}
		if s.TraceID == "" {
			s.TraceID = trace
		}
		s.Root = false
		sink.RecordSpan(s)
	}
}

// SpanBuffer is a bounded in-memory SpanSink: workers collect the
// spans of one shard evaluation here and return them in the shard
// response. Overflow drops the newest spans and counts them.
type SpanBuffer struct {
	mu      sync.Mutex
	max     int
	spans   []Span
	dropped int
}

// NewSpanBuffer returns a buffer keeping at most max spans (max <= 0
// means DefaultSpanBufferCap).
func NewSpanBuffer(max int) *SpanBuffer {
	if max <= 0 {
		max = DefaultSpanBufferCap
	}
	return &SpanBuffer{max: max}
}

// DefaultSpanBufferCap bounds a shard response's span payload.
const DefaultSpanBufferCap = 256

// RecordSpan implements SpanSink.
func (b *SpanBuffer) RecordSpan(s Span) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.spans) >= b.max {
		b.dropped++
		return
	}
	b.spans = append(b.spans, s)
}

// Spans returns the buffered spans (the internal slice; callers own
// the buffer lifecycle and stop recording before reading).
func (b *SpanBuffer) Spans() []Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spans
}

// Dropped returns how many spans overflowed the buffer.
func (b *SpanBuffer) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// teeSink fans RecordSpan to several sinks.
type teeSink struct{ sinks []SpanSink }

func (t teeSink) RecordSpan(s Span) {
	for _, sink := range t.sinks {
		sink.RecordSpan(s)
	}
}

// TeeSpans composes sinks: every recorded span goes to all of them.
// Nil sinks are skipped; zero live sinks yields nil (tracing off), one
// yields that sink unwrapped.
func TeeSpans(sinks ...SpanSink) SpanSink {
	live := make([]SpanSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeSink{sinks: live}
}

// AttrString renders attributes as "k=v k=v" for logs, the dashboard
// and CLI trace output.
func AttrString(attrs []Attr) string {
	out := ""
	for i, a := range attrs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%s", a.Key, a.Value)
	}
	return out
}
