package obs

import (
	"context"
	"testing"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatal("two trace IDs collided")
	}
	if !ValidTraceID(a) {
		t.Fatalf("generated ID %q not valid", a)
	}
}

func TestEnsureTrace(t *testing.T) {
	ctx := context.Background()

	// Fresh context, no candidate: generates.
	ctx2, id := EnsureTrace(ctx, "")
	if id == "" || TraceFrom(ctx2) != id {
		t.Fatalf("generated id %q not attached", id)
	}

	// Existing context ID wins over any candidate.
	ctx3, id3 := EnsureTrace(ctx2, "aaaabbbbccccdddd")
	if id3 != id || TraceFrom(ctx3) != id {
		t.Fatalf("existing id %q replaced by %q", id, id3)
	}

	// Valid inbound candidate is adopted.
	_, id4 := EnsureTrace(ctx, "aaaabbbbccccdddd")
	if id4 != "aaaabbbbccccdddd" {
		t.Fatalf("valid candidate rejected: got %q", id4)
	}

	// Hostile candidate (would corrupt logs/labels) is replaced.
	_, id5 := EnsureTrace(ctx, "evil\"}\ninjected")
	if !ValidTraceID(id5) {
		t.Fatalf("hostile candidate propagated: %q", id5)
	}
}
