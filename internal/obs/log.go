package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the process logger from the -log-level/-log-format
// flag values: level is debug, info, warn or error; format is text or
// json. Unknown values error so flag typos fail startup loudly instead
// of silently logging at the wrong level.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// NopLogger returns a logger that discards everything - the default
// when a component is constructed without one, so library code can log
// unconditionally.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

// LogWith returns logger with the context's trace ID attached as a
// trace_id attribute (or logger unchanged when none is set), so every
// request/shard/job line is correlatable across processes.
func LogWith(ctx context.Context, logger *slog.Logger) *slog.Logger {
	if logger == nil {
		return NopLogger()
	}
	if id := TraceFrom(ctx); id != "" {
		return logger.With("trace_id", id)
	}
	return logger
}
