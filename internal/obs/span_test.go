package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartSpanWithoutSinkIsNoop(t *testing.T) {
	ctx := WithTrace(context.Background(), NewTraceID())
	sctx, span := StartSpan(ctx, "orphan")
	if span != nil {
		t.Fatalf("StartSpan without a sink returned %v, want nil", span)
	}
	if sctx != ctx {
		t.Fatal("StartSpan without a sink should return ctx unchanged")
	}
	// Every method must be nil-safe.
	span.SetAttr(Str("k", "v"))
	span.Fail(errors.New("x"))
	span.End()
	if span.ID() != "" {
		t.Fatalf("nil span ID = %q, want empty", span.ID())
	}

	// A sink without a trace ID is equally inert.
	buf := NewSpanBuffer(4)
	_, span = StartSpan(WithSpanSink(context.Background(), buf), "no-trace")
	if span != nil {
		t.Fatal("StartSpan without a trace ID should be a no-op")
	}
	RecordSpan(WithSpanSink(context.Background(), buf), "no-trace", time.Now(), time.Now())
	if len(buf.Spans()) != 0 {
		t.Fatalf("no-op paths recorded %d spans", len(buf.Spans()))
	}
}

func TestSpanParentageAndBoundary(t *testing.T) {
	buf := NewSpanBuffer(16)
	ctx := WithTrace(context.Background(), NewTraceID())
	ctx = WithSpanSink(ctx, buf)
	ctx = WithSpanProcess(ctx, "test-proc")

	rctx, root := StartSpan(ctx, "request", Str("route", "/api/v1/dse"))
	cctx, child := StartSpan(rctx, "dse")
	RecordSpan(cctx, "count", time.Now().Add(-time.Millisecond), time.Now())
	child.End()
	root.End()

	spans := buf.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.Process != "test-proc" {
			t.Errorf("span %s process = %q, want test-proc", s.Name, s.Process)
		}
	}
	req, dse, count := byName["request"], byName["dse"], byName["count"]
	if !req.Root || req.ParentID != "" {
		t.Errorf("request span: Root=%v ParentID=%q, want root with no parent", req.Root, req.ParentID)
	}
	if dse.Root || dse.ParentID != req.SpanID {
		t.Errorf("dse span: Root=%v ParentID=%q, want child of %s", dse.Root, dse.ParentID, req.SpanID)
	}
	if count.Root || count.ParentID != dse.SpanID {
		t.Errorf("count span: Root=%v ParentID=%q, want child of %s", count.Root, count.ParentID, dse.SpanID)
	}

	// A boundary parent (adopted from another process) keeps the link
	// but the next local span is a Root: nothing local closes above it.
	remote := NewSpanID()
	bctx := WithSpanParent(ctx, remote)
	if got := SpanIDFrom(bctx); got != remote {
		t.Fatalf("SpanIDFrom after WithSpanParent = %q, want %q", got, remote)
	}
	_, shard := StartSpan(bctx, "shard.evaluate")
	shard.End()
	last := buf.Spans()[len(buf.Spans())-1]
	if !last.Root || last.ParentID != remote {
		t.Errorf("boundary child: Root=%v ParentID=%q, want local root parented to %s",
			last.Root, last.ParentID, remote)
	}

	// Invalid wire IDs are rejected rather than adopted.
	if SpanIDFrom(WithSpanParent(ctx, "NOT-HEX!")) != "" {
		t.Error("WithSpanParent adopted an invalid span ID")
	}
}

func TestForwardSpansFillsTraceAndClearsRoot(t *testing.T) {
	buf := NewSpanBuffer(8)
	trace := NewTraceID()
	ctx := WithSpanSink(WithTrace(context.Background(), trace), buf)
	ForwardSpans(ctx, []Span{
		{SpanID: "aaaa", Name: "shard.evaluate", Root: true},
		{SpanID: "", Name: "dropped: no span id"},
		{TraceID: "othertraceid1234", SpanID: "bbbb", Name: "count"},
	})
	spans := buf.Spans()
	if len(spans) != 2 {
		t.Fatalf("forwarded %d spans, want 2", len(spans))
	}
	if spans[0].TraceID != trace {
		t.Errorf("missing trace ID not filled: got %q", spans[0].TraceID)
	}
	if spans[0].Root {
		t.Error("forwarded span kept Root; only local roots may complete a trace")
	}
	if spans[1].TraceID != "othertraceid1234" {
		t.Errorf("explicit trace ID overwritten: got %q", spans[1].TraceID)
	}
}

func TestSpanBufferOverflowCounts(t *testing.T) {
	buf := NewSpanBuffer(2)
	for i := 0; i < 5; i++ {
		buf.RecordSpan(Span{TraceID: "t", SpanID: NewSpanID()})
	}
	if len(buf.Spans()) != 2 || buf.Dropped() != 3 {
		t.Fatalf("buffer kept %d dropped %d, want 2/3", len(buf.Spans()), buf.Dropped())
	}
}

func TestTeeSpans(t *testing.T) {
	if TeeSpans(nil, nil) != nil {
		t.Error("TeeSpans of all-nil sinks should be nil")
	}
	a, b := NewSpanBuffer(4), NewSpanBuffer(4)
	if TeeSpans(nil, a) != SpanSink(a) {
		t.Error("TeeSpans of one live sink should return it unwrapped")
	}
	tee := TeeSpans(a, b)
	tee.RecordSpan(Span{TraceID: "t", SpanID: "s"})
	if len(a.Spans()) != 1 || len(b.Spans()) != 1 {
		t.Fatalf("tee delivered %d/%d, want 1/1", len(a.Spans()), len(b.Spans()))
	}
}

// storeSpan builds one span of a synthetic trace for store tests.
func storeSpan(trace string, name string, root bool, dur time.Duration, attrs ...Attr) Span {
	end := time.Now()
	return Span{
		TraceID: trace, SpanID: NewSpanID(), Name: name,
		Start: end.Add(-dur), End: end, Root: root, Attrs: attrs,
	}
}

func TestSpanStoreErrorAndSlowSurviveEviction(t *testing.T) {
	st := NewSpanStore(SpanStoreOptions{MaxTraces: 8, SlowestPerKey: 2, MaxErrorTraces: 4})

	errSpan := storeSpan("errtrace00000001", "request", true, time.Millisecond, Str("route", "/api/v1/dse"))
	errSpan.Error = "boom"
	st.RecordSpan(errSpan)

	slow := storeSpan("slowtrace0000001", "request", true, 10*time.Second, Str("route", "/api/v1/dse"))
	st.RecordSpan(slow)

	// Flood with fast, unclassified-key traffic on the same route.
	for i := 0; i < 100; i++ {
		st.RecordSpan(storeSpan(fmt.Sprintf("fasttrace%07d", i), "request", true,
			time.Microsecond, Str("route", "/api/v1/dse")))
	}

	if _, ok := st.Summary("errtrace00000001"); !ok {
		t.Error("error trace was evicted; tail sampling must pin failures")
	}
	sum, ok := st.Summary("slowtrace0000001")
	if !ok {
		t.Fatal("slowest trace was evicted; tail sampling must pin the slowest per key")
	}
	if sum.DurationMillis < 9000 {
		t.Errorf("slow trace duration_ms = %v, want ~10000", sum.DurationMillis)
	}
	if stats := st.Stats(); stats.Traces > 8 {
		t.Errorf("store holds %d traces, want <= MaxTraces=8", stats.Traces)
	} else if stats.Evicted == 0 {
		t.Error("flood evicted nothing; ring eviction is not running")
	}
}

func TestSpanStoreBounds(t *testing.T) {
	st := NewSpanStore(SpanStoreOptions{MaxTraces: 4, MaxSpansPerTrace: 3, MaxBytes: 2048})

	// Per-trace span cap: overflow is dropped and counted.
	for i := 0; i < 10; i++ {
		st.RecordSpan(storeSpan("capped0000000001", "count", false, time.Microsecond))
	}
	sum, ok := st.Summary("capped0000000001")
	if !ok {
		t.Fatal("capped trace missing")
	}
	if sum.Spans != 3 || sum.DroppedSpans != 7 {
		t.Errorf("capped trace spans=%d dropped=%d, want 3/7", sum.Spans, sum.DroppedSpans)
	}

	// Byte bound: big unclassified traces ring-evict to hold MaxBytes.
	for i := 0; i < 50; i++ {
		s := storeSpan(fmt.Sprintf("bigtrace%08d", i), "request", false, time.Microsecond)
		s.Attrs = []Attr{Str("payload", strings.Repeat("x", 300))}
		st.RecordSpan(s)
	}
	stats := st.Stats()
	if stats.Traces > 4 {
		t.Errorf("store holds %d traces, want <= 4", stats.Traces)
	}
	// The byte bound holds to within the newest trace, which is never
	// evicted in favor of staying non-empty.
	if stats.Bytes > 2048+1024 {
		t.Errorf("store holds %d bytes, want ~<= 2048", stats.Bytes)
	}
}

func TestSpanStoreRootReclassification(t *testing.T) {
	st := NewSpanStore(SpanStoreOptions{})
	trace := NewTraceID()
	// The HTTP request root lands first, keyed by route...
	st.RecordSpan(storeSpan(trace, "request", true, time.Millisecond, Str("route", "/api/v2/jobs")))
	sum, _ := st.Summary(trace)
	if sum.Key != "/api/v2/jobs" || !sum.Complete {
		t.Fatalf("after request root: key=%q complete=%v, want /api/v2/jobs complete", sum.Key, sum.Complete)
	}
	// ...then the detached job.run root re-classifies by job kind.
	st.RecordSpan(storeSpan(trace, "job.run", true, 5*time.Millisecond, Str("kind", "batch")))
	sum, _ = st.Summary(trace)
	if sum.Key != "job:batch" {
		t.Errorf("after job.run root: key=%q, want job:batch", sum.Key)
	}
	if sum.Root != "job.run" {
		t.Errorf("root name = %q, want job.run", sum.Root)
	}
}

func TestAssembleTreeOrphansAndOrdering(t *testing.T) {
	base := time.Now()
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	spans := []Span{
		{TraceID: "t", SpanID: "root", Name: "request", Start: at(0), End: at(10)},
		{TraceID: "t", SpanID: "b", ParentID: "root", Name: "second", Start: at(5), End: at(9)},
		{TraceID: "t", SpanID: "a", ParentID: "root", Name: "first", Start: at(1), End: at(4)},
		{TraceID: "t", SpanID: "orphan", ParentID: "gone", Name: "lost-parent", Start: at(2), End: at(3)},
		{TraceID: "t", SpanID: "self", ParentID: "self", Name: "self-loop", Start: at(6), End: at(7)},
	}
	tree := AssembleTree("t", TraceSummary{TraceID: "t"}, spans)
	if len(tree.Roots) != 3 {
		t.Fatalf("tree has %d roots, want 3 (root + orphan + self-loop)", len(tree.Roots))
	}
	if tree.Roots[0].Name != "request" {
		t.Errorf("roots not start-sorted: first is %s", tree.Roots[0].Name)
	}
	kids := tree.Roots[0].Children
	if len(kids) != 2 || kids[0].Name != "first" || kids[1].Name != "second" {
		t.Fatalf("children of request misordered: %v", kids)
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	base := time.Now()
	spans := []Span{
		{TraceID: "t", SpanID: "r", Name: "request", Process: "coordinator",
			Start: base, End: base.Add(10 * time.Millisecond), Root: true},
		{TraceID: "t", SpanID: "w", ParentID: "r", Name: "shard.evaluate", Process: "worker/w1",
			Start: base.Add(time.Millisecond), End: base.Add(9 * time.Millisecond),
			Attrs: []Attr{Int("shard", 0)}, Error: "late"},
	}
	tree := AssembleTree("t", TraceSummary{TraceID: "t"}, spans)
	raw := ChromeTrace(tree)
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("ChromeTrace emitted invalid JSON: %v\n%s", err, raw)
	}
	var complete, meta int
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Ts == nil || ev.Dur == nil {
				t.Errorf("complete event %s missing ts/dur", ev.Name)
			}
			pids[ev.Pid] = true
		case "M":
			meta++
		}
	}
	if complete != 2 {
		t.Errorf("%d complete events, want 2", complete)
	}
	if meta < 2 {
		t.Errorf("%d process_name metadata events, want one per process (2)", meta)
	}
	if len(pids) != 2 {
		t.Errorf("spans landed on %d pids, want 2 distinct processes", len(pids))
	}
}

// TestCappedCounterConcurrentScrapeRecord drives the per-trace labeled
// counter (the capped-cardinality family /metrics uses for
// drmap_trace_* series) from many recorders while a scraper renders the
// exposition, under -race: eviction at the cap must never corrupt a
// concurrent scrape, and the cardinality bound must hold throughout.
func TestCappedCounterConcurrentScrapeRecord(t *testing.T) {
	reg := NewRegistry()
	const capN = 8
	cv := reg.CappedCounter("drmap_trace_shards_total",
		"Shards evaluated per trace.", capN, "trace_id")

	var recorders sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	for g := 0; g < 4; g++ {
		recorders.Add(1)
		go func(g int) {
			defer recorders.Done()
			for i := 0; i < 500; i++ {
				cv.With(fmt.Sprintf("trace-%d-%d", g, i)).Inc()
			}
		}(g)
	}
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			text := reg.Expose()
			expo, err := ParseExposition(text)
			if err != nil {
				t.Errorf("mid-flood exposition failed to parse: %v", err)
				return
			}
			_ = expo.Has("drmap_trace_shards_total")
		}
	}()
	recorders.Wait()
	close(stop)
	<-scraperDone

	expo, err := ParseExposition(reg.Expose())
	if err != nil {
		t.Fatalf("final exposition failed to parse: %v", err)
	}
	fam := expo.Families["drmap_trace_shards_total"]
	if fam == nil {
		t.Fatal("drmap_trace_shards_total family missing from exposition")
	}
	if series := len(fam.Samples); series == 0 || series > capN {
		t.Fatalf("capped counter holds %d series, want 1..%d", series, capN)
	}
}
