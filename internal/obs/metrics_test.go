package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.", "route", "status")
	c.With("/a", "200").Add(3)
	c.With("/a", "500").Inc()
	g := r.Gauge("test_temp", "A gauge.")
	g.With().Set(2.5)

	text := r.Expose()
	exp, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, text)
	}
	if v, ok := exp.Value("test_requests_total", map[string]string{"route": "/a", "status": "200"}); !ok || v != 3 {
		t.Fatalf("test_requests_total{/a,200} = %v, %v; want 3", v, ok)
	}
	if v, ok := exp.Value("test_temp", nil); !ok || v != 2.5 {
		t.Fatalf("test_temp = %v, %v; want 2.5", v, ok)
	}
	if exp.Families["test_requests_total"].Kind != KindCounter {
		t.Fatalf("test_requests_total kind = %q", exp.Families["test_requests_total"].Kind)
	}
	// Unlabeled samples must render as bare `name value` lines: the
	// services' legacy metric tests (and simple scrapers) rely on it.
	if !strings.Contains(text, "test_temp 2.5\n") {
		t.Fatalf("unlabeled gauge not rendered bare:\n%s", text)
	}
}

func TestHistogramBucketMath(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	hh := h.With()
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		hh.Observe(v)
	}
	// le semantics: 0.1 falls in the 0.1 bucket, 100 only in +Inf.
	want := []int64{2, 3, 4, 5}
	got := hh.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	if hh.Count() != 5 {
		t.Fatalf("count = %d, want 5", hh.Count())
	}
	if diff := hh.Sum() - 102.65; math.Abs(diff) > 1e-9 {
		t.Fatalf("sum = %v, want 102.65", hh.Sum())
	}

	exp, err := ParseExposition(r.Expose())
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if v, ok := exp.Value("test_latency_seconds_bucket", map[string]string{"le": "1"}); !ok || v != 3 {
		t.Fatalf("bucket le=1 = %v, %v; want 3", v, ok)
	}
	if v, ok := exp.Value("test_latency_seconds_bucket", map[string]string{"le": "+Inf"}); !ok || v != 5 {
		t.Fatalf("bucket le=+Inf = %v, %v; want 5", v, ok)
	}
	if v, ok := exp.Value("test_latency_seconds_count", nil); !ok || v != 5 {
		t.Fatalf("count sample = %v, %v; want 5", v, ok)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_esc_total", "Escapes.", "path").
		With("a\\b\"c\nd").Inc()
	text := r.Expose()
	exp, err := ParseExposition(text)
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, text)
	}
	if v, ok := exp.Value("test_esc_total", map[string]string{"path": "a\\b\"c\nd"}); !ok || v != 1 {
		t.Fatalf("escaped label roundtrip failed: %v, %v\n%s", v, ok, text)
	}
}

func TestGatherersAndDescribe(t *testing.T) {
	r := NewRegistry()
	r.Describe("test_described", KindGauge, "Described gauge.")
	r.AddGatherer(func() []Sample {
		return []Sample{
			{Name: "test_described", Value: 7},
			{Name: "test_undesc_total", Value: 2},
			{Name: "test_undesc_gauge", Value: 1},
		}
	})
	exp, err := ParseExposition(r.Expose())
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, r.Expose())
	}
	if exp.Families["test_described"].Help != "Described gauge." {
		t.Fatalf("help = %q", exp.Families["test_described"].Help)
	}
	// Undescribed gathered names still get parseable metadata, with the
	// _total suffix heuristically typed as a counter.
	if exp.Families["test_undesc_total"].Kind != KindCounter {
		t.Fatalf("test_undesc_total kind = %q", exp.Families["test_undesc_total"].Kind)
	}
	if exp.Families["test_undesc_gauge"].Kind != KindGauge {
		t.Fatalf("test_undesc_gauge kind = %q", exp.Families["test_undesc_gauge"].Kind)
	}
}

func TestCappedCounterEvicts(t *testing.T) {
	r := NewRegistry()
	cv := r.CappedCounter("test_traces_total", "Traces.", 2, "trace_id")
	cv.With("t1").Inc()
	cv.With("t2").Inc()
	cv.With("t3").Inc() // evicts t1
	exp, err := ParseExposition(r.Expose())
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if _, ok := exp.Value("test_traces_total", map[string]string{"trace_id": "t1"}); ok {
		t.Fatal("t1 should have been evicted")
	}
	for _, id := range []string{"t2", "t3"} {
		if v, ok := exp.Value("test_traces_total", map[string]string{"trace_id": id}); !ok || v != 1 {
			t.Fatalf("%s = %v, %v; want 1", id, v, ok)
		}
	}
}

func TestSharedInstrumentAndSortedOutput(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_shared_total", "Shared.")
	b := r.Counter("test_shared_total", "Shared.")
	a.With().Inc()
	b.With().Add(2)
	if got := a.With().Value(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
	r.Gauge("test_z", "Z.").With().Set(1)
	r.Gauge("test_a", "A.").With().Set(1)
	text := r.Expose()
	if strings.Index(text, "test_a") > strings.Index(text, "test_z") {
		t.Fatalf("families not sorted:\n%s", text)
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	bad := []string{
		"no_metadata 1\n",
		"# HELP x one\nx 1\n",                         // TYPE missing
		"# HELP x one\n# TYPE x wat\nx 1\n",           // bad type
		"# HELP x one\n# TYPE x gauge\nx{a=b} 1\n",    // unquoted label
		"# HELP x one\n# TYPE x gauge\nx notanum\n",   // bad value
		"# HELP x one\n# TYPE x gauge\nx{a=\"b\" 1\n", // unterminated labels
	}
	for _, text := range bad {
		if _, err := ParseExposition(text); err == nil {
			t.Fatalf("ParseExposition accepted %q", text)
		}
	}
}

func TestBuildInfoMetric(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	exp, err := ParseExposition(r.Expose())
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	fam := exp.Families["drmap_build_info"]
	if fam == nil || len(fam.Samples) != 1 {
		t.Fatalf("drmap_build_info missing: %+v", fam)
	}
	s := fam.Samples[0]
	if s.Value != 1 || s.Labels["go_version"] == "" {
		t.Fatalf("drmap_build_info sample = %+v", s)
	}
}
