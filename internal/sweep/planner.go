// Delta repricing for sweeps. A sweep evaluates a trajectory of
// near-identical DSE points - the same network under a mutated DRAM
// geometry, buffer budget or batch size - and most of each point's work
// is the backend-independent tile-group counting of countplan.go. The
// Planner keeps every counted (and vectorized) column keyed by its full
// count identity, so a sweep point whose count signature carries over
// from an earlier point reprices flat plans instead of recounting: the
// registry scan counts once per distinct die geometry, and a buffer
// sweep recounts only the layers whose tiling candidates actually
// changed.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/mapping"
	"drmap/internal/profile"
	"drmap/internal/tiling"
)

// PlanStats counts a Planner's column outcomes: a hit repriced a cached
// vectorized plan, a miss counted the column fresh.
type PlanStats struct {
	Hits   int64
	Misses int64
}

// Planner caches vectorized count plans (core.FlatColumn) across the
// points of a sweep. It is NOT safe for concurrent use - sweeps are
// serial trajectories; the concurrent equivalent is the service's
// single-flight plan cache.
type Planner struct {
	plans map[string]*core.FlatColumn
	stats PlanStats
	// scratch buffers for the per-column reprice and the per-layer cell
	// accumulation; both are recycled across points (core.ReduceCells
	// copies the cells it keeps).
	scratch []core.CellResult
	cells   []core.CellResult
}

// NewPlanner returns an empty plan cache.
func NewPlanner() *Planner {
	return &Planner{plans: map[string]*core.FlatColumn{}}
}

// Stats snapshots the hit/miss counters.
func (p *Planner) Stats() PlanStats { return p.stats }

// Plans returns the number of distinct cached plans.
func (p *Planner) Plans() int { return len(p.plans) }

// columnKey content-addresses one column's count plan by everything the
// counts depend on: the evaluator's count signature (die geometry,
// element width, batch, counting convention), the layer, the candidate
// tilings, the schedule and the policy list. Two sweep points agreeing
// on all of these produce identical counts by construction, whatever
// else (costs, timing, buffer budgets that left the tilings unchanged)
// differs between them.
type columnKey struct {
	Count    core.CountKey
	Layer    cnn.Layer
	Tilings  []tiling.Tiling
	Schedule string
	Policies []mapping.Policy
}

// fingerprint is the sweep-local content address: SHA-256 over the
// canonical JSON encoding (the same scheme the service cache uses;
// reimplemented here because service imports sweep).
func fingerprint(k columnKey) (string, error) {
	b, err := json.Marshal(k)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// column returns the vectorized count plan of one (layer, schedule)
// column, counting it only when no earlier point counted an identical
// column.
func (p *Planner) column(ev *core.Evaluator, lg core.LayerGrid, si int, s tiling.Schedule, policies []mapping.Policy) (*core.FlatColumn, error) {
	key, err := fingerprint(columnKey{
		Count:    ev.CountKey(),
		Layer:    lg.Layer,
		Tilings:  lg.Tilings,
		Schedule: s.String(),
		Policies: policies,
	})
	if err != nil {
		return nil, fmt.Errorf("sweep: plan key: %w", err)
	}
	if fc := p.plans[key]; fc != nil {
		p.stats.Hits++
		return fc, nil
	}
	p.stats.Misses++
	fc := ev.CountScheduleColumn(lg, si, s, policies).Flatten()
	p.plans[key] = fc
	return fc, nil
}

// run evaluates one DSE point through the plan cache: every column is
// repriced from its (possibly carried-over) flat plan and reduced per
// layer exactly as the serial scan reduces, so the totals are
// bit-for-bit core.RunDSE's for the same inputs.
func (p *Planner) run(ev *core.Evaluator, net cnn.Network, schedules []tiling.Schedule, policies []mapping.Policy) (edp, seconds, energy float64, err error) {
	grids, err := core.DSEGrid(net, ev, schedules, policies)
	if err != nil {
		return 0, 0, 0, err
	}
	tm := ev.Timing()
	for _, lg := range grids {
		p.cells = p.cells[:0]
		for si, s := range schedules {
			fc, err := p.column(ev, lg, si, s, policies)
			if err != nil {
				return 0, 0, 0, err
			}
			p.scratch = ev.PriceFlatInto(fc, core.MinimizeEDP, p.scratch)
			p.cells = append(p.cells, p.scratch...)
		}
		lr := core.ReduceCells(lg, schedules, policies, p.cells, tm)
		edp += lr.MinEDP
		seconds += lr.Cost.Seconds(tm)
		energy += lr.Cost.Energy
	}
	return edp, seconds, energy, nil
}

// TotalEDP evaluates one sweep point - the DRMap-policy, all-schedules
// DSE of the network on the characterized DRAM system - and returns its
// total EDP, identical bit-for-bit to summing core.RunDSE with the
// DRMap policy. Columns whose count identity appeared at an earlier
// point (same die geometry, batch and tiling candidates) are repriced
// from the cached plan rather than recounted; Stats reports how much of
// the trajectory carried over.
func (p *Planner) TotalEDP(prof *profile.Profile, acfg accel.Config, net cnn.Network, batch int) (float64, error) {
	ev, err := core.NewEvaluator(prof, acfg, batch)
	if err != nil {
		return 0, err
	}
	edp, _, _, err := p.run(ev, net, tiling.Schedules, []mapping.Policy{mapping.DRMap()})
	return edp, err
}
