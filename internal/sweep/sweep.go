// Package sweep runs the parameter sweeps behind the reproduction's
// ablation studies: subarrays-per-bank, on-chip buffer capacity, batch
// size and the data-toggle energy term. Each sweep produces a Table
// that renders as aligned text or CSV, so the ablation numbers in
// EXPERIMENTS.md are regenerable from one command.
package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/profile"
	"drmap/internal/tiling"
	"drmap/internal/trace"
)

// Table is a sweep result: one labelled row per swept value.
type Table struct {
	Name   string
	Header []string
	Labels []string
	Rows   [][]float64
}

// AddRow appends a labelled row; the value count must match the header.
func (t *Table) AddRow(label string, values ...float64) error {
	if len(values) != len(t.Header)-1 {
		return fmt.Errorf("sweep: row %q has %d values for %d columns", label, len(values), len(t.Header)-1)
	}
	t.Labels = append(t.Labels, label)
	t.Rows = append(t.Rows, values)
	return nil
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	sb.WriteString(t.Name + "\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	for i, label := range t.Labels {
		fmt.Fprint(w, label)
		for _, v := range t.Rows[i] {
			fmt.Fprintf(w, "\t%.6g", v)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return sb.String()
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for i, label := range t.Labels {
		rec := make([]string, 0, len(t.Rows[i])+1)
		rec = append(rec, label)
		for _, v := range t.Rows[i] {
			rec = append(rec, strconv.FormatFloat(v, 'g', 8, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// drmapTotalEDP characterizes the config and returns the DRMap-only DSE
// total EDP of the network, repricing through the sweep's plan cache:
// consecutive sweep points whose count identity carries over (same die
// geometry, batch and tiling candidates) skip the counting pass.
func drmapTotalEDP(pl *Planner, cfg dram.Config, acfg accel.Config, net cnn.Network, batch int) (float64, error) {
	prof, err := profile.Characterize(cfg)
	if err != nil {
		return 0, err
	}
	return pl.TotalEDP(prof, acfg, net, batch)
}

// Subarrays sweeps subarrays-per-bank on SALP-MASA: the subarray-stream
// cost and the network's DRMap EDP quantify how much parallelism
// headroom the architecture choice buys.
func Subarrays(counts []int, net cnn.Network, batch int) (*Table, error) {
	t := &Table{
		Name:   "Ablation: subarrays per bank (SALP-MASA, " + net.Name + ")",
		Header: []string{"subarrays", "subarray-cycles/access", "subarray-nJ/access", "DRMap-total-EDP[uJs]"},
	}
	pl := NewPlanner()
	for _, sa := range counts {
		cfg := dram.SALPMASAConfig()
		cfg.Geometry.Subarrays = sa
		prof, err := profile.Characterize(cfg)
		if err != nil {
			return nil, err
		}
		cost := prof.Stream[trace.AccessSubarraySwitch]
		edp, err := drmapTotalEDP(pl, cfg, accel.TableII(), net, batch)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(strconv.Itoa(sa), cost.Cycles, cost.Energy*1e9, edp*1e6); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Buffers sweeps the on-chip buffer capacity on any registered DRAM
// backend: smaller buffers force finer partitionings and more DRAM
// traffic.
func Buffers(sizesKB []int, backend dram.Backend, net cnn.Network, batch int) (*Table, error) {
	t := &Table{
		Name:   fmt.Sprintf("Ablation: on-chip buffer capacity (%s, %s)", backend.Label(), net.Name),
		Header: []string{"buffer-KB", "DRMap-total-EDP[uJs]"},
	}
	cfg := backend.Config
	// One plan cache across the trajectory: the count signature is
	// buffer-independent, so layers whose tiling candidates coincide
	// between budgets reprice the carried-over plans.
	pl := NewPlanner()
	for _, kb := range sizesKB {
		acfg := accel.TableII()
		acfg.IfmBufBytes, acfg.WgtBufBytes, acfg.OfmBufBytes = kb*1024, kb*1024, kb*1024
		edp, err := drmapTotalEDP(pl, cfg, acfg, net, batch)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(strconv.Itoa(kb), edp*1e6); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Batches sweeps the batch size on any registered DRAM backend:
// traffic scales linearly, EDP super-linearly (energy x delay).
func Batches(batches []int, backend dram.Backend, net cnn.Network) (*Table, error) {
	t := &Table{
		Name:   fmt.Sprintf("Ablation: batch size (%s, %s)", backend.Label(), net.Name),
		Header: []string{"batch", "DRMap-total-EDP[uJs]"},
	}
	cfg := backend.Config
	pl := NewPlanner()
	for _, b := range batches {
		edp, err := drmapTotalEDP(pl, cfg, accel.TableII(), net, b)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(strconv.Itoa(b), edp*1e6); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// PolicyPruning validates the paper's Table I pruning on a layer: it
// prices all 24 loop-order permutations and reports the best EDP among
// the pruned-away 18 versus the Table I six. The pruning is sound if
// no pruned permutation beats the six.
//
// The scan runs through the count -> price split: the layer's tile
// groups expand once into a 24-policy count plan - vectorized, so the
// per-permutation minimum is a flat scan - instead of once per
// permutation, with EDPs identical to the per-permutation scan.
func PolicyPruning(backend dram.Backend, layer cnn.Layer, batch int) (*Table, error) {
	prof, err := profile.CharacterizeBackend(backend)
	if err != nil {
		return nil, err
	}
	ev, err := core.NewEvaluator(prof, accel.TableII(), batch)
	if err != nil {
		return nil, err
	}
	lg := core.LayerGrid{Layer: layer, Tilings: tiling.Enumerate(layer, ev.Accel)}
	perms := mapping.AllPermutations()
	plan := ev.CountScheduleColumn(lg, 0, tiling.AdaptiveReuse, perms).Flatten()
	tm := ev.Timing()
	tableI := map[[4]mapping.Level]bool{}
	for _, p := range mapping.TableI() {
		tableI[p.Order] = true
	}
	t := &Table{
		Name:   fmt.Sprintf("Ablation: Table I pruning soundness (%s, layer %s)", backend.Label(), layer.Name),
		Header: []string{"policy-set", "best-EDP[uJs]"},
	}
	bestKept, bestPruned := -1.0, -1.0
	for pi, p := range perms {
		_, cost := ev.MinOverFlatColumn(plan, pi)
		edp := cost.EDP(tm)
		if tableI[p.Order] {
			if bestKept < 0 || edp < bestKept {
				bestKept = edp
			}
		} else if bestPruned < 0 || edp < bestPruned {
			bestPruned = edp
		}
	}
	if err := t.AddRow("tableI-six", bestKept*1e6); err != nil {
		return nil, err
	}
	if err := t.AddRow("pruned-eighteen", bestPruned*1e6); err != nil {
		return nil, err
	}
	return t, nil
}

// Registry sweeps the whole DRAM backend registry: the DRMap-policy DSE
// total EDP (and its delay and energy factors) of one network on every
// given backend - the multi-backend scan the count/price split was
// built for. Each (layer, schedule) column's count plan is computed
// once per distinct count signature (core.CountKey) and repriced for
// every backend sharing it, so the paper's four architectures expand
// and count their tile streams once instead of four times; every row
// is bit-for-bit the backend's serial core.RunDSE total.
func Registry(backends []dram.Backend, net cnn.Network, batch int) (*Table, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("sweep: registry sweep needs at least one backend")
	}
	t := &Table{
		Name:   fmt.Sprintf("Registry scan: DRMap DSE (%s, batch %d)", net.Name, batch),
		Header: []string{"backend", "DRMap-total-EDP[uJs]", "delay[ms]", "energy[mJ]"},
	}
	acfg := accel.TableII()
	policies := []mapping.Policy{mapping.DRMap()}
	// One plan cache across the scan: a backend whose count signature
	// (die geometry, element width, batch) appeared earlier reprices the
	// cached vectorized plans in a flat linear scan, into scratch buffers
	// the planner recycles across backends.
	pl := NewPlanner()
	for _, b := range backends {
		prof, err := profile.CharacterizeBackend(b)
		if err != nil {
			return nil, err
		}
		ev, err := core.NewEvaluator(prof, acfg, batch)
		if err != nil {
			return nil, err
		}
		totalEDP, totalSeconds, totalEnergy, err := pl.run(ev, net, tiling.Schedules, policies)
		if err != nil {
			return nil, err
		}
		if err := t.AddRow(b.ID, totalEDP*1e6, totalSeconds*1e3, totalEnergy*1e3); err != nil {
			return nil, err
		}
	}
	return t, nil
}
