package sweep

import (
	"testing"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/profile"
)

// TestPlannerMatchesSerialDSE: every point evaluated through the plan
// cache - cold, warm (same point again) and carried over (a different
// backend sharing the count signature) - equals the pre-split serial
// core.RunDSE total bit for bit.
func TestPlannerMatchesSerialDSE(t *testing.T) {
	net := cnn.LeNet5()
	pl := NewPlanner()
	for _, id := range []string{"ddr3", "salp2", "hbm2"} {
		b := mustBackend(id)
		prof, err := profile.CharacterizeBackend(b)
		if err != nil {
			t.Fatal(err)
		}
		want := serialDRMapEDP(t, b.Config, net, 1)
		for pass := 0; pass < 2; pass++ {
			got, err := pl.TotalEDP(prof, accel.TableII(), net, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s pass %d: planner EDP %.17g != serial %.17g", id, pass, got, want)
			}
		}
	}
}

// TestPlannerCarryover pins the delta-repricing arithmetic: a repeated
// point is all hits, and a backend sharing the first's die geometry
// (salp1 shares ddr3's) carries every column over.
func TestPlannerCarryover(t *testing.T) {
	net := cnn.LeNet5()
	acfg := accel.TableII()
	pl := NewPlanner()
	point := func(id string) {
		t.Helper()
		prof, err := profile.CharacterizeBackend(mustBackend(id))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pl.TotalEDP(prof, acfg, net, 1); err != nil {
			t.Fatal(err)
		}
	}
	point("ddr3")
	first := pl.Stats()
	if first.Misses == 0 || first.Hits != 0 {
		t.Fatalf("cold point: %+v", first)
	}
	point("ddr3")
	again := pl.Stats()
	if again.Misses != first.Misses || again.Hits != first.Misses {
		t.Errorf("repeated point should be all hits: %+v", again)
	}
	point("salp1") // same 2Gb x8 die geometry as ddr3
	shared := pl.Stats()
	if shared.Misses != first.Misses || shared.Hits != 2*first.Misses {
		t.Errorf("geometry-sharing backend should carry every column over: %+v", shared)
	}
	if pl.Plans() != int(first.Misses) {
		t.Errorf("%d plans cached for %d misses", pl.Plans(), first.Misses)
	}
}

// TestBufferSweepCarryover: a buffer sweep leaves the count signature
// untouched, so layers whose tiling candidates coincide between budgets
// reprice carried-over plans - the delta win the sweep plan cache is
// for. (LeNet5's small layers admit identical tiling sets at 64KB and
// 256KB.)
func TestBufferSweepCarryover(t *testing.T) {
	net := cnn.LeNet5()
	cfg := mustBackend("ddr3").Config
	pl := NewPlanner()
	for _, kb := range []int{64, 256} {
		acfg := accel.TableII()
		acfg.IfmBufBytes, acfg.WgtBufBytes, acfg.OfmBufBytes = kb*1024, kb*1024, kb*1024
		if _, err := drmapTotalEDP(pl, cfg, acfg, net, 1); err != nil {
			t.Fatal(err)
		}
	}
	if st := pl.Stats(); st.Hits == 0 {
		t.Errorf("no columns carried over across buffer budgets: %+v", st)
	}
}
