package sweep

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/profile"
	"drmap/internal/tiling"
)

func TestTableAddRowValidatesWidth(t *testing.T) {
	tb := &Table{Name: "t", Header: []string{"x", "a", "b"}}
	if err := tb.AddRow("1", 1.0); err == nil {
		t.Error("accepted short row")
	}
	if err := tb.AddRow("1", 1.0, 2.0); err != nil {
		t.Errorf("rejected valid row: %v", err)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{Name: "demo", Header: []string{"x", "y"}}
	if err := tb.AddRow("r1", 3.5); err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	for _, want := range []string{"demo", "x", "y", "r1", "3.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csvOut := buf.String()
	if !strings.HasPrefix(csvOut, "x,y\n") || !strings.Contains(csvOut, "r1,3.5") {
		t.Errorf("CSV malformed:\n%s", csvOut)
	}
}

func TestSubarraySweepMonotone(t *testing.T) {
	// More subarrays per bank means more parallelism headroom: the
	// subarray-stream cost must be non-increasing in the count.
	tb, err := Subarrays([]int{2, 4, 8}, cnn.LeNet5(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for i := 1; i < len(tb.Rows); i++ {
		if tb.Rows[i][0] > tb.Rows[i-1][0]+0.5 {
			t.Errorf("subarray cost rose with more subarrays: %v", tb.Rows)
		}
	}
}

func TestBufferSweepMonotone(t *testing.T) {
	// Bigger buffers can only help (the DSE search space grows
	// monotonically): EDP must be non-increasing in buffer size.
	tb, err := Buffers([]int{16, 64, 256}, mustBackend("ddr3"), cnn.LeNet5(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tb.Rows); i++ {
		if tb.Rows[i][0] > tb.Rows[i-1][0]*1.0001 {
			t.Errorf("EDP rose with bigger buffers: %v", tb.Rows)
		}
	}
}

func TestBatchSweepSuperlinear(t *testing.T) {
	// EDP = energy x delay: doubling the batch doubles both factors, so
	// EDP must grow at least ~4x per doubling (minus fixed effects).
	tb, err := Batches([]int{1, 2, 4}, mustBackend("ddr3"), cnn.LeNet5())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[1][0] < 3*tb.Rows[0][0] {
		t.Errorf("batch-2 EDP %.4g not ~4x batch-1 %.4g", tb.Rows[1][0], tb.Rows[0][0])
	}
	if tb.Rows[2][0] < 3*tb.Rows[1][0] {
		t.Errorf("batch-4 EDP %.4g not ~4x batch-2 %.4g", tb.Rows[2][0], tb.Rows[1][0])
	}
}

func TestPolicyPruningSound(t *testing.T) {
	// The paper prunes 24 loop orders to the 6 with the row loop
	// outer-most; no pruned permutation may beat the kept set.
	tb, err := PolicyPruning(mustBackend("salp1"), cnn.LeNet5().Layers[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	kept, pruned := tb.Rows[0][0], tb.Rows[1][0]
	if pruned < kept*(1-1e-9) {
		t.Errorf("a pruned permutation (%.6g) beats Table I's best (%.6g): pruning unsound", pruned, kept)
	}
}

// TestRegistrySweepMatchesSerialDSE: every row of the plan-reuse
// registry sweep equals the backend's own pre-refactor scan - a fresh
// characterization and a serial core.RunDSE with no plan sharing -
// exactly, across every registered geometry. This pins the count/price
// split's cross-backend reuse to the old per-backend code path bit for
// bit.
func TestRegistrySweepMatchesSerialDSE(t *testing.T) {
	net := cnn.LeNet5()
	backends := dram.Backends()
	tb, err := Registry(backends, net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(backends) {
		t.Fatalf("%d rows for %d backends", len(tb.Rows), len(backends))
	}
	for i, b := range backends {
		if tb.Labels[i] != b.ID {
			t.Errorf("row %d labeled %q, want %q", i, tb.Labels[i], b.ID)
		}
		if got := tb.Rows[i][0]; got != serialDRMapEDP(t, b.Config, net, 1)*1e6 {
			t.Errorf("%s: registry sweep EDP %.17g != serial DSE", b.ID, got)
		}
	}
}

// serialDRMapEDP is the pre-split baseline: a fresh characterization
// and a serial core.RunDSE with no plan caching or flattening anywhere.
func serialDRMapEDP(t *testing.T, cfg dram.Config, net cnn.Network, batch int) float64 {
	t.Helper()
	prof, err := profile.Characterize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.NewEvaluator(prof, accel.TableII(), batch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunDSE(net, ev, tiling.Schedules, []mapping.Policy{mapping.DRMap()})
	if err != nil {
		t.Fatal(err)
	}
	return res.TotalEDP()
}

// TestPolicyPruningMatchesDirectScan: the plan-based pruning table
// equals the pre-refactor per-permutation scan (tile groups expanded
// and priced directly per permutation through EvaluateLayer) exactly.
func TestPolicyPruningMatchesDirectScan(t *testing.T) {
	backend := mustBackend("salp2")
	layer := cnn.LeNet5().Layers[1]
	tb, err := PolicyPruning(backend, layer, 1)
	if err != nil {
		t.Fatal(err)
	}

	prof, err := profile.CharacterizeBackend(backend)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.NewEvaluator(prof, accel.TableII(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tilings := tiling.Enumerate(layer, ev.Accel)
	tm := ev.Timing()
	tableI := map[[4]mapping.Level]bool{}
	for _, p := range mapping.TableI() {
		tableI[p.Order] = true
	}
	bestKept, bestPruned := -1.0, -1.0
	for _, p := range mapping.AllPermutations() {
		best := math.Inf(1)
		for _, tl := range tilings {
			if edp := ev.EvaluateLayer(layer, tl, tiling.AdaptiveReuse, p).EDP(tm); edp < best {
				best = edp
			}
		}
		if tableI[p.Order] {
			if bestKept < 0 || best < bestKept {
				bestKept = best
			}
		} else if bestPruned < 0 || best < bestPruned {
			bestPruned = best
		}
	}
	if got := tb.Rows[0][0]; got != bestKept*1e6 {
		t.Errorf("tableI-six %.17g != direct scan %.17g", got, bestKept*1e6)
	}
	if got := tb.Rows[1][0]; got != bestPruned*1e6 {
		t.Errorf("pruned-eighteen %.17g != direct scan %.17g", got, bestPruned*1e6)
	}
}

// TestBatchSweepMatchesSerialDSE: the batch-size ablation (which runs
// one RunDSE per swept value through the refactored kernel) equals the
// direct EvaluateLayer scan per value - the recorded pre-refactor
// output.
func TestBatchSweepMatchesSerialDSE(t *testing.T) {
	backend := mustBackend("ddr3")
	net := cnn.LeNet5()
	values := []int{1, 2}
	tb, err := Batches(values, backend, net)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.CharacterizeBackend(backend)
	if err != nil {
		t.Fatal(err)
	}
	for i, batch := range values {
		ev, err := core.NewEvaluator(prof, accel.TableII(), batch)
		if err != nil {
			t.Fatal(err)
		}
		tm := ev.Timing()
		var total float64
		for _, layer := range net.Layers {
			best := math.Inf(1)
			for _, tl := range tiling.Enumerate(layer, ev.Accel) {
				for _, s := range tiling.Schedules {
					if edp := ev.EvaluateLayer(layer, tl, s, mapping.DRMap()).EDP(tm); edp < best {
						best = edp
					}
				}
			}
			total += best
		}
		if got := tb.Rows[i][0]; got != total*1e6 {
			t.Errorf("batch %d: sweep EDP %.17g != direct scan %.17g", batch, got, total*1e6)
		}
	}
}

// mustBackend resolves a registered backend for test fixtures.
func mustBackend(id string) dram.Backend {
	b, ok := dram.Lookup(id)
	if !ok {
		panic("sweep test: backend " + id + " not registered")
	}
	return b
}
