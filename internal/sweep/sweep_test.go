package sweep

import (
	"bytes"
	"strings"
	"testing"

	"drmap/internal/cnn"
	"drmap/internal/dram"
)

func TestTableAddRowValidatesWidth(t *testing.T) {
	tb := &Table{Name: "t", Header: []string{"x", "a", "b"}}
	if err := tb.AddRow("1", 1.0); err == nil {
		t.Error("accepted short row")
	}
	if err := tb.AddRow("1", 1.0, 2.0); err != nil {
		t.Errorf("rejected valid row: %v", err)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{Name: "demo", Header: []string{"x", "y"}}
	if err := tb.AddRow("r1", 3.5); err != nil {
		t.Fatal(err)
	}
	out := tb.Render()
	for _, want := range []string{"demo", "x", "y", "r1", "3.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csvOut := buf.String()
	if !strings.HasPrefix(csvOut, "x,y\n") || !strings.Contains(csvOut, "r1,3.5") {
		t.Errorf("CSV malformed:\n%s", csvOut)
	}
}

func TestSubarraySweepMonotone(t *testing.T) {
	// More subarrays per bank means more parallelism headroom: the
	// subarray-stream cost must be non-increasing in the count.
	tb, err := Subarrays([]int{2, 4, 8}, cnn.LeNet5(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for i := 1; i < len(tb.Rows); i++ {
		if tb.Rows[i][0] > tb.Rows[i-1][0]+0.5 {
			t.Errorf("subarray cost rose with more subarrays: %v", tb.Rows)
		}
	}
}

func TestBufferSweepMonotone(t *testing.T) {
	// Bigger buffers can only help (the DSE search space grows
	// monotonically): EDP must be non-increasing in buffer size.
	tb, err := Buffers([]int{16, 64, 256}, mustBackend("ddr3"), cnn.LeNet5(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tb.Rows); i++ {
		if tb.Rows[i][0] > tb.Rows[i-1][0]*1.0001 {
			t.Errorf("EDP rose with bigger buffers: %v", tb.Rows)
		}
	}
}

func TestBatchSweepSuperlinear(t *testing.T) {
	// EDP = energy x delay: doubling the batch doubles both factors, so
	// EDP must grow at least ~4x per doubling (minus fixed effects).
	tb, err := Batches([]int{1, 2, 4}, mustBackend("ddr3"), cnn.LeNet5())
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[1][0] < 3*tb.Rows[0][0] {
		t.Errorf("batch-2 EDP %.4g not ~4x batch-1 %.4g", tb.Rows[1][0], tb.Rows[0][0])
	}
	if tb.Rows[2][0] < 3*tb.Rows[1][0] {
		t.Errorf("batch-4 EDP %.4g not ~4x batch-2 %.4g", tb.Rows[2][0], tb.Rows[1][0])
	}
}

func TestPolicyPruningSound(t *testing.T) {
	// The paper prunes 24 loop orders to the 6 with the row loop
	// outer-most; no pruned permutation may beat the kept set.
	tb, err := PolicyPruning(mustBackend("salp1"), cnn.LeNet5().Layers[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	kept, pruned := tb.Rows[0][0], tb.Rows[1][0]
	if pruned < kept*(1-1e-9) {
		t.Errorf("a pruned permutation (%.6g) beats Table I's best (%.6g): pruning unsound", pruned, kept)
	}
}

// mustBackend resolves a registered backend for test fixtures.
func mustBackend(id string) dram.Backend {
	b, ok := dram.Lookup(id)
	if !ok {
		panic("sweep test: backend " + id + " not registered")
	}
	return b
}
