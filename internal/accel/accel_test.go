package accel

import (
	"strings"
	"testing"

	"drmap/internal/cnn"
)

func TestTableIIMatchesPaper(t *testing.T) {
	c := TableII()
	if c.MACRows != 8 || c.MACCols != 8 {
		t.Errorf("MAC array = %dx%d, want 8x8", c.MACRows, c.MACCols)
	}
	if c.IfmBufBytes != 65536 || c.WgtBufBytes != 65536 || c.OfmBufBytes != 65536 {
		t.Errorf("buffers = %d/%d/%d, want 64KB each", c.IfmBufBytes, c.WgtBufBytes, c.OfmBufBytes)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMACsPerCycle(t *testing.T) {
	if got := TableII().MACsPerCycle(); got != 64 {
		t.Errorf("MACs/cycle = %d, want 64", got)
	}
}

func TestComputeCycles(t *testing.T) {
	c := TableII()
	l := cnn.Layer{Name: "t", Kind: cnn.Conv, H: 4, W: 4, J: 4, I: 4, P: 1, Q: 1, Stride: 1}
	// 4*4*4*4 = 256 MACs at 64/cycle = 4 cycles.
	if got := c.ComputeCycles(l, 1); got != 4 {
		t.Errorf("compute cycles = %d, want 4", got)
	}
	if got := c.ComputeCycles(l, 2); got != 8 {
		t.Errorf("batch-2 compute cycles = %d, want 8", got)
	}
}

func TestComputeCyclesRoundsUp(t *testing.T) {
	c := TableII()
	l := cnn.Layer{Name: "t", Kind: cnn.Conv, H: 1, W: 1, J: 1, I: 1, P: 1, Q: 1, Stride: 1}
	if got := c.ComputeCycles(l, 1); got != 1 {
		t.Errorf("1 MAC should still cost 1 cycle, got %d", got)
	}
}

func TestBufElems(t *testing.T) {
	c := TableII()
	i, w, o := c.BufElems()
	if i != 65536 || w != 65536 || o != 65536 {
		t.Errorf("buffer elems = %d/%d/%d, want 65536 each at 1B/elem", i, w, o)
	}
	c.BytesPerElement = 2
	i, w, o = c.BufElems()
	if i != 32768 || w != 32768 || o != 32768 {
		t.Errorf("buffer elems = %d/%d/%d at 2B/elem", i, w, o)
	}
}

func TestValidateRejectsZeroFields(t *testing.T) {
	base := TableII()
	muts := []func(*Config){
		func(c *Config) { c.MACRows = 0 },
		func(c *Config) { c.MACCols = 0 },
		func(c *Config) { c.IfmBufBytes = 0 },
		func(c *Config) { c.WgtBufBytes = 0 },
		func(c *Config) { c.OfmBufBytes = 0 },
		func(c *Config) { c.BytesPerElement = 0 },
	}
	for i, mut := range muts {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, c)
		}
	}
}

func TestString(t *testing.T) {
	s := TableII().String()
	for _, sub := range []string{"8x8", "64KB"} {
		if !strings.Contains(s, sub) {
			t.Errorf("config string %q missing %q", s, sub)
		}
	}
}
