package accel

import (
	"fmt"

	"drmap/internal/cnn"
)

// DefaultClockMHz is the accelerator clock used when a Config does not
// set one: 700 MHz, the TPU-v1 figure.
const DefaultClockMHz = 700.0

// Perf summarizes how one layer executes on the accelerator when its
// DRAM traffic takes the given time: the compute time of the MAC array,
// the DRAM time, and the double-buffered overlap of the two.
type Perf struct {
	ComputeSeconds float64
	DRAMSeconds    float64
	// TotalSeconds assumes double buffering: tile transfers overlap
	// compute, so the layer takes the longer of the two streams.
	TotalSeconds float64
	// MemoryBound reports whether DRAM time dominates compute time.
	MemoryBound bool
	// Utilization is the MAC array's busy fraction under the overlap.
	Utilization float64
}

// String summarizes the perf result.
func (p Perf) String() string {
	bound := "compute-bound"
	if p.MemoryBound {
		bound = "memory-bound"
	}
	return fmt.Sprintf("compute %.3gs dram %.3gs total %.3gs (%s, %.0f%% util)",
		p.ComputeSeconds, p.DRAMSeconds, p.TotalSeconds, bound, p.Utilization*100)
}

// ComputeSeconds returns the ideal MAC-array time for a layer at the
// given clock (DefaultClockMHz when clockMHz is zero or negative).
func (c Config) ComputeSeconds(l cnn.Layer, batch int, clockMHz float64) float64 {
	if clockMHz <= 0 {
		clockMHz = DefaultClockMHz
	}
	return float64(c.ComputeCycles(l, batch)) / (clockMHz * 1e6)
}

// LayerPerf models a layer's execution with double-buffered tile
// transfers: compute and DRAM streams overlap, so the total is the
// maximum of the two.
func (c Config) LayerPerf(l cnn.Layer, batch int, dramSeconds, clockMHz float64) Perf {
	compute := c.ComputeSeconds(l, batch, clockMHz)
	total := compute
	if dramSeconds > total {
		total = dramSeconds
	}
	util := 0.0
	if total > 0 {
		util = compute / total
	}
	return Perf{
		ComputeSeconds: compute,
		DRAMSeconds:    dramSeconds,
		TotalSeconds:   total,
		MemoryBound:    dramSeconds > compute,
		Utilization:    util,
	}
}
