package accel

import (
	"math"
	"strings"
	"testing"

	"drmap/internal/cnn"
)

func TestComputeSecondsDefaultClock(t *testing.T) {
	c := TableII()
	l := cnn.Layer{Name: "t", Kind: cnn.Conv, H: 8, W: 8, J: 8, I: 8, P: 1, Q: 1, Stride: 1}
	// 4096 MACs / 64 per cycle = 64 cycles at 700 MHz.
	want := 64.0 / 700e6
	if got := c.ComputeSeconds(l, 1, 0); math.Abs(got-want) > 1e-15 {
		t.Errorf("ComputeSeconds = %g, want %g", got, want)
	}
	// Explicit clock.
	want = 64.0 / 1000e6
	if got := c.ComputeSeconds(l, 1, 1000); math.Abs(got-want) > 1e-15 {
		t.Errorf("ComputeSeconds@1GHz = %g, want %g", got, want)
	}
}

func TestLayerPerfMemoryBound(t *testing.T) {
	c := TableII()
	l := cnn.Layer{Name: "t", Kind: cnn.Conv, H: 8, W: 8, J: 8, I: 8, P: 1, Q: 1, Stride: 1}
	compute := c.ComputeSeconds(l, 1, 0)
	p := c.LayerPerf(l, 1, compute*10, 0)
	if !p.MemoryBound {
		t.Error("10x DRAM time should be memory-bound")
	}
	if p.TotalSeconds != compute*10 {
		t.Errorf("total = %g, want DRAM time %g", p.TotalSeconds, compute*10)
	}
	if math.Abs(p.Utilization-0.1) > 1e-9 {
		t.Errorf("utilization = %g, want 0.1", p.Utilization)
	}
}

func TestLayerPerfComputeBound(t *testing.T) {
	c := TableII()
	l := cnn.Layer{Name: "t", Kind: cnn.Conv, H: 16, W: 16, J: 64, I: 64, P: 3, Q: 3, Stride: 1}
	compute := c.ComputeSeconds(l, 1, 0)
	p := c.LayerPerf(l, 1, compute/4, 0)
	if p.MemoryBound {
		t.Error("quarter DRAM time should be compute-bound")
	}
	if p.TotalSeconds != compute {
		t.Errorf("total = %g, want compute time %g", p.TotalSeconds, compute)
	}
	if math.Abs(p.Utilization-1) > 1e-9 {
		t.Errorf("utilization = %g, want 1", p.Utilization)
	}
}

func TestPerfStringMentionsBound(t *testing.T) {
	c := TableII()
	l := cnn.Layer{Name: "t", Kind: cnn.FC, H: 1, W: 1, J: 10, I: 10, P: 1, Q: 1, Stride: 1}
	mem := c.LayerPerf(l, 1, 1.0, 0)
	if !strings.Contains(mem.String(), "memory-bound") {
		t.Errorf("perf string %q missing bound", mem.String())
	}
	comp := c.LayerPerf(l, 1, 0, 0)
	if !strings.Contains(comp.String(), "compute-bound") {
		t.Errorf("perf string %q missing bound", comp.String())
	}
}

func TestLayerPerfZeroTotal(t *testing.T) {
	// Degenerate inputs must not divide by zero.
	c := TableII()
	l := cnn.Layer{Name: "t", Kind: cnn.FC, H: 1, W: 1, J: 1, I: 1, P: 1, Q: 1, Stride: 1}
	p := c.LayerPerf(l, 1, 0, 0)
	if math.IsNaN(p.Utilization) || math.IsInf(p.Utilization, 0) {
		t.Errorf("utilization = %v", p.Utilization)
	}
}
