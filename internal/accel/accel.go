// Package accel models the TPU-like CNN accelerator of the DRMap
// paper's Table II: an 8x8 MAC processing array fed by three separate
// on-chip SRAM buffers - iB for input feature maps, wB for weights and
// oB for output feature maps, 64 KB each. The buffers bound the legal
// tile sizes explored by the DSE; the MAC array provides a compute-time
// reference for utilization reporting.
package accel

import (
	"fmt"

	"drmap/internal/cnn"
)

// Config describes the accelerator.
type Config struct {
	MACRows int // processing-array rows
	MACCols int // processing-array columns

	IfmBufBytes int // iB capacity
	WgtBufBytes int // wB capacity
	OfmBufBytes int // oB capacity

	// BytesPerElement is the datatype width; the TPU-like design uses
	// int8 activations and weights.
	BytesPerElement int
}

// TableII returns the paper's accelerator configuration: an 8x8 MAC
// array with 64 KB per buffer and int8 tensors.
func TableII() Config {
	return Config{
		MACRows:         8,
		MACCols:         8,
		IfmBufBytes:     64 * 1024,
		WgtBufBytes:     64 * 1024,
		OfmBufBytes:     64 * 1024,
		BytesPerElement: 1,
	}
}

// Validate reports a descriptive error for inconsistent configuration.
func (c Config) Validate() error {
	fields := []struct {
		name string
		v    int
	}{
		{"MACRows", c.MACRows}, {"MACCols", c.MACCols},
		{"IfmBufBytes", c.IfmBufBytes}, {"WgtBufBytes", c.WgtBufBytes},
		{"OfmBufBytes", c.OfmBufBytes}, {"BytesPerElement", c.BytesPerElement},
	}
	for _, f := range fields {
		if f.v <= 0 {
			return fmt.Errorf("accel: %s must be positive, got %d", f.name, f.v)
		}
	}
	return nil
}

// MACsPerCycle returns the peak multiply-accumulates per cycle.
func (c Config) MACsPerCycle() int { return c.MACRows * c.MACCols }

// ComputeCycles returns the ideal (fully utilized) cycle count to
// compute the layer for the given batch.
func (c Config) ComputeCycles(l cnn.Layer, batch int) int64 {
	macs := l.MACs() * int64(batch)
	per := int64(c.MACsPerCycle())
	return (macs + per - 1) / per
}

// BufElems returns each buffer's capacity in elements:
// ifms, weights, ofms.
func (c Config) BufElems() (ifm, wgt, ofm int64) {
	b := int64(c.BytesPerElement)
	return int64(c.IfmBufBytes) / b, int64(c.WgtBufBytes) / b, int64(c.OfmBufBytes) / b
}

// String summarizes the configuration.
func (c Config) String() string {
	return fmt.Sprintf("%dx%d MACs, iB %dKB wB %dKB oB %dKB, %dB/elem",
		c.MACRows, c.MACCols, c.IfmBufBytes/1024, c.WgtBufBytes/1024, c.OfmBufBytes/1024,
		c.BytesPerElement)
}
