package cli

import (
	"testing"

	"drmap/internal/dram"
	"drmap/internal/tiling"
)

func TestParseArch(t *testing.T) {
	cases := map[string]dram.Arch{
		"ddr3": dram.DDR3, "salp1": dram.SALP1, "salp2": dram.SALP2, "masa": dram.SALPMASA,
	}
	for s, want := range cases {
		got, err := ParseArch(s)
		if err != nil || got != want {
			t.Errorf("ParseArch(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseArch("ddr5"); err == nil {
		t.Error("ParseArch accepted ddr5")
	}
}

func TestParseConfig(t *testing.T) {
	for _, s := range []string{"ddr3", "salp1", "salp2", "masa", "ddr4", "lpddr3"} {
		cfg, err := ParseConfig(s)
		if err != nil {
			t.Errorf("ParseConfig(%q): %v", s, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("ParseConfig(%q) invalid: %v", s, err)
		}
	}
	if _, err := ParseConfig("hbm"); err == nil {
		t.Error("ParseConfig accepted hbm")
	}
}

func TestParseNetwork(t *testing.T) {
	for _, s := range []string{"alexnet", "vgg16", "lenet5", "resnet18"} {
		net, err := ParseNetwork(s)
		if err != nil {
			t.Errorf("ParseNetwork(%q): %v", s, err)
			continue
		}
		if err := net.Validate(); err != nil {
			t.Errorf("network %q invalid: %v", s, err)
		}
	}
	if _, err := ParseNetwork("inception"); err == nil {
		t.Error("ParseNetwork accepted inception")
	}
}

func TestParseSchedules(t *testing.T) {
	one, err := ParseSchedules("wghs")
	if err != nil || len(one) != 1 || one[0] != tiling.WghsReuse {
		t.Errorf("ParseSchedules(wghs) = %v, %v", one, err)
	}
	all, err := ParseSchedules("all")
	if err != nil || len(all) != 4 {
		t.Errorf("ParseSchedules(all) = %v, %v", all, err)
	}
	if _, err := ParseSchedules("psum"); err == nil {
		t.Error("ParseSchedules accepted psum")
	}
}
