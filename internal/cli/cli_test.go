package cli

import (
	"strings"
	"testing"

	"drmap/internal/dram"
	"drmap/internal/tiling"
)

func TestParseArch(t *testing.T) {
	cases := map[string]dram.Arch{
		"ddr3": dram.DDR3, "salp1": dram.SALP1, "salp2": dram.SALP2, "masa": dram.SALPMASA,
	}
	for s, want := range cases {
		got, err := ParseArch(s)
		if err != nil || got != want {
			t.Errorf("ParseArch(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseArch("ddr5"); err == nil {
		t.Error("ParseArch accepted ddr5")
	}
	// Registered generality backends are not paper architectures.
	if _, err := ParseArch("ddr4"); err == nil {
		t.Error("ParseArch accepted the ddr4 backend as a paper architecture")
	}
}

func TestParseBackend(t *testing.T) {
	for _, b := range dram.Backends() {
		got, err := ParseBackend(b.ID)
		if err != nil {
			t.Errorf("ParseBackend(%q): %v", b.ID, err)
			continue
		}
		if got.ID != b.ID || got.Config != b.Config {
			t.Errorf("ParseBackend(%q) did not round-trip the registry", b.ID)
		}
	}
	if _, err := ParseBackend("ddr5"); err == nil {
		t.Error("ParseBackend accepted ddr5")
	}
}

func TestParseConfig(t *testing.T) {
	for _, s := range []string{"ddr3", "salp1", "salp2", "masa", "ddr4", "lpddr3", "lpddr4", "hbm2"} {
		cfg, err := ParseConfig(s)
		if err != nil {
			t.Errorf("ParseConfig(%q): %v", s, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("ParseConfig(%q) invalid: %v", s, err)
		}
	}
	if _, err := ParseConfig("hbm"); err == nil {
		t.Error("ParseConfig accepted hbm")
	}
}

// TestErrorMessagesDeriveFromRegistry: the accepted spellings in parse
// errors come from the registry, so they cannot go stale as backends
// are added.
func TestErrorMessagesDeriveFromRegistry(t *testing.T) {
	_, err := ParseConfig("nope")
	if err == nil {
		t.Fatal("ParseConfig accepted nope")
	}
	for _, id := range dram.BackendIDs() {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("ParseConfig error %q does not list backend %q", err, id)
		}
	}
	_, err = ParseArch("nope")
	if err == nil {
		t.Fatal("ParseArch accepted nope")
	}
	for _, b := range dram.PaperBackends() {
		if !strings.Contains(err.Error(), b.ID) {
			t.Errorf("ParseArch error %q does not list paper backend %q", err, b.ID)
		}
	}
	if strings.Contains(err.Error(), "ddr4") {
		t.Errorf("ParseArch error %q lists a non-paper backend", err)
	}
}

func TestParseNetwork(t *testing.T) {
	for _, s := range []string{"alexnet", "vgg16", "lenet5", "resnet18"} {
		net, err := ParseNetwork(s)
		if err != nil {
			t.Errorf("ParseNetwork(%q): %v", s, err)
			continue
		}
		if err := net.Validate(); err != nil {
			t.Errorf("network %q invalid: %v", s, err)
		}
	}
	if _, err := ParseNetwork("inception"); err == nil {
		t.Error("ParseNetwork accepted inception")
	}
}

func TestParseSchedules(t *testing.T) {
	one, err := ParseSchedules("wghs")
	if err != nil || len(one) != 1 || one[0] != tiling.WghsReuse {
		t.Errorf("ParseSchedules(wghs) = %v, %v", one, err)
	}
	all, err := ParseSchedules("all")
	if err != nil || len(all) != 4 {
		t.Errorf("ParseSchedules(all) = %v, %v", all, err)
	}
	if _, err := ParseSchedules("psum"); err == nil {
		t.Error("ParseSchedules accepted psum")
	}
}
