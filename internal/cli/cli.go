// Package cli holds the flag-value parsers shared by the drmap command
// line tools, so that every tool accepts the same spellings for
// architectures, workloads and schedules.
package cli

import (
	"fmt"

	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/tiling"
)

// ParseArch maps a flag value to an architecture.
func ParseArch(s string) (dram.Arch, error) {
	switch s {
	case "ddr3":
		return dram.DDR3, nil
	case "salp1":
		return dram.SALP1, nil
	case "salp2":
		return dram.SALP2, nil
	case "masa":
		return dram.SALPMASA, nil
	default:
		return 0, fmt.Errorf("unknown architecture %q (want ddr3, salp1, salp2, masa)", s)
	}
}

// ParseConfig maps a flag value to a preset DRAM configuration,
// including the generality presets.
func ParseConfig(s string) (dram.Config, error) {
	switch s {
	case "ddr4":
		return dram.DDR4Config(), nil
	case "lpddr3":
		return dram.LPDDR3Config(), nil
	}
	arch, err := ParseArch(s)
	if err != nil {
		return dram.Config{}, fmt.Errorf("unknown DRAM %q (want ddr3, salp1, salp2, masa, ddr4, lpddr3)", s)
	}
	return dram.ConfigFor(arch), nil
}

// ParseNetwork maps a flag value to a built-in workload.
func ParseNetwork(s string) (cnn.Network, error) {
	switch s {
	case "alexnet":
		return cnn.AlexNet(), nil
	case "vgg16":
		return cnn.VGG16(), nil
	case "lenet5":
		return cnn.LeNet5(), nil
	case "resnet18":
		return cnn.ResNet18(), nil
	default:
		return cnn.Network{}, fmt.Errorf("unknown network %q (want alexnet, vgg16, lenet5, resnet18)", s)
	}
}

// ParseSchedules maps a flag value to scheduling schemes; "all" expands
// to the paper's four.
func ParseSchedules(s string) ([]tiling.Schedule, error) {
	switch s {
	case "ifms":
		return []tiling.Schedule{tiling.IfmsReuse}, nil
	case "wghs":
		return []tiling.Schedule{tiling.WghsReuse}, nil
	case "ofms":
		return []tiling.Schedule{tiling.OfmsReuse}, nil
	case "adaptive":
		return []tiling.Schedule{tiling.AdaptiveReuse}, nil
	case "all":
		return tiling.Schedules, nil
	default:
		return nil, fmt.Errorf("unknown schedule %q (want ifms, wghs, ofms, adaptive, all)", s)
	}
}
