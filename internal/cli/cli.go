// Package cli holds the flag-value parsers shared by the drmap command
// line tools, so that every tool accepts the same spellings for
// architectures, workloads and schedules.
package cli

import (
	"fmt"
	"strings"

	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/tiling"
)

// BackendList renders the registered backend IDs for flag help and
// error messages, so the accepted spellings can never go stale.
func BackendList() string {
	return strings.Join(dram.BackendIDs(), ", ")
}

// paperBackendList renders the IDs of the four paper architectures.
func paperBackendList() string {
	backends := dram.PaperBackends()
	ids := make([]string, len(backends))
	for i, b := range backends {
		ids[i] = b.ID
	}
	return strings.Join(ids, ", ")
}

// ParseBackend maps a flag value to a registered DRAM backend; the
// error message lists whatever the registry currently holds.
func ParseBackend(s string) (dram.Backend, error) {
	if b, ok := dram.Lookup(s); ok {
		return b, nil
	}
	return dram.Backend{}, fmt.Errorf("unknown DRAM backend %q (want %s)", s, BackendList())
}

// ParseArch maps a flag value to one of the four paper architectures.
// Tools that accept any registered DRAM system use ParseBackend; this
// parser is for figure-reproduction paths that are defined over the
// paper's capability enum only.
func ParseArch(s string) (dram.Arch, error) {
	for _, b := range dram.PaperBackends() {
		if b.ID == s {
			return b.Config.Arch, nil
		}
	}
	return 0, fmt.Errorf("unknown architecture %q (want %s)", s, paperBackendList())
}

// ParseConfig maps a flag value to a registered DRAM configuration,
// including the generality presets; the error message is derived from
// the registry.
func ParseConfig(s string) (dram.Config, error) {
	b, err := ParseBackend(s)
	if err != nil {
		return dram.Config{}, err
	}
	return b.Config, nil
}

// ParseNetwork maps a flag value to a built-in workload.
func ParseNetwork(s string) (cnn.Network, error) {
	switch s {
	case "alexnet":
		return cnn.AlexNet(), nil
	case "vgg16":
		return cnn.VGG16(), nil
	case "lenet5":
		return cnn.LeNet5(), nil
	case "resnet18":
		return cnn.ResNet18(), nil
	default:
		return cnn.Network{}, fmt.Errorf("unknown network %q (want alexnet, vgg16, lenet5, resnet18)", s)
	}
}

// ParseSchedules maps a flag value to scheduling schemes; "all" expands
// to the paper's four.
func ParseSchedules(s string) ([]tiling.Schedule, error) {
	switch s {
	case "ifms":
		return []tiling.Schedule{tiling.IfmsReuse}, nil
	case "wghs":
		return []tiling.Schedule{tiling.WghsReuse}, nil
	case "ofms":
		return []tiling.Schedule{tiling.OfmsReuse}, nil
	case "adaptive":
		return []tiling.Schedule{tiling.AdaptiveReuse}, nil
	case "all":
		return tiling.Schedules, nil
	default:
		return nil, fmt.Errorf("unknown schedule %q (want ifms, wghs, ofms, adaptive, all)", s)
	}
}
