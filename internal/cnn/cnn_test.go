package cnn

import (
	"strings"
	"testing"
)

func TestAlexNetLayerCount(t *testing.T) {
	n := AlexNet()
	if len(n.Layers) != 8 {
		t.Fatalf("AlexNet has %d layers, want 8 (CONV1-5, FC6-8)", len(n.Layers))
	}
	wantNames := []string{"CONV1", "CONV2", "CONV3", "CONV4", "CONV5", "FC6", "FC7", "FC8"}
	for i, w := range wantNames {
		if n.Layers[i].Name != w {
			t.Errorf("layer %d = %s, want %s", i, n.Layers[i].Name, w)
		}
	}
}

func TestAlexNetConv1Geometry(t *testing.T) {
	l := AlexNet().Layers[0]
	if l.InputHeight() != 227 || l.InputWidth() != 227 {
		t.Errorf("CONV1 input = %dx%d, want 227x227", l.InputHeight(), l.InputWidth())
	}
	if got := l.MACs(); got != 55*55*96*3*11*11 {
		t.Errorf("CONV1 MACs = %d", got)
	}
	if got := l.WgtElems(); got != 11*11*3*96 {
		t.Errorf("CONV1 weights = %d", got)
	}
	if got := l.OfmElems(); got != 55*55*96 {
		t.Errorf("CONV1 ofms = %d", got)
	}
}

func TestAlexNetFC6Shape(t *testing.T) {
	l := AlexNet().Layers[5]
	if l.Kind != FC {
		t.Fatalf("FC6 kind = %v", l.Kind)
	}
	if l.I != 9216 || l.J != 4096 {
		t.Errorf("FC6 = %d->%d, want 9216->4096", l.I, l.J)
	}
	if got := l.IfmElems(); got != 9216 {
		t.Errorf("FC6 ifm elems = %d, want 9216", got)
	}
	if got := l.WgtElems(); got != 9216*4096 {
		t.Errorf("FC6 weights = %d", got)
	}
}

func TestAlexNetTotalMACsPlausible(t *testing.T) {
	// AlexNet (ungrouped) is about 1.1-1.5 GMAC per image.
	total := AlexNet().TotalMACs()
	if total < 0.9e9 || total > 2.0e9 {
		t.Errorf("AlexNet total MACs = %d, want ~1.1e9", total)
	}
}

func TestAlexNetWeightsPlausible(t *testing.T) {
	// Ungrouped AlexNet carries ~60-65M weights, dominated by FC6.
	total := AlexNet().TotalWgtElems()
	if total < 55e6 || total > 75e6 {
		t.Errorf("AlexNet weights = %d, want ~6e7", total)
	}
}

func TestVGG16Shapes(t *testing.T) {
	n := VGG16()
	if len(n.Layers) != 16 {
		t.Fatalf("VGG-16 has %d layers, want 16", len(n.Layers))
	}
	// ~15.5 GMAC per image is the standard figure (conv layers only
	// dominate; our count includes FCs).
	total := n.TotalMACs()
	if total < 14e9 || total > 17e9 {
		t.Errorf("VGG-16 MACs = %d, want ~15.5e9", total)
	}
	// ~138M parameters.
	if w := n.TotalWgtElems(); w < 130e6 || w > 145e6 {
		t.Errorf("VGG-16 weights = %d, want ~138e6", w)
	}
}

func TestLeNet5Shapes(t *testing.T) {
	n := LeNet5()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	conv2 := n.Layers[1]
	if conv2.InputHeight() != 14 {
		t.Errorf("LeNet CONV2 input height = %d, want 14", conv2.InputHeight())
	}
}

func TestResNet18Validates(t *testing.T) {
	n := ResNet18()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// ~1.8 GMAC per image.
	total := n.TotalMACs()
	if total < 1.4e9 || total > 2.4e9 {
		t.Errorf("ResNet-18 MACs = %d, want ~1.8e9", total)
	}
}

func TestAllNetworksValidate(t *testing.T) {
	for _, n := range Networks() {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

func TestValidateRejectsBadLayers(t *testing.T) {
	bads := []Layer{
		{Name: "neg", Kind: Conv, H: 0, W: 1, J: 1, I: 1, P: 1, Q: 1, Stride: 1},
		{Name: "pad", Kind: Conv, H: 1, W: 1, J: 1, I: 1, P: 1, Q: 1, Stride: 1, Pad: -1},
		{Name: "fc", Kind: FC, H: 2, W: 1, J: 1, I: 1, P: 1, Q: 1, Stride: 1},
		{Name: "stride", Kind: Conv, H: 1, W: 1, J: 1, I: 1, P: 1, Q: 1, Stride: 0},
	}
	for _, l := range bads {
		if err := l.Validate(); err == nil {
			t.Errorf("layer %s accepted: %+v", l.Name, l)
		}
	}
}

func TestValidateRejectsEmptyNetwork(t *testing.T) {
	if err := (Network{Name: "empty"}).Validate(); err == nil {
		t.Error("empty network accepted")
	}
}

func TestPaddedInputDims(t *testing.T) {
	// AlexNet CONV2: 27x27 out, 5x5 kernel, stride 1, pad 2 -> 27x27 in.
	l := AlexNet().Layers[1]
	if l.InputHeight() != 27 || l.InputWidth() != 27 {
		t.Errorf("CONV2 input = %dx%d, want 27x27", l.InputHeight(), l.InputWidth())
	}
}

func TestInputDimsClampedToOne(t *testing.T) {
	l := Layer{Name: "tiny", Kind: Conv, H: 1, W: 1, J: 1, I: 1, P: 1, Q: 1, Stride: 1, Pad: 3}
	if l.InputHeight() != 1 || l.InputWidth() != 1 {
		t.Errorf("overpadded input dims = %dx%d, want clamped to 1x1", l.InputHeight(), l.InputWidth())
	}
}

func TestLayerString(t *testing.T) {
	convStr := AlexNet().Layers[0].String()
	for _, sub := range []string{"CONV1", "55x55x96", "11x11", "s4"} {
		if !strings.Contains(convStr, sub) {
			t.Errorf("conv string %q missing %q", convStr, sub)
		}
	}
	fcStr := AlexNet().Layers[7].String()
	if !strings.Contains(fcStr, "4096->1000") {
		t.Errorf("fc string %q missing shape", fcStr)
	}
}

func TestLayerKindString(t *testing.T) {
	if Conv.String() != "CONV" || FC.String() != "FC" {
		t.Errorf("kind strings: %q %q", Conv, FC)
	}
}
