// Package cnn describes convolutional neural network workloads at the
// granularity the DRMap paper needs: per-layer tensor geometry. A layer
// is characterized by its output feature map (ofms) dimensions H x W x J,
// its input depth I, its kernel P x Q, stride and padding - exactly the
// loop bounds of the paper's Fig. 3 pseudo-code.
package cnn

import "fmt"

// LayerKind distinguishes convolutional from fully-connected layers.
// An FC layer is the degenerate convolution H = W = P = Q = 1.
type LayerKind int

const (
	// Conv is a standard 2-D convolution layer.
	Conv LayerKind = iota
	// FC is a fully-connected layer.
	FC
)

// String names the kind.
func (k LayerKind) String() string {
	if k == FC {
		return "FC"
	}
	return "CONV"
}

// Layer is one CNN layer's tensor geometry.
type Layer struct {
	Name string
	Kind LayerKind

	H int // ofms height
	W int // ofms width
	J int // ofms depth (output channels)
	I int // ifms depth (input channels)
	P int // kernel height
	Q int // kernel width

	Stride int
	Pad    int
}

// Validate reports a descriptive error for inconsistent geometry.
func (l Layer) Validate() error {
	dims := []struct {
		name string
		v    int
	}{
		{"H", l.H}, {"W", l.W}, {"J", l.J}, {"I", l.I}, {"P", l.P}, {"Q", l.Q},
		{"Stride", l.Stride},
	}
	for _, d := range dims {
		if d.v <= 0 {
			return fmt.Errorf("cnn: layer %s: %s must be positive, got %d", l.Name, d.name, d.v)
		}
	}
	if l.Pad < 0 {
		return fmt.Errorf("cnn: layer %s: negative padding %d", l.Name, l.Pad)
	}
	if l.Kind == FC && (l.H != 1 || l.W != 1 || l.P != 1 || l.Q != 1) {
		return fmt.Errorf("cnn: layer %s: FC layers need H=W=P=Q=1", l.Name)
	}
	return nil
}

// InputHeight returns the stored ifms height: the receptive field of the
// H output rows minus the padded border.
func (l Layer) InputHeight() int {
	h := (l.H-1)*l.Stride + l.P - 2*l.Pad
	if h < 1 {
		h = 1
	}
	return h
}

// InputWidth returns the stored ifms width.
func (l Layer) InputWidth() int {
	w := (l.W-1)*l.Stride + l.Q - 2*l.Pad
	if w < 1 {
		w = 1
	}
	return w
}

// IfmElems returns the element count of the layer's stored input
// feature maps for one image.
func (l Layer) IfmElems() int64 {
	return int64(l.InputHeight()) * int64(l.InputWidth()) * int64(l.I)
}

// WgtElems returns the element count of the layer's weights.
func (l Layer) WgtElems() int64 {
	return int64(l.P) * int64(l.Q) * int64(l.I) * int64(l.J)
}

// OfmElems returns the element count of the layer's output feature maps
// for one image.
func (l Layer) OfmElems() int64 {
	return int64(l.H) * int64(l.W) * int64(l.J)
}

// MACs returns the multiply-accumulate count of the layer for one image.
func (l Layer) MACs() int64 {
	return l.OfmElems() * int64(l.I) * int64(l.P) * int64(l.Q)
}

// String summarizes the layer.
func (l Layer) String() string {
	if l.Kind == FC {
		return fmt.Sprintf("%s %s %d->%d", l.Name, l.Kind, l.I, l.J)
	}
	return fmt.Sprintf("%s %s ofm %dx%dx%d ifm-depth %d kernel %dx%d s%d p%d",
		l.Name, l.Kind, l.H, l.W, l.J, l.I, l.P, l.Q, l.Stride, l.Pad)
}

// Network is an ordered list of layers.
type Network struct {
	Name   string
	Layers []Layer
}

// Validate checks every layer.
func (n Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("cnn: network %s has no layers", n.Name)
	}
	for _, l := range n.Layers {
		if err := l.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalMACs sums MACs over all layers for one image.
func (n Network) TotalMACs() int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.MACs()
	}
	return total
}

// TotalWgtElems sums weight elements over all layers.
func (n Network) TotalWgtElems() int64 {
	var total int64
	for _, l := range n.Layers {
		total += l.WgtElems()
	}
	return total
}

// conv is a helper constructor for convolution layers.
func conv(name string, h, w, j, i, p, q, stride, pad int) Layer {
	return Layer{Name: name, Kind: Conv, H: h, W: w, J: j, I: i, P: p, Q: q, Stride: stride, Pad: pad}
}

// fc is a helper constructor for fully-connected layers.
func fc(name string, in, out int) Layer {
	return Layer{Name: name, Kind: FC, H: 1, W: 1, J: out, I: in, P: 1, Q: 1, Stride: 1}
}

// AlexNet returns the evaluation workload of the DRMap paper
// (Krizhevsky et al., NIPS 2012) on 227x227x3 ImageNet inputs. The
// grouped convolutions of the original two-GPU model are flattened to
// their full input depth, the standard simplification in DRAM-traffic
// studies; see EXPERIMENTS.md.
func AlexNet() Network {
	return Network{
		Name: "AlexNet",
		Layers: []Layer{
			conv("CONV1", 55, 55, 96, 3, 11, 11, 4, 0),
			conv("CONV2", 27, 27, 256, 96, 5, 5, 1, 2),
			conv("CONV3", 13, 13, 384, 256, 3, 3, 1, 1),
			conv("CONV4", 13, 13, 384, 384, 3, 3, 1, 1),
			conv("CONV5", 13, 13, 256, 384, 3, 3, 1, 1),
			fc("FC6", 9216, 4096),
			fc("FC7", 4096, 4096),
			fc("FC8", 4096, 1000),
		},
	}
}

// VGG16 returns the VGG-16 configuration-D workload (Simonyan &
// Zisserman, 2014) on 224x224x3 inputs; used by the extension
// experiments beyond the paper's AlexNet evaluation.
func VGG16() Network {
	return Network{
		Name: "VGG-16",
		Layers: []Layer{
			conv("CONV1_1", 224, 224, 64, 3, 3, 3, 1, 1),
			conv("CONV1_2", 224, 224, 64, 64, 3, 3, 1, 1),
			conv("CONV2_1", 112, 112, 128, 64, 3, 3, 1, 1),
			conv("CONV2_2", 112, 112, 128, 128, 3, 3, 1, 1),
			conv("CONV3_1", 56, 56, 256, 128, 3, 3, 1, 1),
			conv("CONV3_2", 56, 56, 256, 256, 3, 3, 1, 1),
			conv("CONV3_3", 56, 56, 256, 256, 3, 3, 1, 1),
			conv("CONV4_1", 28, 28, 512, 256, 3, 3, 1, 1),
			conv("CONV4_2", 28, 28, 512, 512, 3, 3, 1, 1),
			conv("CONV4_3", 28, 28, 512, 512, 3, 3, 1, 1),
			conv("CONV5_1", 14, 14, 512, 512, 3, 3, 1, 1),
			conv("CONV5_2", 14, 14, 512, 512, 3, 3, 1, 1),
			conv("CONV5_3", 14, 14, 512, 512, 3, 3, 1, 1),
			fc("FC6", 25088, 4096),
			fc("FC7", 4096, 4096),
			fc("FC8", 4096, 1000),
		},
	}
}

// LeNet5 returns the classic LeNet-5 workload (LeCun et al., 1998) on
// 32x32x1 inputs; a small smoke-test network for examples and tests.
func LeNet5() Network {
	return Network{
		Name: "LeNet-5",
		Layers: []Layer{
			conv("CONV1", 28, 28, 6, 1, 5, 5, 1, 0),
			conv("CONV2", 10, 10, 16, 6, 5, 5, 1, 0),
			fc("FC3", 400, 120),
			fc("FC4", 120, 84),
			fc("FC5", 84, 10),
		},
	}
}

// ResNet18 returns the convolutional shapes of ResNet-18 (He et al.,
// 2015) on 224x224x3 inputs, including the strided downsample
// projections; residual additions do not touch DRAM in this model.
func ResNet18() Network {
	return Network{
		Name: "ResNet-18",
		Layers: []Layer{
			conv("CONV1", 112, 112, 64, 3, 7, 7, 2, 3),
			conv("CONV2_1A", 56, 56, 64, 64, 3, 3, 1, 1),
			conv("CONV2_1B", 56, 56, 64, 64, 3, 3, 1, 1),
			conv("CONV2_2A", 56, 56, 64, 64, 3, 3, 1, 1),
			conv("CONV2_2B", 56, 56, 64, 64, 3, 3, 1, 1),
			conv("CONV3_1A", 28, 28, 128, 64, 3, 3, 2, 1),
			conv("CONV3_1B", 28, 28, 128, 128, 3, 3, 1, 1),
			conv("CONV3_DS", 28, 28, 128, 64, 1, 1, 2, 0),
			conv("CONV3_2A", 28, 28, 128, 128, 3, 3, 1, 1),
			conv("CONV3_2B", 28, 28, 128, 128, 3, 3, 1, 1),
			conv("CONV4_1A", 14, 14, 256, 128, 3, 3, 2, 1),
			conv("CONV4_1B", 14, 14, 256, 256, 3, 3, 1, 1),
			conv("CONV4_DS", 14, 14, 256, 128, 1, 1, 2, 0),
			conv("CONV4_2A", 14, 14, 256, 256, 3, 3, 1, 1),
			conv("CONV4_2B", 14, 14, 256, 256, 3, 3, 1, 1),
			conv("CONV5_1A", 7, 7, 512, 256, 3, 3, 2, 1),
			conv("CONV5_1B", 7, 7, 512, 512, 3, 3, 1, 1),
			conv("CONV5_DS", 7, 7, 512, 256, 1, 1, 2, 0),
			conv("CONV5_2A", 7, 7, 512, 512, 3, 3, 1, 1),
			conv("CONV5_2B", 7, 7, 512, 512, 3, 3, 1, 1),
			fc("FC", 512, 1000),
		},
	}
}

// Networks returns all built-in workloads.
func Networks() []Network {
	return []Network{AlexNet(), VGG16(), LeNet5(), ResNet18()}
}
