package sim

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelEngine delivers the events of one tick concurrently across
// domains, with a barrier before the clock advances: within a domain,
// events fire in (tick, schedule-order) exactly as the serial engine
// delivers them; across domains, they overlap on the worker pool.
// Events a handler schedules at the current tick join the same tick in
// a later round (the barrier repeats until the tick drains), so the
// serial-engine semantics are preserved whenever same-tick events of
// different domains touch disjoint state. Schedule is safe to call
// from concurrent handlers; Run is not reentrant.
type ParallelEngine struct {
	workers int

	mu        sync.Mutex
	queue     eventHeap
	scheduled int64

	now     atomic.Int64
	started atomic.Bool
}

// NewParallelEngine builds a parallel engine running at most workers
// domains concurrently per tick; workers <= 0 means one per logical
// CPU.
func NewParallelEngine(workers int) *ParallelEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ParallelEngine{workers: workers}
}

// Schedule enqueues an event; scheduling before the current tick
// panics (see Engine). Safe for concurrent use.
func (e *ParallelEngine) Schedule(ev Event) {
	if e.started.Load() && ev.Tick() < e.now.Load() {
		panic(fmt.Sprintf("sim: scheduling event at tick %d before current tick %d", ev.Tick(), e.now.Load()))
	}
	e.mu.Lock()
	e.scheduled++
	heap.Push(&e.queue, eventItem{ev: ev, tick: ev.Tick(), seq: e.scheduled})
	e.mu.Unlock()
}

// Run delivers rounds of same-tick events until the queue drains, a
// handler fails, or ctx is canceled. Each round takes every currently
// queued event of the minimum tick, partitions them by domain, and
// runs the partitions on the worker pool behind a barrier; the first
// error (in domain partition order, for determinism) aborts the run.
func (e *ParallelEngine) Run(ctx context.Context) error {
	for {
		batch, tick, ok := e.popRound()
		if !ok {
			return nil
		}
		e.now.Store(tick)
		e.started.Store(true)
		if err := e.runRound(ctx, batch); err != nil {
			return err
		}
	}
}

// popRound removes and returns every queued event of the minimum tick,
// in (tick, schedule-order).
func (e *ParallelEngine) popRound() ([]eventItem, int64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.queue.Len() == 0 {
		return nil, 0, false
	}
	tick := e.queue[0].tick
	var batch []eventItem
	for e.queue.Len() > 0 && e.queue[0].tick == tick {
		batch = append(batch, heap.Pop(&e.queue).(eventItem))
	}
	return batch, tick, true
}

// runRound partitions a round's events by domain (first-appearance
// order, so error selection is deterministic) and runs the partitions
// concurrently with a barrier.
func (e *ParallelEngine) runRound(ctx context.Context, batch []eventItem) error {
	var order []any
	groups := make(map[any][]eventItem)
	for _, it := range batch {
		k := domainKey(it.ev.Handler())
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], it)
	}
	if len(order) == 1 {
		return runDomain(ctx, groups[order[0]])
	}
	errs := make([]error, len(order))
	sem := make(chan struct{}, e.workers)
	var wg sync.WaitGroup
	for i, k := range order {
		// Acquire before spawning: with one domain per tile stream a
		// round can hold thousands of partitions, and taking the slot
		// inside the goroutine would launch them all just to park.
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, events []eventItem) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = runDomain(ctx, events)
		}(i, groups[k])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runDomain delivers one domain's slice of a round sequentially,
// checking ctx between events so a cancel interrupts even a
// single-tick run.
func runDomain(ctx context.Context, events []eventItem) error {
	for _, it := range events {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := it.ev.Handler().Handle(it.ev); err != nil {
			return fmt.Errorf("sim: tick %d: %w", it.tick, err)
		}
	}
	return nil
}

// Now returns the current tick.
func (e *ParallelEngine) Now() int64 { return e.now.Load() }

// Scheduled returns how many events have been scheduled in total.
func (e *ParallelEngine) Scheduled() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.scheduled
}
