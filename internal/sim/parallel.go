package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// schedShards is the number of sub-queues Schedule calls fan out over.
// Each domain hashes to one shard, so concurrent handlers of different
// domains rarely contend on the same mutex; the shards drain into the
// global tick heap between rounds, on the run goroutine.
const schedShards = 16

// schedShard is one Schedule sub-queue.
type schedShard struct {
	mu    sync.Mutex
	items []eventItem
	// pad spaces shards apart so their mutexes do not false-share one
	// cache line.
	_ [40]byte
}

// domainRun is the reusable per-partition scratch of one round: the
// partition's events in delivery order and the outcome of running them.
type domainRun struct {
	events []eventItem
	err    error
}

// ParallelEngine delivers the events of one tick concurrently across
// domains, with a barrier before the clock advances: within a domain,
// events fire in (tick, schedule-order) exactly as the serial engine
// delivers them; across domains, they overlap on a persistent worker
// pool. Events a handler schedules at the current tick join the same
// tick in a later round (the barrier repeats until the tick drains), so
// the serial-engine semantics are preserved whenever same-tick events
// of different domains touch disjoint state. Schedule is safe to call
// from concurrent handlers; Run is not reentrant.
type ParallelEngine struct {
	workers int

	// queue is the global (tick, seq) min-heap. It is only touched by
	// the run goroutine (or pre-Run single-threaded scheduling via
	// drainPending), never under a lock: Schedule appends to the shards.
	queue  eventHeap
	shards [schedShards]schedShard

	scheduled atomic.Int64
	now       atomic.Int64
	started   atomic.Bool

	// Round scratch, reused across rounds so steady-state rounds
	// allocate nothing: batch receives the popped round, order is the
	// first-appearance partition order, groups maps domain key to its
	// partition, free pools retired domainRun scratch.
	batch  []eventItem
	order  []any
	groups map[any]*domainRun
	free   []*domainRun

	// jobs feeds partitions to the pool workers for the current Run;
	// roundWG is the per-round barrier.
	jobs    chan *domainRun
	roundWG sync.WaitGroup
}

// NewParallelEngine builds a parallel engine running at most workers
// domains concurrently per tick; workers <= 0 means one per logical
// CPU.
func NewParallelEngine(workers int) *ParallelEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ParallelEngine{workers: workers}
}

// shardOf picks the Schedule sub-queue for an event's handler: the
// domain's assigned shard, or shard 0 for handlers without a domain.
func shardOf(h Handler) uint32 {
	if d, ok := h.(Domained); ok {
		if dom := d.Domain(); dom != nil {
			return dom.shard % schedShards
		}
	}
	return 0
}

// Schedule enqueues an event; scheduling before the current tick
// panics (see Engine). Safe for concurrent use: the global sequence
// number comes from an atomic counter and the item lands on the
// handler's shard, so concurrent domains do not serialize on a single
// engine mutex.
func (e *ParallelEngine) Schedule(ev Event) {
	if e.started.Load() && ev.Tick() < e.now.Load() {
		panic(fmt.Sprintf("sim: scheduling event at tick %d before current tick %d", ev.Tick(), e.now.Load()))
	}
	it := eventItem{ev: ev, tick: ev.Tick(), seq: e.scheduled.Add(1)}
	sh := &e.shards[shardOf(ev.Handler())]
	sh.mu.Lock()
	sh.items = append(sh.items, it)
	sh.mu.Unlock()
}

// drainPending collects every sharded item into the reused round
// buffer. uniform reports that the items all share a single tick AND
// that every shard held its items in ascending schedule order - the
// two conditions under which the concatenated batch already delivers
// each domain's events in (tick, seq) order and the heap can be
// skipped. A shard can be out of order only when one handler's events
// were scheduled from racing goroutines (or two same-shard domains
// interleaved); the check is conservative, so those rounds just take
// the heap path. Called between rounds (and before the first), when
// no handler is running.
func (e *ParallelEngine) drainPending() (batch []eventItem, tick int64, uniform bool) {
	batch = e.batch[:0]
	uniform = true
	first := true
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		prev := int64(-1)
		for _, it := range sh.items {
			if first {
				tick, first = it.tick, false
			} else if it.tick != tick {
				uniform = false
			}
			if it.seq < prev {
				uniform = false
			}
			prev = it.seq
			batch = append(batch, it)
		}
		clear(sh.items)
		sh.items = sh.items[:0]
		sh.mu.Unlock()
	}
	e.batch = batch
	return batch, tick, uniform
}

// Run delivers rounds of same-tick events until the queue drains, a
// handler fails, or ctx is canceled. Each round takes every currently
// queued event of the minimum tick, partitions them by domain, and
// runs the partitions on a pool of persistent workers behind a
// barrier; the first error (in domain partition order, for
// determinism) aborts the run.
func (e *ParallelEngine) Run(ctx context.Context) error {
	e.startWorkers(ctx)
	defer e.stopWorkers()
	for {
		batch, tick, uniform := e.drainPending()
		if uniform && len(batch) > 0 && len(e.queue) == 0 {
			// Every pending event shares one tick and nothing is
			// buffered from earlier rounds: the drained batch IS the
			// round, with no heap traffic at all. Each domain's items
			// sit in its shard in schedule order, so the per-domain
			// delivery sequence is exactly the heap's - only the
			// across-domain interleaving (which the barrier ignores)
			// differs. This is the steady state of a gap-free run,
			// where every arrival of a tick schedules at that tick.
		} else {
			// Mixed ticks or a non-empty heap: buffer everything and
			// pop the minimum tick in (tick, seq) order.
			for _, it := range batch {
				e.queue.push(it)
			}
			var ok bool
			batch, tick, ok = e.popRound()
			if !ok {
				return nil
			}
		}
		e.now.Store(tick)
		e.started.Store(true)
		if err := e.runRound(ctx, batch); err != nil {
			return err
		}
	}
}

// startWorkers launches the Run's worker pool: the workers outlive
// every round, so a round dispatches partitions over a channel instead
// of spawning one goroutine per domain.
func (e *ParallelEngine) startWorkers(ctx context.Context) {
	jobs := make(chan *domainRun)
	e.jobs = jobs
	for i := 0; i < e.workers; i++ {
		go func() {
			for dr := range jobs {
				dr.err = runDomain(ctx, dr.events)
				e.roundWG.Done()
			}
		}()
	}
}

// stopWorkers shuts the pool down at the end of a Run; a later Run
// starts a fresh pool against its own context.
func (e *ParallelEngine) stopWorkers() {
	close(e.jobs)
	e.jobs = nil
}

// popRound removes and returns every queued event of the minimum tick,
// in (tick, schedule-order), into the reused round buffer.
func (e *ParallelEngine) popRound() ([]eventItem, int64, bool) {
	if len(e.queue) == 0 {
		return nil, 0, false
	}
	tick := e.queue[0].tick
	batch := e.batch[:0]
	for len(e.queue) > 0 && e.queue[0].tick == tick {
		batch = append(batch, e.queue.pop())
	}
	e.batch = batch
	return batch, tick, true
}

// takeRun pops a pooled domainRun or makes a fresh one.
func (e *ParallelEngine) takeRun() *domainRun {
	if n := len(e.free); n > 0 {
		dr := e.free[n-1]
		e.free = e.free[:n-1]
		return dr
	}
	return &domainRun{}
}

// runRound partitions a round's events by domain and runs the
// partitions concurrently on the worker pool. On failure the error of
// the partition whose first event has the lowest schedule sequence
// wins - a deterministic pick that does not depend on how the round's
// items happened to interleave across shards.
func (e *ParallelEngine) runRound(ctx context.Context, batch []eventItem) error {
	if e.groups == nil {
		e.groups = make(map[any]*domainRun)
	}
	order := e.order[:0]
	// Consecutive events usually belong to the same domain (an agent
	// schedules its next window in one burst), so memoizing the last
	// key turns the per-event map lookup into a pointer compare.
	var lastK any
	var lastDr *domainRun
	for _, it := range batch {
		k := domainKey(it.ev.Handler())
		if k != lastK {
			dr := e.groups[k]
			if dr == nil {
				dr = e.takeRun()
				e.groups[k] = dr
				order = append(order, k)
			}
			lastK, lastDr = k, dr
		}
		lastDr.events = append(lastDr.events, it)
	}
	var err error
	if len(order) == 1 {
		// Single partition: run inline, skipping the channel handoff.
		err = runDomain(ctx, e.groups[order[0]].events)
	} else {
		e.roundWG.Add(len(order))
		for _, k := range order {
			e.jobs <- e.groups[k]
		}
		e.roundWG.Wait()
		errSeq := int64(-1)
		for _, k := range order {
			dr := e.groups[k]
			if dr.err == nil {
				continue
			}
			if s := dr.events[0].seq; errSeq < 0 || s < errSeq {
				err, errSeq = dr.err, s
			}
		}
	}
	// Retire the round's scratch for reuse. Events are zeroed so pooled
	// slices do not pin handlers between rounds.
	for i, k := range order {
		dr := e.groups[k]
		clear(dr.events)
		dr.events = dr.events[:0]
		dr.err = nil
		e.free = append(e.free, dr)
		order[i] = nil
	}
	clear(e.groups)
	e.order = order[:0]
	return err
}

// runDomain delivers one domain's slice of a round sequentially,
// checking ctx between events so a cancel interrupts even a
// single-tick run.
func runDomain(ctx context.Context, events []eventItem) error {
	for _, it := range events {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := it.ev.Handler().Handle(it.ev); err != nil {
			return fmt.Errorf("sim: tick %d: %w", it.tick, err)
		}
	}
	return nil
}

// Now returns the current tick.
func (e *ParallelEngine) Now() int64 { return e.now.Load() }

// Scheduled returns how many events have been scheduled in total.
func (e *ParallelEngine) Scheduled() int64 { return e.scheduled.Load() }
