// The memory-access-agent acceptance harness, in the style of akita's
// MemAccessAgent tests: seeded random request streams drive memctrl
// agents on both event engines, and the run must uphold the agent
// invariants (every request serviced, nothing pending after the drain,
// results identical across engines). The stream is tunable from the
// command line:
//
//	go test ./internal/sim/ -run MemAccessAgent -sim.seed=7 -sim.accesses=2048 -sim.rows=4
//
// Every failure message carries the seed, so a flake reproduces with
// -sim.seed alone.
package sim_test

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"drmap/internal/dram"
	"drmap/internal/memctrl"
	"drmap/internal/sim"
	"drmap/internal/trace"
)

var (
	simSeed = flag.Int64("sim.seed", 0,
		"seed for the memory-access-agent harness (0 derives one from the clock and logs it)")
	simAccesses = flag.Int("sim.accesses", 512,
		"random requests per agent in the harness")
	simRows = flag.Int("sim.rows", 0,
		"restrict random rows to [0, n), raising conflict pressure (0 uses the whole geometry)")
)

// harnessSeed resolves the harness seed: the flag when set, else one
// from the clock, always logged so failures reproduce.
func harnessSeed(t *testing.T) int64 {
	t.Helper()
	seed := *simSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t.Logf("memaccessagent harness seed %d (rerun with -sim.seed=%d)", seed, seed)
	return seed
}

// randomStream builds a seeded random read/write stream inside the
// geometry, rows optionally clamped by -sim.rows.
func randomStream(seed int64, n int, g dram.Geometry) []trace.Request {
	rows := g.Rows
	if *simRows > 0 && *simRows < rows {
		rows = *simRows
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]trace.Request, n)
	for i := range reqs {
		op := trace.Read
		if rng.Intn(2) == 1 {
			op = trace.Write
		}
		reqs[i] = trace.Request{
			Op: op,
			Addr: dram.Address{
				Channel: rng.Intn(g.Channels),
				Rank:    rng.Intn(g.Ranks),
				Bank:    rng.Intn(g.Banks),
				Row:     rng.Intn(rows),
				Column:  rng.Intn(g.Columns),
			},
		}
	}
	return reqs
}

// runAgent drives one stream through a fresh controller on the given
// engine and returns the finalized result, checking the agent
// invariants along the way.
func runAgent(t *testing.T, eng sim.Engine, cfg dram.Config, opt memctrl.Options, reqs []trace.Request, seed int64, label string) *memctrl.Result {
	t.Helper()
	ctrl, err := memctrl.New(cfg, opt)
	if err != nil {
		t.Fatalf("seed %d %s: New: %v", seed, label, err)
	}
	agent, err := memctrl.NewAgent(eng, ctrl, reqs)
	if err != nil {
		t.Fatalf("seed %d %s: NewAgent: %v", seed, label, err)
	}
	if got := agent.Pending(); got != len(reqs) {
		t.Fatalf("seed %d %s: %d pending before the run, want %d", seed, label, got, len(reqs))
	}
	if agent.Done() {
		t.Fatalf("seed %d %s: agent done before the engine ran", seed, label)
	}
	if _, err := agent.Result(); err == nil {
		t.Fatalf("seed %d %s: Result() before the drain did not error", seed, label)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatalf("seed %d %s: Run: %v", seed, label, err)
	}
	if got := agent.Pending(); got != 0 {
		t.Fatalf("seed %d %s: %d requests pending after the drain, want 0", seed, label, got)
	}
	if !agent.Done() {
		t.Fatalf("seed %d %s: agent not done after the drain", seed, label)
	}
	res, err := agent.Result()
	if err != nil {
		t.Fatalf("seed %d %s: Result: %v", seed, label, err)
	}
	return res
}

// TestMemAccessAgentAcceptance drives the seeded random stream through
// every architecture on both engines and checks the acceptance
// invariants: every request completes with a column command, and the
// serial and parallel engines produce bit-for-bit identical results.
func TestMemAccessAgentAcceptance(t *testing.T) {
	seed := harnessSeed(t)
	n := *simAccesses
	for _, arch := range dram.Archs {
		for _, sched := range []memctrl.Scheduler{memctrl.FCFS, memctrl.FRFCFS} {
			cfg := dram.ConfigFor(arch)
			opt := memctrl.Options{Scheduler: sched}
			reqs := randomStream(seed, n, cfg.Geometry)

			serial := runAgent(t, sim.NewSerialEngine(), cfg, opt, reqs, seed,
				fmt.Sprintf("%v/%v/serial", arch, sched))
			parallel := runAgent(t, sim.NewParallelEngine(4), cfg, opt, reqs, seed,
				fmt.Sprintf("%v/%v/parallel", arch, sched))

			if len(serial.Serviced) != n {
				t.Fatalf("seed %d %v/%v: serviced %d of %d requests", seed, arch, sched, len(serial.Serviced), n)
			}
			if got := serial.CommandCount(trace.CmdRD) + serial.CommandCount(trace.CmdWR); got != int64(n) {
				t.Errorf("seed %d %v/%v: %d column commands for %d requests", seed, arch, sched, got, n)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("seed %d %v/%v: serial and parallel agent results diverged", seed, arch, sched)
			}
		}
	}
}

// TestMemAccessAgentManyAgentsOneEngine runs several agents - each its
// own domain, each its own controller and stream - on one parallel
// engine, and requires every agent's result to match its standalone
// serial reference: the cross-agent concurrency the layer simulator
// relies on must never leak between controllers.
func TestMemAccessAgentManyAgentsOneEngine(t *testing.T) {
	seed := harnessSeed(t)
	const agents = 6
	cfg := dram.ConfigFor(dram.SALP2)
	opt := memctrl.Options{Scheduler: memctrl.FRFCFS}
	n := *simAccesses

	streams := make([][]trace.Request, agents)
	want := make([]*memctrl.Result, agents)
	for i := range streams {
		streams[i] = randomStream(seed+int64(i), n, cfg.Geometry)
		want[i] = runAgent(t, sim.NewSerialEngine(), cfg, opt, streams[i], seed,
			fmt.Sprintf("ref-%d", i))
	}

	eng := sim.NewParallelEngine(0)
	got := make([]*memctrl.Agent, agents)
	for i := range streams {
		ctrl, err := memctrl.New(cfg, opt)
		if err != nil {
			t.Fatalf("seed %d: New: %v", seed, err)
		}
		a, err := memctrl.NewAgent(eng, ctrl, streams[i])
		if err != nil {
			t.Fatalf("seed %d: NewAgent %d: %v", seed, i, err)
		}
		got[i] = a
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatalf("seed %d: Run: %v", seed, err)
	}
	for i, a := range got {
		if a.Pending() != 0 {
			t.Fatalf("seed %d: agent %d has %d pending after the drain", seed, i, a.Pending())
		}
		res, err := a.Result()
		if err != nil {
			t.Fatalf("seed %d: agent %d Result: %v", seed, i, err)
		}
		if !reflect.DeepEqual(res, want[i]) {
			t.Errorf("seed %d: agent %d diverged from its serial reference", seed, i)
		}
	}
}

// TestMemAccessAgentRejectsForeignAddress: an out-of-geometry address
// fails agent construction with the same error text the monolithic
// Run used.
func TestMemAccessAgentRejectsForeignAddress(t *testing.T) {
	cfg := dram.ConfigFor(dram.DDR3)
	ctrl, err := memctrl.New(cfg, memctrl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []trace.Request{{Op: trace.Read, Addr: dram.Address{Row: cfg.Geometry.Rows}}}
	if _, err := memctrl.NewAgent(sim.NewSerialEngine(), ctrl, bad); err == nil {
		t.Error("agent accepted an address outside the geometry")
	}
}
