package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// recorder is a test handler that logs the ticks of the events it
// receives, optionally scheduling follow-ups or failing.
type recorder struct {
	dom   *Domain
	log   []int64
	onEvt func(*recorder, testEvent) error
}

func (r *recorder) Handle(e Event) error {
	te := e.(testEvent)
	r.log = append(r.log, te.tick)
	if r.onEvt != nil {
		return r.onEvt(r, te)
	}
	return nil
}

func (r *recorder) Domain() *Domain { return r.dom }

// testEvent is a minimal Event carrying an identifying payload.
type testEvent struct {
	tick int64
	h    Handler
	id   int
}

func (e testEvent) Tick() int64      { return e.tick }
func (e testEvent) Handler() Handler { return e.h }

func TestSerialEngineOrdersByTickThenScheduleOrder(t *testing.T) {
	eng := NewSerialEngine()
	r := &recorder{}
	// Scheduled out of tick order; same-tick events keep schedule order.
	for _, tick := range []int64{5, 1, 5, 0, 1} {
		eng.Schedule(testEvent{tick: tick, h: r})
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int64{0, 1, 1, 5, 5}
	if !reflect.DeepEqual(r.log, want) {
		t.Errorf("delivery order %v, want %v", r.log, want)
	}
	if eng.Now() != 5 {
		t.Errorf("Now() = %d after drain, want 5", eng.Now())
	}
	if eng.Scheduled() != 5 {
		t.Errorf("Scheduled() = %d, want 5", eng.Scheduled())
	}
}

func TestHandlerSchedulesFollowUpsDuringRun(t *testing.T) {
	for name, eng := range map[string]Engine{
		"serial":   NewSerialEngine(),
		"parallel": NewParallelEngine(2),
	} {
		r := &recorder{onEvt: func(r *recorder, e testEvent) error {
			// Chain follow-ups, alternating same-tick and next-tick.
			if e.id < 3 {
				eng.Schedule(testEvent{tick: e.tick + int64(e.id%2), h: r, id: e.id + 1})
			}
			return nil
		}}
		eng.Schedule(testEvent{tick: 1, h: r, id: 0})
		if err := eng.Run(context.Background()); err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		if len(r.log) != 4 {
			t.Errorf("%s: delivered %d events, want 4 (chained)", name, len(r.log))
		}
		if eng.Scheduled() != 4 {
			t.Errorf("%s: Scheduled() = %d, want 4", name, eng.Scheduled())
		}
	}
}

func TestScheduleIntoPastPanics(t *testing.T) {
	for name, eng := range map[string]Engine{
		"serial":   NewSerialEngine(),
		"parallel": NewParallelEngine(2),
	} {
		r := &recorder{onEvt: func(r *recorder, e testEvent) error {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: scheduling into the past did not panic", name)
				}
			}()
			eng.Schedule(testEvent{tick: e.tick - 1, h: r})
			return nil
		}}
		eng.Schedule(testEvent{tick: 3, h: r})
		if err := eng.Run(context.Background()); err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
	}
}

func TestHandlerErrorAbortsRun(t *testing.T) {
	boom := errors.New("boom")
	for name, eng := range map[string]Engine{
		"serial":   NewSerialEngine(),
		"parallel": NewParallelEngine(2),
	} {
		r := &recorder{onEvt: func(r *recorder, e testEvent) error {
			if e.id == 1 {
				return boom
			}
			return nil
		}}
		eng.Schedule(testEvent{tick: 0, h: r, id: 0})
		eng.Schedule(testEvent{tick: 1, h: r, id: 1})
		eng.Schedule(testEvent{tick: 2, h: r, id: 2})
		err := eng.Run(context.Background())
		if !errors.Is(err, boom) {
			t.Fatalf("%s: Run returned %v, want the handler's error", name, err)
		}
		if want := "sim: tick 1:"; err == nil || len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
			t.Errorf("%s: error %q not wrapped with the failing tick", name, err)
		}
		if len(r.log) != 2 {
			t.Errorf("%s: %d events delivered after mid-run failure, want 2", name, len(r.log))
		}
	}
}

func TestCancelInterruptsSingleTickRun(t *testing.T) {
	// All events at tick 0 - the ArrivalGap=0 shape every DRMap layer
	// simulation uses - so only per-event ctx checks can interrupt.
	for name, eng := range map[string]Engine{
		"serial":   NewSerialEngine(),
		"parallel": NewParallelEngine(2),
	} {
		ctx, cancel := context.WithCancel(context.Background())
		r := &recorder{onEvt: func(r *recorder, e testEvent) error {
			if len(r.log) == 2 {
				cancel()
			}
			return nil
		}}
		for i := 0; i < 100; i++ {
			eng.Schedule(testEvent{tick: 0, h: r, id: i})
		}
		err := eng.Run(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: Run returned %v, want context.Canceled", name, err)
		}
		if len(r.log) >= 100 {
			t.Errorf("%s: cancel did not interrupt the tick (all %d events delivered)", name, len(r.log))
		}
	}
}

// TestParallelMatchesSerialPerDomain pins the equivalence contract: for
// a seeded random program over several domains, every domain observes
// the identical event sequence under both drivers.
func TestParallelMatchesSerialPerDomain(t *testing.T) {
	const domains, events = 8, 200
	run := func(eng Engine) [][]int64 {
		rng := rand.New(rand.NewSource(12345))
		recs := make([]*recorder, domains)
		for d := range recs {
			recs[d] = &recorder{dom: NewDomain(fmt.Sprintf("d%d", d))}
		}
		for i := 0; i < events; i++ {
			eng.Schedule(testEvent{tick: int64(rng.Intn(20)), h: recs[rng.Intn(domains)], id: i})
		}
		if err := eng.Run(context.Background()); err != nil {
			t.Fatalf("Run: %v", err)
		}
		logs := make([][]int64, domains)
		for d, r := range recs {
			logs[d] = r.log
		}
		return logs
	}
	serial := run(NewSerialEngine())
	parallel := run(NewParallelEngine(4))
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("per-domain event sequences diverged:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}

// TestParallelDomainsOverlap proves same-tick events of different
// domains really run concurrently: two handlers rendezvous mid-event,
// which deadlocks (and trips the timeout) under serial delivery.
func TestParallelDomainsOverlap(t *testing.T) {
	eng := NewParallelEngine(2)
	a := make(chan struct{})
	b := make(chan struct{})
	meet := func(signal, wait chan struct{}) func(*recorder, testEvent) error {
		return func(*recorder, testEvent) error {
			close(signal)
			select {
			case <-wait:
				return nil
			case <-time.After(10 * time.Second):
				return errors.New("domains did not overlap")
			}
		}
	}
	eng.Schedule(testEvent{tick: 0, h: &recorder{dom: NewDomain("a"), onEvt: meet(a, b)}})
	eng.Schedule(testEvent{tick: 0, h: &recorder{dom: NewDomain("b"), onEvt: meet(b, a)}})
	if err := eng.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestImplicitDomainsByHandlerIdentity: handlers that declare no domain
// are each their own domain, so two plain handlers still overlap.
func TestImplicitDomainsByHandlerIdentity(t *testing.T) {
	type plain struct{ recorder }
	eng := NewParallelEngine(2)
	a := make(chan struct{})
	b := make(chan struct{})
	mk := func(signal, wait chan struct{}) *plain {
		p := &plain{}
		p.onEvt = func(*recorder, testEvent) error {
			close(signal)
			select {
			case <-wait:
				return nil
			case <-time.After(10 * time.Second):
				return errors.New("implicit domains did not overlap")
			}
		}
		return p
	}
	ha, hb := mk(a, b), mk(b, a)
	eng.Schedule(testEvent{tick: 0, h: &ha.recorder})
	eng.Schedule(testEvent{tick: 0, h: &hb.recorder})
	if err := eng.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDomainName(t *testing.T) {
	if got := NewDomain("tile-0").Name(); got != "tile-0" {
		t.Errorf("Name() = %q", got)
	}
	var nilDom *Domain
	if got := nilDom.Name(); got != "" {
		t.Errorf("nil domain Name() = %q, want empty", got)
	}
}
