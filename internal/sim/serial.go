package sim

import (
	"context"
	"fmt"
)

// SerialEngine delivers events one at a time in (tick, schedule-order):
// the deterministic reference driver. It is not safe for concurrent
// use; the parallel driver exists for that.
type SerialEngine struct {
	queue     eventHeap
	now       int64
	started   bool
	scheduled int64
}

// NewSerialEngine builds an empty serial engine.
func NewSerialEngine() *SerialEngine {
	return &SerialEngine{}
}

// Schedule enqueues an event; scheduling before the current tick
// panics (see Engine).
func (e *SerialEngine) Schedule(ev Event) {
	if e.started && ev.Tick() < e.now {
		panic(fmt.Sprintf("sim: scheduling event at tick %d before current tick %d", ev.Tick(), e.now))
	}
	e.scheduled++
	e.queue.push(eventItem{ev: ev, tick: ev.Tick(), seq: e.scheduled})
}

// Run drains the queue in (tick, schedule-order). ctx is checked
// before every delivery, so a cancel interrupts even a single-tick run
// at event granularity.
func (e *SerialEngine) Run(ctx context.Context) error {
	for len(e.queue) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		it := e.queue.pop()
		e.now = it.tick
		e.started = true
		if err := it.ev.Handler().Handle(it.ev); err != nil {
			return fmt.Errorf("sim: tick %d: %w", it.tick, err)
		}
	}
	return nil
}

// Now returns the current tick.
func (e *SerialEngine) Now() int64 { return e.now }

// Scheduled returns how many events have been scheduled in total.
func (e *SerialEngine) Scheduled() int64 { return e.scheduled }
