// Package sim is a discrete-event simulation kernel in the style of
// akita's engine: components schedule events at integer ticks, an
// engine drives them in time order, and handlers react by mutating
// their own state and scheduling further events.
//
// Two drivers share the Engine interface. NewSerialEngine pops events
// one at a time from a (tick, sequence) min-heap - fully deterministic,
// the reference driver. NewParallelEngine executes the events of one
// tick concurrently across domains (see Domain) with a barrier before
// the clock advances, so independent components - in DRMap's use, the
// per-tile-stream memory controllers of a layer simulation - run on all
// cores while every domain still observes its own events in exactly the
// serial order. A program whose same-tick events touch disjoint state
// per domain therefore produces bit-for-bit identical results under
// both drivers; the memctrl equivalence suite pins that property for
// the paper's controllers.
package sim

import "context"

// Event is one scheduled occurrence: a tick at which it fires and the
// handler that consumes it. Events are values; schedule a new one
// rather than mutating a delivered one.
type Event interface {
	// Tick is the simulation time the event fires at.
	Tick() int64
	// Handler returns the component that handles the event.
	Handler() Handler
}

// Handler consumes events. A handler's events are always delivered in
// (tick, schedule-order) sequence, on one goroutine at a time, under
// both drivers; returning an error aborts the run.
type Handler interface {
	Handle(e Event) error
}

// Domain is a unit of parallelism: handlers that share mutable state
// declare the same Domain (via the Domained interface), and the
// parallel engine serializes their same-tick events while running
// different domains concurrently. Handlers that declare no domain are
// each their own implicit domain.
type Domain struct {
	name string
}

// NewDomain names a scheduling domain. The name is only for debugging;
// identity is the pointer.
func NewDomain(name string) *Domain { return &Domain{name: name} }

// Name returns the domain's debug name.
func (d *Domain) Name() string {
	if d == nil {
		return ""
	}
	return d.name
}

// Domained is implemented by handlers that belong to an explicit
// scheduling domain. The parallel engine groups same-tick events by
// domain; handlers without one are grouped by handler identity.
type Domained interface {
	Domain() *Domain
}

// Engine drives scheduled events in tick order until none remain.
// Implementations are safe for Schedule calls from handlers during Run
// (the parallel driver accepts them from concurrent domains); Run
// itself must not be called concurrently with itself.
type Engine interface {
	// Schedule enqueues an event. Scheduling into the past (a tick
	// before the engine's current time) panics: the causality bug is in
	// the caller, and silently reordering it would corrupt the run.
	Schedule(e Event)
	// Run delivers events in (tick, schedule-order) until the queue
	// drains, a handler fails, or ctx is canceled. It returns the
	// handler's error, ctx.Err() on cancellation, and nil on a drained
	// queue. After a non-nil return the queue may hold undelivered
	// events; the run is abandoned, not resumable.
	Run(ctx context.Context) error
	// Now returns the current simulation tick: the tick of the last
	// delivered event (0 before any).
	Now() int64
	// Scheduled returns how many events have been scheduled in total.
	Scheduled() int64
}

// eventItem orders events by (tick, seq): seq is the global schedule
// order, so same-tick events fire in the order they were scheduled -
// the determinism contract both drivers share.
type eventItem struct {
	ev   Event
	tick int64
	seq  int64
}

// eventHeap is a min-heap of eventItems (container/heap interface).
type eventHeap []eventItem

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].tick != h[j].tick {
		return h[i].tick < h[j].tick
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(eventItem)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// domainKey resolves the scheduling domain of an event's handler: the
// declared Domain when the handler is Domained, else the handler
// itself (each undeclared handler is its own domain).
func domainKey(h Handler) any {
	if d, ok := h.(Domained); ok {
		if dom := d.Domain(); dom != nil {
			return dom
		}
	}
	return h
}
