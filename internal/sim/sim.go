// Package sim is a discrete-event simulation kernel in the style of
// akita's engine: components schedule events at integer ticks, an
// engine drives them in time order, and handlers react by mutating
// their own state and scheduling further events.
//
// Two drivers share the Engine interface. NewSerialEngine pops events
// one at a time from a (tick, sequence) min-heap - fully deterministic,
// the reference driver. NewParallelEngine executes the events of one
// tick concurrently across domains (see Domain) with a barrier before
// the clock advances, so independent components - in DRMap's use, the
// per-tile-stream memory controllers of a layer simulation - run on all
// cores while every domain still observes its own events in exactly the
// serial order. A program whose same-tick events touch disjoint state
// per domain therefore produces bit-for-bit identical results under
// both drivers; the memctrl equivalence suite pins that property for
// the paper's controllers.
package sim

import (
	"context"
	"sync/atomic"
)

// Event is one scheduled occurrence: a tick at which it fires and the
// handler that consumes it. Events are values; schedule a new one
// rather than mutating a delivered one.
type Event interface {
	// Tick is the simulation time the event fires at.
	Tick() int64
	// Handler returns the component that handles the event.
	Handler() Handler
}

// Handler consumes events. A handler's events are always delivered in
// (tick, schedule-order) sequence, on one goroutine at a time, under
// both drivers; returning an error aborts the run.
type Handler interface {
	Handle(e Event) error
}

// Domain is a unit of parallelism: handlers that share mutable state
// declare the same Domain (via the Domained interface), and the
// parallel engine serializes their same-tick events while running
// different domains concurrently. Handlers that declare no domain are
// each their own implicit domain.
type Domain struct {
	name string
	// shard spreads the domain's Schedule calls across the parallel
	// engine's sub-queues so concurrent handlers do not contend on one
	// mutex; assigned round-robin at construction.
	shard uint32
}

var domainShards atomic.Uint32

// NewDomain names a scheduling domain. The name is only for debugging;
// identity is the pointer.
func NewDomain(name string) *Domain {
	return &Domain{name: name, shard: domainShards.Add(1)}
}

// Name returns the domain's debug name.
func (d *Domain) Name() string {
	if d == nil {
		return ""
	}
	return d.name
}

// Domained is implemented by handlers that belong to an explicit
// scheduling domain. The parallel engine groups same-tick events by
// domain; handlers without one are grouped by handler identity.
type Domained interface {
	Domain() *Domain
}

// Engine drives scheduled events in tick order until none remain.
// Implementations are safe for Schedule calls from handlers during Run
// (the parallel driver accepts them from concurrent domains); Run
// itself must not be called concurrently with itself.
type Engine interface {
	// Schedule enqueues an event. Scheduling into the past (a tick
	// before the engine's current time) panics: the causality bug is in
	// the caller, and silently reordering it would corrupt the run.
	Schedule(e Event)
	// Run delivers events in (tick, schedule-order) until the queue
	// drains, a handler fails, or ctx is canceled. It returns the
	// handler's error, ctx.Err() on cancellation, and nil on a drained
	// queue. After a non-nil return the queue may hold undelivered
	// events; the run is abandoned, not resumable.
	Run(ctx context.Context) error
	// Now returns the current simulation tick: the tick of the last
	// delivered event (0 before any).
	Now() int64
	// Scheduled returns how many events have been scheduled in total.
	Scheduled() int64
}

// eventItem orders events by (tick, seq): seq is the global schedule
// order, so same-tick events fire in the order they were scheduled -
// the determinism contract both drivers share.
type eventItem struct {
	ev   Event
	tick int64
	seq  int64
}

// eventHeap is a min-heap of eventItems. It implements sift-up and
// sift-down directly on the concrete element type: container/heap's
// Push(any)/Pop() any interface boxes every eventItem into an
// allocation, which at one event per request arrival dominated the
// simulate path's allocation profile.
type eventHeap []eventItem

func (h eventHeap) less(i, j int) bool {
	if h[i].tick != h[j].tick {
		return h[i].tick < h[j].tick
	}
	return h[i].seq < h[j].seq
}

// push adds an item and restores the heap invariant.
func (h *eventHeap) push(it eventItem) {
	*h = append(*h, it)
	q := *h
	for i := len(q) - 1; i > 0; {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

// pop removes and returns the minimum item. The vacated slot is zeroed
// so the heap's backing array does not pin delivered events.
func (h *eventHeap) pop() eventItem {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = eventItem{}
	q = q[:n]
	*h = q
	for i := 0; ; {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && q.less(r, l) {
			m = r
		}
		if !q.less(m, i) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return top
}

// domainKey resolves the scheduling domain of an event's handler: the
// declared Domain when the handler is Domained, else the handler
// itself (each undeclared handler is its own domain).
func domainKey(h Handler) any {
	if d, ok := h.(Domained); ok {
		if dom := d.Domain(); dom != nil {
			return dom
		}
	}
	return h
}
