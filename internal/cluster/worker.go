package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"drmap/internal/core"
	"drmap/internal/obs"
	"drmap/internal/service"
)

// DefaultHeartbeatInterval is how often a worker re-registers - one
// third of the default TTL, so two consecutive heartbeats may be lost
// before the coordinator drops the worker.
const DefaultHeartbeatInterval = DefaultHeartbeatTTL / 3

// AdvertiseFor derives a dialable base URL from a listen address when
// the operator gives none: ":8081" is reachable as 127.0.0.1 only when
// coordinator and worker share a host, so cross-host deployments must
// pass an explicit advertise URL.
func AdvertiseFor(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

// WorkerOptions tune a Worker.
type WorkerOptions struct {
	// ID is the worker's stable identity; empty derives one from the
	// hostname and PID.
	ID string
	// AdvertiseURL is the base URL the coordinator dials for shards
	// (e.g. "http://10.0.0.7:8081"). Required to register.
	AdvertiseURL string
	// CoordinatorURL is the coordinator's base URL; empty runs the
	// worker serve-only (something else registers it, e.g. a test).
	CoordinatorURL string
	// HeartbeatInterval is the registration cadence; <= 0 means
	// DefaultHeartbeatInterval.
	HeartbeatInterval time.Duration
	// Client performs registration calls; nil means a 10s-timeout
	// client (heartbeats must fail fast, not hang past the TTL).
	Client *http.Client
	// Logger receives one line per shard served, carrying the trace ID
	// the coordinator stamped on the dispatch; nil discards them.
	Logger *slog.Logger
}

// Worker executes shards on a local Service - through its worker pool,
// its CPU gate, and its content-addressed characterization cache - and
// keeps itself registered with a coordinator via heartbeat. It is safe
// for concurrent use.
type Worker struct {
	svc      *service.Service
	id       string
	opt      WorkerOptions
	client   *http.Client
	shards   atomic.Int64 // shards served
	rejected atomic.Int64 // shard requests rejected as malformed

	logger       *slog.Logger
	shardSeconds *obs.Histogram  // one observation per shard evaluated
	traceShards  *obs.CounterVec // shards served per trace ID, capped
}

// NewWorker builds a worker around a Service. Its shard timing and
// per-trace counters register on the Service's metrics registry, so
// the worker's GET /metrics page carries them.
func NewWorker(svc *service.Service, opt WorkerOptions) *Worker {
	id := opt.ID
	if id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	if opt.HeartbeatInterval <= 0 {
		opt.HeartbeatInterval = DefaultHeartbeatInterval
	}
	logger := opt.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	reg := svc.Registry()
	return &Worker{svc: svc, id: id, opt: opt, client: client,
		logger: logger,
		shardSeconds: reg.Histogram("drmap_worker_shard_seconds",
			"Time to evaluate one shard on this worker.", nil).With(),
		traceShards: reg.CappedCounter("drmap_trace_shards_total",
			"Shards served per trace ID (most recent trace IDs only).", 0, "trace_id"),
	}
}

// ID returns the worker's identity.
func (w *Worker) ID() string { return w.id }

// ShardsServed returns how many shards this worker has executed.
func (w *Worker) ShardsServed() int64 { return w.shards.Load() }

// Metrics returns the worker-side gauges for GET /metrics.
func (w *Worker) Metrics() []service.Metric {
	return []service.Metric{
		{Name: "drmap_worker_shards_served_total", Value: w.shards.Load()},
		{Name: "drmap_worker_shards_rejected_total", Value: w.rejected.Load()},
	}
}

// Mount registers the worker's shard endpoint on a mux:
//
//	POST /cluster/v1/shard
func (w *Worker) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathShard, w.handleShard)
}

func (w *Worker) handleShard(rw http.ResponseWriter, r *http.Request) {
	ctx, trace := obs.EnsureTrace(r.Context(), r.Header.Get(obs.TraceHeader))
	rw.Header().Set(obs.TraceHeader, trace)
	var req ShardRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<22)).Decode(&req); err != nil {
		w.rejected.Add(1)
		w.logger.Warn("shard rejected", "trace_id", trace, "err", err)
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": "bad shard body: " + err.Error()})
		return
	}
	// The shard's spans are recorded twice over: into a bounded buffer
	// returned in the response (the coordinator splices them into its
	// trace tree, parented under its dispatch span via X-Drmap-Span-Id)
	// and into this worker's own trace store for local debugging.
	buf := obs.NewSpanBuffer(0)
	ctx = obs.WithSpanSink(ctx, obs.TeeSpans(buf, w.svc.Spans()))
	ctx = obs.WithSpanProcess(ctx, "worker/"+w.id)
	if parent := r.Header.Get(obs.SpanHeader); parent != "" {
		ctx = obs.WithSpanParent(ctx, parent)
	}
	kind := "dse"
	if req.Sim != nil {
		kind = "simulate"
	}
	ctx, span := obs.StartSpan(ctx, "shard.evaluate",
		obs.Str("worker", w.id), obs.Str("kind", kind),
		obs.Int("shard", req.Shard), obs.Int("of", req.Total),
		obs.Int("span_start", req.Span.Start), obs.Int("span_end", req.Span.End))
	start := time.Now()
	var cells []core.CellResult
	var simLayers []core.SimLayerResult
	var err error
	if req.Sim != nil {
		simLayers, err = w.svc.EvaluateSimShard(ctx, *req.Sim, req.Span)
	} else {
		cells, err = w.svc.EvaluateShard(ctx, req.Job, req.Span)
	}
	if err != nil {
		span.Fail(err)
		span.End()
		w.rejected.Add(1)
		w.logger.Warn("shard rejected", "trace_id", trace, "shard", req.Shard, "of", req.Total, "err", err)
		writeJSON(rw, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	span.SetAttr(obs.Int("cells", len(cells)+len(simLayers)))
	span.End()
	dur := time.Since(start)
	w.shards.Add(1)
	w.shardSeconds.Observe(dur.Seconds())
	w.traceShards.With(trace).Inc()
	w.logger.Info("shard served",
		"trace_id", trace, "kind", kind, "shard", req.Shard, "of", req.Total,
		"columns", req.Span.Len(), "cells", len(cells)+len(simLayers), "duration_ms", dur.Milliseconds())
	writeJSON(rw, http.StatusOK, ShardResponse{WorkerID: w.id, Cells: cells, SimLayers: simLayers, Spans: buf.Spans()})
}

// Register performs one registration/heartbeat round trip.
func (w *Worker) Register(ctx context.Context) error {
	if w.opt.CoordinatorURL == "" {
		return fmt.Errorf("cluster: worker %s has no coordinator URL", w.id)
	}
	if w.opt.AdvertiseURL == "" {
		return fmt.Errorf("cluster: worker %s has no advertise URL", w.id)
	}
	body, err := json.Marshal(RegisterRequest{ID: w.id, URL: w.opt.AdvertiseURL, Capacity: w.svc.Workers()})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opt.CoordinatorURL+PathRegister, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: register %s: %w", w.id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("cluster: register %s: coordinator returned %s: %s", w.id, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// Run keeps the worker registered until ctx is canceled: one immediate
// registration, then a heartbeat every interval. Heartbeat failures are
// retried at the same cadence (the coordinator may be restarting; the
// worker re-registers as soon as it is back), reported through onError
// when set.
func (w *Worker) Run(ctx context.Context, onError func(error)) error {
	if err := w.Register(ctx); err != nil && onError != nil {
		onError(err)
	}
	t := time.NewTicker(w.opt.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			if err := w.Register(ctx); err != nil && onError != nil {
				onError(err)
			}
		}
	}
}
