package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/profile"
	"drmap/internal/service"
	"drmap/internal/tiling"
)

// simJobFor resolves a simulate job for a backend the way the service
// does: one DSE pass under a single schedule and policy picks each
// layer's design point, and those become the job's layer specs.
func simJobFor(t *testing.T, backendID string, net cnn.Network, parallel bool) service.SimulateJob {
	t.Helper()
	b, ok := dram.Lookup(backendID)
	if !ok {
		t.Fatalf("backend %q not registered", backendID)
	}
	p, err := profile.CharacterizeBackend(b)
	if err != nil {
		t.Fatalf("characterize %s: %v", backendID, err)
	}
	ac := accel.TableII()
	ev, err := core.NewEvaluator(p, ac, 1)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	pol := mapping.TableI()[0]
	res, err := core.RunDSE(net, ev, tiling.Schedules[:1], []mapping.Policy{pol})
	if err != nil {
		t.Fatalf("RunDSE: %v", err)
	}
	specs := make([]core.LayerSpec, len(res.Layers))
	for i, lr := range res.Layers {
		specs[i] = core.LayerSpec{Layer: lr.Layer, Tiling: lr.Best.Tiling, Schedule: lr.Best.Schedule, Batch: 1}
	}
	return service.SimulateJob{
		Backend: b, Policy: pol, Specs: specs,
		BytesPerElement: ac.BytesPerElement, Parallel: parallel,
	}
}

// localSim runs the reference simulation on the local serial engine.
func localSim(t *testing.T, job service.SimulateJob) []core.SimLayerResult {
	t.Helper()
	res, err := core.SimulateNetwork(context.Background(), job.Backend.Config, job.Policy, job.Specs, core.SimOptions{
		Controller:      job.ControllerOptions(),
		BytesPerElement: job.BytesPerElement,
	})
	if err != nil {
		t.Fatalf("local SimulateNetwork: %v", err)
	}
	return res
}

// TestDistributedSimulateMatchesLocalAllPaperBackends is the simulate
// acceptance contract: coordinator + 2 workers, LeNet-5, all four paper
// backends - the merged distributed layer results are bit-for-bit
// identical to the local serial engine (reflect.DeepEqual compares
// every cycle count, command tally, and energy float64 exactly), with
// the workers themselves running the parallel engine.
func TestDistributedSimulateMatchesLocalAllPaperBackends(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	w1 := newTestWorker(t, "w1", nil)
	w2 := newTestWorker(t, "w2", nil)
	w1.register(coord)
	w2.register(coord)
	net := cnn.LeNet5()
	for _, id := range []string{"ddr3", "salp1", "salp2", "masa"} {
		job := simJobFor(t, id, net, true)
		serial := localSim(t, job)
		dist, err := coord.RunSimulate(context.Background(), job)
		if err != nil {
			t.Fatalf("%s: distributed RunSimulate: %v", id, err)
		}
		if !reflect.DeepEqual(serial, dist) {
			t.Errorf("%s: distributed simulate diverged from local serial\nserial: %+v\ndistributed: %+v", id, serial, dist)
		}
	}
	if w1.worker.ShardsServed() == 0 || w2.worker.ShardsServed() == 0 {
		t.Errorf("dispatch did not use both workers (w1=%d, w2=%d shards)",
			w1.worker.ShardsServed(), w2.worker.ShardsServed())
	}
}

// TestDistributedSimulateSurvivesWorkerDeathMidShard kills one of two
// workers mid-run (its connections drop after it has served one shard)
// and requires the retried result to stay bit-for-bit identical to the
// local serial engine.
func TestDistributedSimulateSurvivesWorkerDeathMidShard(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	healthy := newTestWorker(t, "healthy", nil)
	dying := newTestWorker(t, "dying", func(n int64) bool { return n > 1 })
	healthy.register(coord)
	dying.register(coord)

	job := simJobFor(t, "ddr3", cnn.LeNet5(), true)
	serial := localSim(t, job)
	dist, err := coord.RunSimulate(context.Background(), job)
	if err != nil {
		t.Fatalf("distributed RunSimulate with dying worker: %v", err)
	}
	if !reflect.DeepEqual(serial, dist) {
		t.Error("distributed simulate diverged from local serial after worker death")
	}
	if coord.retries.Load() == 0 {
		t.Error("expected shard retries after the worker died mid-run")
	}
	if len(coord.Membership().Live()) != 1 {
		t.Errorf("dead worker still listed live: %v", coord.Membership().Live())
	}
}

// TestDistributedSimulateFailsOverLocally: with no live workers (or all
// dead), RunSimulate wraps service.ErrNoWorkers - and a Service wired
// to the coordinator serves the simulate request from its local engine
// with the exact same result.
func TestDistributedSimulateFailsOverLocally(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	job := simJobFor(t, "salp2", cnn.LeNet5(), false)
	if _, err := coord.RunSimulate(context.Background(), job); !errors.Is(err, service.ErrNoWorkers) {
		t.Fatalf("empty membership: got %v, want an error wrapping service.ErrNoWorkers", err)
	}
	dead := newTestWorker(t, "dead", func(int64) bool { return true })
	dead.register(coord)
	if _, err := coord.RunSimulate(context.Background(), job); !errors.Is(err, service.ErrNoWorkers) {
		t.Fatalf("all-dead membership: got %v, want an error wrapping service.ErrNoWorkers", err)
	}

	// The same topology behind a service: the request is served locally.
	svc := service.New(service.Options{Workers: 2, CacheEntries: 8, Runner: coord})
	resp, err := svc.Simulate(context.Background(), service.SimulateRequest{Arch: "salp2", Network: "lenet5"})
	if err != nil {
		t.Fatalf("simulate with only failing workers: %v", err)
	}
	if resp.Network == "" || len(resp.Layers) == 0 {
		t.Errorf("local fallback returned %+v, want a populated network response", resp)
	}
}

// TestDistributedSimulateThroughService drives the full runner wiring:
// a Service whose Runner is the coordinator distributes a network-mode
// simulate request across two workers and answers identically to a
// standalone Service simulating locally.
func TestDistributedSimulateThroughService(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	w1 := newTestWorker(t, "w1", nil)
	w2 := newTestWorker(t, "w2", nil)
	w1.register(coord)
	w2.register(coord)
	svc := service.New(service.Options{Workers: 2, CacheEntries: 8, Runner: coord})
	local := service.New(service.Options{Workers: 2, CacheEntries: 8})

	req := service.SimulateRequest{Arch: "masa", Network: "lenet5", Engine: "parallel"}
	dist, err := svc.Simulate(context.Background(), req)
	if err != nil {
		t.Fatalf("distributed simulate: %v", err)
	}
	want, err := local.Simulate(context.Background(), service.SimulateRequest{Arch: "masa", Network: "lenet5"})
	if err != nil {
		t.Fatalf("local simulate: %v", err)
	}
	dist.Cached = want.Cached
	if !reflect.DeepEqual(dist, want) {
		t.Errorf("distributed simulate response diverged from local:\ndistributed: %+v\nlocal:       %+v", dist, want)
	}
	if coord.completed.Load() == 0 {
		t.Error("the service's simulate request dispatched no shards")
	}
}

// TestMergeSimRejectsBadLayers: out-of-range, duplicate, or missing
// layer indices fail the merge instead of silently corrupting the
// assembled result.
func TestMergeSimRejectsBadLayers(t *testing.T) {
	ok := [][]core.SimLayerResult{{{Index: 0}}, {{Index: 1}}}
	if _, err := MergeSim(2, ok); err != nil {
		t.Fatalf("well-formed merge rejected: %v", err)
	}
	for name, shards := range map[string][][]core.SimLayerResult{
		"out of range": {{{Index: 2}}, {{Index: 0}}},
		"negative":     {{{Index: -1}}, {{Index: 0}}},
		"duplicate":    {{{Index: 0}}, {{Index: 0}}},
		"missing":      {{{Index: 0}}},
	} {
		if _, err := MergeSim(2, shards); err == nil {
			t.Errorf("%s: merge accepted malformed shard set", name)
		}
	}
}

// TestSimShardRequestRoundTripsExactly pins the simulate wire format:
// a simulate ShardRequest and a SimLayers-bearing ShardResponse survive
// JSON encode/decode unchanged - specs, command tallies, float64
// energies and all - which is what placement-merge exactness rests on.
func TestSimShardRequestRoundTripsExactly(t *testing.T) {
	job := simJobFor(t, "hbm2", cnn.LeNet5(), true)
	req := ShardRequest{Sim: &job, Span: core.ColumnSpan{Start: 1, End: 3}, Shard: 1, Total: 3}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back ShardRequest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(req, back) {
		t.Errorf("simulate ShardRequest did not round-trip:\nsent: %+v\ngot:  %+v", req, back)
	}

	svc := service.New(service.Options{Workers: 2, CacheEntries: 8})
	layers, err := svc.EvaluateSimShard(context.Background(), job, core.ColumnSpan{Start: 0, End: 2})
	if err != nil {
		t.Fatalf("EvaluateSimShard: %v", err)
	}
	resp := ShardResponse{WorkerID: "w", SimLayers: layers}
	rb, err := json.Marshal(resp)
	if err != nil {
		t.Fatalf("marshal response: %v", err)
	}
	var rback ShardResponse
	if err := json.Unmarshal(rb, &rback); err != nil {
		t.Fatalf("unmarshal response: %v", err)
	}
	if !reflect.DeepEqual(resp, rback) {
		t.Error("simulate ShardResponse did not round-trip bit-for-bit")
	}
}
