package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/profile"
	"drmap/internal/service"
	"drmap/internal/tiling"
)

// serialDSE runs the reference serial scan for a backend.
func serialDSE(t *testing.T, backendID string, net cnn.Network) *core.DSEResult {
	t.Helper()
	b, ok := dram.Lookup(backendID)
	if !ok {
		t.Fatalf("backend %q not registered", backendID)
	}
	p, err := profile.CharacterizeBackend(b)
	if err != nil {
		t.Fatalf("characterize %s: %v", backendID, err)
	}
	ev, err := core.NewEvaluator(p, accel.TableII(), 1)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	res, err := core.RunDSE(net, ev, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatalf("serial RunDSE: %v", err)
	}
	return res
}

// jobFor builds the resolved DSEJob the service would cut for a plain
// {"arch": id, "network": ...} request.
func jobFor(t *testing.T, backendID string, net cnn.Network) service.DSEJob {
	t.Helper()
	b, ok := dram.Lookup(backendID)
	if !ok {
		t.Fatalf("backend %q not registered", backendID)
	}
	return service.DSEJob{
		Backend: b, Accel: accel.TableII(), Network: net,
		Schedules: tiling.Schedules, Policies: mapping.TableI(),
		Objective: core.MinimizeEDP, Batch: 1,
	}
}

// testWorker is one in-process worker: its own Service (own pool, own
// caches - nothing shared with the coordinator or its peers) behind an
// httptest server, with an optional request interceptor for failure
// injection.
type testWorker struct {
	worker *Worker
	server *httptest.Server
	// fail, when set, is consulted per shard request (after n requests
	// have been counted); returning true makes the server kill the
	// connection mid-request, like a process dying mid-shard.
	fail func(reqNum int64) bool
	reqs atomic.Int64
}

func newTestWorker(t *testing.T, id string, fail func(reqNum int64) bool) *testWorker {
	tw, _ := newTestWorkerModes(t, id, fail, nil)
	return tw
}

// newFrozenWorker builds a worker whose matching requests freeze - the
// handler blocks without reading or writing, like a deadlocked process
// whose kernel still ACKs. The returned unfreeze func releases the
// stuck handlers so the httptest server can close; call it (deferred)
// before the test ends.
func newFrozenWorker(t *testing.T, id string, freeze func(reqNum int64) bool) (*testWorker, func()) {
	return newTestWorkerModes(t, id, nil, freeze)
}

func newTestWorkerModes(t *testing.T, id string, fail, freeze func(reqNum int64) bool) (*testWorker, func()) {
	t.Helper()
	svc := service.New(service.Options{Workers: 2, CacheEntries: 32})
	tw := &testWorker{fail: fail}
	tw.worker = NewWorker(svc, WorkerOptions{ID: id})
	mux := http.NewServeMux()
	tw.worker.Mount(mux)
	unfreeze := make(chan struct{})
	tw.server = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := tw.reqs.Add(1)
		if freeze != nil && freeze(n) {
			// Freeze mid-request. The request context alone is not
			// enough to get unstuck: with an unread body the server
			// never notices the client hanging up, which is exactly
			// the failure mode the coordinator's shard timeout covers.
			select {
			case <-r.Context().Done():
			case <-unfreeze:
			}
			return
		}
		if tw.fail != nil && tw.fail(n) {
			// Die mid-request: hijack the connection and slam it shut,
			// exactly what a killed worker process looks like.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("test server does not support hijacking")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(tw.server.Close)
	var once sync.Once
	return tw, func() { once.Do(func() { close(unfreeze) }) }
}

// register adds the worker to a coordinator's membership directly (the
// HTTP registration path is exercised by the end-to-end test).
func (tw *testWorker) register(c *Coordinator) {
	c.Membership().Heartbeat(WorkerInfo{ID: tw.worker.ID(), URL: tw.server.URL, Capacity: 2})
}

// TestDistributedDSEMatchesSerialAllPaperBackends is the tentpole
// acceptance contract: coordinator + 2 workers, AlexNet, all four paper
// backends - the merged distributed result is bit-for-bit identical to
// serial RunDSE (reflect.DeepEqual compares every float64 exactly).
func TestDistributedDSEMatchesSerialAllPaperBackends(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	w1 := newTestWorker(t, "w1", nil)
	w2 := newTestWorker(t, "w2", nil)
	w1.register(coord)
	w2.register(coord)
	net := cnn.AlexNet()
	for _, id := range []string{"ddr3", "salp1", "salp2", "masa"} {
		serial := serialDSE(t, id, net)
		dist, err := coord.RunDSE(context.Background(), jobFor(t, id, net))
		if err != nil {
			t.Fatalf("%s: distributed RunDSE: %v", id, err)
		}
		if !reflect.DeepEqual(serial, dist) {
			t.Errorf("%s: distributed DSE diverged from serial\nserial: %+v\ndistributed: %+v", id, serial, dist)
		}
	}
	if w1.worker.ShardsServed() == 0 || w2.worker.ShardsServed() == 0 {
		t.Errorf("dispatch did not use both workers (w1=%d, w2=%d shards)",
			w1.worker.ShardsServed(), w2.worker.ShardsServed())
	}
}

// TestDistributedDSESurvivesWorkerDeathMidRun kills one of two workers
// mid-run (its connections start dropping after it has served one
// shard) and requires the retried, re-sharded result to still be
// bit-for-bit identical to serial RunDSE.
func TestDistributedDSESurvivesWorkerDeathMidRun(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	healthy := newTestWorker(t, "healthy", nil)
	dying := newTestWorker(t, "dying", func(n int64) bool { return n > 1 })
	healthy.register(coord)
	dying.register(coord)

	net := cnn.AlexNet()
	serial := serialDSE(t, "ddr3", net)
	dist, err := coord.RunDSE(context.Background(), jobFor(t, "ddr3", net))
	if err != nil {
		t.Fatalf("distributed RunDSE with dying worker: %v", err)
	}
	if !reflect.DeepEqual(serial, dist) {
		t.Error("distributed DSE diverged from serial after worker death")
	}
	if coord.retries.Load() == 0 {
		t.Error("expected shard retries after the worker died mid-run")
	}
	if len(coord.Membership().Live()) != 1 {
		t.Errorf("dead worker still listed live: %v", coord.Membership().Live())
	}
}

// TestDistributedDSEAllWorkersDeadFailsOver: when every worker dies
// mid-run, the job surfaces service.ErrNoWorkers so the owning service
// falls back to its local pool instead of failing the request.
func TestDistributedDSEAllWorkersDeadFailsOver(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	dead := newTestWorker(t, "dead", func(int64) bool { return true })
	dead.register(coord)
	_, err := coord.RunDSE(context.Background(), jobFor(t, "ddr3", cnn.LeNet5()))
	if !errors.Is(err, service.ErrNoWorkers) {
		t.Fatalf("got %v, want an error wrapping service.ErrNoWorkers", err)
	}
}

// TestDuplicateShardDelivery: merging the same cells twice (a shard
// delivered to two workers, or re-delivered after a retry raced a slow
// success) reduces to the identical result - the serial tie-break can
// never prefer a duplicate over the original.
func TestDuplicateShardDelivery(t *testing.T) {
	svc := service.New(service.Options{Workers: 2, CacheEntries: 8})
	job := jobFor(t, "salp2", cnn.LeNet5())
	grids, err := job.Grid()
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	spans := core.ColumnShards(job.Columns(grids), 5)
	var cells []core.CellResult
	for _, span := range spans {
		cs, err := svc.EvaluateShard(context.Background(), job, span)
		if err != nil {
			t.Fatalf("shard %+v: %v", span, err)
		}
		cells = append(cells, cs...)
	}
	serial := serialDSE(t, "salp2", cnn.LeNet5())

	once, err := Merge(job, grids, cells)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !reflect.DeepEqual(serial, once) {
		t.Error("sharded merge diverged from serial")
	}

	duplicated := append(append([]core.CellResult{}, cells...), cells...)
	twice, err := Merge(job, grids, duplicated)
	if err != nil {
		t.Fatalf("merge duplicated: %v", err)
	}
	if !reflect.DeepEqual(serial, twice) {
		t.Error("duplicate shard delivery changed the merged result")
	}
}

// TestMergeRejectsForeignCells: cells outside the job's grid (a worker
// answering for a different job) fail the merge instead of silently
// corrupting the reduction.
func TestMergeRejectsForeignCells(t *testing.T) {
	job := jobFor(t, "ddr3", cnn.LeNet5())
	grids, err := job.Grid()
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []core.CellResult{
		{LayerIndex: len(grids), Value: 1},
		{ScheduleIndex: len(job.Schedules), Value: 1},
		{PolicyIndex: -1, Value: 1},
		{TilingIndex: 1 << 30, Value: 1},
	} {
		if _, err := Merge(job, grids, []core.CellResult{bad}); err == nil {
			t.Errorf("merge accepted foreign cell %+v", bad)
		}
	}
}

// TestCoordinatorStaleHeartbeats pins the membership TTL contract: a
// worker that stops heartbeating drops out of dispatch, and a fresh
// heartbeat brings it back.
func TestCoordinatorStaleHeartbeats(t *testing.T) {
	clock := time.Unix(1000, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	coord := NewCoordinator(CoordinatorOptions{HeartbeatTTL: 10 * time.Second, Now: now})
	w := newTestWorker(t, "w", nil)
	w.register(coord)
	if got := len(coord.Membership().Live()); got != 1 {
		t.Fatalf("live workers = %d, want 1", got)
	}

	advance(11 * time.Second)
	if got := len(coord.Membership().Live()); got != 0 {
		t.Fatalf("stale worker still live after TTL: %d", got)
	}
	if _, err := coord.RunDSE(context.Background(), jobFor(t, "ddr3", cnn.LeNet5())); !errors.Is(err, service.ErrNoWorkers) {
		t.Fatalf("RunDSE with only stale workers: got %v, want ErrNoWorkers", err)
	}

	w.register(coord) // the worker's next heartbeat revives it
	serial := serialDSE(t, "ddr3", cnn.LeNet5())
	dist, err := coord.RunDSE(context.Background(), jobFor(t, "ddr3", cnn.LeNet5()))
	if err != nil {
		t.Fatalf("RunDSE after re-heartbeat: %v", err)
	}
	if !reflect.DeepEqual(serial, dist) {
		t.Error("post-revival distributed DSE diverged from serial")
	}
}

// TestCoordinatorRestartFallsBackLocally models a coordinator restart:
// the replacement starts with an empty membership (there is no
// persistent assignment state to recover), so a service wired to it
// serves DSE from the local pool - with results identical to serial -
// until workers re-register, after which jobs distribute again.
func TestCoordinatorRestartFallsBackLocally(t *testing.T) {
	restarted := NewCoordinator(CoordinatorOptions{})
	svc := service.New(service.Options{Workers: 2, CacheEntries: 8, Runner: restarted})

	serial := serialDSE(t, "masa", cnn.LeNet5())
	resp, err := svc.DSE(context.Background(), service.DSERequest{Arch: "masa", Network: "lenet5"})
	if err != nil {
		t.Fatalf("DSE during coordinator restart window: %v", err)
	}
	if resp.Result.TotalEDPJs != serial.TotalEDP() {
		t.Errorf("local fallback TotalEDP %g, want %g", resp.Result.TotalEDPJs, serial.TotalEDP())
	}
	if restarted.completed.Load() != 0 {
		t.Error("no workers are registered; nothing should have been dispatched")
	}

	// A worker heartbeats in; the next (distinct) job distributes.
	w := newTestWorker(t, "w", nil)
	w.register(restarted)
	if _, err := svc.DSE(context.Background(), service.DSERequest{Arch: "salp1", Network: "lenet5"}); err != nil {
		t.Fatalf("DSE after worker re-registered: %v", err)
	}
	if restarted.completed.Load() == 0 {
		t.Error("worker re-registered but no shards were dispatched")
	}
}

// TestClusterEndToEnd boots the full HTTP topology - a coordinator
// daemon (service handler + cluster endpoints + distributed runner) and
// two worker daemons registering over HTTP - and drives it through
// POST /api/v1/batch: >= 4 (backend, network) jobs in one request,
// distributed across both workers, results identical to serial, with
// cache sharing visible in the hit counters on a repeat. This is the
// test the CI cluster job runs under the race detector.
func TestClusterEndToEnd(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	svc := service.New(service.Options{Workers: 4, CacheEntries: 64, Runner: coord, ExtraMetrics: coord.Metrics})
	mux := service.NewHandler(svc, 2*time.Minute)
	coord.Mount(mux)
	coordSrv := httptest.NewServer(mux)
	t.Cleanup(coordSrv.Close)

	// Two workers register through the real HTTP registration path.
	for _, id := range []string{"w1", "w2"} {
		tw := newTestWorker(t, id, nil)
		tw.worker.opt.CoordinatorURL = coordSrv.URL
		tw.worker.opt.AdvertiseURL = tw.server.URL
		if err := tw.worker.Register(context.Background()); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	if live := coord.Membership().Live(); len(live) != 2 {
		t.Fatalf("live workers = %d, want 2", len(live))
	}

	jobs := []struct{ arch, network string }{
		{"ddr3", "lenet5"}, {"salp1", "lenet5"}, {"masa", "lenet5"}, {"ddr4", "lenet5"},
	}
	var body strings.Builder
	body.WriteString(`{"jobs":[`)
	for i, j := range jobs {
		if i > 0 {
			body.WriteString(",")
		}
		fmt.Fprintf(&body, `{"arch":%q,"network":%q}`, j.arch, j.network)
	}
	body.WriteString(`]}`)

	post := func() service.BatchResponse {
		resp, err := http.Post(coordSrv.URL+"/api/v1/batch", "application/json", strings.NewReader(body.String()))
		if err != nil {
			t.Fatalf("POST /api/v1/batch: %v", err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
		}
		var br service.BatchResponse
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatalf("decode batch response: %v", err)
		}
		return br
	}

	first := post()
	if first.Completed != len(jobs) || first.Failed != 0 {
		t.Fatalf("batch completed=%d failed=%d, want %d/0: %+v", first.Completed, first.Failed, len(jobs), first.Results)
	}
	for i, item := range first.Results {
		serial := serialDSE(t, jobs[i].arch, cnn.LeNet5())
		if item.Result == nil {
			t.Fatalf("job %d has no result", i)
		}
		if got, want := item.Result.Result.TotalEDPJs, serial.TotalEDP(); got != want {
			t.Errorf("job %d (%s): distributed TotalEDP %g, want serial %g", i, jobs[i].arch, got, want)
		}
	}
	if coord.completed.Load() == 0 {
		t.Error("batch did not dispatch any shards to the cluster")
	}

	// The same batch again: every job is a cache hit, shared across the
	// batch entry point - verified by the hit counters.
	before := svc.CacheStats()
	second := post()
	for i, item := range second.Results {
		if item.Result == nil || !item.Result.Cached {
			t.Errorf("repeat batch job %d not served from cache", i)
		}
	}
	after := svc.CacheStats()
	if after.Hits < before.Hits+int64(len(jobs)) {
		t.Errorf("cache hits went %d -> %d, want >= %d", before.Hits, after.Hits, before.Hits+int64(len(jobs)))
	}

	// The metrics endpoint exposes the cluster gauges.
	mresp, err := http.Get(coordSrv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{"drmap_evaluations_total", "drmap_cache_hits_total", "drmap_cluster_workers 2", "drmap_cluster_inflight_shards"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics output missing %q:\n%s", want, metrics)
		}
	}

	// The membership listing answers over HTTP too.
	wresp, err := http.Get(coordSrv.URL + PathWorkers)
	if err != nil {
		t.Fatalf("GET %s: %v", PathWorkers, err)
	}
	defer wresp.Body.Close()
	var wl WorkersResponse
	if err := json.NewDecoder(wresp.Body).Decode(&wl); err != nil {
		t.Fatalf("decode workers: %v", err)
	}
	if len(wl.Workers) != 2 || !wl.Workers[0].Live || !wl.Workers[1].Live {
		t.Errorf("workers listing %+v, want 2 live workers", wl.Workers)
	}
}

// TestShardRequestRoundTripsExactly pins the wire-format contract the
// bit-for-bit guarantee rests on: a ShardRequest (job included) and a
// ShardResponse survive JSON encode/decode unchanged - float64 costs,
// int enums, policy orders and all.
func TestShardRequestRoundTripsExactly(t *testing.T) {
	job := jobFor(t, "hbm2", cnn.LeNet5())
	req := ShardRequest{Job: job, Span: core.ColumnSpan{Start: 3, End: 9}, Shard: 1, Total: 4}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back ShardRequest
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(req, back) {
		t.Errorf("ShardRequest did not round-trip:\nsent: %+v\ngot:  %+v", req, back)
	}

	svc := service.New(service.Options{Workers: 2, CacheEntries: 8})
	cells, err := svc.EvaluateShard(context.Background(), job, core.ColumnSpan{Start: 0, End: 4})
	if err != nil {
		t.Fatalf("EvaluateShard: %v", err)
	}
	resp := ShardResponse{WorkerID: "w", Cells: cells}
	rb, err := json.Marshal(resp)
	if err != nil {
		t.Fatalf("marshal response: %v", err)
	}
	var rback ShardResponse
	if err := json.Unmarshal(rb, &rback); err != nil {
		t.Fatalf("unmarshal response: %v", err)
	}
	if !reflect.DeepEqual(resp, rback) {
		t.Error("ShardResponse did not round-trip bit-for-bit")
	}
}

// TestFrozenWorkerTimesOutAndRetries: a worker that freezes mid-shard
// (accepts the request, never answers - TCP stays healthy) is cut off
// by the shard timeout and its shards retry on the survivor, keeping
// the result bit-for-bit equal to serial instead of hanging the job
// (and its single-flight cache entry) forever.
func TestFrozenWorkerTimesOutAndRetries(t *testing.T) {
	// The timeout must be long enough that a healthy worker's LeNet5
	// shard (milliseconds) never trips it even on a loaded -race CI
	// box, and short enough to keep the test brisk.
	coord := NewCoordinator(CoordinatorOptions{ShardTimeout: 2 * time.Second})
	healthy := newTestWorker(t, "healthy", nil)
	frozen, unfreeze := newFrozenWorker(t, "frozen", func(int64) bool { return true })
	defer unfreeze()
	healthy.register(coord)
	frozen.register(coord)

	serial := serialDSE(t, "ddr3", cnn.LeNet5())
	start := time.Now()
	dist, err := coord.RunDSE(context.Background(), jobFor(t, "ddr3", cnn.LeNet5()))
	if err != nil {
		t.Fatalf("RunDSE with frozen worker: %v", err)
	}
	if !reflect.DeepEqual(serial, dist) {
		t.Error("distributed DSE diverged from serial after worker froze")
	}
	if coord.retries.Load() == 0 {
		t.Error("expected retries after shard timeouts")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("job took %s; the frozen worker was not timed out", elapsed)
	}
}

// TestAttemptExhaustionFailsOver: when every attempt burns a worker
// that keeps failing (heartbeats racing the dead-marks keep them
// nominally live), the shard error still wraps service.ErrNoWorkers so
// the owning service falls back to its local pool rather than 500ing.
func TestAttemptExhaustionFailsOver(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{MaxAttempts: 2})
	bad1 := newTestWorker(t, "bad1", func(int64) bool { return true })
	bad2 := newTestWorker(t, "bad2", func(int64) bool { return true })
	bad1.register(coord)
	bad2.register(coord)
	_, err := coord.RunDSE(context.Background(), jobFor(t, "ddr3", cnn.LeNet5()))
	if !errors.Is(err, service.ErrNoWorkers) {
		t.Fatalf("got %v, want an error wrapping service.ErrNoWorkers", err)
	}

	// The same topology behind a service: requests are served locally.
	svc := service.New(service.Options{Workers: 2, CacheEntries: 8, Runner: coord})
	bad1.register(coord) // revive for another round of failures
	bad2.register(coord)
	resp, err := svc.DSE(context.Background(), service.DSERequest{Arch: "ddr3", Network: "lenet5"})
	if err != nil {
		t.Fatalf("DSE with only failing workers: %v", err)
	}
	serial := serialDSE(t, "ddr3", cnn.LeNet5())
	if resp.Result.TotalEDPJs != serial.TotalEDP() {
		t.Errorf("local fallback TotalEDP %g, want %g", resp.Result.TotalEDPJs, serial.TotalEDP())
	}
}

// TestRepeatedDistributedDSERepricesOnWorkers: the second distributed
// run of a job reprices the workers' cached vectorized count plans
// (plan-cache hits, no new misses) and both runs stay bit-for-bit
// identical to serial RunDSE - the warm path through the full
// coordinator -> shard -> merge stack. The CI cluster job runs this
// under the race detector.
func TestRepeatedDistributedDSERepricesOnWorkers(t *testing.T) {
	// The coordinator's shard cache would answer the repeat without
	// touching the worker; disable it so the second run re-dispatches and
	// the worker-side plan reuse is what's measured.
	coord := NewCoordinator(CoordinatorOptions{ShardCacheEntries: -1})
	// Build the worker by hand to keep its Service (and plan-cache
	// counters) in reach.
	svc := service.New(service.Options{Workers: 2, CacheEntries: 32})
	w := NewWorker(svc, WorkerOptions{ID: "w"})
	mux := http.NewServeMux()
	w.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	coord.Membership().Heartbeat(WorkerInfo{ID: "w", URL: srv.URL, Capacity: 2})

	net := cnn.LeNet5()
	serial := serialDSE(t, "salp2", net)
	first, err := coord.RunDSE(context.Background(), jobFor(t, "salp2", net))
	if err != nil {
		t.Fatalf("first distributed RunDSE: %v", err)
	}
	cold := svc.PlanCacheStats()
	if cold.Misses == 0 {
		t.Fatal("first run did not populate the worker's plan cache")
	}

	second, err := coord.RunDSE(context.Background(), jobFor(t, "salp2", net))
	if err != nil {
		t.Fatalf("second distributed RunDSE: %v", err)
	}
	warm := svc.PlanCacheStats()
	if warm.Misses != cold.Misses {
		t.Errorf("second run recounted on the worker: misses %d -> %d", cold.Misses, warm.Misses)
	}
	if warm.Hits <= cold.Hits {
		t.Errorf("second run did not reprice the worker's plans: hits %d -> %d", cold.Hits, warm.Hits)
	}
	for name, got := range map[string]*core.DSEResult{"cold": first, "warm": second} {
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("%s distributed DSE diverged from serial", name)
		}
	}
}
