package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drmap/internal/core"
	"drmap/internal/obs"
	"drmap/internal/service"
)

// RunSimulate distributes one resolved simulate job across the live
// workers, one shard per contiguous span of layer indices, and merges
// the returned layers by placement into a result bit-for-bit identical
// to the local engines (layers share no simulation state, so a span is
// exact wherever it runs). With no live workers it returns an error
// wrapping service.ErrNoWorkers, and the owning Service falls back to
// its local event engine - simulate degrades to standalone exactly
// like DSE.
//
// A progress sink on ctx receives the layer total up front and one
// ColumnsDone per merged shard span; a sim-layer sink
// (core.WithSimLayers) receives every layer in index order after the
// merge, so a distributed v2 simulate job streams the same sim_layer
// events as a local one.
func (c *Coordinator) RunSimulate(ctx context.Context, job service.SimulateJob) ([]core.SimLayerResult, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	live := c.members.Live()
	if len(live) == 0 {
		return nil, fmt.Errorf("cluster: %w", service.ErrNoWorkers)
	}
	prog := core.ProgressFrom(ctx)
	layers := len(job.Specs)
	if prog != nil {
		prog.StartColumns(layers)
	}
	spans := core.ColumnShards(layers, len(live)*c.shardsPerWorker)
	// The shard cache shares its keyspace with DSE shards; the "sim:"
	// prefix keeps the two job kinds' fingerprints from ever colliding.
	jobFP := ""
	if c.shardCache != nil {
		if fp, err := service.Fingerprint(job); err == nil {
			jobFP = "sim:" + fp
		}
	}
	start := time.Now()
	shardResults, done, err := c.dispatchAllSim(ctx, jobFP, job, spans)
	if err != nil {
		// Withdraw this attempt's announced and completed columns, as
		// RunDSE does: the local fallback announces the same layers
		// again, and an accumulating sink would double-count.
		if prog != nil {
			prog.ColumnsDone(-done)
			prog.StartColumns(-layers)
		}
		c.logger.Warn("cluster sim dispatch failed",
			"trace_id", obs.TraceFrom(ctx), "shards", len(spans), "err", err)
		return nil, err
	}
	mergeStart := time.Now()
	res, err := MergeSim(layers, shardResults)
	mergeDur := time.Since(mergeStart)
	c.mergeSeconds.Observe(mergeDur.Seconds())
	if rec := core.PhasesFrom(ctx); rec != nil {
		rec.RecordPhase(core.PhaseShardMerge, mergeDur)
	}
	obs.RecordSpan(ctx, "shard.merge", mergeStart, mergeStart.Add(mergeDur),
		obs.Int("shards", len(spans)), obs.Int("layers", layers))
	if err != nil {
		return nil, err
	}
	if sink := core.SimLayersFrom(ctx); sink != nil {
		for _, lr := range res {
			sink(lr, layers)
		}
	}
	c.logger.Info("cluster simulate merged",
		"trace_id", obs.TraceFrom(ctx), "layers", layers, "shards", len(spans),
		"workers", len(live), "duration_ms", time.Since(start).Milliseconds())
	return res, nil
}

// dispatchAllSim runs every simulate shard concurrently (each with its
// own retry loop) and returns the per-shard layer results plus how many
// columns it reported to the context's progress sink. The first failure
// cancels the remaining dispatches.
func (c *Coordinator) dispatchAllSim(ctx context.Context, jobFP string, job service.SimulateJob, spans []core.ColumnSpan) ([][]core.SimLayerResult, int, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	prog := core.ProgressFrom(ctx)
	results := make([][]core.SimLayerResult, len(spans))
	var done atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, span := range spans {
		wg.Add(1)
		go func(i int, span core.ColumnSpan) {
			defer wg.Done()
			layers, err := c.dispatchShardSim(ctx, jobFP, job, i, len(spans), span)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				mu.Unlock()
				return
			}
			results[i] = layers
			done.Add(int64(span.Len()))
			if prog != nil {
				prog.ColumnsDone(span.Len())
			}
		}(i, span)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, int(done.Load()), firstErr
	}
	return results, int(done.Load()), nil
}

// dispatchShardSim resolves one simulate shard: from the shard result
// cache when an identical (job, span) has completed before (or is
// completing right now - identical in-flight shards coalesce), else by
// remote dispatch. The cache is sound here for the same reason it is
// for DSE: the engines are bit-for-bit deterministic, so a cached
// span's layers are the layers any re-dispatch would produce.
func (c *Coordinator) dispatchShardSim(ctx context.Context, jobFP string, job service.SimulateJob, shard, total int, span core.ColumnSpan) ([]core.SimLayerResult, error) {
	if c.shardCache == nil || jobFP == "" {
		return c.dispatchShardSimRemote(ctx, job, shard, total, span)
	}
	key := fmt.Sprintf("%s:%d:%d", jobFP, span.Start, span.End)
	type outcome struct {
		layers []core.SimLayerResult
		shared bool
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, shared, err := c.shardCache.Do(key, func() (any, error) {
			return c.dispatchShardSimRemote(ctx, job, shard, total, span)
		})
		if err != nil {
			ch <- outcome{shared: shared, err: err}
			return
		}
		ch <- outcome{layers: v.([]core.SimLayerResult), shared: shared}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			if o.shared && ctx.Err() == nil {
				// A coalesced peer's flight failed on its own context,
				// not ours; dispatch for ourselves (see dispatchShard).
				return c.dispatchShardSimRemote(ctx, job, shard, total, span)
			}
			return nil, o.err
		}
		return o.layers, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("cluster: sim shard %d/%d canceled: %w", shard, total, ctx.Err())
	}
}

// dispatchShardSimRemote sends one simulate shard to a live worker,
// retrying on another worker when a dispatch fails or times out (the
// failed worker is marked dead until its next heartbeat). Running out
// of live workers or attempts surfaces as service.ErrNoWorkers so the
// whole job fails over to the owning service's local engine.
func (c *Coordinator) dispatchShardSimRemote(ctx context.Context, job service.SimulateJob, shard, total int, span core.ColumnSpan) ([]core.SimLayerResult, error) {
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cluster: sim shard %d/%d canceled: %w", shard, total, err)
		}
		w, ok := c.pickWorker()
		if !ok {
			if lastErr != nil {
				return nil, fmt.Errorf("cluster: sim shard %d/%d: every live worker failed (last: %v): %w", shard, total, lastErr, service.ErrNoWorkers)
			}
			return nil, fmt.Errorf("cluster: sim shard %d/%d: %w", shard, total, service.ErrNoWorkers)
		}
		start := time.Now()
		sctx, dspan := obs.StartSpan(ctx, "shard.dispatch",
			obs.Str("worker", w.ID), obs.Int("shard", shard), obs.Int("of", total),
			obs.Int("span_start", span.Start), obs.Int("span_end", span.End),
			obs.Int("attempt", attempt+1), obs.Str("kind", "simulate"))
		layers, workerSpans, err := c.callShardSim(sctx, w, ShardRequest{Sim: &job, Span: span, Shard: shard, Total: total})
		if err == nil {
			dspan.End()
			obs.ForwardSpans(ctx, workerSpans)
			dur := time.Since(start)
			c.dispatchSeconds.Observe(dur.Seconds())
			if rec := core.PhasesFrom(ctx); rec != nil {
				rec.RecordPhase(core.PhaseShardDispatch, dur)
			}
			c.completed.Add(1)
			return layers, nil
		}
		dspan.Fail(err)
		dspan.End()
		if ctx.Err() != nil {
			return nil, fmt.Errorf("cluster: sim shard %d/%d canceled: %w", shard, total, ctx.Err())
		}
		lastErr = fmt.Errorf("worker %s: %w", w.ID, err)
		c.members.MarkDead(w.ID)
		c.retries.Add(1)
		c.logger.Warn("sim shard dispatch retrying",
			"trace_id", obs.TraceFrom(ctx), "shard", shard, "of", total,
			"worker", w.ID, "attempt", attempt+1, "err", err)
	}
	return nil, fmt.Errorf("cluster: sim shard %d/%d failed after %d attempts (last: %v): %w", shard, total, c.maxAttempts, lastErr, service.ErrNoWorkers)
}

// callShardSim performs one simulate-shard HTTP round trip, bounded by
// the shard timeout. It returns the worker's layer results plus the
// worker-recorded spans riding the shard response.
func (c *Coordinator) callShardSim(ctx context.Context, w WorkerInfo, req ShardRequest) ([]core.SimLayerResult, []obs.Span, error) {
	sr, err := c.postShard(ctx, w, req)
	if err != nil {
		return nil, nil, err
	}
	return sr.SimLayers, sr.Spans, nil
}

// MergeSim assembles shard layer results into the job's layer order by
// placement: each result carries its global index, so shards merge in
// any order. Out-of-range, duplicate, or missing indices are rejected -
// they indicate a worker evaluating a different job than the
// coordinator cut.
func MergeSim(layers int, shardResults [][]core.SimLayerResult) ([]core.SimLayerResult, error) {
	out := make([]core.SimLayerResult, layers)
	seen := make([]bool, layers)
	for _, shard := range shardResults {
		for _, lr := range shard {
			if lr.Index < 0 || lr.Index >= layers {
				return nil, fmt.Errorf("cluster: sim merge: layer index %d outside [0, %d)", lr.Index, layers)
			}
			if seen[lr.Index] {
				return nil, fmt.Errorf("cluster: sim merge: layer %d delivered twice", lr.Index)
			}
			seen[lr.Index] = true
			out[lr.Index] = lr
		}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("cluster: sim merge: layer %d missing from every shard", i)
		}
	}
	return out, nil
}
