package cluster

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/service"
)

// TestWeightedSlotsProportionalAndInterleaved: the dispatch sequence
// carries each worker in proportion to its capacity, interleaved
// rather than in runs.
func TestWeightedSlotsProportionalAndInterleaved(t *testing.T) {
	live := []WorkerInfo{
		{ID: "a", Capacity: 1},
		{ID: "b", Capacity: 3},
	}
	slots := weightedSlots(live)
	if len(slots) != 4 {
		t.Fatalf("got %d slots, want 4", len(slots))
	}
	counts := map[string]int{}
	for _, w := range slots {
		counts[w.ID]++
	}
	if counts["a"] != 1 || counts["b"] != 3 {
		t.Errorf("slot counts %v, want a:1 b:3", counts)
	}
	// b's three slots sit at positions 1/6, 3/6, 5/6 and a's single one
	// at 1/2 - so the sequence interleaves instead of draining b first.
	ids := []string{slots[0].ID, slots[1].ID, slots[2].ID, slots[3].ID}
	if want := []string{"b", "a", "b", "b"}; !reflect.DeepEqual(ids, want) {
		t.Errorf("slot order %v, want %v", ids, want)
	}

	// Degenerate capacities count as 1; oversized ones are capped.
	slots = weightedSlots([]WorkerInfo{
		{ID: "zero", Capacity: 0},
		{ID: "huge", Capacity: 10 * maxDispatchWeight},
	})
	counts = map[string]int{}
	for _, w := range slots {
		counts[w.ID]++
	}
	if counts["zero"] != 1 || counts["huge"] != maxDispatchWeight {
		t.Errorf("degenerate slot counts %v, want zero:1 huge:%d", counts, maxDispatchWeight)
	}
}

// TestWeightedDispatchFollowsCapacity: over one rotation of the slot
// table, pickWorker hands each worker its capacity's share.
func TestWeightedDispatchFollowsCapacity(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{})
	c.Membership().Heartbeat(WorkerInfo{ID: "small", URL: "http://s", Capacity: 2})
	c.Membership().Heartbeat(WorkerInfo{ID: "big", URL: "http://b", Capacity: 6})
	counts := map[string]int{}
	for i := 0; i < 16; i++ { // two full rotations of the 8-slot table
		w, ok := c.pickWorker()
		if !ok {
			t.Fatal("no worker picked")
		}
		counts[w.ID]++
	}
	if counts["small"] != 4 || counts["big"] != 12 {
		t.Errorf("dispatch counts %v, want small:4 big:12 (1:3)", counts)
	}
}

// TestWeightedDispatchStaysBitForBit: a lopsided-capacity cluster still
// merges to the serial result - weighting moves work, never results.
func TestWeightedDispatchStaysBitForBit(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	small := newTestWorker(t, "small", nil)
	big := newTestWorker(t, "big", nil)
	coord.Membership().Heartbeat(WorkerInfo{ID: "small", URL: small.server.URL, Capacity: 1})
	coord.Membership().Heartbeat(WorkerInfo{ID: "big", URL: big.server.URL, Capacity: 7})

	net := cnn.LeNet5()
	got, err := coord.RunDSE(context.Background(), jobFor(t, "salp2", net))
	if err != nil {
		t.Fatalf("RunDSE: %v", err)
	}
	want := serialDSE(t, "salp2", net)
	if !reflect.DeepEqual(got, want) {
		t.Error("weighted distributed result diverged from serial RunDSE")
	}
	if small.reqs.Load()+big.reqs.Load() == 0 {
		t.Error("no shards dispatched")
	}
	if big.reqs.Load() <= small.reqs.Load() {
		t.Errorf("big (cap 7) served %d shards, small (cap 1) %d; want big > small",
			big.reqs.Load(), small.reqs.Load())
	}
}

// progressRecorder is a core.Progress sink recording what a cluster
// run reports.
type progressRecorder struct {
	mu      sync.Mutex
	total   int
	done    int
	layers  []int
	results []core.LayerResult
}

func (p *progressRecorder) StartColumns(total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total += total
}

func (p *progressRecorder) ColumnsDone(delta int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done += delta
}

func (p *progressRecorder) LayerDone(index, layers int, lr core.LayerResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.layers = append(p.layers, index)
	p.results = append(p.results, lr)
}

// TestFailedDispatchWithdrawsProgress: a distributed attempt that dies
// mid-run takes back the columns it announced and completed, so the
// local-pool fallback's re-announcement does not double-count the
// job's progress.
func TestFailedDispatchWithdrawsProgress(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{MaxAttempts: 1})
	// The worker survives exactly one shard request, then dies.
	w := newTestWorker(t, "w1", func(reqNum int64) bool { return reqNum > 1 })
	w.register(coord)

	net := cnn.LeNet5()
	rec := &progressRecorder{}
	_, err := coord.RunDSE(core.WithProgress(context.Background(), rec), jobFor(t, "ddr3", net))
	if !errors.Is(err, service.ErrNoWorkers) {
		t.Fatalf("RunDSE err %v, want ErrNoWorkers", err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.total != 0 || rec.done != 0 {
		t.Errorf("failed dispatch left progress total=%d done=%d, want 0/0 (withdrawn)", rec.total, rec.done)
	}
	if len(rec.layers) != 0 {
		t.Errorf("failed dispatch reported %d layer events", len(rec.layers))
	}
}

// TestClusterReportsProgress: a distributed run with a progress sink on
// the context reports the full column space (announced up front, then
// completed shard by shard) and every layer's committed pick.
func TestClusterReportsProgress(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	w1 := newTestWorker(t, "w1", nil)
	w1.register(coord)

	net := cnn.LeNet5()
	job := jobFor(t, "ddr3", net)
	rec := &progressRecorder{}
	res, err := coord.RunDSE(core.WithProgress(context.Background(), rec), job)
	if err != nil {
		t.Fatalf("RunDSE: %v", err)
	}

	grids, err := job.Grid()
	if err != nil {
		t.Fatal(err)
	}
	columns := job.Columns(grids)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.total != columns {
		t.Errorf("announced %d columns, want %d", rec.total, columns)
	}
	if rec.done != columns {
		t.Errorf("completed %d columns, want %d", rec.done, columns)
	}
	if len(rec.layers) != len(net.Layers) {
		t.Fatalf("got %d layer events, want %d", len(rec.layers), len(net.Layers))
	}
	for i, li := range rec.layers {
		if li != i {
			t.Errorf("layer event %d carries index %d", i, li)
		}
		if !reflect.DeepEqual(rec.results[i], res.Layers[i]) {
			t.Errorf("layer %d progress result diverges from the merged result", i)
		}
	}
}
