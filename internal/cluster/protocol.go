// Package cluster shards the DRMap design-space exploration across
// processes: a coordinator partitions the (layer, schedule) column
// space of a resolved DSE job into deterministic shards, dispatches
// them over HTTP/JSON to registered workers (a capacity-weighted
// round-robin, so bigger pools receive proportionally more shards),
// retries on worker failure, and merges the returned cells through
// core.ReduceCells - so the distributed result is bit-for-bit
// identical to single-host service.ParallelDSE and serial core.RunDSE,
// for any worker count, any shard interleaving, and any duplicate
// delivery. A core.Progress sink on the context observes shard
// completions and merged layers, feeding the v2 job API's streams.
//
// # Topology
//
// One coordinator, N workers. Workers register with the coordinator by
// POSTing /cluster/v1/register periodically; a registration doubles as
// a heartbeat, and a worker whose heartbeat goes stale past the TTL
// drops out of dispatch. A coordinator restart starts with an empty
// membership: jobs fall back to the local pool (service.ErrNoWorkers)
// until the workers' next heartbeat re-registers them - no state to
// recover, no stale assignment to reconcile.
//
// # Shard protocol
//
//	POST {worker}/cluster/v1/shard     ShardRequest  -> ShardResponse
//	POST {coordinator}/cluster/v1/register  RegisterRequest -> RegisterResponse
//	GET  {coordinator}/cluster/v1/workers   -> WorkersResponse
//
// A shard carries the full resolved job (backend config included), so
// workers need no shared registry state; they characterize the backend
// themselves through their content-addressed cache. Cells are
// self-locating (layer/schedule/policy/tiling indices), which makes the
// merge order-independent and idempotent under redelivery.
package cluster

import (
	"drmap/internal/core"
	"drmap/internal/obs"
	"drmap/internal/service"
)

// Endpoint paths of the shard protocol.
const (
	PathRegister = "/cluster/v1/register"
	PathShard    = "/cluster/v1/shard"
	PathWorkers  = "/cluster/v1/workers"
)

// RegisterRequest announces (and re-announces: it is the heartbeat) a
// worker to the coordinator.
type RegisterRequest struct {
	// ID is the worker's stable self-chosen identity.
	ID string `json:"id"`
	// URL is the base URL the coordinator dials for shards.
	URL string `json:"url"`
	// Capacity is the worker's local pool size. Dispatch is a
	// capacity-weighted round-robin: a worker advertising twice the
	// capacity receives twice the shards (see Coordinator.pickWorker).
	Capacity int `json:"capacity"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	OK bool `json:"ok"`
	// TTLMillis tells the worker how often it must heartbeat to stay
	// in dispatch (heartbeat well under this, e.g. at TTL/3).
	TTLMillis int64 `json:"ttl_millis"`
}

// ShardRequest asks a worker to evaluate one span of a job's column
// space: a DSE job's (layer, schedule) columns, or - when Sim is set -
// a simulate job's layer indices.
type ShardRequest struct {
	// Job is the fully resolved DSE job; it JSON-round-trips exactly
	// (int enums and float64s re-decode to identical bits). Ignored
	// when Sim is set.
	Job service.DSEJob `json:"job"`
	// Sim, when set, makes this a simulate shard: the worker runs the
	// cycle-accurate engine over Span's layer indices instead of
	// pricing DSE columns. Like Job, it JSON-round-trips exactly, so
	// every worker reproduces each layer's command stream bit-for-bit.
	Sim *service.SimulateJob `json:"sim,omitempty"`
	// Span is the half-open column range to evaluate.
	Span core.ColumnSpan `json:"span"`
	// Shard and Total locate the shard in the job's partition, for logs.
	Shard int `json:"shard"`
	Total int `json:"total"`
}

// ShardResponse returns a shard's cells. Cells are self-locating and
// finite-valued (workers drop infeasible cells, which the reduction
// skips anyway), so responses merge in any order.
type ShardResponse struct {
	WorkerID string            `json:"worker_id"`
	Cells    []core.CellResult `json:"cells"`
	// SimLayers answers a simulate shard (ShardRequest.Sim set): one
	// result per layer in the span, each carrying its global layer
	// index, so the coordinator merges shards by placement.
	SimLayers []core.SimLayerResult `json:"sim_layers,omitempty"`
	// Spans are the worker's own spans for this shard (shard.evaluate
	// plus its count/price children), parented under the coordinator's
	// dispatch span via X-Drmap-Span-Id; the coordinator forwards them
	// into its trace store so GET /api/v1/traces/{id} shows one
	// cross-process tree. Bounded by obs.DefaultSpanBufferCap.
	Spans []obs.Span `json:"spans,omitempty"`
}

// WorkerStatus is one membership entry on GET /cluster/v1/workers.
type WorkerStatus struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Capacity int    `json:"capacity"`
	// Live reports whether the worker is currently eligible for
	// dispatch (heartbeat fresh, not marked dead).
	Live bool `json:"live"`
	// AgeMillis is the time since the last heartbeat.
	AgeMillis int64 `json:"age_millis"`
}

// WorkersResponse lists the coordinator's membership, sorted by ID.
type WorkersResponse struct {
	Workers []WorkerStatus `json:"workers"`
}
