package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"drmap/internal/obs"
	"drmap/internal/service"
)

// clusterPair wires one coordinator process and one worker process the
// way drmap-serve -role coordinator and drmap-worker do, over httptest.
type clusterPair struct {
	coordSrv  *httptest.Server
	workerSrv *httptest.Server
	svc       *service.Service
	wsvc      *service.Service
	workerID  string
}

func newClusterPair(t *testing.T) *clusterPair {
	t.Helper()
	reg := obs.NewRegistry()
	coord := NewCoordinator(CoordinatorOptions{Registry: reg})
	svc := service.New(service.Options{
		Workers: 2, CacheEntries: 32, Runner: coord,
		Registry: reg, ExtraMetrics: coord.Metrics,
	})
	obs.RegisterBuildInfo(reg)
	obs.RegisterRuntimeMetrics(reg)
	jm := service.NewJobManager(svc, service.JobManagerOptions{})
	mux := service.NewHandlerWithJobs(svc, jm, time.Minute)
	coord.Mount(mux)
	coordSrv := httptest.NewServer(service.Observe(mux, reg, nil, svc.Spans()))
	t.Cleanup(coordSrv.Close)

	wsvc := service.New(service.Options{Workers: 2, CacheEntries: 32})
	obs.RegisterBuildInfo(wsvc.Registry())
	obs.RegisterRuntimeMetrics(wsvc.Registry())
	w := NewWorker(wsvc, WorkerOptions{ID: "w1"})
	wsvc.SetExtraMetrics(w.Metrics)
	wmux := service.NewHandler(wsvc, time.Minute)
	w.Mount(wmux)
	workerSrv := httptest.NewServer(service.Observe(wmux, wsvc.Registry(), nil, wsvc.Spans()))
	t.Cleanup(workerSrv.Close)
	coord.Membership().Heartbeat(WorkerInfo{ID: w.ID(), URL: workerSrv.URL, Capacity: 2})

	return &clusterPair{coordSrv: coordSrv, workerSrv: workerSrv, svc: svc, wsvc: wsvc, workerID: w.ID()}
}

// runTracedJob submits one v2 job with the given trace ID and follows
// its event stream to the terminal state.
func runTracedJob(t *testing.T, baseURL, trace, body string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, baseURL+"/api/v2/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit job: %v", err)
	}
	var submitted service.JobView
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d err %v", resp.StatusCode, err)
	}
	sresp, err := http.Get(baseURL + "/api/v2/jobs/" + submitted.ID + "/events?from=0")
	if err != nil {
		t.Fatalf("open event stream: %v", err)
	}
	defer sresp.Body.Close()
	dec := json.NewDecoder(sresp.Body)
	for {
		var ev service.JobEvent
		if err := dec.Decode(&ev); err != nil {
			break // EOF after the terminal event
		}
		if ev.Type == service.EventState && ev.State == service.JobFailed {
			t.Fatalf("job failed: %+v", ev)
		}
	}
}

// TestTraceTreeAcrossCluster is the tentpole acceptance contract: a
// distributed batch submitted through the coordinator yields ONE
// assembled trace tree containing the HTTP root, the job manager's
// queue/run spans, per-shard dispatch spans, and the worker's own
// shard/count/price spans - shipped back inside the shard responses -
// with consistent parentage and sane timing. Runs under -race in the
// CI cluster job.
func TestTraceTreeAcrossCluster(t *testing.T) {
	p := newClusterPair(t)
	const trace = "cafef00d00000077"
	runTracedJob(t, p.coordSrv.URL, trace, `{"kind":"batch","batch":{"jobs":[
		{"arch":"ddr3","network":"lenet5"},{"arch":"salp1","network":"lenet5"}]}}`)

	// Fetch the assembled tree over the public API, like the CLI does.
	tresp, err := http.Get(p.coordSrv.URL + "/api/v1/traces/" + trace)
	if err != nil {
		t.Fatalf("GET trace tree: %v", err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace tree: status %d", tresp.StatusCode)
	}
	var tree obs.TraceTree
	if err := json.NewDecoder(tresp.Body).Decode(&tree); err != nil {
		t.Fatalf("decode tree: %v", err)
	}

	// One connected tree: the middleware's request span is the only root.
	if len(tree.Roots) != 1 || tree.Roots[0].Name != "request" {
		names := make([]string, len(tree.Roots))
		for i, r := range tree.Roots {
			names[i] = r.Name
		}
		t.Fatalf("tree roots = %v, want exactly [request]", names)
	}

	var spans []obs.Span
	byID := map[string]obs.Span{}
	var walk func(n *obs.TraceNode)
	walk = func(n *obs.TraceNode) {
		spans = append(spans, n.Span)
		byID[n.SpanID] = n.Span
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Roots[0])

	counts := map[string]int{}
	workerRecorded := map[string]int{} // names recorded by the worker process
	for _, s := range spans {
		counts[s.Name]++
		if strings.HasPrefix(s.Process, "worker/") {
			workerRecorded[s.Name]++
		}
	}
	for name, min := range map[string]int{
		"job.queue": 1, "job.run": 1, "dse": 2, "shard.dispatch": 1, "shard.merge": 1,
	} {
		if counts[name] < min {
			t.Errorf("tree has %d %q spans, want >= %d (all: %v)", counts[name], name, min, counts)
		}
	}
	// The shard/count/price spans crossed the process boundary inside
	// the shard responses: they carry the worker's process name.
	for _, name := range []string{"shard.evaluate", "count", "price"} {
		if workerRecorded[name] == 0 {
			t.Errorf("no worker-recorded %q span in the assembled tree (worker spans: %v)",
				name, workerRecorded)
		}
	}

	// Parentage is consistent: every span's parent is in the tree, and
	// worker shard spans hang under coordinator dispatch spans.
	for _, s := range spans {
		if s.Name == "request" {
			continue
		}
		parent, ok := byID[s.ParentID]
		if !ok {
			t.Errorf("span %s (%s) has parent %s outside the tree", s.SpanID, s.Name, s.ParentID)
			continue
		}
		if s.Name == "shard.evaluate" && parent.Name != "shard.dispatch" {
			t.Errorf("shard.evaluate parents to %q, want shard.dispatch", parent.Name)
		}
		// Timing containment, with slack for clock reads on either side
		// of an HTTP hop. Children of the request span are exempt: a v2
		// job legitimately outlives the submit request.
		if parent.Name == "request" {
			continue
		}
		const slack = 10 * time.Millisecond
		if s.Start.Before(parent.Start.Add(-slack)) || s.End.After(parent.End.Add(slack)) {
			t.Errorf("span %s [%v..%v] escapes parent %s [%v..%v]",
				s.Name, s.Start, s.End, parent.Name, parent.Start, parent.End)
		}
	}

	// The worker's own trace store retained its side of the story too.
	if _, ok := p.wsvc.Spans().Summary(trace); !ok {
		t.Error("worker-local span store did not retain the trace")
	}

	// Chrome trace-event export parses and spans both processes.
	chResp, err := http.Get(p.coordSrv.URL + "/api/v1/traces/" + trace + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer chResp.Body.Close()
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(chResp.Body).Decode(&doc); err != nil {
		t.Fatalf("chrome export is not valid trace-event JSON: %v", err)
	}
	complete, processNames := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
		case "M":
			processNames++
		}
	}
	if complete != len(spans) {
		t.Errorf("chrome export has %d complete events for %d spans", complete, len(spans))
	}
	if processNames < 2 {
		t.Errorf("chrome export names %d processes, want >= 2 (coordinator + worker)", processNames)
	}
}

// TestMetricsHelpCatalog is the /metrics registry contract: every
// family either process exposes must carry real, non-placeholder # HELP
// text and a legal metric name. A metric added to a snapshot without a
// metricHelp (or Describe) entry fails here instead of shipping with
// "drmap metric foo." boilerplate.
func TestMetricsHelpCatalog(t *testing.T) {
	p := newClusterPair(t)
	// Drive one distributed evaluation so the trace, job, phase and
	// cluster families all have samples on the page.
	runTracedJob(t, p.coordSrv.URL, "feedface00000001",
		`{"kind":"dse","dse":{"arch":"ddr3","network":"lenet5"}}`)

	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	for _, proc := range []struct {
		role string
		url  string
	}{
		{"coordinator", p.coordSrv.URL},
		{"worker", p.workerSrv.URL},
	} {
		resp, err := http.Get(proc.url + "/metrics")
		if err != nil {
			t.Fatalf("GET %s /metrics: %v", proc.role, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		expo, err := obs.ParseExposition(string(raw))
		if err != nil {
			t.Fatalf("%s /metrics unparseable: %v", proc.role, err)
		}
		if len(expo.Families) < 10 {
			t.Fatalf("%s /metrics lists only %d families; traffic did not register", proc.role, len(expo.Families))
		}
		for name, fam := range expo.Families {
			if !nameRe.MatchString(name) {
				t.Errorf("%s: illegal metric family name %q", proc.role, name)
			}
			if strings.TrimSpace(fam.Help) == "" {
				t.Errorf("%s: family %s has empty # HELP", proc.role, name)
			}
			if strings.HasPrefix(fam.Help, "drmap metric ") {
				t.Errorf("%s: family %s ships placeholder help %q - add it to metricHelp or Describe it",
					proc.role, name, fam.Help)
			}
		}
		// The simulate instrumentation is pre-touched at registry
		// creation, so both processes must catalog it.
		for _, want := range []string{"drmap_sim_commands_total", "drmap_sim_engine_seconds"} {
			if _, ok := expo.Families[want]; !ok {
				t.Errorf("%s: family %s missing from /metrics", proc.role, want)
			}
		}
	}
}
