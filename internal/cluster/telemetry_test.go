package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"drmap/internal/obs"
	"drmap/internal/service"
)

// syncBuf is a concurrency-safe log sink: slog handlers write from the
// HTTP handler goroutines, assertions read from the test goroutine.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestTracePropagatesCoordinatorToWorker is the telemetry acceptance
// contract: one async DSE job submitted with a caller-chosen trace ID
// runs through coordinator shard dispatch to a worker process, and that
// single ID is then visible in (1) the job status view, (2) the event
// stream's terminal timings event, (3) the worker's structured shard
// log, and (4) both processes' Prometheus metrics. Runs under -race in
// the CI cluster job.
func TestTracePropagatesCoordinatorToWorker(t *testing.T) {
	const trace = "deadbeefcafe0042"

	// Coordinator process: service + job manager + cluster runner on one
	// registry, behind the real Observe middleware (which adopts the
	// inbound trace header).
	reg := obs.NewRegistry()
	var coordLog syncBuf
	coordLogger, err := obs.NewLogger(&coordLog, "info", "json")
	if err != nil {
		t.Fatalf("coordinator logger: %v", err)
	}
	coord := NewCoordinator(CoordinatorOptions{Registry: reg, Logger: coordLogger})
	svc := service.New(service.Options{
		Workers: 2, CacheEntries: 32, Runner: coord,
		Registry: reg, ExtraMetrics: coord.Metrics,
	})
	jm := service.NewJobManager(svc, service.JobManagerOptions{})
	mux := service.NewHandlerWithJobs(svc, jm, time.Minute)
	coord.Mount(mux)
	coordSrv := httptest.NewServer(service.Observe(mux, reg, coordLogger, svc.Spans()))
	t.Cleanup(coordSrv.Close)

	// Worker process: its own service (own registry), trace-carrying
	// shard log captured for inspection.
	var workerLog syncBuf
	workerLogger, err := obs.NewLogger(&workerLog, "info", "json")
	if err != nil {
		t.Fatalf("worker logger: %v", err)
	}
	wsvc := service.New(service.Options{Workers: 2, CacheEntries: 32})
	w := NewWorker(wsvc, WorkerOptions{ID: "w1", Logger: workerLogger})
	wmux := http.NewServeMux()
	w.Mount(wmux)
	workerSrv := httptest.NewServer(wmux)
	t.Cleanup(workerSrv.Close)
	coord.Membership().Heartbeat(WorkerInfo{ID: w.ID(), URL: workerSrv.URL, Capacity: 2})

	// Submit one async DSE job carrying the trace header.
	req, err := http.NewRequest(http.MethodPost, coordSrv.URL+"/api/v2/jobs",
		strings.NewReader(`{"kind":"dse","dse":{"arch":"ddr3","network":"lenet5"}}`))
	if err != nil {
		t.Fatalf("build submit request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit job: %v", err)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Errorf("submit response trace header = %q, want %q", got, trace)
	}
	var submitted service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if submitted.TraceID != trace {
		t.Fatalf("submitted job trace_id = %q, want %q", submitted.TraceID, trace)
	}

	// (2) Follow the event stream to completion; the terminal timings
	// event must carry the trace ID and the shard phase split.
	var timingsEvent *service.JobEvent
	sresp, err := http.Get(coordSrv.URL + "/api/v2/jobs/" + submitted.ID + "/events?from=0")
	if err != nil {
		t.Fatalf("open event stream: %v", err)
	}
	defer sresp.Body.Close()
	dec := json.NewDecoder(sresp.Body)
	for {
		var ev service.JobEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatalf("decode event: %v", err)
		}
		if ev.Type == service.EventTimings {
			e := ev
			timingsEvent = &e
		}
	}
	if timingsEvent == nil {
		t.Fatal("event stream delivered no timings event")
	}
	if timingsEvent.TraceID != trace {
		t.Errorf("timings event trace_id = %q, want %q", timingsEvent.TraceID, trace)
	}
	if timingsEvent.Timings == nil || timingsEvent.Timings.RunSeconds <= 0 {
		t.Errorf("timings event carries no run duration: %+v", timingsEvent.Timings)
	}

	// (1) The terminal job view: same trace ID, per-job timing breakdown
	// with the cluster's dispatch and merge phases attributed.
	jresp, err := http.Get(coordSrv.URL + "/api/v2/jobs/" + submitted.ID)
	if err != nil {
		t.Fatalf("get job: %v", err)
	}
	defer jresp.Body.Close()
	var view service.JobView
	if err := json.NewDecoder(jresp.Body).Decode(&view); err != nil {
		t.Fatalf("decode job view: %v", err)
	}
	if view.State != service.JobSucceeded {
		t.Fatalf("job state %s, want succeeded", view.State)
	}
	if view.TraceID != trace {
		t.Errorf("job view trace_id = %q, want %q", view.TraceID, trace)
	}
	if view.Timings == nil {
		t.Fatal("terminal job view carries no timings")
	}
	if view.Timings.ShardDispatchSeconds <= 0 {
		t.Errorf("shard dispatch seconds = %g, want > 0 (job ran on the cluster)", view.Timings.ShardDispatchSeconds)
	}
	if view.Timings.ShardMergeSeconds <= 0 {
		t.Errorf("shard merge seconds = %g, want > 0", view.Timings.ShardMergeSeconds)
	}

	// (3) The worker logged every shard with the job's trace ID.
	wlog := workerLog.String()
	if !strings.Contains(wlog, `"msg":"shard served"`) {
		t.Fatalf("worker log has no shard lines:\n%s", wlog)
	}
	if !strings.Contains(wlog, `"trace_id":"`+trace+`"`) {
		t.Errorf("worker log lost the trace ID %q:\n%s", trace, wlog)
	}

	// (4a) Coordinator metrics: strictly parseable exposition carrying
	// the per-trace request counter, the job run histogram, and the
	// cluster dispatch/merge timings.
	mresp, err := http.Get(coordSrv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET coordinator /metrics: %v", err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	cexp, err := obs.ParseExposition(string(raw))
	if err != nil {
		t.Fatalf("coordinator metrics unparseable: %v\n%s", err, raw)
	}
	if v, ok := cexp.Value("drmap_trace_requests_total", map[string]string{"trace_id": trace}); !ok || v <= 0 {
		t.Errorf("coordinator drmap_trace_requests_total{trace_id=%q} = %v, %v; want > 0", trace, v, ok)
	}
	if v, ok := cexp.Value("drmap_job_run_seconds_count", map[string]string{"kind": "dse"}); !ok || v <= 0 {
		t.Errorf("coordinator drmap_job_run_seconds_count{kind=dse} = %v, %v; want > 0", v, ok)
	}
	for _, name := range []string{"drmap_cluster_shard_dispatch_seconds_count", "drmap_cluster_merge_seconds_count"} {
		if v, ok := cexp.Value(name, nil); !ok || v <= 0 {
			t.Errorf("coordinator %s = %v, %v; want > 0", name, v, ok)
		}
	}

	// (4b) Worker metrics: the shard timing histogram and the same trace
	// ID in the per-trace shard counter.
	wexp, err := obs.ParseExposition(wsvc.Registry().Expose())
	if err != nil {
		t.Fatalf("worker metrics unparseable: %v", err)
	}
	if v, ok := wexp.Value("drmap_worker_shard_seconds_count", nil); !ok || v <= 0 {
		t.Errorf("worker drmap_worker_shard_seconds_count = %v, %v; want > 0", v, ok)
	}
	if v, ok := wexp.Value("drmap_trace_shards_total", map[string]string{"trace_id": trace}); !ok || v <= 0 {
		t.Errorf("worker drmap_trace_shards_total{trace_id=%q} = %v, %v; want > 0", trace, v, ok)
	}
	// The worker's evaluation also split count and price phases.
	for _, phase := range []string{"count", "price"} {
		if v, ok := wexp.Value("drmap_eval_phase_seconds_count", map[string]string{"phase": phase}); !ok || v <= 0 {
			t.Errorf("worker drmap_eval_phase_seconds_count{phase=%q} = %v, %v; want > 0", phase, v, ok)
		}
	}

	// The coordinator's access log ties the same trace to the submit.
	if clog := coordLog.String(); !strings.Contains(clog, trace) {
		t.Errorf("coordinator log lost the trace ID %q:\n%s", trace, clog)
	}
}

// TestMidBatchScrape is the CI cluster job's scrape contract: while a
// multi-item batch is still running through coordinator and worker,
// GET /metrics on both processes must serve strictly parseable
// Prometheus exposition carrying the tentpole telemetry families -
// request durations, job lifecycle, phase timers, shard timings. A
// half-rendered page or a family lost in the registry migration fails
// here, not in a dashboard.
func TestMidBatchScrape(t *testing.T) {
	reg := obs.NewRegistry()
	coord := NewCoordinator(CoordinatorOptions{Registry: reg})
	svc := service.New(service.Options{
		Workers: 2, CacheEntries: 32, Runner: coord,
		Registry: reg, ExtraMetrics: coord.Metrics,
	})
	jm := service.NewJobManager(svc, service.JobManagerOptions{})
	mux := service.NewHandlerWithJobs(svc, jm, time.Minute)
	coord.Mount(mux)
	coordSrv := httptest.NewServer(service.Observe(mux, reg, nil, svc.Spans()))
	t.Cleanup(coordSrv.Close)

	// The worker serves the full API surface (like drmap-worker does),
	// so its /metrics is scraped over HTTP exactly as in production.
	wsvc := service.New(service.Options{Workers: 2, CacheEntries: 32})
	w := NewWorker(wsvc, WorkerOptions{ID: "w1"})
	wsvc.SetExtraMetrics(w.Metrics) // as drmap-worker wires it
	wmux := service.NewHandler(wsvc, time.Minute)
	w.Mount(wmux)
	workerSrv := httptest.NewServer(service.Observe(wmux, wsvc.Registry(), nil, wsvc.Spans()))
	t.Cleanup(workerSrv.Close)
	coord.Membership().Heartbeat(WorkerInfo{ID: w.ID(), URL: workerSrv.URL, Capacity: 2})

	// An 8-item batch: enough work that the first finished item leaves
	// the batch still mid-run.
	body := `{"kind":"batch","batch":{"jobs":[
		{"arch":"ddr3","network":"lenet5"},{"arch":"salp1","network":"lenet5"},
		{"arch":"salp2","network":"lenet5"},{"arch":"masa","network":"lenet5"},
		{"arch":"ddr4","network":"lenet5"},{"arch":"lpddr3","network":"lenet5"},
		{"arch":"lpddr4","network":"lenet5"},{"arch":"hbm2","network":"lenet5"}]}}`
	resp, err := http.Post(coordSrv.URL+"/api/v2/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit batch: %v", err)
	}
	var submitted service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	// Follow the stream until the first batch item commits - the batch
	// is then provably mid-run with cluster work behind it.
	sresp, err := http.Get(coordSrv.URL + "/api/v2/jobs/" + submitted.ID + "/events?from=0")
	if err != nil {
		t.Fatalf("open event stream: %v", err)
	}
	defer sresp.Body.Close()
	dec := json.NewDecoder(sresp.Body)
	for {
		var ev service.JobEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("stream ended before any batch item committed: %v", err)
		}
		if ev.Type == service.EventItem {
			break
		}
	}

	scrape := func(url string) *obs.Exposition {
		t.Helper()
		mresp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatalf("GET %s/metrics: %v", url, err)
		}
		defer mresp.Body.Close()
		if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("%s/metrics content type %q", url, ct)
		}
		raw, _ := io.ReadAll(mresp.Body)
		exp, err := obs.ParseExposition(string(raw))
		if err != nil {
			t.Fatalf("%s/metrics unparseable mid-batch: %v\n%s", url, err, raw)
		}
		return exp
	}

	cexp := scrape(coordSrv.URL)
	for _, fam := range []string{
		"drmap_http_request_duration_seconds",
		"drmap_job_run_seconds",
		"drmap_jobs_state",
		"drmap_cluster_shard_dispatch_seconds",
		"drmap_cluster_merge_seconds",
		"drmap_cluster_workers",
		"drmap_evaluations_total",
	} {
		if !cexp.Has(fam) {
			t.Errorf("coordinator /metrics missing family %q mid-batch", fam)
		}
	}
	// At least one shard round-tripped before the first item committed.
	if v, ok := cexp.Value("drmap_cluster_shard_dispatch_seconds_count", nil); !ok || v <= 0 {
		t.Errorf("coordinator shard dispatch count = %v, %v; want > 0 mid-batch", v, ok)
	}

	wexp := scrape(workerSrv.URL)
	for _, fam := range []string{
		"drmap_http_request_duration_seconds",
		"drmap_worker_shard_seconds",
		"drmap_trace_shards_total",
		"drmap_eval_phase_seconds",
		"drmap_worker_shards_served_total",
	} {
		if !wexp.Has(fam) {
			t.Errorf("worker /metrics missing family %q mid-batch", fam)
		}
	}
	// The worker's evaluations split into count and price phases.
	if v, ok := wexp.Value("drmap_eval_phase_seconds_count", map[string]string{"phase": "count"}); !ok || v <= 0 {
		t.Errorf("worker count-phase observations = %v, %v; want > 0 mid-batch", v, ok)
	}

	// Drain the stream so the job finishes before teardown.
	for {
		var ev service.JobEvent
		if err := dec.Decode(&ev); err != nil {
			break
		}
	}
}
