package cluster

import (
	"sort"
	"sync"
	"time"
)

// WorkerInfo identifies one registered worker.
type WorkerInfo struct {
	ID       string
	URL      string
	Capacity int
}

// member is one membership entry: the worker's info, its heartbeat
// freshness, and whether dispatch has condemned it.
type member struct {
	info     WorkerInfo
	lastSeen time.Time
	// dead marks a worker a dispatch observed failing; a fresh
	// heartbeat revives it (the process may have restarted behind the
	// same ID and URL).
	dead bool
}

// Membership tracks the coordinator's worker set under a heartbeat TTL.
// It is safe for concurrent use. The clock is injectable so stale-
// heartbeat behavior is testable without sleeping.
type Membership struct {
	mu      sync.Mutex
	ttl     time.Duration
	now     func() time.Time
	members map[string]*member
}

// DefaultHeartbeatTTL is how long a registration stays live without a
// fresh heartbeat.
const DefaultHeartbeatTTL = 15 * time.Second

// NewMembership builds an empty membership. ttl <= 0 selects
// DefaultHeartbeatTTL; a nil clock selects time.Now.
func NewMembership(ttl time.Duration, now func() time.Time) *Membership {
	if ttl <= 0 {
		ttl = DefaultHeartbeatTTL
	}
	if now == nil {
		now = time.Now
	}
	return &Membership{ttl: ttl, now: now, members: make(map[string]*member)}
}

// TTL returns the heartbeat TTL.
func (m *Membership) TTL() time.Duration { return m.ttl }

// Heartbeat upserts a worker and refreshes its liveness. A worker
// previously marked dead is revived: a heartbeat is positive evidence
// the process behind the URL is back.
func (m *Membership) Heartbeat(info WorkerInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.members[info.ID] = &member{info: info, lastSeen: m.now()}
}

// MarkDead condemns a worker after a failed dispatch so retries skip it
// until its next heartbeat.
func (m *Membership) MarkDead(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mem, ok := m.members[id]; ok {
		mem.dead = true
	}
}

// live reports whether a member is dispatchable at time t.
func (mem *member) live(t time.Time, ttl time.Duration) bool {
	return !mem.dead && t.Sub(mem.lastSeen) <= ttl
}

// Live returns the dispatchable workers sorted by ID, so round-robin
// assignment is deterministic for a fixed membership.
func (m *Membership) Live() []WorkerInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.now()
	out := make([]WorkerInfo, 0, len(m.members))
	for _, mem := range m.members {
		if mem.live(t, m.ttl) {
			out = append(out, mem.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Snapshot returns every membership entry (live or not) sorted by ID,
// for GET /cluster/v1/workers.
func (m *Membership) Snapshot() []WorkerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.now()
	out := make([]WorkerStatus, 0, len(m.members))
	for _, mem := range m.members {
		out = append(out, WorkerStatus{
			ID:        mem.info.ID,
			URL:       mem.info.URL,
			Capacity:  mem.info.Capacity,
			Live:      mem.live(t, m.ttl),
			AgeMillis: t.Sub(mem.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
