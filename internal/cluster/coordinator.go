package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"drmap/internal/core"
	"drmap/internal/obs"
	"drmap/internal/service"
)

// Coordinator defaults.
const (
	// DefaultShardsPerWorker over-partitions the column space so a slow
	// or dying worker strands at most 1/ShardsPerWorker of its share.
	DefaultShardsPerWorker = 4
	// DefaultMaxAttempts bounds how many workers one shard may burn
	// through before the job fails over to the local pool.
	DefaultMaxAttempts = 3
	// DefaultShardTimeout bounds one shard dispatch. Without it a
	// worker that freezes mid-shard (deadlocked, SIGSTOPped - TCP still
	// ACKs, so nothing else errors) would wedge the dispatch, and with
	// it the single-flight cache entry of the whole request, forever.
	// Shards evaluate in milliseconds to seconds; two minutes is
	// generous headroom, not a tuning knob.
	DefaultShardTimeout = 2 * time.Minute
	// DefaultShardCacheEntries bounds the coordinator-side shard result
	// cache (one entry per (job, span)); a typical job cuts 4 shards
	// per live worker.
	DefaultShardCacheEntries = 512
)

// CoordinatorOptions tune a Coordinator.
type CoordinatorOptions struct {
	// HeartbeatTTL expires workers that stop heartbeating; <= 0 means
	// DefaultHeartbeatTTL.
	HeartbeatTTL time.Duration
	// ShardsPerWorker over-partitions the column space; <= 0 means
	// DefaultShardsPerWorker.
	ShardsPerWorker int
	// MaxAttempts bounds per-shard redispatch; <= 0 means
	// DefaultMaxAttempts.
	MaxAttempts int
	// ShardTimeout bounds one shard dispatch round trip, so a frozen
	// worker is retried elsewhere instead of hanging the job; <= 0
	// means DefaultShardTimeout.
	ShardTimeout time.Duration
	// ShardCacheEntries bounds the coordinator-side shard result cache,
	// keyed by (resolved-job content hash, span): retried and duplicate
	// shards - a coordinator re-running an identical job, repeated batch
	// items that missed the owning service's result cache - skip
	// dispatch entirely. 0 selects DefaultShardCacheEntries, negative
	// disables the cache.
	ShardCacheEntries int
	// Client performs shard dispatch; nil means a plain client (each
	// call is already bounded by ShardTimeout).
	Client *http.Client
	// Now is the membership clock; nil means time.Now. Injectable so
	// stale-heartbeat handling is testable without sleeping.
	Now func() time.Time
	// Registry receives the coordinator's shard dispatch and merge
	// histograms; nil builds a private one. Pass the owning Service's
	// Registry() so the timings show on its GET /metrics page.
	Registry *obs.Registry
	// Logger receives shard retry and job completion lines, trace ID
	// attached; nil discards them.
	Logger *slog.Logger
}

// Coordinator partitions DSE jobs into shards, dispatches them to
// registered workers, and merges the results. It implements
// service.DSERunner, so installing it as a Service's Runner makes
// POST /api/v1/dse and /api/v1/batch cluster-distributed transparently.
// It is safe for concurrent use.
type Coordinator struct {
	members         *Membership
	client          *http.Client
	shardsPerWorker int
	maxAttempts     int
	shardTimeout    time.Duration

	// shardCache remembers completed shard results by (job content hash,
	// span), so duplicate shards skip dispatch; nil when disabled.
	shardCache *service.Cache

	rr        atomic.Uint64 // round-robin dispatch cursor
	inflight  atomic.Int64  // shards currently dispatched
	completed atomic.Int64  // shards merged successfully
	retries   atomic.Int64  // shard dispatches that failed and were retried

	logger          *slog.Logger
	dispatchSeconds *obs.Histogram // one observation per successful shard round trip
	mergeSeconds    *obs.Histogram // one observation per merged job

	// slotMu guards the memoized weighted dispatch table (see
	// pickWorker): rebuilt only when the live membership's IDs or
	// capacities change, not on every pick.
	slotMu  sync.Mutex
	slotKey string
	slotTab []WorkerInfo
}

// NewCoordinator builds a Coordinator with an empty membership.
func NewCoordinator(opt CoordinatorOptions) *Coordinator {
	spw := opt.ShardsPerWorker
	if spw <= 0 {
		spw = DefaultShardsPerWorker
	}
	attempts := opt.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultMaxAttempts
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{}
	}
	shardTimeout := opt.ShardTimeout
	if shardTimeout <= 0 {
		shardTimeout = DefaultShardTimeout
	}
	cacheEntries := opt.ShardCacheEntries
	if cacheEntries == 0 {
		cacheEntries = DefaultShardCacheEntries
	}
	var shardCache *service.Cache
	if cacheEntries > 0 {
		shardCache = service.NewCache(cacheEntries)
	}
	reg := opt.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := opt.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	return &Coordinator{
		members:         NewMembership(opt.HeartbeatTTL, opt.Now),
		client:          client,
		shardsPerWorker: spw,
		maxAttempts:     attempts,
		shardTimeout:    shardTimeout,
		shardCache:      shardCache,
		logger:          logger,
		dispatchSeconds: reg.Histogram("drmap_cluster_shard_dispatch_seconds",
			"Time to dispatch one shard to a worker and receive its cells.", nil).With(),
		mergeSeconds: reg.Histogram("drmap_cluster_merge_seconds",
			"Time to merge all shard cells into one DSE result.", nil).With(),
	}
}

// Membership exposes the worker registry (registration handlers and
// tests drive it directly).
func (c *Coordinator) Membership() *Membership { return c.members }

// Mount registers the coordinator's endpoints on a mux:
//
//	POST /cluster/v1/register - worker registration/heartbeat
//	GET  /cluster/v1/workers  - membership listing
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathRegister, c.handleRegister)
	mux.HandleFunc("GET "+PathWorkers, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, WorkersResponse{Workers: c.members.Snapshot()})
	})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad register body: " + err.Error()})
		return
	}
	if req.ID == "" || req.URL == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "register needs id and url"})
		return
	}
	c.members.Heartbeat(WorkerInfo{ID: req.ID, URL: req.URL, Capacity: req.Capacity})
	writeJSON(w, http.StatusOK, RegisterResponse{OK: true, TTLMillis: c.members.TTL().Milliseconds()})
}

// ShardCacheStats snapshots the shard result cache counters; all-zero
// when the cache is disabled. A hit is a shard answered without any
// worker dispatch.
func (c *Coordinator) ShardCacheStats() service.CacheStats {
	if c.shardCache == nil {
		return service.CacheStats{}
	}
	return c.shardCache.Stats()
}

// Metrics returns the cluster gauges for GET /metrics.
func (c *Coordinator) Metrics() []service.Metric {
	ss := c.ShardCacheStats()
	return []service.Metric{
		{Name: "drmap_cluster_workers", Value: int64(len(c.members.Live()))},
		{Name: "drmap_cluster_inflight_shards", Value: c.inflight.Load()},
		{Name: "drmap_cluster_shards_completed_total", Value: c.completed.Load()},
		{Name: "drmap_cluster_shard_retries_total", Value: c.retries.Load()},
		{Name: "drmap_cluster_shard_cache_hits_total", Value: ss.Hits},
		{Name: "drmap_cluster_shard_cache_misses_total", Value: ss.Misses},
		{Name: "drmap_cluster_shard_cache_coalesced_total", Value: ss.Coalesced},
		{Name: "drmap_cluster_shard_cache_evictions_total", Value: ss.Evictions},
		{Name: "drmap_cluster_shard_cache_entries", Value: int64(ss.Entries)},
	}
}

// RunDSE distributes one resolved DSE job across the live workers and
// merges the shards into a DSEResult bit-for-bit identical to serial
// core.RunDSE. With no live workers it returns an error wrapping
// service.ErrNoWorkers, which the owning Service answers from its local
// pool - a cluster degrades to standalone rather than failing.
//
// A progress sink on ctx (core.WithProgress) receives the column total
// up front, one ColumnsDone per merged shard, and every layer's pick
// after the merge - so an async v2 job distributed over the cluster
// streams shard completions as progress events.
func (c *Coordinator) RunDSE(ctx context.Context, job service.DSEJob) (*core.DSEResult, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	live := c.members.Live()
	if len(live) == 0 {
		return nil, fmt.Errorf("cluster: %w", service.ErrNoWorkers)
	}
	grids, err := job.Grid() // Validate checks only cheap fields; the (one) enumeration happens here
	if err != nil {
		return nil, err
	}
	prog := core.ProgressFrom(ctx)
	columns := job.Columns(grids)
	if prog != nil {
		prog.StartColumns(columns)
	}
	spans := core.ColumnShards(columns, len(live)*c.shardsPerWorker)
	// One content hash per job run: the shard cache keys every span
	// under it, so re-running an identical resolved job (a retried v2
	// job, a batch item that missed the result cache) hits instead of
	// re-dispatching. An unfingerprintable job just skips the cache.
	jobFP := ""
	if c.shardCache != nil {
		if fp, err := service.Fingerprint(job); err == nil {
			jobFP = fp
		}
	}
	start := time.Now()
	cells, done, err := c.dispatchAll(ctx, jobFP, job, spans)
	if err != nil {
		// Withdraw this attempt's announced and completed columns: when
		// the owning service falls back to its local pool (ErrNoWorkers),
		// that run announces the same columns again, and an accumulating
		// sink would otherwise double-count the job's total.
		if prog != nil {
			prog.ColumnsDone(-done)
			prog.StartColumns(-columns)
		}
		c.logger.Warn("cluster dispatch failed",
			"trace_id", obs.TraceFrom(ctx), "shards", len(spans), "err", err)
		return nil, err
	}
	mergeStart := time.Now()
	res, err := Merge(job, grids, cells)
	mergeDur := time.Since(mergeStart)
	c.mergeSeconds.Observe(mergeDur.Seconds())
	if rec := core.PhasesFrom(ctx); rec != nil {
		rec.RecordPhase(core.PhaseShardMerge, mergeDur)
	}
	obs.RecordSpan(ctx, "shard.merge", mergeStart, mergeStart.Add(mergeDur),
		obs.Int("shards", len(spans)), obs.Int("cells", len(cells)))
	if err != nil {
		return nil, err
	}
	if prog != nil {
		for li, lr := range res.Layers {
			prog.LayerDone(li, len(res.Layers), lr)
		}
	}
	c.logger.Info("cluster job merged",
		"trace_id", obs.TraceFrom(ctx), "columns", columns, "shards", len(spans),
		"workers", len(live), "duration_ms", time.Since(start).Milliseconds())
	return res, nil
}

// dispatchAll runs every shard concurrently (each with its own retry
// loop) and returns the union of their cells plus how many columns it
// reported to the context's progress sink (so a failing caller can
// withdraw them). The first failure cancels the remaining dispatches.
func (c *Coordinator) dispatchAll(ctx context.Context, jobFP string, job service.DSEJob, spans []core.ColumnSpan) ([]core.CellResult, int, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	prog := core.ProgressFrom(ctx)
	results := make([][]core.CellResult, len(spans))
	var done atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, span := range spans {
		wg.Add(1)
		go func(i int, span core.ColumnSpan) {
			defer wg.Done()
			cells, err := c.dispatchShard(ctx, jobFP, job, i, len(spans), span)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				mu.Unlock()
				return
			}
			results[i] = cells
			done.Add(int64(span.Len()))
			if prog != nil {
				prog.ColumnsDone(span.Len())
			}
		}(i, span)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, int(done.Load()), firstErr
	}
	total := 0
	for _, r := range results {
		total += len(r)
	}
	cells := make([]core.CellResult, 0, total)
	for _, r := range results {
		cells = append(cells, r...)
	}
	return cells, int(done.Load()), nil
}

// dispatchShard resolves one shard: from the shard result cache when an
// identical (job, span) has completed before (or is completing right
// now - identical in-flight shards coalesce), else by remote dispatch,
// whose successful cells are retained for the next duplicate.
func (c *Coordinator) dispatchShard(ctx context.Context, jobFP string, job service.DSEJob, shard, total int, span core.ColumnSpan) ([]core.CellResult, error) {
	if c.shardCache == nil || jobFP == "" {
		return c.dispatchShardRemote(ctx, job, shard, total, span)
	}
	key := fmt.Sprintf("%s:%d:%d", jobFP, span.Start, span.End)
	// The wait is bounded by this caller's context (as service.doBounded
	// does): a coalesced caller must not block behind a foreign flight's
	// dispatch - potentially attempts x timeout long - after its own job
	// was canceled.
	type outcome struct {
		cells  []core.CellResult
		shared bool
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, shared, err := c.shardCache.Do(key, func() (any, error) {
			return c.dispatchShardRemote(ctx, job, shard, total, span)
		})
		if err != nil {
			ch <- outcome{shared: shared, err: err}
			return
		}
		ch <- outcome{cells: v.([]core.CellResult), shared: shared}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			if o.shared && ctx.Err() == nil {
				// The error belongs to a coalesced peer's flight (its
				// context died, its job failed elsewhere) - not to this
				// caller, whose context is still live. Dispatch for
				// ourselves rather than failing an innocent job with a
				// foreign cancellation.
				return c.dispatchShardRemote(ctx, job, shard, total, span)
			}
			return nil, o.err
		}
		return o.cells, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("cluster: shard %d/%d canceled: %w", shard, total, ctx.Err())
	}
}

// dispatchShardRemote sends one shard to a live worker, retrying on
// another worker when a dispatch fails or times out (the failed worker
// is marked dead until its next heartbeat). Running out of live workers
// or attempts surfaces as service.ErrNoWorkers so the job as a whole
// fails over to the owning service's local pool.
func (c *Coordinator) dispatchShardRemote(ctx context.Context, job service.DSEJob, shard, total int, span core.ColumnSpan) ([]core.CellResult, error) {
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cluster: shard %d/%d canceled: %w", shard, total, err)
		}
		w, ok := c.pickWorker()
		if !ok {
			if lastErr != nil {
				return nil, fmt.Errorf("cluster: shard %d/%d: every live worker failed (last: %v): %w", shard, total, lastErr, service.ErrNoWorkers)
			}
			return nil, fmt.Errorf("cluster: shard %d/%d: %w", shard, total, service.ErrNoWorkers)
		}
		start := time.Now()
		// One dispatch span per attempt: a failed attempt records as a
		// failed span, and the worker's returned spans splice in under
		// the successful one.
		sctx, dspan := obs.StartSpan(ctx, "shard.dispatch",
			obs.Str("worker", w.ID), obs.Int("shard", shard), obs.Int("of", total),
			obs.Int("span_start", span.Start), obs.Int("span_end", span.End),
			obs.Int("attempt", attempt+1))
		cells, workerSpans, err := c.callShard(sctx, w, ShardRequest{Job: job, Span: span, Shard: shard, Total: total})
		if err == nil {
			dspan.End()
			obs.ForwardSpans(ctx, workerSpans)
			dur := time.Since(start)
			c.dispatchSeconds.Observe(dur.Seconds())
			if rec := core.PhasesFrom(ctx); rec != nil {
				rec.RecordPhase(core.PhaseShardDispatch, dur)
			}
			c.completed.Add(1)
			return cells, nil
		}
		dspan.Fail(err)
		dspan.End()
		if ctx.Err() != nil {
			// The caller gave up; the worker is not at fault.
			return nil, fmt.Errorf("cluster: shard %d/%d canceled: %w", shard, total, ctx.Err())
		}
		lastErr = fmt.Errorf("worker %s: %w", w.ID, err)
		c.members.MarkDead(w.ID)
		c.retries.Add(1)
		c.logger.Warn("shard dispatch retrying",
			"trace_id", obs.TraceFrom(ctx), "shard", shard, "of", total,
			"worker", w.ID, "attempt", attempt+1, "err", err)
	}
	return nil, fmt.Errorf("cluster: shard %d/%d failed after %d attempts (last: %v): %w", shard, total, c.maxAttempts, lastErr, service.ErrNoWorkers)
}

// maxDispatchWeight caps one worker's weight in the dispatch sequence,
// so a misreported capacity cannot starve its peers (or balloon the
// slot table).
const maxDispatchWeight = 256

// pickWorker selects the next dispatch target: a capacity-weighted
// round-robin over the live workers, so a worker advertising an
// 8-slot pool receives four times the shards of a 2-slot one. The
// rotation is a pure function of the membership snapshot and the
// dispatch cursor (workers sorted by ID, slots interleaved by weight),
// so it is deterministic for a fixed membership - and the merge is
// order- and duplication-independent, so weighting never changes the
// result, only where the work ran.
func (c *Coordinator) pickWorker() (WorkerInfo, bool) {
	slots := c.weightedSlotsCached(c.members.Live())
	if len(slots) == 0 {
		return WorkerInfo{}, false
	}
	return slots[int((c.rr.Add(1)-1)%uint64(len(slots)))], true
}

// weightedSlotsCached memoizes the expanded slot table keyed by the
// live set's (ID, capacity) pairs, so per-pick cost is one O(n) key
// build instead of expanding and sorting up to n*maxDispatchWeight
// slots on every shard dispatch.
func (c *Coordinator) weightedSlotsCached(live []WorkerInfo) []WorkerInfo {
	var key strings.Builder
	for _, w := range live {
		key.WriteString(w.ID)
		key.WriteByte(':')
		key.WriteString(strconv.Itoa(w.Capacity))
		key.WriteByte(';')
	}
	k := key.String()
	c.slotMu.Lock()
	defer c.slotMu.Unlock()
	if c.slotKey != k {
		c.slotTab = weightedSlots(live)
		c.slotKey = k
	}
	return c.slotTab
}

// weightedSlots expands live workers into an interleaved dispatch
// sequence with each worker appearing in proportion to its advertised
// capacity (min 1, capped by maxDispatchWeight). Interleaving spreads
// each worker's slots evenly: slot j of a weight-w worker sits at
// fractional position (j+0.5)/w, and the sequence is those positions
// sorted (ties broken by worker ID, which Live already ordered), so
// consecutive dispatches rotate across workers instead of draining one
// worker's quota at a time.
func weightedSlots(live []WorkerInfo) []WorkerInfo {
	if len(live) == 0 {
		return nil
	}
	type slot struct {
		pos float64
		w   WorkerInfo
	}
	var slots []slot
	for _, w := range live {
		weight := w.Capacity
		if weight < 1 {
			weight = 1
		}
		if weight > maxDispatchWeight {
			weight = maxDispatchWeight
		}
		for j := 0; j < weight; j++ {
			slots = append(slots, slot{pos: (float64(j) + 0.5) / float64(weight), w: w})
		}
	}
	sort.SliceStable(slots, func(i, j int) bool { return slots[i].pos < slots[j].pos })
	out := make([]WorkerInfo, len(slots))
	for i, s := range slots {
		out[i] = s.w
	}
	return out
}

// callShard performs one DSE shard HTTP round trip, returning the
// worker's cells plus the worker-recorded spans riding the response.
func (c *Coordinator) callShard(ctx context.Context, w WorkerInfo, req ShardRequest) ([]core.CellResult, []obs.Span, error) {
	sr, err := c.postShard(ctx, w, req)
	if err != nil {
		return nil, nil, err
	}
	return sr.Cells, sr.Spans, nil
}

// postShard performs one shard HTTP round trip - DSE or simulate,
// whichever the request carries - bounded by the shard timeout so a
// frozen worker surfaces as a retryable failure.
func (c *Coordinator) postShard(ctx context.Context, w WorkerInfo, req ShardRequest) (ShardResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, c.shardTimeout)
	defer cancel()
	body, err := json.Marshal(req)
	if err != nil {
		return ShardResponse{}, fmt.Errorf("encode shard: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.URL+PathShard, bytes.NewReader(body))
	if err != nil {
		return ShardResponse{}, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if trace := obs.TraceFrom(ctx); trace != "" {
		// The shard inherits the job's trace ID, so one batch run is one
		// trace across coordinator and worker logs and metrics.
		httpReq.Header.Set(obs.TraceHeader, trace)
	}
	if span := obs.SpanIDFrom(ctx); span != "" {
		// The dispatch span's ID rides along so the worker's spans
		// parent under it in the assembled tree.
		httpReq.Header.Set(obs.SpanHeader, span)
	}
	resp, err := c.client.Do(httpReq)
	if err != nil {
		return ShardResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return ShardResponse{}, fmt.Errorf("shard endpoint returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var sr ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return ShardResponse{}, fmt.Errorf("decode shard response: %w", err)
	}
	return sr, nil
}

// Merge folds shard cells into the job's DSEResult. The reduction is
// core.ReduceCells - the exact code the serial scan and the single-host
// parallel executor reduce through - so the merged result is bit-for-bit
// identical to theirs regardless of shard order, interleaving, or
// duplicate delivery (a duplicated cell can never beat itself under the
// serial tie-break). Cells with out-of-range indices are rejected: they
// indicate a worker evaluating a different job than the coordinator cut.
func Merge(job service.DSEJob, grids []core.LayerGrid, cells []core.CellResult) (*core.DSEResult, error) {
	perLayer := make([][]core.CellResult, len(grids))
	for _, cell := range cells {
		if cell.LayerIndex < 0 || cell.LayerIndex >= len(grids) ||
			cell.ScheduleIndex < 0 || cell.ScheduleIndex >= len(job.Schedules) ||
			cell.PolicyIndex < 0 || cell.PolicyIndex >= len(job.Policies) ||
			cell.TilingIndex < 0 || cell.TilingIndex >= len(grids[cell.LayerIndex].Tilings) {
			return nil, fmt.Errorf("cluster: merge: cell %+v outside the job's grid", cell)
		}
		perLayer[cell.LayerIndex] = append(perLayer[cell.LayerIndex], cell)
	}
	res := &core.DSEResult{Backend: job.Backend, Arch: job.Backend.Config.Arch}
	tm := job.Backend.Config.Timing
	for li, lg := range grids {
		res.Layers = append(res.Layers, core.ReduceCells(lg, job.Schedules, job.Policies, perLayer[li], tm))
	}
	return res, nil
}

// writeJSON writes a JSON response body (the cluster endpoints' shapes
// are small; no indentation).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
