package cluster

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"drmap/internal/cnn"
)

// TestShardCacheSkipsDuplicateDispatch: re-running an identical
// resolved job re-dispatches nothing - every span is answered from the
// coordinator's shard result cache - and the merged result is
// bit-for-bit the first run's (and serial RunDSE's).
func TestShardCacheSkipsDuplicateDispatch(t *testing.T) {
	tw := newTestWorker(t, "w1", nil)
	defer tw.server.Close()
	c := NewCoordinator(CoordinatorOptions{})
	c.Membership().Heartbeat(WorkerInfo{ID: "w1", URL: tw.server.URL})

	net := cnn.LeNet5()
	job := jobFor(t, "salp2", net)
	first, err := c.RunDSE(context.Background(), job)
	if err != nil {
		t.Fatalf("RunDSE: %v", err)
	}
	served := tw.worker.ShardsServed()
	if served == 0 {
		t.Fatal("no shards dispatched on the first run")
	}
	if ss := c.ShardCacheStats(); ss.Misses != served || ss.Entries != int(served) {
		t.Errorf("first run: cache stats %+v, want %d misses/entries", ss, served)
	}

	second, err := c.RunDSE(context.Background(), job)
	if err != nil {
		t.Fatalf("RunDSE (repeat): %v", err)
	}
	if again := tw.worker.ShardsServed(); again != served {
		t.Errorf("duplicate job dispatched shards: %d -> %d", served, again)
	}
	if ss := c.ShardCacheStats(); ss.Hits != served {
		t.Errorf("duplicate job: cache hits = %d, want %d", ss.Hits, served)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached rerun diverged from the first run")
	}
	if serial := serialDSE(t, "salp2", net); !reflect.DeepEqual(first, serial) {
		t.Error("distributed result diverged from serial RunDSE")
	}

	// The shard-cache gauges ride along on the coordinator metrics.
	names := map[string]bool{}
	for _, m := range c.Metrics() {
		names[m.Name] = true
	}
	for _, want := range []string{
		"drmap_cluster_shard_cache_hits_total",
		"drmap_cluster_shard_cache_misses_total",
		"drmap_cluster_shard_cache_coalesced_total",
		"drmap_cluster_shard_cache_evictions_total",
		"drmap_cluster_shard_cache_entries",
	} {
		if !names[want] {
			t.Errorf("coordinator metrics missing %s", want)
		}
	}
}

// TestShardCacheDisabled: a negative bound turns the cache off - every
// run dispatches - without touching result equivalence.
func TestShardCacheDisabled(t *testing.T) {
	tw := newTestWorker(t, "w1", nil)
	defer tw.server.Close()
	c := NewCoordinator(CoordinatorOptions{ShardCacheEntries: -1})
	c.Membership().Heartbeat(WorkerInfo{ID: "w1", URL: tw.server.URL})

	net := cnn.LeNet5()
	job := jobFor(t, "ddr3", net)
	first, err := c.RunDSE(context.Background(), job)
	if err != nil {
		t.Fatalf("RunDSE: %v", err)
	}
	served := tw.worker.ShardsServed()
	second, err := c.RunDSE(context.Background(), job)
	if err != nil {
		t.Fatalf("RunDSE (repeat): %v", err)
	}
	if again := tw.worker.ShardsServed(); again != 2*served {
		t.Errorf("disabled cache should re-dispatch: served %d then %d", served, again)
	}
	if ss := c.ShardCacheStats(); ss.Hits != 0 || ss.Misses != 0 || ss.Entries != 0 {
		t.Errorf("disabled cache reports stats %+v", ss)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("reruns diverged")
	}

	// Disabled or not, the gauges stay present (zero-valued) so
	// dashboards do not lose series.
	var metricsText strings.Builder
	for _, m := range c.Metrics() {
		metricsText.WriteString(m.Name + "\n")
	}
	if !strings.Contains(metricsText.String(), "drmap_cluster_shard_cache_hits_total") {
		t.Error("disabled cache dropped the shard-cache gauges")
	}
}
