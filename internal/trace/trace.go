// Package trace defines the memory-request and DRAM-command types shared
// by the cycle-accurate controller (package memctrl) and the energy model
// (package vampire), plus a Ramulator-style text encoding so traces can
// be exported and inspected.
//
// A Request is one column-access-sized transfer (a full burst); the
// controller turns each request into one or more Commands (ACT, PRE,
// RD, WR, SASEL, REF) whose issue cycles respect the JEDEC timing
// constraints of the configured architecture.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"drmap/internal/dram"
)

// Op is the request direction.
type Op int

const (
	// Read requests move data from DRAM to the accelerator buffers.
	Read Op = iota
	// Write requests move data from the accelerator buffers to DRAM.
	Write
)

// String returns "R" or "W", the encoding used in trace files.
func (o Op) String() string {
	if o == Write {
		return "W"
	}
	return "R"
}

// Request is a single burst-sized memory transaction.
type Request struct {
	Op   Op
	Addr dram.Address
}

// CommandKind enumerates DRAM commands issued by the controller.
type CommandKind int

const (
	// CmdACT activates (opens) a row into its subarray's local row buffer.
	CmdACT CommandKind = iota
	// CmdPRE precharges (closes) the open row of a subarray.
	CmdPRE
	// CmdRD bursts one column out of the open row.
	CmdRD
	// CmdWR bursts one column into the open row.
	CmdWR
	// CmdSASEL switches the MASA designated-bit to another already-open
	// subarray (SALP-MASA only).
	CmdSASEL
	// CmdREF performs one refresh cycle on a rank.
	CmdREF

	// NumCommandKinds is the number of distinct command kinds; it sizes
	// dense per-kind counters such as memctrl's command census.
	NumCommandKinds = iota
)

var commandNames = [...]string{"ACT", "PRE", "RD", "WR", "SASEL", "REF"}

// String returns the JEDEC-style mnemonic.
func (k CommandKind) String() string {
	if int(k) < len(commandNames) {
		return commandNames[k]
	}
	return fmt.Sprintf("Cmd(%d)", int(k))
}

// Command records one DRAM command along with the cycle it was issued.
type Command struct {
	Kind  CommandKind
	Addr  dram.Address
	Cycle int64
}

// String renders "cycle KIND address".
func (c Command) String() string {
	return fmt.Sprintf("%d %s %s", c.Cycle, c.Kind, c.Addr)
}

// AccessKind classifies a serviced request by the row-buffer condition
// it met, matching the five conditions of the paper's Fig. 1 and the
// four access categories of the analytical model (Eq. 2-3).
type AccessKind int

const (
	// AccessRowHit: the requested row was already in the local row
	// buffer ("different column" in Eq. 2-3).
	AccessRowHit AccessKind = iota
	// AccessRowMiss: the bank/subarray had no open row; an ACT was needed.
	AccessRowMiss
	// AccessRowConflict: a different row was open in the same subarray;
	// PRE then ACT were needed ("different rows").
	AccessRowConflict
	// AccessSubarraySwitch: the request moved to a different subarray of
	// the same bank ("different subarrays").
	AccessSubarraySwitch
	// AccessBankSwitch: the request moved to a different bank
	// ("different banks").
	AccessBankSwitch
)

var accessNames = [...]string{"row-hit", "row-miss", "row-conflict", "subarray-switch", "bank-switch"}

// String names the access condition.
func (k AccessKind) String() string {
	if int(k) < len(accessNames) {
		return accessNames[k]
	}
	return fmt.Sprintf("Access(%d)", int(k))
}

// AccessKinds lists the conditions in the order used by Fig. 1.
var AccessKinds = []AccessKind{
	AccessRowHit, AccessRowMiss, AccessRowConflict, AccessSubarraySwitch, AccessBankSwitch,
}

// ServicedRequest pairs a request with the controller's observation of
// how it was serviced.
type ServicedRequest struct {
	Request Request
	Kind    AccessKind
	// IssueCycle is the cycle the column command (RD/WR) was issued.
	IssueCycle int64
	// DoneCycle is the cycle the data burst completed on the bus.
	DoneCycle int64
}

// Latency returns the service time of this request in cycles.
func (s ServicedRequest) Latency() int64 { return s.DoneCycle - s.IssueCycle }

// WriteRequests encodes requests one per line in a Ramulator-style
// format: "<op> <channel> <rank> <bank> <row> <column>".
func WriteRequests(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	for _, r := range reqs {
		a := r.Addr
		if _, err := fmt.Fprintf(bw, "%s %d %d %d %d %d\n",
			r.Op, a.Channel, a.Rank, a.Bank, a.Row, a.Column); err != nil {
			return fmt.Errorf("trace: writing request: %w", err)
		}
	}
	return bw.Flush()
}

// ReadRequests decodes the format produced by WriteRequests. Blank
// lines and lines starting with '#' are ignored.
func ReadRequests(r io.Reader) ([]Request, error) {
	var reqs []Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var opStr string
		var req Request
		n, err := fmt.Sscanf(line, "%s %d %d %d %d %d",
			&opStr, &req.Addr.Channel, &req.Addr.Rank, &req.Addr.Bank,
			&req.Addr.Row, &req.Addr.Column)
		if err != nil || n != 6 {
			return nil, fmt.Errorf("trace: line %d: malformed request %q", lineNo, line)
		}
		switch opStr {
		case "R":
			req.Op = Read
		case "W":
			req.Op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, opStr)
		}
		reqs = append(reqs, req)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scanning: %w", err)
	}
	return reqs, nil
}

// WriteCommands encodes a command log, one command per line.
func WriteCommands(w io.Writer, cmds []Command) error {
	bw := bufio.NewWriter(w)
	for _, c := range cmds {
		a := c.Addr
		if _, err := fmt.Fprintf(bw, "%d %s %d %d %d %d %d\n",
			c.Cycle, c.Kind, a.Channel, a.Rank, a.Bank, a.Row, a.Column); err != nil {
			return fmt.Errorf("trace: writing command: %w", err)
		}
	}
	return bw.Flush()
}

// CommandStats aggregates a command log by kind.
type CommandStats struct {
	Counts     map[CommandKind]int64
	FirstCycle int64
	LastCycle  int64
}

// Stats summarizes a command log. An empty log yields zero counts.
func Stats(cmds []Command) CommandStats {
	st := CommandStats{Counts: make(map[CommandKind]int64)}
	for i, c := range cmds {
		st.Counts[c.Kind]++
		if i == 0 || c.Cycle < st.FirstCycle {
			st.FirstCycle = c.Cycle
		}
		if c.Cycle > st.LastCycle {
			st.LastCycle = c.Cycle
		}
	}
	return st
}
