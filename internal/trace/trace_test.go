package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"drmap/internal/dram"
)

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Errorf("op strings = %q/%q, want R/W", Read, Write)
	}
}

func TestCommandKindString(t *testing.T) {
	cases := map[CommandKind]string{
		CmdACT: "ACT", CmdPRE: "PRE", CmdRD: "RD", CmdWR: "WR",
		CmdSASEL: "SASEL", CmdREF: "REF", CommandKind(17): "Cmd(17)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("CommandKind(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestAccessKindString(t *testing.T) {
	cases := map[AccessKind]string{
		AccessRowHit:         "row-hit",
		AccessRowMiss:        "row-miss",
		AccessRowConflict:    "row-conflict",
		AccessSubarraySwitch: "subarray-switch",
		AccessBankSwitch:     "bank-switch",
		AccessKind(9):        "Access(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("AccessKind(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestAccessKindsOrderMatchesFig1(t *testing.T) {
	want := []AccessKind{AccessRowHit, AccessRowMiss, AccessRowConflict, AccessSubarraySwitch, AccessBankSwitch}
	if !reflect.DeepEqual(AccessKinds, want) {
		t.Errorf("AccessKinds = %v, want %v", AccessKinds, want)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: Read, Addr: dram.Address{Channel: 0, Rank: 0, Bank: 3, Row: 1201, Column: 17}},
		{Op: Write, Addr: dram.Address{Channel: 0, Rank: 0, Bank: 0, Row: 0, Column: 0}},
		{Op: Read, Addr: dram.Address{Channel: 0, Rank: 0, Bank: 7, Row: 32767, Column: 1023}},
	}
	var buf bytes.Buffer
	if err := WriteRequests(&buf, reqs); err != nil {
		t.Fatalf("WriteRequests: %v", err)
	}
	got, err := ReadRequests(&buf)
	if err != nil {
		t.Fatalf("ReadRequests: %v", err)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, reqs)
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(ops []bool, banks []uint8, rows []uint16, cols []uint16) bool {
		n := len(ops)
		for _, s := range []int{len(banks), len(rows), len(cols)} {
			if s < n {
				n = s
			}
		}
		reqs := make([]Request, 0, n)
		for i := 0; i < n; i++ {
			op := Read
			if ops[i] {
				op = Write
			}
			reqs = append(reqs, Request{Op: op, Addr: dram.Address{
				Bank: int(banks[i]) % 8, Row: int(rows[i]) % 32768, Column: int(cols[i]) % 1024,
			}})
		}
		var buf bytes.Buffer
		if err := WriteRequests(&buf, reqs); err != nil {
			return false
		}
		got, err := ReadRequests(&buf)
		if err != nil {
			return false
		}
		if len(reqs) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, reqs)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReadRequestsSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nR 0 0 1 2 3\n   \n# tail\nW 0 0 4 5 6\n"
	got, err := ReadRequests(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadRequests: %v", err)
	}
	want := []Request{
		{Op: Read, Addr: dram.Address{Bank: 1, Row: 2, Column: 3}},
		{Op: Write, Addr: dram.Address{Bank: 4, Row: 5, Column: 6}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestReadRequestsRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"R 0 0 1 2\n",      // too few fields
		"X 0 0 1 2 3\n",    // unknown op
		"R a b c d e\n",    // non-numeric
		"READ 0 0 1 2 3\n", // long op token
	} {
		if _, err := ReadRequests(strings.NewReader(in)); err == nil {
			t.Errorf("ReadRequests accepted malformed input %q", in)
		}
	}
}

func TestWriteCommandsFormat(t *testing.T) {
	cmds := []Command{
		{Kind: CmdACT, Addr: dram.Address{Bank: 2, Row: 99}, Cycle: 10},
		{Kind: CmdRD, Addr: dram.Address{Bank: 2, Row: 99, Column: 4}, Cycle: 21},
	}
	var buf bytes.Buffer
	if err := WriteCommands(&buf, cmds); err != nil {
		t.Fatalf("WriteCommands: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "10 ACT 0 0 2 99 0") {
		t.Errorf("missing ACT line in %q", out)
	}
	if !strings.Contains(out, "21 RD 0 0 2 99 4") {
		t.Errorf("missing RD line in %q", out)
	}
}

func TestCommandString(t *testing.T) {
	c := Command{Kind: CmdPRE, Addr: dram.Address{Bank: 1, Row: 5}, Cycle: 77}
	want := "77 PRE ch0.ra0.ba1.ro5.co0"
	if got := c.String(); got != want {
		t.Errorf("Command.String() = %q, want %q", got, want)
	}
}

func TestStats(t *testing.T) {
	cmds := []Command{
		{Kind: CmdACT, Cycle: 5},
		{Kind: CmdRD, Cycle: 16},
		{Kind: CmdRD, Cycle: 20},
		{Kind: CmdPRE, Cycle: 40},
	}
	st := Stats(cmds)
	if st.Counts[CmdRD] != 2 || st.Counts[CmdACT] != 1 || st.Counts[CmdPRE] != 1 {
		t.Errorf("unexpected counts: %v", st.Counts)
	}
	if st.FirstCycle != 5 || st.LastCycle != 40 {
		t.Errorf("cycle span = [%d,%d], want [5,40]", st.FirstCycle, st.LastCycle)
	}
}

func TestStatsEmpty(t *testing.T) {
	st := Stats(nil)
	if len(st.Counts) != 0 || st.FirstCycle != 0 || st.LastCycle != 0 {
		t.Errorf("empty stats not zero: %+v", st)
	}
}

func TestServicedRequestLatency(t *testing.T) {
	s := ServicedRequest{IssueCycle: 100, DoneCycle: 115}
	if got := s.Latency(); got != 15 {
		t.Errorf("latency = %d, want 15", got)
	}
}
