// Package profile characterizes DRAM architectures the way the DRMap
// paper's Fig. 1 does: for each access condition (row hit, row miss,
// row conflict, subarray-level parallelism, bank-level parallelism) it
// drives a microbench access pattern through the cycle-accurate
// controller (package memctrl) and the energy model (package vampire)
// and reports the cycles-per-access and energy-per-access.
//
// Two metrics are produced per condition:
//
//   - Stream: the steady-state cost when the condition repeats
//     back-to-back, which is what a streaming CNN tile experiences and
//     what the analytical EDP model (Eq. 2-3) consumes.
//   - Isolated: the service latency of a single dependent access under
//     that condition, matching the bar heights of the paper's Fig. 1.
package profile

import (
	"fmt"

	"drmap/internal/dram"
	"drmap/internal/memctrl"
	"drmap/internal/trace"
	"drmap/internal/vampire"
)

// Cost is the per-access price of one access condition.
type Cost struct {
	Cycles float64 // cycles per access
	Energy float64 // joules per access
}

// EDP returns the cycles x energy product of one access; summed access
// by access it is the building block of the paper's EDP objective.
func (c Cost) EDP() float64 { return c.Cycles * c.Energy }

// Profile holds the characterization of one DRAM system.
type Profile struct {
	// Backend identifies the registered DRAM system the profile was
	// measured on; the zero value marks an ad-hoc configuration (e.g.
	// a sweep point mutated off a preset).
	Backend dram.Backend
	// Arch is the controller capability of the characterized config
	// (Config.Arch), kept as its own field because the analytical
	// model's consumers branch on capability, not identity.
	Arch   dram.Arch
	Config dram.Config
	// Stream is the steady-state cost per access for each condition,
	// measured with read streams (the paper's model prices all accesses
	// with these).
	Stream map[trace.AccessKind]Cost
	// StreamWrite is the same measurement with write streams; write
	// bursts pay more I/O energy and write recovery stretches
	// precharges. Used by the direction-aware pricing refinement.
	StreamWrite map[trace.AccessKind]Cost
	// Isolated is the dependent-access service latency in cycles for
	// each condition.
	Isolated map[trace.AccessKind]float64
}

// patternLength is the number of accesses in each microbench stream;
// long enough that cold-start effects are amortized below 1%.
const patternLength = 2048

// isolatedGap spaces requests so far apart that every access is served
// in isolation.
const isolatedGap = 512

// Characterize measures one architecture. The returned profile is
// self-contained; the controller and energy model are discarded.
func Characterize(cfg dram.Config) (*Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	model, err := vampire.New(cfg)
	if err != nil {
		return nil, err
	}
	p := &Profile{
		Arch:        cfg.Arch,
		Config:      cfg,
		Stream:      make(map[trace.AccessKind]Cost),
		StreamWrite: make(map[trace.AccessKind]Cost),
		Isolated:    make(map[trace.AccessKind]float64),
	}
	for _, kind := range trace.AccessKinds {
		reqs := patternFor(kind, cfg.Geometry)
		opt := memctrl.Options{}
		if kind == trace.AccessRowMiss {
			// A sustained row-miss stream only exists under an
			// auto-precharge (closed-row) policy.
			opt.PagePolicy = memctrl.ClosedRow
		}
		cost, err := streamCost(cfg, model, opt, reqs)
		if err != nil {
			return nil, err
		}
		p.Stream[kind] = cost

		writes := make([]trace.Request, len(reqs))
		for i, r := range reqs {
			r.Op = trace.Write
			writes[i] = r
		}
		wcost, err := streamCost(cfg, model, opt, writes)
		if err != nil {
			return nil, err
		}
		p.StreamWrite[kind] = wcost

		opt.ArrivalGap = isolatedGap
		iso, err := run(cfg, opt, reqs[:64])
		if err != nil {
			return nil, err
		}
		p.Isolated[kind] = meanLatency(iso.Serviced, kind)
	}
	return p, nil
}

// streamCost runs one pattern and reduces it to per-access cost.
func streamCost(cfg dram.Config, model *vampire.Model, opt memctrl.Options, reqs []trace.Request) (Cost, error) {
	stream, err := run(cfg, opt, reqs)
	if err != nil {
		return Cost{}, err
	}
	act := vampire.ActivityFromCounts(stream.KindCounts, stream.DeviceActiveCycles, stream.TotalCycles)
	act.ExtraOpenSubarrayCycles = stream.ExtraOpenSubarrayCycles
	n := float64(stream.ServicedCount)
	return Cost{
		Cycles: stream.AverageCyclesPerAccess(),
		Energy: model.Energy(act).Total() / n,
	}, nil
}

// CharacterizeBackend measures one registered DRAM system; the
// returned profile carries the backend identity for labeling.
func CharacterizeBackend(b dram.Backend) (*Profile, error) {
	p, err := Characterize(b.Config)
	if err != nil {
		return nil, fmt.Errorf("profile: backend %q: %w", b.ID, err)
	}
	p.Backend = b
	return p, nil
}

// CharacterizeAll measures every registered backend in ID order (the
// deterministic dram.Backends listing). Figure-reproduction paths that
// need exactly the paper's set use CharacterizePaper instead.
func CharacterizeAll() ([]*Profile, error) {
	return characterizeBackends(dram.Backends())
}

// CharacterizePaper measures the four paper architectures in figure
// order - the set the paper's Fig. 1/Fig. 9 and headline tables are
// defined over.
func CharacterizePaper() ([]*Profile, error) {
	return characterizeBackends(dram.PaperBackends())
}

func characterizeBackends(backends []dram.Backend) ([]*Profile, error) {
	profiles := make([]*Profile, 0, len(backends))
	for _, b := range backends {
		p, err := CharacterizeBackend(b)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, p)
	}
	return profiles, nil
}

func run(cfg dram.Config, opt memctrl.Options, reqs []trace.Request) (*memctrl.Result, error) {
	c, err := memctrl.New(cfg, opt)
	if err != nil {
		return nil, err
	}
	return c.Run(reqs)
}

// meanLatency averages the service latency of requests matching the
// condition; the warm-up prefix whose classification differs (e.g. the
// cold miss before a hit stream) is excluded automatically.
func meanLatency(served []trace.ServicedRequest, kind trace.AccessKind) float64 {
	var sum, n float64
	for _, s := range served {
		if s.Kind == kind {
			sum += float64(s.Latency())
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// patternFor builds the microbench request stream that makes every
// access (after warm-up) meet the given condition.
func patternFor(kind trace.AccessKind, g dram.Geometry) []trace.Request {
	reqs := make([]trace.Request, patternLength)
	rps := g.RowsPerSubarray()
	for i := range reqs {
		var a dram.Address
		switch kind {
		case trace.AccessRowHit:
			// Sequential columns of one row.
			a = dram.Address{Bank: 0, Row: 0, Column: i % g.Columns}
		case trace.AccessRowMiss:
			// Same stream as hits, but the caller runs it closed-row so
			// every access re-opens the row.
			a = dram.Address{Bank: 0, Row: 0, Column: i % g.Columns}
		case trace.AccessRowConflict:
			// A fresh row inside one subarray of one bank every access.
			a = dram.Address{Bank: 0, Row: i % rps, Column: i % g.Columns}
		case trace.AccessSubarraySwitch:
			// Round-robin over all subarrays of one bank, opening a
			// fresh row at each visit - the stream Mapping-2/5 produce.
			sa := i % g.Subarrays
			lap := i / g.Subarrays
			a = dram.Address{Bank: 0, Row: sa*rps + lap%rps, Column: i % g.Columns}
		case trace.AccessBankSwitch:
			// Round-robin over all banks, opening a fresh row at each
			// visit - the stream Mapping-4/6 produce.
			ba := i % g.Banks
			lap := i / g.Banks
			a = dram.Address{Bank: ba, Row: lap % g.Rows, Column: i % g.Columns}
		}
		reqs[i] = trace.Request{Op: trace.Read, Addr: a}
	}
	return reqs
}

// StreamCost returns the steady-state cost of a condition, so callers
// need not touch the map directly.
func (p *Profile) StreamCost(kind trace.AccessKind) Cost { return p.Stream[kind] }

// Label names the profiled system for reports: the backend name when
// the profile came from the registry, else the capability arch.
func (p *Profile) Label() string { return dram.LabelFor(p.Backend, p.Arch) }

// Validate checks the physical plausibility relations the paper's
// Fig. 1 relies on; it is used by tests and by the characterization
// tool to fail loudly if a model change breaks the shape.
func (p *Profile) Validate() error {
	hit := p.Stream[trace.AccessRowHit]
	conflict := p.Stream[trace.AccessRowConflict]
	sub := p.Stream[trace.AccessSubarraySwitch]
	bank := p.Stream[trace.AccessBankSwitch]
	if !(hit.Cycles < conflict.Cycles) {
		return fmt.Errorf("profile %s: hit (%.2f) not cheaper than conflict (%.2f)", p.Label(), hit.Cycles, conflict.Cycles)
	}
	if !(hit.Energy < conflict.Energy) {
		return fmt.Errorf("profile %s: hit energy (%.3g) not below conflict energy (%.3g)", p.Label(), hit.Energy, conflict.Energy)
	}
	if bank.Cycles > conflict.Cycles {
		return fmt.Errorf("profile %s: bank parallelism (%.2f) costlier than conflict (%.2f)", p.Label(), bank.Cycles, conflict.Cycles)
	}
	if !p.Arch.HasSALP() {
		// Commodity DRAM cannot exploit subarrays: switching subarrays
		// must cost the same as a row conflict.
		if diff := sub.Cycles - conflict.Cycles; diff > 1 || diff < -1 {
			return fmt.Errorf("profile %s: commodity subarray switch (%.2f) != conflict (%.2f)", p.Label(), sub.Cycles, conflict.Cycles)
		}
	} else if sub.Cycles >= conflict.Cycles {
		return fmt.Errorf("profile %s: SALP subarray switch (%.2f) not below conflict (%.2f)", p.Label(), sub.Cycles, conflict.Cycles)
	}
	if sub.Cycles+0.5 < bank.Cycles {
		return fmt.Errorf("profile %s: subarray switch (%.2f) implausibly cheaper than bank switch (%.2f)", p.Label(), sub.Cycles, bank.Cycles)
	}
	return nil
}
