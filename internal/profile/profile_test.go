package profile

import (
	"testing"

	"drmap/internal/dram"
	"drmap/internal/trace"
)

// characterizeOnce caches per-arch profiles: characterization is
// deterministic, and several tests inspect the same data.
var profileCache = map[dram.Arch]*Profile{}

func characterized(t *testing.T, arch dram.Arch) *Profile {
	t.Helper()
	if p, ok := profileCache[arch]; ok {
		return p
	}
	p, err := Characterize(dram.ConfigFor(arch))
	if err != nil {
		t.Fatalf("Characterize(%v): %v", arch, err)
	}
	profileCache[arch] = p
	return p
}

func TestCharacterizeRejectsInvalidConfig(t *testing.T) {
	cfg := dram.DDR3Config()
	cfg.Geometry.Rows = 0
	if _, err := Characterize(cfg); err == nil {
		t.Fatal("Characterize accepted invalid config")
	}
}

func TestAllArchProfilesValidate(t *testing.T) {
	for _, arch := range dram.Archs {
		p := characterized(t, arch)
		if err := p.Validate(); err != nil {
			t.Errorf("profile shape violated: %v", err)
		}
	}
}

func TestHitStreamIsCCDLimited(t *testing.T) {
	p := characterized(t, dram.DDR3)
	tccd := float64(dram.DDR3Config().Timing.TCCD)
	if c := p.Stream[trace.AccessRowHit].Cycles; c < tccd || c > tccd+1 {
		t.Errorf("hit stream = %.2f cycles/access, want ~%v", c, tccd)
	}
}

func TestConflictStreamIsTRCLimited(t *testing.T) {
	p := characterized(t, dram.DDR3)
	trc := float64(dram.DDR3Config().Timing.TRC)
	if c := p.Stream[trace.AccessRowConflict].Cycles; c < trc-1 || c > trc+3 {
		t.Errorf("conflict stream = %.2f cycles/access, want ~%v", c, trc)
	}
}

func TestSubarrayStreamImprovesAcrossSALPGenerations(t *testing.T) {
	// The headline of Fig. 1: SALP architectures progressively reduce
	// the cost of subarray-level parallelism.
	ddr3 := characterized(t, dram.DDR3).Stream[trace.AccessSubarraySwitch].Cycles
	s1 := characterized(t, dram.SALP1).Stream[trace.AccessSubarraySwitch].Cycles
	s2 := characterized(t, dram.SALP2).Stream[trace.AccessSubarraySwitch].Cycles
	masa := characterized(t, dram.SALPMASA).Stream[trace.AccessSubarraySwitch].Cycles
	if !(masa < s2 && s2 < s1 && s1 < ddr3) {
		t.Errorf("subarray stream ordering violated: DDR3=%.2f SALP-1=%.2f SALP-2=%.2f MASA=%.2f",
			ddr3, s1, s2, masa)
	}
}

func TestIsolatedLatenciesMatchClosedForm(t *testing.T) {
	p := characterized(t, dram.DDR3)
	tm := dram.DDR3Config().Timing
	cases := []struct {
		kind trace.AccessKind
		want float64
	}{
		{trace.AccessRowHit, float64(tm.CL + tm.TBL)},
		{trace.AccessRowMiss, float64(tm.TRCD + tm.CL + tm.TBL)},
		{trace.AccessRowConflict, float64(tm.TRP + tm.TRCD + tm.CL + tm.TBL)},
	}
	for _, c := range cases {
		got := p.Isolated[c.kind]
		if got < c.want-0.5 || got > c.want+0.5 {
			t.Errorf("isolated %v = %.2f cycles, want %.0f", c.kind, got, c.want)
		}
	}
}

func TestIsolatedOrderingHitMissConflict(t *testing.T) {
	for _, arch := range dram.Archs {
		p := characterized(t, arch)
		hit := p.Isolated[trace.AccessRowHit]
		miss := p.Isolated[trace.AccessRowMiss]
		conflict := p.Isolated[trace.AccessRowConflict]
		if !(hit < miss && miss < conflict) {
			t.Errorf("%v isolated ordering violated: hit=%.1f miss=%.1f conflict=%.1f",
				arch, hit, miss, conflict)
		}
	}
}

func TestEnergyHitBelowParallelBelowOrNearConflict(t *testing.T) {
	for _, arch := range dram.Archs {
		p := characterized(t, arch)
		hit := p.Stream[trace.AccessRowHit].Energy
		bank := p.Stream[trace.AccessBankSwitch].Energy
		conflict := p.Stream[trace.AccessRowConflict].Energy
		if hit >= bank {
			t.Errorf("%v: hit energy %.3g not below bank-switch energy %.3g", arch, hit, bank)
		}
		if bank > conflict*1.1 {
			t.Errorf("%v: bank-switch energy %.3g far above conflict energy %.3g", arch, bank, conflict)
		}
	}
}

func TestEnergyMagnitudesAreNanojoules(t *testing.T) {
	p := characterized(t, dram.DDR3)
	for kind, c := range p.Stream {
		if c.Energy < 0.1e-9 || c.Energy > 50e-9 {
			t.Errorf("%v stream energy %.3g J outside nanojoule range", kind, c.Energy)
		}
	}
}

func TestCostEDP(t *testing.T) {
	c := Cost{Cycles: 10, Energy: 2e-9}
	if got := c.EDP(); got != 20e-9 {
		t.Errorf("EDP = %g, want 2e-8", got)
	}
}

func TestStreamCostAccessor(t *testing.T) {
	p := characterized(t, dram.DDR3)
	if p.StreamCost(trace.AccessRowHit) != p.Stream[trace.AccessRowHit] {
		t.Error("StreamCost accessor disagrees with map")
	}
}

func TestCharacterizeAllCoversRegistryInOrder(t *testing.T) {
	profiles, err := CharacterizeAll()
	if err != nil {
		t.Fatalf("CharacterizeAll: %v", err)
	}
	backends := dram.Backends()
	if len(profiles) != len(backends) {
		t.Fatalf("got %d profiles, want %d (one per registered backend)", len(profiles), len(backends))
	}
	for i, p := range profiles {
		if p.Backend.ID != backends[i].ID {
			t.Errorf("profile %d is %q, want %q", i, p.Backend.ID, backends[i].ID)
		}
		if p.Config != backends[i].Config {
			t.Errorf("profile %d characterized a different config than its backend", i)
		}
		// Every registered backend's profile must satisfy the Fig. 1
		// shape relations - the generality presets included.
		if err := p.Validate(); err != nil {
			t.Errorf("backend %q: %v", p.Backend.ID, err)
		}
	}
}

func TestCharacterizePaperMatchesArchOrder(t *testing.T) {
	profiles, err := CharacterizePaper()
	if err != nil {
		t.Fatalf("CharacterizePaper: %v", err)
	}
	if len(profiles) != len(dram.Archs) {
		t.Fatalf("got %d profiles, want %d", len(profiles), len(dram.Archs))
	}
	for i, p := range profiles {
		if p.Arch != dram.Archs[i] {
			t.Errorf("profile %d is %v, want %v", i, p.Arch, dram.Archs[i])
		}
		if p.Backend.Name != dram.Archs[i].String() {
			t.Errorf("profile %d labeled %q, want %q", i, p.Backend.Name, dram.Archs[i])
		}
	}
}

func TestMASASubarrayCostNearBankCost(t *testing.T) {
	// MASA pipelines subarray activations like bank activations, so the
	// two parallel conditions should cost about the same cycles.
	p := characterized(t, dram.SALPMASA)
	sub := p.Stream[trace.AccessSubarraySwitch].Cycles
	bank := p.Stream[trace.AccessBankSwitch].Cycles
	if sub < bank-1 || sub > bank+3 {
		t.Errorf("MASA subarray (%.2f) should be close to bank (%.2f)", sub, bank)
	}
}

func TestValidateDetectsBrokenProfile(t *testing.T) {
	p := characterized(t, dram.DDR3)
	broken := &Profile{
		Arch:     p.Arch,
		Config:   p.Config,
		Stream:   map[trace.AccessKind]Cost{},
		Isolated: map[trace.AccessKind]float64{},
	}
	for k, v := range p.Stream {
		broken.Stream[k] = v
	}
	broken.Stream[trace.AccessRowHit] = Cost{Cycles: 1e6, Energy: 1}
	if err := broken.Validate(); err == nil {
		t.Error("Validate accepted an absurd hit cost")
	}
}
