package mapping

import (
	"testing"

	"drmap/internal/dram"
)

// smallGeom is a geometry tiny enough that tiles spill across ranks.
func smallGeom(channels, ranks int) dram.Geometry {
	return dram.Geometry{
		Channels: channels, Ranks: ranks, Chips: 1, Banks: 2, Subarrays: 2,
		Rows: 8, Columns: 4, ChipBits: 8, BurstLength: 8,
	}
}

func TestRankSpillFillsRanksInOrder(t *testing.T) {
	g := smallGeom(2, 2)
	cap := rankCapacity(g) // 2*8*4 = 64 bursts per rank
	addrs := RankSpill(DRMap(), 3*cap, g)
	if len(addrs) != int(3*cap) {
		t.Fatalf("got %d addresses", len(addrs))
	}
	for i, a := range addrs {
		unit := int64(i) / cap
		wantRank := int(unit) % g.Ranks
		wantCh := int(unit) / g.Ranks
		if a.Rank != wantRank || a.Channel != wantCh {
			t.Fatalf("address %d in rank %d ch %d, want rank %d ch %d",
				i, a.Rank, a.Channel, wantRank, wantCh)
		}
		if !a.Valid(g) {
			t.Fatalf("address %d invalid: %v", i, a)
		}
	}
}

func TestRankSpillSingleRankMatchesAddresses(t *testing.T) {
	g := dram.DDR3Config().Geometry
	a := RankSpill(DRMap(), 512, g)
	b := DRMap().Addresses(512, g)
	for i := range b {
		if a[i] != b[i] {
			t.Fatalf("index %d: spill %v != plain %v", i, a[i], b[i])
		}
	}
}

func TestChannelInterleavedRoundRobin(t *testing.T) {
	g := smallGeom(2, 1)
	addrs := ChannelInterleaved(DRMap(), 64, g)
	if len(addrs) != 64 {
		t.Fatalf("got %d addresses", len(addrs))
	}
	for i, a := range addrs {
		if a.Channel != i%2 {
			t.Fatalf("address %d on channel %d, want %d", i, a.Channel, i%2)
		}
		if !a.Valid(g) {
			t.Fatalf("address %d invalid: %v", i, a)
		}
	}
}

func TestChannelInterleavedDistinctAddresses(t *testing.T) {
	g := smallGeom(2, 2)
	addrs := ChannelInterleaved(DRMap(), 200, g)
	seen := map[int64]bool{}
	for _, a := range addrs {
		l := a.Linear(g)
		if seen[l] {
			t.Fatalf("duplicate address %v", a)
		}
		seen[l] = true
	}
}

func TestChannelInterleavedSingleUnitFallsBack(t *testing.T) {
	g := dram.DDR3Config().Geometry
	a := ChannelInterleaved(DRMap(), 100, g)
	b := DRMap().Addresses(100, g)
	for i := range b {
		if a[i] != b[i] {
			t.Fatalf("index %d differs", i)
		}
	}
}

func TestInterleavedCountsTotal(t *testing.T) {
	g := smallGeom(2, 2)
	for _, n := range []int64{1, 7, 64, 255} {
		c := InterleavedCounts(DRMap(), n, g)
		if c.Total() != n {
			t.Errorf("InterleavedCounts(%d).Total() = %d", n, c.Total())
		}
	}
	// Single-unit geometry: identical to plain Counts.
	g1 := dram.DDR3Config().Geometry
	if InterleavedCounts(DRMap(), 999, g1) != DRMap().Counts(999, g1) {
		t.Error("single-unit interleaved counts differ from plain counts")
	}
}

func TestInterleavedCountsMatchStreamPerUnit(t *testing.T) {
	// Splitting the interleaved stream back per unit must reproduce the
	// per-unit policy counts summed by InterleavedCounts.
	g := smallGeom(2, 2)
	p := DRMap()
	const n = 250
	addrs := ChannelInterleaved(p, n, g)
	byUnit := map[[2]int][]dram.Address{}
	for _, a := range addrs {
		k := [2]int{a.Channel, a.Rank}
		byUnit[k] = append(byUnit[k], a)
	}
	var sum Counts
	for _, unit := range byUnit {
		sum.Add(StreamCounts(unit, g), 1)
	}
	// StreamCounts within a unit follows the physical classification;
	// compare against the physically classified per-unit closed form.
	var want Counts
	units := int64(g.Channels * g.Ranks)
	for u := int64(0); u < units; u++ {
		cnt := (n - u + units - 1) / units
		if cnt > 0 {
			want.Add(p.PhysicalCounts(cnt, g), 1)
		}
	}
	if sum != want {
		t.Errorf("per-unit stream counts %+v != closed form %+v", sum, want)
	}
}

func TestEffectiveParallelism(t *testing.T) {
	if got := EffectiveParallelism(smallGeom(4, 2)); got != 4 {
		t.Errorf("parallelism = %g, want 4 (channels only)", got)
	}
	if got := EffectiveParallelism(dram.DDR3Config().Geometry); got != 1 {
		t.Errorf("parallelism = %g, want 1", got)
	}
}

func TestValidateCapacity(t *testing.T) {
	g := smallGeom(1, 1)
	if err := ValidateCapacity(64, g); err != nil {
		t.Errorf("capacity 64 rejected: %v", err)
	}
	if err := ValidateCapacity(65, g); err == nil {
		t.Error("over-capacity tile accepted")
	}
}
