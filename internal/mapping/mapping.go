// Package mapping implements DRAM data-mapping policies for CNN tile
// streams: the six loop-order policies of the DRMap paper's Table I
// (of which Mapping-3 is DRMap itself), the commodity default policy,
// and the machinery the analytical EDP model needs - closed-form counts
// of how many accesses of a streamed tile fall into each of the four
// access categories of Eq. 2-3 (different column / bank / subarray /
// row), plus exact address-stream generation for simulation-based
// cross-validation.
package mapping

import (
	"fmt"

	"drmap/internal/dram"
)

// Level is one nesting level of a mapping policy's loop order.
type Level int

const (
	// LevelColumn advances to the next column of the same row: a row
	// buffer hit.
	LevelColumn Level = iota
	// LevelBank advances to the same row/column position in the next
	// bank: bank-level parallelism.
	LevelBank
	// LevelSubarray advances to the next subarray of the same bank:
	// subarray-level parallelism on SALP, a row conflict on DDR3.
	LevelSubarray
	// LevelRow advances to the next row inside the same subarray: a row
	// conflict everywhere.
	LevelRow
)

var levelNames = [...]string{"column", "bank", "subarray", "row"}

// String names the level as in Table I.
func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Policy is a DRAM mapping policy: the order, inner-most first, in which
// a tile's consecutive bursts walk the DRAM coordinates of one rank.
type Policy struct {
	// ID is the paper's mapping number (1-6); 0 marks policies outside
	// Table I (e.g. the commodity default).
	ID    int
	Name  string
	Order [4]Level // inner-most to outer-most
}

// String renders the policy like Table I does.
func (p Policy) String() string {
	return fmt.Sprintf("%s (%v, %v, %v, %v)", p.Name, p.Order[0], p.Order[1], p.Order[2], p.Order[3])
}

// Validate checks that the order is a permutation of all four levels.
func (p Policy) Validate() error {
	var seen [4]bool
	for _, l := range p.Order {
		if l < 0 || int(l) >= len(seen) {
			return fmt.Errorf("mapping: %s: invalid level %d", p.Name, l)
		}
		if seen[l] {
			return fmt.Errorf("mapping: %s: duplicate level %v", p.Name, l)
		}
		seen[l] = true
	}
	return nil
}

// TableI returns the six mapping policies explored by the paper's DSE
// (Table I), in paper order. All six keep the row loop outer-most -
// the paper's "least frequent subsequent accesses to different rows"
// pruning.
func TableI() []Policy {
	return []Policy{
		{ID: 1, Name: "Mapping-1", Order: [4]Level{LevelColumn, LevelSubarray, LevelBank, LevelRow}},
		{ID: 2, Name: "Mapping-2", Order: [4]Level{LevelSubarray, LevelColumn, LevelBank, LevelRow}},
		{ID: 3, Name: "Mapping-3", Order: [4]Level{LevelColumn, LevelBank, LevelSubarray, LevelRow}},
		{ID: 4, Name: "Mapping-4", Order: [4]Level{LevelBank, LevelColumn, LevelSubarray, LevelRow}},
		{ID: 5, Name: "Mapping-5", Order: [4]Level{LevelSubarray, LevelBank, LevelColumn, LevelRow}},
		{ID: 6, Name: "Mapping-6", Order: [4]Level{LevelBank, LevelSubarray, LevelColumn, LevelRow}},
	}
}

// DRMap returns the paper's proposed policy: Mapping-3, which orderly
// prioritizes row buffer hits (columns first), then bank-level
// parallelism, then subarray-level parallelism, and opens new rows last.
func DRMap() Policy { return TableI()[2] }

// Default returns the commodity DRAM controller mapping described in
// Sec. II-B: consecutive data fill the columns of a row, then the banks
// of the rank, then the next row - with no subarray awareness, so rows
// run sequentially through each subarray before crossing into the next.
func Default() Policy {
	return Policy{ID: 0, Name: "Default", Order: [4]Level{LevelColumn, LevelBank, LevelRow, LevelSubarray}}
}

// AllPermutations returns all 24 loop orders, for the pruning ablation.
func AllPermutations() []Policy {
	levels := []Level{LevelColumn, LevelBank, LevelSubarray, LevelRow}
	var out []Policy
	var permute func(cur []Level, rest []Level)
	permute = func(cur, rest []Level) {
		if len(rest) == 0 {
			var order [4]Level
			copy(order[:], cur)
			out = append(out, Policy{
				Name:  fmt.Sprintf("Perm(%v,%v,%v,%v)", order[0], order[1], order[2], order[3]),
				Order: order,
			})
			return
		}
		for i := range rest {
			next := make([]Level, 0, len(rest)-1)
			next = append(next, rest[:i]...)
			next = append(next, rest[i+1:]...)
			permute(append(cur, rest[i]), next)
		}
	}
	permute(nil, levels)
	return out
}

// LeastRowSwitching filters policies to those whose row loop is
// outer-most - the paper's design-space pruning rule. Applied to
// AllPermutations it yields exactly the six policies of Table I.
func LeastRowSwitching(policies []Policy) []Policy {
	var out []Policy
	for _, p := range policies {
		if p.Order[3] == LevelRow {
			out = append(out, p)
		}
	}
	return out
}

// Counts holds the number of accesses in each category of the paper's
// Eq. 2-3 for one streamed tile.
type Counts struct {
	DifColumn    int64 // row buffer hits
	DifBanks     int64 // transitions to a different bank
	DifSubarrays int64 // transitions to a different subarray, same bank
	DifRows      int64 // row openings within a subarray (incl. the first access)
}

// Total returns the number of accesses covered.
func (c Counts) Total() int64 {
	return c.DifColumn + c.DifBanks + c.DifSubarrays + c.DifRows
}

// Add accumulates other into c scaled by times (used to price a tile
// that is streamed repeatedly).
func (c *Counts) Add(other Counts, times int64) {
	c.DifColumn += other.DifColumn * times
	c.DifBanks += other.DifBanks * times
	c.DifSubarrays += other.DifSubarrays * times
	c.DifRows += other.DifRows * times
}

// levelSize returns the loop trip count of a level under the geometry.
func levelSize(l Level, g dram.Geometry) int64 {
	switch l {
	case LevelColumn:
		return int64(g.Columns)
	case LevelBank:
		return int64(g.Banks)
	case LevelSubarray:
		return int64(g.Subarrays)
	default:
		return int64(g.RowsPerSubarray())
	}
}

// transitionsPerLevel returns, for a stream of `bursts` accesses, how
// many transitions advance each nesting level (index 0 = inner-most),
// plus the cumulative loop spans.
func (p Policy) transitionsPerLevel(bursts int64, g dram.Geometry) (perLevel [4]int64) {
	if bursts <= 1 {
		return perLevel
	}
	n := bursts - 1
	var cum [4]int64
	prod := int64(1)
	for i, l := range p.Order {
		prod *= levelSize(l, g)
		cum[i] = prod
	}
	perLevel[0] = n - n/cum[0]
	perLevel[1] = n/cum[0] - n/cum[1]
	perLevel[2] = n/cum[1] - n/cum[2]
	perLevel[3] = n / cum[2] // outer-most absorbs the rest
	return perLevel
}

func (c *Counts) addLevel(l Level, v int64) {
	switch l {
	case LevelColumn:
		c.DifColumn += v
	case LevelBank:
		c.DifBanks += v
	case LevelSubarray:
		c.DifSubarrays += v
	case LevelRow:
		c.DifRows += v
	}
}

// Counts computes, in closed form, how a stream of `bursts` consecutive
// accesses laid out by the policy splits into the four access
// categories, using the paper's convention: a transition is priced by
// the loop level that advanced (a subarray-loop move counts as
// "different subarray" even though the inner bank/column digits reset).
// The first access of the stream opens a row and is counted under
// DifRows. See PhysicalCounts for the stream-accurate alternative.
func (p Policy) Counts(bursts int64, g dram.Geometry) Counts {
	var c Counts
	if bursts <= 0 {
		return c
	}
	per := p.transitionsPerLevel(bursts, g)
	for i, l := range p.Order {
		c.addLevel(l, per[i])
	}
	// The stream's first access opens its row.
	c.DifRows++
	return c
}

// physicalPriority orders categories the way a DRAM controller
// classifies an address change: a bank change dominates, then a
// subarray change, then a row change; a pure column move is a hit.
func physicalPriority(l Level) int {
	switch l {
	case LevelBank:
		return 3
	case LevelSubarray:
		return 2
	case LevelRow:
		return 1
	default:
		return 0
	}
}

// PhysicalCounts computes the same split as Counts but prices each
// transition by the actual address change it causes: when an outer loop
// advances, every inner digit resets, so the transition is classified by
// the highest-priority coordinate that changed (bank > subarray > row).
// This matches StreamCounts and the cycle-accurate controller exactly,
// and quantifies the boundary-transition approximation in the paper's
// analytical pricing (see the model-vs-simulation ablation).
func (p Policy) PhysicalCounts(bursts int64, g dram.Geometry) Counts {
	var c Counts
	if bursts <= 0 {
		return c
	}
	per := p.transitionsPerLevel(bursts, g)
	for i := range p.Order {
		if per[i] == 0 {
			continue
		}
		// The transition changes level i and resets every inner level
		// whose loop actually cycles (size > 1).
		cat := p.Order[i]
		best := physicalPriority(cat)
		for j := 0; j < i; j++ {
			if levelSize(p.Order[j], g) > 1 {
				if pr := physicalPriority(p.Order[j]); pr > best {
					best = pr
					cat = p.Order[j]
				}
			}
		}
		c.addLevel(cat, per[i])
	}
	c.DifRows++
	return c
}

// AddressGen computes a policy's address walk one index at a time:
// At(k) is the k-th element of the stream Addresses materializes. The
// simulate path feeds controllers straight from a generator so a
// multi-thousand-request tile stream costs no per-request storage.
type AddressGen struct {
	order [4]Level
	sizes [4]int64
	rps   int
}

// Generator precomputes the policy's per-level radices over g.
func (p Policy) Generator(g dram.Geometry) AddressGen {
	gen := AddressGen{order: p.Order, rps: g.RowsPerSubarray()}
	for i, l := range p.Order {
		gen.sizes[i] = levelSize(l, g)
	}
	return gen
}

// At returns the k-th address of the walk.
func (gen AddressGen) At(k int64) dram.Address {
	rem := k
	var digit [4]int64
	for i := 0; i < 4; i++ {
		digit[i] = rem % gen.sizes[i]
		rem /= gen.sizes[i]
	}
	var a dram.Address
	var sa, rowInSA int64
	for i, l := range gen.order {
		switch l {
		case LevelColumn:
			a.Column = int(digit[i])
		case LevelBank:
			a.Bank = int(digit[i])
		case LevelSubarray:
			sa = digit[i]
		case LevelRow:
			rowInSA = digit[i]
		}
	}
	a.Row = int(sa)*gen.rps + int(rowInSA)
	return a
}

// Addresses lays out a tile of `bursts` accesses from the origin of the
// rank according to the policy, returning the concrete address stream.
// It is the executable form of the paper's Fig. 6 pseudo-code and feeds
// the simulation-based validation of Counts.
func (p Policy) Addresses(bursts int64, g dram.Geometry) []dram.Address {
	gen := p.Generator(g)
	addrs := make([]dram.Address, 0, bursts)
	for k := int64(0); k < bursts; k++ {
		addrs = append(addrs, gen.At(k))
	}
	return addrs
}

// StreamCounts classifies a concrete address stream transition by
// transition, using the same rules as the cycle-accurate controller:
// a different bank is a bank switch, a different subarray of the same
// bank a subarray switch, a different row of the same subarray a row
// opening, anything else a hit. The first access opens its row. It is
// the reference implementation that Counts must agree with.
func StreamCounts(addrs []dram.Address, g dram.Geometry) Counts {
	var c Counts
	for i, a := range addrs {
		if i == 0 {
			c.DifRows++
			continue
		}
		prev := addrs[i-1]
		switch {
		case prev.Channel != a.Channel || prev.Rank != a.Rank || prev.Bank != a.Bank:
			c.DifBanks++
		case prev.Subarray(g) != a.Subarray(g):
			c.DifSubarrays++
		case prev.Row != a.Row:
			c.DifRows++
		default:
			c.DifColumn++
		}
	}
	return c
}
