package mapping

import (
	"fmt"

	"drmap/internal/dram"
)

// This file implements the multi-rank/multi-channel stages of the DRMap
// flowchart (Fig. 5): step 4 wraps within a rank, and step 5 spills to
// "a different rank (channel) if available". Two placements are
// provided:
//
//   - RankSpill: the literal step 5 - fill one rank completely, then
//     move to the next rank, then the next channel. Tiles only reach
//     other ranks when they exceed a rank's capacity.
//   - ChannelInterleaved: the parallel generalization - consecutive
//     bursts round-robin across channels (and ranks within a channel),
//     so independent channel buses serve one tile concurrently. This is
//     the placement a multi-channel accelerator would actually use, and
//     the multi-channel experiments quantify its speedup.

// rankCapacity returns the burst capacity of one rank.
func rankCapacity(g dram.Geometry) int64 {
	return int64(g.Banks) * int64(g.Rows) * int64(g.Columns)
}

// RankSpill lays out a tile with the policy inside each rank, moving to
// the next rank (then channel) only when the previous one is full -
// DRMap's step 5 verbatim.
func RankSpill(p Policy, bursts int64, g dram.Geometry) []dram.Address {
	cap := rankCapacity(g)
	addrs := make([]dram.Address, 0, bursts)
	var done int64
	for done < bursts {
		n := bursts - done
		if n > cap {
			n = cap
		}
		unit := done / cap
		ra := int(unit) % g.Ranks
		ch := int(unit) / g.Ranks
		if ch >= g.Channels {
			// Out of capacity: wrap around (callers validate sizes; this
			// keeps the function total).
			ch = ch % g.Channels
		}
		for _, a := range p.Addresses(n, g) {
			a.Rank = ra
			a.Channel = ch
			addrs = append(addrs, a)
		}
		done += n
	}
	return addrs
}

// ChannelInterleaved spreads consecutive bursts round-robin over all
// channel/rank pairs, applying the policy within each unit. With C
// units, unit u receives the sub-stream of ceil((bursts-u)/C) bursts.
func ChannelInterleaved(p Policy, bursts int64, g dram.Geometry) []dram.Address {
	units := int64(g.Channels) * int64(g.Ranks)
	if units <= 1 {
		return p.Addresses(bursts, g)
	}
	// Pre-generate each unit's sub-stream.
	sub := make([][]dram.Address, units)
	for u := int64(0); u < units; u++ {
		n := (bursts - u + units - 1) / units
		if n < 0 {
			n = 0
		}
		sub[u] = p.Addresses(n, g)
	}
	addrs := make([]dram.Address, 0, bursts)
	for k := int64(0); k < bursts; k++ {
		u := k % units
		a := sub[u][k/units]
		a.Channel = int(u) % g.Channels
		a.Rank = int(u) / g.Channels
		addrs = append(addrs, a)
	}
	return addrs
}

// InterleavedCounts prices a channel-interleaved tile analytically: each
// of the C=channels*ranks units sees an independent sub-stream laid out
// by the policy, so the per-category counts are the sum of the units'
// counts. The *cycles* of those counts overlap across channel buses;
// EffectiveParallelism reports the divisor to apply to the serial cycle
// total.
func InterleavedCounts(p Policy, bursts int64, g dram.Geometry) Counts {
	units := int64(g.Channels) * int64(g.Ranks)
	if units <= 1 {
		return p.Counts(bursts, g)
	}
	var total Counts
	for u := int64(0); u < units; u++ {
		n := (bursts - u + units - 1) / units
		if n > 0 {
			total.Add(p.Counts(n, g), 1)
		}
	}
	return total
}

// EffectiveParallelism returns the cycle-overlap factor of a
// channel-interleaved placement: channels have fully independent buses;
// ranks on a shared channel bus only overlap bank timing, which the
// per-category costs already capture, so only channels divide time.
func EffectiveParallelism(g dram.Geometry) float64 {
	if g.Channels < 1 {
		return 1
	}
	return float64(g.Channels)
}

// ValidateCapacity reports an error when a tile cannot fit the system.
func ValidateCapacity(bursts int64, g dram.Geometry) error {
	total := rankCapacity(g) * int64(g.Ranks) * int64(g.Channels)
	if bursts > total {
		return fmt.Errorf("mapping: tile of %d bursts exceeds system capacity %d", bursts, total)
	}
	return nil
}
