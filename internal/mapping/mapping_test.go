package mapping

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"drmap/internal/dram"
)

func geom(t *testing.T) dram.Geometry {
	t.Helper()
	return dram.DDR3Config().Geometry
}

func TestTableIMatchesPaper(t *testing.T) {
	want := [][4]Level{
		{LevelColumn, LevelSubarray, LevelBank, LevelRow},
		{LevelSubarray, LevelColumn, LevelBank, LevelRow},
		{LevelColumn, LevelBank, LevelSubarray, LevelRow},
		{LevelBank, LevelColumn, LevelSubarray, LevelRow},
		{LevelSubarray, LevelBank, LevelColumn, LevelRow},
		{LevelBank, LevelSubarray, LevelColumn, LevelRow},
	}
	policies := TableI()
	if len(policies) != 6 {
		t.Fatalf("Table I has %d policies, want 6", len(policies))
	}
	for i, p := range policies {
		if p.ID != i+1 {
			t.Errorf("policy %d has ID %d", i, p.ID)
		}
		if p.Order != want[i] {
			t.Errorf("Mapping-%d order = %v, want %v", i+1, p.Order, want[i])
		}
		if err := p.Validate(); err != nil {
			t.Errorf("Mapping-%d invalid: %v", i+1, err)
		}
	}
}

func TestDRMapIsMapping3(t *testing.T) {
	d := DRMap()
	if d.ID != 3 {
		t.Fatalf("DRMap ID = %d, want 3", d.ID)
	}
	want := [4]Level{LevelColumn, LevelBank, LevelSubarray, LevelRow}
	if d.Order != want {
		t.Errorf("DRMap order = %v, want %v", d.Order, want)
	}
}

func TestDefaultPolicyIsSubarrayUnaware(t *testing.T) {
	d := Default()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rows advance before subarrays: sequential rows walk through a
	// subarray before crossing into the next.
	if d.Order[2] != LevelRow || d.Order[3] != LevelSubarray {
		t.Errorf("default order = %v", d.Order)
	}
}

func TestValidateRejectsDuplicateLevels(t *testing.T) {
	p := Policy{Name: "bad", Order: [4]Level{LevelColumn, LevelColumn, LevelBank, LevelRow}}
	if err := p.Validate(); err == nil {
		t.Error("duplicate-level policy accepted")
	}
	p = Policy{Name: "bad2", Order: [4]Level{LevelColumn, Level(7), LevelBank, LevelRow}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range level accepted")
	}
}

func TestAllPermutations(t *testing.T) {
	perms := AllPermutations()
	if len(perms) != 24 {
		t.Fatalf("got %d permutations, want 24", len(perms))
	}
	seen := map[[4]Level]bool{}
	for _, p := range perms {
		if err := p.Validate(); err != nil {
			t.Errorf("permutation %v invalid: %v", p, err)
		}
		if seen[p.Order] {
			t.Errorf("duplicate permutation %v", p.Order)
		}
		seen[p.Order] = true
	}
}

func TestLeastRowSwitchingYieldsTableI(t *testing.T) {
	// The paper's pruning rule (keep row outer-most) applied to all 24
	// permutations must yield exactly the six Table I orders.
	pruned := LeastRowSwitching(AllPermutations())
	if len(pruned) != 6 {
		t.Fatalf("pruned to %d policies, want 6", len(pruned))
	}
	want := map[[4]Level]bool{}
	for _, p := range TableI() {
		want[p.Order] = true
	}
	for _, p := range pruned {
		if !want[p.Order] {
			t.Errorf("pruned policy %v not in Table I", p.Order)
		}
	}
}

func TestCountsTotalEqualsBursts(t *testing.T) {
	g := geom(t)
	for _, p := range append(TableI(), Default()) {
		for _, n := range []int64{1, 7, 128, 129, 8192, 1<<20 + 3} {
			c := p.Counts(n, g)
			if c.Total() != n {
				t.Errorf("%s: Counts(%d).Total() = %d", p.Name, n, c.Total())
			}
			pc := p.PhysicalCounts(n, g)
			if pc.Total() != n {
				t.Errorf("%s: PhysicalCounts(%d).Total() = %d", p.Name, n, pc.Total())
			}
		}
	}
}

func TestCountsZeroAndNegative(t *testing.T) {
	g := geom(t)
	p := DRMap()
	if c := p.Counts(0, g); c.Total() != 0 {
		t.Errorf("Counts(0) = %+v", c)
	}
	if c := p.Counts(-5, g); c.Total() != 0 {
		t.Errorf("Counts(-5) = %+v", c)
	}
}

func TestDRMapCountsSmallTile(t *testing.T) {
	// 256 bursts under Mapping-3 with 128 columns/row: 254 hits, 1 bank
	// switch (at access 128), plus the opening row access.
	g := geom(t)
	c := DRMap().Counts(256, g)
	if c.DifColumn != 254 || c.DifBanks != 1 || c.DifSubarrays != 0 || c.DifRows != 1 {
		t.Errorf("DRMap Counts(256) = %+v", c)
	}
}

func TestMapping2CountsSubarrayDominated(t *testing.T) {
	g := geom(t)
	c := TableI()[1].Counts(1024, g) // Mapping-2: subarray inner-most
	// 7 of every 8 transitions advance the subarray loop.
	if c.DifSubarrays < 800 {
		t.Errorf("Mapping-2 subarray transitions = %d, want ~7/8 of 1023", c.DifSubarrays)
	}
	if c.DifColumn == 0 {
		t.Error("Mapping-2 should still have column transitions at level 2")
	}
}

func TestMapping4CountsBankDominated(t *testing.T) {
	g := geom(t)
	c := TableI()[3].Counts(1024, g) // Mapping-4: bank inner-most
	if c.DifBanks < 800 {
		t.Errorf("Mapping-4 bank transitions = %d, want ~7/8 of 1023", c.DifBanks)
	}
}

func TestDRMapMaximizesHitsAcrossTableI(t *testing.T) {
	// The defining property: for any realistic tile size, no Table I
	// policy yields more row-buffer hits than DRMap, and subarray-first
	// policies (2, 5) yield the fewest.
	g := geom(t)
	for _, n := range []int64{128, 1024, 8192, 65536} {
		policies := TableI()
		drmap := DRMap().Counts(n, g)
		for _, p := range policies {
			c := p.Counts(n, g)
			if c.DifColumn > drmap.DifColumn {
				t.Errorf("n=%d: %s has more hits (%d) than DRMap (%d)", n, p.Name, c.DifColumn, drmap.DifColumn)
			}
		}
		m2 := policies[1].Counts(n, g)
		if m2.DifColumn*4 > drmap.DifColumn {
			t.Errorf("n=%d: Mapping-2 hits (%d) not far below DRMap hits (%d)", n, m2.DifColumn, drmap.DifColumn)
		}
	}
}

func TestAddressesAreValidAndDistinct(t *testing.T) {
	g := geom(t)
	for _, p := range append(TableI(), Default()) {
		addrs := p.Addresses(4096, g)
		if len(addrs) != 4096 {
			t.Fatalf("%s: got %d addresses", p.Name, len(addrs))
		}
		seen := make(map[int64]bool, len(addrs))
		for i, a := range addrs {
			if !a.Valid(g) {
				t.Fatalf("%s: address %d (%v) invalid", p.Name, i, a)
			}
			l := a.Linear(g)
			if seen[l] {
				t.Fatalf("%s: duplicate address %v at index %d", p.Name, a, i)
			}
			seen[l] = true
		}
	}
}

func TestAddressesBijectiveProperty(t *testing.T) {
	// Distinctness must hold for arbitrary burst counts and policies.
	g := dram.Geometry{
		Channels: 1, Ranks: 1, Chips: 1, Banks: 4, Subarrays: 4,
		Rows: 64, Columns: 8, ChipBits: 8, BurstLength: 8,
	}
	policies := AllPermutations()
	f := func(nRaw uint16, pIdx uint8) bool {
		n := int64(nRaw)%2000 + 1
		p := policies[int(pIdx)%len(policies)]
		addrs := p.Addresses(n, g)
		seen := make(map[int64]bool, len(addrs))
		for _, a := range addrs {
			if !a.Valid(g) {
				return false
			}
			l := a.Linear(g)
			if seen[l] {
				return false
			}
			seen[l] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Error(err)
	}
}

func TestPhysicalCountsMatchStreamCountsExactly(t *testing.T) {
	// PhysicalCounts is the closed form of StreamCounts over the
	// generated addresses; they must agree access for access.
	g := geom(t)
	for _, p := range append(TableI(), Default()) {
		for _, n := range []int64{1, 100, 128, 1024, 8192, 10000} {
			closed := p.PhysicalCounts(n, g)
			stream := StreamCounts(p.Addresses(n, g), g)
			if closed != stream {
				t.Errorf("%s n=%d: PhysicalCounts %+v != StreamCounts %+v", p.Name, n, closed, stream)
			}
		}
	}
}

func TestPhysicalCountsMatchStreamProperty(t *testing.T) {
	g := dram.Geometry{
		Channels: 1, Ranks: 1, Chips: 1, Banks: 4, Subarrays: 2,
		Rows: 32, Columns: 8, ChipBits: 8, BurstLength: 8,
	}
	policies := AllPermutations()
	f := func(nRaw uint16, pIdx uint8) bool {
		n := int64(nRaw)%1500 + 1
		p := policies[int(pIdx)%len(policies)]
		return p.PhysicalCounts(n, g) == StreamCounts(p.Addresses(n, g), g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Error(err)
	}
}

func TestPaperVsPhysicalDivergenceIsBounded(t *testing.T) {
	// The paper's level-based pricing and the stream-accurate pricing
	// may only disagree on loop-boundary transitions: for column-inner
	// policies that is at most 1/columns of all accesses.
	g := geom(t)
	for _, p := range []Policy{TableI()[0], TableI()[2]} { // Mapping-1, Mapping-3
		n := int64(1 << 16)
		paper := p.Counts(n, g)
		phys := p.PhysicalCounts(n, g)
		if paper.DifColumn != phys.DifColumn {
			t.Errorf("%s: hit counts differ: paper %d phys %d", p.Name, paper.DifColumn, phys.DifColumn)
		}
		boundary := n / int64(g.Columns)
		diff := abs64(paper.DifBanks-phys.DifBanks) + abs64(paper.DifSubarrays-phys.DifSubarrays) +
			abs64(paper.DifRows-phys.DifRows)
		if diff > 2*boundary {
			t.Errorf("%s: divergence %d exceeds boundary bound %d", p.Name, diff, 2*boundary)
		}
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestCountsAdd(t *testing.T) {
	var acc Counts
	acc.Add(Counts{DifColumn: 10, DifBanks: 1, DifSubarrays: 2, DifRows: 3}, 4)
	want := Counts{DifColumn: 40, DifBanks: 4, DifSubarrays: 8, DifRows: 12}
	if acc != want {
		t.Errorf("Add = %+v, want %+v", acc, want)
	}
}

func TestStreamCountsFirstAccessOpensRow(t *testing.T) {
	g := geom(t)
	c := StreamCounts([]dram.Address{{Bank: 0, Row: 0, Column: 0}}, g)
	if c.DifRows != 1 || c.Total() != 1 {
		t.Errorf("single access counts = %+v", c)
	}
}

func TestStreamCountsClassification(t *testing.T) {
	g := geom(t) // 4096 rows per subarray
	addrs := []dram.Address{
		{Bank: 0, Row: 0, Column: 0},    // open
		{Bank: 0, Row: 0, Column: 1},    // hit
		{Bank: 1, Row: 0, Column: 1},    // bank switch
		{Bank: 1, Row: 4096, Column: 0}, // subarray switch
		{Bank: 1, Row: 4097, Column: 0}, // row change
	}
	c := StreamCounts(addrs, g)
	want := Counts{DifColumn: 1, DifBanks: 1, DifSubarrays: 1, DifRows: 2}
	if c != want {
		t.Errorf("StreamCounts = %+v, want %+v", c, want)
	}
}

func TestLevelString(t *testing.T) {
	cases := map[Level]string{
		LevelColumn: "column", LevelBank: "bank", LevelSubarray: "subarray",
		LevelRow: "row", Level(9): "Level(9)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("Level(%d) = %q, want %q", int(l), got, want)
		}
	}
}

func TestPolicyString(t *testing.T) {
	s := DRMap().String()
	for _, sub := range []string{"Mapping-3", "column", "bank", "subarray", "row"} {
		if !strings.Contains(s, sub) {
			t.Errorf("policy string %q missing %q", s, sub)
		}
	}
}

func TestCountsWithSingleSubarrayGeometry(t *testing.T) {
	// With one subarray per bank the subarray loop is degenerate: no
	// transitions may be attributed to it.
	g := geom(t)
	g.Subarrays = 1
	for _, p := range TableI() {
		c := p.Counts(1<<14, g)
		if c.DifSubarrays != 0 {
			t.Errorf("%s: %d subarray transitions with 1 subarray/bank", p.Name, c.DifSubarrays)
		}
		if c.Total() != 1<<14 {
			t.Errorf("%s: total %d", p.Name, c.Total())
		}
	}
}
