package memctrl

import (
	"fmt"
	"sort"

	"drmap/internal/sim"
	"drmap/internal/trace"
)

// RequestSource yields a request stream by index, letting callers feed
// an agent without materializing the stream: At(i) must be a pure
// function of i (it may be called more than once per index), and Len
// must be constant over the agent's life. The simulate path implements
// it directly over the mapping policy's address walk.
type RequestSource interface {
	Len() int
	At(i int) trace.Request
}

// sliceSource adapts a materialized request slice.
type sliceSource []trace.Request

func (s sliceSource) Len() int               { return len(s) }
func (s sliceSource) At(i int) trace.Request { return s[i] }

// arrivalChunk is the agent's scheduling window: how many arrival
// events are live on the engine at once. Arrivals fire strictly in
// index order, so when the last event of a window is handled every
// ring slot of the window has been delivered and the next window can
// reuse them - the engine queue and the event storage stay O(window)
// instead of O(stream).
const arrivalChunk = 256

// Agent drives one Controller as a discrete-event component on a
// sim.Engine: the controller's request stream becomes arrival events
// (request i of the service order arrives at tick i*ArrivalGap; with
// no gap, the whole stream arrives at tick 0 and fires in schedule
// order), and each arrival services the request through the exact
// timing state machine the monolithic loop used. Command issue, timing
// constraints and refresh remain inside the servicing step - that is
// what pins the event-driven controller bit-for-bit to the original
// command streams, counters and energy.
//
// Each Agent is its own sim.Domain, so a parallel engine runs many
// agents (one controller per tile stream) concurrently while every
// individual stream stays strictly sequential.
type Agent struct {
	ctrl *Controller
	eng  sim.Engine
	dom  *sim.Domain
	src  RequestSource
	n    int
	// order is the service order as indices into src; nil means the
	// identity (FCFS), sparing the per-request index slice.
	order []int
	// arrivals is the ring backing the scheduled events of the current
	// window: at most arrivalChunk slots, scheduled by pointer,
	// instead of boxing one value event per request into the Event
	// interface.
	arrivals []arrival
	sched    int // arrivals scheduled so far
	next     int // arrivals handled so far
	done     bool
	res      *Result
	// onDone fires (from the engine's goroutine) the moment the agent
	// finalizes its result; see SetOnDone.
	onDone func()
}

// arrival is one request-arrival event.
type arrival struct {
	tick  int64
	agent *Agent
	idx   int // position in the agent's service order
}

func (e *arrival) Tick() int64          { return e.tick }
func (e *arrival) Handler() sim.Handler { return e.agent }

// NewAgent resets the controller, validates and schedules the request
// stream's arrival events on the engine, and returns the agent that
// will handle them. The controller must not be shared with another
// live agent: the stream owns its state until the engine drains.
// An empty stream finalizes immediately (its result is the reset
// controller's empty result, exactly as Run returned it).
func NewAgent(eng sim.Engine, ctrl *Controller, reqs []trace.Request) (*Agent, error) {
	return NewSourceAgent(eng, ctrl, sliceSource(reqs))
}

// NewSourceAgent is NewAgent over a RequestSource: the stream is read
// by index as arrivals are serviced, so a generator-backed source runs
// with no per-request storage at all. An FR-FCFS controller needs the
// whole stream up front to compute its lookahead order; that case
// materializes the source once and proceeds as NewAgent would.
func NewSourceAgent(eng sim.Engine, ctrl *Controller, src RequestSource) (*Agent, error) {
	ctrl.reset()
	g := ctrl.cfg.Geometry
	n := src.Len()
	for i := 0; i < n; i++ {
		if r := src.At(i); !r.Addr.Valid(g) {
			return nil, fmt.Errorf("memctrl: request %d: address %v outside geometry", i, r.Addr)
		}
	}
	a := &Agent{
		ctrl: ctrl,
		eng:  eng,
		dom:  sim.NewDomain("memctrl"),
		src:  src,
		n:    n,
	}
	if ctrl.opt.Scheduler == FRFCFS && n > 0 {
		reqs := make([]trace.Request, n)
		for i := range reqs {
			reqs[i] = src.At(i)
		}
		a.src = sliceSource(reqs)
		a.order = ctrl.schedule(reqs)
	}
	if n == 0 {
		a.finalize()
		return a, nil
	}
	if !ctrl.opt.DiscardServiced {
		// Pre-size the serviced log: its length is known exactly, and
		// append-growth doubling was a visible share of the run's bytes.
		ctrl.result.Serviced = make([]trace.ServicedRequest, 0, n)
	}
	ring := n
	if ring > arrivalChunk {
		ring = arrivalChunk
	}
	a.arrivals = make([]arrival, ring)
	a.scheduleWindow()
	return a, nil
}

// reqAt returns the idx-th request of the service order.
func (a *Agent) reqAt(idx int) trace.Request {
	if a.order != nil {
		idx = a.order[idx]
	}
	return a.src.At(idx)
}

// scheduleWindow schedules the next window of arrivals into the ring.
// Called at construction and from Handle when the last arrival of the
// previous window fires - at that point every slot has been delivered
// (arrivals fire in index order), so overwriting them is safe. An
// arrival whose nominal tick has already passed (possible only when
// agents with different gaps share an engine) is scheduled at the
// current tick instead; the service-time floor still honours the
// nominal i*ArrivalGap, so the controller's results are unchanged.
func (a *Agent) scheduleWindow() {
	gap := int64(a.ctrl.opt.ArrivalGap)
	now := a.eng.Now()
	end := a.sched + len(a.arrivals)
	if end > a.n {
		end = a.n
	}
	for i := a.sched; i < end; i++ {
		tick := now
		if t := int64(i) * gap; t > tick {
			tick = t
		}
		slot := &a.arrivals[i%len(a.arrivals)]
		*slot = arrival{tick: tick, agent: a, idx: i}
		a.eng.Schedule(slot)
	}
	a.sched = end
}

// Domain declares the agent's scheduling domain: the controller's
// state is shared by all of the agent's events and nothing else.
func (a *Agent) Domain() *sim.Domain { return a.dom }

// SetOnDone registers a completion hook, fired exactly once when the
// agent finalizes its result - from whichever engine goroutine handles
// the last arrival, so the hook must be safe to call there. Setting it
// on an already-done agent fires it immediately.
func (a *Agent) SetOnDone(f func()) {
	a.onDone = f
	if a.done && f != nil {
		f()
	}
}

// Handle services one arrival. Arrivals fire in service order (the
// engine's (tick, schedule-order) contract), so the controller sees
// requests in exactly the sequence the monolithic loop served them.
func (a *Agent) Handle(ev sim.Event) error {
	e, ok := ev.(*arrival)
	if !ok || e.agent != a {
		return fmt.Errorf("memctrl: agent received foreign event %T", ev)
	}
	if e.idx != a.next {
		return fmt.Errorf("memctrl: arrival %d out of order (expected %d)", e.idx, a.next)
	}
	idx := e.idx
	a.next++
	c := a.ctrl
	if c.opt.ArrivalGap > 0 {
		c.reqFloor = int64(idx) * int64(c.opt.ArrivalGap)
	}
	c.service(a.reqAt(idx))
	// Scheduling the next window reuses e's ring slot; e is dead past
	// this point.
	if a.next == a.sched && a.sched < a.n {
		a.scheduleWindow()
	}
	if a.next == a.n {
		a.finalize()
	}
	return nil
}

// finalize closes the run exactly as the monolithic loop did: settle
// the device-active and subarray-latch accounting at the final cycle,
// stable-sort the command log by issue cycle (generation order breaks
// ties), and snapshot the result.
func (a *Agent) finalize() {
	c := a.ctrl
	c.closeActiveAccounting(c.result.TotalCycles)
	for bi := range c.banks {
		c.accountExtraOpen(&c.banks[bi], c.result.TotalCycles)
	}
	if len(c.result.Commands) > 1 {
		sort.SliceStable(c.result.Commands, func(i, j int) bool {
			return c.result.Commands[i].Cycle < c.result.Commands[j].Cycle
		})
	}
	res := c.result
	a.res = &res
	a.done = true
	if a.onDone != nil {
		a.onDone()
	}
}

// Done reports whether every arrival has been serviced and the result
// finalized.
func (a *Agent) Done() bool { return a.done }

// Pending returns how many requests of the stream have not been
// serviced yet - the invariant the randomized acceptance harness
// checks after a run (it must be zero once the engine drains).
func (a *Agent) Pending() int { return a.n - a.next }

// Result returns the finalized result; calling it before the engine
// has drained the agent's arrivals is an error.
func (a *Agent) Result() (*Result, error) {
	if !a.done {
		return nil, fmt.Errorf("memctrl: agent has %d pending requests (%d of %d serviced)",
			a.Pending(), a.next, a.n)
	}
	return a.res, nil
}
