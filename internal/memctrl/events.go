package memctrl

import (
	"fmt"
	"sort"

	"drmap/internal/sim"
	"drmap/internal/trace"
)

// Agent drives one Controller as a discrete-event component on a
// sim.Engine: the controller's request stream becomes arrival events
// (request i of the service order arrives at tick i*ArrivalGap; with
// no gap, the whole stream arrives at tick 0 and fires in schedule
// order), and each arrival services the request through the exact
// timing state machine the monolithic loop used. Command issue, timing
// constraints and refresh remain inside the servicing step - that is
// what pins the event-driven controller bit-for-bit to the original
// command streams, counters and energy.
//
// Each Agent is its own sim.Domain, so a parallel engine runs many
// agents (one controller per tile stream) concurrently while every
// individual stream stays strictly sequential.
type Agent struct {
	ctrl  *Controller
	dom   *sim.Domain
	reqs  []trace.Request
	order []int // service order: indices into reqs
	next  int   // arrivals handled so far
	done  bool
	res   *Result
	// onDone fires (from the engine's goroutine) the moment the agent
	// finalizes its result; see SetOnDone.
	onDone func()
}

// arrival is one request-arrival event.
type arrival struct {
	tick  int64
	agent *Agent
	idx   int // position in the agent's service order
}

func (e arrival) Tick() int64          { return e.tick }
func (e arrival) Handler() sim.Handler { return e.agent }

// NewAgent resets the controller, validates and schedules the request
// stream's arrival events on the engine, and returns the agent that
// will handle them. The controller must not be shared with another
// live agent: the stream owns its state until the engine drains.
// An empty stream finalizes immediately (its result is the reset
// controller's empty result, exactly as Run returned it).
func NewAgent(eng sim.Engine, ctrl *Controller, reqs []trace.Request) (*Agent, error) {
	ctrl.reset()
	g := ctrl.cfg.Geometry
	for i, r := range reqs {
		if !r.Addr.Valid(g) {
			return nil, fmt.Errorf("memctrl: request %d: address %v outside geometry", i, r.Addr)
		}
	}
	a := &Agent{
		ctrl:  ctrl,
		dom:   sim.NewDomain("memctrl"),
		reqs:  reqs,
		order: ctrl.schedule(reqs),
	}
	gap := int64(ctrl.opt.ArrivalGap)
	for i := range a.order {
		var tick int64
		if gap > 0 {
			tick = int64(i) * gap
		}
		eng.Schedule(arrival{tick: tick, agent: a, idx: i})
	}
	if len(a.order) == 0 {
		a.finalize()
	}
	return a, nil
}

// Domain declares the agent's scheduling domain: the controller's
// state is shared by all of the agent's events and nothing else.
func (a *Agent) Domain() *sim.Domain { return a.dom }

// SetOnDone registers a completion hook, fired exactly once when the
// agent finalizes its result - from whichever engine goroutine handles
// the last arrival, so the hook must be safe to call there. Setting it
// on an already-done agent fires it immediately.
func (a *Agent) SetOnDone(f func()) {
	a.onDone = f
	if a.done && f != nil {
		f()
	}
}

// Handle services one arrival. Arrivals fire in service order (the
// engine's (tick, schedule-order) contract), so the controller sees
// requests in exactly the sequence the monolithic loop served them.
func (a *Agent) Handle(ev sim.Event) error {
	e, ok := ev.(arrival)
	if !ok || e.agent != a {
		return fmt.Errorf("memctrl: agent received foreign event %T", ev)
	}
	if e.idx != a.next {
		return fmt.Errorf("memctrl: arrival %d out of order (expected %d)", e.idx, a.next)
	}
	a.next++
	c := a.ctrl
	if c.opt.ArrivalGap > 0 {
		c.reqFloor = int64(e.idx) * int64(c.opt.ArrivalGap)
	}
	c.service(a.reqs[a.order[e.idx]])
	if a.next == len(a.order) {
		a.finalize()
	}
	return nil
}

// finalize closes the run exactly as the monolithic loop did: settle
// the device-active and subarray-latch accounting at the final cycle,
// stable-sort the command log by issue cycle (generation order breaks
// ties), and snapshot the result.
func (a *Agent) finalize() {
	c := a.ctrl
	c.closeActiveAccounting(c.result.TotalCycles)
	for bi := range c.banks {
		c.accountExtraOpen(&c.banks[bi], c.result.TotalCycles)
	}
	sort.SliceStable(c.result.Commands, func(i, j int) bool {
		return c.result.Commands[i].Cycle < c.result.Commands[j].Cycle
	})
	res := c.result
	a.res = &res
	a.done = true
	if a.onDone != nil {
		a.onDone()
	}
}

// Done reports whether every arrival has been serviced and the result
// finalized.
func (a *Agent) Done() bool { return a.done }

// Pending returns how many scheduled arrivals have not been serviced
// yet - the invariant the randomized acceptance harness checks after a
// run (it must be zero once the engine drains).
func (a *Agent) Pending() int { return len(a.order) - a.next }

// Result returns the finalized result; calling it before the engine
// has drained the agent's arrivals is an error.
func (a *Agent) Result() (*Result, error) {
	if !a.done {
		return nil, fmt.Errorf("memctrl: agent has %d pending requests (%d of %d serviced)",
			a.Pending(), a.next, len(a.order))
	}
	return a.res, nil
}
