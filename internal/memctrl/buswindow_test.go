package memctrl

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"drmap/internal/dram"
)

// busMapModel is the retired bus-occupancy bookkeeping, kept verbatim
// as the reference model: a set of taken cycles probed by linear t++
// walk from the earliest candidate. busWindow.reserve must grant the
// identical cycle for the identical probe sequence.
type busMapModel map[int64]struct{}

func (m busMapModel) reserve(earliest int64) int64 {
	t := earliest
	for {
		if _, busy := m[t]; !busy {
			m[t] = struct{}{}
			return t
		}
		t++
	}
}

// checkReserve runs one probe through both implementations and fails on
// the first divergence, reporting the probe index for replay.
func checkReserve(t *testing.T, w *busWindow, m busMapModel, step int, earliest int64) {
	t.Helper()
	got := w.reserve(earliest)
	want := m.reserve(earliest)
	if got != want {
		t.Fatalf("probe %d: reserve(%d) = %d, map probe = %d", step, earliest, got, want)
	}
}

// TestBusWindowMatchesMapProbe is the seeded property test pinning the
// bitset window bit-for-bit against the map-based probe across the
// probe shapes issueCmd actually produces: near-monotonic walks with
// duplicate-cycle collisions (several commands computing the same
// earliest free cycle), probes from cycle 0 long after the frontier (a
// MASA SASEL has no timing predecessor), and forward jumps far past the
// low watermark and past the allocated window (refresh stalls, arrival
// gaps), which force the compact-and-grow path.
func TestBusWindowMatchesMapProbe(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1000 + seed))
			var w busWindow
			m := busMapModel{}
			frontier := int64(0)
			for step := 0; step < 5000; step++ {
				var earliest int64
				switch k := rng.Intn(100); {
				case k < 55:
					// Near-monotonic: at or just behind the frontier,
					// colliding with occupied cycles.
					earliest = frontier - rng.Int63n(8)
				case k < 70:
					// Exact duplicate of the previous grant - two
					// commands whose timing constraints resolve to the
					// same cycle, the collision the t++ walk existed for.
					earliest = frontier
				case k < 80:
					// Probe from zero: everything below the watermark is
					// occupied, the clamp must land where t++ would.
					earliest = 0
				case k < 95:
					// Refresh-sized stall past the watermark but inside
					// or near the window (tRFC-scale).
					earliest = frontier + rng.Int63n(512)
				default:
					// Far jump beyond the allocated window: forces
					// ensure() to compact the full prefix and grow.
					earliest = frontier + 4096 + rng.Int63n(1<<16)
				}
				if earliest < 0 {
					earliest = 0
				}
				got := w.reserve(earliest)
				want := m.reserve(earliest)
				if got != want {
					t.Fatalf("step %d: reserve(%d) = %d, map probe = %d", step, earliest, got, want)
				}
				if got > frontier {
					frontier = got
				}
			}
		})
	}
}

// TestBusWindowResetReuse pins the reset path: a window reused across
// runs (the controller pools them) must behave like a fresh map.
func TestBusWindowResetReuse(t *testing.T) {
	var w busWindow
	for run := 0; run < 3; run++ {
		m := busMapModel{}
		rng := rand.New(rand.NewSource(int64(run)))
		frontier := int64(0)
		for step := 0; step < 500; step++ {
			earliest := frontier - rng.Int63n(16)
			if earliest < 0 {
				earliest = 0
			}
			checkReserve(t, &w, m, step, earliest)
			if earliest > frontier {
				frontier = earliest
			}
			frontier++
		}
		w.reset()
	}
}

// FuzzBusWindowReserve fuzzes arbitrary probe sequences against the map
// model. Each pair of input bytes encodes one probe as a signed offset
// from the last granted cycle, so the corpus can express collisions
// (offset <= 0), zero resets, and jumps of up to ~32k cycles. The
// seeded corpus covers the structured cases; `go test` replays it on
// every run, and `go test -fuzz=FuzzBusWindowReserve` explores further.
func FuzzBusWindowReserve(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0})             // pure collisions at cycle 0
	f.Add([]byte{0x10, 0x00, 0x10, 0x00, 0, 0}) // small forward steps
	f.Add([]byte{0xff, 0x7f, 0xff, 0x7f, 0, 0}) // max jumps past the window
	seeded := make([]byte, 256)
	rand.New(rand.NewSource(42)).Read(seeded)
	f.Add(seeded)
	f.Fuzz(func(t *testing.T, data []byte) {
		var w busWindow
		m := busMapModel{}
		last := int64(0)
		for i := 0; i+1 < len(data); i += 2 {
			delta := int64(int16(binary.LittleEndian.Uint16(data[i:])))
			earliest := last + delta
			if earliest < 0 {
				earliest = 0
			}
			got := w.reserve(earliest)
			want := m.reserve(earliest)
			if got != want {
				t.Fatalf("probe %d: reserve(%d) = %d, map probe = %d", i/2, earliest, got, want)
			}
			last = got
		}
	})
}

// TestControllerBusMatchesMapProbe replays every bus reservation of
// full controller runs through the retired map-based probe, across the
// whole architecture x scheduler x page-policy x refresh matrix (plus
// an arrival-gap axis that jumps the frontier past the window each
// request). The busProbe seam records the earliest cycle issueCmd
// actually passed to reserve - after the request floor and refresh
// adjustments - so the shadow map sees exactly the probe stream the old
// code saw, and every granted cycle is pinned bit-for-bit.
func TestControllerBusMatchesMapProbe(t *testing.T) {
	for _, arch := range dram.Archs {
		cfg := dram.ConfigFor(arch)
		reqs := randomRequests(777, 400, cfg.Geometry)
		for _, sched := range []Scheduler{FCFS, FRFCFS} {
			for _, pp := range []PagePolicy{OpenRow, ClosedRow} {
				for _, refresh := range []bool{false, true} {
					for _, gap := range []int{0, 5000} {
						opt := Options{
							Scheduler:     sched,
							PagePolicy:    pp,
							EnableRefresh: refresh,
							ArrivalGap:    gap,
						}
						name := fmt.Sprintf("%s/%s/%s/refresh=%v/gap=%d",
							arch, sched, pp, refresh, gap)
						t.Run(name, func(t *testing.T) {
							c, err := New(cfg, opt)
							if err != nil {
								t.Fatal(err)
							}
							shadow := make([]busMapModel, cfg.Geometry.Channels)
							for i := range shadow {
								shadow[i] = busMapModel{}
							}
							probes := 0
							c.busProbe = func(ch int, earliest, issued int64) {
								probes++
								if want := shadow[ch].reserve(earliest); want != issued {
									t.Fatalf("probe %d ch %d: window granted %d, map probe %d (earliest %d)",
										probes, ch, issued, want, earliest)
								}
							}
							if _, err := c.Run(reqs); err != nil {
								t.Fatal(err)
							}
							if probes < len(reqs) {
								t.Fatalf("only %d probes for %d requests", probes, len(reqs))
							}
						})
					}
				}
			}
		}
	}
}
