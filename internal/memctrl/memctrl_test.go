package memctrl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"drmap/internal/dram"
	"drmap/internal/trace"
)

// mustRun services the requests or fails the test.
func mustRun(t *testing.T, cfg dram.Config, opt Options, reqs []trace.Request) *Result {
	t.Helper()
	opt.RetainCommands = true // tests inspect individual commands
	c, err := New(cfg, opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := c.Run(reqs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// columnsPerRow matches the preset 2Gb x8 geometry (1 KB page).
const columnsPerRow = 128

// readRow builds n sequential-column reads to one row of one bank.
func readRow(bank, row, n int) []trace.Request {
	reqs := make([]trace.Request, n)
	for i := range reqs {
		reqs[i] = trace.Request{Op: trace.Read, Addr: dram.Address{Bank: bank, Row: row, Column: i % columnsPerRow}}
	}
	return reqs
}

// roundRobin builds reads that cycle through banks, opening a fresh row
// on every visit.
func roundRobin(n int, bankOf, rowOf func(i int) int) []trace.Request {
	reqs := make([]trace.Request, n)
	for i := range reqs {
		reqs[i] = trace.Request{Op: trace.Read, Addr: dram.Address{
			Bank: bankOf(i), Row: rowOf(i), Column: i % columnsPerRow,
		}}
	}
	return reqs
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := dram.DDR3Config()
	cfg.Geometry.Banks = 0
	if _, err := New(cfg, Options{}); err == nil {
		t.Fatal("New accepted invalid geometry")
	}
}

func TestRunRejectsOutOfRangeAddress(t *testing.T) {
	c, err := New(dram.DDR3Config(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run([]trace.Request{{Op: trace.Read, Addr: dram.Address{Bank: 99}}})
	if err == nil {
		t.Fatal("Run accepted out-of-range bank")
	}
}

func TestIsolatedRowMissLatency(t *testing.T) {
	// First-ever access to a closed bank: ACT -> RD; latency must be
	// exactly tRCD + CL + tBL.
	cfg := dram.DDR3Config()
	res := mustRun(t, cfg, Options{ArrivalGap: 500}, readRow(0, 0, 1))
	tm := cfg.Timing
	want := int64(tm.TRCD + tm.CL + tm.TBL)
	if got := res.Serviced[0].Latency(); got != want {
		t.Errorf("isolated miss latency = %d, want %d", got, want)
	}
	if res.Serviced[0].Kind != trace.AccessRowMiss {
		t.Errorf("kind = %v, want row-miss", res.Serviced[0].Kind)
	}
}

func TestIsolatedRowHitLatency(t *testing.T) {
	cfg := dram.DDR3Config()
	res := mustRun(t, cfg, Options{ArrivalGap: 500}, readRow(0, 0, 2))
	tm := cfg.Timing
	want := int64(tm.CL + tm.TBL)
	if got := res.Serviced[1].Latency(); got != want {
		t.Errorf("isolated hit latency = %d, want %d", got, want)
	}
	if res.Serviced[1].Kind != trace.AccessRowHit {
		t.Errorf("kind = %v, want row-hit", res.Serviced[1].Kind)
	}
}

func TestIsolatedRowConflictLatency(t *testing.T) {
	cfg := dram.DDR3Config()
	reqs := []trace.Request{
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: 0, Column: 0}},
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: 1, Column: 0}},
	}
	res := mustRun(t, cfg, Options{ArrivalGap: 500}, reqs)
	tm := cfg.Timing
	want := int64(tm.TRP + tm.TRCD + tm.CL + tm.TBL)
	if got := res.Serviced[1].Latency(); got != want {
		t.Errorf("isolated conflict latency = %d, want %d", got, want)
	}
	if res.Serviced[1].Kind != trace.AccessRowConflict {
		t.Errorf("kind = %v, want row-conflict", res.Serviced[1].Kind)
	}
}

func TestLatencyOrderingHitMissConflict(t *testing.T) {
	// The cornerstone of Fig. 1: hit < miss < conflict.
	cfg := dram.DDR3Config()
	hit := mustRun(t, cfg, Options{ArrivalGap: 500}, readRow(0, 0, 2)).Serviced[1].Latency()
	miss := mustRun(t, cfg, Options{ArrivalGap: 500}, readRow(0, 0, 1)).Serviced[0].Latency()
	conflict := mustRun(t, cfg, Options{ArrivalGap: 500}, []trace.Request{
		{Op: trace.Read, Addr: dram.Address{Row: 0}},
		{Op: trace.Read, Addr: dram.Address{Row: 1}},
	}).Serviced[1].Latency()
	if !(hit < miss && miss < conflict) {
		t.Errorf("latency ordering violated: hit=%d miss=%d conflict=%d", hit, miss, conflict)
	}
}

func TestStreamingHitThroughputIsCCDLimited(t *testing.T) {
	cfg := dram.DDR3Config()
	const n = 512
	res := mustRun(t, cfg, Options{}, readRow(0, 0, n))
	per := res.AverageCyclesPerAccess()
	tccd := float64(cfg.Timing.TCCD)
	if per < tccd || per > tccd+1 {
		t.Errorf("streaming hit cost = %.2f cycles/access, want ~tCCD (%v)", per, tccd)
	}
}

func TestStreamingConflictThroughputIsTRCLimited(t *testing.T) {
	cfg := dram.DDR3Config()
	const n = 256
	reqs := make([]trace.Request, n)
	for i := range reqs {
		reqs[i] = trace.Request{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: i, Column: 0}}
	}
	res := mustRun(t, cfg, Options{}, reqs)
	per := res.AverageCyclesPerAccess()
	trc := float64(cfg.Timing.TRC)
	if per < trc-1 || per > trc+3 {
		t.Errorf("streaming conflict cost = %.2f cycles/access, want ~tRC (%v)", per, trc)
	}
}

// subarrayRoundRobin cycles through all subarrays of bank 0, opening a
// fresh row inside each subarray at every visit.
func subarrayRoundRobin(g dram.Geometry, n int) []trace.Request {
	rps := g.RowsPerSubarray()
	reqs := make([]trace.Request, n)
	for i := range reqs {
		sa := i % g.Subarrays
		lap := i / g.Subarrays
		reqs[i] = trace.Request{Op: trace.Read, Addr: dram.Address{
			Bank: 0, Row: sa*rps + lap%rps, Column: i % g.Columns,
		}}
	}
	return reqs
}

func TestSubarrayInterleaveArchOrdering(t *testing.T) {
	// Fig. 1 "subarray-level parallelism": cost must strictly improve
	// from DDR3 through SALP-1, SALP-2 to MASA.
	const n = 512
	perArch := make(map[dram.Arch]float64)
	for _, cfg := range dram.AllConfigs() {
		reqs := subarrayRoundRobin(cfg.Geometry, n)
		res := mustRun(t, cfg, Options{}, reqs)
		perArch[cfg.Arch] = res.AverageCyclesPerAccess()
	}
	if !(perArch[dram.SALPMASA] < perArch[dram.SALP2] &&
		perArch[dram.SALP2] < perArch[dram.SALP1] &&
		perArch[dram.SALP1] < perArch[dram.DDR3]) {
		t.Errorf("subarray interleave ordering violated: %v", perArch)
	}
	// DDR3 cannot exploit subarrays: must behave like row conflicts.
	trc := float64(dram.DDR3Config().Timing.TRC)
	if d := perArch[dram.DDR3]; d < trc-1 || d > trc+3 {
		t.Errorf("DDR3 subarray interleave = %.2f cycles/access, want ~tRC (%v)", d, trc)
	}
}

func TestBankInterleaveFasterThanConflict(t *testing.T) {
	cfg := dram.DDR3Config()
	const n = 512
	reqs := roundRobin(n,
		func(i int) int { return i % 8 },
		func(i int) int { return i / 8 })
	res := mustRun(t, cfg, Options{}, reqs)
	bank := res.AverageCyclesPerAccess()
	trc := float64(cfg.Timing.TRC)
	if bank >= trc/2 {
		t.Errorf("8-way bank interleave = %.2f cycles/access, want well below tRC (%v)", bank, trc)
	}
	if bank < float64(cfg.Timing.TCCD) {
		t.Errorf("bank interleave %.2f below bus limit %d", bank, cfg.Timing.TCCD)
	}
}

func TestBankInterleaveRespectsTRRDAndFAW(t *testing.T) {
	cfg := dram.DDR3Config()
	const n = 400
	reqs := roundRobin(n,
		func(i int) int { return i % 8 },
		func(i int) int { return i / 8 })
	res := mustRun(t, cfg, Options{}, reqs)
	// With fresh rows everywhere, ACT spacing is bounded below by both
	// tRRD and tFAW/4 per rank.
	var acts []int64
	for _, c := range res.Commands {
		if c.Kind == trace.CmdACT {
			acts = append(acts, c.Cycle)
		}
	}
	if len(acts) < 10 {
		t.Fatalf("expected many ACTs, got %d", len(acts))
	}
	for i := 1; i < len(acts); i++ {
		if acts[i]-acts[i-1] < int64(cfg.Timing.TRRD) {
			t.Fatalf("ACT pair %d violates tRRD: %d then %d", i, acts[i-1], acts[i])
		}
	}
	for i := 4; i < len(acts); i++ {
		if acts[i]-acts[i-4] < int64(cfg.Timing.TFAW) {
			t.Fatalf("ACT window %d violates tFAW: %d .. %d", i, acts[i-4], acts[i])
		}
	}
}

func TestMASAReaccessOpenSubarrayIsHitLike(t *testing.T) {
	cfg := dram.SALPMASAConfig()
	g := cfg.Geometry
	rps := g.RowsPerSubarray()
	// Open a row in subarrays 0 and 1, then bounce between them on the
	// already-open rows: MASA services these with SASEL + column access.
	reqs := []trace.Request{
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: 0, Column: 0}},
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: rps, Column: 0}},
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: 0, Column: 1}},
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: rps, Column: 1}},
	}
	res := mustRun(t, cfg, Options{ArrivalGap: 500}, reqs)
	tm := cfg.Timing
	hitLike := int64(tm.TSASEL + tm.CL + tm.TBL + 1)
	for i := 2; i < 4; i++ {
		if got := res.Serviced[i].Latency(); got > hitLike {
			t.Errorf("MASA re-access %d latency = %d, want <= %d (SASEL + column)", i, got, hitLike)
		}
	}
	if res.CommandCount(trace.CmdSASEL) == 0 {
		t.Error("MASA bounce pattern issued no SASEL commands")
	}
}

func TestSALP1ReaccessIsNotHitLike(t *testing.T) {
	// SALP-1 keeps only one subarray activated, so bouncing between two
	// subarrays re-activates every time.
	cfg := dram.SALP1Config()
	rps := cfg.Geometry.RowsPerSubarray()
	reqs := []trace.Request{
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: 0, Column: 0}},
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: rps, Column: 0}},
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: 0, Column: 1}},
	}
	res := mustRun(t, cfg, Options{ArrivalGap: 500}, reqs)
	tm := cfg.Timing
	hit := int64(tm.CL + tm.TBL)
	if got := res.Serviced[2].Latency(); got <= hit {
		t.Errorf("SALP-1 re-access latency = %d, must exceed hit latency %d", got, hit)
	}
	if res.CommandCount(trace.CmdSASEL) != 0 {
		t.Error("SALP-1 must not issue SASEL commands")
	}
}

func TestDDR3NeverIssuesSASEL(t *testing.T) {
	cfg := dram.DDR3Config()
	reqs := subarrayRoundRobin(cfg.Geometry, 64)
	res := mustRun(t, cfg, Options{}, reqs)
	if res.CommandCount(trace.CmdSASEL) != 0 {
		t.Error("DDR3 issued SASEL commands")
	}
}

func TestClassificationSequence(t *testing.T) {
	cfg := dram.SALP1Config()
	rps := cfg.Geometry.RowsPerSubarray()
	reqs := []trace.Request{
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: 0, Column: 0}},   // miss (cold)
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: 0, Column: 1}},   // hit
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: 1, Column: 0}},   // conflict
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: rps, Column: 0}}, // subarray switch
		{Op: trace.Read, Addr: dram.Address{Bank: 3, Row: 0, Column: 0}},   // bank switch
		{Op: trace.Read, Addr: dram.Address{Bank: 3, Row: 0, Column: 1}},   // hit
	}
	res := mustRun(t, cfg, Options{}, reqs)
	want := []trace.AccessKind{
		trace.AccessRowMiss, trace.AccessRowHit, trace.AccessRowConflict,
		trace.AccessSubarraySwitch, trace.AccessBankSwitch, trace.AccessRowHit,
	}
	for i, w := range want {
		if got := res.Serviced[i].Kind; got != w {
			t.Errorf("request %d classified %v, want %v", i, got, w)
		}
	}
}

func TestClosedRowPolicyForcesMisses(t *testing.T) {
	cfg := dram.DDR3Config()
	res := mustRun(t, cfg, Options{PagePolicy: ClosedRow}, readRow(0, 0, 16))
	for i, s := range res.Serviced {
		if s.Kind != trace.AccessRowMiss {
			t.Errorf("closed-row request %d classified %v, want row-miss", i, s.Kind)
		}
	}
	// Every access must have produced an ACT and a PRE.
	if got := res.CommandCount(trace.CmdACT); got != 16 {
		t.Errorf("ACT count = %d, want 16", got)
	}
	if got := res.CommandCount(trace.CmdPRE); got != 16 {
		t.Errorf("PRE count = %d, want 16", got)
	}
}

func TestOpenRowPolicySingleACTForRowStream(t *testing.T) {
	cfg := dram.DDR3Config()
	res := mustRun(t, cfg, Options{}, readRow(0, 0, 64))
	if got := res.CommandCount(trace.CmdACT); got != 1 {
		t.Errorf("ACT count = %d, want 1 for a single-row stream", got)
	}
	if got := res.CommandCount(trace.CmdPRE); got != 0 {
		t.Errorf("PRE count = %d, want 0 under open-row", got)
	}
}

func TestWriteThenReadTurnaround(t *testing.T) {
	cfg := dram.DDR3Config()
	reqs := []trace.Request{
		{Op: trace.Write, Addr: dram.Address{Bank: 0, Row: 0, Column: 0}},
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: 0, Column: 1}},
	}
	res := mustRun(t, cfg, Options{}, reqs)
	tm := cfg.Timing
	var wr, rd trace.Command
	for _, c := range res.Commands {
		switch c.Kind {
		case trace.CmdWR:
			wr = c
		case trace.CmdRD:
			rd = c
		}
	}
	wrEnd := wr.Cycle + int64(tm.CWL+tm.TBL)
	if rd.Cycle < wrEnd+int64(tm.TWTR) {
		t.Errorf("RD at %d violates tWTR after write burst end %d", rd.Cycle, wrEnd)
	}
}

func TestReadThenWriteSpacing(t *testing.T) {
	cfg := dram.DDR3Config()
	reqs := []trace.Request{
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: 0, Column: 0}},
		{Op: trace.Write, Addr: dram.Address{Bank: 0, Row: 0, Column: 1}},
	}
	res := mustRun(t, cfg, Options{}, reqs)
	tm := cfg.Timing
	var rd, wr trace.Command
	for _, c := range res.Commands {
		switch c.Kind {
		case trace.CmdRD:
			rd = c
		case trace.CmdWR:
			wr = c
		}
	}
	minGap := int64(tm.CL + tm.TBL + 2 - tm.CWL)
	if wr.Cycle-rd.Cycle < minGap {
		t.Errorf("WR at %d after RD at %d violates RD->WR spacing %d", wr.Cycle, rd.Cycle, minGap)
	}
}

func TestCommandBusOneCommandPerCycle(t *testing.T) {
	cfg := dram.SALPMASAConfig()
	reqs := subarrayRoundRobin(cfg.Geometry, 300)
	res := mustRun(t, cfg, Options{}, reqs)
	seen := make(map[int64]trace.Command)
	for _, c := range res.Commands {
		if prev, dup := seen[c.Cycle]; dup {
			t.Fatalf("command bus collision at cycle %d: %v and %v", c.Cycle, prev, c)
		}
		seen[c.Cycle] = c
	}
	// Run sorts the log, so cycles must also be non-decreasing.
	for i := 1; i < len(res.Commands); i++ {
		if res.Commands[i].Cycle < res.Commands[i-1].Cycle {
			t.Fatalf("command log unsorted: %v then %v", res.Commands[i-1], res.Commands[i])
		}
	}
}

func TestDataBusNeverOverlaps(t *testing.T) {
	cfg := dram.DDR3Config()
	reqs := roundRobin(300,
		func(i int) int { return i % 8 },
		func(i int) int { return i / 8 })
	res := mustRun(t, cfg, Options{}, reqs)
	tm := cfg.Timing
	var lastEnd int64 = -1
	for _, c := range res.Commands {
		var start int64
		switch c.Kind {
		case trace.CmdRD:
			start = c.Cycle + int64(tm.CL)
		case trace.CmdWR:
			start = c.Cycle + int64(tm.CWL)
		default:
			continue
		}
		if start < lastEnd {
			t.Fatalf("data burst at %d overlaps previous burst ending %d", start, lastEnd)
		}
		lastEnd = start + int64(tm.TBL)
	}
}

func TestRefreshIssuesREFCommands(t *testing.T) {
	cfg := dram.DDR3Config()
	// Stream long enough to cross several tREFI boundaries.
	n := 4 * cfg.Timing.TREFI / cfg.Timing.TRC
	reqs := make([]trace.Request, n)
	for i := range reqs {
		reqs[i] = trace.Request{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: i % 1024, Column: 0}}
	}
	res := mustRun(t, cfg, Options{EnableRefresh: true}, reqs)
	if res.Refreshes == 0 {
		t.Fatal("no refreshes issued over several tREFI intervals")
	}
	want := res.TotalCycles / int64(cfg.Timing.TREFI)
	if res.Refreshes < want-1 || res.Refreshes > want+1 {
		t.Errorf("refreshes = %d, want about %d", res.Refreshes, want)
	}
	if res.CommandCount(trace.CmdREF) != res.Refreshes {
		t.Errorf("REF commands (%d) != Refreshes (%d)", res.CommandCount(trace.CmdREF), res.Refreshes)
	}
}

func TestRefreshSlowsStream(t *testing.T) {
	cfg := dram.DDR3Config()
	n := 2 * cfg.Timing.TREFI / cfg.Timing.TRC
	reqs := make([]trace.Request, n)
	for i := range reqs {
		reqs[i] = trace.Request{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: i % 1024, Column: 0}}
	}
	with := mustRun(t, cfg, Options{EnableRefresh: true}, reqs)
	without := mustRun(t, cfg, Options{}, reqs)
	if with.TotalCycles <= without.TotalCycles {
		t.Errorf("refresh did not slow the stream: %d <= %d", with.TotalCycles, without.TotalCycles)
	}
}

func TestDeviceActiveCyclesBounded(t *testing.T) {
	cfg := dram.DDR3Config()
	res := mustRun(t, cfg, Options{}, readRow(0, 0, 100))
	if res.DeviceActiveCycles <= 0 {
		t.Error("expected positive device-active cycles")
	}
	if res.DeviceActiveCycles > res.TotalCycles {
		t.Errorf("active cycles %d exceed total %d", res.DeviceActiveCycles, res.TotalCycles)
	}
}

func TestRunResetsBetweenStreams(t *testing.T) {
	cfg := dram.DDR3Config()
	c, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Run(readRow(0, 0, 32))
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Run(readRow(0, 0, 32))
	if err != nil {
		t.Fatal(err)
	}
	if first.TotalCycles != second.TotalCycles {
		t.Errorf("identical streams differ after reset: %d vs %d", first.TotalCycles, second.TotalCycles)
	}
	if second.Serviced[0].Kind != trace.AccessRowMiss {
		t.Errorf("state leaked across Run: first access of second stream = %v", second.Serviced[0].Kind)
	}
}

func TestDeterminismProperty(t *testing.T) {
	// Any random request stream must service identically twice.
	cfg := dram.SALP2Config()
	g := cfg.Geometry
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs := make([]trace.Request, 200)
		for i := range reqs {
			op := trace.Read
			if rng.Intn(4) == 0 {
				op = trace.Write
			}
			reqs[i] = trace.Request{Op: op, Addr: dram.Address{
				Bank:   rng.Intn(g.Banks),
				Row:    rng.Intn(g.Rows),
				Column: rng.Intn(g.Columns),
			}}
		}
		c1, _ := New(cfg, Options{})
		c2, _ := New(cfg, Options{})
		r1, err1 := c1.Run(reqs)
		r2, err2 := c2.Run(reqs)
		if err1 != nil || err2 != nil {
			return false
		}
		if r1.TotalCycles != r2.TotalCycles || len(r1.Commands) != len(r2.Commands) {
			return false
		}
		for i := range r1.Commands {
			if r1.Commands[i] != r2.Commands[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestServiceLatencyAlwaysPositiveProperty(t *testing.T) {
	cfg := dram.SALPMASAConfig()
	g := cfg.Geometry
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs := make([]trace.Request, 100)
		for i := range reqs {
			reqs[i] = trace.Request{Op: trace.Read, Addr: dram.Address{
				Bank:   rng.Intn(g.Banks),
				Row:    rng.Intn(g.Rows),
				Column: rng.Intn(g.Columns),
			}}
		}
		c, _ := New(cfg, Options{})
		res, err := c.Run(reqs)
		if err != nil {
			return false
		}
		for _, s := range res.Serviced {
			if s.Latency() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func TestExtraOpenSubarrayAccounting(t *testing.T) {
	// MASA keeps several subarrays of a bank open: the subarray
	// round-robin stream must accrue extra-open cycles. DDR3 and SALP-1
	// never hold more than one subarray open.
	const n = 256
	masa := dram.SALPMASAConfig()
	resMASA := mustRun(t, masa, Options{}, subarrayRoundRobin(masa.Geometry, n))
	if resMASA.ExtraOpenSubarrayCycles <= 0 {
		t.Error("MASA subarray interleave accrued no extra-open cycles")
	}
	for _, cfg := range []dram.Config{dram.DDR3Config(), dram.SALP1Config()} {
		res := mustRun(t, cfg, Options{}, subarrayRoundRobin(cfg.Geometry, n))
		if res.ExtraOpenSubarrayCycles != 0 {
			t.Errorf("%v accrued %d extra-open cycles, want 0", cfg.Arch, res.ExtraOpenSubarrayCycles)
		}
	}
	// A bank round-robin stream keeps one subarray open per bank: no
	// extra-open cycles even on MASA.
	bankStream := roundRobin(n, func(i int) int { return i % 8 }, func(i int) int { return i / 8 })
	resBank := mustRun(t, masa, Options{}, bankStream)
	if resBank.ExtraOpenSubarrayCycles != 0 {
		t.Errorf("MASA bank interleave accrued %d extra-open cycles, want 0", resBank.ExtraOpenSubarrayCycles)
	}
}

func TestPagePolicyString(t *testing.T) {
	if OpenRow.String() != "open-row" || ClosedRow.String() != "closed-row" {
		t.Errorf("policy strings wrong: %q / %q", OpenRow, ClosedRow)
	}
}

func TestConfigAndOptionsAccessors(t *testing.T) {
	cfg := dram.SALP1Config()
	opt := Options{PagePolicy: ClosedRow, ArrivalGap: 7}
	c, err := New(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().Arch != dram.SALP1 {
		t.Errorf("Config().Arch = %v", c.Config().Arch)
	}
	if c.Options() != opt {
		t.Errorf("Options() = %+v, want %+v", c.Options(), opt)
	}
}

func TestAverageCyclesPerAccessEmpty(t *testing.T) {
	var r Result
	if got := r.AverageCyclesPerAccess(); got != 0 {
		t.Errorf("empty result average = %v, want 0", got)
	}
}

func TestResultHistogram(t *testing.T) {
	cfg := dram.DDR3Config()
	res := mustRun(t, cfg, Options{}, readRow(0, 0, 10))
	h := res.Histogram()
	if h[trace.AccessRowMiss] != 1 || h[trace.AccessRowHit] != 9 {
		t.Errorf("histogram = %v, want 1 miss + 9 hits", h)
	}
	var total int64
	for _, v := range h {
		total += v
	}
	if total != 10 {
		t.Errorf("histogram total = %d", total)
	}
}
