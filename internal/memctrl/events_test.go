package memctrl

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"drmap/internal/dram"
	"drmap/internal/sim"
	"drmap/internal/trace"
)

// agentRun drives reqs through a fresh agent on eng and returns the
// finalized result.
func agentRun(t *testing.T, eng sim.Engine, cfg dram.Config, opt Options, reqs []trace.Request) *Result {
	t.Helper()
	c, err := New(cfg, opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, err := NewAgent(eng, c, reqs)
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatalf("engine run: %v", err)
	}
	res, err := a.Result()
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	return res
}

// TestEnginesBitForBitAcrossOptionMatrix is the refactor's pinning
// contract: for every architecture x scheduler x page policy x arrival
// gap x refresh combination, the monolithic Run, a serial-engine agent,
// and a parallel-engine agent produce byte-identical results - command
// stream (kind, cycle, address), cycle counters, energy accounting
// inputs and all (reflect.DeepEqual over the full Result).
func TestEnginesBitForBitAcrossOptionMatrix(t *testing.T) {
	const n = 192
	for _, arch := range dram.Archs {
		cfg := dram.ConfigFor(arch)
		reqs := randomRequests(4242, n, cfg.Geometry)
		for _, sched := range []Scheduler{FCFS, FRFCFS} {
			for _, pp := range []PagePolicy{OpenRow, ClosedRow} {
				for _, opt := range []Options{
					{Scheduler: sched, PagePolicy: pp},
					{Scheduler: sched, PagePolicy: pp, ArrivalGap: 3},
					{Scheduler: sched, PagePolicy: pp, EnableRefresh: true},
				} {
					name := fmt.Sprintf("%v/%v/%v/gap=%d/refresh=%v", arch, sched, pp, opt.ArrivalGap, opt.EnableRefresh)

					c, err := New(cfg, opt)
					if err != nil {
						t.Fatalf("%s: New: %v", name, err)
					}
					mono, err := c.Run(reqs)
					if err != nil {
						t.Fatalf("%s: Run: %v", name, err)
					}
					serial := agentRun(t, sim.NewSerialEngine(), cfg, opt, reqs)
					parallel := agentRun(t, sim.NewParallelEngine(4), cfg, opt, reqs)

					if !reflect.DeepEqual(mono, serial) {
						t.Errorf("%s: serial-engine agent diverged from Run", name)
					}
					if !reflect.DeepEqual(serial, parallel) {
						t.Errorf("%s: parallel-engine agent diverged from serial", name)
					}
				}
			}
		}
	}
}

// TestAgentOnDoneFiresOnce: the completion hook fires exactly once when
// the last arrival finalizes, and immediately when set afterwards.
func TestAgentOnDoneFiresOnce(t *testing.T) {
	cfg := dram.ConfigFor(dram.DDR3)
	c, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewSerialEngine()
	a, err := NewAgent(eng, c, randomRequests(1, 16, cfg.Geometry))
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	a.SetOnDone(func() { fired++ })
	if err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("OnDone fired %d times, want 1", fired)
	}
	late := 0
	a.SetOnDone(func() { late++ })
	if late != 1 {
		t.Errorf("OnDone set after completion fired %d times, want immediate 1", late)
	}
}

// TestAgentEmptyStreamFinalizesImmediately: a requestless stream is
// done at construction with the reset controller's empty result.
func TestAgentEmptyStreamFinalizesImmediately(t *testing.T) {
	cfg := dram.ConfigFor(dram.SALP1)
	c, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAgent(sim.NewSerialEngine(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Done() || a.Pending() != 0 {
		t.Fatalf("empty-stream agent done=%v pending=%d", a.Done(), a.Pending())
	}
	res, err := a.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != 0 || len(res.Commands) != 0 || len(res.Serviced) != 0 {
		t.Errorf("empty stream produced non-empty result %+v", res)
	}
}

// TestAgentRejectsForeignEvent: events from another agent (or another
// type entirely) fail the run instead of corrupting controller state.
func TestAgentRejectsForeignEvent(t *testing.T) {
	cfg := dram.ConfigFor(dram.DDR3)
	mk := func() *Agent {
		c, err := New(cfg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAgent(sim.NewSerialEngine(), c, nil)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := mk(), mk()
	if err := a.Handle(&arrival{agent: b}); err == nil {
		t.Error("agent handled a foreign agent's arrival")
	}
	if err := a.Handle(&arrival{agent: a, idx: 5}); err == nil {
		t.Error("agent handled an out-of-order arrival")
	}
}
