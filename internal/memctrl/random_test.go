package memctrl

import (
	"math/rand"
	"testing"

	"drmap/internal/dram"
	"drmap/internal/trace"
)

// randomRequests builds a seeded random read/write request stream that
// stays inside the geometry, in the spirit of akita's MemAccessAgent
// random-traffic harnesses: the same seed always produces the same
// stream.
func randomRequests(seed int64, n int, g dram.Geometry) []trace.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]trace.Request, n)
	for i := range reqs {
		op := trace.Read
		if rng.Intn(2) == 1 {
			op = trace.Write
		}
		reqs[i] = trace.Request{
			Op: op,
			Addr: dram.Address{
				Channel: rng.Intn(g.Channels),
				Rank:    rng.Intn(g.Ranks),
				Bank:    rng.Intn(g.Banks),
				Row:     rng.Intn(g.Rows),
				Column:  rng.Intn(g.Columns),
			},
		}
	}
	return reqs
}

// TestRandomAccessAcceptance drives seeded random request streams
// through every architecture and checks the acceptance invariants:
// every request completes with a column command, per-request cycles are
// consistent, per-channel data bursts never regress, and the command
// log is cycle-monotonic.
func TestRandomAccessAcceptance(t *testing.T) {
	const n = 512
	for _, arch := range dram.Archs {
		for _, seed := range []int64{1, 42, 20200720} {
			cfg := dram.ConfigFor(arch)
			reqs := randomRequests(seed, n, cfg.Geometry)
			c, err := New(cfg, Options{RetainCommands: true})
			if err != nil {
				t.Fatalf("%v: New: %v", arch, err)
			}
			res, err := c.Run(reqs)
			if err != nil {
				t.Fatalf("%v seed %d: Run: %v", arch, seed, err)
			}

			// Every request completes, in FCFS order.
			if len(res.Serviced) != n {
				t.Fatalf("%v seed %d: serviced %d of %d requests", arch, seed, len(res.Serviced), n)
			}
			if got := res.CommandCount(trace.CmdRD) + res.CommandCount(trace.CmdWR); got != n {
				t.Errorf("%v seed %d: %d column commands for %d requests", arch, seed, got, n)
			}

			// Cycle accounting is consistent and monotonic.
			var maxDone int64
			lastDone := make(map[int]int64) // per channel
			for i, s := range res.Serviced {
				if s.Request != reqs[i] {
					t.Fatalf("%v seed %d: request %d reordered under FCFS", arch, seed, i)
				}
				if s.IssueCycle < 0 || s.DoneCycle <= s.IssueCycle {
					t.Errorf("%v seed %d: request %d cycles [%d, %d]", arch, seed, i, s.IssueCycle, s.DoneCycle)
				}
				ch := s.Request.Addr.Channel
				if s.DoneCycle <= lastDone[ch] {
					t.Errorf("%v seed %d: request %d data burst end %d not after previous %d on channel %d",
						arch, seed, i, s.DoneCycle, lastDone[ch], ch)
				}
				lastDone[ch] = s.DoneCycle
				if s.DoneCycle > maxDone {
					maxDone = s.DoneCycle
				}
			}
			if res.TotalCycles != maxDone {
				t.Errorf("%v seed %d: TotalCycles %d != last burst end %d", arch, seed, res.TotalCycles, maxDone)
			}
			var prev int64 = -1
			for i, cmd := range res.Commands {
				if cmd.Cycle < prev {
					t.Fatalf("%v seed %d: command %d at cycle %d before predecessor at %d", arch, seed, i, cmd.Cycle, prev)
				}
				prev = cmd.Cycle
			}
			if res.DeviceActiveCycles <= 0 || res.DeviceActiveCycles > res.TotalCycles {
				t.Errorf("%v seed %d: device active cycles %d outside (0, %d]",
					arch, seed, res.DeviceActiveCycles, res.TotalCycles)
			}
		}
	}
}

// TestRandomAccessReproducible: a fixed seed reproduces the identical
// command stream on a fresh controller; a different seed does not.
func TestRandomAccessReproducible(t *testing.T) {
	for _, arch := range dram.Archs {
		cfg := dram.ConfigFor(arch)
		run := func(seed int64) *Result {
			c, err := New(cfg, Options{RetainCommands: true})
			if err != nil {
				t.Fatalf("%v: New: %v", arch, err)
			}
			res, err := c.Run(randomRequests(seed, 256, cfg.Geometry))
			if err != nil {
				t.Fatalf("%v: Run: %v", arch, err)
			}
			return res
		}
		a, b := run(7), run(7)
		if len(a.Commands) != len(b.Commands) {
			t.Fatalf("%v: same seed produced %d vs %d commands", arch, len(a.Commands), len(b.Commands))
		}
		for i := range a.Commands {
			if a.Commands[i] != b.Commands[i] {
				t.Fatalf("%v: command %d differs across identical runs: %v vs %v",
					arch, i, a.Commands[i], b.Commands[i])
			}
		}
		if a.TotalCycles != b.TotalCycles || a.DeviceActiveCycles != b.DeviceActiveCycles {
			t.Errorf("%v: same seed produced different accounting", arch)
		}
		c := run(8)
		same := len(a.Commands) == len(c.Commands)
		if same {
			identical := true
			for i := range a.Commands {
				if a.Commands[i] != c.Commands[i] {
					identical = false
					break
				}
			}
			if identical {
				t.Errorf("%v: different seeds produced identical command streams", arch)
			}
		}
	}
}

// TestRandomAccessSchedulersAgreeOnWork: FR-FCFS may reorder service
// but must complete the same request set with the same column-command
// census as FCFS.
func TestRandomAccessSchedulersAgreeOnWork(t *testing.T) {
	cfg := dram.SALPMASAConfig()
	reqs := randomRequests(99, 256, cfg.Geometry)
	var reads, writes int64
	for _, r := range reqs {
		if r.Op == trace.Read {
			reads++
		} else {
			writes++
		}
	}
	for _, sched := range []Scheduler{FCFS, FRFCFS} {
		c, err := New(cfg, Options{Scheduler: sched})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(reqs)
		if err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		if len(res.Serviced) != len(reqs) {
			t.Errorf("%v: serviced %d of %d", sched, len(res.Serviced), len(reqs))
		}
		if got := res.CommandCount(trace.CmdRD); got != reads {
			t.Errorf("%v: %d RD commands, want %d", sched, got, reads)
		}
		if got := res.CommandCount(trace.CmdWR); got != writes {
			t.Errorf("%v: %d WR commands, want %d", sched, got, writes)
		}
	}
}
