package memctrl

import "math/bits"

// busWindow tracks the occupied command-bus cycles of one channel as a
// sliding bitset, replacing the map[int64]struct{} + linear t++ probe
// of the original issueCmd. Bit b of words[i] covers cycle
// base + 64*i + b; a set bit means the cycle is taken.
//
// Two invariants make the window exact against the map semantics even
// though command issue is only *near*-monotonic (the scheduler can slot
// a command arbitrarily far before the frontier, e.g. a MASA SASEL
// probed from cycle 0):
//
//   - every cycle below base is occupied: base only ever advances
//     across words that were completely full, so clamping a probe up to
//     the window start lands exactly where the map's t++ walk would;
//   - words[:lo] are completely full (the low watermark), letting the
//     same clamp skip the occupied prefix inside the window without
//     scanning it.
//
// When a probe lands past the current window - a refresh stall or a
// large arrival gap jumping the frontier - the window grows to cover
// it, first compacting the full prefix away so capacity tracks the
// live span between the watermark and the frontier rather than the
// whole run.
type busWindow struct {
	base  int64 // cycle of bit 0 of words[0]; all cycles < base are taken
	lo    int   // words[:lo] are all ones (low watermark)
	words []uint64
}

// watermark returns the first cycle that could possibly be free.
func (w *busWindow) watermark() int64 { return w.base + int64(w.lo)<<6 }

// reserve claims the first free cycle at or after earliest and returns
// it - exactly the cycle the map-based probe would have claimed.
// earliest must be >= 0 (issueCmd clamps before calling).
func (w *busWindow) reserve(earliest int64) int64 {
	t := earliest
	if wm := w.watermark(); t < wm {
		t = wm
	}
	if int64(len(w.words))<<6 <= t-w.base {
		w.ensure(t)
	}
	idx := int((t - w.base) >> 6)
	mask := ^uint64(0) << (uint(t-w.base) & 63)
	for {
		if idx >= len(w.words) {
			cyc := w.base + int64(idx)<<6
			w.ensure(cyc) // may compact, shifting base
			idx = int((cyc - w.base) >> 6)
		}
		if free := ^w.words[idx] & mask; free != 0 {
			b := bits.TrailingZeros64(free)
			w.words[idx] |= 1 << uint(b)
			for w.lo < len(w.words) && w.words[w.lo] == ^uint64(0) {
				w.lo++
			}
			return w.base + int64(idx)<<6 + int64(b)
		}
		idx++
		mask = ^uint64(0)
	}
}

// ensure compacts the full prefix away and grows words so the window
// covers cycle t.
func (w *busWindow) ensure(t int64) {
	if w.lo > 0 {
		n := copy(w.words, w.words[w.lo:])
		clear(w.words[n:])
		w.base += int64(w.lo) << 6
		w.lo = 0
	}
	need := int((t-w.base)>>6) + 1
	if need <= len(w.words) {
		return
	}
	if need <= cap(w.words) {
		old := len(w.words)
		w.words = w.words[:need]
		clear(w.words[old:])
		return
	}
	newCap := 2 * cap(w.words)
	if newCap < need {
		newCap = need
	}
	if newCap < 64 {
		newCap = 64
	}
	grown := make([]uint64, need, newCap)
	copy(grown, w.words)
	w.words = grown
}

// reset clears the window for a fresh run, keeping the allocated
// capacity for reuse.
func (w *busWindow) reset() {
	w.base, w.lo = 0, 0
	clear(w.words)
}
