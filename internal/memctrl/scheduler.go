package memctrl

import (
	"fmt"

	"drmap/internal/trace"
)

// Scheduler selects the order in which queued requests are serviced.
type Scheduler int

const (
	// FCFS services requests strictly in arrival order - the paper's
	// Table II configuration.
	FCFS Scheduler = iota
	// FRFCFS (first-ready, first-come-first-served) looks ahead into a
	// window of queued requests and services row-buffer hits first,
	// falling back to the oldest request; a starvation cap bounds how
	// often the head may be bypassed.
	FRFCFS
)

// String names the scheduler.
func (s Scheduler) String() string {
	if s == FRFCFS {
		return "FR-FCFS"
	}
	return "FCFS"
}

// frfcfsWindow is the lookahead depth of the FR-FCFS scheduler.
const frfcfsWindow = 16

// frfcfsStarvationCap bounds how many times the oldest request can be
// bypassed by younger row hits before it is forced.
const frfcfsStarvationCap = 4

// schedule reorders the request stream according to the configured
// scheduler, returning the service order as indices into reqs.
// FCFS is the identity; FR-FCFS greedily prefers requests that hit the
// currently open row of their bank/subarray, tracked against a shadow
// row-buffer state.
func (c *Controller) schedule(reqs []trace.Request) []int {
	order := make([]int, 0, len(reqs))
	if c.opt.Scheduler != FRFCFS {
		for i := range reqs {
			order = append(order, i)
		}
		return order
	}

	// Shadow open-row state per (bank, state-subarray).
	type slot struct{ bank, sa int }
	open := make(map[slot]int)
	pending := make([]int, 0, len(reqs))
	for i := range reqs {
		pending = append(pending, i)
	}
	headStarved := 0
	for len(pending) > 0 {
		window := len(pending)
		if window > frfcfsWindow {
			window = frfcfsWindow
		}
		pick := 0
		if headStarved < frfcfsStarvationCap {
			for w := 0; w < window; w++ {
				r := reqs[pending[w]]
				sl := slot{bank: c.bankIndex(r.Addr), sa: c.stateSubarray(r.Addr)}
				if row, ok := open[sl]; ok && row == r.Addr.Row {
					pick = w
					break
				}
			}
		}
		if pick == 0 {
			headStarved = 0
		} else {
			headStarved++
		}
		idx := pending[pick]
		r := reqs[idx]
		sl := slot{bank: c.bankIndex(r.Addr), sa: c.stateSubarray(r.Addr)}
		open[sl] = r.Addr.Row
		order = append(order, idx)
		pending = append(pending[:pick], pending[pick+1:]...)
	}
	if len(order) != len(reqs) {
		panic(fmt.Sprintf("memctrl: scheduler lost requests: %d of %d", len(order), len(reqs)))
	}
	return order
}
