// Package memctrl implements a command-level, cycle-accurate DRAM memory
// controller in the spirit of Ramulator (Kim et al., IEEE CAL 2016). It
// services burst-sized requests in FCFS order under an open-row (or
// optionally closed-row) page policy, translating each request into ACT,
// PRE, RD, WR and SASEL commands whose issue cycles respect the JEDEC
// DDR3 timing constraints and - for the SALP architectures of Kim et al.
// (ISCA 2012) - the inter-subarray overlap rules of SALP-1, SALP-2 and
// SALP-MASA.
//
// The controller is the "cycle-accurate DRAM simulator" box of the
// DRMap paper's tool flow (Fig. 8): package profile drives it with
// microbench patterns to characterize the per-access-condition cycle
// counts of Fig. 1, and tests use it to validate the analytical model.
package memctrl

import (
	"context"
	"fmt"

	"drmap/internal/dram"
	"drmap/internal/sim"
	"drmap/internal/trace"
)

// PagePolicy selects what happens to a row after a column access.
type PagePolicy int

const (
	// OpenRow leaves rows open until a conflict or refresh closes them.
	// This is the policy of the paper's Table II.
	OpenRow PagePolicy = iota
	// ClosedRow precharges a bank as soon as its access completes,
	// modeling an auto-precharge controller. Used by the row-miss
	// characterization and by the page-policy ablation.
	ClosedRow
)

// String names the policy.
func (p PagePolicy) String() string {
	if p == ClosedRow {
		return "closed-row"
	}
	return "open-row"
}

// CommandObserver receives every command the controller generates, in
// generation order (not sorted by issue cycle), as a streaming
// alternative to retaining the full log. Implementations must not
// retain references past the callback and must be cheap: they run
// inside the controller's hot loop.
type CommandObserver interface {
	ObserveCommand(trace.Command)
}

// Options tune controller behaviour.
type Options struct {
	PagePolicy    PagePolicy
	Scheduler     Scheduler
	EnableRefresh bool
	// ArrivalGap, when positive, spaces request arrivals by that many
	// cycles: request i may not issue its first command before
	// i*ArrivalGap. A gap larger than any service latency isolates each
	// request, which is how package profile measures the per-condition
	// isolated latencies of Fig. 1; zero (the default) lets requests
	// stream back-to-back.
	ArrivalGap int
	// RetainCommands keeps the full per-command log in Result.Commands.
	// Off by default: the characterize/simulate/sweep paths only
	// consume the per-kind census and cycle counters, and the log is by
	// far the largest allocation of a run. Turn it on for trace export
	// and for tests that inspect individual commands.
	RetainCommands bool
	// Observer, when set, streams every generated command to the
	// callback regardless of RetainCommands.
	Observer CommandObserver
	// DiscardServiced drops the per-request serviced log from the
	// Result; ServicedCount and every cycle counter are still
	// maintained. The simulate path sets it - its layer reduction only
	// consumes counters - removing the last per-request retention of a
	// run. Leave it unset for characterization (per-kind latency means)
	// and trace export (histograms).
	DiscardServiced bool
}

// Result is the outcome of servicing a request stream.
type Result struct {
	// Commands is the full command log, sorted by issue cycle. Nil
	// unless Options.RetainCommands was set - the census in KindCounts
	// and the cycle counters below are always maintained.
	Commands []trace.Command
	// Serviced logs each request's access condition and issue/done
	// cycles, in service order. Nil when Options.DiscardServiced is
	// set; ServicedCount is maintained either way.
	Serviced      []trace.ServicedRequest
	ServicedCount int64
	// KindCounts is the per-kind command census, indexed by
	// trace.CommandKind and maintained incrementally during the run.
	KindCounts [trace.NumCommandKinds]int64
	// TotalCycles is the cycle at which the last data burst left the bus.
	TotalCycles int64
	// DeviceActiveCycles counts cycles during which at least one bank of
	// the device had an open row (drives active-standby background
	// energy in package vampire).
	DeviceActiveCycles int64
	// ExtraOpenSubarrayCycles accumulates, over all banks, the
	// cycle-weighted count of open subarrays beyond the first in each
	// bank. Only SALP-2 and MASA can make it non-zero; it drives the
	// subarray latch background energy in package vampire.
	ExtraOpenSubarrayCycles int64
	// Refreshes counts REF commands issued.
	Refreshes int64
}

// CommandCount returns the number of commands of the given kind, from
// the incrementally maintained census - O(1), and available whether or
// not the full log was retained.
func (r *Result) CommandCount(kind trace.CommandKind) int64 {
	if kind < 0 || int(kind) >= len(r.KindCounts) {
		return 0
	}
	return r.KindCounts[kind]
}

// AverageCyclesPerAccess returns TotalCycles divided by the number of
// serviced requests; it is the steady-state cost metric reported by the
// Fig. 1 characterization.
func (r *Result) AverageCyclesPerAccess() float64 {
	if r.ServicedCount == 0 {
		return 0
	}
	return float64(r.TotalCycles) / float64(r.ServicedCount)
}

// Histogram counts serviced requests by access condition.
func (r *Result) Histogram() map[trace.AccessKind]int64 {
	h := make(map[trace.AccessKind]int64)
	for _, s := range r.Serviced {
		h[s.Kind]++
	}
	return h
}

// subarrayState tracks one subarray's row buffer.
type subarrayState struct {
	openRow   int   // -1 when closed
	lastACT   int64 // issue cycle of the most recent ACT
	lastPRE   int64 // issue cycle of the most recent PRE
	readyCol  int64 // earliest legal RD/WR (ACT + tRCD)
	lastRD    int64 // issue cycle of the most recent RD
	lastWREnd int64 // cycle the most recent write burst finished
	lastUse   int64 // recency for victim selection
}

// bankState tracks one bank and its subarrays.
type bankState struct {
	sub      []subarrayState
	selected int   // MASA: subarray currently driving the global bitlines
	lastACT  int64 // most recent ACT to any subarray of this bank
	// lastOpenEvent is the cycle of the last change to the bank's open
	// subarray count, for latch-energy accounting.
	lastOpenEvent int64
}

func (b *bankState) openCount() int {
	n := 0
	for i := range b.sub {
		if b.sub[i].openRow >= 0 {
			n++
		}
	}
	return n
}

// Controller services request streams against one DRAM configuration.
// It is not safe for concurrent use; create one per goroutine.
type Controller struct {
	cfg dram.Config
	opt Options

	// stateSubarrays is the number of independently tracked subarrays
	// per bank: 1 for DDR3 (the controller cannot see subarrays), the
	// geometric count for SALP variants.
	stateSubarrays int
	// maxOpen caps concurrently activated subarrays per bank:
	// 1 for DDR3 and SALP-1, 2 for SALP-2, all for MASA.
	maxOpen int

	banks []bankState // flattened [channel][rank][bank]
	// subBacking is the flat backing array the banks' sub slices cut
	// into, so a reset re-initializes in place instead of reallocating
	// one slice per bank.
	subBacking []subarrayState

	// bus records occupied command-bus cycles per channel as a sliding
	// bitset window. The controller schedules each command at the first
	// free cycle that satisfies its timing constraints; commands
	// generated for a later request may therefore slot in front of an
	// earlier request's tail, exactly as a real FCFS controller with a
	// visible queue window issues them.
	bus         []busWindow
	dataBusFree []int64   // per channel: cycle the data bus frees up
	lastColCmd  []int64   // per channel: issue cycle of last RD/WR
	lastRDIssue []int64   // per rank (flattened): last RD issue
	lastWREnd   []int64   // per rank: last write burst end
	actTimes    [][]int64 // per rank: recent ACT issue cycles (tFAW window)

	nextRefresh int64
	reqFloor    int64
	// reqFirstCycle is the issue cycle of the first command generated
	// for the request in flight (noCycle before any), replacing the
	// log-indexing the per-request start cycle used when retention was
	// unconditional.
	reqFirstCycle int64

	deviceOpenBanks  int
	deviceActiveFrom int64
	result           Result

	prevAddr    dram.Address
	hasPrevAddr bool

	// busProbe, when non-nil, observes every bus reservation as
	// (channel, earliest free cycle requested, cycle granted). It is a
	// test seam: the equivalence suite replays the recorded earliest
	// cycles through the retired map-based probe loop and asserts the
	// bitset window granted the identical cycle. Nil in production.
	busProbe func(ch int, earliest, issued int64)
}

// New builds a controller for the configuration. It returns an error if
// the configuration is invalid.
func New(cfg dram.Config, opt Options) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("memctrl: %w", err)
	}
	c := &Controller{cfg: cfg, opt: opt}
	c.reset()
	return c, nil
}

func (c *Controller) reset() {
	g := c.cfg.Geometry
	switch c.cfg.Arch {
	case dram.DDR3:
		c.stateSubarrays = 1
		c.maxOpen = 1
	case dram.SALP1:
		c.stateSubarrays = g.Subarrays
		c.maxOpen = 1
	case dram.SALP2:
		c.stateSubarrays = g.Subarrays
		c.maxOpen = 2
	case dram.SALPMASA:
		c.stateSubarrays = g.Subarrays
		c.maxOpen = g.Subarrays
	}

	// Everything below reuses prior capacity: New and NewAgent both
	// reset, and the simulate path builds one controller per tile
	// stream, so re-initializing in place instead of reallocating is a
	// large share of the per-run allocation win.
	nBanks := g.Channels * g.Ranks * g.Banks
	nSubs := nBanks * c.stateSubarrays
	if cap(c.subBacking) < nSubs {
		c.subBacking = make([]subarrayState, nSubs)
	}
	c.subBacking = c.subBacking[:nSubs]
	if cap(c.banks) < nBanks {
		c.banks = make([]bankState, nBanks)
	}
	c.banks = c.banks[:nBanks]
	for i := range c.banks {
		sub := c.subBacking[i*c.stateSubarrays : (i+1)*c.stateSubarrays]
		for s := range sub {
			sub[s] = subarrayState{
				openRow: -1, lastACT: -1 << 40, lastPRE: -1 << 40,
				readyCol: 0, lastRD: -1 << 40, lastWREnd: -1 << 40,
			}
		}
		c.banks[i] = bankState{
			sub:      sub,
			selected: -1,
			lastACT:  -1 << 40,
		}
	}
	if cap(c.bus) < g.Channels {
		c.bus = make([]busWindow, g.Channels)
	}
	c.bus = c.bus[:g.Channels]
	for i := range c.bus {
		c.bus[i].reset()
	}
	c.dataBusFree = resetInt64(c.dataBusFree, g.Channels, 0)
	c.lastColCmd = resetInt64(c.lastColCmd, g.Channels, -1<<40)
	nRanks := g.Channels * g.Ranks
	c.lastRDIssue = resetInt64(c.lastRDIssue, nRanks, -1<<40)
	c.lastWREnd = resetInt64(c.lastWREnd, nRanks, -1<<40)
	if cap(c.actTimes) < nRanks {
		c.actTimes = make([][]int64, nRanks)
	}
	c.actTimes = c.actTimes[:nRanks]
	for i := range c.actTimes {
		c.actTimes[i] = c.actTimes[i][:0]
	}
	c.nextRefresh = int64(c.cfg.Timing.TREFI)
	c.reqFloor = 0
	c.reqFirstCycle = noCycle
	c.deviceOpenBanks = 0
	c.deviceActiveFrom = 0
	c.result = Result{}
	c.hasPrevAddr = false
}

// resetInt64 resizes s to n elements of value v, reusing capacity.
func resetInt64(s []int64, n int, v int64) []int64 {
	if cap(s) < n {
		s = make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = v
	}
	return s
}

func (c *Controller) bankIndex(a dram.Address) int {
	g := c.cfg.Geometry
	return (a.Channel*g.Ranks+a.Rank)*g.Banks + a.Bank
}

func (c *Controller) rankIndex(a dram.Address) int {
	return a.Channel*c.cfg.Geometry.Ranks + a.Rank
}

// stateSubarray maps an address to the controller-visible subarray index.
func (c *Controller) stateSubarray(a dram.Address) int {
	if c.stateSubarrays == 1 {
		return 0
	}
	return a.Subarray(c.cfg.Geometry)
}

// Run services the requests and returns the timing result. The
// controller is reset before the stream starts; the configured
// scheduler decides the service order (FCFS preserves arrival order).
// The stream runs as arrival events on a serial discrete-event engine
// (package sim) via an Agent - one component, so the engine delivers
// the events in exactly the order the pre-event monolithic loop
// serviced them, and the result is bit-for-bit what it produced.
func (c *Controller) Run(reqs []trace.Request) (*Result, error) {
	eng := sim.NewSerialEngine()
	agent, err := NewAgent(eng, c, reqs)
	if err != nil {
		return nil, err
	}
	if err := eng.Run(context.Background()); err != nil {
		return nil, err
	}
	return agent.Result()
}

// classify derives the Fig. 1 access condition for a request, given the
// previous request in the stream and the current row-buffer state.
func (c *Controller) classify(r trace.Request) trace.AccessKind {
	bank := &c.banks[c.bankIndex(r.Addr)]
	sa := c.stateSubarray(r.Addr)
	geomSA := r.Addr.Subarray(c.cfg.Geometry)
	if c.hasPrevAddr {
		prev := c.prevAddr
		if prev.Channel != r.Addr.Channel || prev.Rank != r.Addr.Rank || prev.Bank != r.Addr.Bank {
			return trace.AccessBankSwitch
		}
		if prev.Subarray(c.cfg.Geometry) != geomSA {
			return trace.AccessSubarraySwitch
		}
	}
	switch {
	case bank.sub[sa].openRow == r.Addr.Row:
		return trace.AccessRowHit
	case bank.sub[sa].openRow < 0:
		return trace.AccessRowMiss
	default:
		return trace.AccessRowConflict
	}
}

// noCycle marks "no command recorded yet" for reqFirstCycle; issue
// cycles are always >= 0.
const noCycle = int64(-1)

// issueCmd places a command on the channel's command bus at the first
// free cycle at or after `earliest`, honouring refresh windows, records
// it, and returns the issue cycle.
func (c *Controller) issueCmd(kind trace.CommandKind, addr dram.Address, earliest int64) int64 {
	t := earliest
	if t < c.reqFloor {
		t = c.reqFloor
	}
	if t < 0 {
		t = 0
	}
	if c.opt.EnableRefresh {
		t = c.applyRefresh(addr, t)
	}
	earliestFree := t
	t = c.bus[addr.Channel].reserve(t)
	if c.busProbe != nil {
		c.busProbe(addr.Channel, earliestFree, t)
	}
	c.record(trace.Command{Kind: kind, Addr: addr, Cycle: t})
	return t
}

// record maintains the per-kind census, the in-flight request's first
// command cycle, the optional full log, and the optional observer for
// one generated command.
func (c *Controller) record(cmd trace.Command) {
	c.result.KindCounts[cmd.Kind]++
	if c.reqFirstCycle == noCycle {
		c.reqFirstCycle = cmd.Cycle
	}
	if c.opt.RetainCommands {
		c.result.Commands = append(c.result.Commands, cmd)
	}
	if c.opt.Observer != nil {
		c.opt.Observer.ObserveCommand(cmd)
	}
}

// applyRefresh blocks commands that would land inside a refresh window
// and closes all rows of the refreshed rank at each tREFI boundary.
func (c *Controller) applyRefresh(addr dram.Address, t int64) int64 {
	tm := c.cfg.Timing
	for t >= c.nextRefresh {
		refCycle := c.nextRefresh
		// All banks are precharged by the refresh; account and close.
		c.closeAllRows(refCycle)
		c.record(trace.Command{
			Kind: trace.CmdREF, Addr: dram.Address{Channel: addr.Channel, Rank: addr.Rank}, Cycle: refCycle,
		})
		c.result.Refreshes++
		end := refCycle + int64(tm.TRFC)
		if t < end {
			t = end
		}
		c.nextRefresh += int64(tm.TREFI)
	}
	return t
}

func (c *Controller) closeAllRows(cycle int64) {
	for bi := range c.banks {
		b := &c.banks[bi]
		open := b.openCount()
		if open == 0 {
			continue
		}
		c.accountExtraOpen(b, cycle)
		for s := range b.sub {
			if b.sub[s].openRow >= 0 {
				b.sub[s].openRow = -1
				b.sub[s].lastPRE = cycle
			}
		}
		b.selected = -1
		c.noteBankClosed(cycle)
	}
}

// accountExtraOpen charges the latch accounting of a bank up to `now`,
// given its current open-subarray count, before that count changes.
// Command issue cycles are not globally monotonic (the scheduler can
// slot a command before an earlier-generated one), so stale intervals
// are skipped rather than charged negatively.
func (c *Controller) accountExtraOpen(bank *bankState, now int64) {
	if now <= bank.lastOpenEvent {
		return
	}
	if extra := int64(bank.openCount()) - 1; extra > 0 {
		c.result.ExtraOpenSubarrayCycles += extra * (now - bank.lastOpenEvent)
	}
	bank.lastOpenEvent = now
}

// noteBankOpened / noteBankClosed maintain the device-active accounting
// used for background energy.
func (c *Controller) noteBankOpened(cycle int64) {
	if c.deviceOpenBanks == 0 {
		c.deviceActiveFrom = cycle
	}
	c.deviceOpenBanks++
}

func (c *Controller) noteBankClosed(cycle int64) {
	c.deviceOpenBanks--
	if c.deviceOpenBanks == 0 {
		c.result.DeviceActiveCycles += cycle - c.deviceActiveFrom
	}
}

func (c *Controller) closeActiveAccounting(endCycle int64) {
	if c.deviceOpenBanks > 0 {
		c.result.DeviceActiveCycles += endCycle - c.deviceActiveFrom
		c.deviceActiveFrom = endCycle
	}
}

// earliestPRE computes the first legal PRE cycle for a subarray.
func (c *Controller) earliestPRE(sub *subarrayState) int64 {
	tm := c.cfg.Timing
	t := sub.lastACT + int64(tm.TRAS)
	if v := sub.lastRD + int64(tm.TRTP); v > t {
		t = v
	}
	if v := sub.lastWREnd + int64(tm.TWR); v > t {
		t = v
	}
	return t
}

// precharge issues a PRE to the given subarray and updates state.
func (c *Controller) precharge(addr dram.Address, bank *bankState, sa int) int64 {
	sub := &bank.sub[sa]
	preAddr := addr
	preAddr.Row = sub.openRow
	t := c.issueCmd(trace.CmdPRE, preAddr, c.earliestPRE(sub))
	c.accountExtraOpen(bank, t)
	sub.openRow = -1
	sub.lastPRE = t
	if bank.selected == sa {
		bank.selected = -1
	}
	if bank.openCount() == 0 {
		c.noteBankClosed(t)
	}
	return t
}

// earliestACT computes the first legal ACT cycle for a subarray,
// covering same-subarray tRP/tRC, intra-bank spacing, rank tRRD and tFAW.
func (c *Controller) earliestACT(addr dram.Address, bank *bankState, sa int) int64 {
	tm := c.cfg.Timing
	sub := &bank.sub[sa]
	t := sub.lastPRE + int64(tm.TRP)
	if v := sub.lastACT + int64(tm.TRC); v > t {
		t = v
	}
	// Intra-bank ACT-to-ACT spacing across subarrays: SALP-2 and MASA can
	// pipeline subarray activations like banks (tRRD); DDR3 is covered by
	// the single-subarray state; SALP-1 is serialized by the PRE-then-ACT
	// rule handled in ensureRowOpen.
	if c.cfg.Arch == dram.SALP2 || c.cfg.Arch == dram.SALPMASA {
		if v := bank.lastACT + int64(tm.TRRD); v > t {
			t = v
		}
	}
	ri := c.rankIndex(addr)
	times := c.actTimes[ri]
	if n := len(times); n > 0 {
		if v := times[n-1] + int64(tm.TRRD); v > t {
			t = v
		}
		if n >= 4 {
			if v := times[n-4] + int64(tm.TFAW); v > t {
				t = v
			}
		}
	}
	return t
}

// activate issues an ACT for the row and updates state. floor is an
// additional lower bound on the issue cycle (used to order an ACT after
// the PRE commands that freed its activation slot).
func (c *Controller) activate(addr dram.Address, bank *bankState, sa int, floor int64) int64 {
	tm := c.cfg.Timing
	sub := &bank.sub[sa]
	wasClosedBank := bank.openCount() == 0
	earliest := c.earliestACT(addr, bank, sa)
	if floor > earliest {
		earliest = floor
	}
	t := c.issueCmd(trace.CmdACT, addr, earliest)
	c.accountExtraOpen(bank, t)
	sub.openRow = addr.Row
	sub.lastACT = t
	sub.readyCol = t + int64(tm.TRCD)
	bank.lastACT = t
	bank.selected = sa
	ri := c.rankIndex(addr)
	c.actTimes[ri] = append(c.actTimes[ri], t)
	if n := len(c.actTimes[ri]); n > 16 { // keep the tFAW window bounded
		c.actTimes[ri] = c.actTimes[ri][n-8:]
	}
	if wasClosedBank {
		c.noteBankOpened(t)
	}
	return t
}

// victim picks the least-recently-used open subarray of the bank,
// excluding `keep`.
func (bank *bankState) victim(keep int) int {
	best := -1
	var bestUse int64
	for s := range bank.sub {
		if s == keep || bank.sub[s].openRow < 0 {
			continue
		}
		if best < 0 || bank.sub[s].lastUse < bestUse {
			best = s
			bestUse = bank.sub[s].lastUse
		}
	}
	return best
}

// ensureRowOpen makes addr.Row available in its subarray's row buffer,
// issuing whatever PRE/ACT/SASEL commands the architecture requires.
// It returns the earliest cycle a column command may be issued and
// whether a SASEL had to be inserted.
func (c *Controller) ensureRowOpen(addr dram.Address, bank *bankState, sa int) int64 {
	tm := c.cfg.Timing
	sub := &bank.sub[sa]

	if sub.openRow == addr.Row {
		// Row already open. MASA needs a subarray-select when the bank's
		// global structures currently serve another subarray.
		if c.cfg.Arch == dram.SALPMASA && bank.selected != sa {
			t := c.issueCmd(trace.CmdSASEL, addr, 0)
			bank.selected = sa
			if v := t + int64(tm.TSASEL); v > sub.readyCol {
				sub.readyCol = v
			}
		}
		return sub.readyCol
	}

	// The target row is not open: a conflict in this subarray first needs
	// its own PRE (the subsequent ACT waits tRP via lastPRE).
	if sub.openRow >= 0 {
		c.precharge(addr, bank, sa)
	}

	// Enforce the architecture's cap on concurrently activated subarrays.
	// SALP-1 must issue the PRE of the previously active subarray before
	// activating the next one (precharge/activate overlap: the ACT may
	// follow the PRE immediately, without waiting its tRP); SALP-2 may
	// keep two subarrays in flight; MASA keeps them all. The ACT is
	// ordered after the freeing PREs on the command bus.
	var actFloor int64
	for bank.openCount() >= c.maxOpen {
		v := bank.victim(sa)
		if v < 0 {
			break
		}
		if pre := c.precharge(addr, bank, v) + 1; pre > actFloor {
			actFloor = pre
		}
	}

	c.activate(addr, bank, sa, actFloor)
	return sub.readyCol
}

// service translates one request into commands.
func (c *Controller) service(r trace.Request) {
	tm := c.cfg.Timing
	bank := &c.banks[c.bankIndex(r.Addr)]
	sa := c.stateSubarray(r.Addr)
	kind := c.classify(r)

	c.reqFirstCycle = noCycle
	readyCol := c.ensureRowOpen(r.Addr, bank, sa)

	// Column command constraints.
	ch := r.Addr.Channel
	ri := c.rankIndex(r.Addr)
	t := readyCol
	if v := c.lastColCmd[ch] + int64(tm.TCCD); v > t {
		t = v
	}
	var cmdKind trace.CommandKind
	var dataLat int64
	if r.Op == trace.Read {
		cmdKind = trace.CmdRD
		dataLat = int64(tm.CL)
		// Read after write: wait the write-to-read turnaround.
		if v := c.lastWREnd[ri] + int64(tm.TWTR); v > t {
			t = v
		}
	} else {
		cmdKind = trace.CmdWR
		dataLat = int64(tm.CWL)
		// Write after read: standard DDR3 command spacing.
		if v := c.lastRDIssue[ri] + int64(tm.CL+tm.TBL+2-tm.CWL); v > t {
			t = v
		}
	}
	// Data-bus occupancy.
	if v := c.dataBusFree[ch] - dataLat; v > t {
		t = v
	}

	t = c.issueCmd(cmdKind, r.Addr, t)
	burstEnd := t + dataLat + int64(tm.TBL)
	c.dataBusFree[ch] = burstEnd
	c.lastColCmd[ch] = t

	sub := &bank.sub[sa]
	sub.lastUse = t
	if r.Op == trace.Read {
		sub.lastRD = t
		c.lastRDIssue[ri] = t
	} else {
		sub.lastWREnd = burstEnd
		c.lastWREnd[ri] = burstEnd
	}

	if c.opt.PagePolicy == ClosedRow {
		c.precharge(r.Addr, bank, sa)
	}

	c.result.ServicedCount++
	if !c.opt.DiscardServiced {
		startCycle := t
		if c.reqFirstCycle != noCycle {
			startCycle = c.reqFirstCycle
		}
		c.result.Serviced = append(c.result.Serviced, trace.ServicedRequest{
			Request:    r,
			Kind:       kind,
			IssueCycle: startCycle,
			DoneCycle:  burstEnd,
		})
	}
	if burstEnd > c.result.TotalCycles {
		c.result.TotalCycles = burstEnd
	}

	c.prevAddr = r.Addr
	c.hasPrevAddr = true
}

// Config returns the controller's DRAM configuration.
func (c *Controller) Config() dram.Config { return c.cfg }

// Options returns the controller's options.
func (c *Controller) Options() Options { return c.opt }
