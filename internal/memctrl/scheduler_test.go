package memctrl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"drmap/internal/dram"
	"drmap/internal/trace"
)

func TestSchedulerString(t *testing.T) {
	if FCFS.String() != "FCFS" || FRFCFS.String() != "FR-FCFS" {
		t.Errorf("scheduler strings: %q / %q", FCFS, FRFCFS)
	}
}

// interleavedRows builds a pathological FCFS pattern: two row streams of
// the same bank interleaved request by request, so strict order sees a
// conflict on every access while a reordering scheduler can batch hits.
func interleavedRows(n int) []trace.Request {
	reqs := make([]trace.Request, n)
	for i := range reqs {
		reqs[i] = trace.Request{Op: trace.Read, Addr: dram.Address{
			Bank: 0, Row: i % 2, Column: (i / 2) % columnsPerRow,
		}}
	}
	return reqs
}

func TestFRFCFSBeatsFCFSOnInterleavedRows(t *testing.T) {
	cfg := dram.DDR3Config()
	reqs := interleavedRows(512)
	fcfs := mustRun(t, cfg, Options{Scheduler: FCFS}, reqs)
	fr := mustRun(t, cfg, Options{Scheduler: FRFCFS}, reqs)
	if fr.TotalCycles >= fcfs.TotalCycles {
		t.Errorf("FR-FCFS (%d cycles) not faster than FCFS (%d) on interleaved rows",
			fr.TotalCycles, fcfs.TotalCycles)
	}
	// Reordering must raise the hit count substantially.
	hits := func(r *Result) int {
		n := 0
		for _, s := range r.Serviced {
			if s.Kind == trace.AccessRowHit {
				n++
			}
		}
		return n
	}
	if hits(fr) <= hits(fcfs) {
		t.Errorf("FR-FCFS hits (%d) not above FCFS hits (%d)", hits(fr), hits(fcfs))
	}
}

func TestFRFCFSMatchesFCFSOnSequentialStream(t *testing.T) {
	// A stream that is already row-sorted gains nothing from reordering.
	cfg := dram.DDR3Config()
	reqs := readRow(0, 0, 256)
	fcfs := mustRun(t, cfg, Options{Scheduler: FCFS}, reqs)
	fr := mustRun(t, cfg, Options{Scheduler: FRFCFS}, reqs)
	if fr.TotalCycles != fcfs.TotalCycles {
		t.Errorf("FR-FCFS (%d) != FCFS (%d) on sequential stream", fr.TotalCycles, fcfs.TotalCycles)
	}
}

func TestFRFCFSServicesEveryRequestExactlyOnce(t *testing.T) {
	cfg := dram.SALP2Config()
	g := cfg.Geometry
	rng := rand.New(rand.NewSource(41))
	reqs := make([]trace.Request, 300)
	for i := range reqs {
		reqs[i] = trace.Request{Op: trace.Read, Addr: dram.Address{
			Bank: rng.Intn(g.Banks), Row: rng.Intn(g.Rows), Column: rng.Intn(g.Columns),
		}}
	}
	res := mustRun(t, cfg, Options{Scheduler: FRFCFS}, reqs)
	if len(res.Serviced) != len(reqs) {
		t.Fatalf("serviced %d of %d requests", len(res.Serviced), len(reqs))
	}
	// Multiset of serviced addresses must equal the request multiset.
	counts := map[dram.Address]int{}
	for _, r := range reqs {
		counts[r.Addr]++
	}
	for _, s := range res.Serviced {
		counts[s.Request.Addr]--
	}
	for a, c := range counts {
		if c != 0 {
			t.Fatalf("address %v count mismatch %d", a, c)
		}
	}
}

func TestFRFCFSStarvationBounded(t *testing.T) {
	// A hot row stream with one cold-row straggler in front: the
	// starvation cap must force the straggler within a bounded number of
	// bypasses, not push it to the very end.
	cfg := dram.DDR3Config()
	reqs := []trace.Request{
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: 100, Column: 0}},
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: 100, Column: 1}},
		{Op: trace.Read, Addr: dram.Address{Bank: 0, Row: 999, Column: 0}}, // straggler
	}
	for i := 0; i < 64; i++ {
		reqs = append(reqs, trace.Request{Op: trace.Read, Addr: dram.Address{
			Bank: 0, Row: 100, Column: (i + 2) % columnsPerRow,
		}})
	}
	res := mustRun(t, cfg, Options{Scheduler: FRFCFS}, reqs)
	pos := -1
	for i, s := range res.Serviced {
		if s.Request.Addr.Row == 999 {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("straggler never serviced")
	}
	maxPos := 2 + frfcfsStarvationCap + 2
	if pos > maxPos {
		t.Errorf("straggler serviced at position %d, want <= %d (starvation cap)", pos, maxPos)
	}
}

func TestFRFCFSDeterministicProperty(t *testing.T) {
	cfg := dram.SALPMASAConfig()
	g := cfg.Geometry
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs := make([]trace.Request, 150)
		for i := range reqs {
			reqs[i] = trace.Request{Op: trace.Read, Addr: dram.Address{
				Bank: rng.Intn(g.Banks), Row: rng.Intn(g.Rows), Column: rng.Intn(g.Columns),
			}}
		}
		r1 := mustRunQuick(cfg, Options{Scheduler: FRFCFS}, reqs)
		r2 := mustRunQuick(cfg, Options{Scheduler: FRFCFS}, reqs)
		return r1 != nil && r2 != nil && r1.TotalCycles == r2.TotalCycles &&
			len(r1.Commands) == len(r2.Commands)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Error(err)
	}
}

func TestFRFCFSNeverSlowerProperty(t *testing.T) {
	// Across random streams, FR-FCFS must never lose to FCFS by more
	// than scheduling noise (it can only convert conflicts into hits).
	cfg := dram.DDR3Config()
	g := cfg.Geometry
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs := make([]trace.Request, 120)
		for i := range reqs {
			reqs[i] = trace.Request{Op: trace.Read, Addr: dram.Address{
				Bank: rng.Intn(g.Banks), Row: rng.Intn(8), Column: rng.Intn(g.Columns),
			}}
		}
		fcfs := mustRunQuick(cfg, Options{Scheduler: FCFS}, reqs)
		fr := mustRunQuick(cfg, Options{Scheduler: FRFCFS}, reqs)
		if fcfs == nil || fr == nil {
			return false
		}
		return float64(fr.TotalCycles) <= float64(fcfs.TotalCycles)*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(47))}); err != nil {
		t.Error(err)
	}
}

func mustRunQuick(cfg dram.Config, opt Options, reqs []trace.Request) *Result {
	opt.RetainCommands = true // property tests compare command logs
	c, err := New(cfg, opt)
	if err != nil {
		return nil
	}
	res, err := c.Run(reqs)
	if err != nil {
		return nil
	}
	return res
}
