// JSON mirrors of the text renderers, so every artifact the tools print
// as a tabwriter table is also consumable by services: the Fig. 1
// characterization, the Fig. 9 EDP series, Table I and DSE outcomes.
// Each encoder returns plain structs; EncodeJSON marshals them with
// stable indentation for HTTP responses and CLI --json output.
package report

import (
	"encoding/json"
	"fmt"

	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/profile"
	"drmap/internal/sweep"
	"drmap/internal/tiling"
	"drmap/internal/trace"
)

// EncodeJSON marshals any of the JSON mirror types with indentation.
func EncodeJSON(v any) (string, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", fmt.Errorf("report: encode JSON: %w", err)
	}
	return string(b), nil
}

// CostJSON is one per-access (cycles, energy) price.
type CostJSON struct {
	Cycles  float64 `json:"cycles"`
	EnergyJ float64 `json:"energy_j"`
}

// ConditionJSON is one access condition's characterization.
type ConditionJSON struct {
	Condition      string   `json:"condition"`
	Stream         CostJSON `json:"stream"`
	StreamWrite    CostJSON `json:"stream_write"`
	IsolatedCycles float64  `json:"isolated_cycles"`
}

// ProfileJSON is the Fig. 1 characterization of one architecture.
type ProfileJSON struct {
	Arch       string          `json:"arch"`
	Conditions []ConditionJSON `json:"conditions"`
}

// Fig1JSON encodes the characterization of every profile, conditions in
// Fig. 1 order.
func Fig1JSON(profiles []*profile.Profile) []ProfileJSON {
	out := make([]ProfileJSON, 0, len(profiles))
	for _, p := range profiles {
		pj := ProfileJSON{Arch: p.Arch.String()}
		for _, kind := range trace.AccessKinds {
			pj.Conditions = append(pj.Conditions, ConditionJSON{
				Condition:      kind.String(),
				Stream:         CostJSON{Cycles: p.Stream[kind].Cycles, EnergyJ: p.Stream[kind].Energy},
				StreamWrite:    CostJSON{Cycles: p.StreamWrite[kind].Cycles, EnergyJ: p.StreamWrite[kind].Energy},
				IsolatedCycles: p.Isolated[kind],
			})
		}
		out = append(out, pj)
	}
	return out
}

// TilingJSON is one layer partitioning.
type TilingJSON struct {
	Th int `json:"th"`
	Tw int `json:"tw"`
	Tj int `json:"tj"`
	Ti int `json:"ti"`
}

// TilingToJSON converts a tiling.
func TilingToJSON(t tiling.Tiling) TilingJSON {
	return TilingJSON{Th: t.Th, Tw: t.Tw, Tj: t.Tj, Ti: t.Ti}
}

// PolicyJSON is one Table I mapping policy.
type PolicyJSON struct {
	ID    int      `json:"id"`
	Name  string   `json:"name"`
	Order []string `json:"order_innermost_first"`
}

// PolicyToJSON converts a mapping policy.
func PolicyToJSON(p mapping.Policy) PolicyJSON {
	order := make([]string, len(p.Order))
	for i, l := range p.Order {
		order[i] = l.String()
	}
	return PolicyJSON{ID: p.ID, Name: p.Name, Order: order}
}

// TableIJSON encodes the paper's Table I.
func TableIJSON() []PolicyJSON {
	pols := mapping.TableI()
	out := make([]PolicyJSON, 0, len(pols))
	for _, p := range pols {
		out = append(out, PolicyToJSON(p))
	}
	return out
}

// DSELayerJSON is the chosen design point of one layer.
type DSELayerJSON struct {
	Layer    string     `json:"layer"`
	Kind     string     `json:"kind"`
	Mapping  PolicyJSON `json:"mapping"`
	Schedule string     `json:"schedule"`
	Tiling   TilingJSON `json:"tiling"`
	Cycles   float64    `json:"cycles"`
	EnergyJ  float64    `json:"energy_j"`
	Seconds  float64    `json:"seconds"`
	MinEDPJs float64    `json:"min_edp_js"`
}

// DSEJSON is Algorithm 1's outcome for a network on one architecture.
type DSEJSON struct {
	Arch         string         `json:"arch"`
	Layers       []DSELayerJSON `json:"layers"`
	TotalEDPJs   float64        `json:"total_edp_js"`
	TotalEnergyJ float64        `json:"total_energy_j"`
}

// DSEResultJSON encodes a DSE outcome; tm supplies the clock needed to
// express cycle counts in seconds.
func DSEResultJSON(res *core.DSEResult, tm dram.Timing) DSEJSON {
	out := DSEJSON{
		Arch:         res.Arch.String(),
		TotalEDPJs:   res.TotalEDP(),
		TotalEnergyJ: res.TotalEnergy(),
	}
	for _, lr := range res.Layers {
		out.Layers = append(out.Layers, DSELayerJSON{
			Layer:    lr.Layer.Name,
			Kind:     lr.Layer.Kind.String(),
			Mapping:  PolicyToJSON(lr.Best.Policy),
			Schedule: lr.Best.Schedule.String(),
			Tiling:   TilingToJSON(lr.Best.Tiling),
			Cycles:   lr.Cost.Cycles,
			EnergyJ:  lr.Cost.Energy,
			Seconds:  lr.Cost.Seconds(tm),
			MinEDPJs: lr.MinEDP,
		})
	}
	return out
}

// Fig9PointJSON is one bar of Fig. 9.
type Fig9PointJSON struct {
	Layer   string  `json:"layer"`
	Mapping int     `json:"mapping"`
	Arch    string  `json:"arch"`
	Cycles  float64 `json:"cycles"`
	EnergyJ float64 `json:"energy_j"`
	Seconds float64 `json:"seconds"`
	EDPJs   float64 `json:"edp_js"`
}

// Fig9JSON encodes one Fig. 9 subplot's points.
func Fig9JSON(points []core.Fig9Point) []Fig9PointJSON {
	out := make([]Fig9PointJSON, 0, len(points))
	for _, p := range points {
		out = append(out, Fig9PointJSON{
			Layer:   p.Layer,
			Mapping: p.Policy.ID,
			Arch:    p.Arch.String(),
			Cycles:  p.Cost.Cycles,
			EnergyJ: p.Cost.Energy,
			Seconds: p.Seconds,
			EDPJs:   p.EDP,
		})
	}
	return out
}

// SweepRowJSON is one labelled row of a sweep table.
type SweepRowJSON struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// SweepJSON is a sweep table.
type SweepJSON struct {
	Name   string         `json:"name"`
	Header []string       `json:"header"`
	Rows   []SweepRowJSON `json:"rows"`
}

// SweepTableJSON encodes an ablation sweep table.
func SweepTableJSON(t *sweep.Table) SweepJSON {
	out := SweepJSON{Name: t.Name, Header: t.Header}
	for i, label := range t.Labels {
		out.Rows = append(out.Rows, SweepRowJSON{Label: label, Values: t.Rows[i]})
	}
	return out
}

// LayerEDPJSON is a simulated or modeled layer cost.
type LayerEDPJSON struct {
	Cycles  float64 `json:"cycles"`
	EnergyJ float64 `json:"energy_j"`
	Seconds float64 `json:"seconds"`
	EDPJs   float64 `json:"edp_js"`
}

// LayerEDPToJSON converts a layer cost under a timing.
func LayerEDPToJSON(e core.LayerEDP, tm dram.Timing) LayerEDPJSON {
	return LayerEDPJSON{
		Cycles:  e.Cycles,
		EnergyJ: e.Energy,
		Seconds: e.Seconds(tm),
		EDPJs:   e.EDP(tm),
	}
}
