// JSON mirrors of the text renderers, so every artifact the tools print
// as a tabwriter table is also consumable by services: the Fig. 1
// characterization, the Fig. 9 EDP series, Table I and DSE outcomes.
// Each encoder returns plain structs; EncodeJSON marshals them with
// stable indentation for HTTP responses and CLI --json output.
package report

import (
	"encoding/json"
	"fmt"

	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/profile"
	"drmap/internal/sweep"
	"drmap/internal/tiling"
	"drmap/internal/trace"
)

// EncodeJSON marshals any of the JSON mirror types with indentation.
func EncodeJSON(v any) (string, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return "", fmt.Errorf("report: encode JSON: %w", err)
	}
	return string(b), nil
}

// CostJSON is one per-access (cycles, energy) price.
type CostJSON struct {
	Cycles  float64 `json:"cycles"`
	EnergyJ float64 `json:"energy_j"`
}

// ConditionJSON is one access condition's characterization.
type ConditionJSON struct {
	Condition      string   `json:"condition"`
	Stream         CostJSON `json:"stream"`
	StreamWrite    CostJSON `json:"stream_write"`
	IsolatedCycles float64  `json:"isolated_cycles"`
}

// ProfileJSON is the Fig. 1 characterization of one DRAM system. Arch
// carries the display label (the backend name for registry-served
// profiles); Backend is the registry ID, empty for ad-hoc configs.
type ProfileJSON struct {
	Arch       string          `json:"arch"`
	Backend    string          `json:"backend,omitempty"`
	Conditions []ConditionJSON `json:"conditions"`
}

// Fig1JSON encodes the characterization of every profile, conditions in
// Fig. 1 order.
func Fig1JSON(profiles []*profile.Profile) []ProfileJSON {
	out := make([]ProfileJSON, 0, len(profiles))
	for _, p := range profiles {
		pj := ProfileJSON{Arch: p.Label(), Backend: p.Backend.ID}
		for _, kind := range trace.AccessKinds {
			pj.Conditions = append(pj.Conditions, ConditionJSON{
				Condition:      kind.String(),
				Stream:         CostJSON{Cycles: p.Stream[kind].Cycles, EnergyJ: p.Stream[kind].Energy},
				StreamWrite:    CostJSON{Cycles: p.StreamWrite[kind].Cycles, EnergyJ: p.StreamWrite[kind].Energy},
				IsolatedCycles: p.Isolated[kind],
			})
		}
		out = append(out, pj)
	}
	return out
}

// TilingJSON is one layer partitioning.
type TilingJSON struct {
	Th int `json:"th"`
	Tw int `json:"tw"`
	Tj int `json:"tj"`
	Ti int `json:"ti"`
}

// TilingToJSON converts a tiling.
func TilingToJSON(t tiling.Tiling) TilingJSON {
	return TilingJSON{Th: t.Th, Tw: t.Tw, Tj: t.Tj, Ti: t.Ti}
}

// PolicyJSON is one Table I mapping policy.
type PolicyJSON struct {
	ID    int      `json:"id"`
	Name  string   `json:"name"`
	Order []string `json:"order_innermost_first"`
}

// PolicyToJSON converts a mapping policy.
func PolicyToJSON(p mapping.Policy) PolicyJSON {
	order := make([]string, len(p.Order))
	for i, l := range p.Order {
		order[i] = l.String()
	}
	return PolicyJSON{ID: p.ID, Name: p.Name, Order: order}
}

// TableIJSON encodes the paper's Table I.
func TableIJSON() []PolicyJSON {
	pols := mapping.TableI()
	out := make([]PolicyJSON, 0, len(pols))
	for _, p := range pols {
		out = append(out, PolicyToJSON(p))
	}
	return out
}

// BackendGeometryJSON summarizes a backend's physical organization.
type BackendGeometryJSON struct {
	Channels    int   `json:"channels"`
	Ranks       int   `json:"ranks"`
	Chips       int   `json:"chips"`
	Banks       int   `json:"banks"`
	Subarrays   int   `json:"subarrays"`
	Rows        int   `json:"rows"`
	Columns     int   `json:"columns"`
	ChipBits    int   `json:"chip_bits"`
	BurstLength int   `json:"burst_length"`
	RowBytes    int   `json:"row_bytes"`
	AccessBytes int   `json:"access_bytes"`
	TotalBytes  int64 `json:"total_bytes"`
}

// BackendTimingJSON summarizes a backend's primary timings.
type BackendTimingJSON struct {
	TCKNanos float64 `json:"tck_ns"`
	CL       int     `json:"cl"`
	TRCD     int     `json:"trcd"`
	TRP      int     `json:"trp"`
	TRAS     int     `json:"tras"`
	TRC      int     `json:"trc"`
}

// BackendJSON is one registered DRAM backend: its registry identity,
// controller capability and a geometry/timing summary.
type BackendJSON struct {
	ID       string              `json:"id"`
	Name     string              `json:"name"`
	Arch     string              `json:"arch"`
	SALP     bool                `json:"salp"`
	Geometry BackendGeometryJSON `json:"geometry"`
	Timing   BackendTimingJSON   `json:"timing"`
}

// BackendToJSON converts one registered backend.
func BackendToJSON(b dram.Backend) BackendJSON {
	g := b.Config.Geometry
	t := b.Config.Timing
	return BackendJSON{
		ID:   b.ID,
		Name: b.Name,
		Arch: b.Config.Arch.String(),
		SALP: b.Config.Arch.HasSALP(),
		Geometry: BackendGeometryJSON{
			Channels: g.Channels, Ranks: g.Ranks, Chips: g.Chips,
			Banks: g.Banks, Subarrays: g.Subarrays, Rows: g.Rows,
			Columns: g.Columns, ChipBits: g.ChipBits, BurstLength: g.BurstLength,
			RowBytes: g.RowBytes(), AccessBytes: g.AccessBytes(), TotalBytes: g.TotalBytes(),
		},
		Timing: BackendTimingJSON{
			TCKNanos: t.TCKNanos, CL: t.CL, TRCD: t.TRCD,
			TRP: t.TRP, TRAS: t.TRAS, TRC: t.TRC,
		},
	}
}

// BackendsJSON encodes a backend list in the order given.
func BackendsJSON(backends []dram.Backend) []BackendJSON {
	out := make([]BackendJSON, 0, len(backends))
	for _, b := range backends {
		out = append(out, BackendToJSON(b))
	}
	return out
}

// DSELayerJSON is the chosen design point of one layer.
type DSELayerJSON struct {
	Layer    string     `json:"layer"`
	Kind     string     `json:"kind"`
	Mapping  PolicyJSON `json:"mapping"`
	Schedule string     `json:"schedule"`
	Tiling   TilingJSON `json:"tiling"`
	Cycles   float64    `json:"cycles"`
	EnergyJ  float64    `json:"energy_j"`
	Seconds  float64    `json:"seconds"`
	MinEDPJs float64    `json:"min_edp_js"`
}

// DSEJSON is Algorithm 1's outcome for a network on one DRAM system.
// Arch carries the display label; Backend is the registry ID the
// request named, empty for ad-hoc configurations.
type DSEJSON struct {
	Arch         string         `json:"arch"`
	Backend      string         `json:"backend,omitempty"`
	Layers       []DSELayerJSON `json:"layers"`
	TotalEDPJs   float64        `json:"total_edp_js"`
	TotalEnergyJ float64        `json:"total_energy_j"`
}

// DSEResultJSON encodes a DSE outcome; tm supplies the clock needed to
// express cycle counts in seconds.
func DSEResultJSON(res *core.DSEResult, tm dram.Timing) DSEJSON {
	out := DSEJSON{
		Arch:         res.Label(),
		Backend:      res.Backend.ID,
		TotalEDPJs:   res.TotalEDP(),
		TotalEnergyJ: res.TotalEnergy(),
	}
	for _, lr := range res.Layers {
		out.Layers = append(out.Layers, DSELayerToJSON(lr, tm))
	}
	return out
}

// DSELayerToJSON encodes one layer's DSE pick - the unit the v2 job
// API streams the moment the layer's reduction commits.
func DSELayerToJSON(lr core.LayerResult, tm dram.Timing) DSELayerJSON {
	return DSELayerJSON{
		Layer:    lr.Layer.Name,
		Kind:     lr.Layer.Kind.String(),
		Mapping:  PolicyToJSON(lr.Best.Policy),
		Schedule: lr.Best.Schedule.String(),
		Tiling:   TilingToJSON(lr.Best.Tiling),
		Cycles:   lr.Cost.Cycles,
		EnergyJ:  lr.Cost.Energy,
		Seconds:  lr.Cost.Seconds(tm),
		MinEDPJs: lr.MinEDP,
	}
}

// Fig9PointJSON is one bar of Fig. 9; Arch carries the system's display
// label, Backend the registry ID (empty for ad-hoc configs).
type Fig9PointJSON struct {
	Layer   string  `json:"layer"`
	Mapping int     `json:"mapping"`
	Arch    string  `json:"arch"`
	Backend string  `json:"backend,omitempty"`
	Cycles  float64 `json:"cycles"`
	EnergyJ float64 `json:"energy_j"`
	Seconds float64 `json:"seconds"`
	EDPJs   float64 `json:"edp_js"`
}

// Fig9JSON encodes one Fig. 9 subplot's points.
func Fig9JSON(points []core.Fig9Point) []Fig9PointJSON {
	out := make([]Fig9PointJSON, 0, len(points))
	for _, p := range points {
		out = append(out, Fig9PointJSON{
			Layer:   p.Layer,
			Mapping: p.Policy.ID,
			Arch:    p.Label(),
			Backend: p.Backend.ID,
			Cycles:  p.Cost.Cycles,
			EnergyJ: p.Cost.Energy,
			Seconds: p.Seconds,
			EDPJs:   p.EDP,
		})
	}
	return out
}

// SweepRowJSON is one labelled row of a sweep table.
type SweepRowJSON struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// SweepJSON is a sweep table.
type SweepJSON struct {
	Name   string         `json:"name"`
	Header []string       `json:"header"`
	Rows   []SweepRowJSON `json:"rows"`
}

// SweepTableJSON encodes an ablation sweep table.
func SweepTableJSON(t *sweep.Table) SweepJSON {
	out := SweepJSON{Name: t.Name, Header: t.Header}
	for i, label := range t.Labels {
		out.Rows = append(out.Rows, SweepRowJSON{Label: label, Values: t.Rows[i]})
	}
	return out
}

// LayerEDPJSON is a simulated or modeled layer cost.
type LayerEDPJSON struct {
	Cycles  float64 `json:"cycles"`
	EnergyJ float64 `json:"energy_j"`
	Seconds float64 `json:"seconds"`
	EDPJs   float64 `json:"edp_js"`
}

// LayerEDPToJSON converts a layer cost under a timing.
func LayerEDPToJSON(e core.LayerEDP, tm dram.Timing) LayerEDPJSON {
	return LayerEDPJSON{
		Cycles:  e.Cycles,
		EnergyJ: e.Energy,
		Seconds: e.Seconds(tm),
		EDPJs:   e.EDP(tm),
	}
}
