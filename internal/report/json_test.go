package report

import (
	"encoding/json"
	"strings"
	"testing"

	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/sweep"
	"drmap/internal/tiling"
)

func TestTableIJSON(t *testing.T) {
	pols := TableIJSON()
	if len(pols) != 6 {
		t.Fatalf("got %d policies, want 6", len(pols))
	}
	for _, p := range pols {
		if len(p.Order) != 4 {
			t.Errorf("policy %d: order %v", p.ID, p.Order)
		}
	}
	if pols[2].ID != 3 {
		t.Errorf("third policy is %d, want 3 (DRMap)", pols[2].ID)
	}
	s, err := EncodeJSON(pols)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, `"order_innermost_first"`) {
		t.Errorf("encoded policies missing order field:\n%s", s)
	}
}

func TestFig1JSONShape(t *testing.T) {
	profiles, _, _ := fixtures(t)
	out := Fig1JSON(profiles)
	if len(out) != len(profiles) {
		t.Fatalf("got %d profiles, want %d", len(out), len(profiles))
	}
	for _, p := range out {
		if len(p.Conditions) != 5 {
			t.Errorf("%s: %d conditions, want 5", p.Arch, len(p.Conditions))
		}
		for _, c := range p.Conditions {
			if c.Stream.Cycles <= 0 || c.Stream.EnergyJ <= 0 {
				t.Errorf("%s/%s: non-positive stream cost %+v", p.Arch, c.Condition, c.Stream)
			}
			if c.StreamWrite.Cycles <= 0 || c.IsolatedCycles <= 0 {
				t.Errorf("%s/%s: missing write/isolated characterization", p.Arch, c.Condition)
			}
		}
	}
	// Round-trips through encoding/json.
	s, err := EncodeJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	var back []ProfileJSON
	if err := json.Unmarshal([]byte(s), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back) != len(out) {
		t.Error("round trip lost profiles")
	}
}

func TestDSEResultJSONMatchesResult(t *testing.T) {
	_, evs, _ := fixtures(t)
	ev := evs[0] // DDR3
	res, err := core.RunDSE(cnn.LeNet5(), ev, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatalf("RunDSE: %v", err)
	}
	out := DSEResultJSON(res, ev.Timing())
	if out.Arch != "DDR3" {
		t.Errorf("arch %q", out.Arch)
	}
	if len(out.Layers) != len(res.Layers) {
		t.Fatalf("got %d layers, want %d", len(out.Layers), len(res.Layers))
	}
	for i, lj := range out.Layers {
		lr := res.Layers[i]
		if lj.Layer != lr.Layer.Name || lj.MinEDPJs != lr.MinEDP {
			t.Errorf("layer %d: %+v vs %+v", i, lj, lr)
		}
		if lj.Mapping.ID != lr.Best.Policy.ID || lj.Schedule != lr.Best.Schedule.String() {
			t.Errorf("layer %d: design point mismatch", i)
		}
		if lj.Seconds != lr.Cost.Seconds(ev.Timing()) {
			t.Errorf("layer %d: seconds mismatch", i)
		}
	}
	if out.TotalEDPJs != res.TotalEDP() || out.TotalEnergyJ != res.TotalEnergy() {
		t.Error("totals mismatch")
	}
}

func TestFig9JSON(t *testing.T) {
	_, evs, _ := fixtures(t)
	ev := evs[len(evs)-1] // SALP-MASA
	points, err := core.Fig9Series(cnn.LeNet5(), tiling.OfmsReuse, []*core.Evaluator{ev}, mapping.TableI())
	if err != nil {
		t.Fatalf("Fig9Series: %v", err)
	}
	out := Fig9JSON(points)
	if len(out) != len(points) {
		t.Fatalf("got %d points, want %d", len(out), len(points))
	}
	for i, pj := range out {
		if pj.EDPJs != points[i].EDP || pj.Mapping != points[i].Policy.ID {
			t.Errorf("point %d mismatch", i)
		}
	}
}

func TestSweepTableJSON(t *testing.T) {
	tab := &sweep.Table{
		Name:   "demo",
		Header: []string{"x", "a", "b"},
	}
	if err := tab.AddRow("r1", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRow("r2", 3, 4); err != nil {
		t.Fatal(err)
	}
	out := SweepTableJSON(tab)
	if out.Name != "demo" || len(out.Rows) != 2 {
		t.Fatalf("bad table %+v", out)
	}
	if out.Rows[1].Label != "r2" || out.Rows[1].Values[1] != 4 {
		t.Errorf("row content %+v", out.Rows[1])
	}
}

func TestLayerEDPToJSON(t *testing.T) {
	tm := dram.DDR3Config().Timing
	e := core.LayerEDP{Cycles: 1000, Energy: 2e-9}
	out := LayerEDPToJSON(e, tm)
	if out.Cycles != 1000 || out.EnergyJ != 2e-9 {
		t.Errorf("fields %+v", out)
	}
	if out.EDPJs != e.EDP(tm) || out.Seconds != e.Seconds(tm) {
		t.Error("derived fields mismatch")
	}
}
