// Package report renders the reproduction's results as paper-style
// ASCII tables: the Fig. 1 characterization, the Fig. 9 EDP series, the
// headline improvement percentages and DSE outcomes. All renderers
// return strings so they can be printed by tools, embedded in docs, or
// asserted in tests.
package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/profile"
	"drmap/internal/trace"
)

// table builds aligned output with a header row.
func table(write func(w *tabwriter.Writer)) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	write(w)
	w.Flush()
	return sb.String()
}

// Fig1Table renders the per-condition characterization of every
// architecture: stream cycles/energy per access (the analytical model's
// inputs) and the isolated latencies of the row-buffer conditions.
func Fig1Table(profiles []*profile.Profile) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "condition\tsystem\tstream cycles/access\tstream nJ/access\tisolated cycles")
		for _, kind := range trace.AccessKinds {
			for _, p := range profiles {
				c := p.Stream[kind]
				fmt.Fprintf(w, "%s\t%s\t%.2f\t%.3f\t%.1f\n",
					kind, p.Label(), c.Cycles, c.Energy*1e9, p.Isolated[kind])
			}
		}
	})
}

// TableI renders the paper's Table I: the six mapping policies.
func TableI() string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "mapping\tinner-most- to outer-most-loops")
		for _, p := range mapping.TableI() {
			fmt.Fprintf(w, "%d\t%v, %v, %v, %v\n", p.ID, p.Order[0], p.Order[1], p.Order[2], p.Order[3])
		}
	})
}

// systemOrder returns the distinct DRAM-system labels of a Fig. 9
// series in first-appearance order; for paper series this is exactly
// the four architectures in figure order.
func systemOrder(points []core.Fig9Point) []string {
	var order []string
	seen := map[string]bool{}
	for _, p := range points {
		if l := p.Label(); !seen[l] {
			seen[l] = true
			order = append(order, l)
		}
	}
	return order
}

// layerOrder returns the distinct layer labels of a Fig. 9 series in
// first-appearance order (Total lands last by construction).
func layerOrder(points []core.Fig9Point) []string {
	var order []string
	seen := map[string]bool{}
	for _, p := range points {
		if !seen[p.Layer] {
			seen[p.Layer] = true
			order = append(order, p.Layer)
		}
	}
	return order
}

// Fig9Table renders one subplot of Fig. 9: EDP (joule-seconds) per
// layer, mapping policy and architecture under one scheduling scheme.
func Fig9Table(points []core.Fig9Point, schedule string) string {
	policies := map[int]mapping.Policy{}
	for _, p := range points {
		policies[p.Policy.ID] = p.Policy
	}
	var ids []int
	for id := range policies {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	systems := systemOrder(points)
	out := fmt.Sprintf("EDP [J*s] per AlexNet layer - %s scheduling\n", schedule)
	return out + table(func(w *tabwriter.Writer) {
		fmt.Fprint(w, "layer\tmapping")
		for _, sys := range systems {
			fmt.Fprintf(w, "\t%s", sys)
		}
		fmt.Fprintln(w)
		for _, layer := range layerOrder(points) {
			for _, id := range ids {
				fmt.Fprintf(w, "%s\t%d", layer, id)
				for _, sys := range systems {
					if p := core.SelectLabeledPoint(points, layer, id, sys); p != nil {
						fmt.Fprintf(w, "\t%.3e", p.EDP)
					} else {
						fmt.Fprint(w, "\t-")
					}
				}
				fmt.Fprintln(w)
			}
		}
	})
}

// ImprovementsTable renders the headline result: DRMap's EDP improvement
// over the worst Table I mapping, per architecture.
func ImprovementsTable(points []core.Fig9Point) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "arch\tDRMap EDP improvement vs worst mapping\tpaper reports (up to)")
		paper := map[dram.Arch]string{
			dram.DDR3: "96%", dram.SALP1: "94%", dram.SALP2: "91%", dram.SALPMASA: "80%",
		}
		for _, arch := range dram.Archs {
			v, err := core.DRMapImprovement(points, arch)
			if err != nil {
				fmt.Fprintf(w, "%s\terror: %v\t%s\n", arch, err, paper[arch])
				continue
			}
			fmt.Fprintf(w, "%s\t%.1f%%\t%s\n", arch, v*100, paper[arch])
		}
	})
}

// SALPGainsTable renders Key Observation 4: per-mapping EDP improvement
// of each SALP architecture over DDR3 on the Total aggregate.
func SALPGainsTable(points []core.Fig9Point) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "mapping\tSALP-1 vs DDR3\tSALP-2 vs DDR3\tSALP-MASA vs DDR3")
		for id := 1; id <= 6; id++ {
			fmt.Fprintf(w, "%d", id)
			for _, arch := range []dram.Arch{dram.SALP1, dram.SALP2, dram.SALPMASA} {
				v, err := core.SALPImprovement(points, id, arch)
				if err != nil {
					fmt.Fprint(w, "\t-")
					continue
				}
				fmt.Fprintf(w, "\t%.2f%%", v*100)
			}
			fmt.Fprintln(w)
		}
	})
}

// BackendsTable renders the DRAM backend registry: every system the
// tools and the serving API accept, with its geometry and clock.
func BackendsTable(backends []dram.Backend) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "id\tname\tcapability\tgeometry\ttCK[ns]\tcapacity[MiB]")
		for _, b := range backends {
			g := b.Config.Geometry
			fmt.Fprintf(w, "%s\t%s\t%v\t%dch x %drank x %dchip x %dbank x %dsa\t%.3g\t%d\n",
				b.ID, b.Name, b.Config.Arch, g.Channels, g.Ranks, g.Chips, g.Banks, g.Subarrays,
				b.Config.Timing.TCKNanos, g.TotalBytes()>>20)
		}
	})
}

// DSETable renders Algorithm 1's output: the chosen design point and
// minimum EDP per layer.
func DSETable(res *core.DSEResult) string {
	out := fmt.Sprintf("DSE result on %s\n", res.Label())
	return out + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "layer\tmapping\tschedule\ttiling\tmin EDP [J*s]")
		for _, lr := range res.Layers {
			fmt.Fprintf(w, "%s\t%s\t%v\t%v\t%.3e\n",
				lr.Layer.Name, lr.Best.Policy.Name, lr.Best.Schedule, lr.Best.Tiling, lr.MinEDP)
		}
		fmt.Fprintf(w, "Total\t\t\t\t%.3e\n", res.TotalEDP())
	})
}
