package report

import (
	"fmt"
	"text/tabwriter"

	"drmap/internal/core"
)

// NetworkTable renders an end-to-end network report: per-layer design
// point, DRAM vs compute time under double buffering, boundedness and
// energy.
func NetworkTable(rep *core.NetworkReport) string {
	out := fmt.Sprintf("%s on %v (accelerator-level view)\n", rep.Network, rep.Arch)
	return out + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "layer\tmapping\tschedule\tdram [ms]\tcompute [ms]\ttotal [ms]\tbound\tutil\tenergy [mJ]")
		for _, l := range rep.Layers {
			bound := "compute"
			if l.Perf.MemoryBound {
				bound = "memory"
			}
			fmt.Fprintf(w, "%s\t%s\t%v\t%.3f\t%.3f\t%.3f\t%s\t%.0f%%\t%.3f\n",
				l.Layer.Name, l.Best.Policy.Name, l.Best.Schedule,
				l.DRAMSeconds*1e3, l.Perf.ComputeSeconds*1e3, l.Perf.TotalSeconds*1e3,
				bound, l.Perf.Utilization*100, l.Cost.Energy*1e3)
		}
		fmt.Fprintf(w, "Total\t\t\t\t\t%.3f\t%d/%d memory-bound\t\t%.3f\n",
			rep.TotalSeconds()*1e3, rep.MemoryBoundLayers(), len(rep.Layers),
			rep.TotalEnergy()*1e3)
	})
}

// TensorTable renders the per-tensor DRAM energy split of a report.
func TensorTable(rep *core.NetworkReport) string {
	out := fmt.Sprintf("%s on %v - DRAM energy by tensor [mJ]\n", rep.Network, rep.Arch)
	return out + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "layer\tifms\twghs\tofms\tdominant")
		for _, l := range rep.Layers {
			dom := "ifms"
			max := l.ByTensor.Ifm.Energy
			if l.ByTensor.Wgt.Energy > max {
				dom, max = "wghs", l.ByTensor.Wgt.Energy
			}
			if l.ByTensor.Ofm.Energy > max {
				dom = "ofms"
			}
			fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.4f\t%s\n",
				l.Layer.Name, l.ByTensor.Ifm.Energy*1e3, l.ByTensor.Wgt.Energy*1e3,
				l.ByTensor.Ofm.Energy*1e3, dom)
		}
	})
}
