package report

import (
	"strings"
	"testing"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/profile"
	"drmap/internal/tiling"
)

// fixtures shares characterization and Fig. 9 data across render tests;
// LeNet-5 keeps the series cheap.
var (
	fixProfiles []*profile.Profile
	fixEvs      []*core.Evaluator
	fixPoints   []core.Fig9Point
)

func fixtures(t *testing.T) ([]*profile.Profile, []*core.Evaluator, []core.Fig9Point) {
	t.Helper()
	if fixPoints != nil {
		return fixProfiles, fixEvs, fixPoints
	}
	ps, err := profile.CharacterizePaper()
	if err != nil {
		t.Fatal(err)
	}
	var evs []*core.Evaluator
	for _, p := range ps {
		ev, err := core.NewEvaluator(p, accel.TableII(), 1)
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	pts, err := core.Fig9Series(cnn.LeNet5(), tiling.AdaptiveReuse, evs, mapping.TableI())
	if err != nil {
		t.Fatal(err)
	}
	fixProfiles, fixEvs, fixPoints = ps, evs, pts
	return ps, evs, pts
}

func TestFig1TableContainsAllConditionsAndArchs(t *testing.T) {
	ps, _, _ := fixtures(t)
	out := Fig1Table(ps)
	for _, want := range []string{
		"row-hit", "row-miss", "row-conflict", "subarray-switch", "bank-switch",
		"DDR3", "SALP-1", "SALP-2", "SALP-MASA", "stream cycles/access",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1Table missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 21 { // header + 5*4 rows
		t.Errorf("Fig1Table has %d lines, want 21", lines)
	}
}

func TestTableIRendersSixMappings(t *testing.T) {
	out := TableI()
	for _, want := range []string{"1", "2", "3", "4", "5", "6", "column", "subarray", "bank", "row"} {
		if !strings.Contains(out, want) {
			t.Errorf("TableI missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 7 {
		t.Errorf("TableI has %d lines, want 7", lines)
	}
}

func TestFig9TableStructure(t *testing.T) {
	_, _, pts := fixtures(t)
	out := Fig9Table(pts, "adaptive-reuse")
	for _, want := range []string{"adaptive-reuse", "CONV1", "FC5", "Total", "DDR3", "SALP-MASA"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig9Table missing %q", want)
		}
	}
	// 5 LeNet layers + Total = 6 groups x 6 mappings + header + title.
	if lines := strings.Count(out, "\n"); lines != 38 {
		t.Errorf("Fig9Table has %d lines, want 38:\n%s", lines, out)
	}
}

func TestImprovementsTableShowsAllArchs(t *testing.T) {
	_, _, pts := fixtures(t)
	out := ImprovementsTable(pts)
	for _, arch := range dram.Archs {
		if !strings.Contains(out, arch.String()) {
			t.Errorf("ImprovementsTable missing %v", arch)
		}
	}
	if !strings.Contains(out, "%") {
		t.Error("ImprovementsTable has no percentages")
	}
}

func TestSALPGainsTableHasSixRows(t *testing.T) {
	_, _, pts := fixtures(t)
	out := SALPGainsTable(pts)
	if lines := strings.Count(out, "\n"); lines != 7 {
		t.Errorf("SALPGainsTable has %d lines, want 7:\n%s", lines, out)
	}
}

func TestDSETableListsLayers(t *testing.T) {
	_, evs, _ := fixtures(t)
	res, err := core.RunDSE(cnn.LeNet5(), evs[0], tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatal(err)
	}
	out := DSETable(res)
	for _, want := range []string{"CONV1", "CONV2", "FC3", "FC4", "FC5", "Total", "Mapping-3"} {
		if !strings.Contains(out, want) {
			t.Errorf("DSETable missing %q:\n%s", want, out)
		}
	}
}

func TestImprovementsTableHandlesMissingData(t *testing.T) {
	out := ImprovementsTable(nil)
	if !strings.Contains(out, "error") {
		t.Errorf("expected error rows for empty points:\n%s", out)
	}
}

func TestSALPGainsTableHandlesMissingData(t *testing.T) {
	out := SALPGainsTable(nil)
	if !strings.Contains(out, "-") {
		t.Errorf("expected dashes for empty points:\n%s", out)
	}
}
