package report

import (
	"strings"
	"testing"

	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
)

func TestFig9ChartEmpty(t *testing.T) {
	if out := Fig9Chart(nil, "x"); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
}

func TestFig9ChartStructure(t *testing.T) {
	_, _, pts := fixtures(t)
	out := Fig9Chart(pts, "adaptive-reuse")
	for _, want := range []string{"log scale", "CONV1", "Total", "*M3", "DRMap", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	// Every (mapping, arch) pair of every layer appears: 6 layer groups
	// (5 + Total) x 6 mappings x 4 archs bars.
	if got := strings.Count(out, "M"); got < 6*6*4 {
		t.Errorf("chart has %d mapping rows, want >= %d", got, 6*6*4)
	}
}

func TestFig9ChartBarLengthsOrdered(t *testing.T) {
	// Mapping-2 (worst) must draw a visibly longer bar than Mapping-3
	// on the Total group for DDR3.
	_, _, pts := fixtures(t)
	out := Fig9Chart(pts, "adaptive")
	lines := strings.Split(out, "\n")
	var inTotal bool
	barLen := map[int]int{}
	for _, line := range lines {
		if strings.HasPrefix(line, "Total") {
			inTotal = true
			continue
		}
		if !inTotal {
			continue
		}
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "M2 DDR3") || strings.HasPrefix(trimmed, "*M3 DDR3") {
			id := 2
			if strings.HasPrefix(trimmed, "*M3") {
				id = 3
			}
			barLen[id] = strings.Count(line, "#")
		}
	}
	if barLen[2] == 0 || barLen[3] == 0 {
		t.Fatalf("missing Total bars: %v", barLen)
	}
	if barLen[2] <= barLen[3] {
		t.Errorf("Mapping-2 bar (%d) not longer than DRMap bar (%d)", barLen[2], barLen[3])
	}
}

func TestFig9ChartDegenerateSinglePoint(t *testing.T) {
	pts := []core.Fig9Point{{
		Layer: "L", Policy: mapping.DRMap(), Arch: dram.DDR3, EDP: 1e-6,
	}}
	out := Fig9Chart(pts, "s")
	if !strings.Contains(out, "1.00e-06") {
		t.Errorf("single-point chart malformed:\n%s", out)
	}
}
