package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"drmap/internal/core"
)

// chartWidth is the maximum bar length in characters.
const chartWidth = 48

// Fig9Chart renders one Fig. 9 subplot the way the paper draws it: a
// log-scale horizontal bar per (layer, mapping, DRAM system), grouped
// by layer, so the orders-of-magnitude gap between DRMap and the
// subarray-first mappings is visible at a glance.
func Fig9Chart(points []core.Fig9Point, schedule string) string {
	if len(points) == 0 {
		return "(no data)\n"
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		if p.EDP > 0 {
			min = math.Min(min, p.EDP)
			max = math.Max(max, p.EDP)
		}
	}
	if !(max > min) {
		max = min * 10
	}
	logMin, logMax := math.Log10(min), math.Log10(max)
	span := logMax - logMin
	if span <= 0 {
		span = 1
	}
	bar := func(edp float64) string {
		if edp <= 0 {
			return ""
		}
		frac := (math.Log10(edp) - logMin) / span
		n := 1 + int(frac*float64(chartWidth-1)+0.5)
		if n < 1 {
			n = 1
		}
		if n > chartWidth {
			n = chartWidth
		}
		return strings.Repeat("#", n)
	}

	policies := map[int]bool{}
	for _, p := range points {
		policies[p.Policy.ID] = true
	}
	var ids []int
	for id := range policies {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	systems := systemOrder(points)

	var sb strings.Builder
	fmt.Fprintf(&sb, "EDP (log scale, %.2e .. %.2e J*s) - %s scheduling\n", min, max, schedule)
	for _, layer := range layerOrder(points) {
		fmt.Fprintf(&sb, "%s\n", layer)
		for _, id := range ids {
			for _, sys := range systems {
				p := core.SelectLabeledPoint(points, layer, id, sys)
				if p == nil {
					continue
				}
				marker := " "
				if id == 3 {
					marker = "*" // DRMap
				}
				fmt.Fprintf(&sb, " %sM%d %-10s %-*s %.2e\n",
					marker, id, sys, chartWidth, bar(p.EDP), p.EDP)
			}
		}
	}
	sb.WriteString(" (* = DRMap / Mapping-3)\n")
	return sb.String()
}
