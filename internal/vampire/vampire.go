// Package vampire computes DRAM energy from command logs, standing in
// for the VAMPIRE power model (Ghose et al., SIGMETRICS 2018) used by
// the DRMap paper. It follows the Micron DDR3 power-calculator
// methodology on datasheet IDD currents - activation/precharge pair
// energy, read/write burst energy, state-dependent background energy
// and refresh energy - and adds VAMPIRE's headline refinement: a
// data-dependence term that scales I/O energy with the toggle rate of
// the transferred data.
package vampire

import (
	"fmt"

	"drmap/internal/dram"
	"drmap/internal/trace"
)

// Activity summarizes what happened on a DRAM rank during a simulation:
// command counts plus the cycle accounting needed for background energy.
type Activity struct {
	ACTs   int64
	Reads  int64
	Writes int64
	SASELs int64
	REFs   int64
	// ActiveCycles is the number of cycles during which at least one
	// bank had an open row.
	ActiveCycles int64
	// ExtraOpenSubarrayCycles is the cycle-weighted count of open
	// subarrays beyond the first per bank (SALP-2 / MASA latches).
	ExtraOpenSubarrayCycles int64
	// TotalCycles is the full span of the simulation.
	TotalCycles int64
}

// ActivityFrom derives an Activity from a command log and the
// controller's cycle accounting. Extra-open-subarray cycles can be set
// on the result afterwards when the controller reports them.
func ActivityFrom(cmds []trace.Command, activeCycles, totalCycles int64) Activity {
	a := Activity{ActiveCycles: activeCycles, TotalCycles: totalCycles}
	for _, c := range cmds {
		switch c.Kind {
		case trace.CmdACT:
			a.ACTs++
		case trace.CmdRD:
			a.Reads++
		case trace.CmdWR:
			a.Writes++
		case trace.CmdSASEL:
			a.SASELs++
		case trace.CmdREF:
			a.REFs++
		}
	}
	return a
}

// ActivityFromCounts derives an Activity from a dense per-kind command
// census (indexed by trace.CommandKind) and the controller's cycle
// accounting - the allocation-free equivalent of ActivityFrom for
// callers that do not retain the command log.
func ActivityFromCounts(counts [trace.NumCommandKinds]int64, activeCycles, totalCycles int64) Activity {
	return Activity{
		ACTs:         counts[trace.CmdACT],
		Reads:        counts[trace.CmdRD],
		Writes:       counts[trace.CmdWR],
		SASELs:       counts[trace.CmdSASEL],
		REFs:         counts[trace.CmdREF],
		ActiveCycles: activeCycles,
		TotalCycles:  totalCycles,
	}
}

// Accesses returns the number of column accesses in the activity.
func (a Activity) Accesses() int64 { return a.Reads + a.Writes }

// Breakdown itemizes the energy of a run in joules.
type Breakdown struct {
	Activate         float64 // ACT/PRE pair energy (row open + close)
	ReadBurst        float64 // array read-burst energy
	WriteBurst       float64 // array write-burst energy
	IO               float64 // off-chip I/O and termination energy
	Refresh          float64 // REF energy
	BackgroundActive float64 // active-standby background
	BackgroundIdle   float64 // precharge-standby background
	SubarrayLatch    float64 // extra open-subarray latch background (SALP-2/MASA)
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.Activate + b.ReadBurst + b.WriteBurst + b.IO + b.Refresh +
		b.BackgroundActive + b.BackgroundIdle + b.SubarrayLatch
}

// String renders the breakdown in nanojoules.
func (b Breakdown) String() string {
	return fmt.Sprintf(
		"act=%.2fnJ rd=%.2fnJ wr=%.2fnJ io=%.2fnJ ref=%.2fnJ bgAct=%.2fnJ bgIdle=%.2fnJ latch=%.2fnJ total=%.2fnJ",
		b.Activate*1e9, b.ReadBurst*1e9, b.WriteBurst*1e9, b.IO*1e9,
		b.Refresh*1e9, b.BackgroundActive*1e9, b.BackgroundIdle*1e9,
		b.SubarrayLatch*1e9, b.Total()*1e9)
}

// Model computes energies for one DRAM configuration.
type Model struct {
	cfg dram.Config
	// ToggleRate in [0,1] captures VAMPIRE's data-dependence: the
	// fraction of transferred bits that toggle relative to the previous
	// beat. It scales I/O energy between 0.5x (constant data) and 1.5x
	// (worst-case toggling). The default 0.5 is the random-data midpoint.
	ToggleRate float64
	// PowerDownFraction in [0,1] is the share of precharge-idle cycles
	// the controller spends in precharge power-down (CKE low), drawing
	// IDD2P instead of IDD2N. The default 0 models a controller that
	// never powers down, matching the paper's always-ready setup.
	PowerDownFraction float64
}

// New builds a model for the configuration with the random-data default
// toggle rate.
func New(cfg dram.Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("vampire: %w", err)
	}
	return &Model{cfg: cfg, ToggleRate: 0.5}, nil
}

// SetToggleRate adjusts the data-dependence term. Rates outside [0,1]
// are rejected.
func (m *Model) SetToggleRate(r float64) error {
	if r < 0 || r > 1 {
		return fmt.Errorf("vampire: toggle rate %g outside [0,1]", r)
	}
	m.ToggleRate = r
	return nil
}

// SetPowerDownFraction adjusts the precharge power-down share.
// Fractions outside [0,1] are rejected.
func (m *Model) SetPowerDownFraction(f float64) error {
	if f < 0 || f > 1 {
		return fmt.Errorf("vampire: power-down fraction %g outside [0,1]", f)
	}
	m.PowerDownFraction = f
	return nil
}

// cyclesToSeconds converts command-clock cycles to seconds.
func (m *Model) cyclesToSeconds(c float64) float64 {
	return c * m.cfg.Timing.TCKNanos * 1e-9
}

// chips returns the number of chips energized per access (all chips of
// a rank operate in lock-step).
func (m *Model) chips() float64 { return float64(m.cfg.Geometry.Chips) }

// ActEnergy returns the energy of one ACT/PRE pair across the rank,
// per the Micron power-calc charge-difference formula:
//
//	E = VDD * (IDD0*tRC - IDD3N*tRAS - IDD2N*(tRC-tRAS)) * tCK
//
// scaled by the architecture's subarray activation factor (MASA keeps
// extra local row buffers latched).
func (m *Model) ActEnergy() float64 {
	p := m.cfg.Power
	tm := m.cfg.Timing
	charge := p.IDD0*float64(tm.TRC) - p.IDD3N*float64(tm.TRAS) - p.IDD2N*float64(tm.TRC-tm.TRAS)
	e := p.VDD * charge * 1e-3 * m.cyclesToSeconds(1) * m.chips()
	return e * p.SubarrayActFactor
}

// ReadBurstEnergy returns the array energy of one read burst across the
// rank (I/O excluded; see IOEnergyPerAccess).
func (m *Model) ReadBurstEnergy() float64 {
	p := m.cfg.Power
	return p.VDD * (p.IDD4R - p.IDD3N) * 1e-3 * m.cyclesToSeconds(float64(m.cfg.Timing.TBL)) * m.chips()
}

// WriteBurstEnergy returns the array energy of one write burst across
// the rank.
func (m *Model) WriteBurstEnergy() float64 {
	p := m.cfg.Power
	return p.VDD * (p.IDD4W - p.IDD3N) * 1e-3 * m.cyclesToSeconds(float64(m.cfg.Timing.TBL)) * m.chips()
}

// toggleScale maps ToggleRate in [0,1] to an I/O energy multiplier in
// [0.5, 1.5]; 0.5 (random data) gives 1.0.
func (m *Model) toggleScale() float64 { return 0.5 + m.ToggleRate }

// IOEnergyPerAccess returns the off-chip I/O energy of one burst in the
// given direction, including the data-dependent toggle scaling.
func (m *Model) IOEnergyPerAccess(op trace.Op) float64 {
	g := m.cfg.Geometry
	bits := float64(g.Chips * g.ChipBits * g.BurstLength)
	perBit := m.cfg.Power.ReadIOPicoJPerBit
	if op == trace.Write {
		perBit = m.cfg.Power.WriteIOPicoJPerBit
	}
	return bits * perBit * 1e-12 * m.toggleScale()
}

// RefreshEnergy returns the energy of one REF command.
func (m *Model) RefreshEnergy() float64 {
	p := m.cfg.Power
	return p.VDD * (p.IDD5B - p.IDD2N) * 1e-3 * m.cyclesToSeconds(float64(m.cfg.Timing.TRFC)) * m.chips()
}

// BackgroundPowerActive returns active-standby power in watts.
func (m *Model) BackgroundPowerActive() float64 {
	p := m.cfg.Power
	return p.VDD * p.IDD3N * 1e-3 * m.chips()
}

// BackgroundPowerIdle returns the effective precharge-background power
// in watts, blending standby (IDD2N) and power-down (IDD2P) according
// to PowerDownFraction.
func (m *Model) BackgroundPowerIdle() float64 {
	p := m.cfg.Power
	blended := p.IDD2N*(1-m.PowerDownFraction) + p.IDD2P*m.PowerDownFraction
	return p.VDD * blended * 1e-3 * m.chips()
}

// Energy itemizes the energy of an activity under this model.
func (m *Model) Energy(a Activity) Breakdown {
	idle := a.TotalCycles - a.ActiveCycles
	if idle < 0 {
		idle = 0
	}
	return Breakdown{
		Activate:         float64(a.ACTs) * m.ActEnergy(),
		ReadBurst:        float64(a.Reads) * m.ReadBurstEnergy(),
		WriteBurst:       float64(a.Writes) * m.WriteBurstEnergy(),
		IO:               float64(a.Reads)*m.IOEnergyPerAccess(trace.Read) + float64(a.Writes)*m.IOEnergyPerAccess(trace.Write),
		Refresh:          float64(a.REFs) * m.RefreshEnergy(),
		BackgroundActive: m.BackgroundPowerActive() * m.cyclesToSeconds(float64(a.ActiveCycles)),
		BackgroundIdle:   m.BackgroundPowerIdle() * m.cyclesToSeconds(float64(idle)),
		SubarrayLatch: m.BackgroundPowerActive() * m.cfg.Power.SubarrayLatchFraction *
			m.cyclesToSeconds(float64(a.ExtraOpenSubarrayCycles)),
	}
}

// Config returns the model's DRAM configuration.
func (m *Model) Config() dram.Config { return m.cfg }
