package vampire

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"drmap/internal/dram"
	"drmap/internal/memctrl"
	"drmap/internal/trace"
)

func newModel(t *testing.T, cfg dram.Config) *Model {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := dram.DDR3Config()
	cfg.Power.VDD = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted invalid power config")
	}
}

func TestActEnergyMagnitude(t *testing.T) {
	// The ACT/PRE pair of a DDR3-1600 2Gb x8 die is a few nanojoules.
	m := newModel(t, dram.DDR3Config())
	e := m.ActEnergy()
	if e < 0.5e-9 || e > 10e-9 {
		t.Errorf("ACT/PRE energy = %.3g J, want a few nJ", e)
	}
}

func TestBurstEnergiesPositiveAndOrdered(t *testing.T) {
	m := newModel(t, dram.DDR3Config())
	rd := m.ReadBurstEnergy()
	wr := m.WriteBurstEnergy()
	if rd <= 0 || wr <= 0 {
		t.Fatalf("burst energies must be positive: rd=%g wr=%g", rd, wr)
	}
	// With the preset currents (IDD4R > IDD4W) reads burn slightly more
	// in the array; writes pay more in I/O termination instead.
	if rd < wr {
		t.Errorf("array read burst (%g) should not be below write burst (%g) for preset currents", rd, wr)
	}
	ioRD := m.IOEnergyPerAccess(trace.Read)
	ioWR := m.IOEnergyPerAccess(trace.Write)
	if ioWR <= ioRD {
		t.Errorf("write I/O energy (%g) should exceed read I/O energy (%g)", ioWR, ioRD)
	}
}

func TestMASAActEnergyCarriesFactor(t *testing.T) {
	ddr3 := newModel(t, dram.DDR3Config())
	masa := newModel(t, dram.SALPMASAConfig())
	want := ddr3.ActEnergy() * dram.SALPMASAConfig().Power.SubarrayActFactor
	if got := masa.ActEnergy(); math.Abs(got-want) > 1e-15 {
		t.Errorf("MASA ACT energy = %g, want %g", got, want)
	}
}

func TestToggleRateScalesIOEnergy(t *testing.T) {
	m := newModel(t, dram.DDR3Config())
	if err := m.SetToggleRate(0); err != nil {
		t.Fatal(err)
	}
	low := m.IOEnergyPerAccess(trace.Read)
	if err := m.SetToggleRate(1); err != nil {
		t.Fatal(err)
	}
	high := m.IOEnergyPerAccess(trace.Read)
	if math.Abs(high/low-3) > 1e-9 {
		t.Errorf("toggle 1.0 vs 0.0 I/O ratio = %g, want 3 (0.5x..1.5x)", high/low)
	}
}

func TestSetToggleRateRejectsOutOfRange(t *testing.T) {
	m := newModel(t, dram.DDR3Config())
	for _, r := range []float64{-0.1, 1.1, 99} {
		if err := m.SetToggleRate(r); err == nil {
			t.Errorf("SetToggleRate(%g) accepted", r)
		}
	}
	if err := m.SetToggleRate(0.25); err != nil {
		t.Errorf("SetToggleRate(0.25) rejected: %v", err)
	}
}

func TestActivityFromCommandLog(t *testing.T) {
	cmds := []trace.Command{
		{Kind: trace.CmdACT}, {Kind: trace.CmdRD}, {Kind: trace.CmdRD},
		{Kind: trace.CmdWR}, {Kind: trace.CmdPRE}, {Kind: trace.CmdSASEL},
		{Kind: trace.CmdREF},
	}
	a := ActivityFrom(cmds, 100, 200)
	if a.ACTs != 1 || a.Reads != 2 || a.Writes != 1 || a.SASELs != 1 || a.REFs != 1 {
		t.Errorf("unexpected activity: %+v", a)
	}
	if a.Accesses() != 3 {
		t.Errorf("accesses = %d, want 3", a.Accesses())
	}
	if a.ActiveCycles != 100 || a.TotalCycles != 200 {
		t.Errorf("cycles not carried: %+v", a)
	}
}

func TestBreakdownTotalSumsComponents(t *testing.T) {
	b := Breakdown{Activate: 1, ReadBurst: 2, WriteBurst: 3, IO: 4, Refresh: 5,
		BackgroundActive: 6, BackgroundIdle: 7, SubarrayLatch: 8}
	if got := b.Total(); got != 36 {
		t.Errorf("Total = %g, want 36", got)
	}
}

func TestSubarrayLatchEnergy(t *testing.T) {
	masa := newModel(t, dram.SALPMASAConfig())
	withLatch := masa.Energy(Activity{ExtraOpenSubarrayCycles: 1000, TotalCycles: 1000})
	if withLatch.SubarrayLatch <= 0 {
		t.Error("MASA latch energy not charged for extra open subarrays")
	}
	ddr3 := newModel(t, dram.DDR3Config())
	none := ddr3.Energy(Activity{ExtraOpenSubarrayCycles: 1000, TotalCycles: 1000})
	if none.SubarrayLatch != 0 {
		t.Errorf("DDR3 charged latch energy %g with zero latch fraction", none.SubarrayLatch)
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Activate: 1e-9}
	s := b.String()
	if !strings.Contains(s, "act=1.00nJ") || !strings.Contains(s, "total=") {
		t.Errorf("unexpected breakdown string %q", s)
	}
}

func TestEnergyNegativeIdleClamped(t *testing.T) {
	m := newModel(t, dram.DDR3Config())
	// ActiveCycles exceeding TotalCycles must not yield negative idle
	// background energy.
	b := m.Energy(Activity{ActiveCycles: 100, TotalCycles: 50})
	if b.BackgroundIdle < 0 {
		t.Errorf("negative idle background energy %g", b.BackgroundIdle)
	}
}

func TestHitStreamCheaperThanConflictStream(t *testing.T) {
	// End-to-end with the controller: per-access energy of a row-hit
	// stream must be well below a row-conflict stream (Fig. 1 energy).
	cfg := dram.DDR3Config()
	m := newModel(t, cfg)
	run := func(reqs []trace.Request) float64 {
		c, err := memctrl.New(cfg, memctrl.Options{RetainCommands: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		act := ActivityFrom(res.Commands, res.DeviceActiveCycles, res.TotalCycles)
		return m.Energy(act).Total() / float64(act.Accesses())
	}
	const n = 1024
	hits := make([]trace.Request, n)
	conflicts := make([]trace.Request, n)
	for i := 0; i < n; i++ {
		hits[i] = trace.Request{Op: trace.Read, Addr: dram.Address{Row: 0, Column: i % cfg.Geometry.Columns}}
		conflicts[i] = trace.Request{Op: trace.Read, Addr: dram.Address{Row: i % cfg.Geometry.Rows}}
	}
	hitE := run(hits)
	conflictE := run(conflicts)
	if hitE*2 > conflictE {
		t.Errorf("per-access energy: hit %.3g J vs conflict %.3g J, want conflict >> hit", hitE, conflictE)
	}
	// Both should be nanojoule-scale.
	if hitE < 0.1e-9 || conflictE > 100e-9 {
		t.Errorf("energies out of nJ range: hit=%.3g conflict=%.3g", hitE, conflictE)
	}
}

func TestEnergyScalesLinearlyWithCounts(t *testing.T) {
	m := newModel(t, dram.DDR3Config())
	f := func(acts, reads, writes uint8) bool {
		a := Activity{ACTs: int64(acts), Reads: int64(reads), Writes: int64(writes)}
		b1 := m.Energy(a)
		a2 := Activity{ACTs: 2 * a.ACTs, Reads: 2 * a.Reads, Writes: 2 * a.Writes}
		b2 := m.Energy(a2)
		return math.Abs(b2.Total()-2*b1.Total()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

func TestEnergyMonotoneInActivityProperty(t *testing.T) {
	m := newModel(t, dram.SALP1Config())
	f := func(acts, reads uint8, extra uint8) bool {
		a := Activity{ACTs: int64(acts), Reads: int64(reads), TotalCycles: 1000, ActiveCycles: 500}
		b := m.Energy(a)
		a.ACTs += int64(extra)
		b2 := m.Energy(a)
		return b2.Total() >= b.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
}

func TestRefreshEnergyPositive(t *testing.T) {
	m := newModel(t, dram.DDR3Config())
	if e := m.RefreshEnergy(); e <= 0 {
		t.Errorf("refresh energy = %g, want positive", e)
	}
}

func TestBackgroundPowers(t *testing.T) {
	m := newModel(t, dram.DDR3Config())
	active := m.BackgroundPowerActive()
	idle := m.BackgroundPowerIdle()
	if active <= idle {
		t.Errorf("active standby power (%g W) must exceed precharge standby (%g W)", active, idle)
	}
	// Sanity: tens of milliwatts for a single die.
	if active < 0.01 || active > 0.5 {
		t.Errorf("active standby power %g W out of plausible range", active)
	}
}

func TestPowerDownReducesIdleBackground(t *testing.T) {
	m := newModel(t, dram.DDR3Config())
	full := m.BackgroundPowerIdle()
	if err := m.SetPowerDownFraction(1); err != nil {
		t.Fatal(err)
	}
	down := m.BackgroundPowerIdle()
	if down >= full {
		t.Errorf("power-down idle power %g not below standby %g", down, full)
	}
	// IDD2P/IDD2N ratio for the preset is 10/23.
	want := full * dram.DDR3Config().Power.IDD2P / dram.DDR3Config().Power.IDD2N
	if math.Abs(down-want) > 1e-12 {
		t.Errorf("power-down power = %g, want %g", down, want)
	}
	// Half power-down blends linearly.
	if err := m.SetPowerDownFraction(0.5); err != nil {
		t.Fatal(err)
	}
	half := m.BackgroundPowerIdle()
	if math.Abs(half-(full+down)/2) > 1e-12 {
		t.Errorf("half power-down = %g, want midpoint %g", half, (full+down)/2)
	}
}

func TestSetPowerDownFractionRejectsOutOfRange(t *testing.T) {
	m := newModel(t, dram.DDR3Config())
	for _, f := range []float64{-0.1, 1.5} {
		if err := m.SetPowerDownFraction(f); err == nil {
			t.Errorf("SetPowerDownFraction(%g) accepted", f)
		}
	}
}

func TestPowerDownOnlyAffectsIdleEnergy(t *testing.T) {
	m := newModel(t, dram.DDR3Config())
	a := Activity{ACTs: 5, Reads: 50, ActiveCycles: 500, TotalCycles: 1000}
	before := m.Energy(a)
	if err := m.SetPowerDownFraction(1); err != nil {
		t.Fatal(err)
	}
	after := m.Energy(a)
	if after.BackgroundIdle >= before.BackgroundIdle {
		t.Error("power-down did not cut idle background energy")
	}
	if after.BackgroundActive != before.BackgroundActive ||
		after.Activate != before.Activate || after.ReadBurst != before.ReadBurst {
		t.Error("power-down changed non-idle components")
	}
}

func TestConfigAccessor(t *testing.T) {
	m := newModel(t, dram.SALP2Config())
	if m.Config().Arch != dram.SALP2 {
		t.Errorf("Config().Arch = %v, want SALP-2", m.Config().Arch)
	}
}
