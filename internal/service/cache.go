package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// Fingerprint content-addresses a request: the SHA-256 of its canonical
// JSON encoding. encoding/json sorts map keys and walks struct fields
// in declaration order, so equal values always fingerprint equally.
func Fingerprint(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("service: fingerprint: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`      // served from the completed-result cache
	Misses    int64 `json:"misses"`    // required a fresh computation
	Coalesced int64 `json:"coalesced"` // joined an identical in-flight computation
	Evictions int64 `json:"evictions"` // LRU entries dropped at capacity
	Entries   int   `json:"entries"`   // resident entries
	// Bytes is the summed size of resident values; always 0 for caches
	// built without a sizer (NewCache).
	Bytes int64 `json:"bytes"`
}

// flight is one in-progress computation that later identical requests
// wait on instead of recomputing (single-flight deduplication).
type flight struct {
	done chan struct{}
	val  any
	err  error
}

type cacheEntry struct {
	key  string
	val  any
	size int64
}

// Cache is a bounded, content-addressed result cache with LRU eviction
// and single-flight deduplication of concurrent identical computations.
// The zero value is not usable; construct with NewCache.
type Cache struct {
	mu       sync.Mutex
	capacity int
	maxBytes int64
	sizeOf   func(any) int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight
	stats    CacheStats
}

// NewCache builds a cache holding at most capacity completed results.
// capacity <= 0 disables retention: single-flight deduplication still
// coalesces concurrent identical requests, but nothing is remembered.
func NewCache(capacity int) *Cache {
	return NewCacheSized(capacity, 0, nil)
}

// NewCacheSized is NewCache with byte accounting on top of the entry
// cap: sizeOf sizes each retained value (nil sizes everything as 0),
// and maxBytes > 0 additionally evicts LRU entries once the resident
// sum exceeds the budget. The most recent entry is never evicted by the
// byte budget, so one oversized value parks instead of thrashing the
// cache empty.
func NewCacheSized(capacity int, maxBytes int64, sizeOf func(any) int64) *Cache {
	return &Cache{
		capacity: capacity,
		maxBytes: maxBytes,
		sizeOf:   sizeOf,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Get returns the cached value for key, marking it recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Do returns the value for key, computing it at most once across all
// concurrent callers: a cached value is returned immediately; callers
// arriving while an identical computation is in flight block and share
// its outcome; otherwise compute runs and its result (on success) is
// retained under LRU. The second return reports whether the value came
// from cache or from an in-flight computation rather than a fresh call.
func (c *Cache) Do(key string, compute func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.stats.Misses++
	c.mu.Unlock()

	// The flight must resolve even if compute panics (the panic then
	// propagates to this caller, e.g. net/http's handler recovery):
	// otherwise the key would be poisoned and coalesced waiters would
	// block forever.
	completed := false
	defer func() {
		if !completed {
			f.err = fmt.Errorf("service: cache: computation for key %s panicked", key[:8])
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if completed && f.err == nil && c.capacity > 0 {
			var size int64
			if c.sizeOf != nil {
				size = c.sizeOf(f.val)
			}
			c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: f.val, size: size})
			c.bytes += size
			for c.ll.Len() > c.capacity ||
				(c.maxBytes > 0 && c.bytes > c.maxBytes && c.ll.Len() > 1) {
				old := c.ll.Back()
				c.ll.Remove(old)
				e := old.Value.(*cacheEntry)
				delete(c.items, e.key)
				c.bytes -= e.size
				c.stats.Evictions++
			}
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = compute()
	completed = true
	return f.val, false, f.err
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Bytes = c.bytes
	return s
}
