// The live ops dashboard: one server-rendered, zero-dependency HTML
// page at GET /debug/dashboard showing what both daemons are doing
// right now - jobs in flight, worker liveness (coordinator role),
// cache hit rates, plan-warm status, and the slowest recently retained
// traces with links into the trace API. It auto-refreshes via a meta
// tag: no JavaScript, no assets, nothing to bundle.
package service

import (
	"fmt"
	"html/template"
	"net/http"
	"time"

	"drmap/internal/obs"
)

// DashboardOptions tune /debug/dashboard.
type DashboardOptions struct {
	// Role names the process on the page: "standalone", "coordinator"
	// or "worker" (empty renders as "standalone").
	Role string
	// Workers, when set, supplies the cluster membership table (the
	// coordinator role wires its Membership snapshot here).
	Workers func() []DashboardWorker
	// RefreshSeconds is the page's auto-refresh period (default 3).
	RefreshSeconds int
}

// DashboardWorker is one row of the dashboard's worker table.
type DashboardWorker struct {
	ID        string
	URL       string
	Capacity  int
	Live      bool
	AgeMillis int64
}

// dashboardCache is one cache section: stats plus the derived hit rate.
type dashboardCache struct {
	Name    string
	Stats   CacheStats
	HitRate string
}

type dashboardTrace struct {
	obs.TraceSummary
	Duration string
	Age      string
}

type dashboardJob struct {
	JobView
	Age      string
	Duration string
}

type dashboardData struct {
	Role    string
	Refresh int
	Version VersionResponse
	Uptime  string
	Now     string
	Health  HealthResponse
	Caches  []dashboardCache
	Warm    *WarmStatus
	Jobs    []dashboardJob
	Workers []DashboardWorker
	Slowest []dashboardTrace
	Store   obs.SpanStoreStats
}

var dashboardTmpl = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html><head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="{{.Refresh}}">
<title>drmap {{.Role}} dashboard</title>
<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 1.5rem; background: #111; color: #ddd; }
h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.5rem; border-bottom: 1px solid #333; padding-bottom: .25rem; }
table { border-collapse: collapse; margin-top: .5rem; }
th, td { text-align: left; padding: .2rem .8rem .2rem 0; border-bottom: 1px solid #222; }
th { color: #888; font-weight: normal; }
a { color: #7ad; text-decoration: none; }
.ok { color: #8d8; } .bad { color: #e77; } .dim { color: #777; }
</style>
</head><body>
<h1>drmap {{.Role}} <span class="dim">· {{.Version.Version}} {{.Version.GoVersion}}{{with .Version.Revision}} · {{.}}{{end}} · up {{.Uptime}} · {{.Now}}</span></h1>

<h2>Serving</h2>
<table>
<tr><th>workers</th><th>evaluations</th><th>traces retained</th><th>spans recorded</th><th>spans dropped</th><th>traces evicted</th></tr>
<tr><td>{{.Health.Workers}}</td><td>{{.Health.Evaluations}}</td><td>{{.Store.Traces}}</td><td>{{.Store.Recorded}}</td><td>{{.Store.DroppedSpans}}</td><td>{{.Store.Evicted}}</td></tr>
</table>

<h2>Caches</h2>
<table>
<tr><th>cache</th><th>hit rate</th><th>hits</th><th>misses</th><th>coalesced</th><th>entries</th><th>bytes</th><th>evictions</th></tr>
{{range .Caches}}<tr><td>{{.Name}}</td><td>{{.HitRate}}</td><td>{{.Stats.Hits}}</td><td>{{.Stats.Misses}}</td><td>{{.Stats.Coalesced}}</td><td>{{.Stats.Entries}}</td><td>{{.Stats.Bytes}}</td><td>{{.Stats.Evictions}}</td></tr>
{{end}}</table>

{{with .Warm}}<h2>Plan warmup</h2>
<table>
<tr><th>state</th><th>networks</th><th>backends</th><th>columns</th><th>errors</th></tr>
<tr><td>{{if eq .State "ready"}}<span class="ok">{{.State}}</span>{{else}}{{.State}}{{end}}</td><td>{{range .Networks}}{{.}} {{end}}</td><td>{{.Backends}}</td><td>{{.Columns}}</td><td>{{.Errors}}</td></tr>
</table>{{end}}

{{if .Workers}}<h2>Cluster workers</h2>
<table>
<tr><th>id</th><th>url</th><th>capacity</th><th>live</th><th>last heartbeat</th></tr>
{{range .Workers}}<tr><td>{{.ID}}</td><td>{{.URL}}</td><td>{{.Capacity}}</td><td>{{if .Live}}<span class="ok">live</span>{{else}}<span class="bad">dead</span>{{end}}</td><td>{{.AgeMillis}} ms ago</td></tr>
{{end}}</table>{{end}}

<h2>Jobs <span class="dim">(newest first)</span></h2>
{{if .Jobs}}<table>
<tr><th>id</th><th>kind</th><th>state</th><th>age</th><th>ran</th><th>trace</th></tr>
{{range .Jobs}}<tr><td>{{.ID}}</td><td>{{.Kind}}</td><td>{{if eq .State "failed"}}<span class="bad">{{.State}}</span>{{else if eq .State "succeeded"}}<span class="ok">{{.State}}</span>{{else}}{{.State}}{{end}}</td><td>{{.Age}}</td><td>{{.Duration}}</td><td><a href="/api/v1/traces/{{.TraceID}}">{{.TraceID}}</a></td></tr>
{{end}}</table>{{else}}<p class="dim">none</p>{{end}}

<h2>Slowest recent traces</h2>
{{if .Slowest}}<table>
<tr><th>trace</th><th>root</th><th>key</th><th>duration</th><th>spans</th><th>age</th><th>flags</th></tr>
{{range .Slowest}}<tr><td><a href="/api/v1/traces/{{.TraceID}}">{{.TraceID}}</a></td><td>{{.Root}}</td><td>{{.Key}}</td><td>{{.Duration}}</td><td>{{.Spans}}</td><td>{{.Age}}</td><td>{{if .Error}}<span class="bad">error</span>{{end}}{{if not .Complete}}<span class="dim">partial</span>{{end}}</td></tr>
{{end}}</table>{{else}}<p class="dim">none</p>{{end}}

<p class="dim">trace index: <a href="/api/v1/traces">/api/v1/traces</a> · metrics: <a href="/metrics">/metrics</a> · health: <a href="/healthz">/healthz</a></p>
</body></html>
`))

// hitRate renders a cache's hit+coalesced share of lookups.
func hitRate(st CacheStats) string {
	total := st.Hits + st.Misses + st.Coalesced
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(st.Hits+st.Coalesced)/float64(total))
}

func shortDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return d.Round(time.Second).String()
	}
}

// MountDashboard registers GET /debug/dashboard on the mux. jm may be
// nil (the jobs table renders empty).
func MountDashboard(mux *http.ServeMux, s *Service, jm *JobManager, opt DashboardOptions) {
	if opt.Role == "" {
		opt.Role = "standalone"
	}
	if opt.RefreshSeconds <= 0 {
		opt.RefreshSeconds = 3
	}
	mux.HandleFunc("GET /debug/dashboard", func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		data := dashboardData{
			Role:    opt.Role,
			Refresh: opt.RefreshSeconds,
			Version: Version(),
			Uptime:  now.Sub(obs.ProcessStart()).Round(time.Second).String(),
			Now:     now.Format(time.RFC3339),
			Health:  s.Health(),
			Caches: []dashboardCache{
				{Name: "results", Stats: s.CacheStats()},
				{Name: "count plans", Stats: s.PlanCacheStats()},
			},
		}
		for i := range data.Caches {
			data.Caches[i].HitRate = hitRate(data.Caches[i].Stats)
		}
		data.Warm = data.Health.Warm
		if st := s.Spans(); st != nil {
			data.Store = st.Stats()
			for _, sum := range st.Slowest(10) {
				data.Slowest = append(data.Slowest, dashboardTrace{
					TraceSummary: sum,
					Duration:     shortDur(time.Duration(sum.DurationMillis * float64(time.Millisecond))),
					Age:          shortDur(now.Sub(sum.Start)),
				})
			}
		}
		if jm != nil {
			for _, v := range jm.List(JobFilter{Limit: 15}) {
				dj := dashboardJob{JobView: v, Age: shortDur(now.Sub(v.CreatedAt))}
				switch {
				case !v.FinishedAt.IsZero():
					dj.Duration = shortDur(v.FinishedAt.Sub(v.StartedAt))
				case !v.StartedAt.IsZero():
					dj.Duration = shortDur(now.Sub(v.StartedAt)) + "…"
				}
				data.Jobs = append(data.Jobs, dj)
			}
		}
		if opt.Workers != nil {
			data.Workers = opt.Workers()
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := dashboardTmpl.Execute(w, data); err != nil {
			// Headers are out; nothing useful left to report.
			return
		}
	})
}
