// The service-side half of the count/price split (core/countplan.go):
// a content-addressed cache of backend-independent count plans, one per
// evaluated (layer, schedule) grid column. Every execution path that
// evaluates grid columns - the local parallel executor behind
// /api/v1/dse and the v2 jobs, the batch fan-out, and the cluster
// workers' shard endpoint - routes through columnEval, so a batch that
// fans one network over many DRAM backends counts each column once and
// reprices it per backend, and a shard re-dispatched (or duplicated)
// to the same worker reprices instead of recounting.
package service

import (
	"fmt"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/mapping"
)

// columnEvalFn evaluates one (layer, schedule) column of a job's grid
// into its cells; parallelDSE and evaluateColumns fan it out.
type columnEvalFn func(grids []core.LayerGrid, li, si int) []core.CellResult

// planKey content-addresses a job's count plan: the DSE cache key with
// everything priced per backend - cost sets, timing, controller
// capability, objective - stripped away, keeping only the count
// signature (core.CountKey) of the DRAM system. Jobs that differ only
// in backend (among backends sharing a die geometry) or in objective
// therefore share one plan. Policies are keyed by their full identity
// (ID, name and loop order), not the Table I ID alone: ID 0 marks
// *any* policy outside Table I, and shard requests carry arbitrary
// policy structs, so two distinct ID-0 policies must never alias.
type planKey struct {
	Accel     accel.Config
	Network   cnn.Network
	Schedules []string
	Policies  []mapping.Policy
	Count     core.CountKey
}

// planPrefix fingerprints the backend-independent part of a job; the
// per-column cache key is this prefix plus the column index.
func (s *Service) planPrefix(job DSEJob, ev *core.Evaluator) (string, error) {
	schedNames := make([]string, len(job.Schedules))
	for i, sc := range job.Schedules {
		schedNames[i] = sc.String()
	}
	return Fingerprint(cacheKey{Kind: "plan", Value: planKey{
		Accel:     job.Accel,
		Network:   job.Network,
		Schedules: schedNames,
		Policies:  job.Policies,
		Count:     ev.CountKey(),
	}})
}

// columnEval returns the column evaluator a job's execution uses. With
// the plan cache enabled, each column's count plan is computed at most
// once per count signature (content-addressed, single-flight: the same
// column counted concurrently for two backends coalesces) and repriced
// under the job's backend and objective; without it, the column is
// evaluated directly - the exact pre-split path. Both produce
// bit-for-bit identical cells (core's count -> price contract).
func (s *Service) columnEval(job DSEJob, ev *core.Evaluator) columnEvalFn {
	direct := func(grids []core.LayerGrid, li, si int) []core.CellResult {
		return ev.EvaluateScheduleColumn(grids[li], si, job.Schedules[si], job.Policies, job.Objective)
	}
	if s.planCache == nil {
		return direct
	}
	prefix, err := s.planPrefix(job, ev)
	if err != nil {
		// An unfingerprintable job (cannot happen for resolved jobs, which
		// JSON-encode by construction) still evaluates correctly, just
		// without sharing.
		return direct
	}
	return func(grids []core.LayerGrid, li, si int) []core.CellResult {
		key := fmt.Sprintf("%s:%d:%d", prefix, li, si)
		v, _, err := s.planCache.Do(key, func() (any, error) {
			return ev.CountScheduleColumn(grids[li], si, job.Schedules[si], job.Policies), nil
		})
		if err != nil {
			return direct(grids, li, si)
		}
		return ev.PriceCells(v.(*core.CountColumn), job.Objective)
	}
}
