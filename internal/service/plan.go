// The service-side half of the count/price split (core/countplan.go):
// a content-addressed cache of backend-independent count plans, one per
// evaluated (layer, schedule) grid column. Every execution path that
// evaluates grid columns - the local parallel executor behind
// /api/v1/dse and the v2 jobs, the batch fan-out, and the cluster
// workers' shard endpoint - routes through columnEval, so a batch that
// fans one network over many DRAM backends counts each column once and
// reprices it per backend, and a shard re-dispatched (or duplicated)
// to the same worker reprices instead of recounting.
package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/mapping"
	"drmap/internal/obs"
)

// cellBufs pools the per-column []core.CellResult buffers of the warm
// reprice loop. parallelDSE returns a layer's column buffers here right
// after reducing the layer (the reduction copies the cells it keeps),
// so a steady-state batch reprices into recycled buffers instead of
// allocating one slice per (column, backend). Shard evaluations never
// recycle - their cells are serialized to the coordinator - which is
// safe: the pool simply doesn't see those buffers again.
var cellBufs = sync.Pool{New: func() any { return new([]core.CellResult) }}

func getCellBuf() []core.CellResult {
	return *cellBufs.Get().(*[]core.CellResult)
}

func putCellBuf(buf []core.CellResult) {
	if buf == nil {
		return
	}
	cellBufs.Put(&buf)
}

// planSizeBytes sizes a cached count plan for the plan cache's byte
// budget (Options.PlanCacheBytes).
func planSizeBytes(v any) int64 {
	if fc, ok := v.(*core.FlatColumn); ok {
		return fc.SizeBytes()
	}
	return 0
}

// columnEvalFn evaluates one (layer, schedule) column of a job's grid
// into its cells; parallelDSE and evaluateColumns fan it out. ctx
// carries the evaluation's telemetry hooks (trace ID, phase recorder),
// never cancellation - the pool feeding loop owns that.
type columnEvalFn func(ctx context.Context, grids []core.LayerGrid, li, si int) []core.CellResult

// recordPhase observes one finished evaluation phase everywhere it is
// watched: the service-wide drmap_eval_phase_seconds histogram, the
// per-job recorder riding ctx (core.WithPhases), and - when ctx
// carries a span sink - a retroactive span named after the phase, so
// count/price work shows up in the trace tree under whatever span
// (dse, shard.evaluate) encloses the evaluation.
func (s *Service) recordPhase(ctx context.Context, phase string, start time.Time, attrs ...obs.Attr) {
	end := time.Now()
	d := end.Sub(start)
	s.phaseSeconds.With(phase).Observe(d.Seconds())
	if r := core.PhasesFrom(ctx); r != nil {
		r.RecordPhase(phase, d)
	}
	obs.RecordSpan(ctx, phase, start, end, attrs...)
}

// planKey content-addresses a job's count plan: the DSE cache key with
// everything priced per backend - cost sets, timing, controller
// capability, objective - stripped away, keeping only the count
// signature (core.CountKey) of the DRAM system. Jobs that differ only
// in backend (among backends sharing a die geometry) or in objective
// therefore share one plan. Policies are keyed by their full identity
// (ID, name and loop order), not the Table I ID alone: ID 0 marks
// *any* policy outside Table I, and shard requests carry arbitrary
// policy structs, so two distinct ID-0 policies must never alias.
type planKey struct {
	Accel     accel.Config
	Network   cnn.Network
	Schedules []string
	Policies  []mapping.Policy
	Count     core.CountKey
}

// planPrefix fingerprints the backend-independent part of a job; the
// per-column cache key is this prefix plus the column index.
func (s *Service) planPrefix(job DSEJob, ev *core.Evaluator) (string, error) {
	schedNames := make([]string, len(job.Schedules))
	for i, sc := range job.Schedules {
		schedNames[i] = sc.String()
	}
	return Fingerprint(cacheKey{Kind: "plan", Value: planKey{
		Accel:     job.Accel,
		Network:   job.Network,
		Schedules: schedNames,
		Policies:  job.Policies,
		Count:     ev.CountKey(),
	}})
}

// countPlan returns the plan-cache compute closure for one column:
// count the column, flatten it, and book the time as the count phase.
// columnEval's cached branch and the boot-time plan warmer share it, so
// a warmed plan is byte-for-byte the plan a live request would build.
func (s *Service) countPlan(ctx context.Context, job DSEJob, ev *core.Evaluator, grids []core.LayerGrid, li, si int) func() (any, error) {
	return func() (any, error) {
		start := time.Now()
		counts := ev.CountScheduleColumn(grids[li], si, job.Schedules[si], job.Policies)
		flat := counts.Flatten()
		s.recordPhase(ctx, core.PhaseCount, start,
			obs.Int("layer", li), obs.Int("schedule", si))
		return flat, nil
	}
}

// columnEval returns the column evaluator a job's execution uses. With
// the plan cache enabled, each column's count plan is computed at most
// once per count signature (content-addressed, single-flight: the same
// column counted concurrently for two backends coalesces), stored
// vectorized (core.FlatColumn) and repriced under the job's backend and
// objective as a flat linear scan into a pooled cell buffer; without
// it, the column runs the explicit count -> price composition, which
// core documents as bit-for-bit identical to the pre-split
// EvaluateScheduleColumn - and core pins the flat scan to that same
// struct path, so both branches still produce identical cells. Both
// split their time into the count and price phases (recordPhase) - the
// measurement the warm-repricing work reads. On the cached path only a
// fresh count (cache miss) records count time - flattening is part of
// plan construction, so it counts there - while a hit or coalesced wait
// spends pricing time alone, which is exactly what the split should
// show.
func (s *Service) columnEval(job DSEJob, ev *core.Evaluator) columnEvalFn {
	direct := func(ctx context.Context, grids []core.LayerGrid, li, si int) []core.CellResult {
		start := time.Now()
		counts := ev.CountScheduleColumn(grids[li], si, job.Schedules[si], job.Policies)
		s.recordPhase(ctx, core.PhaseCount, start,
			obs.Int("layer", li), obs.Int("schedule", si))
		start = time.Now()
		cells := ev.PriceCellsInto(counts, job.Objective, getCellBuf())
		s.recordPhase(ctx, core.PhasePrice, start,
			obs.Int("layer", li), obs.Int("schedule", si))
		return cells
	}
	if s.planCache == nil {
		return direct
	}
	prefix, err := s.planPrefix(job, ev)
	if err != nil {
		// An unfingerprintable job (cannot happen for resolved jobs, which
		// JSON-encode by construction) still evaluates correctly, just
		// without sharing.
		return direct
	}
	return func(ctx context.Context, grids []core.LayerGrid, li, si int) []core.CellResult {
		key := fmt.Sprintf("%s:%d:%d", prefix, li, si)
		v, shared, err := s.planCache.Do(key, s.countPlan(ctx, job, ev, grids, li, si))
		if err != nil {
			return direct(ctx, grids, li, si)
		}
		start := time.Now()
		cells := ev.PriceFlatInto(v.(*core.FlatColumn), job.Objective, getCellBuf())
		s.recordPhase(ctx, core.PhasePrice, start,
			obs.Int("layer", li), obs.Int("schedule", si),
			obs.Bool("plan_cache_hit", shared))
		return cells
	}
}
