// The service-side half of the count/price split (core/countplan.go):
// a content-addressed cache of backend-independent count plans, one per
// evaluated (layer, schedule) grid column. Every execution path that
// evaluates grid columns - the local parallel executor behind
// /api/v1/dse and the v2 jobs, the batch fan-out, and the cluster
// workers' shard endpoint - routes through columnEval, so a batch that
// fans one network over many DRAM backends counts each column once and
// reprices it per backend, and a shard re-dispatched (or duplicated)
// to the same worker reprices instead of recounting.
package service

import (
	"context"
	"fmt"
	"time"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/mapping"
)

// columnEvalFn evaluates one (layer, schedule) column of a job's grid
// into its cells; parallelDSE and evaluateColumns fan it out. ctx
// carries the evaluation's telemetry hooks (trace ID, phase recorder),
// never cancellation - the pool feeding loop owns that.
type columnEvalFn func(ctx context.Context, grids []core.LayerGrid, li, si int) []core.CellResult

// recordPhase observes one finished evaluation phase everywhere it is
// watched: the service-wide drmap_eval_phase_seconds histogram, and
// the per-job recorder riding ctx (core.WithPhases), when one is
// attached.
func (s *Service) recordPhase(ctx context.Context, phase string, start time.Time) {
	d := time.Since(start)
	s.phaseSeconds.With(phase).Observe(d.Seconds())
	if r := core.PhasesFrom(ctx); r != nil {
		r.RecordPhase(phase, d)
	}
}

// planKey content-addresses a job's count plan: the DSE cache key with
// everything priced per backend - cost sets, timing, controller
// capability, objective - stripped away, keeping only the count
// signature (core.CountKey) of the DRAM system. Jobs that differ only
// in backend (among backends sharing a die geometry) or in objective
// therefore share one plan. Policies are keyed by their full identity
// (ID, name and loop order), not the Table I ID alone: ID 0 marks
// *any* policy outside Table I, and shard requests carry arbitrary
// policy structs, so two distinct ID-0 policies must never alias.
type planKey struct {
	Accel     accel.Config
	Network   cnn.Network
	Schedules []string
	Policies  []mapping.Policy
	Count     core.CountKey
}

// planPrefix fingerprints the backend-independent part of a job; the
// per-column cache key is this prefix plus the column index.
func (s *Service) planPrefix(job DSEJob, ev *core.Evaluator) (string, error) {
	schedNames := make([]string, len(job.Schedules))
	for i, sc := range job.Schedules {
		schedNames[i] = sc.String()
	}
	return Fingerprint(cacheKey{Kind: "plan", Value: planKey{
		Accel:     job.Accel,
		Network:   job.Network,
		Schedules: schedNames,
		Policies:  job.Policies,
		Count:     ev.CountKey(),
	}})
}

// columnEval returns the column evaluator a job's execution uses. With
// the plan cache enabled, each column's count plan is computed at most
// once per count signature (content-addressed, single-flight: the same
// column counted concurrently for two backends coalesces) and repriced
// under the job's backend and objective; without it, the column runs
// the explicit count -> price composition, which core documents as
// bit-for-bit identical to the pre-split EvaluateScheduleColumn. Both
// paths therefore produce identical cells, and both split their time
// into the count and price phases (recordPhase) - the measurement the
// warm-repricing work reads. On the cached path only a fresh count
// (cache miss) records count time: a hit or coalesced wait spends
// pricing time alone, which is exactly what the split should show.
func (s *Service) columnEval(job DSEJob, ev *core.Evaluator) columnEvalFn {
	direct := func(ctx context.Context, grids []core.LayerGrid, li, si int) []core.CellResult {
		start := time.Now()
		counts := ev.CountScheduleColumn(grids[li], si, job.Schedules[si], job.Policies)
		s.recordPhase(ctx, core.PhaseCount, start)
		start = time.Now()
		cells := ev.PriceCells(counts, job.Objective)
		s.recordPhase(ctx, core.PhasePrice, start)
		return cells
	}
	if s.planCache == nil {
		return direct
	}
	prefix, err := s.planPrefix(job, ev)
	if err != nil {
		// An unfingerprintable job (cannot happen for resolved jobs, which
		// JSON-encode by construction) still evaluates correctly, just
		// without sharing.
		return direct
	}
	return func(ctx context.Context, grids []core.LayerGrid, li, si int) []core.CellResult {
		key := fmt.Sprintf("%s:%d:%d", prefix, li, si)
		v, _, err := s.planCache.Do(key, func() (any, error) {
			start := time.Now()
			counts := ev.CountScheduleColumn(grids[li], si, job.Schedules[si], job.Policies)
			s.recordPhase(ctx, core.PhaseCount, start)
			return counts, nil
		})
		if err != nil {
			return direct(ctx, grids, li, si)
		}
		start := time.Now()
		cells := ev.PriceCells(v.(*core.CountColumn), job.Objective)
		s.recordPhase(ctx, core.PhasePrice, start)
		return cells
	}
}
