package service

import (
	"drmap/internal/obs"
)

// Metric is one unlabeled counter of the legacy metrics snapshot. The
// snapshot predates the obs registry and remains the integration seam
// for components that contribute flat gauges (the job store, cluster
// roles, embedders via Options.ExtraMetrics); a registry gatherer
// bridges every snapshot entry into GET /metrics, names unchanged.
type Metric struct {
	Name  string
	Value int64
}

// Metrics snapshots the serving counters: evaluations, result-cache and
// count-plan-cache effectiveness, pool size, then whatever the
// configured extra source adds (cluster wiring contributes worker,
// in-flight-shard and shard-cache gauges).
func (s *Service) Metrics() []Metric {
	cs := s.CacheStats()
	ps := s.PlanCacheStats()
	out := []Metric{
		{Name: "drmap_evaluations_total", Value: s.Evaluations()},
		{Name: "drmap_cache_hits_total", Value: cs.Hits},
		{Name: "drmap_cache_misses_total", Value: cs.Misses},
		{Name: "drmap_cache_coalesced_total", Value: cs.Coalesced},
		{Name: "drmap_cache_evictions_total", Value: cs.Evictions},
		{Name: "drmap_cache_entries", Value: int64(cs.Entries)},
		{Name: "drmap_plan_cache_hits_total", Value: ps.Hits},
		{Name: "drmap_plan_cache_misses_total", Value: ps.Misses},
		{Name: "drmap_plan_cache_coalesced_total", Value: ps.Coalesced},
		{Name: "drmap_plan_cache_evictions_total", Value: ps.Evictions},
		{Name: "drmap_plan_cache_entries", Value: int64(ps.Entries)},
		{Name: "drmap_plan_cache_bytes", Value: ps.Bytes},
		{Name: "drmap_pool_workers", Value: int64(s.workers)},
	}
	if w := s.warm; w != nil {
		st := w.status()
		ready := int64(0)
		if st.State == "ready" {
			ready = 1
		}
		out = append(out,
			Metric{Name: "drmap_plan_warm_columns_total", Value: st.Columns},
			Metric{Name: "drmap_plan_warm_errors_total", Value: st.Errors},
			Metric{Name: "drmap_plan_warm_backends_total", Value: st.Backends},
			Metric{Name: "drmap_plan_warm_ready", Value: ready},
		)
	}
	if s.extraMetrics != nil {
		out = append(out, s.extraMetrics()...)
	}
	return out
}

// MetricsText renders GET /metrics: the full Prometheus text
// exposition of the service registry - instrumented histograms and
// labeled counters plus every legacy snapshot counter, with # HELP and
// # TYPE metadata. Unlabeled counters still render as plain
// "name value" lines, so pre-exposition consumers keep working.
func (s *Service) MetricsText() string {
	return s.registry.Expose()
}

// Registry returns the service's metrics registry, the one GET
// /metrics renders. Components wired around the service (job manager,
// cluster roles, commands) register their instruments here so one
// scrape covers the whole process.
func (s *Service) Registry() *obs.Registry {
	return s.registry
}

// metricHelp is the exposition metadata for every metric name the
// legacy snapshot (Metrics) can emit, including the contributions of
// the job store and cluster roles; names a snapshot emits beyond this
// catalog (embedder extras) fall back to the registry's heuristic
// metadata, so the page always parses.
var metricHelp = map[string]struct{ kind, help string }{
	"drmap_evaluations_total":          {obs.KindCounter, "Fresh (non-cached, non-coalesced) computations run."},
	"drmap_cache_hits_total":           {obs.KindCounter, "Result-cache lookups served from a completed entry."},
	"drmap_cache_misses_total":         {obs.KindCounter, "Result-cache lookups that required a fresh computation."},
	"drmap_cache_coalesced_total":      {obs.KindCounter, "Result-cache lookups that joined an identical in-flight computation."},
	"drmap_cache_evictions_total":      {obs.KindCounter, "Result-cache LRU evictions."},
	"drmap_cache_entries":              {obs.KindGauge, "Resident result-cache entries."},
	"drmap_plan_cache_hits_total":      {obs.KindCounter, "Count-plan-cache hits (columns repriced instead of recounted)."},
	"drmap_plan_cache_misses_total":    {obs.KindCounter, "Count-plan-cache misses (columns counted fresh)."},
	"drmap_plan_cache_coalesced_total": {obs.KindCounter, "Count-plan computations joined while in flight."},
	"drmap_plan_cache_evictions_total": {obs.KindCounter, "Count-plan-cache LRU evictions."},
	"drmap_plan_cache_entries":         {obs.KindGauge, "Resident count-plan-cache entries."},
	"drmap_plan_cache_bytes":           {obs.KindGauge, "Resident bytes of vectorized count plans in the plan cache."},
	"drmap_pool_workers":               {obs.KindGauge, "Size of the DSE/characterization worker pool."},

	"drmap_plan_warm_columns_total":  {obs.KindCounter, "Grid columns the plan warmer has ensured resident."},
	"drmap_plan_warm_errors_total":   {obs.KindCounter, "Plan-warm attempts that failed (e.g. invalid backend configs)."},
	"drmap_plan_warm_backends_total": {obs.KindCounter, "Backends fully warmed (boot pass plus registration-time)."},
	"drmap_plan_warm_ready":          {obs.KindGauge, "1 once the boot warm pass over the backend registry has finished."},

	"drmap_jobs_submitted_total": {obs.KindCounter, "Jobs admitted by the job store (v2 submits and v1 sync wrappers)."},
	"drmap_jobs_evicted_total":   {obs.KindCounter, "Jobs evicted from the job store (TTL or capacity)."},
	"drmap_jobs_active":          {obs.KindGauge, "Stored jobs not yet terminal."},
	"drmap_jobs_stored":          {obs.KindGauge, "Jobs resident in the store (active plus retained terminal)."},

	// The cluster names below mirror Coordinator.Metrics and
	// Worker.Metrics exactly; TestMetricsHelpCatalog (internal/cluster)
	// fails the build when the two drift apart again.
	"drmap_cluster_workers":                     {obs.KindGauge, "Cluster members currently alive (heartbeat within TTL)."},
	"drmap_cluster_inflight_shards":             {obs.KindGauge, "Shards currently dispatched and unresolved."},
	"drmap_cluster_shards_completed_total":      {obs.KindCounter, "Shards completed across all distributed runs."},
	"drmap_cluster_shard_retries_total":         {obs.KindCounter, "Shard dispatch attempts beyond each shard's first."},
	"drmap_cluster_shard_cache_hits_total":      {obs.KindCounter, "Shard-cache lookups served from a completed entry."},
	"drmap_cluster_shard_cache_misses_total":    {obs.KindCounter, "Shard-cache lookups that dispatched fresh work."},
	"drmap_cluster_shard_cache_coalesced_total": {obs.KindCounter, "Shard dispatches joined while an identical shard was in flight."},
	"drmap_cluster_shard_cache_evictions_total": {obs.KindCounter, "Shard-cache LRU evictions."},
	"drmap_cluster_shard_cache_entries":         {obs.KindGauge, "Resident shard-cache entries."},

	"drmap_worker_shards_served_total":   {obs.KindCounter, "Shard requests this worker evaluated."},
	"drmap_worker_shards_rejected_total": {obs.KindCounter, "Shard requests this worker rejected."},
}

// cacheOutcomeSamples flattens one cache's stats into the labeled
// drmap_cache_requests_total series.
func cacheOutcomeSamples(cache string, st CacheStats) []obs.Sample {
	label := func(outcome string, v int64) obs.Sample {
		return obs.Sample{
			Name:   "drmap_cache_requests_total",
			Labels: []obs.Label{{Key: "cache", Value: cache}, {Key: "outcome", Value: outcome}},
			Value:  float64(v),
		}
	}
	return []obs.Sample{
		label("hit", st.Hits),
		label("miss", st.Misses),
		label("coalesced", st.Coalesced),
	}
}

// registerMetrics wires the service's families into its registry:
// metadata for every cataloged legacy name, the snapshot gatherer, the
// labeled cache-outcome view of the result and plan caches, and the
// count/price phase histogram the column evaluator observes.
func (s *Service) registerMetrics() {
	r := s.registry
	for name, d := range metricHelp {
		r.Describe(name, d.kind, d.help)
	}
	r.Describe("drmap_cache_requests_total", obs.KindCounter,
		"Cache lookups by cache (result, plan, shard) and outcome (hit, miss, coalesced).")
	s.phaseSeconds = r.Histogram("drmap_eval_phase_seconds",
		"Evaluation wall-clock per phase: count (backend-independent tile-group counting) vs price (per-backend costing).",
		nil, "phase")
	s.simCommands = r.Counter("drmap_sim_commands_total",
		"DRAM commands issued by the cycle-accurate simulator, by JEDEC mnemonic (ACT, PRE, RD, WR, SASEL, REF).",
		"kind")
	s.simEngineSeconds = r.Histogram("drmap_sim_engine_seconds",
		"Simulate evaluation wall-clock by discrete-event engine (serial vs parallel); both engines produce bit-for-bit identical results.",
		nil, "engine")
	// Pre-touch the full label vocabularies so a scrape before the
	// first simulate run still shows every series.
	for _, kind := range []string{"ACT", "PRE", "RD", "WR", "SASEL", "REF"} {
		s.simCommands.With(kind)
	}
	for _, engine := range []string{"serial", "parallel"} {
		s.simEngineSeconds.With(engine)
	}
	r.AddGatherer(func() []obs.Sample {
		metrics := s.Metrics()
		out := make([]obs.Sample, 0, len(metrics)+6)
		for _, m := range metrics {
			out = append(out, obs.Sample{Name: m.Name, Value: float64(m.Value)})
		}
		out = append(out, cacheOutcomeSamples("result", s.CacheStats())...)
		out = append(out, cacheOutcomeSamples("plan", s.PlanCacheStats())...)
		return out
	})
}
