package service

import (
	"fmt"
	"strings"
)

// Metric is one counter on the plain-text GET /metrics endpoint.
type Metric struct {
	Name  string
	Value int64
}

// Metrics snapshots the serving counters: evaluations, result-cache and
// count-plan-cache effectiveness, pool size, then whatever the
// configured extra source adds (cluster wiring contributes worker,
// in-flight-shard and shard-cache gauges).
func (s *Service) Metrics() []Metric {
	cs := s.CacheStats()
	ps := s.PlanCacheStats()
	out := []Metric{
		{Name: "drmap_evaluations_total", Value: s.Evaluations()},
		{Name: "drmap_cache_hits_total", Value: cs.Hits},
		{Name: "drmap_cache_misses_total", Value: cs.Misses},
		{Name: "drmap_cache_coalesced_total", Value: cs.Coalesced},
		{Name: "drmap_cache_evictions_total", Value: cs.Evictions},
		{Name: "drmap_cache_entries", Value: int64(cs.Entries)},
		{Name: "drmap_plan_cache_hits_total", Value: ps.Hits},
		{Name: "drmap_plan_cache_misses_total", Value: ps.Misses},
		{Name: "drmap_plan_cache_coalesced_total", Value: ps.Coalesced},
		{Name: "drmap_plan_cache_evictions_total", Value: ps.Evictions},
		{Name: "drmap_plan_cache_entries", Value: int64(ps.Entries)},
		{Name: "drmap_pool_workers", Value: int64(s.workers)},
	}
	if s.extraMetrics != nil {
		out = append(out, s.extraMetrics()...)
	}
	return out
}

// MetricsText renders the counters in the Prometheus text exposition
// style (one "name value" line per counter), the format GET /metrics
// serves.
func (s *Service) MetricsText() string {
	var b strings.Builder
	for _, m := range s.Metrics() {
		fmt.Fprintf(&b, "%s %d\n", m.Name, m.Value)
	}
	return b.String()
}
