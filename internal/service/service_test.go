package service

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/report"
	"drmap/internal/tiling"
)

func TestServiceDSEMatchesSerialAndCaches(t *testing.T) {
	svc := New(Options{Workers: 4, CacheEntries: 16})
	req := DSERequest{Arch: "ddr3", Network: "lenet5"}
	resp, err := svc.DSE(context.Background(), req)
	if err != nil {
		t.Fatalf("DSE: %v", err)
	}
	if resp.Cached {
		t.Error("first request reported cached")
	}
	if resp.Network != "LeNet-5" && resp.Network != "lenet5" {
		t.Logf("network name: %s", resp.Network)
	}
	ev := testEvaluators(t)[dram.DDR3]
	serial, err := core.RunDSE(cnn.LeNet5(), ev, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if len(resp.Result.Layers) != len(serial.Layers) {
		t.Fatalf("got %d layers, want %d", len(resp.Result.Layers), len(serial.Layers))
	}
	for i, lj := range resp.Result.Layers {
		ls := serial.Layers[i]
		if lj.MinEDPJs != ls.MinEDP {
			t.Errorf("layer %s: MinEDP %.17g != serial %.17g", lj.Layer, lj.MinEDPJs, ls.MinEDP)
		}
		if lj.Mapping.ID != ls.Best.Policy.ID {
			t.Errorf("layer %s: mapping %d != serial %d", lj.Layer, lj.Mapping.ID, ls.Best.Policy.ID)
		}
	}
	if resp.Result.TotalEDPJs != serial.TotalEDP() {
		t.Errorf("total EDP %.17g != serial %.17g", resp.Result.TotalEDPJs, serial.TotalEDP())
	}

	evalsAfterFirst := svc.Evaluations()
	again, err := svc.DSE(context.Background(), req)
	if err != nil {
		t.Fatalf("repeat DSE: %v", err)
	}
	if !again.Cached {
		t.Error("repeated identical request was not served from cache")
	}
	if got := svc.Evaluations(); got != evalsAfterFirst {
		t.Errorf("repeat request re-evaluated: %d -> %d", evalsAfterFirst, got)
	}
	again.Cached = resp.Cached
	if !reflect.DeepEqual(resp, again) {
		t.Error("cached response differs from the original")
	}
}

// TestServiceDSESingleFlight: N concurrent identical requests cost one
// DSE evaluation.
func TestServiceDSESingleFlight(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 16})
	// Warm the characterization so the only remaining computation is
	// the DSE itself.
	if _, err := svc.Characterize(context.Background(), CharacterizeRequest{Archs: []string{"salp1"}}); err != nil {
		t.Fatalf("warm characterize: %v", err)
	}
	before := svc.Evaluations()

	const n = 8
	req := DSERequest{Arch: "salp1", Network: "lenet5"}
	var wg sync.WaitGroup
	responses := make([]*DSEResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = svc.DSE(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
	}
	if got := svc.Evaluations() - before; got != 1 {
		t.Errorf("%d concurrent identical requests cost %d evaluations, want 1", n, got)
	}
	for i := 1; i < n; i++ {
		if responses[i].Result.TotalEDPJs != responses[0].Result.TotalEDPJs {
			t.Errorf("request %d observed a different result", i)
		}
	}
}

func TestServiceDSEDistinguishesRequests(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 16})
	a, err := svc.DSE(context.Background(), DSERequest{Arch: "ddr3", Network: "lenet5"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.DSE(context.Background(), DSERequest{Arch: "ddr3", Network: "lenet5", Objective: "energy"})
	if err != nil {
		t.Fatal(err)
	}
	if b.Cached {
		t.Error("different objective hit the same cache entry")
	}
	c, err := svc.DSE(context.Background(), DSERequest{Arch: "ddr3", Network: "lenet5", Policies: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cached {
		t.Error("restricted policy set hit the full-search cache entry")
	}
	_ = a
}

func TestServiceDSECustomNetwork(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 4})
	req := DSERequest{
		Arch: "ddr3",
		Layers: []LayerJSON{
			{Name: "conv1", H: 8, W: 8, J: 16, I: 3, P: 3, Q: 3, Stride: 1, Pad: 1},
			{Name: "fc", Kind: "fc", H: 1, W: 1, J: 10, I: 1024, P: 1, Q: 1, Stride: 1},
		},
	}
	resp, err := svc.DSE(context.Background(), req)
	if err != nil {
		t.Fatalf("custom network DSE: %v", err)
	}
	if len(resp.Result.Layers) != 2 {
		t.Fatalf("got %d layers, want 2", len(resp.Result.Layers))
	}
	if resp.Result.TotalEDPJs <= 0 {
		t.Error("non-positive total EDP")
	}
}

func TestServiceDSERejectsBadInput(t *testing.T) {
	svc := New(Options{Workers: 1, CacheEntries: 4})
	cases := []DSERequest{
		{Arch: "ddr9", Network: "lenet5"},
		{Arch: "ddr3", Network: "mysterynet"},
		{Arch: "ddr3"},
		{Arch: "ddr3", Network: "lenet5", Policies: []int{42}},
		{Arch: "ddr3", Network: "lenet5", Objective: "vibes"},
		{Arch: "ddr3", Network: "lenet5", Schedules: []string{"never"}},
		{Arch: "ddr3", Network: "lenet5", Layers: []LayerJSON{{Name: "x"}}},
	}
	for i, req := range cases {
		if _, err := svc.DSE(context.Background(), req); err == nil {
			t.Errorf("case %d: expected an error for %+v", i, req)
		}
	}
}

func TestServiceCharacterize(t *testing.T) {
	svc := New(Options{Workers: 4, CacheEntries: 16})
	resp, err := svc.Characterize(context.Background(), CharacterizeRequest{})
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	backends := dram.Backends()
	if len(resp.Profiles) != len(backends) {
		t.Fatalf("got %d profiles, want %d (one per registered backend)", len(resp.Profiles), len(backends))
	}
	for i, p := range resp.Profiles {
		if p.Arch != backends[i].Name {
			t.Errorf("profile %d is %s, want %s", i, p.Arch, backends[i].Name)
		}
		if p.Backend != backends[i].ID {
			t.Errorf("profile %d backend %q, want %q", i, p.Backend, backends[i].ID)
		}
		if len(p.Conditions) != 5 {
			t.Errorf("%s: %d conditions, want 5", p.Arch, len(p.Conditions))
		}
		for _, c := range p.Conditions {
			if c.Stream.Cycles <= 0 || c.Stream.EnergyJ <= 0 {
				t.Errorf("%s/%s: non-positive stream cost", p.Arch, c.Condition)
			}
		}
	}
	again, err := svc.Characterize(context.Background(), CharacterizeRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeat characterization not served from cache")
	}
}

func TestServiceSimulate(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 4})
	req := SimulateRequest{
		Arch:     "ddr3",
		Policy:   3,
		Layer:    LayerJSON{Name: "c1", H: 10, W: 10, J: 16, I: 6, P: 5, Q: 5, Stride: 1},
		Tiling:   report.TilingJSON{Th: 10, Tw: 10, Tj: 16, Ti: 6},
		Schedule: "ofms",
	}
	resp, err := svc.Simulate(context.Background(), req)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if resp.Cost.Cycles <= 0 || resp.Cost.EnergyJ <= 0 || resp.Cost.EDPJs <= 0 {
		t.Errorf("degenerate simulated cost %+v", resp.Cost)
	}
	again, err := svc.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeat simulation not cached")
	}
}

func TestServiceSweep(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 4})
	resp, err := svc.Sweep(context.Background(), SweepRequest{Kind: "subarrays", Values: []int{2, 4}, Network: "lenet5"})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(resp.Table.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(resp.Table.Rows))
	}
	if _, err := svc.Sweep(context.Background(), SweepRequest{Kind: "nope"}); err == nil {
		t.Error("expected an error for an unknown sweep kind")
	}
}

func TestServicePoliciesAndHealth(t *testing.T) {
	svc := New(Options{Workers: 3, CacheEntries: 4})
	pols := svc.Policies()
	if len(pols.Policies) != 6 {
		t.Fatalf("got %d policies, want 6", len(pols.Policies))
	}
	if pols.Policies[2].ID != 3 || pols.Policies[2].Name == "" {
		t.Errorf("policy 3 malformed: %+v", pols.Policies[2])
	}
	h := svc.Health()
	if h.Status != "ok" || h.Workers != 3 {
		t.Errorf("health %+v", h)
	}
}
