package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"drmap/internal/core"
)

func submitJob(t *testing.T, baseURL, body string) JobView {
	t.Helper()
	resp, raw := postJSON(t, baseURL+"/api/v2/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var view JobView
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatalf("decode job view: %v\n%s", err, raw)
	}
	if view.ID == "" {
		t.Fatalf("job view without ID: %s", raw)
	}
	return view
}

func getJob(t *testing.T, baseURL, id string) JobView {
	t.Helper()
	resp, err := http.Get(baseURL + "/api/v2/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

// holdingRunner parks DSE jobs for one backend ID until released;
// everything else (and everything after release) falls back to the
// local pool via ErrNoWorkers. It makes "item 1 still running while
// item 0 streams" deterministic instead of a race against the
// evaluator's speed.
type holdingRunner struct {
	holdID  string
	release chan struct{}
}

func (r *holdingRunner) RunDSE(ctx context.Context, job DSEJob) (*core.DSEResult, error) {
	if job.Backend.ID == r.holdID {
		select {
		case <-r.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("holdingRunner declines: %w", ErrNoWorkers)
}

// TestHTTPV2BatchStreamsWhileRunning is the tentpole acceptance flow:
// a batch job submitted via POST /api/v2/jobs streams its first item
// over /events while the second is still evaluating; the stream is
// then abandoned (client disconnect) and the job's full outcome is
// still retrievable - from the job store directly and as a complete
// event replay.
func TestHTTPV2BatchStreamsWhileRunning(t *testing.T) {
	runner := &holdingRunner{holdID: "salp2", release: make(chan struct{})}
	svc := New(Options{Workers: 1, CacheEntries: 16, Runner: runner})
	ts := newTestServer(t, svc)

	// Warm item 0 so it commits instantly; item 1 is held by the
	// runner until this test has proven the job was mid-flight.
	if resp, body := postJSON(t, ts.URL+"/api/v1/dse", `{"arch":"ddr3","network":"lenet5"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm DSE: %d %s", resp.StatusCode, body)
	}
	view := submitJob(t, ts.URL, `{"kind":"batch","batch":{"jobs":[
		{"arch":"ddr3","network":"lenet5"},
		{"arch":"salp2","network":"alexnet"}]}}`)

	// Open the NDJSON stream and read up to the first item event.
	streamResp, err := http.Get(ts.URL + "/api/v2/jobs/" + view.ID + "/events?from=0")
	if err != nil {
		t.Fatal(err)
	}
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	dec := json.NewDecoder(streamResp.Body)
	var firstItem JobEvent
	for {
		var e JobEvent
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("stream ended before any item event: %v", err)
		}
		if e.Type == EventItem {
			firstItem = e
			break
		}
	}
	if firstItem.Item == nil || firstItem.Item.Error != "" || firstItem.Item.Result == nil {
		t.Fatalf("first item event malformed: %+v", firstItem)
	}
	if firstItem.Index != 0 {
		t.Errorf("first streamed item has index %d, want 0 (the cached job)", firstItem.Index)
	}

	// The stream delivered item 0 while item 1 (a full AlexNet search
	// on one worker) is still running: the job must not be terminal.
	mid := getJob(t, ts.URL, view.ID)
	if mid.State.Terminal() {
		t.Errorf("job already %s right after the first item streamed", mid.State)
	}

	// Client disconnect: drop the stream mid-job, then let item 1 run.
	streamResp.Body.Close()
	close(runner.release)

	// The job finishes regardless; its result is retrievable from the
	// store afterward.
	deadline := time.Now().Add(2 * time.Minute)
	var final JobView
	for {
		final = getJob(t, ts.URL, view.ID)
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished after the client disconnected")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.State != JobSucceeded {
		t.Fatalf("final state %s (%s)", final.State, final.Error)
	}
	var batch BatchResponse
	if err := json.Unmarshal(final.Result, &batch); err != nil {
		t.Fatalf("decode stored result: %v", err)
	}
	if batch.Completed != 2 || batch.Failed != 0 {
		t.Fatalf("batch completed=%d failed=%d, want 2/0", batch.Completed, batch.Failed)
	}

	// Stream-reconnect: a fresh read from seq 0 replays the whole log
	// (both items, the result, the terminal state) and then ends.
	replayResp, err := http.Get(ts.URL + "/api/v2/jobs/" + view.ID + "/events?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer replayResp.Body.Close()
	items, gotResult, gotTerminal := 0, false, false
	replay := json.NewDecoder(replayResp.Body)
	for {
		var e JobEvent
		if err := replay.Decode(&e); err != nil {
			break // EOF: the server closed after the terminal event
		}
		switch e.Type {
		case EventItem:
			items++
		case EventResult:
			gotResult = true
		case EventState:
			gotTerminal = e.State.Terminal() || gotTerminal
		}
	}
	if items != 2 || !gotResult || !gotTerminal {
		t.Errorf("replay saw items=%d result=%v terminal=%v, want 2/true/true", items, gotResult, gotTerminal)
	}
}

// TestHTTPV2DSELayerStreaming: a DSE job streams one layer event per
// network layer, in commit order for the eager per-layer reduction.
func TestHTTPV2DSELayerStreaming(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 8})
	ts := newTestServer(t, svc)
	view := submitJob(t, ts.URL, `{"kind":"dse","dse":{"arch":"salp1","network":"lenet5"}}`)

	resp, err := http.Get(ts.URL + "/api/v2/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	layers := map[int]bool{}
	var final JobState
	for {
		var e JobEvent
		if err := dec.Decode(&e); err != nil {
			break
		}
		switch e.Type {
		case EventLayer:
			if e.Layer == nil || e.Layer.MinEDPJs <= 0 {
				t.Errorf("layer event %d malformed: %+v", e.Index, e)
			}
			layers[e.Index] = true
		case EventState:
			final = e.State
		}
	}
	if len(layers) == 0 {
		t.Fatal("no layer events streamed")
	}
	if final != JobSucceeded {
		t.Fatalf("stream ended with state %q", final)
	}
	job := getJob(t, ts.URL, view.ID)
	var dse DSEResponse
	if err := json.Unmarshal(job.Result, &dse); err != nil {
		t.Fatal(err)
	}
	if len(layers) != len(dse.Result.Layers) {
		t.Errorf("streamed %d layers, result has %d", len(layers), len(dse.Result.Layers))
	}
}

// TestHTTPV2SSE: Accept: text/event-stream switches the wire format.
func TestHTTPV2SSE(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 8})
	ts := newTestServer(t, svc)
	view := submitJob(t, ts.URL, `{"kind":"characterize","characterize":{"archs":["ddr3"]}}`)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v2/jobs/"+view.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	ids, datas := 0, 0
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "id: ") {
			ids++
		}
		if strings.HasPrefix(line, "data: {") {
			datas++
		}
	}
	if ids == 0 || ids != datas {
		t.Errorf("SSE framing: %d id lines, %d data lines", ids, datas)
	}
}

// TestHTTPV2CancelFlow: DELETE cancels a running job; canceling a
// finished job is 409; unknown jobs are 404.
func TestHTTPV2CancelFlow(t *testing.T) {
	runner := &blockingRunner{release: make(chan struct{})}
	defer close(runner.release)
	svc := New(Options{Workers: 1, CacheEntries: 8, Runner: runner})
	ts := newTestServer(t, svc)

	view := submitJob(t, ts.URL, `{"kind":"dse","dse":{"arch":"ddr3","network":"lenet5"}}`)

	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/v2/jobs/"+view.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		if v := getJob(t, ts.URL, view.ID); v.State.Terminal() {
			if v.State != JobCanceled {
				t.Fatalf("state %s after cancel, want canceled", v.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never became terminal after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Cancel-after-complete: 409.
	resp2, err := http.DefaultClient.Do(del.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("cancel of terminal job: status %d, want 409", resp2.StatusCode)
	}

	// Unknown job: 404 on GET, DELETE and the events stream.
	for _, probe := range []func() (*http.Response, error){
		func() (*http.Response, error) { return http.Get(ts.URL + "/api/v2/jobs/job-999") },
		func() (*http.Response, error) { return http.Get(ts.URL + "/api/v2/jobs/job-999/events") },
		func() (*http.Response, error) {
			r, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v2/jobs/job-999", nil)
			return http.DefaultClient.Do(r)
		},
	} {
		resp, err := probe()
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job probe: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestHTTPV2ErrorPaths: malformed JSON, unknown fields, unknown kinds,
// unknown backends and oversized bodies all reject with clear statuses.
func TestHTTPV2ErrorPaths(t *testing.T) {
	ts := newTestServer(t, New(Options{Workers: 1, CacheEntries: 4}))
	cases := []struct {
		name, body string
		wantStatus int
		wantSubstr string
	}{
		{"malformed JSON", `{not json`, http.StatusBadRequest, "bad request body"},
		{"unknown field", `{"kind":"dse","dse":{"arch":"ddr3","network":"lenet5"},"bogus":1}`, http.StatusBadRequest, "unknown field"},
		{"unknown kind", `{"kind":"emulate"}`, http.StatusBadRequest, "unknown job kind"},
		{"simulate without payload", `{"kind":"simulate"}`, http.StatusBadRequest, `needs a "simulate" payload`},
		{"unknown backend", `{"kind":"dse","dse":{"arch":"ddr9","network":"lenet5"}}`, http.StatusBadRequest, "ddr9"},
		{"trailing garbage", `{"kind":"dse","dse":{"arch":"ddr3","network":"lenet5"}} extra`, http.StatusBadRequest, "trailing"},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/api/v2/jobs", c.body)
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.wantStatus, body)
			continue
		}
		var e errorJSON
		if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, c.wantSubstr) {
			t.Errorf("%s: error body %q lacks %q", c.name, body, c.wantSubstr)
		}
	}

	// Oversized body: just past the 8 MiB v2 cap -> 413.
	huge := fmt.Sprintf(`{"kind":"dse","dse":{"arch":"ddr3","network":"lenet5","schedules":["%s"]}}`,
		strings.Repeat("x", maxBodyBytesV2))
	resp, _ := postJSON(t, ts.URL+"/api/v2/jobs", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized v2 body: status %d, want 413", resp.StatusCode)
	}

	// Bad query parameters on the read endpoints.
	r, err := http.Get(ts.URL + "/api/v2/jobs?limit=-3")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("negative limit: status %d, want 400", r.StatusCode)
	}
}

// TestHTTPV1OversizedBody: the v1 surface enforces its own (1 MiB)
// body cap with a 413.
func TestHTTPV1OversizedBody(t *testing.T) {
	ts := newTestServer(t, New(Options{Workers: 1, CacheEntries: 4}))
	huge := fmt.Sprintf(`{"arch":"ddr3","network":"lenet5","schedules":["%s"]}`,
		strings.Repeat("x", maxBodyBytes))
	resp, _ := postJSON(t, ts.URL+"/api/v1/dse", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized v1 body: status %d, want 413", resp.StatusCode)
	}
}

// TestHTTPV2List: the listing endpoint filters by kind and state.
func TestHTTPV2List(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 8})
	ts := newTestServer(t, svc)
	view := submitJob(t, ts.URL, `{"kind":"characterize","characterize":{"archs":["salp1"]}}`)
	deadline := time.Now().Add(time.Minute)
	for !getJob(t, ts.URL, view.ID).State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	for _, q := range []string{"", "?kind=characterize", "?state=succeeded", "?kind=characterize&state=succeeded&limit=5"} {
		resp, err := http.Get(ts.URL + "/api/v2/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		var list JobsListResponse
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(list.Jobs) != 1 || list.Jobs[0].ID != view.ID {
			t.Errorf("list %q returned %+v", q, list.Jobs)
		}
	}
	resp, err := http.Get(ts.URL + "/api/v2/jobs?kind=dse")
	if err != nil {
		t.Fatal(err)
	}
	var list JobsListResponse
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 0 {
		t.Errorf("kind=dse returned %+v", list.Jobs)
	}
}
