package service

import (
	"context"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"drmap/internal/obs"
)

// TestBatchSharesCaches: one batch over four (backend, network) jobs -
// including a duplicate - completes them all, serves the duplicate from
// the shared evaluation (coalesced or cached, never computed twice),
// and a repeated batch is answered entirely from the cache, visible in
// the hit counters.
func TestBatchSharesCaches(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 32})
	req := BatchRequest{Jobs: []DSERequest{
		{Arch: "ddr3", Network: "lenet5"},
		{Arch: "salp1", Network: "lenet5"},
		{Arch: "ddr3", Network: "lenet5"}, // duplicate of job 0
		{Arch: "ddr4", Network: "lenet5"},
	}}
	resp, err := svc.Batch(context.Background(), req)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if resp.Completed != 4 || resp.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want 4/0", resp.Completed, resp.Failed)
	}
	for i, item := range resp.Results {
		if item.Index != i || item.Result == nil || item.Error != "" {
			t.Fatalf("item %d malformed: %+v", i, item)
		}
		// Each batch item equals the standalone DSE answer.
		single, err := svc.DSE(context.Background(), req.Jobs[i])
		if err != nil {
			t.Fatalf("single DSE %d: %v", i, err)
		}
		if !reflect.DeepEqual(item.Result.Result, single.Result) {
			t.Errorf("batch item %d diverged from standalone DSE", i)
		}
	}
	// Jobs 0 and 2 are identical: at most 3 fresh DSE evaluations ran.
	if got := resp.Results[0].Result.Result; !reflect.DeepEqual(got, resp.Results[2].Result.Result) {
		t.Error("duplicate jobs returned different results")
	}
	stats := svc.CacheStats()
	if stats.Hits+stats.Coalesced == 0 {
		t.Errorf("duplicate job was not shared: %+v", stats)
	}

	before := svc.CacheStats().Hits
	again, err := svc.Batch(context.Background(), req)
	if err != nil {
		t.Fatalf("repeat Batch: %v", err)
	}
	for i, item := range again.Results {
		if item.Result == nil || !item.Result.Cached {
			t.Errorf("repeat batch item %d not cached", i)
		}
	}
	if after := svc.CacheStats().Hits; after < before+4 {
		t.Errorf("cache hits went %d -> %d, want >= %d", before, after, before+4)
	}
}

// TestBatchPartialFailure: a job with a bad arch fails alone; its
// siblings complete.
func TestBatchPartialFailure(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 8})
	resp, err := svc.Batch(context.Background(), BatchRequest{Jobs: []DSERequest{
		{Arch: "lenet5", Network: "lenet5"}, // arch/network swapped: unknown backend
		{Arch: "masa", Network: "lenet5"},
	}})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if resp.Completed != 1 || resp.Failed != 1 {
		t.Fatalf("completed=%d failed=%d, want 1/1", resp.Completed, resp.Failed)
	}
	if resp.Results[0].Error == "" || resp.Results[0].Result != nil {
		t.Errorf("bad job reported %+v, want an error", resp.Results[0])
	}
	if resp.Results[1].Error != "" || resp.Results[1].Result == nil {
		t.Errorf("good job reported %+v, want a result", resp.Results[1])
	}
}

// TestBatchValidation: input-free failures reject the whole request.
func TestBatchValidation(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 8})
	if _, err := svc.Batch(context.Background(), BatchRequest{}); err == nil {
		t.Error("empty batch accepted")
	}
	huge := BatchRequest{Jobs: make([]DSERequest, MaxBatchJobs+1)}
	if _, err := svc.Batch(context.Background(), huge); err == nil {
		t.Errorf("batch of %d jobs accepted", len(huge.Jobs))
	}
}

// TestHTTPBatch drives POST /api/v1/batch end to end.
func TestHTTPBatch(t *testing.T) {
	ts := newTestServer(t, New(Options{Workers: 2, CacheEntries: 16}))
	resp, body := postJSON(t, ts.URL+"/api/v1/batch",
		`{"jobs":[{"arch":"ddr3","network":"lenet5"},{"arch":"nope","network":"lenet5"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	s := string(body)
	if !strings.Contains(s, `"completed": 1`) || !strings.Contains(s, `"failed": 1`) {
		t.Errorf("unexpected batch body: %s", s)
	}

	resp, body = postJSON(t, ts.URL+"/api/v1/batch", `{"jobs":[]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d (%s), want 400", resp.StatusCode, body)
	}
}

// TestMetrics: the counters render in Prometheus exposition format,
// reflect serving activity, and include the configured extra source.
func TestMetrics(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 8,
		ExtraMetrics: func() []Metric { return []Metric{{Name: "drmap_test_gauge", Value: 7}} }})
	if _, err := svc.DSE(context.Background(), DSERequest{Arch: "ddr3", Network: "lenet5"}); err != nil {
		t.Fatalf("DSE: %v", err)
	}
	text := svc.MetricsText()
	// The DSE ran two fresh computations: the ddr3 profile and the
	// search itself. Legacy unlabeled counters still render as plain
	// "name value" sample lines.
	for _, want := range []string{
		"drmap_evaluations_total 2",
		"drmap_cache_misses_total",
		"drmap_pool_workers 2",
		"drmap_test_gauge 7",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	// The page as a whole must be strictly parseable exposition, with
	// the extra source's undescribed gauge still carrying metadata.
	exp, err := obs.ParseExposition(text)
	if err != nil {
		t.Fatalf("metrics page unparseable: %v\n%s", err, text)
	}
	if v, ok := exp.Value("drmap_test_gauge", nil); !ok || v != 7 {
		t.Errorf("drmap_test_gauge = %v, %v; want 7", v, ok)
	}
	// The DSE split its evaluation into count and price phases.
	for _, phase := range []string{"count", "price"} {
		if v, ok := exp.Value("drmap_eval_phase_seconds_count", map[string]string{"phase": phase}); !ok || v == 0 {
			t.Errorf("drmap_eval_phase_seconds{phase=%q} count = %v, %v; want > 0", phase, v, ok)
		}
	}

	ts := newTestServer(t, svc)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
}

// TestBatchDeadlinePreservesPartialResults: a deadline expiring
// mid-batch does not discard the finished jobs - they keep their
// results, the rest carry the context error, and the request answers
// instead of 500ing.
func TestBatchDeadlinePreservesPartialResults(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 8})
	// Warm one job so it is a guaranteed-instant cache hit.
	if _, err := svc.DSE(context.Background(), DSERequest{Arch: "ddr3", Network: "lenet5"}); err != nil {
		t.Fatalf("warm DSE: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the batch starts with its deadline already gone
	resp, err := svc.Batch(ctx, BatchRequest{Jobs: []DSERequest{
		{Arch: "ddr3", Network: "lenet5"},
		{Arch: "salp1", Network: "lenet5"},
	}})
	if err != nil {
		t.Fatalf("Batch under expired context errored instead of reporting per item: %v", err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d items, want 2", len(resp.Results))
	}
	for i, item := range resp.Results {
		if item.Result == nil && item.Error == "" {
			t.Errorf("item %d has neither result nor error", i)
		}
	}
	if resp.Completed+resp.Failed != 2 {
		t.Errorf("completed=%d failed=%d do not cover the batch", resp.Completed, resp.Failed)
	}
}
