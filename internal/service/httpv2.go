package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// maxBodyBytesV2 caps v2 request bodies. A full 256-job batch of
// custom networks is well under 8 MiB.
const maxBodyBytesV2 = 8 << 20

// decodeBodyV2 hardens v2 request decoding: the body is capped by
// http.MaxBytesReader, unknown JSON fields are rejected, and trailing
// garbage after the JSON value is an error.
func decodeBodyV2(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytesV2)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fmt.Errorf("request body exceeds %d bytes: %w", maxBodyBytesV2, err)
		}
		return fmt.Errorf("bad request body (see API.md for the v2 schemas): %w", err)
	}
	if dec.More() {
		return fmt.Errorf("bad request body: trailing data after the JSON value")
	}
	return nil
}

// JobsListResponse is the GET /api/v2/jobs body.
type JobsListResponse struct {
	Jobs []JobView `json:"jobs"`
}

// mountV2 registers the job-oriented v2 surface:
//
//	POST   /api/v2/jobs             - submit; returns 202 + the job view
//	GET    /api/v2/jobs             - list (?kind=, ?state=, ?limit=)
//	GET    /api/v2/jobs/{id}        - status + progress (+ result once terminal)
//	DELETE /api/v2/jobs/{id}        - cancel (409 once terminal)
//	GET    /api/v2/jobs/{id}/events - stream events as NDJSON (or SSE
//	                                  under Accept: text/event-stream);
//	                                  ?from=N replays from sequence N
func mountV2(mux *http.ServeMux, jm *JobManager) {
	mux.HandleFunc("POST /api/v2/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if err := decodeBodyV2(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		view, err := jm.Submit(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Location", "/api/v2/jobs/"+view.ID)
		writeJSON(w, http.StatusAccepted, view)
	})

	mux.HandleFunc("GET /api/v2/jobs", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		limit := 0
		if s := q.Get("limit"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				writeError(w, fmt.Errorf("bad limit %q: want a non-negative integer", s))
				return
			}
			limit = n
		}
		views := jm.List(JobFilter{Kind: q.Get("kind"), State: q.Get("state"), Limit: limit})
		writeJSON(w, http.StatusOK, JobsListResponse{Jobs: views})
	})

	mux.HandleFunc("GET /api/v2/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		view, ok := jm.Get(id)
		if !ok {
			writeError(w, fmt.Errorf("%w: %s", ErrJobNotFound, id))
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("DELETE /api/v2/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		view, err := jm.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, view)
	})

	mux.HandleFunc("GET /api/v2/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		streamEvents(w, r, jm)
	})
}

// streamEvents serves one job's event log and then follows it live
// until the job is terminal: NDJSON by default (one JSON event per
// line), SSE when the client asks for text/event-stream. ?from=N
// resumes from sequence number N, so a disconnected client replays
// nothing it has seen (and from=0 re-reads the whole log from the job
// store - results survive disconnects). The stream ends when the
// terminal state event has been delivered.
func streamEvents(w http.ResponseWriter, r *http.Request, jm *JobManager) {
	id := r.PathValue("id")
	j, ok := jm.lookup(id)
	if !ok {
		writeError(w, fmt.Errorf("%w: %s", ErrJobNotFound, id))
		return
	}
	from := 0
	if s := r.URL.Query().Get("from"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			writeError(w, fmt.Errorf("bad from %q: want a non-negative sequence number", s))
			return
		}
		from = n
	} else if s := r.Header.Get("Last-Event-ID"); s != "" {
		// A reconnecting EventSource resumes via the SSE-standard
		// header carrying the last `id:` it processed; resume just
		// past it instead of replaying the whole log.
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			from = n + 1
		}
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")

	// A job outlives any request timeout by design; lift the server's
	// write deadline so a long stream is not torn down mid-run.
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})
	w.WriteHeader(http.StatusOK)

	enc := json.NewEncoder(w)
	for {
		events, changed, terminal := j.eventsSince(from)
		for _, e := range events {
			if sse {
				if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: ", e.Seq, e.Type); err != nil {
					return
				}
			}
			if err := enc.Encode(e); err != nil { // Encode appends the newline
				return
			}
			if sse {
				if _, err := fmt.Fprint(w, "\n"); err != nil {
					return
				}
			}
			from = e.Seq + 1
		}
		_ = rc.Flush()
		if terminal {
			// eventsSince reads log and state under one lock: terminal
			// means the drained slice already held the final event.
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
