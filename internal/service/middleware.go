// HTTP observability middleware: one wrapper around the daemon mux
// that gives every request a trace ID (generated, or adopted from the
// client's X-Drmap-Trace-Id header), echoes it on the response, opens
// the trace's root "request" span into the span store, times the
// request into a route/status-labeled histogram, and emits one
// structured access-log line carrying the trace ID.
package service

import (
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"drmap/internal/obs"
)

// statusWriter captures the response status for the request histogram
// and access log. Unwrap exposes the underlying writer so
// http.ResponseController (the event-stream handler's write-deadline
// lift and flushes) still reaches the real connection.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// routeLabel normalizes a request path to a bounded label set: known
// routes by name, path-parameterized v2 routes collapsed to their
// pattern, everything else "other" - so a scanner probing random URLs
// cannot grow the histogram's cardinality.
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/metrics",
		"/api/v1/version", "/api/v1/policies", "/api/v1/backends",
		"/api/v1/characterize", "/api/v1/dse", "/api/v1/batch",
		"/api/v1/simulate", "/api/v1/sweep",
		"/api/v1/traces",
		"/api/v2/jobs",
		"/cluster/v1/register", "/cluster/v1/shard", "/cluster/v1/workers",
		"/debug/dashboard":
		return path
	}
	if rest, ok := strings.CutPrefix(path, "/api/v2/jobs/"); ok {
		if strings.HasSuffix(rest, "/events") {
			return "/api/v2/jobs/{id}/events"
		}
		if !strings.Contains(rest, "/") {
			return "/api/v2/jobs/{id}"
		}
	}
	if rest, ok := strings.CutPrefix(path, "/api/v1/traces/"); ok && !strings.Contains(rest, "/") {
		return "/api/v1/traces/{id}"
	}
	if strings.HasPrefix(path, "/debug/pprof/") || path == "/debug/pprof" {
		return "/debug/pprof"
	}
	return "other"
}

// tracedRoute reports whether a route's requests should open root
// spans in the trace store. Observability reads - scrapes, health
// probes, the trace API itself, the dashboard's refresh loop - would
// otherwise dominate the store and drown the requests worth keeping;
// they still get trace IDs, metrics and access logs.
func tracedRoute(route string) bool {
	switch route {
	case "/metrics", "/healthz", "/debug/pprof", "/debug/dashboard",
		"/api/v1/traces", "/api/v1/traces/{id}":
		return false
	}
	return true
}

// Observe wraps a handler with the daemon's request telemetry: trace
// ID propagation (header in, context through, header out), a root
// "request" span recorded into spans (nil disables tracing; probe and
// observability routes are skipped - see tracedRoute), the
// drmap_http_request_duration_seconds{route,status} histogram, a
// bounded drmap_trace_requests_total{trace_id} counter (most recent
// trace IDs only), and a per-request access-log line on logger. A nil
// logger discards the log lines; the metrics and tracing still apply.
func Observe(next http.Handler, reg *obs.Registry, logger *slog.Logger, spans *obs.SpanStore) http.Handler {
	if logger == nil {
		logger = obs.NopLogger()
	}
	durations := reg.Histogram("drmap_http_request_duration_seconds",
		"HTTP request wall-clock by normalized route and response status.",
		nil, "route", "status")
	traces := reg.CappedCounter("drmap_trace_requests_total",
		"Requests per trace ID (most recent trace IDs only).",
		0, "trace_id")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, traceID := obs.EnsureTrace(r.Context(), r.Header.Get(obs.TraceHeader))
		w.Header().Set(obs.TraceHeader, traceID)
		route := routeLabel(r.URL.Path)
		var span *obs.ActiveSpan
		if spans != nil && tracedRoute(route) {
			ctx = obs.WithSpanSink(ctx, spans)
			ctx = obs.WithSpanProcess(ctx, spans.Process())
			ctx, span = obs.StartSpan(ctx, "request",
				obs.Str("method", r.Method), obs.Str("route", route))
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		if sw.status == 0 {
			// Handler wrote nothing; net/http will send 200 on return.
			sw.status = http.StatusOK
		}
		span.SetAttr(obs.Int("status", sw.status))
		if sw.status >= 500 {
			span.Fail(fmt.Errorf("HTTP %d", sw.status))
		}
		span.End()
		elapsed := time.Since(start)
		durations.With(route, strconv.Itoa(sw.status)).Observe(elapsed.Seconds())
		traces.With(traceID).Inc()
		logger.Info("http request",
			"trace_id", traceID,
			"method", r.Method,
			"route", route,
			"path", r.URL.Path,
			"status", sw.status,
			"duration_ms", float64(elapsed.Microseconds())/1000.0,
		)
	})
}
