package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/obs"
	"drmap/internal/report"
)

// JobKind names a workload the v2 job API can run asynchronously.
type JobKind string

// The job kinds. Each wraps the corresponding synchronous entry point
// (and therefore shares its validation, caches, cluster runner and
// counters).
const (
	JobDSE          JobKind = "dse"
	JobBatch        JobKind = "batch"
	JobCharacterize JobKind = "characterize"
	JobSweep        JobKind = "sweep"
	JobSimulate     JobKind = "simulate"
)

// JobState is a job's lifecycle state. The machine is linear:
// pending -> running -> succeeded | failed | canceled.
type JobState string

// The job states.
const (
	JobPending   JobState = "pending"
	JobRunning   JobState = "running"
	JobSucceeded JobState = "succeeded"
	JobFailed    JobState = "failed"
	JobCanceled  JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobSucceeded || s == JobFailed || s == JobCanceled
}

// JobRequest is the POST /api/v2/jobs body: a kind plus exactly the
// matching payload. The payloads are the v1 request shapes, so any v1
// request converts to a job by wrapping it.
type JobRequest struct {
	Kind         string               `json:"kind"`
	DSE          *DSERequest          `json:"dse,omitempty"`
	Batch        *BatchRequest        `json:"batch,omitempty"`
	Characterize *CharacterizeRequest `json:"characterize,omitempty"`
	Sweep        *SweepRequest        `json:"sweep,omitempty"`
	Simulate     *SimulateRequest     `json:"simulate,omitempty"`
}

// JobProgress counts a job's completed work. Columns count (layer,
// schedule) grid columns across every fresh evaluation the job ran
// (cached results contribute none - the job then completes with the
// result alone); items count batch entries.
type JobProgress struct {
	ColumnsDone  int `json:"columns_done"`
	ColumnsTotal int `json:"columns_total"`
	LayersDone   int `json:"layers_done,omitempty"`
	ItemsDone    int `json:"items_done,omitempty"`
	ItemsTotal   int `json:"items_total,omitempty"`
}

// JobTimings breaks a job's wall-clock down: where the time between
// submit and finish actually went. Queue wait and run duration cover
// every job; the phase fields accumulate the executor's recorded
// phases - count vs price for the evaluation itself (core/phase.go),
// shard dispatch/merge when a cluster coordinator ran the job. Cached
// results report near-zero phase time: nothing was evaluated.
type JobTimings struct {
	QueueSeconds         float64 `json:"queue_seconds"`
	RunSeconds           float64 `json:"run_seconds,omitempty"`
	CountSeconds         float64 `json:"count_seconds,omitempty"`
	PriceSeconds         float64 `json:"price_seconds,omitempty"`
	ShardDispatchSeconds float64 `json:"shard_dispatch_seconds,omitempty"`
	ShardMergeSeconds    float64 `json:"shard_merge_seconds,omitempty"`
}

// JobView is a job as the API reports it. Result is set only on
// GET /api/v2/jobs/{id} once the job holds one (a succeeded job always
// does; a canceled batch keeps the items that finished before the
// cancel); the list endpoint omits it.
type JobView struct {
	ID         string      `json:"id"`
	Kind       JobKind     `json:"kind"`
	State      JobState    `json:"state"`
	CreatedAt  time.Time   `json:"created_at"`
	StartedAt  time.Time   `json:"started_at,omitzero"`
	FinishedAt time.Time   `json:"finished_at,omitzero"`
	Progress   JobProgress `json:"progress"`
	// TraceID correlates the job with the submitting request, the
	// coordinator's shard dispatches and the workers' logs/metrics.
	TraceID string `json:"trace_id"`
	// Trace summarizes the job's recorded span tree (span count,
	// duration, error flag) while the trace store still retains it;
	// the full tree is GET /api/v1/traces/{trace_id}.
	Trace *obs.TraceSummary `json:"trace,omitempty"`
	// Timings is the job's timing breakdown, present once it started
	// (run/phase fields fill in as the job progresses and finishes).
	Timings *JobTimings `json:"timings,omitempty"`
	// Events is how many event sequence numbers the job has issued;
	// pass it as ?from= to GET /jobs/{id}/events to receive only events
	// newer than this view (from=0 replays the whole log).
	Events int             `json:"events"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Job event types, in the order a consumer can expect them: a state
// event per transition, progress/layer/item events while running, then
// result and/or error, a timings event with the finished job's timing
// breakdown and trace ID, and finally the terminal state event that
// ends the stream.
const (
	EventState    = "state"
	EventProgress = "progress"
	EventLayer    = "layer"
	EventSimLayer = "sim_layer"
	EventItem     = "item"
	EventResult   = "result"
	EventError    = "error"
	EventTimings  = "timings"
)

// JobEvent is one entry of a job's event log, streamed by
// GET /api/v2/jobs/{id}/events as NDJSON (or SSE) and replayable from
// any sequence number. Consecutive progress events coalesce in the log
// (each carries the full snapshot, so dropping intermediates loses
// nothing); sequence numbers stay strictly increasing but may skip.
type JobEvent struct {
	Seq   int      `json:"seq"`
	Type  string   `json:"type"`
	State JobState `json:"state,omitempty"`

	// Progress snapshot (type "progress"). done/total/items_done/
	// items_total serialize even at zero - non-Go consumers rely on
	// the documented fields being present, and 0 is a legitimate value
	// (the first snapshot after an announcement has done=0).
	Done       int `json:"done"`
	Total      int `json:"total"`
	ItemsDone  int `json:"items_done"`
	ItemsTotal int `json:"items_total"`

	// Index locates a layer (type "layer"/"sim_layer") or batch item
	// (type "item"); always serialized - index 0 is the first
	// layer/item.
	Index    int                  `json:"index"`
	Layer    *report.DSELayerJSON `json:"layer,omitempty"`
	SimLayer *SimulateLayerJSON   `json:"sim_layer,omitempty"`
	Item     *BatchItem           `json:"item,omitempty"`

	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`

	// Timing breakdown and trace ID (type "timings", the event before
	// the terminal state event).
	TraceID string      `json:"trace_id,omitempty"`
	Timings *JobTimings `json:"timings,omitempty"`
}

// Job store errors the HTTP layer maps onto statuses.
var (
	// ErrJobNotFound marks an unknown (or TTL-evicted) job ID -> 404.
	ErrJobNotFound = errors.New("service: job not found")
	// ErrJobFinished marks a cancel of an already-terminal job -> 409.
	ErrJobFinished = errors.New("service: job already finished")
	// ErrJobStoreFull marks a submit rejected because every stored job
	// is still active -> 503 (retry later).
	ErrJobStoreFull = errors.New("service: job store full")
)

// JobManagerOptions tune a JobManager.
type JobManagerOptions struct {
	// MaxJobs bounds the store; <= 0 means DefaultMaxJobs. Terminal
	// jobs evict (oldest first) to admit new ones; a store of only
	// active jobs rejects submits with ErrJobStoreFull.
	MaxJobs int
	// TTL is how long a terminal job (and its result and event log)
	// stays retrievable; <= 0 means DefaultJobTTL.
	TTL time.Duration
	// MaxEvents caps one job's event log; <= 0 means DefaultMaxEvents.
	// Progress events coalesce, so the cap only bites on degenerate
	// workloads; past it, non-terminal events are dropped.
	MaxEvents int
	// Now is the eviction clock; nil means time.Now (injectable so TTL
	// behavior is testable without sleeping).
	Now func() time.Time
}

// Job store defaults.
const (
	DefaultMaxJobs   = 1024
	DefaultJobTTL    = 15 * time.Minute
	DefaultMaxEvents = 4096
)

// JobManager owns the v2 job lifecycle: it validates and admits jobs,
// runs each through the owning Service's synchronous entry points on a
// detached goroutine (so results survive client disconnects), threads
// progress sinks into the evaluation context, records a replayable
// event log per job, and evicts terminal jobs by TTL and store bound.
// The v1 endpoints are thin synchronous wrappers over it (the Sync
// methods); their jobs are ephemeral - listed while running, dropped
// from the store the moment the waiting handler reads the outcome. It
// is safe for concurrent use.
type JobManager struct {
	svc       *Service
	maxJobs   int
	ttl       time.Duration
	maxEvents int
	now       func() time.Time

	// Job lifecycle instruments on the service registry: jobs by state,
	// and queue-wait / run-duration histograms labeled by kind.
	states       *obs.GaugeVec
	queueSeconds *obs.HistogramVec
	runSeconds   *obs.HistogramVec

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // insertion order, for eviction
	// persistent counts the non-ephemeral (v2-submitted) entries: the
	// only ones the MaxJobs retention bound is about. Ephemeral v1
	// sync jobs pass through the store but neither consume capacity
	// nor get rejected by it - the two surfaces cannot starve each
	// other.
	persistent int
	submitted  int64
	evicted    int64
	nextID     int64
}

// NewJobManager builds a JobManager around a Service.
func NewJobManager(s *Service, opt JobManagerOptions) *JobManager {
	if opt.MaxJobs <= 0 {
		opt.MaxJobs = DefaultMaxJobs
	}
	if opt.TTL <= 0 {
		opt.TTL = DefaultJobTTL
	}
	if opt.MaxEvents <= 0 {
		opt.MaxEvents = DefaultMaxEvents
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	r := s.Registry()
	m := &JobManager{
		svc:       s,
		maxJobs:   opt.MaxJobs,
		ttl:       opt.TTL,
		maxEvents: opt.MaxEvents,
		now:       opt.Now,
		jobs:      make(map[string]*job),
		states: r.Gauge("drmap_jobs_state",
			"Jobs resident in the store by lifecycle state.", "state"),
		queueSeconds: r.Histogram("drmap_job_queue_seconds",
			"Wall-clock between a job's submission and its executor starting, by kind.",
			nil, "kind"),
		runSeconds: r.Histogram("drmap_job_run_seconds",
			"Wall-clock between a job's executor starting and finishing, by kind.",
			nil, "kind"),
	}
	// Pre-touch every state's child so all five series always render
	// (a scrape before the first submit still shows the full vocabulary).
	for _, st := range []JobState{JobPending, JobRunning, JobSucceeded, JobFailed, JobCanceled} {
		m.states.With(string(st))
	}
	return m
}

// job is the store-side state of one submitted job.
type job struct {
	id      string
	kind    JobKind
	req     JobRequest
	created time.Time
	timing  dram.Timing // the DSE backend's clock, for layer events
	trace   string      // trace ID: the submitting request's, or fresh
	// parentSpan is the submitting request's span ID; the job's
	// queue/run spans link under it so a v2 trace stays one tree even
	// though the request span ends before the detached job runs.
	parentSpan string
	cancel     context.CancelFunc
	done       chan struct{}
	// ephemeral marks a v1 synchronous wrapper's job: visible while
	// running (so /api/v2/jobs shows v1 load), but its result is never
	// marshaled into the event log and the job leaves the store the
	// moment the waiting handler has read the outcome - sustained v1
	// traffic must not pin response payloads for the job TTL.
	ephemeral bool

	mu              sync.Mutex
	state           JobState
	started         time.Time
	finished        time.Time
	cancelRequested bool
	result          any
	rawResult       json.RawMessage
	err             error
	progress        JobProgress
	phases          map[string]time.Duration // accumulated executor phase time
	events          []JobEvent
	nextSeq         int
	maxEvents       int
	changed         chan struct{} // closed and replaced on every append
}

// timingsLocked assembles the job's timing breakdown; callers hold
// j.mu. Nil until the job has started (there is nothing to break down).
func (j *job) timingsLocked() *JobTimings {
	if j.started.IsZero() {
		return nil
	}
	t := &JobTimings{QueueSeconds: j.started.Sub(j.created).Seconds()}
	if !j.finished.IsZero() {
		t.RunSeconds = j.finished.Sub(j.started).Seconds()
	}
	t.CountSeconds = j.phases[core.PhaseCount].Seconds()
	t.PriceSeconds = j.phases[core.PhasePrice].Seconds()
	t.ShardDispatchSeconds = j.phases[core.PhaseShardDispatch].Seconds()
	t.ShardMergeSeconds = j.phases[core.PhaseShardMerge].Seconds()
	return t
}

// notifyLocked wakes event-stream readers; callers hold j.mu.
func (j *job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// appendLocked commits one event; callers hold j.mu. Consecutive
// progress events coalesce: the newer snapshot replaces the older one
// under a fresh sequence number.
func (j *job) appendLocked(e JobEvent) {
	e.Seq = j.nextSeq
	j.nextSeq++
	if n := len(j.events); n > 0 && e.Type == EventProgress && j.events[n-1].Type == EventProgress {
		j.events[n-1] = e
	} else if len(j.events) >= j.maxEvents && e.Type != EventResult && e.Type != EventError && e.Type != EventState && e.Type != EventTimings {
		// Shed load without losing the terminal events a reconnecting
		// client needs.
	} else {
		j.events = append(j.events, e)
	}
	j.notifyLocked()
}

// setState transitions the job and logs the state event.
func (j *job) setState(s JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
	j.appendLocked(JobEvent{Type: EventState, State: s})
}

// eventsSince returns the committed events with Seq >= from, the
// channel that closes on the next append, and whether the job is
// terminal (after which no more events can appear). One lock acquires
// all three, so a reader that drains the returned events and sees
// terminal has seen the whole log.
func (j *job) eventsSince(from int) ([]JobEvent, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []JobEvent
	for _, e := range j.events {
		if e.Seq >= from {
			out = append(out, e)
		}
	}
	return out, j.changed, j.state.Terminal()
}

// view snapshots the job. withResult attaches the (already-encoded)
// result payload.
func (j *job) view(withResult bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:         j.id,
		Kind:       j.kind,
		State:      j.state,
		CreatedAt:  j.created,
		StartedAt:  j.started,
		FinishedAt: j.finished,
		Progress:   j.progress,
		TraceID:    j.trace,
		Timings:    j.timingsLocked(),
		Events:     j.nextSeq,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if withResult {
		v.Result = j.rawResult
	}
	return v
}

// jobSink adapts a job into the executor-side progress interfaces: it
// implements core.Progress for column/layer events and the batch item
// hook. A batch job aggregates the column counts of all its items but
// suppresses layer events (they cannot be attributed to an item).
type jobSink struct {
	j      *job
	layers bool // emit per-layer events (single-DSE jobs)
}

// A canceled job's evaluation completes detached (so it can be cached)
// and keeps reporting; once the job is terminal those reports must not
// reach the log - the terminal state event is documented to end every
// stream, and a replay must never see events past it. Each sink method
// therefore drops its update when the job is already terminal (checked
// under the same lock finish() transitions under).

func (s *jobSink) StartColumns(total int) {
	j := s.j
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.progress.ColumnsTotal += total
	s.progressLocked()
}

func (s *jobSink) ColumnsDone(delta int) {
	j := s.j
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.progress.ColumnsDone += delta
	s.progressLocked()
}

func (s *jobSink) LayerDone(index, layers int, lr core.LayerResult) {
	if !s.layers {
		return
	}
	j := s.j
	enc := report.DSELayerToJSON(lr, j.timing)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.progress.LayersDone++
	j.appendLocked(JobEvent{Type: EventLayer, Index: index, Layer: &enc})
}

// simLayerDone logs one finished simulated layer - the simulate
// counterpart of LayerDone, fed through the core.SimLayerSink hook.
// It may fire from an engine goroutine (parallel driver) or a cluster
// merge; the job lock serializes it.
func (s *jobSink) simLayerDone(lr core.SimLayerResult, total int) {
	j := s.j
	enc := simLayerToJSON(lr, j.timing)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.progress.LayersDone++
	j.appendLocked(JobEvent{Type: EventSimLayer, Index: lr.Index, SimLayer: &enc})
}

func (s *jobSink) StartItems(total int) {
	j := s.j
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.progress.ItemsTotal = total
	s.progressLocked()
}

func (s *jobSink) ItemDone(item BatchItem) {
	j := s.j
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.progress.ItemsDone++
	it := item
	j.appendLocked(JobEvent{Type: EventItem, Index: item.Index, Item: &it})
}

// RecordPhase accumulates executor phase time (count/price per column,
// shard dispatch/merge per cluster run) into the job's breakdown -
// jobSink implements core.PhaseRecorder alongside core.Progress.
func (s *jobSink) RecordPhase(phase string, d time.Duration) {
	j := s.j
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	if j.phases == nil {
		j.phases = make(map[string]time.Duration)
	}
	j.phases[phase] += d
}

// progressLocked logs a coalescing progress snapshot; callers hold j.mu.
func (s *jobSink) progressLocked() {
	p := s.j.progress
	s.j.appendLocked(JobEvent{
		Type: EventProgress,
		Done: p.ColumnsDone, Total: p.ColumnsTotal,
		ItemsDone: p.ItemsDone, ItemsTotal: p.ItemsTotal,
	})
}

// Submit validates and admits one asynchronous job, returning its view
// immediately. The job runs detached from the request context - only
// Cancel (DELETE /api/v2/jobs/{id}) stops it, so a submitting client
// may disconnect and collect the result later - but inherits ctx's
// trace ID (generating one when absent), so the job's shards, logs and
// events stay correlatable with the request that submitted it.
func (m *JobManager) Submit(ctx context.Context, req JobRequest) (JobView, error) {
	j, err := m.submit(context.Background(), obs.TraceFrom(ctx), obs.SpanIDFrom(ctx), req, false)
	if err != nil {
		return JobView{}, err
	}
	return j.view(false), nil
}

// submit validates req, admits the job, and starts its executor
// goroutine under a context derived from parent (context.Background
// for detached v2 jobs; the request context for v1 sync wrappers, so a
// v1 client's deadline or disconnect cancels its job exactly as it
// canceled the pre-job handlers). trace is the submitting request's
// trace ID; empty or invalid generates a fresh one. parentSpan is the
// submitting request's span ID ("" when the request was untraced).
// ephemeral marks a sync wrapper's job (see the job field).
func (m *JobManager) submit(parent context.Context, trace, parentSpan string, req JobRequest, ephemeral bool) (*job, error) {
	kind, timing, err := m.validateJobRequest(req)
	if err != nil {
		return nil, err
	}
	now := m.now()

	m.mu.Lock()
	// The capacity machinery guards v2 retention, not execution:
	// ephemeral (v1 sync) jobs self-drop as soon as they are answered
	// and are already bounded by in-flight HTTP requests, so they
	// neither make room (evicting a terminal v2 job before its TTL)
	// nor count against the bound, nor get rejected by it - v1 traffic
	// always ran before the job manager existed.
	m.evictLocked(now, !ephemeral)
	if !ephemeral && m.persistent >= m.maxJobs {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d active jobs); retry later", ErrJobStoreFull, m.maxJobs)
	}
	m.nextID++
	m.submitted++
	id := fmt.Sprintf("job-%d", m.nextID)
	if !obs.ValidTraceID(trace) {
		trace = obs.NewTraceID()
	}
	ctx, cancel := context.WithCancel(parent)
	j := &job{
		id: id, kind: kind, req: req, created: now, timing: timing,
		trace: trace, parentSpan: parentSpan,
		cancel: cancel, done: make(chan struct{}), ephemeral: ephemeral,
		state: JobPending, maxEvents: m.maxEvents,
		changed: make(chan struct{}),
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	if !ephemeral {
		m.persistent++
	}
	m.mu.Unlock()
	m.states.With(string(JobPending)).Add(1)

	go m.run(ctx, j)
	return j, nil
}

// run executes one job through the Service's synchronous entry points
// with the job's progress sink, phase recorder and trace ID attached
// to the context.
func (m *JobManager) run(ctx context.Context, j *job) {
	defer j.cancel() // release the context's resources whatever happens
	j.mu.Lock()
	j.started = m.now()
	queued := j.started.Sub(j.created)
	j.mu.Unlock()
	j.setState(JobRunning)
	m.states.With(string(JobPending)).Add(-1)
	m.states.With(string(JobRunning)).Add(1)
	m.queueSeconds.With(string(j.kind)).Observe(queued.Seconds())

	sink := &jobSink{j: j, layers: j.kind == JobDSE}
	ctx = core.WithProgress(ctx, sink)
	ctx = core.WithPhases(ctx, sink)
	if j.kind == JobSimulate {
		ctx = core.WithSimLayers(ctx, sink.simLayerDone)
	}
	ctx = obs.WithTrace(ctx, j.trace)

	// Tracing: the queue wait becomes a retroactive span, and the whole
	// execution runs under a "job.run" span. Both link beneath the
	// submitting request's span (a boundary parent: it may already have
	// ended for detached v2 jobs), making job.run this process's root
	// span for the job and carrying the kind the trace store samples by.
	var runSpan *obs.ActiveSpan
	if st := m.svc.Spans(); st != nil {
		ctx = obs.WithSpanSink(ctx, st)
		ctx = obs.WithSpanProcess(ctx, st.Process())
		if j.parentSpan != "" {
			ctx = obs.WithSpanParent(ctx, j.parentSpan)
		}
		obs.RecordSpan(ctx, "job.queue", j.created, j.started,
			obs.Str("job", j.id), obs.Str("kind", string(j.kind)))
		ctx, runSpan = obs.StartSpan(ctx, "job.run",
			obs.Str("job", j.id), obs.Str("kind", string(j.kind)))
	}

	var result any
	var err error
	switch j.kind {
	case JobDSE:
		result, err = m.svc.DSE(ctx, *j.req.DSE)
	case JobBatch:
		result, err = m.svc.Batch(withBatchProgress(ctx, sink), *j.req.Batch)
	case JobCharacterize:
		result, err = m.svc.Characterize(ctx, *j.req.Characterize)
	case JobSweep:
		result, err = m.svc.Sweep(ctx, *j.req.Sweep)
	case JobSimulate:
		result, err = m.svc.Simulate(ctx, *j.req.Simulate)
	default: // unreachable: validateJobRequest rejected unknown kinds
		err = fmt.Errorf("service: unknown job kind %q", j.kind)
	}
	if err != nil {
		runSpan.Fail(err)
	}
	runSpan.End()
	m.finish(j, result, err)
}

// finish commits a job's outcome: the result and/or error events, the
// timings event carrying the trace ID and timing breakdown, then the
// terminal state event that ends every event stream.
func (m *JobManager) finish(j *job, result any, err error) {
	var raw json.RawMessage
	// An ephemeral (v1 sync) job's result goes straight to its waiting
	// handler; marshaling it into the event log would double both the
	// encode work and the retained bytes for nothing.
	if !isNilResult(result) && !j.ephemeral {
		b, mErr := json.Marshal(result)
		if mErr != nil && err == nil {
			result, err = nil, &internalError{err: fmt.Errorf("service: encode job result: %w", mErr)}
		} else {
			raw = b
		}
	}

	j.mu.Lock()
	j.finished = m.now()
	j.result, j.rawResult = result, raw
	j.err = err
	state := JobSucceeded
	switch {
	case err == nil && j.cancelRequested:
		// A canceled batch returns its partial results with a nil
		// error; the job is canceled but keeps the finished items.
		state = JobCanceled
	case err == nil:
	case errors.Is(err, context.Canceled):
		state = JobCanceled
	default:
		state = JobFailed
	}
	if raw != nil {
		j.appendLocked(JobEvent{Type: EventResult, Result: raw})
	}
	if err != nil {
		j.appendLocked(JobEvent{Type: EventError, Error: err.Error()})
	}
	if t := j.timingsLocked(); t != nil {
		j.appendLocked(JobEvent{Type: EventTimings, TraceID: j.trace, Timings: t})
	}
	j.state = state
	j.appendLocked(JobEvent{Type: EventState, State: state})
	ran := j.finished.Sub(j.started)
	j.mu.Unlock()
	m.states.With(string(JobRunning)).Add(-1)
	m.states.With(string(state)).Add(1)
	m.runSeconds.With(string(j.kind)).Observe(ran.Seconds())
	close(j.done)
}

// isNilResult reports whether a typed-nil response pointer hides inside
// the any. The executors return (*T)(nil) alongside their errors.
func isNilResult(result any) bool {
	switch r := result.(type) {
	case *DSEResponse:
		return r == nil
	case *BatchResponse:
		return r == nil
	case *CharacterizeResponse:
		return r == nil
	case *SweepResponse:
		return r == nil
	case *SimulateResponse:
		return r == nil
	}
	return result == nil
}

// evictLocked drops terminal jobs past the TTL, then - when makeRoom
// is set and the store is still full - the oldest terminal jobs;
// callers hold m.mu. Ephemeral submits pass makeRoom=false: they take
// no retention, so they must not cost a v2 job its TTL window.
func (m *JobManager) evictLocked(now time.Time, makeRoom bool) {
	keep := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		j.mu.Lock()
		stale := j.state.Terminal() && now.Sub(j.finished) > m.ttl
		j.mu.Unlock()
		if stale {
			m.deleteLocked(id, j)
		} else {
			keep = append(keep, id)
		}
	}
	m.order = keep
	for i := 0; makeRoom && m.persistent >= m.maxJobs && i < len(m.order); {
		id := m.order[i]
		j := m.jobs[id]
		j.mu.Lock()
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if terminal && !j.ephemeral {
			m.deleteLocked(id, j)
			m.order = append(m.order[:i], m.order[i+1:]...)
		} else {
			i++
		}
	}
}

// deleteLocked removes one store entry and keeps the persistent count
// and per-state gauges in step; callers hold m.mu and fix m.order
// themselves.
func (m *JobManager) deleteLocked(id string, j *job) {
	delete(m.jobs, id)
	m.evicted++
	if !j.ephemeral {
		m.persistent--
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	m.states.With(string(state)).Add(-1)
}

// lookup returns the stored job.
func (m *JobManager) lookup(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Get returns a job's view, result included once terminal.
func (m *JobManager) Get(id string) (JobView, bool) {
	j, ok := m.lookup(id)
	if !ok {
		return JobView{}, false
	}
	v := j.view(true)
	m.attachTrace(&v)
	return v, true
}

// attachTrace links the trace store's summary of the job's trace into
// its view, when the store still retains it.
func (m *JobManager) attachTrace(v *JobView) {
	if st := m.svc.Spans(); st != nil {
		if sum, ok := st.Summary(v.TraceID); ok {
			v.Trace = &sum
		}
	}
}

// JobFilter narrows GET /api/v2/jobs.
type JobFilter struct {
	// Kind and State, when non-empty, must match exactly.
	Kind  string
	State string
	// Limit caps the listing; <= 0 means all stored jobs.
	Limit int
}

// List returns matching jobs, newest first, without result payloads.
func (m *JobManager) List(f JobFilter) []JobView {
	m.mu.Lock()
	ids := make([]string, len(m.order))
	copy(ids, m.order)
	jobs := make([]*job, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- { // newest first
		jobs = append(jobs, m.jobs[ids[i]])
	}
	m.mu.Unlock()

	out := []JobView{}
	for _, j := range jobs {
		v := j.view(false)
		if f.Kind != "" && string(v.Kind) != f.Kind {
			continue
		}
		if f.State != "" && string(v.State) != f.State {
			continue
		}
		m.attachTrace(&v)
		out = append(out, v)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Cancel requests a job's cancellation via its context. The in-flight
// evaluation is detached (the service caches whatever it finishes, so
// a resubmit of the same request becomes a cache hit), but the job
// itself transitions to canceled as soon as its executor observes the
// cancel - a batch keeps the items that already completed. Canceling a
// terminal job returns ErrJobFinished.
func (m *JobManager) Cancel(id string) (JobView, error) {
	j, ok := m.lookup(id)
	if !ok {
		return JobView{}, fmt.Errorf("%w: %s", ErrJobNotFound, id)
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return JobView{}, fmt.Errorf("%w: %s is %s", ErrJobFinished, id, j.state)
	}
	j.cancelRequested = true
	j.mu.Unlock()
	j.cancel()
	return j.view(false), nil
}

// Wait blocks until the job is terminal or ctx expires, then returns
// the final view.
func (m *JobManager) Wait(ctx context.Context, id string) (JobView, error) {
	j, ok := m.lookup(id)
	if !ok {
		return JobView{}, fmt.Errorf("%w: %s", ErrJobNotFound, id)
	}
	select {
	case <-j.done:
		return j.view(true), nil
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
}

// runSync is the v1 bridge: submit a job linked to the caller's context
// and wait for its outcome. Because the job's context is derived from
// ctx, a deadline or disconnect propagates into the executor exactly as
// it did when the v1 handlers called the Service directly - the wait
// needs no ctx select of its own (cancellation makes the executor
// return promptly), which also preserves v1 Batch's
// partial-results-on-deadline contract.
func (m *JobManager) runSync(ctx context.Context, req JobRequest) (any, error) {
	j, err := m.submit(ctx, obs.TraceFrom(ctx), obs.SpanIDFrom(ctx), req, true)
	if err != nil {
		return nil, err
	}
	<-j.done
	// The outcome is read off the job struct directly; the store entry
	// has served its purpose (in-flight observability) and is dropped
	// so v1 traffic never accumulates result payloads against the TTL.
	m.drop(j.id)
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// drop removes a job from the store immediately (ephemeral sync jobs).
func (m *JobManager) drop(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return
	}
	delete(m.jobs, id)
	if !j.ephemeral {
		m.persistent--
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	m.states.With(string(state)).Add(-1)
	for i, other := range m.order {
		if other == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// SyncDSE is POST /api/v1/dse as a submit-and-wait over the job store.
func (m *JobManager) SyncDSE(ctx context.Context, req DSERequest) (*DSEResponse, error) {
	v, err := m.runSync(ctx, JobRequest{Kind: string(JobDSE), DSE: &req})
	if err != nil {
		return nil, err
	}
	return v.(*DSEResponse), nil
}

// SyncBatch is POST /api/v1/batch as a submit-and-wait over the job
// store.
func (m *JobManager) SyncBatch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	v, err := m.runSync(ctx, JobRequest{Kind: string(JobBatch), Batch: &req})
	if err != nil {
		return nil, err
	}
	return v.(*BatchResponse), nil
}

// SyncCharacterize is POST /api/v1/characterize as a submit-and-wait
// over the job store.
func (m *JobManager) SyncCharacterize(ctx context.Context, req CharacterizeRequest) (*CharacterizeResponse, error) {
	v, err := m.runSync(ctx, JobRequest{Kind: string(JobCharacterize), Characterize: &req})
	if err != nil {
		return nil, err
	}
	return v.(*CharacterizeResponse), nil
}

// SyncSweep is POST /api/v1/sweep as a submit-and-wait over the job
// store.
func (m *JobManager) SyncSweep(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	v, err := m.runSync(ctx, JobRequest{Kind: string(JobSweep), Sweep: &req})
	if err != nil {
		return nil, err
	}
	return v.(*SweepResponse), nil
}

// SyncSimulate is POST /api/v1/simulate as a submit-and-wait over the
// job store.
func (m *JobManager) SyncSimulate(ctx context.Context, req SimulateRequest) (*SimulateResponse, error) {
	v, err := m.runSync(ctx, JobRequest{Kind: string(JobSimulate), Simulate: &req})
	if err != nil {
		return nil, err
	}
	return v.(*SimulateResponse), nil
}

// Metrics returns the job-store gauges for GET /metrics.
func (m *JobManager) Metrics() []Metric {
	m.mu.Lock()
	ids := make([]string, len(m.order))
	copy(ids, m.order)
	submitted, evicted := m.submitted, m.evicted
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()

	var active, terminal int64
	for _, j := range jobs {
		j.mu.Lock()
		if j.state.Terminal() {
			terminal++
		} else {
			active++
		}
		j.mu.Unlock()
	}
	return []Metric{
		{Name: "drmap_jobs_submitted_total", Value: submitted},
		{Name: "drmap_jobs_evicted_total", Value: evicted},
		{Name: "drmap_jobs_active", Value: active},
		{Name: "drmap_jobs_stored", Value: active + terminal},
	}
}

// validateJobRequest resolves the kind, checks the matching payload is
// present, and pre-parses the inputs that the synchronous entry point
// would reject, so a bad submit fails with a 400 instead of a failed
// job. The parses mirror each entry point's order exactly, so the
// error text matches what the v1 path reported before jobs existed.
// For DSE and simulate jobs it returns the backend's timing (the
// clock layer events are priced in).
func (m *JobManager) validateJobRequest(req JobRequest) (JobKind, dram.Timing, error) {
	kind := JobKind(req.Kind)
	var timing dram.Timing
	payloads := 0
	for _, p := range []bool{req.DSE != nil, req.Batch != nil, req.Characterize != nil, req.Sweep != nil, req.Simulate != nil} {
		if p {
			payloads++
		}
	}
	if payloads > 1 {
		return "", timing, fmt.Errorf("give exactly the one payload matching kind %q", req.Kind)
	}
	switch kind {
	case JobDSE:
		if req.DSE == nil {
			return "", timing, fmt.Errorf(`kind "dse" needs a "dse" payload`)
		}
		b, err := parseBackend(req.DSE.Arch)
		if err != nil {
			return "", timing, err
		}
		if _, err := parseNetwork(req.DSE.Network, req.DSE.Layers); err != nil {
			return "", timing, err
		}
		if _, err := parseSchedules(req.DSE.Schedules); err != nil {
			return "", timing, err
		}
		if _, err := parsePolicies(req.DSE.Policies); err != nil {
			return "", timing, err
		}
		if _, err := parseObjective(req.DSE.Objective); err != nil {
			return "", timing, err
		}
		timing = b.Config.Timing
	case JobBatch:
		if req.Batch == nil {
			return "", timing, fmt.Errorf(`kind "batch" needs a "batch" payload`)
		}
		// Item-level inputs are not pre-validated: a bad item fails
		// alone (the batch contract), not the whole submit.
		if err := req.Batch.Validate(); err != nil {
			return "", timing, err
		}
	case JobCharacterize:
		if req.Characterize == nil {
			return "", timing, fmt.Errorf(`kind "characterize" needs a "characterize" payload`)
		}
		for _, name := range req.Characterize.Archs {
			if _, err := parseBackend(name); err != nil {
				return "", timing, err
			}
		}
	case JobSweep:
		if req.Sweep == nil {
			return "", timing, fmt.Errorf(`kind "sweep" needs a "sweep" payload`)
		}
		// Mirror Service.Sweep's parse order: network, backend, kind.
		netName := req.Sweep.Network
		if netName == "" {
			netName = "alexnet"
		}
		if _, err := parseNetwork(netName, nil); err != nil {
			return "", timing, err
		}
		archName := req.Sweep.Arch
		if archName == "" {
			archName = "ddr3"
		}
		if _, err := parseBackend(archName); err != nil {
			return "", timing, err
		}
		switch req.Sweep.Kind {
		case "subarrays", "buffers", "batch":
		default:
			return "", timing, errUnknownSweepKind(req.Sweep.Kind)
		}
	case JobSimulate:
		if req.Simulate == nil {
			return "", timing, fmt.Errorf(`kind "simulate" needs a "simulate" payload`)
		}
		// parseSimulate is exactly Service.Simulate's parse, so a bad
		// submit fails with the v1 endpoint's error text.
		in, err := m.svc.parseSimulate(*req.Simulate)
		if err != nil {
			return "", timing, err
		}
		timing = in.backend.Config.Timing
	default:
		return "", timing, fmt.Errorf("unknown job kind %q (want dse, batch, characterize, sweep or simulate)", req.Kind)
	}
	return kind, timing, nil
}
