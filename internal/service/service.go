// Package service turns the DRMap tool flow (Fig. 8) into a concurrent,
// cacheable engine: a parallel DSE executor fanning the layer x schedule
// x policy grid over a worker pool, a bounded content-addressed result
// cache with single-flight deduplication, JSON request/response types
// for every entry point, and the HTTP handlers behind the drmap-serve
// daemon.
//
// # Serving
//
// The drmap-serve daemon (cmd/drmap-serve) exposes:
//
//	GET  /healthz             - liveness plus cache/evaluation counters
//	GET  /metrics             - Prometheus exposition of serving/cluster/job telemetry
//	GET  /api/v1/version      - build identity (version, go version, VCS revision)
//	GET  /api/v1/policies     - the Table I mapping policies
//	GET  /api/v1/backends     - the registered DRAM backends (ID-sorted)
//	POST /api/v1/characterize - Fig. 1 characterization {"archs":["ddr3",...]}
//	POST /api/v1/dse          - Algorithm 1 {"arch":"ddr3","network":"alexnet"}
//	POST /api/v1/batch        - many DSE jobs in one request {"jobs":[...]}
//	POST /api/v1/simulate     - trace-driven layer validation
//	POST /api/v1/sweep        - ablation sweeps {"kind":"subarrays"}
//
// plus the job-oriented v2 surface (async submit, progress, streaming,
// cancel - see JobManager and API.md):
//
//	POST   /api/v2/jobs             - submit a dse/batch/characterize/sweep/simulate job
//	GET    /api/v2/jobs             - list jobs (?kind=, ?state=, ?limit=)
//	GET    /api/v2/jobs/{id}        - status, progress, result once terminal
//	GET    /api/v2/jobs/{id}/events - NDJSON/SSE event stream (?from= resumes)
//	DELETE /api/v2/jobs/{id}        - cancel
//
// The v1 POST endpoints are thin synchronous wrappers over the same
// job manager (submit + wait), so both surfaces share one execution
// path, one cache, and one cluster runner.
//
// Every "arch" field accepts any registered DRAM backend ID (package
// dram's registry): the four paper architectures plus the generality
// presets, and whatever the embedding process registers at startup.
//
// Quickstart:
//
//	drmap-serve -addr :8080 &
//	curl -s localhost:8080/api/v1/dse -d '{"arch":"ddr3","network":"alexnet"}'
//	curl -s localhost:8080/api/v2/jobs -d '{"kind":"dse","dse":{"arch":"ddr3","network":"alexnet"}}'
//
// Identical requests are content-addressed (SHA-256 of the resolved
// inputs) and served from a bounded LRU cache; concurrent identical
// requests share one evaluation (single-flight).
package service

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/memctrl"
	"drmap/internal/obs"
	"drmap/internal/profile"
	"drmap/internal/report"
	"drmap/internal/sweep"
	"drmap/internal/tiling"
)

// Options tune a Service.
type Options struct {
	// Workers sizes the DSE/characterization worker pools; <= 0 means
	// one per logical CPU.
	Workers int
	// CacheEntries bounds the result cache: 0 selects
	// DefaultCacheEntries, negative disables retention (single-flight
	// deduplication still applies).
	CacheEntries int
	// PlanCacheEntries bounds the count-plan cache, which holds one
	// backend-independent count plan per evaluated (layer, schedule)
	// grid column: 0 selects DefaultPlanCacheEntries, negative disables
	// the cache entirely (every evaluation recounts, the pre-split
	// behavior - mainly useful for baselines and benchmarks).
	PlanCacheEntries int
	// PlanCacheBytes, when > 0, additionally caps the plan cache's
	// resident bytes: plans are stored vectorized (core.FlatColumn) and
	// sized exactly, and LRU plans are evicted once the sum exceeds the
	// budget, whatever the entry count. 0 leaves only the entry cap.
	PlanCacheBytes int64
	// Accel is the accelerator configuration; the zero value selects
	// the paper's Table II accelerator.
	Accel accel.Config
	// Runner, when set, executes resolved DSE jobs - e.g. a cluster
	// coordinator distributing shards over remote workers - instead of
	// the local pool. A runner returning an error that wraps
	// ErrNoWorkers falls back to the local pool.
	Runner DSERunner
	// ExtraMetrics, when set, supplies additional counters appended to
	// GET /metrics (e.g. cluster worker/shard gauges).
	ExtraMetrics func() []Metric
	// Registry, when set, is the metrics registry GET /metrics renders
	// and every instrument registers on; nil builds a fresh one.
	// Processes hosting several telemetry sources (job manager, cluster
	// roles) share the service's registry, so one scrape covers them
	// all.
	Registry *obs.Registry
	// Spans, when set, is the trace store GET /api/v1/traces reads and
	// every instrumented tier records spans into; nil builds one with
	// default bounds (obs.SpanStoreOptions zero values).
	Spans *obs.SpanStore
}

// DefaultCacheEntries is the drmap-serve default result-cache bound.
const DefaultCacheEntries = 256

// DefaultPlanCacheEntries is the drmap-serve default count-plan-cache
// bound, in grid columns (an AlexNet DSE is 20 columns per distinct
// count signature).
const DefaultPlanCacheEntries = 512

// Service is the concurrent DSE/characterization engine behind
// drmap-serve. It is safe for concurrent use.
type Service struct {
	workers int
	accel   accel.Config
	cache   *Cache
	evals   atomic.Int64 // fresh (non-cached, non-coalesced) computations
	// gate bounds the total CPU-bound DSE parallelism across all
	// concurrently running requests to `workers` tokens, so N distinct
	// in-flight requests queue for CPU instead of oversubscribing it
	// N*workers-fold.
	gate   chan struct{}
	runner DSERunner
	// planCache holds backend-independent count plans, one per (job
	// minus costs/timing, grid column); nil when disabled. See plan.go.
	planCache    *Cache
	extraMetrics func() []Metric
	registry     *obs.Registry
	// phaseSeconds is the drmap_eval_phase_seconds histogram; the column
	// evaluator observes count and price time into it (see plan.go).
	phaseSeconds *obs.HistogramVec
	// simCommands and simEngineSeconds instrument the cycle-accurate
	// validation path: issued DRAM commands by mnemonic, and simulate
	// wall-clock by event engine (see simjob.go).
	simCommands      *obs.CounterVec
	simEngineSeconds *obs.HistogramVec
	// warm tracks the plan warmer once EnableWarm has run; nil otherwise.
	warm *warmer
	// spans is the tail-sampled trace store behind /api/v1/traces.
	spans *obs.SpanStore
}

// New builds a Service.
func New(opt Options) *Service {
	if opt.Accel == (accel.Config{}) {
		opt.Accel = accel.TableII()
	}
	if opt.CacheEntries == 0 {
		opt.CacheEntries = DefaultCacheEntries
	}
	if opt.PlanCacheEntries == 0 {
		opt.PlanCacheEntries = DefaultPlanCacheEntries
	}
	var planCache *Cache
	if opt.PlanCacheEntries > 0 {
		planCache = NewCacheSized(opt.PlanCacheEntries, opt.PlanCacheBytes, planSizeBytes)
	}
	if opt.Registry == nil {
		opt.Registry = obs.NewRegistry()
	}
	if opt.Spans == nil {
		opt.Spans = obs.NewSpanStore(obs.SpanStoreOptions{})
	}
	workers := defaultWorkers(opt.Workers)
	s := &Service{
		workers:      workers,
		accel:        opt.Accel,
		cache:        NewCache(opt.CacheEntries),
		gate:         make(chan struct{}, workers),
		runner:       opt.Runner,
		planCache:    planCache,
		extraMetrics: opt.ExtraMetrics,
		registry:     opt.Registry,
		spans:        opt.Spans,
	}
	s.registerMetrics()
	return s
}

// SetRunner installs (or clears) the distributed DSE runner after
// construction - cmd wiring builds the service first, then the cluster
// coordinator around it. Call before serving requests.
func (s *Service) SetRunner(r DSERunner) { s.runner = r }

// SetExtraMetrics installs the extra-metrics source after construction.
// Call before serving requests.
func (s *Service) SetExtraMetrics(f func() []Metric) { s.extraMetrics = f }

// Spans returns the service's trace store.
func (s *Service) Spans() *obs.SpanStore { return s.spans }

// internalError marks a failure that occurred while computing a result,
// as opposed to rejecting a request's inputs; the HTTP layer maps it to
// a 5xx status.
type internalError struct{ err error }

func (e *internalError) Error() string { return e.err.Error() }
func (e *internalError) Unwrap() error { return e.err }

// Workers returns the pool size.
func (s *Service) Workers() int { return s.workers }

// CacheStats snapshots the result cache counters.
func (s *Service) CacheStats() CacheStats { return s.cache.Stats() }

// PlanCacheStats snapshots the count-plan cache counters; all-zero when
// the plan cache is disabled. A hit means a grid column was repriced
// from a cached count plan instead of recounted - the multi-backend /
// multi-objective sharing the count -> price split buys.
func (s *Service) PlanCacheStats() CacheStats {
	if s.planCache == nil {
		return CacheStats{}
	}
	return s.planCache.Stats()
}

// Evaluations returns how many fresh computations the service has run;
// cached and coalesced requests do not increment it.
func (s *Service) Evaluations() int64 { return s.evals.Load() }

// Health reports liveness and serving counters; with warming enabled it
// carries the warmer's progress so orchestrators can gate readiness on
// warm.state == "ready".
func (s *Service) Health() HealthResponse {
	resp := HealthResponse{
		Status:      "ok",
		Workers:     s.workers,
		Evaluations: s.Evaluations(),
		Cache:       s.CacheStats(),
	}
	if s.warm != nil {
		st := s.warm.status()
		resp.Warm = &st
	}
	return resp
}

// Policies lists the Table I mapping policies.
func (s *Service) Policies() PoliciesResponse {
	return PoliciesResponse{Policies: report.TableIJSON()}
}

// Backends lists the registered DRAM backends the service will accept
// in any "arch" field, sorted by ID.
func (s *Service) Backends() BackendsResponse {
	return BackendsResponse{Backends: report.BackendsJSON(dram.Backends())}
}

// cacheKey namespaces fingerprints by entry point so, e.g., a profile
// and a DSE over the same config never collide.
type cacheKey struct {
	Kind  string
	Value any
}

func (s *Service) do(kind string, keyable any, compute func() (any, error)) (any, bool, error) {
	key, err := Fingerprint(cacheKey{Kind: kind, Value: keyable})
	if err != nil {
		return nil, false, &internalError{err: err}
	}
	return s.cache.Do(key, func() (any, error) {
		s.evals.Add(1)
		v, err := compute()
		if err != nil {
			// Inputs were validated before the computation started, so
			// whatever failed here is the server's fault.
			return nil, &internalError{err: err}
		}
		return v, nil
	})
}

// profileFor characterizes one backend, cached and single-flight, and
// reports whether this call computed the profile fresh (as opposed to
// a cache hit or a coalesced in-flight evaluation). The cache key is
// the full backend (ID, name and configuration), so a re-registered ID
// with a different config can never serve stale data.
func (s *Service) profileFor(b dram.Backend) (p *profile.Profile, fresh bool, err error) {
	v, shared, err := s.do("profile", b, func() (any, error) {
		return profile.CharacterizeBackend(b)
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*profile.Profile), !shared, nil
}

// gridKey content-addresses a DSE grid: candidate tilings depend only
// on the workload and the accelerator buffers, so every backend,
// objective and batch size of the same (network, accel) pair shares
// one enumeration.
type gridKey struct {
	Network any
	Accel   accel.Config
}

// gridFor enumerates the job's DSE grid through the content-addressed
// cache, single-flight. On the warm path re-enumerating tilings per
// job costs more than repricing the cached plans, and a multi-backend
// batch enumerates the identical grid once instead of per backend.
// Every consumer treats the returned grids as immutable.
func (s *Service) gridFor(job DSEJob) ([]core.LayerGrid, error) {
	key, err := Fingerprint(cacheKey{Kind: "grid", Value: gridKey{Network: job.Network, Accel: job.Accel}})
	if err != nil {
		return nil, &internalError{err: err}
	}
	v, _, err := s.cache.Do(key, func() (any, error) { return job.Grid() })
	if err != nil {
		return nil, err
	}
	return v.([]core.LayerGrid), nil
}

// evaluatorFor builds an evaluator on the cached characterization.
func (s *Service) evaluatorFor(b dram.Backend, batch int) (*core.Evaluator, error) {
	p, _, err := s.profileFor(b)
	if err != nil {
		return nil, err
	}
	return core.NewEvaluator(p, s.accel, batch)
}

// dseKey is the content address of a DSE request: the full DRAM
// backend (ID plus configuration) and accelerator configuration plus
// the resolved workload and search space, so preset changes, registry
// changes or custom layers can never alias.
type dseKey struct {
	Backend   dram.Backend
	Accel     accel.Config
	Network   any
	Schedules []string
	Policies  []int
	Objective string
	Batch     int
}

// DSE runs Algorithm 1 for the request, fanning the evaluation grid
// over the worker pool (total parallelism across all in-flight requests
// is bounded by the service's worker count). Identical requests are
// answered from the cache; concurrent identical requests share a
// single evaluation. The evaluation is detached from any one caller:
// each caller's wait is bounded by its own context, and an evaluation
// whose callers all gave up still completes and is cached, so retries
// hit the cache instead of recomputing.
func (s *Service) DSE(ctx context.Context, req DSERequest) (*DSEResponse, error) {
	backend, err := parseBackend(req.Arch)
	if err != nil {
		return nil, err
	}
	net, err := parseNetwork(req.Network, req.Layers)
	if err != nil {
		return nil, err
	}
	schedules, err := parseSchedules(req.Schedules)
	if err != nil {
		return nil, err
	}
	policies, err := parsePolicies(req.Policies)
	if err != nil {
		return nil, err
	}
	obj, err := parseObjective(req.Objective)
	if err != nil {
		return nil, err
	}
	batch := req.Batch
	if batch == 0 {
		batch = 1
	}

	schedNames := make([]string, len(schedules))
	for i, sc := range schedules {
		schedNames[i] = sc.String()
	}
	polIDs := make([]int, len(policies))
	for i, p := range policies {
		polIDs[i] = p.ID
	}
	key := dseKey{
		Backend: backend, Accel: s.accel, Network: net,
		Schedules: schedNames, Policies: polIDs,
		Objective: obj.String(), Batch: batch,
	}
	// The "dse" span opens before the detached evaluation context is
	// captured, so count/price/shard spans recorded by the compute
	// closure parent under it even when the evaluation outlives ctx.
	sctx, span := obs.StartSpan(ctx, "dse",
		obs.Str("backend", backend.ID),
		obs.Str("network", net.Name),
		obs.Str("objective", obj.String()),
		obs.Int("batch", batch))
	evalCtx := context.WithoutCancel(sctx)
	v, shared, err := s.doBounded(ctx, "dse", key, func() (any, error) {
		job := DSEJob{
			Backend: backend, Accel: s.accel, Network: net,
			Schedules: schedules, Policies: policies,
			Objective: obj, Batch: batch,
		}
		res, err := s.runJob(evalCtx, job)
		if err != nil {
			return nil, err
		}
		// The evaluator's timing is its profile's config timing, i.e.
		// the backend's - available without characterizing locally when
		// a cluster ran the job.
		return &DSEResponse{
			Network:   net.Name,
			Objective: obj.String(),
			Batch:     batch,
			Result:    report.DSEResultJSON(res, backend.Config.Timing),
		}, nil
	})
	if err != nil {
		span.Fail(err)
		span.End()
		return nil, err
	}
	span.SetAttr(obs.Bool("cache_hit", shared))
	span.End()
	resp := *(v.(*DSEResponse))
	resp.Cached = shared
	return &resp, nil
}

// Characterize measures the requested backends (every registered
// backend when the request names none), fanning uncached ones over the
// worker pool. As with the other endpoints, the caller's wait is
// bounded by ctx while the characterizations themselves finish and are
// cached per backend, so a timed-out client's retry picks up where it
// left.
func (s *Service) Characterize(ctx context.Context, req CharacterizeRequest) (*CharacterizeResponse, error) {
	names := req.Archs
	var backends []dram.Backend
	if len(names) == 0 {
		backends = dram.Backends()
	} else {
		for _, name := range names {
			b, err := parseBackend(name)
			if err != nil {
				return nil, err
			}
			backends = append(backends, b)
		}
	}

	type outcome struct {
		resp *CharacterizeResponse
		err  error
	}
	ch := make(chan outcome, 1)
	detached := context.WithoutCancel(ctx)
	go func() {
		resp, err := s.characterize(detached, backends)
		ch <- outcome{resp: resp, err: err}
	}()
	select {
	case o := <-ch:
		return o.resp, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// characterize runs the per-backend profile computations over the
// worker pool and assembles the response.
func (s *Service) characterize(ctx context.Context, backends []dram.Backend) (*CharacterizeResponse, error) {
	profiles := make([]*profile.Profile, len(backends))
	errs := make([]error, len(backends))
	fresh := make([]bool, len(backends))
	err := runPool(ctx, len(backends), s.workers, func(i int) {
		profiles[i], fresh[i], errs[i] = s.profileFor(backends[i])
	})
	if err != nil {
		return nil, fmt.Errorf("service: characterization canceled: %w", err)
	}
	allCached := true
	for i := range backends {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if fresh[i] {
			allCached = false
		}
	}
	return &CharacterizeResponse{Profiles: report.Fig1JSON(profiles), Cached: allCached}, nil
}

// doBounded is do with the caller's wait bounded by ctx while the
// computation itself is detached: a timed-out or disconnected caller
// gets the context's error, but the single-flight computation finishes
// in the background and is cached, so its coalesced peers (each waiting
// under their own context) still get the result and a timed-out
// client's retry becomes a cache hit. compute must not depend on ctx.
func (s *Service) doBounded(ctx context.Context, kind string, keyable any, compute func() (any, error)) (any, bool, error) {
	type outcome struct {
		v      any
		shared bool
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, shared, err := s.do(kind, keyable, compute)
		ch <- outcome{v: v, shared: shared, err: err}
	}()
	select {
	case o := <-ch:
		return o.v, o.shared, o.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// simInputs are a simulate request's parsed fields, shared by
// Service.Simulate and the job-submit validation (which must reject
// bad inputs with identical text without running anything).
type simInputs struct {
	backend     dram.Backend
	policy      mapping.Policy
	policyID    int
	networkMode bool
	network     cnn.Network
	spec        core.LayerSpec  // single-layer mode
	sched       tiling.Schedule // network mode's pick schedule
	batch       int
	bpe         int
	scheduler   memctrl.Scheduler
	pagePolicy  memctrl.PagePolicy
	parallel    bool
}

// parseSimulate resolves a simulate request's names and defaults. The
// single-layer parse order (backend, policy, layer, schedule, batch,
// element width) predates network mode and is preserved exactly, so
// error text never changes for existing clients.
func (s *Service) parseSimulate(req SimulateRequest) (*simInputs, error) {
	in := &simInputs{policyID: req.Policy}
	var err error
	in.backend, err = parseBackend(req.Arch)
	if err != nil {
		return nil, err
	}
	policies, err := parsePolicies([]int{req.Policy})
	if err != nil {
		return nil, err
	}
	in.policy = policies[0]
	in.networkMode = req.Network != ""
	if in.networkMode {
		if req.Layer != (LayerJSON{}) || req.Tiling != (report.TilingJSON{}) {
			return nil, fmt.Errorf("give either a network or a single layer+tiling, not both")
		}
		in.network, err = parseNetwork(req.Network, nil)
		if err != nil {
			return nil, err
		}
		schedName := req.Schedule
		if schedName == "" {
			schedName = "adaptive"
		}
		in.sched, err = parseSchedule(schedName)
		if err != nil {
			return nil, err
		}
	} else {
		layer, err := req.Layer.toLayer()
		if err != nil {
			return nil, err
		}
		sched, err := parseSchedule(req.Schedule)
		if err != nil {
			return nil, err
		}
		in.spec = core.LayerSpec{
			Layer:    layer,
			Tiling:   tiling.Tiling{Th: req.Tiling.Th, Tw: req.Tiling.Tw, Tj: req.Tiling.Tj, Ti: req.Tiling.Ti},
			Schedule: sched,
		}
	}
	in.batch = req.Batch
	if in.batch == 0 {
		in.batch = 1
	}
	in.spec.Batch = in.batch
	in.bpe = req.BytesPerElement
	if in.bpe == 0 {
		// Default to the service accelerator's element width so the
		// validation path prices the same datatype the DSE models.
		in.bpe = s.accel.BytesPerElement
	}
	in.scheduler, err = parseSimScheduler(req.Scheduler)
	if err != nil {
		return nil, err
	}
	in.pagePolicy, err = parsePagePolicy(req.PagePolicy)
	if err != nil {
		return nil, err
	}
	in.parallel, err = parseSimEngine(req.Engine)
	if err != nil {
		return nil, err
	}
	return in, nil
}

// simSpecsFor expands the parsed inputs to concrete layer specs. In
// network mode, each layer's tiling (and, for adaptive, schedule) is
// picked by the DSE under the requested policy - the Fig. 8 flow:
// search analytically, then validate the picked design points in the
// cycle-accurate simulator.
func (s *Service) simSpecsFor(in *simInputs) ([]core.LayerSpec, error) {
	if !in.networkMode {
		return []core.LayerSpec{in.spec}, nil
	}
	ev, err := s.evaluatorFor(in.backend, in.batch)
	if err != nil {
		return nil, err
	}
	res, err := core.RunDSE(in.network, ev, []tiling.Schedule{in.sched}, []mapping.Policy{in.policy})
	if err != nil {
		return nil, err
	}
	specs := make([]core.LayerSpec, len(res.Layers))
	for i, lr := range res.Layers {
		specs[i] = core.LayerSpec{Layer: lr.Layer, Tiling: lr.Best.Tiling, Schedule: lr.Best.Schedule, Batch: in.batch}
	}
	return specs, nil
}

// Simulate runs the cycle-accurate controller and energy model (the
// validation path): one layer at a fixed design point, or - in network
// mode - every layer of a workload at its DSE-picked design point.
// Results are engine-independent (serial and parallel are bit-for-bit
// identical), so the engine choice is excluded from the cache key;
// like DSE, the evaluation is detached from any one caller and a
// distributed runner shards network jobs across cluster workers.
func (s *Service) Simulate(ctx context.Context, req SimulateRequest) (*SimulateResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	in, err := s.parseSimulate(req)
	if err != nil {
		return nil, err
	}
	specs, err := s.simSpecsFor(in)
	if err != nil {
		return nil, err
	}
	job := SimulateJob{
		Backend: in.backend, Policy: in.policy, Specs: specs,
		BytesPerElement: in.bpe,
		PagePolicy:      in.pagePolicy, Scheduler: in.scheduler,
		Parallel: in.parallel,
	}
	// The cache key is the job minus the engine choice: either engine
	// produces the identical response, so serial and parallel requests
	// share one entry.
	type simKey struct {
		Backend    dram.Backend
		Policy     int
		Specs      []core.LayerSpec
		BPE        int
		Scheduler  memctrl.Scheduler
		PagePolicy memctrl.PagePolicy
	}
	key := simKey{
		Backend: in.backend, Policy: in.policyID, Specs: specs,
		BPE: in.bpe, Scheduler: in.scheduler, PagePolicy: in.pagePolicy,
	}
	engineName := "serial"
	if in.parallel {
		engineName = "parallel"
	}
	// As with DSE, the "sim.run" span opens before the detached
	// evaluation context is captured, so per-layer and shard spans
	// recorded by the compute closure parent under it.
	sctx, span := obs.StartSpan(ctx, "sim.run",
		obs.Str("backend", in.backend.ID),
		obs.Str("engine", engineName),
		obs.Int("policy", in.policyID),
		obs.Int("layers", len(specs)))
	evalCtx := context.WithoutCancel(sctx)
	v, shared, err := s.doBounded(ctx, "simulate", key, func() (any, error) {
		start := time.Now()
		res, err := s.runSimJob(evalCtx, job)
		if err != nil {
			return nil, err
		}
		s.simEngineSeconds.With(engineName).Observe(time.Since(start).Seconds())
		tm := in.backend.Config.Timing
		resp := &SimulateResponse{Arch: in.backend.Name}
		var total core.LayerEDP
		for _, lr := range res {
			total.Add(lr.Cost)
			for kind, n := range lr.Commands {
				s.simCommands.With(kind).Add(n)
			}
		}
		if in.networkMode {
			resp.Network = in.network.Name
			resp.Layers = make([]SimulateLayerJSON, len(res))
			for i, lr := range res {
				resp.Layers[i] = simLayerToJSON(lr, tm)
			}
			resp.Cost = report.LayerEDPToJSON(total, tm)
		} else {
			resp.Layer = in.spec.Layer.Name
			resp.Cost = report.LayerEDPToJSON(res[0].Cost, tm)
		}
		return resp, nil
	})
	if err != nil {
		span.Fail(err)
		span.End()
		return nil, err
	}
	span.SetAttr(obs.Bool("cache_hit", shared))
	span.End()
	resp := *(v.(*SimulateResponse))
	resp.Cached = shared
	return &resp, nil
}

// errUnknownSweepKind is shared between Sweep and the job-submit
// validation so both paths reject a bad kind with identical text.
func errUnknownSweepKind(kind string) error {
	return fmt.Errorf("unknown sweep kind %q (want subarrays, buffers or batch)", kind)
}

// Sweep runs one ablation sweep (subarrays, buffers or batch). Sweeps
// are the reproduction's ablation studies and always use the paper's
// Table II accelerator (package sweep's contract), regardless of
// Options.Accel; the buffers sweep varies the buffer sizes itself.
func (s *Service) Sweep(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	netName := req.Network
	if netName == "" {
		netName = "alexnet"
	}
	net, err := parseNetwork(netName, nil)
	if err != nil {
		return nil, err
	}
	archName := req.Arch
	if archName == "" {
		archName = "ddr3"
	}
	backend, err := parseBackend(archName)
	if err != nil {
		return nil, err
	}
	batch := req.Batch
	if batch == 0 {
		batch = 1
	}
	values := req.Values
	var run func() (*sweep.Table, error)
	switch req.Kind {
	case "subarrays":
		if len(values) == 0 {
			values = []int{2, 4, 8, 16}
		}
		run = func() (*sweep.Table, error) { return sweep.Subarrays(values, net, batch) }
	case "buffers":
		if len(values) == 0 {
			values = []int{32, 64, 128, 256}
		}
		run = func() (*sweep.Table, error) { return sweep.Buffers(values, backend, net, batch) }
	case "batch":
		if len(values) == 0 {
			values = []int{1, 2, 4, 8}
		}
		run = func() (*sweep.Table, error) { return sweep.Batches(values, backend, net) }
	default:
		return nil, errUnknownSweepKind(req.Kind)
	}
	type sweepKey struct {
		Kind    string
		Values  []int
		Backend dram.Backend
		Network string
		Batch   int
	}
	keyBackend := backend
	if req.Kind == "subarrays" {
		// The subarrays sweep is SALP-MASA by definition and ignores
		// the arch field; normalize it out of the key so arch-differing
		// requests share one cache entry.
		keyBackend = dram.Backend{}
	}
	v, shared, err := s.doBounded(ctx, "sweep", sweepKey{Kind: req.Kind, Values: values, Backend: keyBackend, Network: net.Name, Batch: batch}, func() (any, error) {
		t, err := run()
		if err != nil {
			return nil, err
		}
		return &SweepResponse{Table: report.SweepTableJSON(t)}, nil
	})
	if err != nil {
		return nil, err
	}
	resp := *(v.(*SweepResponse))
	resp.Cached = shared
	return &resp, nil
}
