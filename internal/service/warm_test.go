package service

import (
	"context"
	"strings"
	"testing"
	"time"

	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/tiling"
)

// waitWarmReady polls Health until the warmer reports ready.
func waitWarmReady(t *testing.T, svc *Service) WarmStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		h := svc.Health()
		if h.Warm == nil {
			t.Fatal("Health has no warm block after EnableWarm")
		}
		if h.Warm.State == "ready" {
			return *h.Warm
		}
		if time.Now().After(deadline) {
			t.Fatalf("warmer never became ready: %+v", *h.Warm)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWarmBootPass: after EnableWarm's boot pass over the registry, a
// batch fanning the warm network over every backend runs entirely on
// the reprice path - zero new count passes - and the warm counters
// account for the registry exactly.
func TestWarmBootPass(t *testing.T) {
	backends := dram.Backends()
	svc := New(Options{Workers: 2, CacheEntries: 64})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.EnableWarm(ctx, "lenet5"); err != nil {
		t.Fatalf("EnableWarm: %v", err)
	}
	if err := svc.EnableWarm(ctx, "lenet5"); err == nil {
		t.Error("EnableWarm accepted a second call")
	}
	st := waitWarmReady(t, svc)

	columns := len(cnn.LeNet5().Layers) * len(tiling.Schedules)
	if st.Errors != 0 {
		t.Errorf("warm errors: %+v", st)
	}
	if want := int64(len(backends)); st.Backends < want {
		t.Errorf("warmed %d backends, want >= %d", st.Backends, want)
	}
	if want := int64(len(backends) * columns); st.Columns < want {
		t.Errorf("warmed %d columns, want >= %d (%d backends x %d columns)", st.Columns, want, len(backends), columns)
	}

	// Count-signature arithmetic: one count pass per distinct die
	// geometry, everything else repriced or coalesced.
	keys := map[core.CountKey]bool{}
	for _, b := range backends {
		ev, err := svc.evaluatorFor(b, 1)
		if err != nil {
			t.Fatalf("evaluator %s: %v", b.ID, err)
		}
		keys[ev.CountKey()] = true
	}
	before := svc.PlanCacheStats()
	if want := int64(len(keys) * columns); before.Misses != want {
		t.Errorf("warm pass misses = %d, want %d (%d signatures x %d columns)", before.Misses, want, len(keys), columns)
	}

	jobs := make([]DSERequest, len(backends))
	for i, b := range backends {
		jobs[i] = DSERequest{Arch: b.ID, Network: "lenet5"}
	}
	resp, err := svc.Batch(context.Background(), BatchRequest{Jobs: jobs})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if resp.Failed != 0 {
		t.Fatalf("%d batch items failed", resp.Failed)
	}
	after := svc.PlanCacheStats()
	if after.Misses != before.Misses {
		t.Errorf("warmed batch still counted: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Hits <= before.Hits {
		t.Errorf("warmed batch did not reprice cached plans: hits %d -> %d", before.Hits, after.Hits)
	}

	text := svc.MetricsText()
	for _, want := range []string{
		"drmap_plan_warm_columns_total",
		"drmap_plan_warm_errors_total",
		"drmap_plan_warm_backends_total",
		"drmap_plan_warm_ready 1",
		"drmap_plan_warm_seconds",
		"drmap_plan_cache_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestWarmOnRegister: a backend registered while the daemon is serving
// is warmed by the dram.OnRegister subscription, so its first DSE
// reprices instead of counting.
func TestWarmOnRegister(t *testing.T) {
	const id = "ddr3-warmhook-test"
	if _, registered := dram.Lookup(id); registered {
		// The registry is process-global; under -count=N later runs find
		// the backend pre-registered and the hook path cannot fire.
		t.Skip("backend already registered in this process")
	}
	svc := New(Options{Workers: 2, CacheEntries: 64})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := svc.EnableWarm(ctx, "lenet5"); err != nil {
		t.Fatalf("EnableWarm: %v", err)
	}
	ready := waitWarmReady(t, svc)

	// A distinct die geometry forces genuinely fresh count passes, so
	// the register-time warm is observable in the miss counter.
	cfg := dram.DDR3Config()
	cfg.Geometry.Channels = 3
	if err := dram.Register(dram.Backend{ID: id, Config: cfg}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for svc.Health().Warm.Backends <= ready.Backends {
		if time.Now().After(deadline) {
			t.Fatalf("registered backend never warmed: %+v", *svc.Health().Warm)
		}
		time.Sleep(5 * time.Millisecond)
	}

	before := svc.PlanCacheStats()
	if _, err := svc.DSE(context.Background(), DSERequest{Arch: id, Network: "lenet5"}); err != nil {
		t.Fatalf("DSE: %v", err)
	}
	after := svc.PlanCacheStats()
	if after.Misses != before.Misses {
		t.Errorf("first DSE on a register-warmed backend counted: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Hits <= before.Hits {
		t.Errorf("first DSE did not reprice the warmed plans: hits %d -> %d", before.Hits, after.Hits)
	}
}

// TestEnableWarmValidation: warming requires the plan cache and known
// network names.
func TestEnableWarmValidation(t *testing.T) {
	ctx := context.Background()
	if err := planDisabled().EnableWarm(ctx); err == nil {
		t.Error("EnableWarm ran without a plan cache")
	}
	svc := New(Options{Workers: 1, CacheEntries: 8})
	if err := svc.EnableWarm(ctx, "no-such-network"); err == nil {
		t.Error("EnableWarm accepted an unknown network")
	}
	if svc.Health().Warm != nil {
		t.Error("failed EnableWarm left a warm block in Health")
	}
}
