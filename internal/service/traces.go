// The trace API: read-only endpoints over the service's tail-sampled
// span store (obs.SpanStore).
//
//	GET /api/v1/traces                    - index of retained traces, newest first
//	GET /api/v1/traces?limit=N            - cap the index
//	GET /api/v1/traces/{id}               - one assembled span tree
//	GET /api/v1/traces/{id}?format=chrome - Chrome trace-event JSON
//	                                        (load in Perfetto or chrome://tracing)
package service

import (
	"net/http"
	"strconv"

	"drmap/internal/obs"
)

// TracesResponse is the GET /api/v1/traces body.
type TracesResponse struct {
	// Traces are the retained trace summaries, newest first.
	Traces []obs.TraceSummary `json:"traces"`
	// Store is the span store's accounting (recorded/dropped/evicted).
	Store obs.SpanStoreStats `json:"store"`
}

// defaultTraceIndexLimit bounds GET /api/v1/traces without ?limit=.
const defaultTraceIndexLimit = 100

func mountTraces(mux *http.ServeMux, s *Service) {
	st := s.Spans()
	if st == nil {
		return
	}
	mux.HandleFunc("GET /api/v1/traces", func(w http.ResponseWriter, r *http.Request) {
		limit := defaultTraceIndexLimit
		if q := r.URL.Query().Get("limit"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 1 {
				writeJSON(w, http.StatusBadRequest, errorJSON{Error: "bad limit: " + q})
				return
			}
			limit = n
		}
		writeJSON(w, http.StatusOK, TracesResponse{
			Traces: st.Summaries(limit),
			Store:  st.Stats(),
		})
	})
	mux.HandleFunc("GET /api/v1/traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		tree, ok := st.Tree(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorJSON{Error: "trace not found (evicted or never recorded): " + id})
			return
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(obs.ChromeTrace(tree))
			return
		}
		writeJSON(w, http.StatusOK, tree)
	})
}
