package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"drmap/internal/core"
)

// blockingRunner parks every DSE until released, giving tests a
// deterministically long-running job. Releasing makes it fall back to
// the local pool via ErrNoWorkers.
type blockingRunner struct{ release chan struct{} }

func (r *blockingRunner) RunDSE(ctx context.Context, job DSEJob) (*core.DSEResult, error) {
	select {
	case <-r.release:
		return nil, fmt.Errorf("runner drained: %w", ErrNoWorkers)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func waitTerminal(t *testing.T, jm *JobManager, id string) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	v, err := jm.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait for %s: %v", id, err)
	}
	return v
}

// TestJobLifecycleDSE: a submitted DSE job runs to succeeded with a
// decodable result, full column progress, and one layer event per
// layer in commit order within the log.
func TestJobLifecycleDSE(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 8})
	jm := NewJobManager(svc, JobManagerOptions{})
	view, err := jm.Submit(context.Background(), JobRequest{Kind: "dse", DSE: &DSERequest{Arch: "ddr3", Network: "lenet5"}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if view.Kind != JobDSE || view.State.Terminal() {
		t.Fatalf("fresh job view %+v", view)
	}
	final := waitTerminal(t, jm, view.ID)
	if final.State != JobSucceeded || final.Error != "" {
		t.Fatalf("final state %s (%s), want succeeded", final.State, final.Error)
	}
	var resp DSEResponse
	if err := json.Unmarshal(final.Result, &resp); err != nil {
		t.Fatalf("decode job result: %v", err)
	}
	direct, err := svc.DSE(context.Background(), *jm.jobs[view.ID].req.DSE)
	if err != nil {
		t.Fatalf("direct DSE: %v", err)
	}
	if !reflect.DeepEqual(resp.Result, direct.Result) {
		t.Error("job result diverged from the direct service result")
	}

	p := final.Progress
	if p.ColumnsTotal == 0 || p.ColumnsDone != p.ColumnsTotal {
		t.Errorf("progress %+v, want all announced columns done", p)
	}
	events, _, terminal := jm.jobs[view.ID].eventsSince(0)
	if !terminal {
		t.Fatal("terminal job's log not marked terminal")
	}
	var layerIdx []int
	var last JobEvent
	for _, e := range events {
		if e.Type == EventLayer {
			layerIdx = append(layerIdx, e.Index)
		}
		last = e
	}
	if len(layerIdx) != p.LayersDone || len(layerIdx) == 0 {
		t.Errorf("layer events %v vs layers_done %d", layerIdx, p.LayersDone)
	}
	if last.Type != EventState || last.State != JobSucceeded {
		t.Errorf("log does not end with the terminal state event: %+v", last)
	}
	for i, e := range events[:len(events)-1] {
		if e.Seq >= events[i+1].Seq {
			t.Fatalf("event seqs not strictly increasing: %d then %d", e.Seq, events[i+1].Seq)
		}
	}
}

// TestJobSyncMatchesDirect: the v1 synchronous wrappers return exactly
// what the direct Service methods return - results and errors both.
func TestJobSyncMatchesDirect(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 16})
	jm := NewJobManager(svc, JobManagerOptions{})
	ctx := context.Background()

	direct, err := svc.DSE(ctx, DSERequest{Arch: "salp1", Network: "lenet5"})
	if err != nil {
		t.Fatalf("direct DSE: %v", err)
	}
	viaJobs, err := jm.SyncDSE(ctx, DSERequest{Arch: "salp1", Network: "lenet5"})
	if err != nil {
		t.Fatalf("SyncDSE: %v", err)
	}
	if !reflect.DeepEqual(viaJobs.Result, direct.Result) {
		t.Error("SyncDSE result diverged from Service.DSE")
	}
	if !viaJobs.Cached {
		t.Error("identical repeat through the job manager missed the cache")
	}

	// Error texts match because validation reuses the same parsers in
	// the same order.
	_, directErr := svc.DSE(ctx, DSERequest{Arch: "nope", Network: "lenet5"})
	_, jobErr := jm.SyncDSE(ctx, DSERequest{Arch: "nope", Network: "lenet5"})
	if directErr == nil || jobErr == nil || directErr.Error() != jobErr.Error() {
		t.Errorf("error texts diverge:\ndirect: %v\njobs:   %v", directErr, jobErr)
	}
	_, directErr = svc.Sweep(ctx, SweepRequest{Kind: "nope"})
	_, jobErr = jm.SyncSweep(ctx, SweepRequest{Kind: "nope"})
	if directErr == nil || jobErr == nil || directErr.Error() != jobErr.Error() {
		t.Errorf("sweep error texts diverge:\ndirect: %v\njobs:   %v", directErr, jobErr)
	}
	_, directErr = svc.Batch(ctx, BatchRequest{})
	_, jobErr = jm.SyncBatch(ctx, BatchRequest{})
	if directErr == nil || jobErr == nil || directErr.Error() != jobErr.Error() {
		t.Errorf("batch error texts diverge:\ndirect: %v\njobs:   %v", directErr, jobErr)
	}
}

// TestJobCancel: canceling a running job transitions it to canceled
// promptly (the evaluation detaches); canceling again is
// ErrJobFinished, canceling the unknown is ErrJobNotFound.
func TestJobCancel(t *testing.T) {
	runner := &blockingRunner{release: make(chan struct{})}
	svc := New(Options{Workers: 1, CacheEntries: 8, Runner: runner})
	jm := NewJobManager(svc, JobManagerOptions{})

	view, err := jm.Submit(context.Background(), JobRequest{Kind: "dse", DSE: &DSERequest{Arch: "ddr3", Network: "lenet5"}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := jm.Cancel(view.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	final := waitTerminal(t, jm, view.ID)
	if final.State != JobCanceled {
		t.Fatalf("state %s after cancel, want canceled", final.State)
	}
	if _, err := jm.Cancel(view.ID); !errors.Is(err, ErrJobFinished) {
		t.Errorf("second cancel: %v, want ErrJobFinished", err)
	}
	if _, err := jm.Cancel("job-999"); !errors.Is(err, ErrJobNotFound) {
		t.Errorf("cancel unknown: %v, want ErrJobNotFound", err)
	}

	// The canceled job's evaluation completes detached (and is cached);
	// its late progress reports must not leak past the terminal state
	// event - the stream contract says that event ends the log.
	eventsAtCancel := final.Events
	close(runner.release) // unblock: the evaluation falls back to the local pool
	deadline := time.Now().Add(time.Minute)
	for svc.Evaluations() < 2 { // ddr3 profile + the detached DSE
		if time.Now().After(deadline) {
			t.Fatal("detached evaluation never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	after, ok := jm.Get(view.ID)
	if !ok {
		t.Fatal("canceled job gone")
	}
	if after.Events != eventsAtCancel {
		t.Errorf("events grew %d -> %d after the terminal state", eventsAtCancel, after.Events)
	}
	events, _, _ := jm.jobs[view.ID].eventsSince(0)
	if last := events[len(events)-1]; last.Type != EventState || last.State != JobCanceled {
		t.Errorf("log no longer ends with the terminal state event: %+v", last)
	}
}

// TestJobStoreTTLAndBound: terminal jobs age out at the TTL, a full
// store evicts the oldest terminal job to admit a new one, and a store
// of only active jobs rejects the submit.
func TestJobStoreTTLAndBound(t *testing.T) {
	// The clock is read from job goroutines, so it must be atomic.
	var nowNanos atomic.Int64
	nowNanos.Store(time.Unix(1000, 0).UnixNano())
	clock := func() time.Time { return time.Unix(0, nowNanos.Load()) }
	runner := &blockingRunner{release: make(chan struct{})}
	defer close(runner.release)
	svc := New(Options{Workers: 1, CacheEntries: 8, Runner: runner})
	jm := NewJobManager(svc, JobManagerOptions{MaxJobs: 2, TTL: time.Minute, Now: clock})

	// A fast terminal job: invalid batch items still make the batch
	// itself succeed per-item... use a characterize of a known backend
	// via the local path (the runner only blocks DSE).
	done, err := jm.Submit(context.Background(), JobRequest{Kind: "characterize", Characterize: &CharacterizeRequest{Archs: []string{"ddr3"}}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitTerminal(t, jm, done.ID)

	// Fill the store with an active job.
	active, err := jm.Submit(context.Background(), JobRequest{Kind: "dse", DSE: &DSERequest{Arch: "ddr3", Network: "lenet5"}})
	if err != nil {
		t.Fatalf("submit active: %v", err)
	}
	// Store full (terminal + active): the terminal one is evicted to
	// admit the next.
	active2, err := jm.Submit(context.Background(), JobRequest{Kind: "dse", DSE: &DSERequest{Arch: "salp1", Network: "lenet5"}})
	if err != nil {
		t.Fatalf("submit at capacity: %v", err)
	}
	if _, ok := jm.Get(done.ID); ok {
		t.Error("terminal job survived bound eviction")
	}
	// Now both stored jobs are active: a further submit is rejected.
	if _, err := jm.Submit(context.Background(), JobRequest{Kind: "dse", DSE: &DSERequest{Arch: "masa", Network: "lenet5"}}); !errors.Is(err, ErrJobStoreFull) {
		t.Errorf("submit into full active store: %v, want ErrJobStoreFull", err)
	}
	// ...but v1 sync traffic must not starve: ephemeral jobs bypass the
	// capacity check (they self-drop once answered).
	if _, err := jm.SyncCharacterize(context.Background(), CharacterizeRequest{Archs: []string{"ddr3"}}); err != nil {
		t.Errorf("v1 sync call starved by a full v2 store: %v", err)
	}

	// TTL: cancel one, age it past the TTL, and watch it evict on the
	// next submit.
	if _, err := jm.Cancel(active.ID); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jm, active.ID)
	nowNanos.Add(int64(2 * time.Minute))
	if _, err := jm.Submit(context.Background(), JobRequest{Kind: "dse", DSE: &DSERequest{Arch: "salp2", Network: "lenet5"}}); err != nil {
		t.Fatalf("submit after TTL: %v", err)
	}
	if _, ok := jm.Get(active.ID); ok {
		t.Error("canceled job survived past its TTL")
	}
	if _, ok := jm.Get(active2.ID); !ok {
		t.Error("active job was evicted")
	}
}

// TestJobValidation: bad submits fail synchronously with clear errors
// instead of producing failed jobs.
func TestJobValidation(t *testing.T) {
	svc := New(Options{Workers: 1, CacheEntries: 4})
	jm := NewJobManager(svc, JobManagerOptions{})
	cases := []struct {
		name string
		req  JobRequest
		want string
	}{
		{"unknown kind", JobRequest{Kind: "emulate"}, "unknown job kind"},
		{"simulate without payload", JobRequest{Kind: "simulate"}, `needs a "simulate" payload`},
		{"simulate bad engine", JobRequest{Kind: "simulate", Simulate: &SimulateRequest{Arch: "ddr3", Network: "lenet5", Engine: "quantum"}}, "unknown engine"},
		{"simulate layer and network", JobRequest{Kind: "simulate", Simulate: &SimulateRequest{Arch: "ddr3", Network: "lenet5", Layer: LayerJSON{Name: "c1", H: 8, W: 8, J: 3, I: 3, P: 3, Q: 3, Stride: 1}}}, "not both"},
		{"missing payload", JobRequest{Kind: "dse"}, `needs a "dse" payload`},
		{"mismatched payload", JobRequest{Kind: "dse", DSE: &DSERequest{Arch: "ddr3", Network: "lenet5"}, Batch: &BatchRequest{}}, "exactly the one payload"},
		{"bad backend", JobRequest{Kind: "dse", DSE: &DSERequest{Arch: "ddr9", Network: "lenet5"}}, "ddr9"},
		{"bad sweep kind", JobRequest{Kind: "sweep", Sweep: &SweepRequest{Kind: "nope"}}, "unknown sweep kind"},
		{"empty batch", JobRequest{Kind: "batch", Batch: &BatchRequest{}}, "no jobs"},
	}
	for _, c := range cases {
		_, err := jm.Submit(context.Background(), c.req)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want substring %q", c.name, err, c.want)
		}
	}
	if len(jm.List(JobFilter{})) != 0 {
		t.Error("rejected submits left jobs in the store")
	}
}

// TestJobListFilters: listing is newest-first and honors kind/state/
// limit filters.
func TestJobListFilters(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 8})
	jm := NewJobManager(svc, JobManagerOptions{})
	a, err := jm.Submit(context.Background(), JobRequest{Kind: "characterize", Characterize: &CharacterizeRequest{Archs: []string{"ddr3"}}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := jm.Submit(context.Background(), JobRequest{Kind: "dse", DSE: &DSERequest{Arch: "ddr3", Network: "lenet5"}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, jm, a.ID)
	waitTerminal(t, jm, b.ID)

	all := jm.List(JobFilter{})
	if len(all) != 2 || all[0].ID != b.ID || all[1].ID != a.ID {
		t.Fatalf("list %+v, want [%s %s]", all, b.ID, a.ID)
	}
	if all[0].Result != nil {
		t.Error("listing leaked a result payload")
	}
	dse := jm.List(JobFilter{Kind: "dse"})
	if len(dse) != 1 || dse[0].ID != b.ID {
		t.Errorf("kind filter returned %+v", dse)
	}
	if got := jm.List(JobFilter{State: "succeeded", Limit: 1}); len(got) != 1 {
		t.Errorf("limit filter returned %d jobs", len(got))
	}
	if got := jm.List(JobFilter{State: "running"}); len(got) != 0 {
		t.Errorf("state filter returned %+v", got)
	}
}

// TestJobBatchPartialOnCancel: a canceled batch job keeps the items
// that finished before the cancel and reports state canceled.
func TestJobBatchPartialOnCancel(t *testing.T) {
	svc := New(Options{Workers: 1, CacheEntries: 16})
	jm := NewJobManager(svc, JobManagerOptions{})
	// Warm one item so it is an instant cache hit.
	if _, err := svc.DSE(context.Background(), DSERequest{Arch: "ddr3", Network: "lenet5"}); err != nil {
		t.Fatal(err)
	}
	view, err := jm.Submit(context.Background(), JobRequest{Kind: "batch", Batch: &BatchRequest{Jobs: []DSERequest{
		{Arch: "ddr3", Network: "lenet5"},   // cached: finishes instantly
		{Arch: "salp2", Network: "alexnet"}, // fresh: long enough to cancel under
	}}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first item to commit, then cancel.
	j, _ := jm.lookup(view.ID)
	deadline := time.Now().Add(time.Minute)
	for {
		j.mu.Lock()
		items := j.progress.ItemsDone
		j.mu.Unlock()
		if items >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first batch item never committed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := jm.Cancel(view.ID); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, jm, view.ID)
	if final.State != JobCanceled {
		t.Fatalf("state %s, want canceled", final.State)
	}
	var resp BatchResponse
	if err := json.Unmarshal(final.Result, &resp); err != nil {
		t.Fatalf("canceled batch carries no decodable partial result: %v", err)
	}
	if resp.Results[0].Error != "" || resp.Results[0].Result == nil {
		t.Errorf("finished item lost on cancel: %+v", resp.Results[0])
	}
	if resp.Completed < 1 {
		t.Errorf("completed %d, want >= 1", resp.Completed)
	}
}
