package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/obs"
	"drmap/internal/profile"
	"drmap/internal/tiling"
)

// defaultWorkers resolves a worker-count option: <= 0 means one worker
// per logical CPU.
func defaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// runPool runs fn(i) for every i in [0, n) over a bounded worker pool.
// Cancellation of ctx stops feeding new indices (started ones finish)
// and its error is returned.
func runPool(ctx context.Context, n, workers int, fn func(int)) error {
	workers = defaultWorkers(workers)
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	var ctxErr error
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return ctxErr
}

// ParallelDSE executes Algorithm 1 with the layer x schedule x policy
// grid fanned out over a worker pool, one (layer, schedule) column per
// work unit so each tiling's tile groups are computed once and shared
// across all policies, as in the serial loop nest. Every column is
// evaluated by core.(*Evaluator).EvaluateScheduleColumn - the same
// code the serial RunDSE runs - and core.ReduceCells restores the
// serial pick order, so the returned DSEResult is bit-for-bit
// identical to core.RunDSEObjective's for any worker count. The
// evaluator is shared (its methods only read it); cancellation of ctx
// abandons unstarted columns and returns the context's error.
func ParallelDSE(ctx context.Context, net cnn.Network, ev *core.Evaluator, schedules []tiling.Schedule, policies []mapping.Policy, obj core.Objective, workers int) (*core.DSEResult, error) {
	grids, err := core.DSEGrid(net, ev, schedules, policies)
	if err != nil {
		return nil, err
	}
	return parallelDSE(ctx, nil, grids, ev, schedules, policies, obj, workers, nil)
}

// parallelDSE is ParallelDSE with an optional service-wide gate: when
// non-nil, every column evaluation holds one gate token, so the total
// CPU-bound parallelism across all concurrently running requests is
// bounded by the gate's capacity rather than multiplying per request.
//
// Each layer is reduced eagerly: the worker that completes a layer's
// last column runs core.ReduceCells for it right then, so a progress
// sink on ctx (core.WithProgress) receives the layer's committed pick
// while other layers are still evaluating - the source of the v2 job
// API's streamed per-layer events. The reduction consumes the same
// cell multiset in any execution order, so the final DSEResult stays
// bit-for-bit identical to serial core.RunDSEObjective's.
//
// colEval, when non-nil, replaces the direct per-column evaluation -
// the service passes its plan-cache-backed columnEval so repeated and
// multi-backend evaluations reprice cached count plans. It must return
// the cells core.EvaluateScheduleColumn would.
//
// The grid arrives pre-enumerated: it depends only on the workload and
// the accelerator buffers, so the service shares one enumeration across
// every backend, objective and batch of the same network (gridFor) -
// on the warm path re-enumerating tilings per job cost more than the
// repricing itself. Callers must treat grids as immutable.
func parallelDSE(ctx context.Context, gate chan struct{}, grids []core.LayerGrid, ev *core.Evaluator, schedules []tiling.Schedule, policies []mapping.Policy, obj core.Objective, workers int, colEval columnEvalFn) (*core.DSEResult, error) {
	var err error
	if colEval == nil {
		colEval = func(_ context.Context, grids []core.LayerGrid, li, si int) []core.CellResult {
			return ev.EvaluateScheduleColumn(grids[li], si, schedules[si], policies, obj)
		}
	}
	total := len(grids) * len(schedules)
	prog := core.ProgressFrom(ctx)
	if prog != nil {
		prog.StartColumns(total)
	}

	// One slot per (layer, schedule) column: workers write disjoint
	// slots, and the atomic remaining-counter decrement publishes them
	// to whichever worker performs the layer's reduction.
	colCells := make([][][]core.CellResult, len(grids))
	remaining := make([]atomic.Int32, len(grids))
	for li := range grids {
		colCells[li] = make([][]core.CellResult, len(schedules))
		remaining[li].Store(int32(len(schedules)))
	}
	layers := make([]core.LayerResult, len(grids))

	var skipped atomic.Bool
	err = runPool(ctx, total, workers, func(col int) {
		if !acquireGate(ctx, gate) {
			skipped.Store(true)
			return
		}
		defer releaseGate(gate)
		li, si := col/len(schedules), col%len(schedules)
		colCells[li][si] = colEval(ctx, grids, li, si)
		if prog != nil {
			prog.ColumnsDone(1)
		}
		if remaining[li].Add(-1) == 0 {
			reduceStart := time.Now()
			cells := make([]core.CellResult, 0, len(schedules)*len(policies))
			for _, cc := range colCells[li] {
				cells = append(cells, cc...)
			}
			layers[li] = core.ReduceCells(grids[li], schedules, policies, cells, ev.Timing())
			obs.RecordSpan(ctx, "reduce", reduceStart, time.Now(),
				obs.Int("layer", li), obs.Int("cells", len(cells)))
			// The reduction copied everything it keeps; the layer's column
			// buffers go back to the pool for the next reprice.
			for si := range colCells[li] {
				putCellBuf(colCells[li][si])
				colCells[li][si] = nil
			}
			if prog != nil {
				prog.LayerDone(li, len(grids), layers[li])
			}
		}
	})
	if err == nil && skipped.Load() {
		err = ctx.Err()
	}
	if err != nil {
		return nil, fmt.Errorf("service: parallel DSE canceled: %w", err)
	}
	return &core.DSEResult{Backend: ev.Backend(), Arch: ev.Arch(), Layers: layers}, nil
}

// acquireGate takes one gate token (immediately true for a nil gate);
// false means ctx was done first and no token is held.
func acquireGate(ctx context.Context, gate chan struct{}) bool {
	if gate == nil {
		return true
	}
	select {
	case gate <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// releaseGate returns acquireGate's token.
func releaseGate(gate chan struct{}) {
	if gate != nil {
		<-gate
	}
}

// evaluateColumns fans one span of the (layer, schedule) column space
// over a local worker pool: column i covers layer i/nSchedules,
// schedule i%nSchedules. The returned slice holds one cell list per
// column, indexed relative to span.Start. The gate bounds CPU-bound
// parallelism across concurrent requests (see parallelDSE); colEval
// (required) evaluates each column - the service passes its
// plan-cache-backed columnEval.
func evaluateColumns(ctx context.Context, gate chan struct{}, grids []core.LayerGrid, nSchedules int, span core.ColumnSpan, workers int, colEval columnEvalFn) ([][]core.CellResult, error) {
	columns := make([][]core.CellResult, span.Len())
	var skipped atomic.Bool
	err := runPool(ctx, span.Len(), workers, func(i int) {
		if !acquireGate(ctx, gate) {
			skipped.Store(true)
			return
		}
		defer releaseGate(gate)
		col := span.Start + i
		li, si := col/nSchedules, col%nSchedules
		columns[i] = colEval(ctx, grids, li, si)
	})
	if err == nil && skipped.Load() {
		err = ctx.Err()
	}
	if err != nil {
		return nil, err
	}
	return columns, nil
}

// characterizeEach fans n characterizations over the worker pool.
// profile.Characterize builds fresh memctrl.Controllers internally, so
// each worker owns its controllers and no simulator state is shared
// across goroutines. Results keep the input order; a canceled context
// abandons unstarted items. label names item i in errors.
func characterizeEach(ctx context.Context, n, workers int, one func(i int) (*profile.Profile, error), label func(i int) string) ([]*profile.Profile, error) {
	profiles := make([]*profile.Profile, n)
	errs := make([]error, n)
	err := runPool(ctx, n, workers, func(i int) {
		profiles[i], errs[i] = one(i)
	})
	if err != nil {
		return nil, fmt.Errorf("service: characterization canceled: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("service: characterize %s: %w", label(i), err)
		}
	}
	return profiles, nil
}

// CharacterizeBackends runs the Fig. 1 characterization of several
// registered backends concurrently; each profile carries its backend
// identity.
func CharacterizeBackends(ctx context.Context, backends []dram.Backend, workers int) ([]*profile.Profile, error) {
	return characterizeEach(ctx, len(backends), workers,
		func(i int) (*profile.Profile, error) { return profile.CharacterizeBackend(backends[i]) },
		func(i int) string { return backends[i].ID })
}

// CharacterizeConfigs is CharacterizeBackends for ad-hoc (unregistered)
// configurations, e.g. sweep points mutated off a preset; the profiles
// carry no backend identity.
func CharacterizeConfigs(ctx context.Context, cfgs []dram.Config, workers int) ([]*profile.Profile, error) {
	return characterizeEach(ctx, len(cfgs), workers,
		func(i int) (*profile.Profile, error) { return profile.Characterize(cfgs[i]) },
		func(i int) string { return cfgs[i].Arch.String() })
}
