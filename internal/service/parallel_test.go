package service

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/profile"
	"drmap/internal/tiling"
)

// Characterization is deterministic and moderately expensive; tests
// share one evaluator per architecture.
var (
	evOnce   sync.Once
	evByArch map[dram.Arch]*core.Evaluator
	evErr    error
)

func testEvaluators(t *testing.T) map[dram.Arch]*core.Evaluator {
	t.Helper()
	evOnce.Do(func() {
		evByArch = make(map[dram.Arch]*core.Evaluator)
		for _, arch := range dram.Archs {
			p, err := profile.Characterize(dram.ConfigFor(arch))
			if err != nil {
				evErr = err
				return
			}
			ev, err := core.NewEvaluator(p, accel.TableII(), 1)
			if err != nil {
				evErr = err
				return
			}
			evByArch[arch] = ev
		}
	})
	if evErr != nil {
		t.Fatalf("evaluators: %v", evErr)
	}
	return evByArch
}

// TestParallelDSEMatchesSerialAllArchs is the equivalence contract: on
// AlexNet, for every architecture, the parallel executor's DSEResult is
// bit-for-bit identical to serial RunDSE's (reflect.DeepEqual compares
// the float64 fields exactly).
func TestParallelDSEMatchesSerialAllArchs(t *testing.T) {
	evs := testEvaluators(t)
	net := cnn.AlexNet()
	schedules := tiling.Schedules
	policies := mapping.TableI()
	for _, arch := range dram.Archs {
		ev := evs[arch]
		serial, err := core.RunDSE(net, ev, schedules, policies)
		if err != nil {
			t.Fatalf("%v: serial RunDSE: %v", arch, err)
		}
		par, err := ParallelDSE(context.Background(), net, ev, schedules, policies, core.MinimizeEDP, 8)
		if err != nil {
			t.Fatalf("%v: ParallelDSE: %v", arch, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("%v: parallel DSE diverged from serial\nserial: %+v\nparallel: %+v", arch, serial, par)
		}
	}
}

// TestParallelDSEWorkerCountInvariance: any pool size yields the same
// result - the reduction is order-independent.
func TestParallelDSEWorkerCountInvariance(t *testing.T) {
	evs := testEvaluators(t)
	ev := evs[dram.SALPMASA]
	net := cnn.LeNet5()
	serial, err := core.RunDSE(net, ev, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, workers := range []int{1, 2, 3, 7, 0} {
		par, err := ParallelDSE(context.Background(), net, ev, tiling.Schedules, mapping.TableI(), core.MinimizeEDP, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d diverged from serial", workers)
		}
	}
}

// TestParallelDSEObjectives: non-EDP objectives also match serial.
func TestParallelDSEObjectives(t *testing.T) {
	evs := testEvaluators(t)
	ev := evs[dram.DDR3]
	net := cnn.LeNet5()
	for _, obj := range core.Objectives {
		serial, err := core.RunDSEObjective(net, ev, tiling.Schedules, mapping.TableI(), obj)
		if err != nil {
			t.Fatalf("%v serial: %v", obj, err)
		}
		par, err := ParallelDSE(context.Background(), net, ev, tiling.Schedules, mapping.TableI(), obj, 4)
		if err != nil {
			t.Fatalf("%v parallel: %v", obj, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("%v: parallel diverged from serial", obj)
		}
	}
}

// TestParallelDSECancellation: a canceled context aborts the run.
func TestParallelDSECancellation(t *testing.T) {
	evs := testEvaluators(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ParallelDSE(ctx, cnn.AlexNet(), evs[dram.DDR3], tiling.Schedules, mapping.TableI(), core.MinimizeEDP, 2)
	if err == nil {
		t.Fatal("expected an error from a canceled context")
	}
}

// TestParallelDSEInputValidation: grid errors surface unchanged.
func TestParallelDSEInputValidation(t *testing.T) {
	evs := testEvaluators(t)
	if _, err := ParallelDSE(context.Background(), cnn.AlexNet(), evs[dram.DDR3], nil, mapping.TableI(), core.MinimizeEDP, 2); err == nil {
		t.Error("expected an error with no schedules")
	}
	bad := cnn.Network{Name: "bad", Layers: []cnn.Layer{{Name: "x"}}}
	if _, err := ParallelDSE(context.Background(), bad, evs[dram.DDR3], tiling.Schedules, mapping.TableI(), core.MinimizeEDP, 2); err == nil {
		t.Error("expected an error for an invalid network")
	}
}

// TestCharacterizeConfigsMatchesSerial: the parallel characterization
// produces the same profiles as serial calls, in input order.
func TestCharacterizeConfigsMatchesSerial(t *testing.T) {
	cfgs := []dram.Config{dram.DDR3Config(), dram.SALP1Config(), dram.SALP2Config(), dram.SALPMASAConfig()}
	par, err := CharacterizeConfigs(context.Background(), cfgs, 4)
	if err != nil {
		t.Fatalf("CharacterizeConfigs: %v", err)
	}
	if len(par) != len(cfgs) {
		t.Fatalf("got %d profiles, want %d", len(par), len(cfgs))
	}
	for i, cfg := range cfgs {
		serial, err := profile.Characterize(cfg)
		if err != nil {
			t.Fatalf("serial characterize %v: %v", cfg.Arch, err)
		}
		if !reflect.DeepEqual(serial, par[i]) {
			t.Errorf("%v: parallel characterization diverged from serial", cfg.Arch)
		}
		if par[i].Arch != cfg.Arch {
			t.Errorf("profile %d is for %v, want %v (order not preserved)", i, par[i].Arch, cfg.Arch)
		}
	}
}

// TestParallelDSEMatchesSerialOnGeneralityBackend extends the
// equivalence contract beyond the paper set: on DDR4 (a registered
// non-paper backend), the parallel executor's DSEResult - including
// the backend identity it carries - is bit-for-bit identical to serial
// RunDSE's.
func TestParallelDSEMatchesSerialOnGeneralityBackend(t *testing.T) {
	b, ok := dram.Lookup("ddr4")
	if !ok {
		t.Fatal("ddr4 backend not registered")
	}
	p, err := profile.CharacterizeBackend(b)
	if err != nil {
		t.Fatalf("characterize ddr4: %v", err)
	}
	ev, err := core.NewEvaluator(p, accel.TableII(), 1)
	if err != nil {
		t.Fatalf("evaluator: %v", err)
	}
	net := cnn.AlexNet()
	serial, err := core.RunDSE(net, ev, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatalf("serial RunDSE: %v", err)
	}
	if serial.Backend.ID != "ddr4" {
		t.Errorf("serial result carries backend %q, want ddr4", serial.Backend.ID)
	}
	for _, workers := range []int{1, 8} {
		par, err := ParallelDSE(context.Background(), net, ev, tiling.Schedules, mapping.TableI(), core.MinimizeEDP, workers)
		if err != nil {
			t.Fatalf("ParallelDSE(workers=%d): %v", workers, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d: parallel DSE diverged from serial on ddr4", workers)
		}
	}
}

// TestCharacterizeBackendsKeepsIdentity: the parallel backend
// characterization preserves order and backend identity.
func TestCharacterizeBackendsKeepsIdentity(t *testing.T) {
	backends := dram.PaperBackends()
	profiles, err := CharacterizeBackends(context.Background(), backends, 4)
	if err != nil {
		t.Fatalf("CharacterizeBackends: %v", err)
	}
	for i, p := range profiles {
		if p.Backend.ID != backends[i].ID {
			t.Errorf("profile %d is %q, want %q", i, p.Backend.ID, backends[i].ID)
		}
		serial, err := profile.CharacterizeBackend(backends[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, p) {
			t.Errorf("%s: parallel characterization diverged from serial", backends[i].ID)
		}
	}
}
