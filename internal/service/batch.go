package service

import (
	"context"
	"fmt"
)

// MaxBatchJobs caps one batch request; larger sweeps should page.
const MaxBatchJobs = 256

// BatchRequest fans many DSE jobs - (backend, network, objective,
// batch) combinations - through one request. Jobs share the service's
// characterization and result caches (and the cluster, when one is
// attached), so a batch over many networks on one backend characterizes
// that backend once.
type BatchRequest struct {
	Jobs []DSERequest `json:"jobs"`
}

// BatchItem is one job's outcome, in request order. Exactly one of
// Result/Error is meaningful: a failed job carries its error message
// and a nil result, and does not fail its siblings.
type BatchItem struct {
	Index  int          `json:"index"`
	Result *DSEResponse `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// BatchResponse carries the per-job outcomes plus a cache snapshot
// taken after the batch, so clients can observe sharing (hits climbing
// as identical/overlapping jobs coalesce).
type BatchResponse struct {
	Results []BatchItem `json:"results"`
	// Completed counts jobs that produced a result.
	Completed int `json:"completed"`
	// Failed counts jobs that returned an error.
	Failed int `json:"failed"`
	// Cache is the service's cache counters after the batch.
	Cache CacheStats `json:"cache"`
}

// Validate rejects batches that cannot run as a whole; per-item inputs
// are validated by each item's own DSE path.
func (r BatchRequest) Validate() error {
	if len(r.Jobs) == 0 {
		return fmt.Errorf("batch: no jobs (give jobs: [{arch, network, ...}, ...])")
	}
	if len(r.Jobs) > MaxBatchJobs {
		return fmt.Errorf("batch: %d jobs exceeds the limit of %d", len(r.Jobs), MaxBatchJobs)
	}
	return nil
}

// batchProgress receives per-item completions as a batch makes them -
// the hook the v2 job API streams item events through. Implementations
// must be safe for concurrent use.
type batchProgress interface {
	// StartItems announces the batch size.
	StartItems(total int)
	// ItemDone delivers one finished item (result or error) the moment
	// it commits.
	ItemDone(item BatchItem)
}

type batchProgressKey struct{}

// withBatchProgress attaches a batch item sink to ctx; Batch reports
// through it when present.
func withBatchProgress(ctx context.Context, p batchProgress) context.Context {
	return context.WithValue(ctx, batchProgressKey{}, p)
}

// batchProgressFrom returns the context's batch sink, or nil.
func batchProgressFrom(ctx context.Context) batchProgress {
	p, _ := ctx.Value(batchProgressKey{}).(batchProgress)
	return p
}

// Batch evaluates every job concurrently over the worker pool. Each job
// runs through the same path as POST /api/v1/dse - validation, the
// content-addressed cache, single-flight dedup, the cluster runner when
// configured - so identical jobs inside one batch evaluate once, and a
// batch repeated later is all cache hits. Per-job failures are reported
// per item - including a deadline expiring mid-batch: the jobs that
// finished keep their results, the rest carry the context error, and
// since each started job's evaluation completes detached and is cached,
// a retry of the same batch picks up where this one stopped. Only an
// empty or oversized batch fails the request as a whole.
func (s *Service) Batch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	items := make([]BatchItem, len(req.Jobs))
	for i := range items {
		items[i].Index = i
	}
	sink := batchProgressFrom(ctx)
	if sink != nil {
		sink.StartItems(len(req.Jobs))
	}
	err := runPool(ctx, len(req.Jobs), s.workers, func(i int) {
		resp, err := s.DSE(ctx, req.Jobs[i])
		if err != nil {
			items[i].Error = err.Error()
		} else {
			items[i].Result = resp
		}
		if sink != nil {
			sink.ItemDone(items[i])
		}
	})
	if err != nil {
		// Deadline hit mid-batch: deliver what finished instead of
		// discarding it; unstarted jobs report the context error.
		for i := range items {
			if items[i].Result == nil && items[i].Error == "" {
				items[i].Error = err.Error()
			}
		}
	}
	out := &BatchResponse{Results: items, Cache: s.CacheStats()}
	for i := range items {
		if items[i].Error != "" {
			out.Failed++
		} else {
			out.Completed++
		}
	}
	return out, nil
}
