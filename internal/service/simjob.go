package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/memctrl"
	"drmap/internal/obs"
	"drmap/internal/report"
)

// SimulateJob is a fully resolved cycle-accurate simulation: the DRAM
// backend, the mapping policy, one layer spec per simulated layer
// (tiling and schedule already picked), the element width and the
// controller knobs. Like DSEJob, every field is a plain value, so the
// job JSON-round-trips exactly and a cluster worker reproduces each
// layer bit-for-bit. Per-layer results are independent (each layer's
// tile streams simulate on their own controllers), which is what makes
// the job shardable across workers by layer index.
type SimulateJob struct {
	Backend dram.Backend     `json:"backend"`
	Policy  mapping.Policy   `json:"policy"`
	Specs   []core.LayerSpec `json:"specs"`
	// BytesPerElement sizes tensor elements.
	BytesPerElement int `json:"bytes_per_element"`
	// PagePolicy and Scheduler tune the simulated controller.
	PagePolicy memctrl.PagePolicy `json:"page_policy"`
	Scheduler  memctrl.Scheduler  `json:"scheduler"`
	// Parallel selects the parallel event engine. It never changes the
	// results - the engines are bit-for-bit identical - so it is
	// excluded from result cache keys; it only changes how fast the
	// results arrive.
	Parallel bool `json:"parallel,omitempty"`
}

// ControllerOptions assembles the job's memory-controller options.
func (j SimulateJob) ControllerOptions() memctrl.Options {
	return memctrl.Options{PagePolicy: j.PagePolicy, Scheduler: j.Scheduler}
}

// Validate rejects jobs whose fixed fields cannot simulate.
func (j SimulateJob) Validate() error {
	if err := j.Backend.Config.Validate(); err != nil {
		return fmt.Errorf("service: sim job backend: %w", err)
	}
	if len(j.Specs) == 0 {
		return fmt.Errorf("service: sim job needs at least one layer spec")
	}
	if j.BytesPerElement <= 0 {
		return fmt.Errorf("service: sim job bytes per element must be positive, got %d", j.BytesPerElement)
	}
	for i, sp := range j.Specs {
		if err := sp.Layer.Validate(); err != nil {
			return fmt.Errorf("service: sim job layer %d: %w", i, err)
		}
		if sp.Batch < 1 {
			return fmt.Errorf("service: sim job layer %d: batch must be >= 1, got %d", i, sp.Batch)
		}
	}
	return nil
}

// SimulateRunner executes resolved simulate jobs - the simulate
// counterpart of DSERunner. A Service whose configured DSERunner also
// implements SimulateRunner (the cluster coordinator does) distributes
// simulate jobs through it; ErrNoWorkers falls back to the local
// engine, exactly like DSE.
type SimulateRunner interface {
	RunSimulate(ctx context.Context, job SimulateJob) ([]core.SimLayerResult, error)
}

// runSimJob executes a resolved simulate job: through the configured
// runner when it distributes simulations (falling back locally on
// ErrNoWorkers), else on the local event engine. The local path
// announces the layer count to the context's progress sink and streams
// each layer to the context's sim-layer sink the moment it finalizes.
func (s *Service) runSimJob(ctx context.Context, job SimulateJob) ([]core.SimLayerResult, error) {
	if s.runner != nil {
		if sr, ok := s.runner.(SimulateRunner); ok {
			res, err := sr.RunSimulate(ctx, job)
			if err == nil || !errors.Is(err, ErrNoWorkers) {
				return res, err
			}
		}
	}
	prog := core.ProgressFrom(ctx)
	sink := core.SimLayersFrom(ctx)
	if prog != nil {
		prog.StartColumns(len(job.Specs))
	}
	start := time.Now()
	opt := core.SimOptions{
		Controller:      job.ControllerOptions(),
		Parallel:        job.Parallel,
		Workers:         s.workers,
		BytesPerElement: job.BytesPerElement,
		// The hook runs on engine goroutines under the parallel driver;
		// the progress and layer sinks are documented concurrency-safe.
		OnLayer: func(lr core.SimLayerResult) {
			obs.RecordSpan(ctx, "sim.layer", start, time.Now(),
				obs.Int("index", lr.Index),
				obs.Str("layer", lr.Name),
				obs.Int("groups", lr.Groups),
				obs.Int("commands", int(lr.TotalCommands)))
			if prog != nil {
				prog.ColumnsDone(1)
			}
			if sink != nil {
				sink(lr, len(job.Specs))
			}
		},
	}
	res, err := core.SimulateNetwork(ctx, job.Backend.Config, job.Policy, job.Specs, opt)
	if err != nil && prog != nil {
		// Withdraw the abandoned attempt so a retry's announcement
		// starts from a clean total.
		prog.StartColumns(-len(job.Specs))
	}
	return res, err
}

// EvaluateSimShard simulates one shard - a span of the job's layer
// index space - on the local event engine and returns its layer
// results. Results are self-locating (each carries its global layer
// index), so a coordinator can merge shards in any order; simulating a
// contiguous sub-span is exact because layers share no state.
func (s *Service) EvaluateSimShard(ctx context.Context, job SimulateJob, span core.ColumnSpan) ([]core.SimLayerResult, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	if span.Start < 0 || span.End < span.Start || span.End > len(job.Specs) {
		return nil, fmt.Errorf("service: sim shard span [%d, %d) outside layer space [0, %d)", span.Start, span.End, len(job.Specs))
	}
	res, err := core.SimulateNetwork(ctx, job.Backend.Config, job.Policy, job.Specs[span.Start:span.End], core.SimOptions{
		Controller:      job.ControllerOptions(),
		Parallel:        job.Parallel,
		Workers:         s.workers,
		BytesPerElement: job.BytesPerElement,
	})
	if err != nil {
		return nil, fmt.Errorf("service: sim shard [%d, %d): %w", span.Start, span.End, err)
	}
	for i := range res {
		res[i].Index += span.Start
	}
	return res, nil
}

// simLayerToJSON converts one layer result for responses and job
// events, pricing cycles in the backend's clock.
func simLayerToJSON(lr core.SimLayerResult, t dram.Timing) SimulateLayerJSON {
	return SimulateLayerJSON{
		Index:    lr.Index,
		Name:     lr.Name,
		Cost:     report.LayerEDPToJSON(lr.Cost, t),
		Groups:   lr.Groups,
		Requests: lr.Requests,
		Commands: lr.TotalCommands,
	}
}

// parseSimScheduler resolves a request's scheduler name.
func parseSimScheduler(name string) (memctrl.Scheduler, error) {
	switch name {
	case "", "fcfs":
		return memctrl.FCFS, nil
	case "frfcfs", "fr-fcfs":
		return memctrl.FRFCFS, nil
	default:
		return 0, fmt.Errorf("unknown scheduler %q (want fcfs or frfcfs)", name)
	}
}

// parsePagePolicy resolves a request's page-policy name.
func parsePagePolicy(name string) (memctrl.PagePolicy, error) {
	switch name {
	case "", "open", "open-row":
		return memctrl.OpenRow, nil
	case "closed", "closed-row":
		return memctrl.ClosedRow, nil
	default:
		return 0, fmt.Errorf("unknown page policy %q (want open or closed)", name)
	}
}

// parseSimEngine resolves a request's engine name to the Parallel flag.
func parseSimEngine(name string) (parallel bool, err error) {
	switch name {
	case "", "serial":
		return false, nil
	case "parallel":
		return true, nil
	default:
		return false, fmt.Errorf("unknown engine %q (want serial or parallel)", name)
	}
}
