package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFingerprintDeterministicAndDistinct(t *testing.T) {
	type key struct {
		A string
		B int
	}
	f1, err := Fingerprint(key{A: "x", B: 1})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fingerprint(key{A: "x", B: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("equal values fingerprint differently")
	}
	f3, err := Fingerprint(key{A: "x", B: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f1 == f3 {
		t.Error("distinct values collide")
	}
	if len(f1) != 64 {
		t.Errorf("fingerprint %q is not a SHA-256 hex digest", f1)
	}
}

func TestCacheHitAndLRUEviction(t *testing.T) {
	c := NewCache(2)
	calls := 0
	get := func(key string) any {
		v, _, err := c.Do(key, func() (any, error) {
			calls++
			return key + "-value", nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	get("a")
	get("b")
	if got := get("a"); got != "a-value" {
		t.Fatalf("got %v", got)
	}
	if calls != 2 {
		t.Fatalf("expected 2 computations, got %d", calls)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	get("c")
	get("b")
	if calls != 4 {
		t.Fatalf("expected recomputation of evicted b, got %d calls", calls)
	}
	st := c.Stats()
	if st.Evictions < 1 {
		t.Errorf("expected evictions, got %+v", st)
	}
	if st.Entries != 2 {
		t.Errorf("expected 2 resident entries, got %d", st.Entries)
	}
}

func TestCacheErrorsAreNotCached(t *testing.T) {
	c := NewCache(4)
	calls := 0
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		_, _, err := c.Do("k", func() (any, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("got %v", err)
		}
	}
	if calls != 2 {
		t.Errorf("errors were cached: %d calls", calls)
	}
}

// TestCacheSingleFlight: N concurrent identical requests run the
// computation exactly once and all observe its result.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(4)
	const n = 32
	var computations atomic.Int64
	started := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-started
			v, _, err := c.Do("shared", func() (any, error) {
				computations.Add(1)
				time.Sleep(20 * time.Millisecond) // hold the flight open
				return "the-result", nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i] = v
		}(i)
	}
	close(started)
	wg.Wait()
	if got := computations.Load(); got != 1 {
		t.Fatalf("computation ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != "the-result" {
			t.Errorf("goroutine %d got %v", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != n-1 {
		t.Errorf("stats %+v, want 1 miss and %d coalesced", st, n-1)
	}
}

// TestCacheZeroCapacityStillDeduplicates: retention off, single-flight on.
func TestCacheZeroCapacityStillDeduplicates(t *testing.T) {
	c := NewCache(0)
	calls := 0
	for i := 0; i < 2; i++ {
		if _, _, err := c.Do("k", func() (any, error) { calls++; return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 2 {
		t.Errorf("capacity 0 retained results: %d calls", calls)
	}
	var computations atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = c.Do("concurrent", func() (any, error) {
				computations.Add(1)
				time.Sleep(10 * time.Millisecond)
				return 1, nil
			})
		}()
	}
	wg.Wait()
	if got := computations.Load(); got != 1 {
		t.Errorf("concurrent computation ran %d times, want 1", got)
	}
}

// TestCacheDistinctKeysDoNotBlock: different keys compute independently.
func TestCacheDistinctKeysDoNotBlock(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			v, _, err := c.Do(key, func() (any, error) { return i, nil })
			if err != nil || v != i {
				t.Errorf("key %s: got %v, %v", key, v, err)
			}
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Misses != 8 {
		t.Errorf("expected 8 misses, got %+v", st)
	}
}
