package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFingerprintDeterministicAndDistinct(t *testing.T) {
	type key struct {
		A string
		B int
	}
	f1, err := Fingerprint(key{A: "x", B: 1})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fingerprint(key{A: "x", B: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("equal values fingerprint differently")
	}
	f3, err := Fingerprint(key{A: "x", B: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f1 == f3 {
		t.Error("distinct values collide")
	}
	if len(f1) != 64 {
		t.Errorf("fingerprint %q is not a SHA-256 hex digest", f1)
	}
}

func TestCacheHitAndLRUEviction(t *testing.T) {
	c := NewCache(2)
	calls := 0
	get := func(key string) any {
		v, _, err := c.Do(key, func() (any, error) {
			calls++
			return key + "-value", nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	get("a")
	get("b")
	if got := get("a"); got != "a-value" {
		t.Fatalf("got %v", got)
	}
	if calls != 2 {
		t.Fatalf("expected 2 computations, got %d", calls)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	get("c")
	get("b")
	if calls != 4 {
		t.Fatalf("expected recomputation of evicted b, got %d calls", calls)
	}
	st := c.Stats()
	if st.Evictions < 1 {
		t.Errorf("expected evictions, got %+v", st)
	}
	if st.Entries != 2 {
		t.Errorf("expected 2 resident entries, got %d", st.Entries)
	}
}

func TestCacheErrorsAreNotCached(t *testing.T) {
	c := NewCache(4)
	calls := 0
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		_, _, err := c.Do("k", func() (any, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("got %v", err)
		}
	}
	if calls != 2 {
		t.Errorf("errors were cached: %d calls", calls)
	}
}

// TestCacheSingleFlight: N concurrent identical requests run the
// computation exactly once and all observe its result.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(4)
	const n = 32
	var computations atomic.Int64
	started := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-started
			v, _, err := c.Do("shared", func() (any, error) {
				computations.Add(1)
				time.Sleep(20 * time.Millisecond) // hold the flight open
				return "the-result", nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i] = v
		}(i)
	}
	close(started)
	wg.Wait()
	if got := computations.Load(); got != 1 {
		t.Fatalf("computation ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != "the-result" {
			t.Errorf("goroutine %d got %v", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != n-1 {
		t.Errorf("stats %+v, want 1 miss and %d coalesced", st, n-1)
	}
}

// TestCacheZeroCapacityStillDeduplicates: retention off, single-flight on.
func TestCacheZeroCapacityStillDeduplicates(t *testing.T) {
	c := NewCache(0)
	calls := 0
	for i := 0; i < 2; i++ {
		if _, _, err := c.Do("k", func() (any, error) { calls++; return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 2 {
		t.Errorf("capacity 0 retained results: %d calls", calls)
	}
	var computations atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = c.Do("concurrent", func() (any, error) {
				computations.Add(1)
				time.Sleep(10 * time.Millisecond)
				return 1, nil
			})
		}()
	}
	wg.Wait()
	if got := computations.Load(); got != 1 {
		t.Errorf("concurrent computation ran %d times, want 1", got)
	}
}

// TestCacheDistinctKeysDoNotBlock: different keys compute independently.
func TestCacheDistinctKeysDoNotBlock(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			v, _, err := c.Do(key, func() (any, error) { return i, nil })
			if err != nil || v != i {
				t.Errorf("key %s: got %v, %v", key, v, err)
			}
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Misses != 8 {
		t.Errorf("expected 8 misses, got %+v", st)
	}
}

// TestCacheByteBudget: a sized cache evicts LRU entries once the summed
// entry sizes exceed the byte budget - whatever the entry count - while
// the newest entry always stays resident, and the byte gauge tracks
// inserts and evictions exactly.
func TestCacheByteBudget(t *testing.T) {
	sizeOf := func(v any) int64 { return v.(int64) }
	c := NewCacheSized(100, 100, sizeOf)
	put := func(key string, size int64) {
		if _, _, err := c.Do(key, func() (any, error) { return size, nil }); err != nil {
			t.Fatal(err)
		}
	}
	put("a", 40)
	put("b", 40)
	if st := c.Stats(); st.Bytes != 80 || st.Evictions != 0 {
		t.Fatalf("under budget: %+v", st)
	}
	// 40+40+40 > 100: "a" (LRU) goes.
	put("c", 40)
	st := c.Stats()
	if st.Bytes != 80 || st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("over budget: %+v", st)
	}
	put("a", 40) // recompute proves "a" was evicted, "b" goes now
	if st := c.Stats(); st.Misses != 4 {
		t.Errorf("a survived the byte eviction: %+v", st)
	}
	// An entry bigger than the whole budget still caches (the newest
	// entry is never evicted by the byte cap) but evicts everything else.
	put("huge", 1000)
	st = c.Stats()
	if st.Entries != 1 || st.Bytes != 1000 {
		t.Errorf("oversized entry handling: %+v", st)
	}
	if _, _, err := c.Do("huge", func() (any, error) {
		t.Error("huge was not retained")
		return int64(0), nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheUnsizedHasNoByteCap: the plain constructor never
// byte-evicts and reports zero bytes.
func TestCacheUnsizedHasNoByteCap(t *testing.T) {
	c := NewCache(4)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(key, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Bytes != 0 || st.Evictions != 0 || st.Entries != 3 {
		t.Errorf("unsized cache: %+v", st)
	}
}
