package service

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/tiling"
)

// planDisabled builds a service with the count-plan cache off - the
// pre-split evaluation path - as the recorded baseline the cached path
// must match bit for bit.
func planDisabled() *Service {
	return New(Options{Workers: 2, CacheEntries: 64, PlanCacheEntries: -1})
}

// TestBatchMultiBackendSharesCountPlans: a batch fanning one network
// over every registered backend counts each grid column once per
// distinct count signature and reprices it for the rest, and every
// item's result is bit-for-bit the result of the plan-free path.
func TestBatchMultiBackendSharesCountPlans(t *testing.T) {
	backends := dram.Backends()
	svc := New(Options{Workers: 2, CacheEntries: 64})
	jobs := make([]DSERequest, len(backends))
	for i, b := range backends {
		jobs[i] = DSERequest{Arch: b.ID, Network: "lenet5"}
	}
	resp, err := svc.Batch(context.Background(), BatchRequest{Jobs: jobs})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if resp.Failed != 0 {
		t.Fatalf("%d batch items failed: %+v", resp.Failed, resp.Results)
	}

	// Count-signature arithmetic: the paper four share one die, the
	// generality presets have four distinct geometries.
	keys := map[core.CountKey]bool{}
	for _, b := range backends {
		ev, err := svc.evaluatorFor(b, 1)
		if err != nil {
			t.Fatalf("evaluator %s: %v", b.ID, err)
		}
		keys[ev.CountKey()] = true
	}
	columns := len(cnn.LeNet5().Layers) * len(tiling.Schedules)
	ps := svc.PlanCacheStats()
	if want := int64(len(keys) * columns); ps.Misses != want {
		t.Errorf("plan cache misses = %d, want %d (%d signatures x %d columns)", ps.Misses, want, len(keys), columns)
	}
	if want := int64((len(backends) - len(keys)) * columns); ps.Hits+ps.Coalesced != want {
		t.Errorf("plan cache hits+coalesced = %d, want %d", ps.Hits+ps.Coalesced, want)
	}

	// Bit-for-bit identity against the plan-free path, item by item.
	base := planDisabled()
	if got := base.PlanCacheStats(); got != (CacheStats{}) {
		t.Errorf("disabled plan cache reports stats %+v", got)
	}
	for i, item := range resp.Results {
		want, err := base.DSE(context.Background(), jobs[i])
		if err != nil {
			t.Fatalf("baseline DSE %s: %v", jobs[i].Arch, err)
		}
		if item.Result == nil {
			t.Fatalf("item %d has no result", i)
		}
		if !reflect.DeepEqual(item.Result.Result, want.Result) {
			t.Errorf("%s: plan-cached result diverged from plan-free path", jobs[i].Arch)
		}
	}
}

// TestPlanRepriceAcrossObjectives: a DSE repeated under a different
// objective misses the result cache but reprices the cached count
// plans, and still matches the plan-free path bit for bit.
func TestPlanRepriceAcrossObjectives(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 64})
	req := DSERequest{Arch: "masa", Network: "lenet5"}
	if _, err := svc.DSE(context.Background(), req); err != nil {
		t.Fatalf("DSE: %v", err)
	}
	before := svc.PlanCacheStats()
	if before.Misses == 0 {
		t.Fatal("first DSE did not populate the plan cache")
	}

	req.Objective = "energy"
	got, err := svc.DSE(context.Background(), req)
	if err != nil {
		t.Fatalf("DSE (energy): %v", err)
	}
	if got.Cached {
		t.Error("objective change should miss the result cache")
	}
	after := svc.PlanCacheStats()
	if after.Misses != before.Misses {
		t.Errorf("objective change recounted plans: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Hits <= before.Hits {
		t.Errorf("objective change did not reprice cached plans: hits %d -> %d", before.Hits, after.Hits)
	}

	want, err := planDisabled().DSE(context.Background(), req)
	if err != nil {
		t.Fatalf("baseline DSE: %v", err)
	}
	if !reflect.DeepEqual(got.Result, want.Result) {
		t.Error("repriced result diverged from plan-free path")
	}
}

// TestEvaluateShardUsesPlanCache: shard evaluation routes through the
// plan cache - a duplicated shard reprices instead of recounting - and
// returns cells identical to the plan-free path's.
func TestEvaluateShardUsesPlanCache(t *testing.T) {
	net := cnn.LeNet5()
	b, ok := dram.Lookup("salp1")
	if !ok {
		t.Fatal("salp1 not registered")
	}
	job := DSEJob{
		Backend: b, Accel: accel.TableII(), Network: net,
		Schedules: tiling.Schedules, Policies: mapping.TableI(),
		Objective: core.MinimizeEDP, Batch: 1,
	}
	span := core.ColumnSpan{Start: 0, End: 3}

	svc := New(Options{Workers: 2, CacheEntries: 64})
	first, err := svc.EvaluateShard(context.Background(), job, span)
	if err != nil {
		t.Fatalf("EvaluateShard: %v", err)
	}
	missesAfterFirst := svc.PlanCacheStats().Misses
	second, err := svc.EvaluateShard(context.Background(), job, span)
	if err != nil {
		t.Fatalf("EvaluateShard (repeat): %v", err)
	}
	ps := svc.PlanCacheStats()
	if ps.Misses != missesAfterFirst {
		t.Errorf("duplicate shard recounted: misses %d -> %d", missesAfterFirst, ps.Misses)
	}
	if ps.Hits == 0 {
		t.Error("duplicate shard did not hit the plan cache")
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("duplicate shard cells diverged")
	}

	want, err := planDisabled().EvaluateShard(context.Background(), job, span)
	if err != nil {
		t.Fatalf("baseline EvaluateShard: %v", err)
	}
	if !reflect.DeepEqual(first, want) {
		t.Error("plan-cached shard cells diverged from plan-free path")
	}
}

// TestPlanKeySeparatesCustomPolicies: ID 0 marks any policy outside
// Table I, so two jobs differing only in a custom ID-0 policy's loop
// order must not alias to one count plan - each must match its own
// plan-free evaluation.
func TestPlanKeySeparatesCustomPolicies(t *testing.T) {
	b, ok := dram.Lookup("ddr3")
	if !ok {
		t.Fatal("ddr3 not registered")
	}
	jobWith := func(pol mapping.Policy) DSEJob {
		return DSEJob{
			Backend: b, Accel: accel.TableII(), Network: cnn.LeNet5(),
			Schedules: tiling.Schedules, Policies: []mapping.Policy{pol},
			Objective: core.MinimizeEDP, Batch: 1,
		}
	}
	custom := mapping.Policy{ID: 0, Name: "row-major", Order: [4]mapping.Level{
		mapping.LevelRow, mapping.LevelColumn, mapping.LevelBank, mapping.LevelSubarray}}
	span := core.ColumnSpan{Start: 0, End: 2}

	svc := New(Options{Workers: 2, CacheEntries: 64})
	if _, err := svc.EvaluateShard(context.Background(), jobWith(mapping.Default()), span); err != nil {
		t.Fatalf("EvaluateShard (default policy): %v", err)
	}
	got, err := svc.EvaluateShard(context.Background(), jobWith(custom), span)
	if err != nil {
		t.Fatalf("EvaluateShard (custom policy): %v", err)
	}
	want, err := planDisabled().EvaluateShard(context.Background(), jobWith(custom), span)
	if err != nil {
		t.Fatalf("baseline EvaluateShard: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("custom ID-0 policy repriced the Default policy's cached plan")
	}
}

// TestMetricsIncludePlanCacheGauges: the count-plan cache counters are
// exposed on GET /metrics alongside the result-cache counters.
func TestMetricsIncludePlanCacheGauges(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 8})
	if _, err := svc.DSE(context.Background(), DSERequest{Arch: "ddr3", Network: "lenet5"}); err != nil {
		t.Fatalf("DSE: %v", err)
	}
	text := svc.MetricsText()
	for _, want := range []string{
		"drmap_plan_cache_hits_total",
		"drmap_plan_cache_misses_total",
		"drmap_plan_cache_coalesced_total",
		"drmap_plan_cache_evictions_total",
		"drmap_plan_cache_entries",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	ps := svc.PlanCacheStats()
	if ps.Misses == 0 || ps.Entries == 0 {
		t.Errorf("plan cache unused after a DSE: %+v", ps)
	}
}
