package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"drmap/internal/obs"
)

// ServerOptions tune the HTTP daemon.
type ServerOptions struct {
	// Addr is the listen address, e.g. ":8080".
	Addr string
	// RequestTimeout bounds each request's evaluation; 0 means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// ShutdownGrace bounds graceful shutdown; 0 means
	// DefaultShutdownGrace.
	ShutdownGrace time.Duration
	// Jobs, when set, is the job manager behind /api/v2/jobs and the
	// v1 synchronous wrappers; nil builds one with default options.
	Jobs *JobManager
	// Mount, when set, registers extra endpoints on the daemon's mux -
	// the cluster roles hang their /cluster/v1/* routes here.
	Mount func(mux *http.ServeMux)
	// Logger, when set, receives the structured access log (one line
	// per request, trace ID attached); nil discards it.
	Logger *slog.Logger
	// Pprof mounts the /debug/pprof profiling handlers (the -pprof
	// flag). Off by default: the endpoints expose heap contents.
	Pprof bool
	// Dashboard tunes the /debug/dashboard ops page (role name, worker
	// listing source); the zero value mounts it with defaults.
	Dashboard DashboardOptions
}

// Serving defaults.
const (
	DefaultRequestTimeout = 60 * time.Second
	DefaultShutdownGrace  = 10 * time.Second
)

// maxBodyBytes caps request bodies; custom networks are a few KB at
// most, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// errorJSON is the error response body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to do on error
}

// writeError maps service errors onto HTTP statuses: timeouts 504,
// cancellations 503, computation failures 500, oversized bodies 413,
// unknown jobs 404, cancels of finished jobs 409, a full job store
// 503, bad inputs 400.
func writeError(w http.ResponseWriter, err error) {
	var internal *internalError
	var tooBig *http.MaxBytesError
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrJobNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrJobFinished):
		status = http.StatusConflict
	case errors.Is(err, ErrJobStoreFull):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
	case errors.As(err, &tooBig):
		status = http.StatusRequestEntityTooLarge
	case errors.As(err, &internal):
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// handle adapts a typed service call into an HTTP handler with the
// request timeout applied.
func handle[Req, Resp any](timeout time.Duration, call func(context.Context, Req) (Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Req
		if err := decodeBody(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		resp, err := call(ctx, req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// NewHandler wires the Service's endpoints onto a mux:
//
//	GET  /healthz
//	GET  /metrics
//	GET  /api/v1/version
//	GET  /api/v1/policies
//	GET  /api/v1/backends
//	POST /api/v1/characterize
//	POST /api/v1/dse
//	POST /api/v1/batch
//	POST /api/v1/simulate
//	POST /api/v1/sweep
//	GET  /api/v1/traces
//	GET  /api/v1/traces/{id}
//
// plus the /api/v2/jobs surface (see mountV2), backed by a job manager
// with default options; NewHandlerWithJobs accepts a tuned one. The v1
// dse/batch/characterize/sweep handlers are synchronous submit-and-wait
// wrappers over that same job manager, with responses identical to the
// pre-job direct handlers.
//
// The returned mux is open for further registration (cluster roles add
// their /cluster/v1/* endpoints).
func NewHandler(s *Service, requestTimeout time.Duration) *http.ServeMux {
	return NewHandlerWithJobs(s, nil, requestTimeout)
}

// NewHandlerWithJobs is NewHandler with an explicit job manager (nil
// builds one with default options). The manager must wrap the same
// Service.
func NewHandlerWithJobs(s *Service, jm *JobManager, requestTimeout time.Duration) *http.ServeMux {
	if requestTimeout <= 0 {
		requestTimeout = DefaultRequestTimeout
	}
	if jm == nil {
		jm = NewJobManager(s, JobManagerOptions{})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Health())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(s.MetricsText()))
	})
	mux.HandleFunc("GET /api/v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Version())
	})
	mux.HandleFunc("GET /api/v1/policies", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Policies())
	})
	mux.HandleFunc("GET /api/v1/backends", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Backends())
	})
	mux.HandleFunc("POST /api/v1/characterize", handle(requestTimeout, jm.SyncCharacterize))
	// GET /api/v1/characterize?arch=ddr3 is a bodyless convenience form.
	mux.HandleFunc("GET /api/v1/characterize", func(w http.ResponseWriter, r *http.Request) {
		var req CharacterizeRequest
		if q := r.URL.Query().Get("arch"); q != "" && q != "all" {
			req.Archs = strings.Split(q, ",")
		}
		ctx, cancel := context.WithTimeout(r.Context(), requestTimeout)
		defer cancel()
		resp, err := jm.SyncCharacterize(ctx, req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /api/v1/dse", handle(requestTimeout, jm.SyncDSE))
	mux.HandleFunc("POST /api/v1/batch", handle(requestTimeout, jm.SyncBatch))
	mux.HandleFunc("POST /api/v1/simulate", handle(requestTimeout, jm.SyncSimulate))
	mux.HandleFunc("POST /api/v1/sweep", handle(requestTimeout, jm.SyncSweep))
	mountV2(mux, jm)
	mountTraces(mux, s)
	return mux
}

// NewServer builds the drmap-serve HTTP server with sane transport
// timeouts. WriteTimeout leaves headroom over the request timeout so
// handler deadlines, not connection teardown, bound evaluations; the
// v2 event-stream handler lifts its own write deadline, since a job's
// stream legitimately outlives any request timeout. Every route is
// wrapped in the Observe middleware: trace IDs in and out, the
// request-duration histogram, and the structured access log.
func NewServer(s *Service, opt ServerOptions) *http.Server {
	reqTimeout := opt.RequestTimeout
	if reqTimeout <= 0 {
		reqTimeout = DefaultRequestTimeout
	}
	jm := opt.Jobs
	if jm == nil {
		jm = NewJobManager(s, JobManagerOptions{})
	}
	mux := NewHandlerWithJobs(s, jm, reqTimeout)
	if opt.Mount != nil {
		opt.Mount(mux)
	}
	MountDashboard(mux, s, jm, opt.Dashboard)
	if opt.Pprof {
		obs.MountPprof(mux)
	}
	return &http.Server{
		Addr:              opt.Addr,
		Handler:           Observe(mux, s.Registry(), opt.Logger, s.Spans()),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      reqTimeout + 15*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// Run serves until ctx is canceled, then shuts down gracefully within
// the grace period, letting in-flight evaluations finish.
func Run(ctx context.Context, srv *http.Server, grace time.Duration) error {
	if grace <= 0 {
		grace = DefaultShutdownGrace
	}
	errCh := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("service: shutdown: %w", err)
	}
	return <-errCh
}
