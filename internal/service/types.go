package service

import (
	"fmt"

	"drmap/internal/cli"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/obs"
	"drmap/internal/report"
	"drmap/internal/tiling"
)

// LayerJSON is one CNN layer's geometry in request bodies, for clients
// submitting custom networks instead of naming a built-in one.
type LayerJSON struct {
	Name   string `json:"name"`
	Kind   string `json:"kind,omitempty"` // "conv" (default) or "fc"
	H      int    `json:"h"`
	W      int    `json:"w"`
	J      int    `json:"j"`
	I      int    `json:"i"`
	P      int    `json:"p"`
	Q      int    `json:"q"`
	Stride int    `json:"stride"`
	Pad    int    `json:"pad"`
}

func (l LayerJSON) toLayer() (cnn.Layer, error) {
	kind := cnn.Conv
	switch l.Kind {
	case "", "conv":
	case "fc":
		kind = cnn.FC
	default:
		return cnn.Layer{}, fmt.Errorf("layer %s: unknown kind %q (want conv or fc)", l.Name, l.Kind)
	}
	out := cnn.Layer{
		Name: l.Name, Kind: kind,
		H: l.H, W: l.W, J: l.J, I: l.I, P: l.P, Q: l.Q,
		Stride: l.Stride, Pad: l.Pad,
	}
	return out, out.Validate()
}

// DSERequest asks for an Algorithm 1 run.
type DSERequest struct {
	// Arch is a registered DRAM backend ID (ddr3, salp1, salp2, masa,
	// ddr4, lpddr3, lpddr4, hbm2, or anything registered at runtime);
	// GET /api/v1/backends lists the live set.
	Arch string `json:"arch"`
	// Network names a built-in workload (alexnet, vgg16, lenet5,
	// resnet18); leave empty and populate Layers for a custom network.
	Network string `json:"network,omitempty"`
	// Layers is a custom workload, used when Network is empty.
	Layers []LayerJSON `json:"layers,omitempty"`
	// Schedules restricts the scheduling schemes (ifms, wghs, ofms,
	// adaptive, all); empty means all four.
	Schedules []string `json:"schedules,omitempty"`
	// Policies restricts the Table I mapping IDs (1-6); 0 selects the
	// commodity default mapping. Empty means all six Table I policies.
	Policies []int `json:"policies,omitempty"`
	// Objective is edp (default), energy or delay.
	Objective string `json:"objective,omitempty"`
	// Batch is the image batch size; defaults to 1.
	Batch int `json:"batch,omitempty"`
}

// DSEResponse is a DSE outcome plus serving metadata.
type DSEResponse struct {
	Network   string         `json:"network"`
	Objective string         `json:"objective"`
	Batch     int            `json:"batch"`
	Result    report.DSEJSON `json:"result"`
	// Cached reports whether the result was served from the cache (or
	// coalesced onto an identical in-flight evaluation) instead of
	// being evaluated for this request.
	Cached bool `json:"cached"`
}

// CharacterizeRequest asks for Fig. 1 characterizations.
type CharacterizeRequest struct {
	// Archs lists registered backend IDs to characterize; empty means
	// every registered backend.
	Archs []string `json:"archs,omitempty"`
}

// CharacterizeResponse carries the characterizations in request order.
type CharacterizeResponse struct {
	Profiles []report.ProfileJSON `json:"profiles"`
	Cached   bool                 `json:"cached"`
}

// PoliciesResponse lists the Table I policies.
type PoliciesResponse struct {
	Policies []report.PolicyJSON `json:"policies"`
}

// SimulateRequest asks for a trace-driven simulation - the validation
// path of the tool flow (cycle-accurate controller + energy model
// instead of the analytical counts). Two modes share the endpoint:
// single-layer (Layer + Tiling + Schedule, the original surface) and
// whole-network (Network), where each layer first gets its
// tiling/schedule picked by the DSE under the requested policy and
// then simulates at that design point.
type SimulateRequest struct {
	// Arch is a registered DRAM backend ID.
	Arch string `json:"arch"`
	// Policy is the mapping ID (1-6, or 0 for the commodity default).
	Policy int `json:"policy"`
	// Network names a built-in workload (alexnet, vgg16, lenet5,
	// resnet18) for whole-network simulation. Give either Network or
	// Layer+Tiling, not both.
	Network string `json:"network,omitempty"`
	// Layer is the simulated layer's geometry (single-layer mode).
	Layer LayerJSON `json:"layer,omitzero"`
	// Tiling fixes the partitioning under test (single-layer mode).
	Tiling report.TilingJSON `json:"tiling,omitzero"`
	// Schedule is ifms, wghs, ofms or adaptive. Required in
	// single-layer mode; defaults to adaptive in network mode.
	Schedule string `json:"schedule,omitempty"`
	// Batch defaults to 1.
	Batch int `json:"batch,omitempty"`
	// BytesPerElement defaults to the service accelerator's element
	// width (1 for the paper's int8 Table II datapath).
	BytesPerElement int `json:"bytes_per_element,omitempty"`
	// Scheduler picks the controller's request scheduler: fcfs (the
	// default, the paper's Table II) or frfcfs.
	Scheduler string `json:"scheduler,omitempty"`
	// PagePolicy picks the controller's row policy: open (default) or
	// closed.
	PagePolicy string `json:"page_policy,omitempty"`
	// Engine picks the event engine: serial (default) or parallel.
	// The engines produce bit-for-bit identical results (the choice is
	// excluded from the result cache key); parallel overlaps
	// independent tile streams across cores.
	Engine string `json:"engine,omitempty"`
}

// SimulateLayerJSON is one layer's simulated outcome in network-mode
// responses and "sim_layer" job events.
type SimulateLayerJSON struct {
	// Index is the layer's position in the network.
	Index int `json:"index"`
	// Name is the layer's name.
	Name string `json:"name"`
	// Cost is the simulated DRAM cost.
	Cost report.LayerEDPJSON `json:"cost"`
	// Groups counts the layer's distinct tile streams.
	Groups int `json:"groups"`
	// Requests counts the simulated burst requests.
	Requests int64 `json:"requests"`
	// Commands counts the issued DRAM commands.
	Commands int64 `json:"commands"`
}

// SimulateResponse is the simulated cost: a single layer's, or - in
// network mode - every layer's plus the network total.
type SimulateResponse struct {
	Arch string `json:"arch"`
	// Layer names the simulated layer (single-layer mode).
	Layer string `json:"layer,omitempty"`
	// Network names the simulated workload (network mode), with the
	// per-layer outcomes in Layers.
	Network string              `json:"network,omitempty"`
	Layers  []SimulateLayerJSON `json:"layers,omitempty"`
	// Cost is the layer's cost, or the network total in network mode.
	Cost   report.LayerEDPJSON `json:"cost"`
	Cached bool                `json:"cached"`
}

// SweepRequest asks for one ablation sweep.
type SweepRequest struct {
	// Kind selects the sweep: subarrays, buffers or batch.
	Kind string `json:"kind"`
	// Values are the swept points (subarray counts, buffer KBs or batch
	// sizes); empty picks the sweep's documented defaults.
	Values []int `json:"values,omitempty"`
	// Arch is a registered DRAM backend ID for the buffers/batch sweeps
	// and defaults to ddr3; the subarrays sweep ignores it (it is
	// SALP-MASA by definition).
	Arch string `json:"arch,omitempty"`
	// Network defaults to alexnet.
	Network string `json:"network,omitempty"`
	// Batch defaults to 1 (ignored by the batch sweep).
	Batch int `json:"batch,omitempty"`
}

// SweepResponse is the sweep table.
type SweepResponse struct {
	Table  report.SweepJSON `json:"table"`
	Cached bool             `json:"cached"`
}

// BackendsResponse lists the registered DRAM backends.
type BackendsResponse struct {
	Backends []report.BackendJSON `json:"backends"`
}

// VersionResponse identifies the serving binary: GET /api/v1/version
// and drmap-serve -version, so a deployment observed in traces, logs
// or metrics can be tied to an exact build.
type VersionResponse struct {
	Service string `json:"service"`
	obs.BuildInfo
}

// Version reports the running binary's build identity.
func Version() VersionResponse {
	return VersionResponse{Service: "drmap", BuildInfo: obs.Build()}
}

// HealthResponse reports daemon liveness and serving counters. Warm is
// present only when plan warming is enabled (drmap-serve -warm); its
// State moves from "warming" to "ready" once the boot pass over the
// backend registry has finished.
type HealthResponse struct {
	Status      string      `json:"status"`
	Workers     int         `json:"workers"`
	Evaluations int64       `json:"evaluations"`
	Cache       CacheStats  `json:"cache"`
	Warm        *WarmStatus `json:"warm,omitempty"`
}

// parseSchedules resolves a request's schedule names ("all" expands).
func parseSchedules(names []string) ([]tiling.Schedule, error) {
	if len(names) == 0 {
		return tiling.Schedules, nil
	}
	var out []tiling.Schedule
	seen := map[tiling.Schedule]bool{}
	for _, name := range names {
		ss, err := cli.ParseSchedules(name)
		if err != nil {
			return nil, err
		}
		for _, s := range ss {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out, nil
}

// parsePolicies resolves mapping IDs to Table I policies (0 = the
// commodity default mapping).
func parsePolicies(ids []int) ([]mapping.Policy, error) {
	if len(ids) == 0 {
		return mapping.TableI(), nil
	}
	byID := map[int]mapping.Policy{0: mapping.Default()}
	for _, p := range mapping.TableI() {
		byID[p.ID] = p
	}
	out := make([]mapping.Policy, 0, len(ids))
	for _, id := range ids {
		p, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("unknown mapping policy %d (want 1-6, or 0 for the default mapping)", id)
		}
		out = append(out, p)
	}
	return out, nil
}

// parseObjective resolves a request's objective name.
func parseObjective(name string) (core.Objective, error) {
	switch name {
	case "", "edp":
		return core.MinimizeEDP, nil
	case "energy":
		return core.MinimizeEnergy, nil
	case "delay":
		return core.MinimizeDelay, nil
	default:
		return 0, fmt.Errorf("unknown objective %q (want edp, energy or delay)", name)
	}
}

// parseNetwork resolves a named workload or a custom layer list.
func parseNetwork(name string, layers []LayerJSON) (cnn.Network, error) {
	if name != "" {
		if len(layers) > 0 {
			return cnn.Network{}, fmt.Errorf("give either a network name or custom layers, not both")
		}
		return cli.ParseNetwork(name)
	}
	if len(layers) == 0 {
		return cnn.Network{}, fmt.Errorf("missing network: name one of alexnet, vgg16, lenet5, resnet18 or give custom layers")
	}
	net := cnn.Network{Name: "custom"}
	for _, lj := range layers {
		l, err := lj.toLayer()
		if err != nil {
			return cnn.Network{}, err
		}
		net.Layers = append(net.Layers, l)
	}
	return net, net.Validate()
}

// parseBackend resolves a registered DRAM backend ID; the error lists
// the registry's current contents.
func parseBackend(name string) (dram.Backend, error) {
	return cli.ParseBackend(name)
}

// parseSchedule resolves a single schedule name (adaptive allowed).
func parseSchedule(name string) (tiling.Schedule, error) {
	ss, err := cli.ParseSchedules(name)
	if err != nil {
		return 0, err
	}
	if len(ss) != 1 {
		return 0, fmt.Errorf("schedule %q names %d schemes; give exactly one", name, len(ss))
	}
	return ss[0], nil
}
