package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"drmap/internal/cnn"
)

func newTestServer(t *testing.T, svc *Service) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewHandler(svc, 2*time.Minute))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

func TestHTTPHealthz(t *testing.T) {
	ts := newTestServer(t, New(Options{Workers: 2, CacheEntries: 8}))
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Status != "ok" || h.Workers != 2 {
		t.Errorf("health %+v", h)
	}
}

func TestHTTPPolicies(t *testing.T) {
	ts := newTestServer(t, New(Options{Workers: 2, CacheEntries: 8}))
	resp, err := http.Get(ts.URL + "/api/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var pr PoliciesResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(pr.Policies) != 6 {
		t.Fatalf("got %d policies, want 6", len(pr.Policies))
	}
	for _, p := range pr.Policies {
		if len(p.Order) != 4 {
			t.Errorf("policy %d order %v", p.ID, p.Order)
		}
	}
}

// TestHTTPDSEAlexNet is the acceptance flow: POST /api/v1/dse for
// AlexNet answers valid JSON with one design point per layer.
func TestHTTPDSEAlexNet(t *testing.T) {
	svc := New(Options{Workers: 0, CacheEntries: 8})
	ts := newTestServer(t, svc)
	resp, body := postJSON(t, ts.URL+"/api/v1/dse", `{"arch":"ddr3","network":"alexnet"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var dr DSEResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if want := len(cnn.AlexNet().Layers); len(dr.Result.Layers) != want {
		t.Fatalf("got %d layers, want %d", len(dr.Result.Layers), want)
	}
	if dr.Result.Arch != "DDR3" {
		t.Errorf("arch %q", dr.Result.Arch)
	}
	if dr.Result.TotalEDPJs <= 0 {
		t.Error("non-positive total EDP")
	}
	// Algorithm 1 picks DRMap (Mapping-3) for AlexNet's first layer.
	if dr.Result.Layers[0].Mapping.ID != 3 {
		t.Errorf("layer 1 mapping %d, want 3 (DRMap)", dr.Result.Layers[0].Mapping.ID)
	}
	if dr.Cached {
		t.Error("first request reported cached")
	}

	// An identical request is a cache hit.
	resp2, body2 := postJSON(t, ts.URL+"/api/v1/dse", `{"arch":"ddr3","network":"alexnet"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	var dr2 DSEResponse
	if err := json.Unmarshal(body2, &dr2); err != nil {
		t.Fatal(err)
	}
	if !dr2.Cached {
		t.Error("repeated request missed the cache")
	}
	if dr2.Result.TotalEDPJs != dr.Result.TotalEDPJs {
		t.Error("cached result differs")
	}
	if st := svc.CacheStats(); st.Hits < 1 {
		t.Errorf("cache stats record no hit: %+v", st)
	}
}

// TestHTTPDSESingleFlight: N concurrent identical POSTs cost one DSE
// evaluation.
func TestHTTPDSESingleFlight(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 8})
	ts := newTestServer(t, svc)
	// Warm the characterization so only the DSE evaluation remains.
	if resp, body := postJSON(t, ts.URL+"/api/v1/characterize", `{"archs":["salp2"]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm characterize: %d %s", resp.StatusCode, body)
	}
	before := svc.Evaluations()

	const n = 8
	var wg sync.WaitGroup
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/api/v1/dse", "application/json",
				bytes.NewReader([]byte(`{"arch":"salp2","network":"lenet5"}`)))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Errorf("request %d: status %d", i, st)
		}
	}
	if got := svc.Evaluations() - before; got != 1 {
		t.Errorf("%d concurrent identical POSTs cost %d evaluations, want 1", n, got)
	}
}

func TestHTTPCharacterizeGET(t *testing.T) {
	ts := newTestServer(t, New(Options{Workers: 4, CacheEntries: 8}))
	resp, err := http.Get(ts.URL + "/api/v1/characterize?arch=ddr3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cr CharacterizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Profiles) != 1 || cr.Profiles[0].Arch != "DDR3" {
		t.Errorf("profiles %+v", cr.Profiles)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	ts := newTestServer(t, New(Options{Workers: 1, CacheEntries: 4}))
	cases := []struct {
		path, body string
	}{
		{"/api/v1/dse", `{"arch":"ddr9","network":"lenet5"}`},
		{"/api/v1/dse", `not json`},
		{"/api/v1/dse", `{"arch":"ddr3","network":"lenet5","bogus_field":1}`},
		{"/api/v1/sweep", `{"kind":"nope"}`},
		{"/api/v1/simulate", `{"arch":"ddr3","policy":99}`},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q: status %d, want 400", c.path, c.body, resp.StatusCode)
			continue
		}
		var e errorJSON
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("POST %s: error body %q not a JSON error", c.path, body)
		}
	}
	// Wrong method on a POST endpoint.
	resp, err := http.Get(ts.URL + "/api/v1/dse")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/v1/dse: status %d, want 405", resp.StatusCode)
	}
}

func TestHTTPSweepAndSimulate(t *testing.T) {
	ts := newTestServer(t, New(Options{Workers: 2, CacheEntries: 8}))
	resp, body := postJSON(t, ts.URL+"/api/v1/sweep", `{"kind":"subarrays","values":[2,4],"network":"lenet5"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Table.Rows) != 2 {
		t.Errorf("sweep rows %+v", sr.Table.Rows)
	}

	sim := `{"arch":"ddr3","policy":3,"layer":{"name":"c1","h":10,"w":10,"j":16,"i":6,"p":5,"q":5,"stride":1},"tiling":{"th":10,"tw":10,"tj":16,"ti":6},"schedule":"ofms"}`
	resp, body = postJSON(t, ts.URL+"/api/v1/simulate", sim)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d: %s", resp.StatusCode, body)
	}
	var simr SimulateResponse
	if err := json.Unmarshal(body, &simr); err != nil {
		t.Fatal(err)
	}
	if simr.Cost.EDPJs <= 0 {
		t.Errorf("simulate cost %+v", simr.Cost)
	}
}

// TestHTTPBackends: GET /api/v1/backends lists the registry (paper
// architectures plus generality presets) with geometry summaries.
func TestHTTPBackends(t *testing.T) {
	ts := newTestServer(t, New(Options{Workers: 1, CacheEntries: 4}))
	resp, err := http.Get(ts.URL + "/api/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var br BackendsResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(br.Backends) < 6 {
		t.Fatalf("got %d backends, want >= 6", len(br.Backends))
	}
	byID := map[string]bool{}
	for _, b := range br.Backends {
		byID[b.ID] = true
		if b.Name == "" || b.Arch == "" {
			t.Errorf("backend %q missing name/arch: %+v", b.ID, b)
		}
		if b.Geometry.Banks <= 0 || b.Timing.TCKNanos <= 0 {
			t.Errorf("backend %q missing geometry/timing summary: %+v", b.ID, b)
		}
	}
	for _, want := range []string{"ddr3", "salp1", "salp2", "masa", "ddr4", "lpddr3", "lpddr4", "hbm2"} {
		if !byID[want] {
			t.Errorf("backend %q not listed", want)
		}
	}
}

// TestHTTPDSEOnGeneralityBackend is the acceptance flow for the
// registry refactor: POST /api/v1/dse with a non-paper backend ID
// returns a valid DSE result labeled with the backend.
func TestHTTPDSEOnGeneralityBackend(t *testing.T) {
	ts := newTestServer(t, New(Options{Workers: 0, CacheEntries: 8}))
	resp, body := postJSON(t, ts.URL+"/api/v1/dse", `{"arch":"ddr4","network":"lenet5"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var dr DSEResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if dr.Result.Arch != "DDR4-2400" || dr.Result.Backend != "ddr4" {
		t.Errorf("result labeled %q/%q, want DDR4-2400/ddr4", dr.Result.Arch, dr.Result.Backend)
	}
	if want := len(cnn.LeNet5().Layers); len(dr.Result.Layers) != want {
		t.Fatalf("got %d layers, want %d", len(dr.Result.Layers), want)
	}
	if dr.Result.TotalEDPJs <= 0 {
		t.Error("non-positive total EDP")
	}
}
