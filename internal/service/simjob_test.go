package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"

	"drmap/internal/core"
	"drmap/internal/report"
)

// waitTerminalHTTP polls GET /api/v2/jobs/{id} until the job is
// terminal.
func waitTerminalHTTP(t *testing.T, baseURL, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		v := getJob(t, baseURL, id)
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never became terminal", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// simBlockingRunner parks simulate jobs until their context cancels;
// DSE jobs fall straight through to the local pool. It gives cancel
// tests a deterministically long-running simulate job.
type simBlockingRunner struct{}

func (simBlockingRunner) RunDSE(ctx context.Context, job DSEJob) (*core.DSEResult, error) {
	return nil, fmt.Errorf("simBlockingRunner declines: %w", ErrNoWorkers)
}

func (simBlockingRunner) RunSimulate(ctx context.Context, job SimulateJob) ([]core.SimLayerResult, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestJobLifecycleSimulate: a network-mode simulate job submitted via
// the job manager runs to succeeded with a decodable result, one
// sim_layer event per layer, full column progress - and, because the
// engine choice is excluded from the cache key, a direct serial-engine
// call afterwards is answered from the parallel run's cache entry with
// the identical payload.
func TestJobLifecycleSimulate(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 8})
	jm := NewJobManager(svc, JobManagerOptions{})
	view, err := jm.Submit(context.Background(), JobRequest{
		Kind:     "simulate",
		Simulate: &SimulateRequest{Arch: "ddr3", Network: "lenet5", Engine: "parallel"},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if view.Kind != JobSimulate || view.State.Terminal() {
		t.Fatalf("fresh job view %+v", view)
	}
	final := waitTerminal(t, jm, view.ID)
	if final.State != JobSucceeded || final.Error != "" {
		t.Fatalf("final state %s (%s), want succeeded", final.State, final.Error)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(final.Result, &resp); err != nil {
		t.Fatalf("decode job result: %v", err)
	}
	if resp.Network == "" || len(resp.Layers) == 0 {
		t.Fatalf("network-mode response %+v, want named network with layers", resp)
	}

	p := final.Progress
	if p.ColumnsTotal != len(resp.Layers) || p.ColumnsDone != p.ColumnsTotal {
		t.Errorf("progress %+v, want %d/%d layers", p, len(resp.Layers), len(resp.Layers))
	}
	events, _, terminal := jm.jobs[view.ID].eventsSince(0)
	if !terminal {
		t.Fatal("terminal job's log not marked terminal")
	}
	seen := make(map[int]bool)
	for _, e := range events {
		if e.Type != EventSimLayer {
			continue
		}
		if e.SimLayer == nil || e.SimLayer.Index != e.Index {
			t.Fatalf("malformed sim_layer event %+v", e)
		}
		seen[e.Index] = true
	}
	if len(seen) != len(resp.Layers) {
		t.Errorf("saw %d distinct sim_layer events, want %d", len(seen), len(resp.Layers))
	}

	// Serial-engine request for the same simulation: same cache entry
	// (engine excluded from the key), identical payload.
	direct, err := svc.Simulate(context.Background(), SimulateRequest{Arch: "ddr3", Network: "lenet5"})
	if err != nil {
		t.Fatalf("direct simulate: %v", err)
	}
	if !direct.Cached {
		t.Error("serial request after a parallel run missed the shared cache entry")
	}
	direct.Cached = resp.Cached
	if !reflect.DeepEqual(*direct, resp) {
		t.Errorf("serial response diverged from the parallel job's:\n%+v\n%+v", *direct, resp)
	}
}

// TestJobSimulateCancel: canceling a running simulate job transitions
// it to canceled promptly.
func TestJobSimulateCancel(t *testing.T) {
	svc := New(Options{Workers: 1, CacheEntries: 8, Runner: simBlockingRunner{}})
	jm := NewJobManager(svc, JobManagerOptions{})
	view, err := jm.Submit(context.Background(), JobRequest{
		Kind:     "simulate",
		Simulate: &SimulateRequest{Arch: "ddr3", Network: "lenet5"},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := jm.Cancel(view.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	final := waitTerminal(t, jm, view.ID)
	if final.State != JobCanceled {
		t.Fatalf("state %s after cancel, want canceled", final.State)
	}
	if _, err := jm.Cancel(view.ID); !errors.Is(err, ErrJobFinished) {
		t.Errorf("second cancel: %v, want ErrJobFinished", err)
	}
}

// TestSyncSimulateMatchesDirect: the v1 wrapper returns exactly what
// Service.Simulate returns, for results and errors both, in both
// single-layer and network mode.
func TestSyncSimulateMatchesDirect(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 16})
	jm := NewJobManager(svc, JobManagerOptions{})
	ctx := context.Background()

	single := SimulateRequest{
		Arch: "ddr3", Policy: 1,
		Layer:    LayerJSON{Name: "c1", H: 12, W: 12, J: 8, I: 4, P: 3, Q: 3, Stride: 1},
		Tiling:   report.TilingJSON{Th: 6, Tw: 6, Tj: 8, Ti: 4},
		Schedule: "ifms",
	}
	direct, err := svc.Simulate(ctx, single)
	if err != nil {
		t.Fatalf("direct simulate: %v", err)
	}
	viaJobs, err := jm.SyncSimulate(ctx, single)
	if err != nil {
		t.Fatalf("SyncSimulate: %v", err)
	}
	if viaJobs.Cost != direct.Cost || viaJobs.Layer != direct.Layer {
		t.Errorf("SyncSimulate diverged from Service.Simulate:\n%+v\n%+v", viaJobs, direct)
	}
	if !viaJobs.Cached {
		t.Error("identical repeat through the job manager missed the cache")
	}

	_, directErr := svc.Simulate(ctx, SimulateRequest{Arch: "ddr3", Network: "lenet5", Scheduler: "nope"})
	_, jobErr := jm.SyncSimulate(ctx, SimulateRequest{Arch: "ddr3", Network: "lenet5", Scheduler: "nope"})
	if directErr == nil || jobErr == nil || directErr.Error() != jobErr.Error() {
		t.Errorf("error texts diverge:\ndirect: %v\njobs:   %v", directErr, jobErr)
	}
}

// TestHTTPV2SimulateSubmitStreamCancel: the v2 surface runs simulate
// jobs end to end - submit, stream sim_layer events, retrieve the
// result - and a second, held job cancels cleanly over DELETE.
func TestHTTPV2SimulateSubmitStreamCancel(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 16})
	ts := newTestServer(t, svc)

	view := submitJob(t, ts.URL, `{"kind":"simulate","simulate":{"arch":"salp2","network":"lenet5","engine":"parallel"}}`)
	streamResp, err := http.Get(ts.URL + "/api/v2/jobs/" + view.ID + "/events?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	dec := json.NewDecoder(streamResp.Body)
	simLayers, gotResult := 0, false
	for {
		var e JobEvent
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("stream ended early: %v", err)
		}
		switch e.Type {
		case EventSimLayer:
			simLayers++
		case EventResult:
			gotResult = true
		}
		if e.Type == EventState && e.State.Terminal() {
			if e.State != JobSucceeded {
				t.Fatalf("terminal state %s, want succeeded", e.State)
			}
			break
		}
	}
	if simLayers == 0 || !gotResult {
		t.Fatalf("stream carried %d sim_layer events (result: %v)", simLayers, gotResult)
	}
	final := getJob(t, ts.URL, view.ID)
	var resp SimulateResponse
	if err := json.Unmarshal(final.Result, &resp); err != nil {
		t.Fatalf("decode stored result: %v", err)
	}
	if resp.Network == "" || len(resp.Layers) != simLayers {
		t.Fatalf("stored result %+v, want %d layers", resp, simLayers)
	}

	// Cancel path: hold a fresh simulate job open, then DELETE it.
	svc.SetRunner(simBlockingRunner{})
	held := submitJob(t, ts.URL, `{"kind":"simulate","simulate":{"arch":"ddr3","network":"alexnet"}}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v2/jobs/"+held.ID, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", delResp.StatusCode)
	}
	deadline := waitTerminalHTTP(t, ts.URL, held.ID)
	if deadline.State != JobCanceled {
		t.Fatalf("held job state %s after DELETE, want canceled", deadline.State)
	}
}
