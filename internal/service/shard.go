package service

import (
	"context"
	"errors"
	"fmt"
	"math"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/tiling"
)

// DSEJob is a fully resolved Algorithm 1 run: the inputs a DSE request
// reduces to once every name has been parsed against the registry. It
// is the unit a DSERunner distributes - every field is a plain value
// (int enums, exported-field structs), so the job JSON-round-trips
// exactly and a worker on another host reproduces the search
// bit-for-bit without sharing this process's registry.
type DSEJob struct {
	Backend   dram.Backend
	Accel     accel.Config
	Network   cnn.Network
	Schedules []tiling.Schedule
	Policies  []mapping.Policy
	Objective core.Objective
	Batch     int
}

// Grid enumerates the job's per-layer DSE grids. The enumeration
// depends only on the workload and accelerator, so coordinator and
// workers agree on column indexing without characterizing anything.
func (j DSEJob) Grid() ([]core.LayerGrid, error) {
	return core.DSEGridFor(j.Network, j.Accel, j.Schedules, j.Policies)
}

// Columns returns the size of the job's (layer, schedule) column space.
func (j DSEJob) Columns(grids []core.LayerGrid) int {
	return len(grids) * len(j.Schedules)
}

// Validate rejects jobs whose fixed fields cannot produce a result.
// It checks only the cheap invariants; workload feasibility (a layer
// with no buffer-fitting partitioning) is reported by Grid, which
// callers run exactly once anyway to obtain the grids.
func (j DSEJob) Validate() error {
	if j.Batch < 1 {
		return fmt.Errorf("service: job batch must be >= 1, got %d", j.Batch)
	}
	if err := j.Backend.Config.Validate(); err != nil {
		return fmt.Errorf("service: job backend: %w", err)
	}
	if err := j.Accel.Validate(); err != nil {
		return fmt.Errorf("service: job accelerator: %w", err)
	}
	if len(j.Schedules) == 0 || len(j.Policies) == 0 {
		return fmt.Errorf("service: job needs at least one schedule and one policy")
	}
	return j.Network.Validate()
}

// DSERunner executes resolved DSE jobs. The service's local pool is the
// implicit default; a runner (e.g. a cluster coordinator fanning shards
// over remote workers) replaces it when set in Options. A runner that
// currently has no capacity returns an error wrapping ErrNoWorkers and
// the service falls back to the local pool, so a cluster degrades to
// standalone instead of failing requests.
type DSERunner interface {
	RunDSE(ctx context.Context, job DSEJob) (*core.DSEResult, error)
}

// ErrNoWorkers signals a DSERunner with no remote capacity; the service
// answers such jobs from its local pool.
var ErrNoWorkers = errors.New("service: no cluster workers available")

// runJob executes a resolved DSE job: through the configured runner
// when one is set (falling back locally on ErrNoWorkers), else on the
// local worker pool with the cached characterization.
func (s *Service) runJob(ctx context.Context, job DSEJob) (*core.DSEResult, error) {
	if s.runner != nil {
		res, err := s.runner.RunDSE(ctx, job)
		if err == nil || !errors.Is(err, ErrNoWorkers) {
			return res, err
		}
	}
	ev, err := s.evaluatorFor(job.Backend, job.Batch)
	if err != nil {
		return nil, err
	}
	grids, err := s.gridFor(job)
	if err != nil {
		return nil, err
	}
	return parallelDSE(ctx, s.gate, grids, ev, job.Schedules, job.Policies, job.Objective, s.workers, s.columnEval(job, ev))
}

// EvaluateShard executes one shard - a span of the job's (layer,
// schedule) column space - on the local worker pool and returns its
// cells. The backend characterization comes from the content-addressed
// cache (so repeated shards of one job characterize once), columns run
// through the count-plan cache (so a re-dispatched or duplicated shard,
// and shards of the same job for a count-compatible backend, reprice
// cached plans instead of recounting), evaluation
// holds the service gate like any other CPU-bound work, and cells with
// a non-finite objective value are dropped: core.ReduceCells skips them
// anyway, and finite-only cells keep the shard JSON-encodable. The
// returned cells are self-locating (layer/schedule/policy indices), so
// a coordinator can merge shards in any order, with any duplication,
// and still reduce to the serial scan's pick.
func (s *Service) EvaluateShard(ctx context.Context, job DSEJob, span core.ColumnSpan) ([]core.CellResult, error) {
	grids, err := s.gridFor(job)
	if err != nil {
		return nil, err
	}
	if span.Start < 0 || span.End < span.Start || span.End > job.Columns(grids) {
		return nil, fmt.Errorf("service: shard span [%d, %d) outside column space [0, %d)", span.Start, span.End, job.Columns(grids))
	}
	ev, err := s.evaluatorFor(job.Backend, job.Batch)
	if err != nil {
		return nil, err
	}
	columns, err := evaluateColumns(ctx, s.gate, grids, len(job.Schedules), span, s.workers, s.columnEval(job, ev))
	if err != nil {
		return nil, fmt.Errorf("service: shard [%d, %d) canceled: %w", span.Start, span.End, err)
	}
	cells := make([]core.CellResult, 0, span.Len()*len(job.Policies))
	for _, col := range columns {
		for _, c := range col {
			if math.IsInf(c.Value, 0) || math.IsNaN(c.Value) {
				continue
			}
			cells = append(cells, c)
		}
	}
	return cells, nil
}
