// The plan warmer: boot-time (and registration-time) background
// pre-warming of the count-plan cache. A freshly started daemon answers
// its first DSE of each (network, count signature) with a cold count
// pass; with -warm the daemon counts the registry x built-in-network
// plan set in the background at boot - and each dram.Register'd backend
// as it appears - so steady-state traffic starts on the vectorized
// reprice-only path immediately. Progress is surfaced as the
// drmap_plan_warm_* metric family and as the "warm" block of /healthz.
package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drmap/internal/cnn"
	"drmap/internal/core"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/obs"
	"drmap/internal/tiling"
)

// WarmNetworks is the default warm set: the paper's headline workloads,
// cheapest first so the most common requests warm earliest. resnet18
// and vgg16 are deliberately excluded - their flat plans run to
// hundreds of MiB and over a thousand distinct columns, so warming
// them by default would blow the default plan-cache budget and evict
// the very plans the boot pass just counted. Opt in with
// EnableWarm(ctx, "alexnet", "vgg16", ...) (drmap-serve:
// -warm-networks) and size -plan-cache / -plan-cache-bytes to hold
// the set.
var WarmNetworks = []string{"alexnet", "lenet5"}

// WarmStatus reports the plan warmer's progress; /healthz carries it as
// the "warm" block when warming is enabled.
type WarmStatus struct {
	// State is "warming" until the boot pass over the registry has
	// finished, then "ready". Register-time warms of later backends run
	// in the background without leaving the ready state.
	State    string   `json:"state"`
	Networks []string `json:"networks"`
	// Backends counts fully warmed backends (boot pass plus
	// registration-time), Columns the grid columns ensured resident,
	// Errors the failed warm attempts (bad backend configs).
	Backends int64 `json:"backends"`
	Columns  int64 `json:"columns"`
	Errors   int64 `json:"errors"`
}

// warmer tracks one service's plan warming. Passes are serialized by
// mu; the counters are read lock-free by /healthz and /metrics.
type warmer struct {
	names []string
	nets  []cnn.Network

	mu       sync.Mutex // serializes warm passes
	backends atomic.Int64
	columns  atomic.Int64
	errors   atomic.Int64
	ready    atomic.Bool
	seconds  *obs.Gauge // boot-pass wall clock
}

func (w *warmer) status() WarmStatus {
	state := "warming"
	if w.ready.Load() {
		state = "ready"
	}
	return WarmStatus{
		State:    state,
		Networks: w.names,
		Backends: w.backends.Load(),
		Columns:  w.columns.Load(),
		Errors:   w.errors.Load(),
	}
}

// EnableWarm starts pre-warming the count-plan cache: a background boot
// pass counts the plan set of every currently registered backend for
// the given built-in networks (default WarmNetworks), and a
// dram.OnRegister subscription warms each later-registered backend the
// same way until ctx is canceled. Warmed plans use the default request
// shape - all schedules, the Table I policies, batch 1 - so default
// DSE, batch and v2 job traffic lands on the reprice-only path from the
// first request on. Call once, before serving; it fails when the plan
// cache is disabled or a network name is unknown.
func (s *Service) EnableWarm(ctx context.Context, networks ...string) error {
	if s.planCache == nil {
		return fmt.Errorf("service: warm needs the plan cache (PlanCacheEntries >= 0)")
	}
	if s.warm != nil {
		return fmt.Errorf("service: warm already enabled")
	}
	if len(networks) == 0 {
		networks = WarmNetworks
	}
	w := &warmer{names: networks}
	for _, name := range networks {
		net, err := parseNetwork(name, nil)
		if err != nil {
			return fmt.Errorf("service: warm: %w", err)
		}
		w.nets = append(w.nets, net)
	}
	w.seconds = s.registry.Gauge("drmap_plan_warm_seconds",
		"Wall-clock seconds of the boot warm pass over the registry (0 until it finishes).").With()
	s.warm = w

	unsubscribe := dram.OnRegister(func(b dram.Backend) {
		go s.warmBackends(ctx, []dram.Backend{b})
	})
	go func() {
		defer unsubscribe()
		start := time.Now()
		s.warmBackends(ctx, dram.Backends())
		w.seconds.Set(time.Since(start).Seconds())
		w.ready.Store(true)
		// Keep the registration subscription alive until shutdown.
		<-ctx.Done()
	}()
	return nil
}

// warmBackends counts (and flattens) the plan set of the given backends
// for every warm network, through the same content-addressed
// single-flight cache path live requests use - so backends sharing a
// count signature warm from one count pass, an already-warm column is a
// map lookup, and a request arriving mid-warm coalesces with the warm
// instead of recounting. Passes are serialized so a burst of
// registrations cannot multiply the count work.
func (s *Service) warmBackends(ctx context.Context, backends []dram.Backend) {
	w := s.warm
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, b := range backends {
		if ctx.Err() != nil {
			return
		}
		// Characterizing here also pre-warms the profile cache; the
		// evaluator only contributes its CountKey to the plan keys.
		ev, err := s.evaluatorFor(b, 1)
		if err != nil {
			w.errors.Add(1)
			continue
		}
		failed := false
		for _, net := range w.nets {
			job := DSEJob{
				Backend: b, Accel: s.accel, Network: net,
				Schedules: tiling.Schedules, Policies: mapping.TableI(),
				Objective: core.MinimizeEDP, Batch: 1,
			}
			grids, err := s.gridFor(job)
			if err != nil {
				w.errors.Add(1)
				failed = true
				continue
			}
			prefix, err := s.planPrefix(job, ev)
			if err != nil {
				w.errors.Add(1)
				failed = true
				continue
			}
			for li := range grids {
				for si := range job.Schedules {
					if ctx.Err() != nil {
						return
					}
					// One gate token per column: the warmer is a single
					// goroutine, so warming takes at most one CPU slot
					// and never starves live requests.
					if !acquireGate(ctx, s.gate) {
						return
					}
					key := fmt.Sprintf("%s:%d:%d", prefix, li, si)
					_, _, err := s.planCache.Do(key, s.countPlan(ctx, job, ev, grids, li, si))
					releaseGate(s.gate)
					if err != nil {
						w.errors.Add(1)
						failed = true
					} else {
						w.columns.Add(1)
					}
				}
			}
		}
		if !failed {
			w.backends.Add(1)
		}
	}
}
