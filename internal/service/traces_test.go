package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"drmap/internal/obs"
)

// newTracedServer builds the full daemon handler stack the way
// NewServer does - jobs surface, traces API, dashboard, Observe
// middleware with the span store - but over httptest.
func newTracedServer(t *testing.T, svc *Service) *httptest.Server {
	t.Helper()
	jm := NewJobManager(svc, JobManagerOptions{})
	mux := NewHandlerWithJobs(svc, jm, 2*time.Minute)
	MountDashboard(mux, svc, jm, DashboardOptions{})
	ts := httptest.NewServer(Observe(mux, svc.Registry(), nil, svc.Spans()))
	t.Cleanup(ts.Close)
	return ts
}

// flattenTree walks a trace tree into a flat span list.
func flattenTree(tree *obs.TraceTree) []obs.Span {
	var out []obs.Span
	var walk func(n *obs.TraceNode)
	walk = func(n *obs.TraceNode) {
		out = append(out, n.Span)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range tree.Roots {
		walk(r)
	}
	return out
}

// TestTraceEndpointsStandalone drives one synchronous DSE through the
// full handler stack and asserts the span tree the trace API returns:
// the middleware's request root, the job manager's queue/run spans, the
// evaluator's dse/count/price spans, connected by parent IDs.
func TestTraceEndpointsStandalone(t *testing.T) {
	svc := New(Options{Workers: 2, CacheEntries: 8})
	ts := newTracedServer(t, svc)

	trace := obs.NewTraceID()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/dse",
		strings.NewReader(`{"arch":"ddr3","network":"lenet5"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DSE status %d", resp.StatusCode)
	}

	// Index: the trace is retained and listed.
	idxResp, err := http.Get(ts.URL + "/api/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	var idx TracesResponse
	err = json.NewDecoder(idxResp.Body).Decode(&idx)
	idxResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var sum *obs.TraceSummary
	for i := range idx.Traces {
		if idx.Traces[i].TraceID == trace {
			sum = &idx.Traces[i]
		}
	}
	if sum == nil {
		t.Fatalf("trace %s missing from index (%d traces)", trace, len(idx.Traces))
	}
	if !sum.Complete {
		t.Error("trace not marked complete after its roots ended")
	}
	if sum.Key != "job:dse" {
		t.Errorf("trace key %q, want job:dse (job.run root re-classifies the route key)", sum.Key)
	}

	// Tree: every instrumented tier shows up, parent-linked.
	treeResp, err := http.Get(ts.URL + "/api/v1/traces/" + trace)
	if err != nil {
		t.Fatal(err)
	}
	var tree obs.TraceTree
	err = json.NewDecoder(treeResp.Body).Decode(&tree)
	treeResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	spans := flattenTree(&tree)
	counts := map[string]int{}
	ids := map[string]bool{}
	for _, s := range spans {
		counts[s.Name]++
		ids[s.SpanID] = true
	}
	for _, want := range []string{"request", "job.queue", "job.run", "dse", "count", "price"} {
		if counts[want] == 0 {
			t.Errorf("span %q missing from trace tree (got %v)", want, counts)
		}
	}
	for _, s := range spans {
		if s.ParentID != "" && !ids[s.ParentID] {
			t.Errorf("span %s (%s) parents to %s, which is not in the tree", s.SpanID, s.Name, s.ParentID)
		}
	}

	// Chrome export: valid trace-event JSON with complete events.
	chResp, err := http.Get(ts.URL + "/api/v1/traces/" + trace + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	err = json.NewDecoder(chResp.Body).Decode(&doc)
	chResp.Body.Close()
	if err != nil {
		t.Fatalf("chrome format is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(spans) {
		t.Errorf("chrome export has %d events for %d spans", len(doc.TraceEvents), len(spans))
	}

	// A v2 job's view links to its trace summary once spans land.
	view := submitJob(t, ts.URL, `{"kind":"dse","dse":{"arch":"salp1","network":"lenet5"}}`)
	deadline := time.Now().Add(time.Minute)
	var final JobView
	for {
		final = getJob(t, ts.URL, view.ID)
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("v2 job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.Trace == nil {
		t.Fatalf("terminal job view lacks its trace summary: %+v", final)
	}
	if final.Trace.TraceID != final.TraceID {
		t.Errorf("job trace summary is for %s, want %s", final.Trace.TraceID, final.TraceID)
	}
}

// TestTraceEndpointErrors: bad limits 400, unknown traces 404.
func TestTraceEndpointErrors(t *testing.T) {
	ts := newTracedServer(t, New(Options{Workers: 1, CacheEntries: 4}))
	for url, want := range map[string]int{
		"/api/v1/traces?limit=0":    http.StatusBadRequest,
		"/api/v1/traces?limit=x":    http.StatusBadRequest,
		"/api/v1/traces/deadbeef00": http.StatusNotFound,
		"/api/v1/traces?limit=10":   http.StatusOK,
	} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", url, resp.StatusCode, want)
		}
	}
}

// TestDashboardRenders: the ops page serves self-contained HTML with
// the serving, cache and trace sections populated.
func TestDashboardRenders(t *testing.T) {
	svc := New(Options{Workers: 1, CacheEntries: 4})
	ts := newTracedServer(t, svc)
	if resp, body := postJSON(t, ts.URL+"/api/v1/dse", `{"arch":"ddr3","network":"lenet5"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed DSE: %d %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/debug/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("dashboard content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)
	for _, want := range []string{
		"drmap standalone", "Caches", "Slowest recent traces", "/api/v1/traces",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard page lacks %q", want)
		}
	}
}
