package dram

import "testing"

func TestDDR4ConfigValid(t *testing.T) {
	cfg := DDR4Config()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DDR4 preset invalid: %v", err)
	}
	// 4 Gb x8 = 512 MB.
	if got := cfg.Geometry.ChipBytes(); got != 512*1024*1024 {
		t.Errorf("DDR4 chip = %d bytes, want 512 MiB", got)
	}
	if cfg.Arch.HasSALP() {
		t.Error("commodity DDR4 must not report SALP capability")
	}
	if cfg.Geometry.Banks != 16 {
		t.Errorf("DDR4 banks = %d, want 16", cfg.Geometry.Banks)
	}
}

func TestLPDDR3ConfigValid(t *testing.T) {
	cfg := LPDDR3Config()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("LPDDR3 preset invalid: %v", err)
	}
	// 4 Gb x16 = 512 MB.
	if got := cfg.Geometry.ChipBytes(); got != 512*1024*1024 {
		t.Errorf("LPDDR3 chip = %d bytes, want 512 MiB", got)
	}
	// Mobile DRAM: standby far below the DDR3 desktop part.
	if cfg.Power.IDD2N >= DDR3Config().Power.IDD2N {
		t.Error("LPDDR3 standby current should undercut DDR3")
	}
	// 2 KB page: 256 bursts x 16 bits.
	if got := cfg.Geometry.RowBytes(); got != 2048 {
		t.Errorf("LPDDR3 page = %d bytes, want 2048", got)
	}
}

func TestWithSALPVariants(t *testing.T) {
	base := DDR4Config()
	for _, arch := range []Arch{SALP1, SALP2, SALPMASA} {
		cfg := WithSALP(base, arch)
		if cfg.Arch != arch {
			t.Errorf("WithSALP arch = %v, want %v", cfg.Arch, arch)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("WithSALP(%v) invalid: %v", arch, err)
		}
	}
	masa := WithSALP(base, SALPMASA)
	if masa.Power.SubarrayActFactor <= base.Power.SubarrayActFactor {
		t.Error("MASA variant must carry activation overhead")
	}
	if masa.Power.SubarrayLatchFraction == 0 {
		t.Error("MASA variant must carry latch overhead")
	}
	s1 := WithSALP(base, SALP1)
	if s1.Power.SubarrayLatchFraction != 0 {
		t.Error("SALP-1 holds one subarray open; no latch overhead expected")
	}
}

func TestWithSALPPanicsOnDDR3(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithSALP(DDR3) did not panic")
		}
	}()
	WithSALP(DDR4Config(), DDR3)
}
