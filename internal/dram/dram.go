// Package dram models the organization, timing and electrical parameters
// of commodity DRAM devices (DDR3) and of the subarray-level-parallelism
// (SALP) architectures proposed by Kim et al. (ISCA 2012): SALP-1, SALP-2
// and SALP-MASA.
//
// The package is the foundation of the DRMap reproduction: it defines the
// address space (channel, rank, chip, bank, subarray, row, column), the
// JEDEC timing parameters used by the cycle-accurate controller in
// package memctrl, and the IDD current parameters used by the energy
// model in package vampire.
//
// The identity of a DRAM system is a registered Backend (backend.go):
// the paper's four architectures and the generality presets (DDR4,
// LPDDR3, LPDDR4, HBM2; see EXPERIMENTS.md) are seeded at init, and
// Register makes new systems addressable by every tool and service
// endpoint at runtime. The Arch enum survives as the controller
// capability inside Config, which is what it always described.
package dram

import (
	"fmt"
)

// Arch identifies a DRAM architecture variant.
type Arch int

const (
	// DDR3 is a commodity DDR3 device: one subarray of a bank can be
	// accessed at a time, and the subarray structure is invisible to the
	// memory controller.
	DDR3 Arch = iota
	// SALP1 overlaps the precharge of one subarray with the activation of
	// another subarray in the same bank (re-interpreted tRP).
	SALP1
	// SALP2 additionally overlaps the write-recovery latency (tWR) of an
	// active subarray with the activation of another subarray.
	SALP2
	// SALPMASA (Multitude of Activated Subarrays) keeps multiple
	// subarrays activated concurrently; switching to an already-activated
	// subarray costs only a subarray-select.
	SALPMASA
)

// Archs lists all supported architectures in the order used by the
// paper's figures.
var Archs = []Arch{DDR3, SALP1, SALP2, SALPMASA}

// String returns the paper's name for the architecture.
func (a Arch) String() string {
	switch a {
	case DDR3:
		return "DDR3"
	case SALP1:
		return "SALP-1"
	case SALP2:
		return "SALP-2"
	case SALPMASA:
		return "SALP-MASA"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// HasSALP reports whether the architecture exposes subarray-level
// parallelism to the memory controller.
func (a Arch) HasSALP() bool { return a != DDR3 }

// Geometry describes the physical organization of a DRAM system, from
// channel down to column. The DRMap paper (Table II) uses one channel,
// one rank per channel, one chip per rank, 8 banks per chip and - for
// SALP - 8 subarrays per bank.
type Geometry struct {
	Channels  int // independent command/data channels
	Ranks     int // ranks per channel
	Chips     int // chips per rank (accessed in lock-step)
	Banks     int // banks per chip
	Subarrays int // subarrays per bank (1 for logical DDR3 view)
	Rows      int // rows per bank (across all its subarrays)
	// Columns counts burst-aligned column locations per row: the device's
	// byte-wide column addresses grouped BurstLength per burst. A 2 Gb x8
	// die with a 1 KB page has 1024 byte columns = 128 burst locations.
	Columns     int
	ChipBits    int // data pins per chip (x4/x8/x16)
	BurstLength int // beats per column access (BL8 = 8)
}

// RowsPerSubarray returns the number of rows held by one subarray.
func (g Geometry) RowsPerSubarray() int {
	if g.Subarrays <= 0 {
		return g.Rows
	}
	return g.Rows / g.Subarrays
}

// RowBytes returns the bytes stored in one row of one chip.
func (g Geometry) RowBytes() int {
	return g.Columns * g.BurstLength * g.ChipBits / 8
}

// AccessBytes returns the bytes transferred by a single column access
// (one full burst) across all chips of a rank.
func (g Geometry) AccessBytes() int {
	return g.Chips * g.ChipBits * g.BurstLength / 8
}

// ChipBytes returns the capacity of one chip in bytes.
func (g Geometry) ChipBytes() int64 {
	return int64(g.Banks) * int64(g.Rows) * int64(g.RowBytes())
}

// TotalBytes returns the capacity of the whole configured system.
func (g Geometry) TotalBytes() int64 {
	return g.ChipBytes() * int64(g.Chips) * int64(g.Ranks) * int64(g.Channels)
}

// Validate reports a descriptive error for inconsistent geometry.
func (g Geometry) Validate() error {
	switch {
	case g.Channels < 1:
		return fmt.Errorf("dram: geometry needs at least 1 channel, got %d", g.Channels)
	case g.Ranks < 1:
		return fmt.Errorf("dram: geometry needs at least 1 rank per channel, got %d", g.Ranks)
	case g.Chips < 1:
		return fmt.Errorf("dram: geometry needs at least 1 chip per rank, got %d", g.Chips)
	case g.Banks < 1:
		return fmt.Errorf("dram: geometry needs at least 1 bank, got %d", g.Banks)
	case g.Subarrays < 1:
		return fmt.Errorf("dram: geometry needs at least 1 subarray per bank, got %d", g.Subarrays)
	case g.Rows < 1 || g.Columns < 1:
		return fmt.Errorf("dram: geometry needs positive rows/columns, got %d/%d", g.Rows, g.Columns)
	case g.Rows%g.Subarrays != 0:
		return fmt.Errorf("dram: rows (%d) must divide evenly across subarrays (%d)", g.Rows, g.Subarrays)
	case g.ChipBits != 4 && g.ChipBits != 8 && g.ChipBits != 16:
		return fmt.Errorf("dram: chip width must be x4/x8/x16 bits, got x%d", g.ChipBits)
	case g.BurstLength != 4 && g.BurstLength != 8:
		return fmt.Errorf("dram: burst length must be 4 or 8, got %d", g.BurstLength)
	}
	return nil
}

// Address identifies one column-access-sized unit of storage. Rows are
// numbered within the bank (0..Rows-1); the owning subarray is derived
// from the row number.
type Address struct {
	Channel int
	Rank    int
	Bank    int
	Row     int
	Column  int
}

// Subarray returns the subarray that holds the address's row.
func (a Address) Subarray(g Geometry) int {
	rps := g.RowsPerSubarray()
	if rps == 0 {
		return 0
	}
	return a.Row / rps
}

// Valid reports whether the address is inside the geometry.
func (a Address) Valid(g Geometry) bool {
	return a.Channel >= 0 && a.Channel < g.Channels &&
		a.Rank >= 0 && a.Rank < g.Ranks &&
		a.Bank >= 0 && a.Bank < g.Banks &&
		a.Row >= 0 && a.Row < g.Rows &&
		a.Column >= 0 && a.Column < g.Columns
}

// Linear flattens the address into a unique index in
// [0, Channels*Ranks*Banks*Rows*Columns). The flattening order is
// channel-major and column-minor; it is used by tests asserting that
// mapping policies are bijective.
func (a Address) Linear(g Geometry) int64 {
	idx := int64(a.Channel)
	idx = idx*int64(g.Ranks) + int64(a.Rank)
	idx = idx*int64(g.Banks) + int64(a.Bank)
	idx = idx*int64(g.Rows) + int64(a.Row)
	idx = idx*int64(g.Columns) + int64(a.Column)
	return idx
}

// String renders the address in the ch/ra/ba/sa/ro/co form used by the
// paper's Fig. 6 pseudo-code.
func (a Address) String() string {
	return fmt.Sprintf("ch%d.ra%d.ba%d.ro%d.co%d", a.Channel, a.Rank, a.Bank, a.Row, a.Column)
}

// Timing holds JEDEC-style timing parameters in command-clock cycles.
// The zero value is invalid; use a preset from presets.go or fill every
// field. Field names follow the customary DDR3 datasheet names.
type Timing struct {
	TCKNanos float64 // command clock period in nanoseconds

	CL    int // CAS (read) latency
	CWL   int // CAS write latency
	TRCD  int // ACT to internal RD/WR delay
	TRP   int // PRE to ACT delay (same bank/subarray)
	TRAS  int // ACT to PRE minimum
	TRC   int // ACT to ACT, same bank (tRAS + tRP)
	TBL   int // data-burst duration on the bus (BL8 -> 4 clocks)
	TCCD  int // column-to-column delay
	TRTP  int // read to precharge
	TWR   int // write recovery before precharge
	TWTR  int // write-to-read turnaround
	TRRD  int // ACT to ACT, different banks
	TFAW  int // rolling window for four ACTs
	TRFC  int // refresh cycle time
	TREFI int // average refresh interval

	// TSASEL is the subarray-select overhead in MASA when a column
	// access targets an already-activated subarray different from the
	// most recently selected one (Kim et al. estimate a single-cycle
	// designated-bit update).
	TSASEL int
}

// Validate reports a descriptive error for inconsistent timing.
func (t Timing) Validate() error {
	type field struct {
		name string
		v    int
	}
	fields := []field{
		{"CL", t.CL}, {"CWL", t.CWL}, {"tRCD", t.TRCD}, {"tRP", t.TRP},
		{"tRAS", t.TRAS}, {"tRC", t.TRC}, {"tBL", t.TBL}, {"tCCD", t.TCCD},
		{"tRTP", t.TRTP}, {"tWR", t.TWR}, {"tWTR", t.TWTR}, {"tRRD", t.TRRD},
		{"tFAW", t.TFAW}, {"tRFC", t.TRFC}, {"tREFI", t.TREFI},
	}
	for _, f := range fields {
		if f.v <= 0 {
			return fmt.Errorf("dram: timing %s must be positive, got %d", f.name, f.v)
		}
	}
	if t.TCKNanos <= 0 {
		return fmt.Errorf("dram: tCK must be positive, got %g ns", t.TCKNanos)
	}
	if t.TRC < t.TRAS+t.TRP {
		return fmt.Errorf("dram: tRC (%d) must cover tRAS+tRP (%d)", t.TRC, t.TRAS+t.TRP)
	}
	if t.TSASEL < 0 {
		return fmt.Errorf("dram: tSASEL must be non-negative, got %d", t.TSASEL)
	}
	return nil
}

// Seconds converts a cycle count into seconds.
func (t Timing) Seconds(cycles int64) float64 {
	return float64(cycles) * t.TCKNanos * 1e-9
}

// Power holds the electrical parameters of one chip, in the form used
// by the Micron DDR3 power calculator: IDD currents in milliamperes and
// the supply voltage in volts. They drive the VAMPIRE-style energy
// model in package vampire.
type Power struct {
	VDD float64 // supply voltage [V]

	IDD0  float64 // one-bank ACT-PRE current [mA]
	IDD2N float64 // precharge standby [mA]
	IDD2P float64 // precharge power-down [mA]
	IDD3N float64 // active standby [mA]
	IDD3P float64 // active power-down [mA]
	IDD4R float64 // burst read [mA]
	IDD4W float64 // burst write [mA]
	IDD5B float64 // burst refresh [mA]

	// ReadIOPicoJPerBit / WriteIOPicoJPerBit model the off-chip I/O and
	// termination energy per transferred bit.
	ReadIOPicoJPerBit  float64
	WriteIOPicoJPerBit float64

	// SubarrayActFactor scales the activation energy for architectures
	// that keep several subarrays open (MASA keeps more local row
	// buffers latched). 1.0 means no overhead.
	SubarrayActFactor float64

	// SubarrayLatchFraction is the background power of keeping one
	// additional subarray's local row buffer latched open, as a fraction
	// of active-standby power. Only SALP-2 and MASA ever hold more than
	// one subarray of a bank open, so commodity parts leave it at 0.
	SubarrayLatchFraction float64
}

// Validate reports a descriptive error for inconsistent power parameters.
func (p Power) Validate() error {
	if p.VDD <= 0 {
		return fmt.Errorf("dram: VDD must be positive, got %g", p.VDD)
	}
	currents := []struct {
		name string
		v    float64
	}{
		{"IDD0", p.IDD0}, {"IDD2N", p.IDD2N}, {"IDD2P", p.IDD2P},
		{"IDD3N", p.IDD3N}, {"IDD3P", p.IDD3P}, {"IDD4R", p.IDD4R},
		{"IDD4W", p.IDD4W}, {"IDD5B", p.IDD5B},
	}
	for _, c := range currents {
		if c.v <= 0 {
			return fmt.Errorf("dram: %s must be positive, got %g mA", c.name, c.v)
		}
	}
	if p.IDD0 <= p.IDD3N {
		return fmt.Errorf("dram: IDD0 (%g) must exceed IDD3N (%g)", p.IDD0, p.IDD3N)
	}
	if p.IDD4R <= p.IDD3N || p.IDD4W <= p.IDD3N {
		return fmt.Errorf("dram: burst currents must exceed active standby")
	}
	if p.SubarrayActFactor < 1 {
		return fmt.Errorf("dram: SubarrayActFactor must be >= 1, got %g", p.SubarrayActFactor)
	}
	if p.SubarrayLatchFraction < 0 || p.SubarrayLatchFraction > 1 {
		return fmt.Errorf("dram: SubarrayLatchFraction must be in [0,1], got %g", p.SubarrayLatchFraction)
	}
	return nil
}

// Config bundles everything the simulator needs to model one DRAM system.
type Config struct {
	Arch     Arch
	Geometry Geometry
	Timing   Timing
	Power    Power
}

// Validate checks the full configuration for consistency.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if err := c.Power.Validate(); err != nil {
		return err
	}
	if c.Arch.HasSALP() && c.Geometry.Subarrays < 2 {
		return fmt.Errorf("dram: %v requires at least 2 subarrays per bank, got %d",
			c.Arch, c.Geometry.Subarrays)
	}
	return nil
}

// String summarizes the configuration.
func (c Config) String() string {
	g := c.Geometry
	return fmt.Sprintf("%v %dch x %drank x %dchip x %dbank x %dsa (%d rows x %d cols, x%d, BL%d)",
		c.Arch, g.Channels, g.Ranks, g.Chips, g.Banks, g.Subarrays, g.Rows, g.Columns,
		g.ChipBits, g.BurstLength)
}
