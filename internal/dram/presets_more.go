package dram

// Additional commodity presets beyond the paper's DDR3-1600 testbed.
// Sec. V-B argues DRMap generalizes to any DRAM whose organization is
// channel/rank/chip/bank/subarray/row/column; these presets let the
// generality experiments check that claim on DDR4, LPDDR3, LPDDR4 and
// HBM2-class timing and power points. All four are registered as
// backends (backend.go) and documented in EXPERIMENTS.md. Note that Arch describes the *subarray capability* a
// controller can exploit, not the device generation: a commodity DDR4
// part uses the DDR3 (no-SALP) semantics.

// DDR4Config returns a DDR4-2400 (17-17-17) 4Gb x8 part: 16 banks,
// 1 KB page, tCK = 0.833 ns, VDD = 1.2 V. Bank-group timing (tCCD_L vs
// tCCD_S) is flattened to the short value; see EXPERIMENTS.md.
func DDR4Config() Config {
	return Config{
		Arch: DDR3, // commodity: no subarray-level parallelism
		Geometry: Geometry{
			Channels:    1,
			Ranks:       1,
			Chips:       1,
			Banks:       16,
			Subarrays:   8,
			Rows:        32768,
			Columns:     128,
			ChipBits:    8,
			BurstLength: 8,
		},
		Timing: Timing{
			TCKNanos: 0.833,
			CL:       17,
			CWL:      12,
			TRCD:     17,
			TRP:      17,
			TRAS:     39,
			TRC:      56,
			TBL:      4,
			TCCD:     4,
			TRTP:     9,
			TWR:      18,
			TWTR:     9,
			TRRD:     6,
			TFAW:     26,
			TRFC:     312,
			TREFI:    9360,
			TSASEL:   1,
		},
		Power: Power{
			VDD:                1.2,
			IDD0:               58,
			IDD2N:              34,
			IDD2P:              25,
			IDD3N:              44,
			IDD3P:              38,
			IDD4R:              150,
			IDD4W:              145,
			IDD5B:              250,
			ReadIOPicoJPerBit:  2.0,
			WriteIOPicoJPerBit: 2.8,
			SubarrayActFactor:  1.0,
		},
	}
}

// LPDDR3Config returns an LPDDR3-1600 4Gb x16 mobile part: 8 banks,
// 2 KB page, very low standby currents and unterminated I/O.
func LPDDR3Config() Config {
	return Config{
		Arch: DDR3,
		Geometry: Geometry{
			Channels:    1,
			Ranks:       1,
			Chips:       1,
			Banks:       8,
			Subarrays:   8,
			Rows:        32768,
			Columns:     128, // 2 KB page: 128 BL8 bursts x 16 bits
			ChipBits:    16,
			BurstLength: 8,
		},
		Timing: Timing{
			TCKNanos: 1.25,
			CL:       12,
			CWL:      6,
			TRCD:     15,
			TRP:      15,
			TRAS:     34,
			TRC:      49,
			TBL:      4,
			TCCD:     4,
			TRTP:     6,
			TWR:      12,
			TWTR:     6,
			TRRD:     8,
			TFAW:     40,
			TRFC:     168,
			TREFI:    3120,
			TSASEL:   1,
		},
		Power: Power{
			VDD:                1.2,
			IDD0:               30,
			IDD2N:              8,
			IDD2P:              1.5,
			IDD3N:              15,
			IDD3P:              5,
			IDD4R:              200,
			IDD4W:              180,
			IDD5B:              130,
			ReadIOPicoJPerBit:  1.2,
			WriteIOPicoJPerBit: 1.6,
			SubarrayActFactor:  1.0,
		},
	}
}

// LPDDR4Config returns an LPDDR4-3200 8Gb x16 mobile part: 8 banks,
// 2 KB page, tCK = 0.625 ns. LPDDR4's native BL16 burst and dual-rail
// supply (VDD1/VDD2) are flattened to BL8 and a single 1.1 V rail with
// rail-weighted currents; see EXPERIMENTS.md for the caveats.
func LPDDR4Config() Config {
	return Config{
		Arch: DDR3, // commodity: no subarray-level parallelism
		Geometry: Geometry{
			Channels:    1,
			Ranks:       1,
			Chips:       1,
			Banks:       8,
			Subarrays:   8,
			Rows:        65536,
			Columns:     128, // 2 KB page: 128 BL8 bursts x 16 bits
			ChipBits:    16,
			BurstLength: 8,
		},
		Timing: Timing{
			TCKNanos: 0.625,
			CL:       28,
			CWL:      14,
			TRCD:     29,
			TRP:      34,
			TRAS:     68,
			TRC:      102,
			TBL:      4,
			TCCD:     4,
			TRTP:     12,
			TWR:      29,
			TWTR:     16,
			TRRD:     16,
			TFAW:     64,
			TRFC:     448, // 280 ns for an 8 Gb die
			TREFI:    6240,
			TSASEL:   1,
		},
		Power: Power{
			VDD:                1.1,
			IDD0:               65,
			IDD2N:              9,
			IDD2P:              1.8,
			IDD3N:              20,
			IDD3P:              6,
			IDD4R:              230,
			IDD4W:              210,
			IDD5B:              140,
			ReadIOPicoJPerBit:  0.9,
			WriteIOPicoJPerBit: 1.2,
			SubarrayActFactor:  1.0,
		},
	}
}

// HBM2Config returns one HBM2 pseudo-channel at 2.0 Gb/s/pin, modeled
// as eight lock-stepped x8 slices (64 data bits, BL4, 32 B per column
// access): 16 banks, 2 KB row across the slices, very cheap TSV I/O.
// Bank groups are flattened to the short column timing; see
// EXPERIMENTS.md.
func HBM2Config() Config {
	return Config{
		Arch: DDR3, // commodity semantics: no subarray-level parallelism
		Geometry: Geometry{
			Channels:    1,
			Ranks:       1,
			Chips:       8,
			Banks:       16,
			Subarrays:   8,
			Rows:        16384,
			Columns:     64, // 256 B per slice x 8 slices = 2 KB row
			ChipBits:    8,
			BurstLength: 4,
		},
		Timing: Timing{
			TCKNanos: 1.0,
			CL:       14,
			CWL:      7,
			TRCD:     14,
			TRP:      14,
			TRAS:     33,
			TRC:      47,
			TBL:      2, // BL4 occupies 2 command clocks (double data rate)
			TCCD:     2,
			TRTP:     4,
			TWR:      16,
			TWTR:     8,
			TRRD:     4,
			TFAW:     16,
			TRFC:     260,
			TREFI:    3900,
			TSASEL:   1,
		},
		Power: Power{
			VDD:                1.2,
			IDD0:               50,
			IDD2N:              20,
			IDD2P:              8,
			IDD3N:              30,
			IDD3P:              22,
			IDD4R:              110,
			IDD4W:              105,
			IDD5B:              160,
			ReadIOPicoJPerBit:  0.15, // TSV interface: no off-package I/O
			WriteIOPicoJPerBit: 0.15,
			SubarrayActFactor:  1.0,
		},
	}
}

// WithSALP converts a commodity configuration into the given
// subarray-parallel variant, applying the same latch/activation energy
// overheads as the paper's SALP presets. It panics on DDR3 (use the
// base config directly).
func WithSALP(base Config, arch Arch) Config {
	if !arch.HasSALP() {
		panic("dram: WithSALP requires a SALP architecture")
	}
	cfg := base
	cfg.Arch = arch
	switch arch {
	case SALP2:
		cfg.Power.SubarrayLatchFraction = 0.05
	case SALPMASA:
		cfg.Power.SubarrayActFactor *= 1.05
		cfg.Power.SubarrayLatchFraction = 0.05
	}
	return cfg
}
