package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestArchString(t *testing.T) {
	cases := map[Arch]string{
		DDR3:     "DDR3",
		SALP1:    "SALP-1",
		SALP2:    "SALP-2",
		SALPMASA: "SALP-MASA",
		Arch(42): "Arch(42)",
	}
	for arch, want := range cases {
		if got := arch.String(); got != want {
			t.Errorf("Arch(%d).String() = %q, want %q", int(arch), got, want)
		}
	}
}

func TestArchHasSALP(t *testing.T) {
	if DDR3.HasSALP() {
		t.Error("DDR3 must not report SALP support")
	}
	for _, a := range []Arch{SALP1, SALP2, SALPMASA} {
		if !a.HasSALP() {
			t.Errorf("%v must report SALP support", a)
		}
	}
}

func TestGeometry2GbCapacity(t *testing.T) {
	g := DDR3Config().Geometry
	const twoGigabit = 2 * 1024 * 1024 * 1024 / 8
	if got := g.ChipBytes(); got != twoGigabit {
		t.Errorf("chip capacity = %d bytes, want %d (2 Gb)", got, twoGigabit)
	}
	if got := g.TotalBytes(); got != twoGigabit {
		t.Errorf("system capacity = %d bytes, want %d (one chip)", got, twoGigabit)
	}
}

func TestGeometryDerived(t *testing.T) {
	g := DDR3Config().Geometry
	if got := g.RowsPerSubarray(); got != 4096 {
		t.Errorf("rows per subarray = %d, want 4096", got)
	}
	if got := g.RowBytes(); got != 1024 {
		t.Errorf("row bytes = %d, want 1024 (1 KB page)", got)
	}
	if got := g.AccessBytes(); got != 8 {
		t.Errorf("access bytes = %d, want 8 (x8 BL8, one chip)", got)
	}
}

func TestGeometryValidateRejectsBadShapes(t *testing.T) {
	base := DDR3Config().Geometry
	mutations := []struct {
		name string
		mut  func(*Geometry)
	}{
		{"zero channels", func(g *Geometry) { g.Channels = 0 }},
		{"zero ranks", func(g *Geometry) { g.Ranks = 0 }},
		{"zero chips", func(g *Geometry) { g.Chips = 0 }},
		{"zero banks", func(g *Geometry) { g.Banks = 0 }},
		{"zero subarrays", func(g *Geometry) { g.Subarrays = 0 }},
		{"zero rows", func(g *Geometry) { g.Rows = 0 }},
		{"zero columns", func(g *Geometry) { g.Columns = 0 }},
		{"uneven subarray split", func(g *Geometry) { g.Subarrays = 7 }},
		{"bad chip width", func(g *Geometry) { g.ChipBits = 9 }},
		{"bad burst length", func(g *Geometry) { g.BurstLength = 5 }},
	}
	for _, m := range mutations {
		g := base
		m.mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid geometry %+v", m.name, g)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("preset geometry rejected: %v", err)
	}
}

func TestTimingValidate(t *testing.T) {
	tm := timingDDR31600()
	if err := tm.Validate(); err != nil {
		t.Fatalf("preset timing rejected: %v", err)
	}
	bad := tm
	bad.TRC = tm.TRAS + tm.TRP - 1
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted tRC < tRAS+tRP")
	}
	bad = tm
	bad.CL = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted CL = 0")
	}
	bad = tm
	bad.TCKNanos = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted tCK = 0")
	}
	bad = tm
	bad.TSASEL = -1
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted negative tSASEL")
	}
}

func TestTimingSeconds(t *testing.T) {
	tm := timingDDR31600()
	if got := tm.Seconds(800_000_000); got < 0.999 || got > 1.001 {
		t.Errorf("800M cycles at 1.25ns = %g s, want 1 s", got)
	}
	if got := tm.Seconds(0); got != 0 {
		t.Errorf("0 cycles = %g s, want 0", got)
	}
}

func TestPowerValidate(t *testing.T) {
	p := power2GbX8()
	if err := p.Validate(); err != nil {
		t.Fatalf("preset power rejected: %v", err)
	}
	bad := p
	bad.IDD0 = p.IDD3N
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted IDD0 <= IDD3N")
	}
	bad = p
	bad.VDD = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted VDD = 0")
	}
	bad = p
	bad.SubarrayActFactor = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted SubarrayActFactor < 1")
	}
	bad = p
	bad.IDD4R = p.IDD3N
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted IDD4R <= IDD3N")
	}
}

func TestPresetConfigsValidate(t *testing.T) {
	for _, cfg := range AllConfigs() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v preset invalid: %v", cfg.Arch, err)
		}
	}
}

func TestConfigForCoversAllArchs(t *testing.T) {
	for _, a := range Archs {
		cfg := ConfigFor(a)
		if cfg.Arch != a {
			t.Errorf("ConfigFor(%v).Arch = %v", a, cfg.Arch)
		}
	}
}

func TestConfigForPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ConfigFor(unknown) did not panic")
		}
	}()
	ConfigFor(Arch(99))
}

func TestSALPConfigRequiresSubarrays(t *testing.T) {
	cfg := SALP1Config()
	cfg.Geometry.Subarrays = 1
	if err := cfg.Validate(); err == nil {
		t.Error("SALP-1 with 1 subarray must be rejected")
	}
}

func TestMASAActFactorExceedsDDR3(t *testing.T) {
	if SALPMASAConfig().Power.SubarrayActFactor <= DDR3Config().Power.SubarrayActFactor {
		t.Error("MASA should charge extra activation energy relative to DDR3")
	}
}

func TestAddressSubarrayDerivation(t *testing.T) {
	g := DDR3Config().Geometry // 4096 rows per subarray
	cases := []struct {
		row, want int
	}{
		{0, 0}, {4095, 0}, {4096, 1}, {8191, 1}, {32767, 7},
	}
	for _, c := range cases {
		a := Address{Row: c.row}
		if got := a.Subarray(g); got != c.want {
			t.Errorf("row %d -> subarray %d, want %d", c.row, got, c.want)
		}
	}
}

func TestAddressValid(t *testing.T) {
	g := DDR3Config().Geometry
	good := Address{Channel: 0, Rank: 0, Bank: 7, Row: 32767, Column: 127}
	if !good.Valid(g) {
		t.Errorf("address %v should be valid", good)
	}
	bads := []Address{
		{Bank: 8}, {Row: 32768}, {Column: 128}, {Channel: 1}, {Rank: 1},
		{Bank: -1}, {Row: -1}, {Column: -1},
	}
	for _, b := range bads {
		if b.Valid(g) {
			t.Errorf("address %v should be invalid", b)
		}
	}
}

func TestAddressLinearIsInjective(t *testing.T) {
	g := Geometry{
		Channels: 2, Ranks: 2, Chips: 1, Banks: 4, Subarrays: 2,
		Rows: 8, Columns: 4, ChipBits: 8, BurstLength: 8,
	}
	seen := make(map[int64]Address)
	for ch := 0; ch < g.Channels; ch++ {
		for ra := 0; ra < g.Ranks; ra++ {
			for ba := 0; ba < g.Banks; ba++ {
				for ro := 0; ro < g.Rows; ro++ {
					for co := 0; co < g.Columns; co++ {
						a := Address{ch, ra, ba, ro, co}
						l := a.Linear(g)
						if prev, dup := seen[l]; dup {
							t.Fatalf("Linear collision: %v and %v both -> %d", prev, a, l)
						}
						seen[l] = a
					}
				}
			}
		}
	}
	want := g.Channels * g.Ranks * g.Banks * g.Rows * g.Columns
	if len(seen) != want {
		t.Fatalf("enumerated %d distinct linears, want %d", len(seen), want)
	}
}

func TestAddressLinearRoundTripProperty(t *testing.T) {
	g := DDR3Config().Geometry
	f := func(bank, row, col uint16) bool {
		a := Address{
			Bank:   int(bank) % g.Banks,
			Row:    int(row) % g.Rows,
			Column: int(col) % g.Columns,
		}
		l := a.Linear(g)
		// Invert the flattening manually.
		co := l % int64(g.Columns)
		l /= int64(g.Columns)
		ro := l % int64(g.Rows)
		l /= int64(g.Rows)
		ba := l % int64(g.Banks)
		return int(co) == a.Column && int(ro) == a.Row && int(ba) == a.Bank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestAddressString(t *testing.T) {
	a := Address{Channel: 1, Rank: 0, Bank: 3, Row: 42, Column: 7}
	if got, want := a.String(), "ch1.ra0.ba3.ro42.co7"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestConfigString(t *testing.T) {
	s := DDR3Config().String()
	if s == "" {
		t.Fatal("empty config string")
	}
	for _, sub := range []string{"DDR3", "8bank", "x8", "BL8"} {
		if !containsStr(s, sub) {
			t.Errorf("config string %q missing %q", s, sub)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
