package dram

import "testing"

// TestRegistryInvariants pins the contract every consumer (CLI, service,
// reports) relies on: IDs are unique and flag-safe, every registered
// configuration validates, and Lookup round-trips Backends().
func TestRegistryInvariants(t *testing.T) {
	backends := Backends()
	if len(backends) < 6 {
		t.Fatalf("registry has %d backends, want >= 6 (paper four + generality presets)", len(backends))
	}
	seen := map[string]bool{}
	for _, b := range backends {
		if !validBackendID(b.ID) {
			t.Errorf("backend ID %q is not flag-safe", b.ID)
		}
		if seen[b.ID] {
			t.Errorf("duplicate backend ID %q", b.ID)
		}
		seen[b.ID] = true
		if b.Name == "" {
			t.Errorf("backend %q has no name", b.ID)
		}
		if err := b.Config.Validate(); err != nil {
			t.Errorf("backend %q config invalid: %v", b.ID, err)
		}
		got, ok := Lookup(b.ID)
		if !ok {
			t.Errorf("Lookup(%q) missed a listed backend", b.ID)
			continue
		}
		if got.ID != b.ID || got.Name != b.Name || got.Config != b.Config {
			t.Errorf("Lookup(%q) does not round-trip Backends()", b.ID)
		}
	}
	if len(BackendIDs()) != len(backends) {
		t.Errorf("BackendIDs lists %d IDs for %d backends", len(BackendIDs()), len(backends))
	}
}

// TestPaperBackendsMatchEnumPresets: the registry's paper entries are
// the same configurations (and the same labels) the Arch enum served,
// in figure order, so registry-driven code is bit-for-bit compatible.
func TestPaperBackendsMatchEnumPresets(t *testing.T) {
	paper := PaperBackends()
	if len(paper) != len(Archs) {
		t.Fatalf("got %d paper backends, want %d", len(paper), len(Archs))
	}
	for i, b := range paper {
		arch := Archs[i]
		if b.Config != ConfigFor(arch) {
			t.Errorf("paper backend %q config differs from ConfigFor(%v)", b.ID, arch)
		}
		if b.Name != arch.String() {
			t.Errorf("paper backend %q named %q, want %q", b.ID, b.Name, arch.String())
		}
		if b.Config.Arch != arch {
			t.Errorf("paper backend %q has capability %v, want %v", b.ID, b.Config.Arch, arch)
		}
	}
}

// TestGeneralityBackendsAreCommodity: the non-SALP generality presets
// must not claim subarray capability - Arch is a controller capability,
// not a device generation.
func TestGeneralityBackendsAreCommodity(t *testing.T) {
	for _, id := range []string{"ddr4", "lpddr3", "lpddr4", "hbm2"} {
		b, ok := Lookup(id)
		if !ok {
			t.Errorf("generality backend %q not registered", id)
			continue
		}
		if b.Config.Arch.HasSALP() {
			t.Errorf("backend %q claims SALP capability", id)
		}
	}
}

func TestRegisterRejectsBadBackends(t *testing.T) {
	if err := Register(Backend{ID: "", Config: DDR3Config()}); err == nil {
		t.Error("Register accepted an empty ID")
	}
	if err := Register(Backend{ID: "DDR3!", Config: DDR3Config()}); err == nil {
		t.Error("Register accepted a non-flag-safe ID")
	}
	if err := Register(Backend{ID: "ddr3", Config: DDR3Config()}); err == nil {
		t.Error("Register accepted a duplicate ID")
	}
	if err := Register(Backend{ID: "ddr3-dup-name-test", Name: "DDR3", Config: DDR3Config()}); err == nil {
		t.Error("Register accepted a duplicate display name")
	}
	bad := DDR3Config()
	bad.Geometry.Rows = 0
	if err := Register(Backend{ID: "broken-test-backend", Config: bad}); err == nil {
		t.Error("Register accepted an invalid config")
	}
	if _, ok := Lookup("broken-test-backend"); ok {
		t.Error("failed registration leaked into the registry")
	}
}

func TestRegisterAndLookupCustomBackend(t *testing.T) {
	cfg := DDR3Config()
	cfg.Geometry.Channels = 2
	// The registry is process-global, so stay idempotent under
	// `go test -count=N`: register only on the first run.
	if _, registered := Lookup("ddr3-2ch-test"); !registered {
		if err := Register(Backend{ID: "ddr3-2ch-test", Config: cfg}); err != nil {
			t.Fatalf("Register: %v", err)
		}
	}
	b, ok := Lookup("ddr3-2ch-test")
	if !ok {
		t.Fatal("custom backend not found after Register")
	}
	if b.Name != "ddr3-2ch-test" {
		t.Errorf("empty Name did not default to ID: %q", b.Name)
	}
	if b.Config.Geometry.Channels != 2 {
		t.Errorf("custom backend config not preserved: %+v", b.Config.Geometry)
	}
	found := false
	for _, id := range BackendIDs() {
		if id == "ddr3-2ch-test" {
			found = true
		}
	}
	if !found {
		t.Errorf("custom backend missing from BackendIDs: %v", BackendIDs())
	}
}

func TestLPDDR4ConfigValid(t *testing.T) {
	cfg := LPDDR4Config()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("LPDDR4 preset invalid: %v", err)
	}
	// 8 Gb x16 = 1 GiB.
	if got := cfg.Geometry.ChipBytes(); got != 1024*1024*1024 {
		t.Errorf("LPDDR4 chip = %d bytes, want 1 GiB", got)
	}
	if cfg.Power.VDD >= LPDDR3Config().Power.VDD+0.2 {
		t.Error("LPDDR4 core rail should not exceed LPDDR3's")
	}
}

func TestHBM2ConfigValid(t *testing.T) {
	cfg := HBM2Config()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("HBM2 preset invalid: %v", err)
	}
	// Pseudo-channel: 64 data bits, BL4 -> 32 bytes per column access.
	if got := cfg.Geometry.AccessBytes(); got != 32 {
		t.Errorf("HBM2 access = %d bytes, want 32", got)
	}
	// TSV I/O must undercut every off-package preset.
	if cfg.Power.ReadIOPicoJPerBit >= LPDDR3Config().Power.ReadIOPicoJPerBit {
		t.Error("HBM2 I/O energy should undercut LPDDR3's")
	}
}

// TestBackendsSortedByID: registry listings are deterministic - sorted
// by ID regardless of registration or map iteration order - so flag
// help, GET /api/v1/backends and characterize-all output never shuffle.
func TestBackendsSortedByID(t *testing.T) {
	backends := Backends()
	ids := BackendIDs()
	if len(ids) != len(backends) {
		t.Fatalf("BackendIDs lists %d IDs for %d backends", len(ids), len(backends))
	}
	for i := range backends {
		if backends[i].ID != ids[i] {
			t.Errorf("Backends()[%d] = %q but BackendIDs()[%d] = %q", i, backends[i].ID, i, ids[i])
		}
		if i > 0 && !(ids[i-1] < ids[i]) {
			t.Errorf("IDs out of order: %q before %q", ids[i-1], ids[i])
		}
	}
}
