package dram

import "testing"

// TestOnRegisterHook pins the subscription contract: the hook fires
// once per successful registration, after the backend is visible to
// Lookup, never for rejected registrations, and not after cancel.
func TestOnRegisterHook(t *testing.T) {
	var fired []string
	visible := map[string]bool{}
	cancel := OnRegister(func(b Backend) {
		fired = append(fired, b.ID)
		// The hook runs outside the registry lock, so it may read the
		// registry - and must see the backend it was told about.
		_, visible[b.ID] = Lookup(b.ID)
	})

	const id = "ddr3-hook-test"
	if _, registered := Lookup(id); registered {
		cancel()
		// The registry is process-global; under -count=N later runs find
		// the backend pre-registered.
		t.Skip("backend already registered in this process")
	}
	cfg := DDR3Config()
	cfg.Geometry.Channels = 2
	if err := Register(Backend{ID: id, Config: cfg}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if len(fired) != 1 || fired[0] != id {
		t.Fatalf("hook fired for %v, want [%s]", fired, id)
	}
	if !visible[id] {
		t.Error("hook ran before the backend was visible to Lookup")
	}

	// Rejected registrations (duplicate ID) must not fire.
	if err := Register(Backend{ID: id, Config: cfg}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if len(fired) != 1 {
		t.Errorf("hook fired on a rejected registration: %v", fired)
	}

	cancel()
	cfg2 := DDR3Config()
	cfg2.Geometry.Channels = 4
	if err := Register(Backend{ID: id + "-2", Config: cfg2}); err != nil {
		t.Fatalf("Register after cancel: %v", err)
	}
	if len(fired) != 1 {
		t.Errorf("hook fired after cancel: %v", fired)
	}
}
