package dram

import (
	"fmt"
	"sort"
	"sync"
)

// Backend is a registered DRAM system: a stable string ID (the key used
// by CLI flags, HTTP request bodies and cache keys), a human-readable
// name (used by report renderers) and the full device configuration.
//
// The backend registry replaces the closed Arch enum as the identity of
// a DRAM system. Arch survives inside Config as what it always actually
// was: the subarray capability a memory controller can exploit, not the
// device generation. Any code that needs "which DRAM is this?" should
// carry a Backend; code that needs "can the controller overlap subarray
// operations?" keeps reading Config.Arch.
type Backend struct {
	ID     string // registry key, e.g. "ddr3", "salp1", "ddr4"
	Name   string // display name, e.g. "DDR3", "DDR4-2400"
	Config Config
}

// Label returns the display name, falling back to the ID.
func (b Backend) Label() string {
	if b.Name != "" {
		return b.Name
	}
	return b.ID
}

// LabelFor names a DRAM system that may or may not be registered: the
// backend's display name when b is a registry entry, else the
// capability arch. Profile, DSEResult and Fig9Point all label through
// this one helper so the fallback policy cannot drift.
func LabelFor(b Backend, a Arch) string {
	if b.ID != "" || b.Name != "" {
		return b.Label()
	}
	return a.String()
}

// registry is the package-level backend registry. Reads vastly outnumber
// writes (registration normally happens once, at init), so an RWMutex
// keeps concurrent HTTP handlers cheap.
var registry = struct {
	sync.RWMutex
	byID   map[string]Backend
	byName map[string]string // display name -> owning ID
	// hooks are the OnRegister subscribers, keyed so each can cancel.
	hooks    map[int]func(Backend)
	nextHook int
}{byID: make(map[string]Backend), byName: make(map[string]string), hooks: make(map[int]func(Backend))}

// OnRegister subscribes fn to successful backend registrations: fn runs
// synchronously after each Register returns the backend to the registry
// (outside the registry lock, so it may call Lookup/Backends freely).
// Registrations that happened before the subscription are not replayed;
// subscribers that need the full set should walk Backends() first. The
// returned cancel function removes the subscription - long-lived
// subscribers tied to a context (e.g. the serving daemon's plan warmer)
// must cancel on shutdown or they leak.
func OnRegister(fn func(Backend)) (cancel func()) {
	registry.Lock()
	id := registry.nextHook
	registry.nextHook++
	registry.hooks[id] = fn
	registry.Unlock()
	return func() {
		registry.Lock()
		delete(registry.hooks, id)
		registry.Unlock()
	}
}

// validBackendID reports whether an ID is usable as a flag value, URL
// fragment and cache-key component: non-empty lowercase letters, digits,
// '-' and '_'.
func validBackendID(id string) bool {
	if id == "" {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= '0' && r <= '9':
		case r == '-' || r == '_':
		default:
			return false
		}
	}
	return true
}

// Register adds a backend to the registry. The ID must be new and
// flag-safe (lowercase letters, digits, '-', '_'), the display name
// must be unique (reports select series columns by label), and the
// configuration must validate; an empty Name defaults to the ID.
func Register(b Backend) error {
	if !validBackendID(b.ID) {
		return fmt.Errorf("dram: backend ID %q must be non-empty lowercase [a-z0-9_-]", b.ID)
	}
	if b.Name == "" {
		b.Name = b.ID
	}
	if err := b.Config.Validate(); err != nil {
		return fmt.Errorf("dram: backend %q: %w", b.ID, err)
	}
	registry.Lock()
	if _, dup := registry.byID[b.ID]; dup {
		registry.Unlock()
		return fmt.Errorf("dram: backend %q already registered", b.ID)
	}
	if owner, dup := registry.byName[b.Name]; dup {
		registry.Unlock()
		return fmt.Errorf("dram: backend name %q already taken by %q", b.Name, owner)
	}
	registry.byID[b.ID] = b
	registry.byName[b.Name] = b.ID
	hooks := make([]func(Backend), 0, len(registry.hooks))
	for _, fn := range registry.hooks {
		hooks = append(hooks, fn)
	}
	registry.Unlock()
	for _, fn := range hooks {
		fn(b)
	}
	return nil
}

// MustRegister is Register for init-time seeding; it panics on error.
func MustRegister(b Backend) {
	if err := Register(b); err != nil {
		panic(err)
	}
}

// Lookup returns the backend registered under id.
func Lookup(id string) (Backend, bool) {
	registry.RLock()
	defer registry.RUnlock()
	b, ok := registry.byID[id]
	return b, ok
}

// Backends returns every registered backend sorted by ID, so registry
// listings (flag help, GET /api/v1/backends, characterize-all output)
// are deterministic regardless of registration or map iteration order.
// PaperBackends serves the figure-ordered paper set.
func Backends() []Backend {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Backend, 0, len(registry.byID))
	for _, b := range registry.byID {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// BackendIDs returns every registered ID sorted lexicographically.
func BackendIDs() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.byID))
	for id := range registry.byID {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// paperBackendIDs keys the four architectures evaluated by the paper,
// in the order of its figures.
var paperBackendIDs = [...]string{"ddr3", "salp1", "salp2", "masa"}

// PaperBackends returns the four paper architectures in figure order.
// The paper's figures (Fig. 1, Fig. 9, the headline tables) are defined
// over exactly this set; the full registry is for the generality
// experiments and the serving layer.
func PaperBackends() []Backend {
	out := make([]Backend, 0, len(paperBackendIDs))
	for _, id := range paperBackendIDs {
		b, ok := Lookup(id)
		if !ok {
			panic("dram: paper backend " + id + " not registered")
		}
		out = append(out, b)
	}
	return out
}

// init seeds the registry: the paper's four architectures (Table II
// testbed) and the generality presets of presets_more.go. Paper backend
// names match Arch.String() so labels derived from the registry render
// identically to the pre-registry enum labels.
func init() {
	MustRegister(Backend{ID: "ddr3", Name: "DDR3", Config: DDR3Config()})
	MustRegister(Backend{ID: "salp1", Name: "SALP-1", Config: SALP1Config()})
	MustRegister(Backend{ID: "salp2", Name: "SALP-2", Config: SALP2Config()})
	MustRegister(Backend{ID: "masa", Name: "SALP-MASA", Config: SALPMASAConfig()})
	MustRegister(Backend{ID: "ddr4", Name: "DDR4-2400", Config: DDR4Config()})
	MustRegister(Backend{ID: "lpddr3", Name: "LPDDR3-1600", Config: LPDDR3Config()})
	MustRegister(Backend{ID: "lpddr4", Name: "LPDDR4-3200", Config: LPDDR4Config()})
	MustRegister(Backend{ID: "hbm2", Name: "HBM2-PC", Config: HBM2Config()})
}
