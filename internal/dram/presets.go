package dram

// Presets for the configurations evaluated in the DRMap paper (Table II):
// DDR3-1600 2Gb x8 with 8 banks per chip, and SALP variants of the same
// device with 8 subarrays per bank. Timing values are DDR3-1600K
// (11-11-11) in 800 MHz command-clock cycles (tCK = 1.25 ns); power
// values are datasheet-typical for a Micron MT41J256M8-class die.

// geometry2GbX8 is the 2 Gb x8 die used throughout the paper: 8 banks x
// 32768 rows x 1 KB page (1024 byte columns = 128 BL8 burst locations)
// = 2 Gbit per chip; one chip per rank, one rank, one channel.
func geometry2GbX8(subarrays int) Geometry {
	return Geometry{
		Channels:    1,
		Ranks:       1,
		Chips:       1,
		Banks:       8,
		Subarrays:   subarrays,
		Rows:        32768,
		Columns:     128,
		ChipBits:    8,
		BurstLength: 8,
	}
}

// timingDDR31600 is DDR3-1600K (11-11-11) timing at tCK = 1.25 ns.
func timingDDR31600() Timing {
	return Timing{
		TCKNanos: 1.25,
		CL:       11,
		CWL:      8,
		TRCD:     11,
		TRP:      11,
		TRAS:     28,
		TRC:      39,
		TBL:      4, // BL8 occupies 4 command clocks (double data rate)
		TCCD:     4,
		TRTP:     6,
		TWR:      12,
		TWTR:     6,
		TRRD:     5,
		TFAW:     24,
		TRFC:     128,  // 160 ns for a 2 Gb die
		TREFI:    6240, // 7.8 us
		TSASEL:   1,
	}
}

// power2GbX8 holds datasheet-typical IDD values for a 2 Gb x8
// DDR3-1600 die at VDD = 1.5 V.
func power2GbX8() Power {
	return Power{
		VDD:                1.5,
		IDD0:               75,
		IDD2N:              23,
		IDD2P:              10,
		IDD3N:              38,
		IDD3P:              30,
		IDD4R:              135,
		IDD4W:              130,
		IDD5B:              190,
		ReadIOPicoJPerBit:  2.5,
		WriteIOPicoJPerBit: 3.5,
		SubarrayActFactor:  1.0,
	}
}

// DDR3Config returns the paper's commodity DDR3-1600 2Gb x8 system.
// The physical die has subarrays, but commodity DDR3 cannot exploit
// them; the controller still needs the subarray geometry so that
// mapping policies can place data subarray-consciously.
func DDR3Config() Config {
	return Config{
		Arch:     DDR3,
		Geometry: geometry2GbX8(8),
		Timing:   timingDDR31600(),
		Power:    power2GbX8(),
	}
}

// SALP1Config returns the SALP-1 variant: precharge/activate overlap
// across subarrays of the same bank.
func SALP1Config() Config {
	return Config{
		Arch:     SALP1,
		Geometry: geometry2GbX8(8),
		Timing:   timingDDR31600(),
		Power:    power2GbX8(),
	}
}

// SALP2Config returns the SALP-2 variant: SALP-1 plus write-recovery
// overlap across subarrays. Its row-address latches let two subarrays
// of a bank stay open, which costs a little latch background power.
func SALP2Config() Config {
	c := Config{
		Arch:     SALP2,
		Geometry: geometry2GbX8(8),
		Timing:   timingDDR31600(),
		Power:    power2GbX8(),
	}
	c.Power.SubarrayLatchFraction = 0.05
	return c
}

// SALPMASAConfig returns the MASA variant: multiple subarrays of a bank
// may be activated concurrently. Keeping several local row buffers
// latched costs a little extra activation energy (Kim et al. estimate
// the designated-bit circuitry overhead to be small; we charge 5%).
func SALPMASAConfig() Config {
	c := Config{
		Arch:     SALPMASA,
		Geometry: geometry2GbX8(8),
		Timing:   timingDDR31600(),
		Power:    power2GbX8(),
	}
	c.Power.SubarrayActFactor = 1.05
	c.Power.SubarrayLatchFraction = 0.05
	return c
}

// ConfigFor returns the preset for the given architecture.
func ConfigFor(a Arch) Config {
	switch a {
	case DDR3:
		return DDR3Config()
	case SALP1:
		return SALP1Config()
	case SALP2:
		return SALP2Config()
	case SALPMASA:
		return SALPMASAConfig()
	default:
		panic("dram: unknown architecture")
	}
}

// AllConfigs returns presets for every architecture in paper order.
func AllConfigs() []Config {
	cfgs := make([]Config, 0, len(Archs))
	for _, a := range Archs {
		cfgs = append(cfgs, ConfigFor(a))
	}
	return cfgs
}
