package core

import (
	"math"
	"testing"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/profile"
	"drmap/internal/tiling"
)

// Shared fixtures: characterization is deterministic and moderately
// expensive, so tests share one profile set and one evaluator set.
var (
	testProfiles   []*profile.Profile
	testEvaluators []*Evaluator
)

func evaluators(t *testing.T) []*Evaluator {
	t.Helper()
	if testEvaluators != nil {
		return testEvaluators
	}
	ps, err := profile.CharacterizePaper()
	if err != nil {
		t.Fatalf("CharacterizePaper: %v", err)
	}
	testProfiles = ps
	for _, p := range ps {
		ev, err := NewEvaluator(p, accel.TableII(), 1)
		if err != nil {
			t.Fatalf("NewEvaluator(%v): %v", p.Arch, err)
		}
		testEvaluators = append(testEvaluators, ev)
	}
	return testEvaluators
}

func evaluatorFor(t *testing.T, arch dram.Arch) *Evaluator {
	t.Helper()
	for _, ev := range evaluators(t) {
		if ev.Arch() == arch {
			return ev
		}
	}
	t.Fatalf("no evaluator for %v", arch)
	return nil
}

func TestNewEvaluatorRejectsBadInputs(t *testing.T) {
	evs := evaluators(t)
	bad := accel.TableII()
	bad.MACRows = 0
	if _, err := NewEvaluator(evs[0].Profile, bad, 1); err == nil {
		t.Error("NewEvaluator accepted invalid accelerator")
	}
	if _, err := NewEvaluator(evs[0].Profile, accel.TableII(), 0); err == nil {
		t.Error("NewEvaluator accepted batch 0")
	}
}

func TestCostsFromProfileOrdering(t *testing.T) {
	ev := evaluatorFor(t, dram.DDR3)
	c := ev.Costs
	if !(c.Hit.Cycles < c.Bank.Cycles && c.Bank.Cycles <= c.Subarray.Cycles && c.Subarray.Cycles <= c.Row.Cycles+1) {
		t.Errorf("DDR3 cost ordering violated: hit=%.1f bank=%.1f sub=%.1f row=%.1f",
			c.Hit.Cycles, c.Bank.Cycles, c.Subarray.Cycles, c.Row.Cycles)
	}
}

func TestPriceArithmetic(t *testing.T) {
	ev := evaluatorFor(t, dram.DDR3)
	counts := mapping.Counts{DifColumn: 10, DifBanks: 2, DifSubarrays: 3, DifRows: 4}
	got := ev.Price(counts)
	want := 10*ev.Costs.Hit.Cycles + 2*ev.Costs.Bank.Cycles + 3*ev.Costs.Subarray.Cycles + 4*ev.Costs.Row.Cycles
	if math.Abs(got.Cycles-want) > 1e-9 {
		t.Errorf("Price cycles = %g, want %g", got.Cycles, want)
	}
	wantE := 10*ev.Costs.Hit.Energy + 2*ev.Costs.Bank.Energy + 3*ev.Costs.Subarray.Energy + 4*ev.Costs.Row.Energy
	if math.Abs(got.Energy-wantE) > 1e-18 {
		t.Errorf("Price energy = %g, want %g", got.Energy, wantE)
	}
}

func TestLayerEDPHelpers(t *testing.T) {
	e := LayerEDP{Cycles: 800, Energy: 2e-9}
	tm := dram.DDR3Config().Timing // 1.25 ns
	if got, want := e.Seconds(tm), 1e-6; math.Abs(got-want) > 1e-12 {
		t.Errorf("Seconds = %g, want %g", got, want)
	}
	if got, want := e.EDP(tm), 2e-15; math.Abs(got-want) > 1e-21 {
		t.Errorf("EDP = %g, want %g", got, want)
	}
	var acc LayerEDP
	acc.Add(e)
	acc.Add(e)
	if acc.Cycles != 1600 || acc.Energy != 4e-9 {
		t.Errorf("Add accumulated %+v", acc)
	}
}

func TestEvaluateLayerPositiveFinite(t *testing.T) {
	l := cnn.AlexNet().Layers[1]
	tl := tiling.Tiling{Th: 9, Tw: 9, Tj: 32, Ti: 16}
	for _, ev := range evaluators(t) {
		for _, s := range tiling.Schedules {
			for _, pol := range mapping.TableI() {
				e := ev.EvaluateLayer(l, tl, s, pol)
				if !(e.Cycles > 0) || !(e.Energy > 0) ||
					math.IsInf(e.Cycles, 0) || math.IsInf(e.Energy, 0) {
					t.Fatalf("%v/%v/%s: degenerate cost %+v", ev.Arch(), s, pol.Name, e)
				}
			}
		}
	}
}

// fig9Cache shares the expensive series across tests, keyed by schedule.
var fig9Cache = map[tiling.Schedule][]Fig9Point{}

func fig9(t *testing.T, s tiling.Schedule) []Fig9Point {
	t.Helper()
	if pts, ok := fig9Cache[s]; ok {
		return pts
	}
	pts, err := Fig9Series(cnn.AlexNet(), s, evaluators(t), mapping.TableI())
	if err != nil {
		t.Fatalf("Fig9Series(%v): %v", s, err)
	}
	fig9Cache[s] = pts
	return pts
}

func TestObservation1DRMapWinsEverywhere(t *testing.T) {
	// Key Observation 1: Mapping-3 (DRMap) achieves the lowest EDP
	// across layers, architectures and scheduling schemes.
	layers := append([]string{}, TotalLayerName)
	for _, l := range cnn.AlexNet().Layers {
		layers = append(layers, l.Name)
	}
	for _, s := range tiling.Schedules {
		pts := fig9(t, s)
		for _, layer := range layers {
			for _, arch := range dram.Archs {
				drmap := SelectPoint(pts, layer, 3, arch)
				if drmap == nil {
					t.Fatalf("missing DRMap point %s/%v/%v", layer, arch, s)
				}
				for id := 1; id <= 6; id++ {
					p := SelectPoint(pts, layer, id, arch)
					if p == nil {
						t.Fatalf("missing point mapping-%d %s/%v/%v", id, layer, arch, s)
					}
					if p.EDP < drmap.EDP*(1-1e-9) {
						t.Errorf("%v/%v/%s: Mapping-%d EDP %.4g beats DRMap %.4g",
							s, arch, layer, id, p.EDP, drmap.EDP)
					}
				}
			}
		}
	}
}

func TestObservation2SubarrayFirstMappingsWorst(t *testing.T) {
	// Key Observation 2: Mapping-2 and Mapping-5 obtain the worst EDPs.
	for _, s := range tiling.Schedules {
		pts := fig9(t, s)
		for _, arch := range dram.Archs {
			worstOf := func(ids ...int) float64 {
				worst := 0.0
				for _, id := range ids {
					if p := SelectPoint(pts, TotalLayerName, id, arch); p != nil && p.EDP > worst {
						worst = p.EDP
					}
				}
				return worst
			}
			subarrayFirst := worstOf(2, 5)
			others := worstOf(1, 3, 4, 6)
			if subarrayFirst < others {
				t.Errorf("%v/%v: subarray-first mappings (%.4g) not the worst (others %.4g)",
					s, arch, subarrayFirst, others)
			}
		}
	}
}

func TestObservation3Mapping1ComparableToDRMap(t *testing.T) {
	// Key Observation 3: Mapping-1 and Mapping-3 obtain comparable EDPs
	// (both prioritize row hits), with Mapping-3 ahead because bank-level
	// parallelism is cheaper than subarray-level parallelism.
	for _, s := range tiling.Schedules {
		pts := fig9(t, s)
		for _, arch := range dram.Archs {
			m1 := SelectPoint(pts, TotalLayerName, 1, arch)
			m3 := SelectPoint(pts, TotalLayerName, 3, arch)
			m2 := SelectPoint(pts, TotalLayerName, 2, arch)
			if m1.EDP < m3.EDP*(1-1e-9) {
				t.Errorf("%v/%v: Mapping-1 (%.4g) beats DRMap (%.4g)", s, arch, m1.EDP, m3.EDP)
			}
			// "Comparable": within a small factor, far below Mapping-2.
			if m1.EDP > m3.EDP*3 {
				t.Errorf("%v/%v: Mapping-1 (%.4g) not comparable to DRMap (%.4g)", s, arch, m1.EDP, m3.EDP)
			}
			if m1.EDP*2 > m2.EDP {
				t.Errorf("%v/%v: Mapping-1 (%.4g) not far below Mapping-2 (%.4g)", s, arch, m1.EDP, m2.EDP)
			}
		}
	}
}

func TestKeyResultDRMapImprovements(t *testing.T) {
	// The paper: DRMap improves EDP up to 96% (DDR3), 94% (SALP-1),
	// 91% (SALP-2), 80% (MASA). Exact numbers depend on the testbed;
	// the reproduction must show the same band (large improvements) and
	// the same monotone ordering DDR3 > SALP-1 > SALP-2 > MASA.
	pts := fig9(t, tiling.AdaptiveReuse)
	imp := map[dram.Arch]float64{}
	for _, arch := range dram.Archs {
		v, err := DRMapImprovement(pts, arch)
		if err != nil {
			t.Fatal(err)
		}
		imp[arch] = v
	}
	if !(imp[dram.DDR3] > 0.85) {
		t.Errorf("DDR3 improvement = %.1f%%, want > 85%%", imp[dram.DDR3]*100)
	}
	if !(imp[dram.SALPMASA] > 0.5 && imp[dram.SALPMASA] < 0.95) {
		t.Errorf("MASA improvement = %.1f%%, want large but smaller than DDR3's", imp[dram.SALPMASA]*100)
	}
	if !(imp[dram.DDR3] >= imp[dram.SALP1] && imp[dram.SALP1] >= imp[dram.SALP2] && imp[dram.SALP2] >= imp[dram.SALPMASA]) {
		t.Errorf("improvement ordering violated: %v", imp)
	}
}

func TestObservation4SALPGains(t *testing.T) {
	// Key Observation 4: under adaptive-reuse, SALP architectures
	// improve EDP a lot for the subarray-first mappings (2, 5) and only
	// marginally for the hit-/bank-first mappings (1, 3, 4).
	pts := fig9(t, tiling.AdaptiveReuse)
	for _, id := range []int{2, 5} {
		masa, err := SALPImprovement(pts, id, dram.SALPMASA)
		if err != nil {
			t.Fatal(err)
		}
		if masa < 0.5 {
			t.Errorf("Mapping-%d: MASA gain %.1f%%, want > 50%%", id, masa*100)
		}
		s1, err := SALPImprovement(pts, id, dram.SALP1)
		if err != nil {
			t.Fatal(err)
		}
		if s1 < 0.1 {
			t.Errorf("Mapping-%d: SALP-1 gain %.1f%%, want > 10%%", id, s1*100)
		}
		if masa <= s1 {
			t.Errorf("Mapping-%d: MASA gain (%.1f%%) not above SALP-1 (%.1f%%)", id, masa*100, s1*100)
		}
	}
	for _, id := range []int{1, 3, 4} {
		for _, arch := range []dram.Arch{dram.SALP1, dram.SALP2, dram.SALPMASA} {
			v, err := SALPImprovement(pts, id, arch)
			if err != nil {
				t.Fatal(err)
			}
			if v < -0.05 || v > 0.25 {
				t.Errorf("Mapping-%d on %v: gain %.1f%%, want marginal (0-25%%)", id, arch, v*100)
			}
		}
	}
}

func TestRunDSEPicksDRMapEverywhere(t *testing.T) {
	// Algorithm 1's output must agree with the paper: the minimum-EDP
	// mapping is Mapping-3 for every layer on every architecture.
	for _, ev := range evaluators(t) {
		res, err := RunDSE(cnn.AlexNet(), ev, tiling.Schedules, mapping.TableI())
		if err != nil {
			t.Fatalf("RunDSE(%v): %v", ev.Arch(), err)
		}
		if len(res.Layers) != 8 {
			t.Fatalf("%v: %d layer results", ev.Arch(), len(res.Layers))
		}
		for _, lr := range res.Layers {
			if lr.Best.Policy.ID != 3 {
				t.Errorf("%v/%s: DSE picked %s, want Mapping-3", ev.Arch(), lr.Layer.Name, lr.Best.Policy.Name)
			}
			if !(lr.MinEDP > 0) || math.IsInf(lr.MinEDP, 0) {
				t.Errorf("%v/%s: degenerate min EDP %g", ev.Arch(), lr.Layer.Name, lr.MinEDP)
			}
		}
		if res.TotalEDP() <= 0 || res.TotalEnergy() <= 0 {
			t.Errorf("%v: degenerate totals EDP=%g E=%g", ev.Arch(), res.TotalEDP(), res.TotalEnergy())
		}
	}
}

func TestRunDSERejectsBadInputs(t *testing.T) {
	ev := evaluatorFor(t, dram.DDR3)
	if _, err := RunDSE(cnn.Network{Name: "empty"}, ev, tiling.Schedules, mapping.TableI()); err == nil {
		t.Error("RunDSE accepted empty network")
	}
	if _, err := RunDSE(cnn.AlexNet(), ev, nil, mapping.TableI()); err == nil {
		t.Error("RunDSE accepted empty schedule list")
	}
	if _, err := RunDSE(cnn.AlexNet(), ev, tiling.Schedules, nil); err == nil {
		t.Error("RunDSE accepted empty policy list")
	}
}

func TestSALPTotalNeverWorseThanDDR3ForDRMap(t *testing.T) {
	// Employing SALP must not hurt DRMap (Sec. V-B: SALP beneficial with
	// an effective mapping).
	pts := fig9(t, tiling.AdaptiveReuse)
	ddr3 := SelectPoint(pts, TotalLayerName, 3, dram.DDR3)
	for _, arch := range []dram.Arch{dram.SALP1, dram.SALP2, dram.SALPMASA} {
		salp := SelectPoint(pts, TotalLayerName, 3, arch)
		if salp.EDP > ddr3.EDP*1.01 {
			t.Errorf("%v: DRMap EDP %.4g worse than DDR3 %.4g", arch, salp.EDP, ddr3.EDP)
		}
	}
}

func TestAdaptiveScheduleNeverWorseThanFixedForDRMap(t *testing.T) {
	adaptive := fig9(t, tiling.AdaptiveReuse)
	for _, s := range []tiling.Schedule{tiling.IfmsReuse, tiling.WghsReuse, tiling.OfmsReuse} {
		fixed := fig9(t, s)
		for _, arch := range dram.Archs {
			a := SelectPoint(adaptive, TotalLayerName, 3, arch)
			f := SelectPoint(fixed, TotalLayerName, 3, arch)
			if a.EDP > f.EDP*1.05 {
				t.Errorf("%v: adaptive EDP %.4g worse than %v %.4g", arch, a.EDP, s, f.EDP)
			}
		}
	}
}

func TestMinOverTilingsReturnsFeasibleBest(t *testing.T) {
	ev := evaluatorFor(t, dram.DDR3)
	l := cnn.AlexNet().Layers[2]
	tilings := tiling.Enumerate(l, ev.Accel)
	best, cost := ev.MinOverTilings(l, tilings, tiling.OfmsReuse, mapping.DRMap())
	if err := best.Validate(l); err != nil {
		t.Fatalf("best tiling invalid: %v", err)
	}
	// No enumerated tiling may beat the reported best.
	tm := ev.Timing()
	for _, tl := range tilings {
		if e := ev.EvaluateLayer(l, tl, tiling.OfmsReuse, mapping.DRMap()); e.EDP(tm) < cost.EDP(tm)*(1-1e-12) {
			t.Fatalf("tiling %v beats reported best", tl)
		}
	}
}

func TestGroupCountsPhysicalSwitch(t *testing.T) {
	ev := evaluatorFor(t, dram.DDR3)
	l := cnn.AlexNet().Layers[1]
	tl := tiling.Tiling{Th: 9, Tw: 9, Tj: 32, Ti: 16}
	groups := tiling.TileGroups(l, tl, tiling.OfmsReuse, 1)
	paper := ev.GroupCounts(mapping.DRMap(), groups)
	evPhys := *ev
	evPhys.UsePhysicalCounts = true
	phys := evPhys.GroupCounts(mapping.DRMap(), groups)
	if paper.Total() != phys.Total() {
		t.Errorf("totals differ: paper %d phys %d", paper.Total(), phys.Total())
	}
	if paper == phys {
		t.Error("physical and paper counts identical; expected boundary reclassification")
	}
}

func TestBurstRoundingChargesPartialBursts(t *testing.T) {
	ev := evaluatorFor(t, dram.DDR3)
	// 9 elements at 1 B/elem on an 8-byte burst = 2 bursts.
	if got := ev.burstsOf(9); got != 2 {
		t.Errorf("burstsOf(9) = %d, want 2", got)
	}
	if got := ev.burstsOf(8); got != 1 {
		t.Errorf("burstsOf(8) = %d, want 1", got)
	}
}

func TestDRMapImprovementErrors(t *testing.T) {
	if _, err := DRMapImprovement(nil, dram.DDR3); err == nil {
		t.Error("DRMapImprovement on empty points succeeded")
	}
	if _, err := SALPImprovement(nil, 3, dram.SALP1); err == nil {
		t.Error("SALPImprovement on empty points succeeded")
	}
}
