package core

import (
	"math"
	"reflect"
	"testing"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/profile"
	"drmap/internal/tiling"
)

// registryEvaluators builds one evaluator per registered backend (the
// paper four plus the generality presets), so the split is exercised
// across every geometry the repo ships.
func registryEvaluators(t *testing.T) []*Evaluator {
	t.Helper()
	var evs []*Evaluator
	for _, b := range dram.Backends() {
		p, err := profile.CharacterizeBackend(b)
		if err != nil {
			t.Fatalf("CharacterizeBackend(%s): %v", b.ID, err)
		}
		ev, err := NewEvaluator(p, accel.TableII(), 1)
		if err != nil {
			t.Fatalf("NewEvaluator(%s): %v", b.ID, err)
		}
		evs = append(evs, ev)
	}
	return evs
}

// directScheduleColumn replicates the pre-split evaluation loop exactly:
// per tiling, per policy, price the combination directly through
// EvaluateLayer (which still computes groups and counts inline) and keep
// the first strict objective minimum. It is the recorded old code path
// the count -> price pipeline must reproduce bit for bit.
func directScheduleColumn(ev *Evaluator, lg LayerGrid, scheduleIdx int, s tiling.Schedule, policies []mapping.Policy, obj Objective) []CellResult {
	tm := ev.Timing()
	out := make([]CellResult, len(policies))
	for pi := range out {
		out[pi] = CellResult{
			LayerIndex:    lg.Index,
			ScheduleIndex: scheduleIdx,
			PolicyIndex:   pi,
			Value:         math.Inf(1),
		}
	}
	for ti, tl := range lg.Tilings {
		for pi, pol := range policies {
			cost := ev.EvaluateLayer(lg.Layer, tl, s, pol)
			if v := obj.Value(cost, tm); v < out[pi].Value {
				out[pi].Value = v
				out[pi].Cost = cost
				out[pi].TilingIndex = ti
			}
		}
	}
	return out
}

// TestCountPriceSplitMatchesDirectScan: the split EvaluateScheduleColumn
// equals the pre-refactor direct scan bit for bit, on every registered
// backend, every schedule and every objective.
func TestCountPriceSplitMatchesDirectScan(t *testing.T) {
	net := cnn.LeNet5()
	policies := mapping.TableI()
	for _, ev := range registryEvaluators(t) {
		grids, err := DSEGrid(net, ev, tiling.Schedules, policies)
		if err != nil {
			t.Fatalf("%s: DSEGrid: %v", ev.Label(), err)
		}
		for _, lg := range grids {
			for si, s := range tiling.Schedules {
				for _, obj := range Objectives {
					got := ev.EvaluateScheduleColumn(lg, si, s, policies, obj)
					want := directScheduleColumn(ev, lg, si, s, policies, obj)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s layer %s schedule %v obj %v: split diverged from direct scan\ngot  %+v\nwant %+v",
							ev.Label(), lg.Layer.Name, s, obj, got, want)
					}
				}
			}
		}
	}
}

// TestCountPriceSplitHonorsEvaluatorFlags: the refinement flags
// (direction-aware write pricing, physical counts) flow through the
// split identically to the direct path.
func TestCountPriceSplitHonorsEvaluatorFlags(t *testing.T) {
	base := evaluatorFor(t, dram.SALPMASA)
	layer := cnn.LeNet5().Layers[1]
	lg := LayerGrid{Layer: layer, Tilings: tiling.Enumerate(layer, base.Accel)}
	policies := mapping.TableI()
	for _, variant := range []struct {
		name            string
		write, physical bool
	}{
		{"write-costs", true, false},
		{"physical-counts", false, true},
		{"both", true, true},
	} {
		ev := *base
		ev.UseWriteCosts = variant.write
		ev.UsePhysicalCounts = variant.physical
		got := ev.EvaluateScheduleColumn(lg, 0, tiling.AdaptiveReuse, policies, MinimizeEDP)
		want := directScheduleColumn(&ev, lg, 0, tiling.AdaptiveReuse, policies, MinimizeEDP)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: split diverged from direct scan", variant.name)
		}
	}
}

// TestPlanRepricesAcrossBackends: a plan counted under one backend,
// priced under another backend with an equal CountKey, equals the other
// backend's own scan - the reuse the service's plan cache relies on.
func TestPlanRepricesAcrossBackends(t *testing.T) {
	evs := evaluators(t) // the paper four: one shared die geometry
	layer := cnn.AlexNet().Layers[0]
	lg := LayerGrid{Layer: layer, Tilings: tiling.Enumerate(layer, evs[0].Accel)}
	policies := mapping.TableI()
	plan := evs[0].CountScheduleColumn(lg, 2, tiling.Schedules[2], policies)
	for _, ev := range evs[1:] {
		if ev.CountKey() != evs[0].CountKey() {
			t.Fatalf("%s: paper backends must share a CountKey", ev.Label())
		}
		for _, obj := range Objectives {
			got := ev.PriceCells(plan, obj)
			want := ev.EvaluateScheduleColumn(lg, 2, tiling.Schedules[2], policies, obj)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s obj %v: repriced foreign plan diverged from own scan", ev.Label(), obj)
			}
		}
	}
}

// TestCountKeySeparatesGeometries: backends whose addressing geometry
// differs must not share a plan key, and the count-relevant flags must
// split the key too.
func TestCountKeySeparatesGeometries(t *testing.T) {
	evs := registryEvaluators(t)
	byID := map[string]*Evaluator{}
	for _, ev := range evs {
		byID[ev.Backend().ID] = ev
	}
	ddr3 := byID["ddr3"]
	for _, id := range []string{"salp1", "salp2", "masa"} {
		if byID[id].CountKey() != ddr3.CountKey() {
			t.Errorf("%s should share ddr3's CountKey (same 2Gb x8 die)", id)
		}
	}
	for _, id := range []string{"ddr4", "lpddr3", "lpddr4", "hbm2"} {
		if byID[id].CountKey() == ddr3.CountKey() {
			t.Errorf("%s must not share ddr3's CountKey (different geometry)", id)
		}
	}
	flagged := *ddr3
	flagged.UsePhysicalCounts = true
	if flagged.CountKey() == ddr3.CountKey() {
		t.Error("UsePhysicalCounts must change the CountKey")
	}
	batched, err := NewEvaluator(ddr3.Profile, ddr3.Accel, 2)
	if err != nil {
		t.Fatal(err)
	}
	if batched.CountKey() == ddr3.CountKey() {
		t.Error("batch size must change the CountKey")
	}
}

// TestMinOverTilingsMatchesDirectScan: the rewritten MinOverTilings
// equals the old per-tiling EvaluateLayer scan bit for bit.
func TestMinOverTilingsMatchesDirectScan(t *testing.T) {
	for _, ev := range registryEvaluators(t) {
		layer := cnn.LeNet5().Layers[1]
		tilings := tiling.Enumerate(layer, ev.Accel)
		for _, s := range tiling.Schedules {
			for _, pol := range mapping.TableI() {
				gotTiling, gotCost := ev.MinOverTilings(layer, tilings, s, pol)
				tm := ev.Timing()
				wantCost := LayerEDP{Cycles: math.Inf(1), Energy: math.Inf(1)}
				bestEDP := math.Inf(1)
				var wantTiling tiling.Tiling
				for _, tl := range tilings {
					e := ev.EvaluateLayer(layer, tl, s, pol)
					if edp := e.EDP(tm); edp < bestEDP {
						bestEDP = edp
						wantCost = e
						wantTiling = tl
					}
				}
				if gotTiling != wantTiling || gotCost != wantCost {
					t.Fatalf("%s %v %s: MinOverTilings diverged: got (%v, %+v), want (%v, %+v)",
						ev.Label(), s, pol.Name, gotTiling, gotCost, wantTiling, wantCost)
				}
			}
		}
	}
}

// TestMinOverTilingsEmpty keeps the no-winner sentinel: an empty tiling
// set returns the zero tiling and an infinite cost.
func TestMinOverTilingsEmpty(t *testing.T) {
	ev := evaluatorFor(t, dram.DDR3)
	tl, cost := ev.MinOverTilings(cnn.LeNet5().Layers[0], nil, tiling.OfmsReuse, mapping.DRMap())
	if tl != (tiling.Tiling{}) {
		t.Errorf("empty search returned tiling %+v", tl)
	}
	if !math.IsInf(cost.Cycles, 1) || !math.IsInf(cost.Energy, 1) {
		t.Errorf("empty search returned finite cost %+v", cost)
	}
}

// TestFig9SeriesMatchesPerEvaluatorScan: the plan-sharing Fig9Series
// equals the pre-refactor series (one direct MinOverTilings-style scan
// per layer x policy x evaluator) bit for bit, across the full registry
// - several distinct geometries plus the shared paper die.
func TestFig9SeriesMatchesPerEvaluatorScan(t *testing.T) {
	evs := registryEvaluators(t)
	net := cnn.LeNet5()
	policies := mapping.TableI()
	s := tiling.AdaptiveReuse
	got, err := Fig9Series(net, s, evs, policies)
	if err != nil {
		t.Fatalf("Fig9Series: %v", err)
	}

	// The recorded old algorithm, including its totals bookkeeping.
	var want []Fig9Point
	type key struct {
		pol     string
		backend string
		arch    dram.Arch
	}
	totals := make(map[key]*Fig9Point)
	for _, layer := range net.Layers {
		tilings := tiling.Enumerate(layer, evs[0].Accel)
		for _, pol := range policies {
			for _, ev := range evs {
				tm := ev.Timing()
				cost := LayerEDP{Cycles: math.Inf(1), Energy: math.Inf(1)}
				bestEDP := math.Inf(1)
				for _, tl := range tilings {
					e := ev.EvaluateLayer(layer, tl, s, pol)
					if edp := e.EDP(tm); edp < bestEDP {
						bestEDP = edp
						cost = e
					}
				}
				p := Fig9Point{
					Layer: layer.Name, Policy: pol, Backend: ev.Backend(), Arch: ev.Arch(),
					Cost: cost, Seconds: cost.Seconds(tm), EDP: cost.EDP(tm),
				}
				want = append(want, p)
				k := key{pol: pol.Name, backend: ev.Backend().ID, arch: ev.Arch()}
				if agg, ok := totals[k]; ok {
					agg.Cost.Add(cost)
					agg.Seconds += p.Seconds
					agg.EDP += p.EDP
				} else {
					totals[k] = &Fig9Point{Layer: TotalLayerName, Policy: pol, Backend: ev.Backend(),
						Arch: ev.Arch(), Cost: cost, Seconds: p.Seconds, EDP: p.EDP}
				}
			}
		}
	}
	for _, pol := range policies {
		for _, ev := range evs {
			if agg, ok := totals[key{pol: pol.Name, backend: ev.Backend().ID, arch: ev.Arch()}]; ok {
				want = append(want, *agg)
			}
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Fig9Series diverged from the per-evaluator scan (%d vs %d points)", len(got), len(want))
	}
}
