package core

import (
	"fmt"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/tiling"
)

// DataTypeCost splits a layer's DRAM cost by tensor: input feature
// maps, weights and output feature maps.
type DataTypeCost struct {
	Ifm LayerEDP
	Wgt LayerEDP
	Ofm LayerEDP
}

// Total sums the three tensors' costs.
func (d DataTypeCost) Total() LayerEDP {
	var t LayerEDP
	t.Add(d.Ifm)
	t.Add(d.Wgt)
	t.Add(d.Ofm)
	return t
}

// EvaluateLayerByDataType prices a layer like EvaluateLayer but keeps
// the per-tensor contributions separate; used by the analysis report to
// show which tensor dominates a layer's DRAM cost.
func (ev *Evaluator) EvaluateLayerByDataType(l cnn.Layer, tl tiling.Tiling, s tiling.Schedule, pol mapping.Policy) DataTypeCost {
	if s == tiling.AdaptiveReuse {
		s = tiling.ResolveAdaptive(l, tl, ev.Batch)
	}
	var out DataTypeCost
	// TileGroups emits groups in tensor order: ifm tiles first, then
	// weights, then ofm reads/writes. Rebuild the split from the
	// per-tensor traffic identities instead of relying on order: price
	// each tensor's groups separately using a single-tensor expansion.
	out.Ifm = ev.priceTensor(l, tl, s, pol, tensorIfm)
	out.Wgt = ev.priceTensor(l, tl, s, pol, tensorWgt)
	out.Ofm = ev.priceTensor(l, tl, s, pol, tensorOfm)
	return out
}

type tensorKind int

const (
	tensorIfm tensorKind = iota
	tensorWgt
	tensorOfm
)

// priceTensor prices only the tile streams of one tensor by expanding
// the full group set and masking by the tensor's group signature.
func (ev *Evaluator) priceTensor(l cnn.Layer, tl tiling.Tiling, s tiling.Schedule, pol mapping.Policy, kind tensorKind) LayerEDP {
	groups := tiling.TileGroupsByTensor(l, tl, s, ev.Batch)
	var selected []tiling.TileGroup
	switch kind {
	case tensorIfm:
		selected = groups.Ifm
	case tensorWgt:
		selected = groups.Wgt
	case tensorOfm:
		selected = groups.Ofm
	}
	return ev.Price(ev.GroupCounts(pol, selected))
}

// LayerReport combines the DSE outcome of one layer with the
// accelerator performance model and the per-tensor cost split.
type LayerReport struct {
	Layer       cnn.Layer
	Best        Combo
	Cost        LayerEDP
	EDP         float64
	ByTensor    DataTypeCost
	Perf        accel.Perf
	DRAMSeconds float64
}

// NetworkReport is the end-to-end outcome of the tool flow for one
// network on one architecture.
type NetworkReport struct {
	Network string
	Arch    dram.Arch
	Layers  []LayerReport
}

// TotalSeconds sums the double-buffered layer times.
func (r *NetworkReport) TotalSeconds() float64 {
	var t float64
	for _, l := range r.Layers {
		t += l.Perf.TotalSeconds
	}
	return t
}

// TotalEnergy sums the DRAM energy of all layers.
func (r *NetworkReport) TotalEnergy() float64 {
	var e float64
	for _, l := range r.Layers {
		e += l.Cost.Energy
	}
	return e
}

// TotalEDP sums per-layer EDPs (the Fig. 9 aggregation).
func (r *NetworkReport) TotalEDP() float64 {
	var v float64
	for _, l := range r.Layers {
		v += l.EDP
	}
	return v
}

// MemoryBoundLayers counts layers whose DRAM stream dominates compute.
func (r *NetworkReport) MemoryBoundLayers() int {
	n := 0
	for _, l := range r.Layers {
		if l.Perf.MemoryBound {
			n++
		}
	}
	return n
}

// BuildReport runs Algorithm 1 on the network and augments each layer's
// winning design point with the per-tensor cost split and the
// accelerator performance model (clockMHz <= 0 uses the default).
func BuildReport(net cnn.Network, ev *Evaluator, schedules []tiling.Schedule, policies []mapping.Policy, clockMHz float64) (*NetworkReport, error) {
	res, err := RunDSE(net, ev, schedules, policies)
	if err != nil {
		return nil, err
	}
	tm := ev.Timing()
	report := &NetworkReport{Network: net.Name, Arch: ev.Arch()}
	for _, lr := range res.Layers {
		dramSeconds := lr.Cost.Seconds(tm)
		rep := LayerReport{
			Layer:       lr.Layer,
			Best:        lr.Best,
			Cost:        lr.Cost,
			EDP:         lr.MinEDP,
			ByTensor:    ev.EvaluateLayerByDataType(lr.Layer, lr.Best.Tiling, lr.Best.Schedule, lr.Best.Policy),
			Perf:        ev.Accel.LayerPerf(lr.Layer, ev.Batch, dramSeconds, clockMHz),
			DRAMSeconds: dramSeconds,
		}
		report.Layers = append(report.Layers, rep)
	}
	return report, nil
}

// Validate cross-checks the report's internal consistency: the tensor
// split must sum to the layer cost.
func (r *NetworkReport) Validate() error {
	for _, l := range r.Layers {
		sum := l.ByTensor.Total()
		if relDiff(sum.Cycles, l.Cost.Cycles) > 1e-6 || relDiff(sum.Energy, l.Cost.Energy) > 1e-6 {
			return fmt.Errorf("core: layer %s: tensor split (%.6g cyc) disagrees with total (%.6g cyc)",
				l.Layer.Name, sum.Cycles, l.Cost.Cycles)
		}
	}
	return nil
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / m
}
