package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/memctrl"
	"drmap/internal/sim"
	"drmap/internal/tiling"
	"drmap/internal/trace"
	"drmap/internal/vampire"
)

// SimLayerResult is one layer's outcome of a network simulation. Every
// field is a plain value, so the result JSON-round-trips exactly - the
// cluster's distributed simulate merges worker-returned layer results
// bit-for-bit.
type SimLayerResult struct {
	// Index is the layer's position in the simulated spec list; results
	// are self-locating so shards merge in any order.
	Index int `json:"index"`
	// Name is the layer's name.
	Name string `json:"name"`
	// Cost is the simulated DRAM cost (cycles and energy), accumulated
	// over the layer's tile streams in group order - the exact
	// arithmetic SimulateGroups performs.
	Cost LayerEDP `json:"cost"`
	// Groups counts the layer's distinct tile streams.
	Groups int `json:"groups"`
	// Requests counts the simulated burst requests (per distinct
	// stream, not scaled by stream loads).
	Requests int64 `json:"requests"`
	// Commands counts issued DRAM commands by mnemonic (ACT, PRE, RD,
	// WR, SASEL, REF), per distinct stream.
	Commands map[string]int64 `json:"commands,omitempty"`
	// TotalCommands sums Commands.
	TotalCommands int64 `json:"total_commands"`
}

// SimOptions tune a network simulation.
type SimOptions struct {
	// Controller tunes the memory controller (page policy, scheduler,
	// refresh, arrival gap).
	Controller memctrl.Options
	// Parallel selects the parallel event engine: every tile stream of
	// every layer becomes an independent controller agent, and
	// same-tick arrivals of different agents execute concurrently. The
	// results are bit-for-bit identical to the serial engine's (agents
	// share no state).
	Parallel bool
	// Workers bounds the parallel engine's concurrency; <= 0 means one
	// per logical CPU. Ignored by the serial engine.
	Workers int
	// BytesPerElement sizes tensor elements; must be positive.
	BytesPerElement int
	// OnLayer, when set, receives each layer's result the moment its
	// last tile stream finalizes - from an engine goroutine under the
	// parallel driver, so it must be safe for concurrent use.
	OnLayer func(SimLayerResult)
}

// SimLayerSink receives finished layers of a network simulation as an
// executor completes them: lr the moment it is reduced, total the
// job's layer count. Like core.Progress it rides the context so the
// executor signatures (local engine run, cluster coordinator) need not
// change, and implementations must be safe for concurrent use.
type SimLayerSink func(lr SimLayerResult, total int)

type simLayersKey struct{}

// WithSimLayers attaches a layer sink to ctx; simulate executors
// report through it when present.
func WithSimLayers(ctx context.Context, fn SimLayerSink) context.Context {
	return context.WithValue(ctx, simLayersKey{}, fn)
}

// SimLayersFrom returns the context's layer sink, or nil when none is
// attached. Callers must nil-check.
func SimLayersFrom(ctx context.Context) SimLayerSink {
	fn, _ := ctx.Value(simLayersKey{}).(SimLayerSink)
	return fn
}

// requestStream feeds one tile stream's requests to a controller agent
// straight from the mapping policy's address walk - every tile starts
// at the rank origin, so the k-th request is a pure function of k and
// the stream never exists as a slice.
type requestStream struct {
	op  trace.Op
	n   int64
	gen mapping.AddressGen
}

func (s requestStream) Len() int { return int(s.n) }
func (s requestStream) At(i int) trace.Request {
	return trace.Request{Op: s.op, Addr: s.gen.At(int64(i))}
}

// layerSim tracks one layer's agents while the engine runs.
type layerSim struct {
	spec    LayerSpec
	groups  []tiling.TileGroup
	agents  []*memctrl.Agent
	nreqs   []int
	pending atomic.Int64
}

// SimulateNetwork runs every layer of specs through the cycle-accurate
// controller and the energy model on one discrete-event engine: each
// (layer, tile stream) pair is an independent controller agent, so the
// parallel driver overlaps streams across cores while each stream
// stays exactly sequential. Per layer, cycles and energy accumulate in
// tile-group order with the same arithmetic as SimulateGroups, so for
// any engine the per-layer results are bit-for-bit identical to
// calling SimulateLayer per spec.
//
// ctx cancellation aborts the run mid-stream (the engines check it at
// event granularity) and returns ctx's error.
func SimulateNetwork(ctx context.Context, cfg dram.Config, pol mapping.Policy, specs []LayerSpec, opt SimOptions) ([]SimLayerResult, error) {
	if opt.BytesPerElement <= 0 {
		return nil, fmt.Errorf("core: bytes per element must be positive, got %d", opt.BytesPerElement)
	}
	model, err := vampire.New(cfg)
	if err != nil {
		return nil, err
	}
	var eng sim.Engine
	if opt.Parallel {
		eng = sim.NewParallelEngine(opt.Workers)
	} else {
		eng = sim.NewSerialEngine()
	}

	accessBytes := int64(cfg.Geometry.AccessBytes())
	// The layer reduction only reads the result's counters (census,
	// cycles), so the per-request serviced log is dead weight here;
	// dropping it keeps each stream's footprint independent of its
	// length. Retention stays available via SimulateLayer for callers
	// that want logs.
	ctrlOpt := opt.Controller
	ctrlOpt.DiscardServiced = true
	gen := pol.Generator(cfg.Geometry)
	results := make([]SimLayerResult, len(specs))
	layers := make([]*layerSim, len(specs))
	for li, spec := range specs {
		ls := &layerSim{
			spec:   spec,
			groups: tiling.TileGroups(spec.Layer, spec.Tiling, spec.Schedule, spec.Batch),
		}
		layers[li] = ls
		ls.pending.Store(int64(len(ls.groups)))
		for _, grp := range ls.groups {
			bursts := (grp.Elems*int64(opt.BytesPerElement) + accessBytes - 1) / accessBytes
			op := trace.Read
			if grp.Write {
				op = trace.Write
			}
			ctrl, err := memctrl.New(cfg, ctrlOpt)
			if err != nil {
				return nil, err
			}
			agent, err := memctrl.NewSourceAgent(eng, ctrl, requestStream{op: op, n: bursts, gen: gen})
			if err != nil {
				return nil, err
			}
			ls.agents = append(ls.agents, agent)
			ls.nreqs = append(ls.nreqs, int(bursts))
		}
		// The layer finalizes when its last stream does; the hook runs
		// on the finishing agent's engine goroutine, and the atomic
		// countdown orders every stream's finalize before the reduce.
		li := li
		finishLayer := func() {
			if ls.pending.Add(-1) != 0 {
				return
			}
			results[li] = reduceLayer(li, ls, model)
			if opt.OnLayer != nil {
				opt.OnLayer(results[li])
			}
		}
		if len(ls.groups) == 0 {
			results[li] = reduceLayer(li, ls, model)
			if opt.OnLayer != nil {
				opt.OnLayer(results[li])
			}
			continue
		}
		for _, agent := range ls.agents {
			agent.SetOnDone(finishLayer)
		}
	}

	if err := eng.Run(ctx); err != nil {
		return nil, err
	}
	return results, nil
}

// reduceLayer folds one layer's finalized agents into its result, in
// tile-group order - the accumulation order (and therefore the
// floating-point result) SimulateGroups produces.
func reduceLayer(index int, ls *layerSim, model *vampire.Model) SimLayerResult {
	out := SimLayerResult{
		Index:    index,
		Name:     ls.spec.Layer.Name,
		Groups:   len(ls.groups),
		Commands: make(map[string]int64),
	}
	for gi, grp := range ls.groups {
		res, err := ls.agents[gi].Result()
		if err != nil {
			// Unreachable: the countdown fires only after every agent
			// finalized.
			panic(err)
		}
		act := vampire.ActivityFromCounts(res.KindCounts, res.DeviceActiveCycles, res.TotalCycles)
		act.ExtraOpenSubarrayCycles = res.ExtraOpenSubarrayCycles
		out.Cost.Cycles += float64(res.TotalCycles) * float64(grp.Loads)
		out.Cost.Energy += model.Energy(act).Total() * float64(grp.Loads)
		out.Requests += int64(ls.nreqs[gi])
		for kind, n := range res.KindCounts {
			if n == 0 {
				continue // only issued kinds get map keys, as before
			}
			out.Commands[trace.CommandKind(kind).String()] += n
			out.TotalCommands += n
		}
	}
	return out
}
