// DSE progress reporting. A long-running search (an async v2 job, a
// distributed cluster run) wants to surface work as it happens: columns
// of the (layer, schedule) grid completing, and each layer's reduction
// the moment ReduceCells commits it. The hook rides the context so no
// executor signature - in particular the DSERunner interface - has to
// change, and context.WithoutCancel (which the service uses to detach
// evaluations from caller deadlines) preserves it.
package core

import "context"

// Progress receives DSE progress as an executor makes it. All methods
// may be called concurrently from worker goroutines; implementations
// must be safe for concurrent use and must not block for long - they
// run on the evaluation's critical path.
type Progress interface {
	// StartColumns announces that an evaluation of total (layer,
	// schedule) columns is starting. A batch job's items each announce
	// their own total as they start, so sinks should accumulate. An
	// executor that abandons an announced attempt (e.g. a cluster run
	// failing over to the local pool, which re-announces) withdraws it
	// with a negative total.
	StartColumns(total int)
	// ColumnsDone reports delta more columns completed (a single-host
	// executor reports 1 per column, a cluster coordinator one span per
	// merged shard; negative deltas withdraw an abandoned attempt's
	// completions).
	ColumnsDone(delta int)
	// LayerDone delivers layer index's committed reduction, out of
	// layers total, the moment ReduceCells produces it.
	LayerDone(index, layers int, lr LayerResult)
}

type progressKey struct{}

// WithProgress attaches a progress sink to ctx. Executors that support
// reporting (the service's parallel executor, the cluster coordinator)
// look it up with ProgressFrom.
func WithProgress(ctx context.Context, p Progress) context.Context {
	return context.WithValue(ctx, progressKey{}, p)
}

// ProgressFrom returns the context's progress sink, or nil when none is
// attached. Callers must nil-check.
func ProgressFrom(ctx context.Context) Progress {
	p, _ := ctx.Value(progressKey{}).(Progress)
	return p
}
