package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/tiling"
)

func TestDSEGridValidation(t *testing.T) {
	ev := evaluatorFor(t, dram.DDR3)
	if _, err := DSEGrid(cnn.LeNet5(), ev, nil, mapping.TableI()); err == nil {
		t.Error("expected an error with no schedules")
	}
	if _, err := DSEGrid(cnn.LeNet5(), ev, tiling.Schedules, nil); err == nil {
		t.Error("expected an error with no policies")
	}
	bad := cnn.Network{Name: "bad", Layers: []cnn.Layer{{Name: "x"}}}
	if _, err := DSEGrid(bad, ev, tiling.Schedules, mapping.TableI()); err == nil {
		t.Error("expected an error for an invalid network")
	}
	grids, err := DSEGrid(cnn.LeNet5(), ev, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatalf("DSEGrid: %v", err)
	}
	if len(grids) != len(cnn.LeNet5().Layers) {
		t.Fatalf("got %d layer grids, want %d", len(grids), len(cnn.LeNet5().Layers))
	}
	for i, lg := range grids {
		if lg.Index != i {
			t.Errorf("grid %d has index %d", i, lg.Index)
		}
		if len(lg.Tilings) == 0 {
			t.Errorf("layer %s: empty tiling candidates", lg.Layer.Name)
		}
	}
}

// TestEvaluateLayerGridMatchesSerialScan: the cell decomposition and
// reduction reproduce RunDSE exactly, layer by layer.
func TestEvaluateLayerGridMatchesSerialScan(t *testing.T) {
	ev := evaluatorFor(t, dram.SALPMASA)
	net := cnn.LeNet5()
	res, err := RunDSE(net, ev, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatalf("RunDSE: %v", err)
	}
	grids, err := DSEGrid(net, ev, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatalf("DSEGrid: %v", err)
	}
	for i, lg := range grids {
		lr := ev.EvaluateLayerGrid(lg, tiling.Schedules, mapping.TableI(), MinimizeEDP)
		if !reflect.DeepEqual(lr, res.Layers[i]) {
			t.Errorf("layer %s: grid result diverged from serial", lg.Layer.Name)
		}
	}
}

// TestReduceCellsOrderIndependent: shuffling the cell order never
// changes the reduction outcome.
func TestReduceCellsOrderIndependent(t *testing.T) {
	ev := evaluatorFor(t, dram.SALP2)
	net := cnn.LeNet5()
	grids, err := DSEGrid(net, ev, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatal(err)
	}
	lg := grids[0]
	var cells []CellResult
	for si, s := range tiling.Schedules {
		for pi, pol := range mapping.TableI() {
			cells = append(cells, ev.EvaluateCell(lg, si, pi, s, pol, MinimizeEDP))
		}
	}
	want := ReduceCells(lg, tiling.Schedules, mapping.TableI(), cells, ev.Timing())
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]CellResult(nil), cells...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := ReduceCells(lg, tiling.Schedules, mapping.TableI(), shuffled, ev.Timing())
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: shuffled reduction diverged", trial)
		}
	}
}

// TestReduceCellsTieBreak: equal objective values resolve to the cell
// the serial loops reach first (tiling, then schedule, then policy).
func TestReduceCellsTieBreak(t *testing.T) {
	lg := LayerGrid{
		Layer:   cnn.LeNet5().Layers[0],
		Tilings: []tiling.Tiling{{Th: 1, Tw: 1, Tj: 1, Ti: 1}, {Th: 2, Tw: 2, Tj: 2, Ti: 2}},
	}
	schedules := tiling.Schedules[:2]
	policies := mapping.TableI()[:2]
	tm := dram.DDR3Config().Timing
	mk := func(ti, si, pi int, v float64) CellResult {
		return CellResult{TilingIndex: ti, ScheduleIndex: si, PolicyIndex: pi,
			Value: v, Cost: LayerEDP{Cycles: v, Energy: 1}}
	}
	// Two cells tie at value 5; the serial scan meets (tiling 0,
	// schedule 1, policy 0) before (tiling 1, schedule 0, policy 1).
	cells := []CellResult{
		mk(1, 0, 1, 5),
		mk(0, 1, 0, 5),
		mk(1, 1, 1, 9),
	}
	lr := ReduceCells(lg, schedules, policies, cells, tm)
	if lr.Best.Schedule != schedules[1] || lr.Best.Policy.ID != policies[0].ID {
		t.Errorf("tie broke to %+v, want schedule %v policy %d", lr.Best, schedules[1], policies[0].ID)
	}
	if lr.Best.Tiling != lg.Tilings[0] {
		t.Errorf("tie broke to tiling %+v, want %+v", lr.Best.Tiling, lg.Tilings[0])
	}

	// All-infeasible cells leave the zero design point with infinite EDP.
	inf := []CellResult{{Value: math.Inf(1)}, {Value: math.NaN()}}
	lr = ReduceCells(lg, schedules, policies, inf, tm)
	if !math.IsInf(lr.MinEDP, 1) {
		t.Errorf("infeasible cells produced MinEDP %g", lr.MinEDP)
	}
}

// TestColumnShards pins the deterministic partition contract: spans
// cover [0, columns) exactly once, in order, with near-equal sizes, and
// the cut is a pure function of (columns, shards).
func TestColumnShards(t *testing.T) {
	for _, tc := range []struct{ columns, shards, want int }{
		{0, 4, 0},  // empty space
		{10, 1, 1}, // one shard
		{10, 0, 1}, // degenerate shard count
		{10, 3, 3}, // uneven split
		{3, 8, 3},  // more shards than columns
		{12, 4, 4}, // even split
	} {
		spans := ColumnShards(tc.columns, tc.shards)
		if len(spans) != tc.want {
			t.Errorf("ColumnShards(%d, %d) cut %d spans, want %d", tc.columns, tc.shards, len(spans), tc.want)
			continue
		}
		next := 0
		for _, s := range spans {
			if s.Start != next || s.End <= s.Start {
				t.Errorf("ColumnShards(%d, %d): span %+v breaks coverage at %d", tc.columns, tc.shards, s, next)
			}
			next = s.End
		}
		if tc.columns > 0 && next != tc.columns {
			t.Errorf("ColumnShards(%d, %d) covers [0, %d), want [0, %d)", tc.columns, tc.shards, next, tc.columns)
		}
		if len(spans) > 0 {
			if max, min := spans[0].Len(), spans[len(spans)-1].Len(); max-min > 1 {
				t.Errorf("ColumnShards(%d, %d): span sizes differ by %d, want <= 1", tc.columns, tc.shards, max-min)
			}
		}
		if !reflect.DeepEqual(spans, ColumnShards(tc.columns, tc.shards)) {
			t.Errorf("ColumnShards(%d, %d) is not deterministic", tc.columns, tc.shards)
		}
	}
}

// TestDSEGridForMatchesDSEGrid: the evaluator-free enumeration is the
// one DSEGrid serves, so coordinator-side sharding and worker-side
// evaluation agree on column indexing.
func TestDSEGridForMatchesDSEGrid(t *testing.T) {
	ev := evaluatorFor(t, dram.DDR3)
	viaEv, err := DSEGrid(cnn.LeNet5(), ev, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatalf("DSEGrid: %v", err)
	}
	viaCfg, err := DSEGridFor(cnn.LeNet5(), ev.Accel, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatalf("DSEGridFor: %v", err)
	}
	if !reflect.DeepEqual(viaEv, viaCfg) {
		t.Error("DSEGridFor diverged from DSEGrid")
	}
}
