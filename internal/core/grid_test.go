package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/tiling"
)

func TestDSEGridValidation(t *testing.T) {
	ev := evaluatorFor(t, dram.DDR3)
	if _, err := DSEGrid(cnn.LeNet5(), ev, nil, mapping.TableI()); err == nil {
		t.Error("expected an error with no schedules")
	}
	if _, err := DSEGrid(cnn.LeNet5(), ev, tiling.Schedules, nil); err == nil {
		t.Error("expected an error with no policies")
	}
	bad := cnn.Network{Name: "bad", Layers: []cnn.Layer{{Name: "x"}}}
	if _, err := DSEGrid(bad, ev, tiling.Schedules, mapping.TableI()); err == nil {
		t.Error("expected an error for an invalid network")
	}
	grids, err := DSEGrid(cnn.LeNet5(), ev, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatalf("DSEGrid: %v", err)
	}
	if len(grids) != len(cnn.LeNet5().Layers) {
		t.Fatalf("got %d layer grids, want %d", len(grids), len(cnn.LeNet5().Layers))
	}
	for i, lg := range grids {
		if lg.Index != i {
			t.Errorf("grid %d has index %d", i, lg.Index)
		}
		if len(lg.Tilings) == 0 {
			t.Errorf("layer %s: empty tiling candidates", lg.Layer.Name)
		}
	}
}

// TestEvaluateLayerGridMatchesSerialScan: the cell decomposition and
// reduction reproduce RunDSE exactly, layer by layer.
func TestEvaluateLayerGridMatchesSerialScan(t *testing.T) {
	ev := evaluatorFor(t, dram.SALPMASA)
	net := cnn.LeNet5()
	res, err := RunDSE(net, ev, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatalf("RunDSE: %v", err)
	}
	grids, err := DSEGrid(net, ev, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatalf("DSEGrid: %v", err)
	}
	for i, lg := range grids {
		lr := ev.EvaluateLayerGrid(lg, tiling.Schedules, mapping.TableI(), MinimizeEDP)
		if !reflect.DeepEqual(lr, res.Layers[i]) {
			t.Errorf("layer %s: grid result diverged from serial", lg.Layer.Name)
		}
	}
}

// TestReduceCellsOrderIndependent: shuffling the cell order never
// changes the reduction outcome.
func TestReduceCellsOrderIndependent(t *testing.T) {
	ev := evaluatorFor(t, dram.SALP2)
	net := cnn.LeNet5()
	grids, err := DSEGrid(net, ev, tiling.Schedules, mapping.TableI())
	if err != nil {
		t.Fatal(err)
	}
	lg := grids[0]
	var cells []CellResult
	for si, s := range tiling.Schedules {
		for pi, pol := range mapping.TableI() {
			cells = append(cells, ev.EvaluateCell(lg, si, pi, s, pol, MinimizeEDP))
		}
	}
	want := ReduceCells(lg, tiling.Schedules, mapping.TableI(), cells, ev.Timing())
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]CellResult(nil), cells...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := ReduceCells(lg, tiling.Schedules, mapping.TableI(), shuffled, ev.Timing())
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: shuffled reduction diverged", trial)
		}
	}
}

// TestReduceCellsTieBreak: equal objective values resolve to the cell
// the serial loops reach first (tiling, then schedule, then policy).
func TestReduceCellsTieBreak(t *testing.T) {
	lg := LayerGrid{
		Layer:   cnn.LeNet5().Layers[0],
		Tilings: []tiling.Tiling{{Th: 1, Tw: 1, Tj: 1, Ti: 1}, {Th: 2, Tw: 2, Tj: 2, Ti: 2}},
	}
	schedules := tiling.Schedules[:2]
	policies := mapping.TableI()[:2]
	tm := dram.DDR3Config().Timing
	mk := func(ti, si, pi int, v float64) CellResult {
		return CellResult{TilingIndex: ti, ScheduleIndex: si, PolicyIndex: pi,
			Value: v, Cost: LayerEDP{Cycles: v, Energy: 1}}
	}
	// Two cells tie at value 5; the serial scan meets (tiling 0,
	// schedule 1, policy 0) before (tiling 1, schedule 0, policy 1).
	cells := []CellResult{
		mk(1, 0, 1, 5),
		mk(0, 1, 0, 5),
		mk(1, 1, 1, 9),
	}
	lr := ReduceCells(lg, schedules, policies, cells, tm)
	if lr.Best.Schedule != schedules[1] || lr.Best.Policy.ID != policies[0].ID {
		t.Errorf("tie broke to %+v, want schedule %v policy %d", lr.Best, schedules[1], policies[0].ID)
	}
	if lr.Best.Tiling != lg.Tilings[0] {
		t.Errorf("tie broke to tiling %+v, want %+v", lr.Best.Tiling, lg.Tilings[0])
	}

	// All-infeasible cells leave the zero design point with infinite EDP.
	inf := []CellResult{{Value: math.Inf(1)}, {Value: math.NaN()}}
	lr = ReduceCells(lg, schedules, policies, inf, tm)
	if !math.IsInf(lr.MinEDP, 1) {
		t.Errorf("infeasible cells produced MinEDP %g", lr.MinEDP)
	}
}
