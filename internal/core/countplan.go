// The count/price split. A design point's cost has two factors: its
// access-count structure (how the tile streams of a (layer, tiling,
// schedule, policy) combination split into the four access categories
// of Eq. 2-3) and the per-access costs of one DRAM system. The counts
// are the expensive phase - they expand every tiling's tile groups and
// walk them once per policy - but they do not depend on the DRAM
// device's characterization at all, only on its addressing geometry
// (DRMap Sec. V-B's generality argument, made explicit in PENDRAM).
// Pricing is a handful of multiply-adds per design point.
//
// This file factors the evaluation kernel accordingly: CountScheduleColumn
// computes a grid column's backend-independent count plan (a CountColumn)
// once, and PriceCells reprices it under any evaluator whose CountKey
// matches - same geometry, element width, batch and counting convention.
// EvaluateScheduleColumn is exactly PriceCells over CountScheduleColumn,
// so the serial scan, the parallel executor, the cluster shards and any
// plan cache above them share one code path and produce bit-for-bit
// identical results.
package core

import (
	"math"

	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/tiling"
)

// CellCounts is the access-count structure of one (tiling, policy)
// design point, split by transfer direction so both the paper's
// read-cost pricing and the direction-aware refinement can be repriced
// from the same plan: the read-only convention prices Read+Write with
// one cost set (integer-exact, so the sum equals the unsplit counts).
type CellCounts struct {
	Read  mapping.Counts `json:"read"`
	Write mapping.Counts `json:"write"`
}

// CountColumn is the count plan of one (layer, schedule) grid column:
// the CellCounts of every (tiling, policy) design point the column
// searches, in the serial scan's iteration order. It retains per-tiling
// counts rather than a pre-reduced winner because the argmin depends on
// the objective value, which is priced per backend - reducing here
// would bake one backend's (or objective's) pick into the plan.
type CountColumn struct {
	LayerIndex    int `json:"layer"`
	ScheduleIndex int `json:"schedule"`
	// Policies is the row width of Cells (the policy count).
	Policies int `json:"policies"`
	// Cells holds the counts flattened tiling-major:
	// Cells[ti*Policies+pi] is tiling ti priced under policy pi.
	Cells []CellCounts `json:"cells"`
}

// Tilings returns the number of candidate tilings the plan covers.
func (cc *CountColumn) Tilings() int {
	if cc.Policies == 0 {
		return 0
	}
	return len(cc.Cells) / cc.Policies
}

// At returns the counts of (tiling ti, policy pi).
func (cc *CountColumn) At(ti, pi int) CellCounts {
	return cc.Cells[ti*cc.Policies+pi]
}

// CountKey is the projection of an evaluator that its access counts
// depend on - and nothing they do not. Two evaluators with equal
// CountKeys compute identical CountColumns for any workload, whatever
// their timing, energy characterization or controller capability, so a
// count plan may be priced under any evaluator sharing the key: the
// four paper architectures (one 2Gb x8 die) share plans, while e.g.
// DDR4's 16-bank geometry counts separately. The struct is comparable
// and JSON-encodes deterministically, so it serves directly as a map
// or content-address key.
type CountKey struct {
	Geometry        dram.Geometry `json:"geometry"`
	BytesPerElement int           `json:"bytes_per_element"`
	Batch           int           `json:"batch"`
	// Physical records the UsePhysicalCounts classification convention.
	Physical bool `json:"physical"`
}

// CountKey returns the evaluator's count signature.
func (ev *Evaluator) CountKey() CountKey {
	return CountKey{
		Geometry:        ev.Profile.Config.Geometry,
		BytesPerElement: ev.Accel.BytesPerElement,
		Batch:           ev.Batch,
		Physical:        ev.UsePhysicalCounts,
	}
}

// CountScheduleColumn computes one grid column's count plan: for every
// candidate tiling it expands the tile groups once and accumulates the
// read/write access-category counts of every policy - the expensive
// phase of EvaluateScheduleColumn, and the part that is valid for every
// evaluator sharing this evaluator's CountKey. The evaluator is only
// read, so one evaluator may serve many concurrent calls.
func (ev *Evaluator) CountScheduleColumn(lg LayerGrid, scheduleIdx int, s tiling.Schedule, policies []mapping.Policy) *CountColumn {
	cc := &CountColumn{
		LayerIndex:    lg.Index,
		ScheduleIndex: scheduleIdx,
		Policies:      len(policies),
		Cells:         make([]CellCounts, len(lg.Tilings)*len(policies)),
	}
	for ti, tl := range lg.Tilings {
		groups := tiling.TileGroups(lg.Layer, tl, s, ev.Batch)
		row := cc.Cells[ti*len(policies) : (ti+1)*len(policies)]
		for pi, pol := range policies {
			read, write := ev.GroupCountsRW(pol, groups)
			row[pi] = CellCounts{Read: read, Write: write}
		}
	}
	return cc
}

// priceCell prices one design point's counts under the evaluator's
// configured cost model. The read-cost path sums the directions first
// (integer-exact), so the result is bit-for-bit the cost the unsplit
// GroupCounts pricing produces.
func (ev *Evaluator) priceCell(c CellCounts) LayerEDP {
	if ev.UseWriteCosts {
		return ev.PriceRW(c.Read, c.Write)
	}
	total := c.Read
	total.Add(c.Write, 1)
	return priceWith(ev.Costs, total)
}

// PriceCells reprices a count plan under this evaluator's cost sets,
// timing and the given objective - the cheap phase. The scan order and
// the strict-minimum rule match the serial loop nest exactly, so the
// returned cells are bit-for-bit identical to EvaluateScheduleColumn's
// for any evaluator whose CountKey matches the plan's producer.
func (ev *Evaluator) PriceCells(cc *CountColumn, obj Objective) []CellResult {
	return ev.PriceCellsInto(cc, obj, nil)
}

// PriceCellsInto is PriceCells writing into out (grown only when its
// capacity is short), so a caller repricing many columns - the warm
// loop of the plan cache and the delta sweeps - reuses one scratch
// buffer instead of allocating per column.
func (ev *Evaluator) PriceCellsInto(cc *CountColumn, obj Objective, out []CellResult) []CellResult {
	tm := ev.Timing()
	out = resizeCells(out, cc.Policies)
	for pi := range out {
		out[pi] = CellResult{
			LayerIndex:    cc.LayerIndex,
			ScheduleIndex: cc.ScheduleIndex,
			PolicyIndex:   pi,
			Value:         math.Inf(1),
		}
	}
	tilings := cc.Tilings()
	for ti := 0; ti < tilings; ti++ {
		row := cc.Cells[ti*cc.Policies : (ti+1)*cc.Policies]
		for pi := range row {
			cost := ev.priceCell(row[pi])
			if v := obj.Value(cost, tm); v < out[pi].Value {
				out[pi].Value = v
				out[pi].Cost = cost
				out[pi].TilingIndex = ti
			}
		}
	}
	return out
}

// MinOverColumn reprices one policy of a count plan and returns the
// minimum-EDP tiling index and its cost, exactly as MinOverTilings
// scans: first strict EDP minimum wins. A column with no finite-EDP
// tiling returns index -1 and an infinite cost, matching the
// no-winner sentinel MinOverTilings has always produced.
func (ev *Evaluator) MinOverColumn(cc *CountColumn, policyIdx int) (int, LayerEDP) {
	tm := ev.Timing()
	best := LayerEDP{Cycles: math.Inf(1), Energy: math.Inf(1)}
	bestEDP := math.Inf(1)
	bestTiling := -1
	tilings := cc.Tilings()
	for ti := 0; ti < tilings; ti++ {
		e := ev.priceCell(cc.At(ti, policyIdx))
		if edp := e.EDP(tm); edp < bestEDP {
			bestEDP = edp
			best = e
			bestTiling = ti
		}
	}
	return bestTiling, best
}
