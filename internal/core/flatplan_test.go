package core

import (
	"math"
	"reflect"
	"testing"

	"drmap/internal/cnn"
	"drmap/internal/mapping"
	"drmap/internal/tiling"
)

// evaluatorVariants returns the four pricing-convention variants of an
// evaluator: the paper baseline, direction-aware pricing, physical
// counting, and both refinements together.
func evaluatorVariants(ev *Evaluator) []*Evaluator {
	base := *ev
	write := *ev
	write.UseWriteCosts = true
	phys := *ev
	phys.UsePhysicalCounts = true
	both := write
	both.UsePhysicalCounts = true
	return []*Evaluator{&base, &write, &phys, &both}
}

// TestFlatPricingMatchesStructPath: PriceFlatInto over a flattened plan
// equals PriceCells over the struct plan bit for bit - on every
// registered backend, every schedule, every objective and every pricing
// convention. This is the pin the vectorized warm path hangs on.
func TestFlatPricingMatchesStructPath(t *testing.T) {
	net := cnn.LeNet5()
	policies := mapping.TableI()
	for _, base := range registryEvaluators(t) {
		for _, ev := range evaluatorVariants(base) {
			grids, err := DSEGrid(net, ev, tiling.Schedules, policies)
			if err != nil {
				t.Fatalf("%s: DSEGrid: %v", ev.Label(), err)
			}
			var scratch []CellResult
			for _, lg := range grids {
				for si, s := range tiling.Schedules {
					plan := ev.CountScheduleColumn(lg, si, s, policies)
					flat := plan.Flatten()
					for _, obj := range Objectives {
						want := ev.PriceCells(plan, obj)
						scratch = ev.PriceFlatInto(flat, obj, scratch)
						if !reflect.DeepEqual(want, scratch[:len(want)]) {
							t.Fatalf("%s (write=%v phys=%v) layer %d schedule %v obj %v: flat pricing diverged\n got %+v\nwant %+v",
								ev.Label(), ev.UseWriteCosts, ev.UsePhysicalCounts, lg.Index, s, obj, scratch, want)
						}
					}
					for pi := range policies {
						wantTi, wantCost := ev.MinOverColumn(plan, pi)
						gotTi, gotCost := ev.MinOverFlatColumn(flat, pi)
						if gotTi != wantTi || gotCost != wantCost {
							t.Fatalf("%s layer %d schedule %v policy %d: MinOverFlatColumn = (%d, %+v), want (%d, %+v)",
								ev.Label(), lg.Index, s, pi, gotTi, gotCost, wantTi, wantCost)
						}
					}
				}
			}
		}
	}
}

// TestFlatPlanRepricesAcrossBackends: a plan flattened under one backend
// prices identically under every other backend sharing its CountKey -
// the cross-backend sharing the service plan cache relies on.
func TestFlatPlanRepricesAcrossBackends(t *testing.T) {
	net := cnn.LeNet5()
	policies := mapping.TableI()
	evs := registryEvaluators(t)
	flats := map[CountKey]*FlatColumn{}
	lgFor := func(ev *Evaluator) LayerGrid {
		grids, err := DSEGrid(net, ev, tiling.Schedules[:1], policies)
		if err != nil {
			t.Fatalf("%s: DSEGrid: %v", ev.Label(), err)
		}
		return grids[0]
	}
	shared := 0
	for _, ev := range evs {
		lg := lgFor(ev)
		k := ev.CountKey()
		if flats[k] == nil {
			flats[k] = ev.CountScheduleColumn(lg, 0, tiling.Schedules[0], policies).Flatten()
		} else {
			shared++
		}
		own := ev.CountScheduleColumn(lg, 0, tiling.Schedules[0], policies)
		for _, obj := range Objectives {
			got := ev.PriceFlat(flats[k], obj)
			want := ev.PriceCells(own, obj)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s obj %v: shared flat plan priced differently from own counts", ev.Label(), obj)
			}
		}
	}
	if shared == 0 {
		t.Fatal("no backend shared a count signature; the paper four should share one die geometry")
	}
}

// TestFlattenRoundTrip: At reconstructs every cell and the total planes
// hold the exact integer read+write sums.
func TestFlattenRoundTrip(t *testing.T) {
	ev := registryEvaluators(t)[0]
	net := cnn.LeNet5()
	policies := mapping.TableI()
	grids, err := DSEGrid(net, ev, tiling.Schedules, policies)
	if err != nil {
		t.Fatalf("DSEGrid: %v", err)
	}
	plan := ev.CountScheduleColumn(grids[0], 0, tiling.Schedules[0], policies)
	flat := plan.Flatten()
	if flat.Tilings() != plan.Tilings() || flat.Policies != plan.Policies || flat.Cells() != len(plan.Cells) {
		t.Fatalf("flat shape (%d tilings x %d policies, %d cells) != plan shape (%d x %d, %d)",
			flat.Tilings(), flat.Policies, flat.Cells(), plan.Tilings(), plan.Policies, len(plan.Cells))
	}
	for ti := 0; ti < plan.Tilings(); ti++ {
		for pi := 0; pi < plan.Policies; pi++ {
			if got, want := flat.At(ti, pi), plan.At(ti, pi); got != want {
				t.Fatalf("cell (%d, %d): round trip = %+v, want %+v", ti, pi, got, want)
			}
			want := plan.At(ti, pi).Read
			want.Add(plan.At(ti, pi).Write, 1)
			i := ti*flat.Policies + pi
			got := mapping.Counts{
				DifColumn:    int64(flat.plane(planeTotalColumn)[i]),
				DifBanks:     int64(flat.plane(planeTotalBanks)[i]),
				DifSubarrays: int64(flat.plane(planeTotalSubarrays)[i]),
				DifRows:      int64(flat.plane(planeTotalRows)[i]),
			}
			if got != want {
				t.Fatalf("cell (%d, %d): total plane = %+v, want exact sum %+v", ti, pi, got, want)
			}
		}
	}
	if min := int64(len(flat.data)) * 8; flat.SizeBytes() < min {
		t.Fatalf("SizeBytes() = %d, want at least the %d-byte backing array", flat.SizeBytes(), min)
	}
}

// TestPriceIntoReusesScratch: the warm reprice loop is allocation-free
// once the scratch buffer has grown to the column width - the satellite
// the -benchmem benchmark (BenchmarkRepriceFlat) tracks over time.
func TestPriceIntoReusesScratch(t *testing.T) {
	ev := registryEvaluators(t)[0]
	net := cnn.LeNet5()
	policies := mapping.TableI()
	grids, err := DSEGrid(net, ev, tiling.Schedules, policies)
	if err != nil {
		t.Fatalf("DSEGrid: %v", err)
	}
	plan := ev.CountScheduleColumn(grids[0], 0, tiling.Schedules[0], policies)
	flat := plan.Flatten()

	scratch := make([]CellResult, 0, len(policies))
	sink := 0.0
	if allocs := testing.AllocsPerRun(100, func() {
		scratch = ev.PriceFlatInto(flat, MinimizeEDP, scratch)
		sink += scratch[0].Value
	}); allocs != 0 {
		t.Fatalf("PriceFlatInto with warm scratch allocated %.1f times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		scratch = ev.PriceCellsInto(plan, MinimizeEDP, scratch)
		sink += scratch[0].Value
	}); allocs != 0 {
		t.Fatalf("PriceCellsInto with warm scratch allocated %.1f times per run, want 0", allocs)
	}
	if math.IsNaN(sink) {
		t.Fatal("degenerate pricing")
	}

	// The returned slice must reuse the caller's backing array.
	out := make([]CellResult, 0, len(policies))
	got := ev.PriceFlatInto(flat, MinimizeEDP, out)
	if &got[0] != &out[:1][0] {
		t.Fatal("PriceFlatInto did not reuse the caller's scratch buffer")
	}
}

// TestFlatEmptyColumn: degenerate shapes stay consistent with the
// struct path's sentinels.
func TestFlatEmptyColumn(t *testing.T) {
	ev := registryEvaluators(t)[0]
	empty := (&CountColumn{Policies: len(mapping.TableI())}).Flatten()
	cells := ev.PriceFlat(empty, MinimizeEDP)
	for _, c := range cells {
		if !math.IsInf(c.Value, 1) {
			t.Fatalf("empty column priced finite cell %+v", c)
		}
	}
	if ti, _ := ev.MinOverFlatColumn(empty, 0); ti != -1 {
		t.Fatalf("empty column min tiling = %d, want -1", ti)
	}
}
