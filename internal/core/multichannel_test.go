package core

import (
	"testing"

	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/memctrl"
	"drmap/internal/trace"
)

// multiChannelConfig clones the DDR3 preset with the given channel count.
func multiChannelConfig(channels int) dram.Config {
	cfg := dram.DDR3Config()
	cfg.Geometry.Channels = channels
	return cfg
}

func runStream(t *testing.T, cfg dram.Config, addrs []dram.Address) *memctrl.Result {
	t.Helper()
	ctrl, err := memctrl.New(cfg, memctrl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]trace.Request, len(addrs))
	for i, a := range addrs {
		reqs[i] = trace.Request{Op: trace.Read, Addr: a}
	}
	res, err := ctrl.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChannelInterleaveSpeedupInSimulation(t *testing.T) {
	// DRMap's step 5 generalized: spreading a DRMap-ordered tile across
	// independent channels must cut the measured service time nearly in
	// half per doubling, because each channel has its own data bus.
	const bursts = 4096
	pol := mapping.DRMap()
	base := runStream(t, multiChannelConfig(1),
		mapping.ChannelInterleaved(pol, bursts, multiChannelConfig(1).Geometry))
	two := runStream(t, multiChannelConfig(2),
		mapping.ChannelInterleaved(pol, bursts, multiChannelConfig(2).Geometry))
	four := runStream(t, multiChannelConfig(4),
		mapping.ChannelInterleaved(pol, bursts, multiChannelConfig(4).Geometry))

	r2 := float64(base.TotalCycles) / float64(two.TotalCycles)
	r4 := float64(base.TotalCycles) / float64(four.TotalCycles)
	if r2 < 1.8 || r2 > 2.2 {
		t.Errorf("2-channel speedup = %.2fx, want ~2x", r2)
	}
	if r4 < 3.5 || r4 > 4.5 {
		t.Errorf("4-channel speedup = %.2fx, want ~4x", r4)
	}
}

func TestRankSpillKeepsSingleChannelBusy(t *testing.T) {
	// The literal step-5 placement (fill rank 0 first) gains nothing for
	// a tile that fits one rank: it must match the plain layout exactly.
	cfg := multiChannelConfig(2)
	pol := mapping.DRMap()
	plain := runStream(t, cfg, pol.Addresses(2048, cfg.Geometry))
	spill := runStream(t, cfg, mapping.RankSpill(pol, 2048, cfg.Geometry))
	if plain.TotalCycles != spill.TotalCycles {
		t.Errorf("rank-spill (%d cycles) differs from plain (%d) for an in-rank tile",
			spill.TotalCycles, plain.TotalCycles)
	}
}

func TestInterleaveAnalyticApproximatesSimulation(t *testing.T) {
	// Analytic multi-channel pricing: per-unit counts priced serially,
	// divided by EffectiveParallelism. Must land within 20% of the
	// simulator for a DRMap stream.
	const bursts = 4096
	cfg := multiChannelConfig(2)
	pol := mapping.DRMap()
	ev := evaluatorFor(t, dram.DDR3) // per-access costs are per-channel
	counts := mapping.InterleavedCounts(pol, bursts, cfg.Geometry)
	serial := ev.Price(counts)
	analytic := serial.Cycles / mapping.EffectiveParallelism(cfg.Geometry)
	sim := runStream(t, cfg, mapping.ChannelInterleaved(pol, bursts, cfg.Geometry))
	ratio := analytic / float64(sim.TotalCycles)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("analytic %-8.0f vs simulated %d cycles (ratio %.2f)",
			analytic, sim.TotalCycles, ratio)
	}
}
