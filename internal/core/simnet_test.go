package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/tiling"
)

// simnetSpecs is a small multi-layer workload: two LeNet-5 conv layers
// and one FC layer, tilings chosen so each cuts several tile groups but
// stays cheap enough for the full engine matrix.
func simnetSpecs() []LayerSpec {
	l := cnn.LeNet5().Layers
	return []LayerSpec{
		{Layer: l[0], Tiling: tiling.Tiling{Th: 14, Tw: 14, Tj: 6, Ti: 1}, Schedule: tiling.OfmsReuse, Batch: 1},
		{Layer: l[1], Tiling: tiling.Tiling{Th: 10, Tw: 10, Tj: 16, Ti: 6}, Schedule: tiling.IfmsReuse, Batch: 1},
		{Layer: l[3], Tiling: tiling.Tiling{Th: 1, Tw: 1, Tj: 60, Ti: 120}, Schedule: tiling.WghsReuse, Batch: 1},
	}
}

// TestSimulateNetworkSerialParallelIdentical pins the engine
// equivalence at the network level across all four paper backends and
// both mapping extremes: the parallel driver's layer results -
// per-layer cycles, command censuses, request counts, and float64
// energies - are bit-for-bit the serial driver's (reflect.DeepEqual).
func TestSimulateNetworkSerialParallelIdentical(t *testing.T) {
	specs := simnetSpecs()
	pols := mapping.TableI()
	for _, arch := range dram.Archs {
		cfg := dram.ConfigFor(arch)
		for _, pol := range []mapping.Policy{pols[0], mapping.DRMap()} {
			name := fmt.Sprintf("%v/%s", arch, pol.Name)
			serial, err := SimulateNetwork(context.Background(), cfg, pol, specs, SimOptions{BytesPerElement: 2})
			if err != nil {
				t.Fatalf("%s: serial: %v", name, err)
			}
			parallel, err := SimulateNetwork(context.Background(), cfg, pol, specs, SimOptions{
				BytesPerElement: 2, Parallel: true, Workers: 4,
			})
			if err != nil {
				t.Fatalf("%s: parallel: %v", name, err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("%s: parallel network simulation diverged from serial:\nserial:   %+v\nparallel: %+v", name, serial, parallel)
			}
		}
	}
}

// TestSimulateNetworkMatchesSimulateLayer: a one-layer network prices
// exactly like the standalone SimulateLayer path - the v1 validation
// endpoint and the network simulator share one ground truth.
func TestSimulateNetworkMatchesSimulateLayer(t *testing.T) {
	spec := leNetSpec()
	for _, arch := range dram.Archs {
		cfg := dram.ConfigFor(arch)
		want, err := SimulateLayer(cfg, mapping.DRMap(), spec, 2)
		if err != nil {
			t.Fatalf("%v: SimulateLayer: %v", arch, err)
		}
		for _, par := range []bool{false, true} {
			res, err := SimulateNetwork(context.Background(), cfg, mapping.DRMap(), []LayerSpec{spec}, SimOptions{
				BytesPerElement: 2, Parallel: par, Workers: 4,
			})
			if err != nil {
				t.Fatalf("%v parallel=%v: SimulateNetwork: %v", arch, par, err)
			}
			if len(res) != 1 || res[0].Cost != want {
				t.Errorf("%v parallel=%v: network cost %+v, want SimulateLayer's %+v", arch, par, res[0].Cost, want)
			}
		}
	}
}

// TestSimulateNetworkOnLayerStreams: the OnLayer hook fires exactly
// once per layer with complete indices and names, under both drivers.
func TestSimulateNetworkOnLayerStreams(t *testing.T) {
	specs := simnetSpecs()
	for _, par := range []bool{false, true} {
		var mu sync.Mutex
		seen := map[int]string{}
		_, err := SimulateNetwork(context.Background(), dram.DDR3Config(), mapping.DRMap(), specs, SimOptions{
			BytesPerElement: 2, Parallel: par, Workers: 4,
			OnLayer: func(lr SimLayerResult) {
				mu.Lock()
				seen[lr.Index] = lr.Name
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("parallel=%v: %v", par, err)
		}
		if len(seen) != len(specs) {
			t.Fatalf("parallel=%v: OnLayer fired for %d layers, want %d", par, len(seen), len(specs))
		}
		for i, sp := range specs {
			if seen[i] != sp.Layer.Name {
				t.Errorf("parallel=%v: layer %d streamed as %q, want %q", par, i, seen[i], sp.Layer.Name)
			}
		}
	}
}

// TestSimulateNetworkCancel: a canceled context aborts the run under
// both drivers - even though every arrival sits at tick 0.
func TestSimulateNetworkCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []bool{false, true} {
		if _, err := SimulateNetwork(ctx, dram.DDR3Config(), mapping.DRMap(), simnetSpecs(), SimOptions{
			BytesPerElement: 2, Parallel: par, Workers: 4,
		}); err == nil {
			t.Errorf("parallel=%v: canceled simulation returned no error", par)
		}
	}
}
