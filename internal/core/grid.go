// The DSE evaluation grid. Algorithm 1 scans the cartesian product
// layer x tiling x schedule x policy; this file factors that scan into
// independently evaluable (layer, schedule, policy) cells plus a
// deterministic reduction, so the serial RunDSE and any parallel
// executor (package service) share one code path and produce
// bit-for-bit identical DSEResults.
package core

import (
	"fmt"
	"math"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/tiling"
)

// LayerGrid bundles one layer's share of the DSE grid: the layer, its
// position in the network, and the candidate partitionings every
// (schedule, policy) cell searches.
type LayerGrid struct {
	Index   int
	Layer   cnn.Layer
	Tilings []tiling.Tiling
}

// CellResult is the outcome of one (layer, schedule, policy) cell: the
// minimum-objective tiling, its cost and its objective value. The three
// indices locate the cell so a reducer can restore the serial scan
// order regardless of evaluation order.
type CellResult struct {
	LayerIndex    int
	ScheduleIndex int
	PolicyIndex   int
	TilingIndex   int
	Cost          LayerEDP
	Value         float64
}

// DSEGrid validates the DSE inputs and enumerates the per-layer grids.
// It returns an error when the network is invalid, the search space is
// empty, or a layer admits no buffer-fitting partitioning - the same
// failure modes RunDSE reports.
func DSEGrid(net cnn.Network, ev *Evaluator, schedules []tiling.Schedule, policies []mapping.Policy) ([]LayerGrid, error) {
	return DSEGridFor(net, ev.Accel, schedules, policies)
}

// DSEGridFor is DSEGrid from an accelerator configuration alone. The
// enumeration depends only on the workload and the accelerator buffers,
// not on any DRAM characterization, so a cluster coordinator can shard
// the column space and map tiling indices back to tilings without ever
// building an evaluator.
func DSEGridFor(net cnn.Network, acfg accel.Config, schedules []tiling.Schedule, policies []mapping.Policy) ([]LayerGrid, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if len(schedules) == 0 || len(policies) == 0 {
		return nil, fmt.Errorf("core: DSE needs at least one schedule and one policy")
	}
	grids := make([]LayerGrid, 0, len(net.Layers))
	for i, layer := range net.Layers {
		tilings := tiling.Enumerate(layer, acfg)
		if len(tilings) == 0 {
			return nil, fmt.Errorf("core: layer %s: no partitioning fits the buffers", layer.Name)
		}
		grids = append(grids, LayerGrid{Index: i, Layer: layer, Tilings: tilings})
	}
	return grids, nil
}

// ColumnSpan is a half-open range [Start, End) of (layer, schedule)
// column indices - the unit of work a cluster shard carries. Column i
// addresses layer i/len(schedules), schedule i%len(schedules), matching
// the parallel executor's index arithmetic.
type ColumnSpan struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len returns the number of columns in the span.
func (s ColumnSpan) Len() int { return s.End - s.Start }

// ColumnShards partitions the column index space [0, columns) into at
// most shards contiguous, near-equal spans. The partition is a pure
// function of its arguments, so every coordinator (and a coordinator
// restarted mid-run) cuts identical shards for the same job. shards <= 1
// (or shards >= columns) degenerates sensibly: one span, or one span per
// column.
func ColumnShards(columns, shards int) []ColumnSpan {
	if columns <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > columns {
		shards = columns
	}
	spans := make([]ColumnSpan, 0, shards)
	quo, rem := columns/shards, columns%shards
	start := 0
	for i := 0; i < shards; i++ {
		size := quo
		if i < rem {
			size++
		}
		spans = append(spans, ColumnSpan{Start: start, End: start + size})
		start += size
	}
	return spans
}

// EvaluateScheduleColumn searches one (layer, schedule) column of the
// grid: for every mapping policy it prices every candidate tiling and
// keeps the first strict minimum of the objective, exactly as the
// serial scan does. The tile groups of each tiling are computed once
// and shared across all policies - the reuse the serial loop nest gets
// for free. The evaluator is only read, so one evaluator may serve many
// concurrent calls.
//
// The search is the count -> price pipeline of countplan.go run
// back-to-back: callers that evaluate one column for many DRAM systems
// (or objectives) should instead keep the CountScheduleColumn plan and
// reprice it per system with PriceCells, which produces these exact
// cells at a fraction of the cost.
func (ev *Evaluator) EvaluateScheduleColumn(lg LayerGrid, scheduleIdx int, s tiling.Schedule, policies []mapping.Policy, obj Objective) []CellResult {
	return ev.PriceCells(ev.CountScheduleColumn(lg, scheduleIdx, s, policies), obj)
}

// EvaluateCell searches one grid cell (a single policy of a column);
// EvaluateScheduleColumn is the batched form workers should prefer,
// since it shares each tiling's tile groups across all policies.
func (ev *Evaluator) EvaluateCell(lg LayerGrid, scheduleIdx, policyIdx int, s tiling.Schedule, pol mapping.Policy, obj Objective) CellResult {
	cr := ev.EvaluateScheduleColumn(lg, scheduleIdx, s, []mapping.Policy{pol}, obj)[0]
	cr.PolicyIndex = policyIdx
	return cr
}

// better reports whether cell a beats cell b under the serial scan
// order: strictly smaller objective value wins; ties resolve to the
// cell the serial loops (tiling outermost, then schedule, then policy)
// would have reached first.
func better(a, b CellResult) bool {
	if a.Value != b.Value {
		return a.Value < b.Value
	}
	if a.TilingIndex != b.TilingIndex {
		return a.TilingIndex < b.TilingIndex
	}
	if a.ScheduleIndex != b.ScheduleIndex {
		return a.ScheduleIndex < b.ScheduleIndex
	}
	return a.PolicyIndex < b.PolicyIndex
}

// ReduceCells folds one layer's cell results into its LayerResult. The
// reduction is deterministic and order-independent: whatever order the
// cells were evaluated in, the chosen design point is the one the
// serial scan picks. MinEDP always reports the EDP of the chosen point
// regardless of the search objective, matching RunDSEObjective.
func ReduceCells(lg LayerGrid, schedules []tiling.Schedule, policies []mapping.Policy, cells []CellResult, tm dram.Timing) LayerResult {
	lr := LayerResult{Layer: lg.Layer, MinEDP: math.Inf(1)}
	found := false
	var best CellResult
	for _, c := range cells {
		if math.IsInf(c.Value, 1) || math.IsNaN(c.Value) {
			continue
		}
		if !found || better(c, best) {
			best = c
			found = true
		}
	}
	if !found {
		return lr
	}
	lr.Cost = best.Cost
	lr.MinEDP = best.Cost.EDP(tm)
	lr.Best = Combo{
		Tiling:   lg.Tilings[best.TilingIndex],
		Schedule: schedules[best.ScheduleIndex],
		Policy:   policies[best.PolicyIndex],
	}
	return lr
}

// EvaluateLayerGrid runs every (schedule, policy) cell of one layer
// serially and reduces - the per-layer unit RunDSE executes.
func (ev *Evaluator) EvaluateLayerGrid(lg LayerGrid, schedules []tiling.Schedule, policies []mapping.Policy, obj Objective) LayerResult {
	cells := make([]CellResult, 0, len(schedules)*len(policies))
	for si, s := range schedules {
		cells = append(cells, ev.EvaluateScheduleColumn(lg, si, s, policies, obj)...)
	}
	return ReduceCells(lg, schedules, policies, cells, ev.Timing())
}
