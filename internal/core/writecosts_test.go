package core

import (
	"testing"

	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/tiling"
	"drmap/internal/trace"
)

func TestWriteStreamCostsCharacterized(t *testing.T) {
	ev := evaluatorFor(t, dram.DDR3)
	p := ev.Profile
	for _, kind := range trace.AccessKinds {
		r := p.Stream[kind]
		w := p.StreamWrite[kind]
		if w.Cycles <= 0 || w.Energy <= 0 {
			t.Fatalf("%v: missing write characterization %+v", kind, w)
		}
		// Write hits burn more I/O energy than read hits (termination).
		if kind == trace.AccessRowHit && w.Energy <= r.Energy {
			t.Errorf("write hit energy %.3g not above read hit energy %.3g", w.Energy, r.Energy)
		}
	}
	// Write recovery (tWR > tRTP) makes write conflicts at least as slow
	// as read conflicts.
	if p.StreamWrite[trace.AccessRowConflict].Cycles < p.Stream[trace.AccessRowConflict].Cycles-1 {
		t.Errorf("write conflict stream (%.2f) below read conflict stream (%.2f)",
			p.StreamWrite[trace.AccessRowConflict].Cycles, p.Stream[trace.AccessRowConflict].Cycles)
	}
}

func TestGroupCountsRWSplitsDirections(t *testing.T) {
	ev := evaluatorFor(t, dram.DDR3)
	l := cnn.AlexNet().Layers[1]
	tl := tiling.Tiling{Th: 9, Tw: 9, Tj: 32, Ti: 16}
	groups := tiling.TileGroups(l, tl, tiling.WghsReuse, 1)
	read, write := ev.GroupCountsRW(mapping.DRMap(), groups)
	if write.Total() == 0 {
		t.Fatal("wghs-reuse spills partial sums; write counts must be non-zero")
	}
	whole := ev.GroupCounts(mapping.DRMap(), groups)
	var sum mapping.Counts
	sum.Add(read, 1)
	sum.Add(write, 1)
	if sum != whole {
		t.Errorf("read+write counts %+v != combined %+v", sum, whole)
	}
}

func TestWriteCostRefinementSmallButPositive(t *testing.T) {
	// Direction-aware pricing must raise the cost a little (writes are
	// pricier) without changing any ordering.
	base := evaluatorFor(t, dram.DDR3)
	refined := *base
	refined.UseWriteCosts = true
	l := cnn.AlexNet().Layers[1]
	tl := tiling.Tiling{Th: 9, Tw: 9, Tj: 32, Ti: 16}
	tm := base.Timing()
	for _, s := range []tiling.Schedule{tiling.WghsReuse, tiling.OfmsReuse} {
		plain := base.EvaluateLayer(l, tl, s, mapping.DRMap()).EDP(tm)
		rw := refined.EvaluateLayer(l, tl, s, mapping.DRMap()).EDP(tm)
		if rw < plain {
			t.Errorf("%v: refined EDP %.4g below plain %.4g", s, rw, plain)
		}
		if rw > plain*1.6 {
			t.Errorf("%v: refined EDP %.4g implausibly far above plain %.4g", s, rw, plain)
		}
	}
	// Ordering preserved: DRMap still beats Mapping-2 under refinement.
	m2 := refined.EvaluateLayer(l, tl, tiling.OfmsReuse, mapping.TableI()[1]).EDP(tm)
	m3 := refined.EvaluateLayer(l, tl, tiling.OfmsReuse, mapping.DRMap()).EDP(tm)
	if m3 >= m2 {
		t.Errorf("refined pricing flips the DRMap win: M3 %.4g vs M2 %.4g", m3, m2)
	}
}

func TestWriteCostsFromProfileAccessor(t *testing.T) {
	ev := evaluatorFor(t, dram.SALP1)
	w := WriteCostsFromProfile(ev.Profile)
	if w.Hit != ev.Profile.StreamWrite[trace.AccessRowHit] {
		t.Error("WriteCostsFromProfile hit mismatch")
	}
	if w != ev.WriteCosts {
		t.Error("evaluator did not capture write costs")
	}
}
