// Evaluation phase timing. The count -> price split (countplan.go)
// makes "where did the time go" a first-class question: counting a
// column is the expensive backend-independent work, pricing it is the
// cheap per-backend work, and the ROADMAP's warm-repricing target is
// precisely "price without count". The hook mirrors progress.go: it
// rides the context so no executor signature has to change, and
// context.WithoutCancel (which the service uses to detach evaluations
// from caller deadlines) preserves it.
package core

import (
	"context"
	"time"
)

// Phase names recorded by executors. The count/price pair is emitted
// per grid column by the service's column evaluator; the shard pair by
// the cluster coordinator around dispatch and merge.
const (
	PhaseCount         = "count"
	PhasePrice         = "price"
	PhaseShardDispatch = "shard_dispatch"
	PhaseShardMerge    = "shard_merge"
)

// PhaseRecorder accumulates time spent per evaluation phase.
// Implementations must be safe for concurrent use and must not block:
// they are called from worker goroutines on the evaluation's critical
// path, once per column per phase.
type PhaseRecorder interface {
	RecordPhase(phase string, d time.Duration)
}

type phaseKey struct{}

// WithPhases attaches a phase recorder to ctx.
func WithPhases(ctx context.Context, r PhaseRecorder) context.Context {
	return context.WithValue(ctx, phaseKey{}, r)
}

// PhasesFrom returns the context's phase recorder, or nil when none is
// attached. Callers must nil-check.
func PhasesFrom(ctx context.Context) PhaseRecorder {
	r, _ := ctx.Value(phaseKey{}).(PhaseRecorder)
	return r
}
