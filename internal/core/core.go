// Package core implements the DRMap paper's primary contribution: the
// analytical energy-delay-product (EDP) model of Eq. 2-3 and the
// design-space-exploration algorithm of Algorithm 1.
//
// The model prices every DRAM tile stream of a CNN layer by splitting
// its accesses into the four categories of the paper (different column
// = row-buffer hit, different banks, different subarrays, different
// rows) using a mapping policy's loop structure (package mapping), and
// multiplying the per-category counts with the cycles- and
// energy-per-access characterized on the cycle-accurate simulator
// (package profile). The DSE then searches layer partitionings
// (package tiling), scheduling schemes and mapping policies for the
// minimum-EDP configuration of every layer, for each DRAM architecture.
package core

import (
	"fmt"
	"math"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/profile"
	"drmap/internal/tiling"
	"drmap/internal/trace"
)

// AccessCosts holds the per-access stream cost of each category of the
// analytical model for one DRAM architecture.
type AccessCosts struct {
	Hit      profile.Cost // N/E_dif_column
	Bank     profile.Cost // N/E_dif_banks
	Subarray profile.Cost // N/E_dif_subarrays
	Row      profile.Cost // N/E_dif_rows
}

// CostsFromProfile extracts the four model inputs from a Fig. 1
// characterization (read streams, the paper's convention).
func CostsFromProfile(p *profile.Profile) AccessCosts {
	return AccessCosts{
		Hit:      p.Stream[trace.AccessRowHit],
		Bank:     p.Stream[trace.AccessBankSwitch],
		Subarray: p.Stream[trace.AccessSubarraySwitch],
		Row:      p.Stream[trace.AccessRowConflict],
	}
}

// WriteCostsFromProfile extracts the write-stream counterparts, for the
// direction-aware pricing refinement.
func WriteCostsFromProfile(p *profile.Profile) AccessCosts {
	return AccessCosts{
		Hit:      p.StreamWrite[trace.AccessRowHit],
		Bank:     p.StreamWrite[trace.AccessBankSwitch],
		Subarray: p.StreamWrite[trace.AccessSubarraySwitch],
		Row:      p.StreamWrite[trace.AccessRowConflict],
	}
}

// LayerEDP is the modeled DRAM cost of one layer (or one tile stream).
type LayerEDP struct {
	Cycles float64 // DRAM access cycles (Eq. 2)
	Energy float64 // DRAM access energy in joules (Eq. 3)
}

// Add accumulates another cost.
func (e *LayerEDP) Add(other LayerEDP) {
	e.Cycles += other.Cycles
	e.Energy += other.Energy
}

// Seconds converts the cycle count to seconds under a timing.
func (e LayerEDP) Seconds(t dram.Timing) float64 {
	return t.Seconds(int64(math.Round(e.Cycles)))
}

// EDP returns energy x delay in joule-seconds.
func (e LayerEDP) EDP(t dram.Timing) float64 {
	return e.Energy * e.Seconds(t)
}

// Evaluator prices layer/tiling/schedule/mapping combinations for one
// DRAM architecture. Build one per architecture with NewEvaluator.
type Evaluator struct {
	Profile    *profile.Profile
	Costs      AccessCosts
	WriteCosts AccessCosts
	Accel      accel.Config
	Batch      int
	// UsePhysicalCounts switches the access classification from the
	// paper's loop-level convention to the stream-accurate one
	// (mapping.PhysicalCounts); used by the model-fidelity ablation.
	UsePhysicalCounts bool
	// UseWriteCosts prices write streams (ofm stores, psum spills) with
	// the write-characterized costs instead of the paper's single read
	// cost set; used by the direction-aware pricing refinement.
	UseWriteCosts bool
}

// NewEvaluator builds an evaluator from a characterization profile and
// an accelerator configuration.
func NewEvaluator(p *profile.Profile, acfg accel.Config, batch int) (*Evaluator, error) {
	if err := acfg.Validate(); err != nil {
		return nil, err
	}
	if batch < 1 {
		return nil, fmt.Errorf("core: batch must be >= 1, got %d", batch)
	}
	return &Evaluator{
		Profile:    p,
		Costs:      CostsFromProfile(p),
		WriteCosts: WriteCostsFromProfile(p),
		Accel:      acfg,
		Batch:      batch,
	}, nil
}

// Arch returns the evaluator's DRAM controller capability.
func (ev *Evaluator) Arch() dram.Arch { return ev.Profile.Arch }

// Backend returns the registered DRAM system the evaluator prices; the
// zero value marks an ad-hoc configuration.
func (ev *Evaluator) Backend() dram.Backend { return ev.Profile.Backend }

// Label names the evaluator's DRAM system for reports.
func (ev *Evaluator) Label() string { return ev.Profile.Label() }

// Timing returns the evaluator's DRAM timing.
func (ev *Evaluator) Timing() dram.Timing { return ev.Profile.Config.Timing }

// burstsOf converts a tile's element count to burst-sized DRAM accesses.
func (ev *Evaluator) burstsOf(elems int64) int64 {
	bytes := elems * int64(ev.Accel.BytesPerElement)
	per := int64(ev.Profile.Config.Geometry.AccessBytes())
	return (bytes + per - 1) / per
}

// GroupCounts accumulates the access-category counts of a set of tile
// streams under a mapping policy.
func (ev *Evaluator) GroupCounts(pol mapping.Policy, groups []tiling.TileGroup) mapping.Counts {
	g := ev.Profile.Config.Geometry
	var total mapping.Counts
	for _, grp := range groups {
		bursts := ev.burstsOf(grp.Elems)
		var c mapping.Counts
		if ev.UsePhysicalCounts {
			c = pol.PhysicalCounts(bursts, g)
		} else {
			c = pol.Counts(bursts, g)
		}
		total.Add(c, grp.Loads)
	}
	return total
}

// priceWith applies Eq. 2-3 under an explicit cost set.
func priceWith(costs AccessCosts, c mapping.Counts) LayerEDP {
	return LayerEDP{
		Cycles: float64(c.DifColumn)*costs.Hit.Cycles +
			float64(c.DifBanks)*costs.Bank.Cycles +
			float64(c.DifSubarrays)*costs.Subarray.Cycles +
			float64(c.DifRows)*costs.Row.Cycles,
		Energy: float64(c.DifColumn)*costs.Hit.Energy +
			float64(c.DifBanks)*costs.Bank.Energy +
			float64(c.DifSubarrays)*costs.Subarray.Energy +
			float64(c.DifRows)*costs.Row.Energy,
	}
}

// Price applies Eq. 2-3: counts x per-category cycles and energy,
// using the read cost set as the paper does.
func (ev *Evaluator) Price(c mapping.Counts) LayerEDP {
	return priceWith(ev.Costs, c)
}

// PriceRW prices read and write counts with their own cost sets.
func (ev *Evaluator) PriceRW(read, write mapping.Counts) LayerEDP {
	total := priceWith(ev.Costs, read)
	total.Add(priceWith(ev.WriteCosts, write))
	return total
}

// GroupCountsRW is GroupCounts with the split by transfer direction.
func (ev *Evaluator) GroupCountsRW(pol mapping.Policy, groups []tiling.TileGroup) (read, write mapping.Counts) {
	g := ev.Profile.Config.Geometry
	for _, grp := range groups {
		bursts := ev.burstsOf(grp.Elems)
		var c mapping.Counts
		if ev.UsePhysicalCounts {
			c = pol.PhysicalCounts(bursts, g)
		} else {
			c = pol.Counts(bursts, g)
		}
		if grp.Write {
			write.Add(c, grp.Loads)
		} else {
			read.Add(c, grp.Loads)
		}
	}
	return read, write
}

// priceGroups prices a set of tile streams under the evaluator's
// configured cost model (honoring UseWriteCosts). Both the single-combo
// EvaluateLayer and the DSE grid scan route through it, so the two can
// never desynchronize.
func (ev *Evaluator) priceGroups(pol mapping.Policy, groups []tiling.TileGroup) LayerEDP {
	if ev.UseWriteCosts {
		read, write := ev.GroupCountsRW(pol, groups)
		return ev.PriceRW(read, write)
	}
	return ev.Price(ev.GroupCounts(pol, groups))
}

// EvaluateLayer prices one (layer, tiling, schedule, mapping) combo.
func (ev *Evaluator) EvaluateLayer(l cnn.Layer, tl tiling.Tiling, s tiling.Schedule, pol mapping.Policy) LayerEDP {
	return ev.priceGroups(pol, tiling.TileGroups(l, tl, s, ev.Batch))
}

// MinOverTilings returns the minimum-EDP tiling for a (layer, schedule,
// mapping) combination, searching the given candidate tilings. It is
// the count -> price pipeline over a single-policy column; callers
// scanning many policies or DRAM systems over one tiling set should
// count once with CountScheduleColumn and reprice with MinOverColumn.
func (ev *Evaluator) MinOverTilings(l cnn.Layer, tilings []tiling.Tiling, s tiling.Schedule, pol mapping.Policy) (tiling.Tiling, LayerEDP) {
	lg := LayerGrid{Layer: l, Tilings: tilings}
	ti, best := ev.MinOverColumn(ev.CountScheduleColumn(lg, 0, s, []mapping.Policy{pol}), 0)
	var bestTiling tiling.Tiling
	if ti >= 0 {
		bestTiling = tilings[ti]
	}
	return bestTiling, best
}

// Combo identifies one DSE design point.
type Combo struct {
	Tiling   tiling.Tiling
	Schedule tiling.Schedule
	Policy   mapping.Policy
}

// LayerResult is the DSE outcome for one layer.
type LayerResult struct {
	Layer  cnn.Layer
	Best   Combo
	Cost   LayerEDP
	MinEDP float64
}

// DSEResult is the DSE outcome for a whole network on one DRAM system.
type DSEResult struct {
	// Backend identifies the DRAM system the search ran on; zero for
	// ad-hoc configurations.
	Backend dram.Backend
	// Arch is the system's controller capability (kept alongside the
	// backend because the paper's comparison tables are capability-keyed).
	Arch   dram.Arch
	Layers []LayerResult
}

// Label names the DSE's DRAM system for reports: the backend name when
// the search ran on a registered backend, else the capability arch.
func (r *DSEResult) Label() string { return dram.LabelFor(r.Backend, r.Arch) }

// TotalEDP sums the per-layer minimum EDPs; the paper's "minimum total
// EDP for a whole network" aggregates per-layer EDPs the same way
// (Fig. 9's Total group).
func (r *DSEResult) TotalEDP() float64 {
	var total float64
	for _, l := range r.Layers {
		total += l.MinEDP
	}
	return total
}

// TotalEnergy sums per-layer energies of the chosen design points.
func (r *DSEResult) TotalEnergy() float64 {
	var total float64
	for _, l := range r.Layers {
		total += l.Cost.Energy
	}
	return total
}

// RunDSE executes Algorithm 1: for every layer of the network it
// searches all feasible partitionings, all given scheduling schemes and
// all given mapping policies, and keeps the minimum-EDP combination.
func RunDSE(net cnn.Network, ev *Evaluator, schedules []tiling.Schedule, policies []mapping.Policy) (*DSEResult, error) {
	return RunDSEObjective(net, ev, schedules, policies, MinimizeEDP)
}

// RunDSEObjective is RunDSE under an explicit optimization objective.
// LayerResult.MinEDP always reports the EDP of the chosen design point
// regardless of the objective, so results remain comparable.
//
// The scan is expressed over the evaluation grid of grid.go: each
// (layer, schedule, policy) cell searches its tilings independently and
// ReduceCells restores the serial pick order, so the parallel executor
// of package service reproduces this function's output bit for bit.
// Cells honor the evaluator's UseWriteCosts/UsePhysicalCounts flags,
// so those refinements now apply to the DSE too (earlier revisions
// priced the scan with the plain read cost set regardless).
func RunDSEObjective(net cnn.Network, ev *Evaluator, schedules []tiling.Schedule, policies []mapping.Policy, obj Objective) (*DSEResult, error) {
	grids, err := DSEGrid(net, ev, schedules, policies)
	if err != nil {
		return nil, err
	}
	result := &DSEResult{Backend: ev.Backend(), Arch: ev.Arch()}
	for _, lg := range grids {
		result.Layers = append(result.Layers, ev.EvaluateLayerGrid(lg, schedules, policies, obj))
	}
	return result, nil
}

// Fig9Point is one bar of the paper's Fig. 9: the minimum EDP (over
// partitionings) of a layer for one mapping policy on one architecture
// under one scheduling scheme.
type Fig9Point struct {
	Layer   string
	Policy  mapping.Policy
	Backend dram.Backend // registered DRAM system (zero for ad-hoc configs)
	Arch    dram.Arch
	Cost    LayerEDP
	Seconds float64
	EDP     float64
}

// Label names the point's DRAM system the way reports print it.
func (p Fig9Point) Label() string { return dram.LabelFor(p.Backend, p.Arch) }

// TotalLayerName labels the aggregate pseudo-layer of Fig. 9.
const TotalLayerName = "Total"

// Fig9Series regenerates one subplot of Fig. 9: for every layer of the
// network (plus the Total aggregate), every mapping policy and every
// provided evaluator (one per architecture), the minimum EDP over all
// feasible partitionings under the given scheduling scheme.
//
// The series runs the count -> price split per layer: each distinct
// CountKey among the evaluators counts the (tiling x policy) plan once,
// and every evaluator reprices its group's plan - so the four paper
// architectures (which share one die geometry) expand and count every
// layer's tile streams once instead of four times, with points
// bit-for-bit identical to the per-evaluator scan.
func Fig9Series(net cnn.Network, s tiling.Schedule, evs []*Evaluator, policies []mapping.Policy) ([]Fig9Point, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if len(evs) == 0 {
		return nil, fmt.Errorf("core: Fig9Series needs at least one evaluator")
	}
	var points []Fig9Point
	type key struct {
		pol     string
		backend string
		arch    dram.Arch
	}
	totals := make(map[key]*Fig9Point)
	for _, layer := range net.Layers {
		tilings := tiling.Enumerate(layer, evs[0].Accel)
		if len(tilings) == 0 {
			return nil, fmt.Errorf("core: layer %s: no partitioning fits the buffers", layer.Name)
		}
		lg := LayerGrid{Layer: layer, Tilings: tilings}
		plans := make(map[CountKey]*CountColumn, len(evs))
		for _, ev := range evs {
			if k := ev.CountKey(); plans[k] == nil {
				plans[k] = ev.CountScheduleColumn(lg, 0, s, policies)
			}
		}
		for pi, pol := range policies {
			for _, ev := range evs {
				_, cost := ev.MinOverColumn(plans[ev.CountKey()], pi)
				tm := ev.Timing()
				p := Fig9Point{
					Layer:   layer.Name,
					Policy:  pol,
					Backend: ev.Backend(),
					Arch:    ev.Arch(),
					Cost:    cost,
					Seconds: cost.Seconds(tm),
					EDP:     cost.EDP(tm),
				}
				points = append(points, p)
				k := key{pol: pol.Name, backend: ev.Backend().ID, arch: ev.Arch()}
				if agg, ok := totals[k]; ok {
					agg.Cost.Add(cost)
					agg.Seconds += p.Seconds
					agg.EDP += p.EDP
				} else {
					totals[k] = &Fig9Point{Layer: TotalLayerName, Policy: pol, Backend: ev.Backend(),
						Arch: ev.Arch(), Cost: cost, Seconds: p.Seconds, EDP: p.EDP}
				}
			}
		}
	}
	for _, pol := range policies {
		for _, ev := range evs {
			if agg, ok := totals[key{pol: pol.Name, backend: ev.Backend().ID, arch: ev.Arch()}]; ok {
				points = append(points, *agg)
			}
		}
	}
	return points, nil
}

// SelectLabeledPoint finds the Fig. 9 point for a (layer, policy ID,
// system label) triple, or nil if absent. Labels distinguish backends
// that share a controller capability (e.g. DDR3 vs DDR4-2400).
func SelectLabeledPoint(points []Fig9Point, layer string, policyID int, label string) *Fig9Point {
	for i := range points {
		p := &points[i]
		if p.Layer == layer && p.Policy.ID == policyID && p.Label() == label {
			return p
		}
	}
	return nil
}

// SelectPoint finds the Fig. 9 point for a (layer, policy ID, arch)
// triple, or nil if absent. The paper's comparison tables are keyed by
// the four-arch capability; series mixing several backends of one
// capability should use SelectLabeledPoint.
func SelectPoint(points []Fig9Point, layer string, policyID int, arch dram.Arch) *Fig9Point {
	for i := range points {
		p := &points[i]
		if p.Layer == layer && p.Policy.ID == policyID && p.Arch == arch {
			return p
		}
	}
	return nil
}

// DRMapImprovement returns the paper's headline metric for one
// architecture: the relative EDP improvement of DRMap (Mapping-3) over
// the worst Table I mapping on the Total aggregate, in [0,1).
func DRMapImprovement(points []Fig9Point, arch dram.Arch) (float64, error) {
	drmap := SelectPoint(points, TotalLayerName, 3, arch)
	if drmap == nil {
		return 0, fmt.Errorf("core: no DRMap total point for %v", arch)
	}
	worst := math.Inf(-1)
	for _, p := range points {
		if p.Layer == TotalLayerName && p.Arch == arch && p.EDP > worst {
			worst = p.EDP
		}
	}
	if worst <= 0 {
		return 0, fmt.Errorf("core: degenerate worst EDP for %v", arch)
	}
	return 1 - drmap.EDP/worst, nil
}

// SALPImprovement returns Key Observation 4's metric: the relative EDP
// improvement of the given SALP architecture over DDR3 for one mapping
// policy on the Total aggregate.
func SALPImprovement(points []Fig9Point, policyID int, arch dram.Arch) (float64, error) {
	base := SelectPoint(points, TotalLayerName, policyID, dram.DDR3)
	salp := SelectPoint(points, TotalLayerName, policyID, arch)
	if base == nil || salp == nil {
		return 0, fmt.Errorf("core: missing total points for mapping %d on %v", policyID, arch)
	}
	if base.EDP <= 0 {
		return 0, fmt.Errorf("core: degenerate DDR3 EDP for mapping %d", policyID)
	}
	return 1 - salp.EDP/base.EDP, nil
}
