package core

import (
	"testing"

	"drmap/internal/accel"
	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/profile"
	"drmap/internal/tiling"
)

func TestObjectiveStrings(t *testing.T) {
	cases := map[Objective]string{
		MinimizeEDP:    "min-EDP",
		MinimizeEnergy: "min-energy",
		MinimizeDelay:  "min-delay",
		Objective(7):   "Objective(7)",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("Objective(%d) = %q, want %q", int(o), got, want)
		}
	}
}

func TestObjectiveValues(t *testing.T) {
	tm := dram.DDR3Config().Timing
	e := LayerEDP{Cycles: 800, Energy: 3e-9}
	within := func(got, want float64) bool {
		return got > want*(1-1e-12) && got < want*(1+1e-12)
	}
	if got := MinimizeEnergy.Value(e, tm); !within(got, 3e-9) {
		t.Errorf("energy objective = %g", got)
	}
	if got := MinimizeDelay.Value(e, tm); !within(got, 1e-6) {
		t.Errorf("delay objective = %g", got)
	}
	if got := MinimizeEDP.Value(e, tm); !within(got, 3e-15) {
		t.Errorf("EDP objective = %g", got)
	}
}

func TestDRMapWinsUnderEveryObjective(t *testing.T) {
	// Ablation: DRMap's win does not depend on the EDP formulation -
	// it also minimizes energy alone and delay alone, because its access
	// mix is hit-dominated on both axes. Tiny layers whose whole tile
	// fits one DRAM row tie across column-inner policies, so the
	// assertion is "nothing strictly beats the DRMap-only search".
	ev := evaluatorFor(t, dram.SALP1)
	for _, obj := range Objectives {
		free, err := RunDSEObjective(cnn.LeNet5(), ev, tiling.Schedules, mapping.TableI(), obj)
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		only, err := RunDSEObjective(cnn.LeNet5(), ev, tiling.Schedules,
			[]mapping.Policy{mapping.DRMap()}, obj)
		if err != nil {
			t.Fatal(err)
		}
		for i, lr := range free.Layers {
			if lr.MinEDP < only.Layers[i].MinEDP*(1-1e-9) {
				t.Errorf("%v/%s: some mapping (%s) strictly beats DRMap: %.6g < %.6g",
					obj, lr.Layer.Name, lr.Best.Policy.Name, lr.MinEDP, only.Layers[i].MinEDP)
			}
		}
	}
}

func TestObjectiveChangesChosenDesignPointValue(t *testing.T) {
	// The chosen tiling/schedule may legitimately differ between
	// objectives, but the reported MinEDP must always be the EDP of the
	// chosen point - and the min-EDP objective must report the lowest.
	ev := evaluatorFor(t, dram.DDR3)
	edp, err := RunDSEObjective(cnn.LeNet5(), ev, tiling.Schedules, mapping.TableI(), MinimizeEDP)
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range []Objective{MinimizeEnergy, MinimizeDelay} {
		other, err := RunDSEObjective(cnn.LeNet5(), ev, tiling.Schedules, mapping.TableI(), obj)
		if err != nil {
			t.Fatal(err)
		}
		if other.TotalEDP() < edp.TotalEDP()*(1-1e-9) {
			t.Errorf("%v found lower EDP (%.4g) than the EDP objective (%.4g)",
				obj, other.TotalEDP(), edp.TotalEDP())
		}
	}
}

func TestGeneralityDDR4AndLPDDR3(t *testing.T) {
	// Sec. V-B's claim: DRMap applies to any DRAM with the same
	// organization. Characterize commodity DDR4 and LPDDR3 and their
	// MASA variants; the DSE must still land on Mapping-3 everywhere.
	bases := []dram.Config{dram.DDR4Config(), dram.LPDDR3Config()}
	for _, base := range bases {
		for _, cfg := range []dram.Config{base, dram.WithSALP(base, dram.SALPMASA)} {
			prof, err := profile.Characterize(cfg)
			if err != nil {
				t.Fatalf("%v: %v", cfg, err)
			}
			ev, err := NewEvaluator(prof, accel.TableII(), 1)
			if err != nil {
				t.Fatal(err)
			}
			free, err := RunDSE(cnn.LeNet5(), ev, tiling.Schedules, mapping.TableI())
			if err != nil {
				t.Fatal(err)
			}
			only, err := RunDSE(cnn.LeNet5(), ev, tiling.Schedules, []mapping.Policy{mapping.DRMap()})
			if err != nil {
				t.Fatal(err)
			}
			for i, lr := range free.Layers {
				if lr.MinEDP < only.Layers[i].MinEDP*(1-1e-9) {
					t.Errorf("%v/%s: %s strictly beats DRMap (%.6g < %.6g)",
						cfg.Arch, lr.Layer.Name, lr.Best.Policy.Name,
						lr.MinEDP, only.Layers[i].MinEDP)
				}
			}
		}
	}
}
