package core

import (
	"testing"

	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/tiling"
)

// leNetSpec returns a small layer spec whose trace-driven simulation is
// cheap enough for unit tests.
func leNetSpec() LayerSpec {
	return LayerSpec{
		Layer:    cnn.LeNet5().Layers[1], // CONV2: 10x10x16, I=6, 5x5
		Tiling:   tiling.Tiling{Th: 10, Tw: 10, Tj: 16, Ti: 6},
		Schedule: tiling.OfmsReuse,
		Batch:    1,
	}
}

func TestSimulateLayerPositive(t *testing.T) {
	cost, err := SimulateLayer(dram.DDR3Config(), mapping.DRMap(), leNetSpec(), 1)
	if err != nil {
		t.Fatalf("SimulateLayer: %v", err)
	}
	if cost.Cycles <= 0 || cost.Energy <= 0 {
		t.Errorf("degenerate simulated cost %+v", cost)
	}
}

func TestSimulateRejectsBadInputs(t *testing.T) {
	if _, err := SimulateGroups(dram.DDR3Config(), mapping.DRMap(), nil, 0); err == nil {
		t.Error("accepted zero bytes per element")
	}
	bad := dram.DDR3Config()
	bad.Geometry.Banks = 0
	if _, err := SimulateGroups(bad, mapping.DRMap(), nil, 1); err == nil {
		t.Error("accepted invalid DRAM config")
	}
}

func TestSimulationAgreesWithAnalyticalModel(t *testing.T) {
	// The analytical model prices tile streams with steady-state
	// per-category costs; the trace-driven simulation is the ground
	// truth. For DRMap's hit-dominated streams the two must agree
	// closely (within 25%).
	spec := leNetSpec()
	for _, arch := range dram.Archs {
		ev := evaluatorFor(t, arch)
		analytic := ev.EvaluateLayer(spec.Layer, spec.Tiling, spec.Schedule, mapping.DRMap())
		simulated, err := SimulateLayer(dram.ConfigFor(arch), mapping.DRMap(), spec, 1)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		ratio := analytic.Cycles / simulated.Cycles
		if ratio < 0.75 || ratio > 1.35 {
			t.Errorf("%v: analytic cycles %.0f vs simulated %.0f (ratio %.2f)",
				arch, analytic.Cycles, simulated.Cycles, ratio)
		}
		eratio := analytic.Energy / simulated.Energy
		if eratio < 0.6 || eratio > 1.6 {
			t.Errorf("%v: analytic energy %.3g vs simulated %.3g (ratio %.2f)",
				arch, analytic.Energy, simulated.Energy, eratio)
		}
	}
}

func TestSimulationPreservesMappingOrdering(t *testing.T) {
	// Whatever the absolute errors, simulation and analytical model must
	// agree that DRMap beats the subarray-first Mapping-2.
	spec := leNetSpec()
	for _, arch := range dram.Archs {
		cfg := dram.ConfigFor(arch)
		tm := cfg.Timing
		ev := evaluatorFor(t, arch)
		simM3, err := SimulateLayer(cfg, mapping.TableI()[2], spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		simM2, err := SimulateLayer(cfg, mapping.TableI()[1], spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !(simM3.EDP(tm) < simM2.EDP(tm)) {
			t.Errorf("%v: simulation says Mapping-2 (%.3g) beats DRMap (%.3g)",
				arch, simM2.EDP(tm), simM3.EDP(tm))
		}
		anaM3 := ev.EvaluateLayer(spec.Layer, spec.Tiling, spec.Schedule, mapping.TableI()[2])
		anaM2 := ev.EvaluateLayer(spec.Layer, spec.Tiling, spec.Schedule, mapping.TableI()[1])
		if !(anaM3.EDP(tm) < anaM2.EDP(tm)) {
			t.Errorf("%v: analytic says Mapping-2 beats DRMap", arch)
		}
	}
}

func TestSimulationShowsSALPBenefitForMapping2(t *testing.T) {
	// Ground-truth check of the paper's premise: on the subarray-first
	// mapping, MASA must be much faster than DDR3 in actual simulation.
	spec := leNetSpec()
	m2 := mapping.TableI()[1]
	ddr3, err := SimulateLayer(dram.DDR3Config(), m2, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	masa, err := SimulateLayer(dram.SALPMASAConfig(), m2, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if masa.Cycles*2 > ddr3.Cycles {
		t.Errorf("MASA (%.0f cycles) not well below DDR3 (%.0f) for Mapping-2", masa.Cycles, ddr3.Cycles)
	}
}
