package core

import (
	"math"
	"testing"

	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/tiling"
)

func TestTensorSplitSumsToTotal(t *testing.T) {
	// The per-tensor cost split must reproduce EvaluateLayer exactly for
	// every schedule and mapping.
	ev := evaluatorFor(t, dram.SALP1)
	l := cnn.AlexNet().Layers[1]
	tl := tiling.Tiling{Th: 9, Tw: 9, Tj: 32, Ti: 16}
	for _, s := range tiling.Schedules {
		for _, pol := range mapping.TableI() {
			whole := ev.EvaluateLayer(l, tl, s, pol)
			split := ev.EvaluateLayerByDataType(l, tl, s, pol).Total()
			if math.Abs(whole.Cycles-split.Cycles) > whole.Cycles*1e-9 {
				t.Errorf("%v/%s: cycles split %.6g != whole %.6g", s, pol.Name, split.Cycles, whole.Cycles)
			}
			if math.Abs(whole.Energy-split.Energy) > whole.Energy*1e-9 {
				t.Errorf("%v/%s: energy split %.6g != whole %.6g", s, pol.Name, split.Energy, whole.Energy)
			}
		}
	}
}

func TestFCLayersAreWeightDominated(t *testing.T) {
	// Sanity of the split: AlexNet FC6's DRAM cost must be dominated by
	// weights, CONV1's by activations.
	ev := evaluatorFor(t, dram.DDR3)
	net := cnn.AlexNet()
	fc6 := net.Layers[5]
	tilings := tiling.Enumerate(fc6, ev.Accel)
	best, _ := ev.MinOverTilings(fc6, tilings, tiling.AdaptiveReuse, mapping.DRMap())
	split := ev.EvaluateLayerByDataType(fc6, best, tiling.AdaptiveReuse, mapping.DRMap())
	if split.Wgt.Energy < 5*(split.Ifm.Energy+split.Ofm.Energy) {
		t.Errorf("FC6 not weight-dominated: ifm %.3g wgt %.3g ofm %.3g",
			split.Ifm.Energy, split.Wgt.Energy, split.Ofm.Energy)
	}
	conv1 := net.Layers[0]
	tilings = tiling.Enumerate(conv1, ev.Accel)
	best, _ = ev.MinOverTilings(conv1, tilings, tiling.AdaptiveReuse, mapping.DRMap())
	split = ev.EvaluateLayerByDataType(conv1, best, tiling.AdaptiveReuse, mapping.DRMap())
	if split.Wgt.Energy > split.Ifm.Energy+split.Ofm.Energy {
		t.Errorf("CONV1 weight traffic (%.3g) should not dominate activations (%.3g)",
			split.Wgt.Energy, split.Ifm.Energy+split.Ofm.Energy)
	}
}

func TestBuildReportAlexNet(t *testing.T) {
	ev := evaluatorFor(t, dram.SALPMASA)
	rep, err := BuildReport(cnn.AlexNet(), ev, tiling.Schedules, mapping.TableI(), 0)
	if err != nil {
		t.Fatalf("BuildReport: %v", err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("report inconsistent: %v", err)
	}
	if len(rep.Layers) != 8 {
		t.Fatalf("%d layer reports", len(rep.Layers))
	}
	if rep.TotalSeconds() <= 0 || rep.TotalEnergy() <= 0 || rep.TotalEDP() <= 0 {
		t.Errorf("degenerate totals: %g s, %g J, %g Js",
			rep.TotalSeconds(), rep.TotalEnergy(), rep.TotalEDP())
	}
	// The paper's motivation: CNN accelerators are DRAM-limited; at
	// least some AlexNet layers must be memory-bound on this 8x8 array.
	if rep.MemoryBoundLayers() == 0 {
		t.Error("no memory-bound layers on an 8x8 MAC array; traffic model suspicious")
	}
	for _, lr := range rep.Layers {
		if lr.Perf.TotalSeconds < lr.DRAMSeconds {
			t.Errorf("%s: total %.3g below DRAM time %.3g", lr.Layer.Name, lr.Perf.TotalSeconds, lr.DRAMSeconds)
		}
		if lr.Best.Policy.ID != 3 {
			t.Errorf("%s: report's DSE winner is %s", lr.Layer.Name, lr.Best.Policy.Name)
		}
	}
}

func TestBuildReportPropagatesErrors(t *testing.T) {
	ev := evaluatorFor(t, dram.DDR3)
	if _, err := BuildReport(cnn.Network{Name: "empty"}, ev, tiling.Schedules, mapping.TableI(), 0); err == nil {
		t.Error("BuildReport accepted empty network")
	}
}

func TestValidateDetectsCorruptedReport(t *testing.T) {
	ev := evaluatorFor(t, dram.DDR3)
	rep, err := BuildReport(cnn.LeNet5(), ev, tiling.Schedules, mapping.TableI(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rep.Layers[0].Cost.Cycles *= 2
	if err := rep.Validate(); err == nil {
		t.Error("Validate accepted corrupted report")
	}
}

func TestDataTypeCostTotal(t *testing.T) {
	d := DataTypeCost{
		Ifm: LayerEDP{Cycles: 1, Energy: 10},
		Wgt: LayerEDP{Cycles: 2, Energy: 20},
		Ofm: LayerEDP{Cycles: 3, Energy: 30},
	}
	tot := d.Total()
	if tot.Cycles != 6 || tot.Energy != 60 {
		t.Errorf("Total = %+v", tot)
	}
}
