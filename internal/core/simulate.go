package core

import (
	"fmt"

	"drmap/internal/cnn"
	"drmap/internal/dram"
	"drmap/internal/mapping"
	"drmap/internal/memctrl"
	"drmap/internal/tiling"
	"drmap/internal/trace"
	"drmap/internal/vampire"
)

// SimulateGroups prices a set of tile streams by running each stream
// through the cycle-accurate controller and the energy model instead of
// the analytical category counts. Each distinct tile stream is
// simulated once from a cold controller and scaled by its load count,
// mirroring the analytical model's per-tile independence assumption.
//
// It is the validation path of the tool flow (Fig. 8): comparing its
// output against Evaluator.Price quantifies the approximation error of
// the paper's Eq. 2-3 pricing.
func SimulateGroups(cfg dram.Config, pol mapping.Policy, groups []tiling.TileGroup, bytesPerElement int) (LayerEDP, error) {
	if bytesPerElement <= 0 {
		return LayerEDP{}, fmt.Errorf("core: bytes per element must be positive, got %d", bytesPerElement)
	}
	ctrl, err := memctrl.New(cfg, memctrl.Options{})
	if err != nil {
		return LayerEDP{}, err
	}
	model, err := vampire.New(cfg)
	if err != nil {
		return LayerEDP{}, err
	}
	accessBytes := int64(cfg.Geometry.AccessBytes())
	var total LayerEDP
	for _, grp := range groups {
		bursts := (grp.Elems*int64(bytesPerElement) + accessBytes - 1) / accessBytes
		addrs := pol.Addresses(bursts, cfg.Geometry)
		reqs := make([]trace.Request, len(addrs))
		op := trace.Read
		if grp.Write {
			op = trace.Write
		}
		for i, a := range addrs {
			reqs[i] = trace.Request{Op: op, Addr: a}
		}
		res, err := ctrl.Run(reqs)
		if err != nil {
			return LayerEDP{}, err
		}
		act := vampire.ActivityFromCounts(res.KindCounts, res.DeviceActiveCycles, res.TotalCycles)
		act.ExtraOpenSubarrayCycles = res.ExtraOpenSubarrayCycles
		total.Cycles += float64(res.TotalCycles) * float64(grp.Loads)
		total.Energy += model.Energy(act).Total() * float64(grp.Loads)
	}
	return total, nil
}

// LayerSpec bundles the inputs of a trace-driven layer simulation.
type LayerSpec struct {
	Layer    cnn.Layer
	Tiling   tiling.Tiling
	Schedule tiling.Schedule
	Batch    int
}

// SimulateLayer is SimulateGroups applied to a (layer, tiling,
// schedule) combination, expanding the tile streams first.
func SimulateLayer(cfg dram.Config, pol mapping.Policy, spec LayerSpec, bytesPerElement int) (LayerEDP, error) {
	groups := tiling.TileGroups(spec.Layer, spec.Tiling, spec.Schedule, spec.Batch)
	return SimulateGroups(cfg, pol, groups, bytesPerElement)
}
