// The vectorized form of a count plan. A CountColumn stores one
// CellCounts struct per design point - 8 int64 fields that pricing
// multiplies into float64 cost scalars cell by cell. That layout walks
// 128 bytes of struct per cell and converts every count on every
// reprice, which is wasted work on the warm path, where one plan is
// repriced for many backends and objectives.
//
// FlatColumn stores the same plan as packed []float64 planes, one per
// access category and transfer direction, in one contiguous backing
// array: repricing becomes a branch-light linear scan over 4 (or 8)
// sequential streams with a precomputed cost vector, no per-cell struct
// walks and no integer conversions. The read-cost convention's summed
// counts are precomputed at flatten time from the exact int64 sums, so
// both pricing conventions are served by one plan and both remain
// bit-for-bit identical to the struct path (see PriceFlatInto).
package core

import (
	"math"

	"drmap/internal/mapping"
)

// Plane indices of a FlatColumn: the four access categories of Eq. 2-3
// per direction, plus the precomputed read+write totals the paper's
// read-cost convention prices.
const (
	planeReadColumn = iota
	planeReadBanks
	planeReadSubarrays
	planeReadRows
	planeWriteColumn
	planeWriteBanks
	planeWriteSubarrays
	planeWriteRows
	planeTotalColumn
	planeTotalBanks
	planeTotalSubarrays
	planeTotalRows
	flatPlanes
)

// FlatColumn is the vectorized count plan of one (layer, schedule) grid
// column: CountColumn's cells transposed into contiguous column-major
// float64 planes, cell (ti, pi) at index ti*Policies+pi of every plane.
// It carries the read, write and precomputed read+write count of each
// access category, so one flat plan reprices under either pricing
// convention (UseWriteCosts on or off). Build one with
// CountColumn.Flatten; a FlatColumn is immutable after construction and
// safe for concurrent repricing.
type FlatColumn struct {
	LayerIndex    int
	ScheduleIndex int
	// Policies is the row width (the policy count), as in CountColumn.
	Policies int

	cells int
	// data holds the flatPlanes planes back to back in one allocation;
	// plane p spans data[p*cells : (p+1)*cells].
	data []float64
}

// Flatten transposes the count plan into its vectorized form. The
// total planes are converted from the exact int64 read+write sums - not
// summed in float64 - so repricing them reproduces the struct path's
// add-then-convert arithmetic bit for bit.
func (cc *CountColumn) Flatten() *FlatColumn {
	n := len(cc.Cells)
	fc := &FlatColumn{
		LayerIndex:    cc.LayerIndex,
		ScheduleIndex: cc.ScheduleIndex,
		Policies:      cc.Policies,
		cells:         n,
		data:          make([]float64, flatPlanes*n),
	}
	rCol, rBank, rSub, rRow := fc.plane(planeReadColumn), fc.plane(planeReadBanks), fc.plane(planeReadSubarrays), fc.plane(planeReadRows)
	wCol, wBank, wSub, wRow := fc.plane(planeWriteColumn), fc.plane(planeWriteBanks), fc.plane(planeWriteSubarrays), fc.plane(planeWriteRows)
	tCol, tBank, tSub, tRow := fc.plane(planeTotalColumn), fc.plane(planeTotalBanks), fc.plane(planeTotalSubarrays), fc.plane(planeTotalRows)
	for i := range cc.Cells {
		c := &cc.Cells[i]
		rCol[i] = float64(c.Read.DifColumn)
		rBank[i] = float64(c.Read.DifBanks)
		rSub[i] = float64(c.Read.DifSubarrays)
		rRow[i] = float64(c.Read.DifRows)
		wCol[i] = float64(c.Write.DifColumn)
		wBank[i] = float64(c.Write.DifBanks)
		wSub[i] = float64(c.Write.DifSubarrays)
		wRow[i] = float64(c.Write.DifRows)
		total := c.Read
		total.Add(c.Write, 1)
		tCol[i] = float64(total.DifColumn)
		tBank[i] = float64(total.DifBanks)
		tSub[i] = float64(total.DifSubarrays)
		tRow[i] = float64(total.DifRows)
	}
	return fc
}

// plane returns one packed plane.
func (fc *FlatColumn) plane(p int) []float64 {
	return fc.data[p*fc.cells : (p+1)*fc.cells]
}

// Tilings returns the number of candidate tilings the plan covers.
func (fc *FlatColumn) Tilings() int {
	if fc.Policies == 0 {
		return 0
	}
	return fc.cells / fc.Policies
}

// Cells returns the number of design points the plan covers.
func (fc *FlatColumn) Cells() int { return fc.cells }

// SizeBytes reports the plan's resident memory: the backing array plus
// the struct header - the unit the plan cache's byte budget accounts.
func (fc *FlatColumn) SizeBytes() int64 {
	const headerBytes = 64 // struct fields + slice header, rounded up
	return int64(len(fc.data))*8 + headerBytes
}

// At reconstructs the CellCounts of (tiling ti, policy pi) from the
// planes - a test and debugging convenience. The round trip is exact
// while every count fits float64's 53-bit mantissa, which the modeled
// access counts do by a wide margin.
func (fc *FlatColumn) At(ti, pi int) CellCounts {
	i := ti*fc.Policies + pi
	return CellCounts{
		Read: mapping.Counts{
			DifColumn:    int64(fc.plane(planeReadColumn)[i]),
			DifBanks:     int64(fc.plane(planeReadBanks)[i]),
			DifSubarrays: int64(fc.plane(planeReadSubarrays)[i]),
			DifRows:      int64(fc.plane(planeReadRows)[i]),
		},
		Write: mapping.Counts{
			DifColumn:    int64(fc.plane(planeWriteColumn)[i]),
			DifBanks:     int64(fc.plane(planeWriteBanks)[i]),
			DifSubarrays: int64(fc.plane(planeWriteSubarrays)[i]),
			DifRows:      int64(fc.plane(planeWriteRows)[i]),
		},
	}
}

// flatCosts is the precomputed cost vector of one pricing scan: the
// per-category cycle and energy costs the planes multiply against.
type flatCosts struct {
	colC, bankC, subC, rowC float64 // cycles
	colE, bankE, subE, rowE float64 // energy
}

func costsVec(c AccessCosts) flatCosts {
	return flatCosts{
		colC: c.Hit.Cycles, bankC: c.Bank.Cycles, subC: c.Subarray.Cycles, rowC: c.Row.Cycles,
		colE: c.Hit.Energy, bankE: c.Bank.Energy, subE: c.Subarray.Energy, rowE: c.Row.Energy,
	}
}

// priceFlat prices cell i of the plan under the evaluator's configured
// convention. The multiply-add chains mirror priceWith's expression
// shape exactly (left-associated, no fused operations introduced), and
// the write-cost path sums the two directions' subtotals exactly as
// PriceRW does, so the result is bit-for-bit the struct path's.
func (fc *FlatColumn) priceFlat(i int, useWrite bool, read, write flatCosts) LayerEDP {
	if !useWrite {
		tCol, tBank, tSub, tRow := fc.plane(planeTotalColumn), fc.plane(planeTotalBanks), fc.plane(planeTotalSubarrays), fc.plane(planeTotalRows)
		return LayerEDP{
			Cycles: tCol[i]*read.colC + tBank[i]*read.bankC + tSub[i]*read.subC + tRow[i]*read.rowC,
			Energy: tCol[i]*read.colE + tBank[i]*read.bankE + tSub[i]*read.subE + tRow[i]*read.rowE,
		}
	}
	rCol, rBank, rSub, rRow := fc.plane(planeReadColumn), fc.plane(planeReadBanks), fc.plane(planeReadSubarrays), fc.plane(planeReadRows)
	wCol, wBank, wSub, wRow := fc.plane(planeWriteColumn), fc.plane(planeWriteBanks), fc.plane(planeWriteSubarrays), fc.plane(planeWriteRows)
	cost := LayerEDP{
		Cycles: rCol[i]*read.colC + rBank[i]*read.bankC + rSub[i]*read.subC + rRow[i]*read.rowC,
		Energy: rCol[i]*read.colE + rBank[i]*read.bankE + rSub[i]*read.subE + rRow[i]*read.rowE,
	}
	cost.Add(LayerEDP{
		Cycles: wCol[i]*write.colC + wBank[i]*write.bankC + wSub[i]*write.subC + wRow[i]*write.rowC,
		Energy: wCol[i]*write.colE + wBank[i]*write.bankE + wSub[i]*write.subE + wRow[i]*write.rowE,
	})
	return cost
}

// resizeCells returns a cell buffer of length n, reusing out's backing
// array when it is large enough - the scratch-reuse seam that makes the
// warm reprice loop allocation-free.
func resizeCells(out []CellResult, n int) []CellResult {
	if cap(out) < n {
		return make([]CellResult, n)
	}
	return out[:n]
}

// PriceFlatInto reprices a flat plan under this evaluator's cost sets,
// timing and the given objective, writing the winners into out (grown
// only if its capacity is short) and returning it. The scan order, the
// strict-minimum rule and every float64 operation match PriceCells over
// the unflattened plan, so the cells are bit-for-bit identical to the
// struct path's for any evaluator whose CountKey matches the plan's
// producer - at a fraction of the memory traffic, and with zero
// allocations when out is reused across calls.
//
// The scan body is hand-flattened: plane slices are hoisted out of the
// loop and the pricing and objective arithmetic inlined (same
// left-associated expression shapes as priceFlat and Objective.Value,
// no fused operations), so the per-cell work is pure float math plus
// one predictable branch - this loop is the entire warm path of a
// serving daemon, and call overhead per cell dominated it.
func (ev *Evaluator) PriceFlatInto(fc *FlatColumn, obj Objective, out []CellResult) []CellResult {
	tm := ev.Timing()
	out = resizeCells(out, fc.Policies)
	for pi := range out {
		out[pi] = CellResult{
			LayerIndex:    fc.LayerIndex,
			ScheduleIndex: fc.ScheduleIndex,
			PolicyIndex:   pi,
			Value:         math.Inf(1),
		}
	}
	read, write := costsVec(ev.Costs), costsVec(ev.WriteCosts)
	useWrite := ev.UseWriteCosts
	rCol, rBank, rSub, rRow := fc.plane(planeReadColumn), fc.plane(planeReadBanks), fc.plane(planeReadSubarrays), fc.plane(planeReadRows)
	wCol, wBank, wSub, wRow := fc.plane(planeWriteColumn), fc.plane(planeWriteBanks), fc.plane(planeWriteSubarrays), fc.plane(planeWriteRows)
	if !useWrite {
		rCol, rBank, rSub, rRow = fc.plane(planeTotalColumn), fc.plane(planeTotalBanks), fc.plane(planeTotalSubarrays), fc.plane(planeTotalRows)
	}
	tilings, policies := fc.Tilings(), fc.Policies
	i := 0
	for ti := 0; ti < tilings; ti++ {
		for pi := 0; pi < policies; pi++ {
			cycles := rCol[i]*read.colC + rBank[i]*read.bankC + rSub[i]*read.subC + rRow[i]*read.rowC
			energy := rCol[i]*read.colE + rBank[i]*read.bankE + rSub[i]*read.subE + rRow[i]*read.rowE
			if useWrite {
				cycles += wCol[i]*write.colC + wBank[i]*write.bankC + wSub[i]*write.subC + wRow[i]*write.rowC
				energy += wCol[i]*write.colE + wBank[i]*write.bankE + wSub[i]*write.subE + wRow[i]*write.rowE
			}
			var v float64
			switch obj {
			case MinimizeEnergy:
				v = energy
			case MinimizeDelay:
				v = float64(int64(math.Round(cycles))) * tm.TCKNanos * 1e-9
			default:
				v = energy * (float64(int64(math.Round(cycles))) * tm.TCKNanos * 1e-9)
			}
			if v < out[pi].Value {
				out[pi].Value = v
				out[pi].Cost = LayerEDP{Cycles: cycles, Energy: energy}
				out[pi].TilingIndex = ti
			}
			i++
		}
	}
	return out
}

// PriceFlat is PriceFlatInto with a fresh result buffer.
func (ev *Evaluator) PriceFlat(fc *FlatColumn, obj Objective) []CellResult {
	return ev.PriceFlatInto(fc, obj, nil)
}

// MinOverFlatColumn reprices one policy of a flat plan and returns the
// minimum-EDP tiling index and its cost, exactly as MinOverColumn scans
// the struct plan: first strict EDP minimum wins, no finite tiling
// returns index -1 and an infinite cost.
func (ev *Evaluator) MinOverFlatColumn(fc *FlatColumn, policyIdx int) (int, LayerEDP) {
	tm := ev.Timing()
	best := LayerEDP{Cycles: math.Inf(1), Energy: math.Inf(1)}
	bestEDP := math.Inf(1)
	bestTiling := -1
	read, write := costsVec(ev.Costs), costsVec(ev.WriteCosts)
	useWrite := ev.UseWriteCosts
	tilings := fc.Tilings()
	for ti := 0; ti < tilings; ti++ {
		e := fc.priceFlat(ti*fc.Policies+policyIdx, useWrite, read, write)
		if edp := e.EDP(tm); edp < bestEDP {
			bestEDP = edp
			best = e
			bestTiling = ti
		}
	}
	return bestTiling, best
}
