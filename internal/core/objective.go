package core

import (
	"fmt"

	"drmap/internal/dram"
)

// Objective selects the scalar the DSE minimizes. The paper optimizes
// EDP (Eq. 1); energy-only and delay-only objectives are provided for
// the objective ablation - they confirm that DRMap's win does not hinge
// on the EDP formulation.
type Objective int

const (
	// MinimizeEDP minimizes energy x delay, the paper's Eq. 1.
	MinimizeEDP Objective = iota
	// MinimizeEnergy minimizes DRAM access energy alone.
	MinimizeEnergy
	// MinimizeDelay minimizes DRAM access latency alone.
	MinimizeDelay
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MinimizeEDP:
		return "min-EDP"
	case MinimizeEnergy:
		return "min-energy"
	case MinimizeDelay:
		return "min-delay"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Value maps a layer cost onto the objective's scalar.
func (o Objective) Value(e LayerEDP, tm dram.Timing) float64 {
	switch o {
	case MinimizeEnergy:
		return e.Energy
	case MinimizeDelay:
		return e.Seconds(tm)
	default:
		return e.EDP(tm)
	}
}

// Objectives lists all supported objectives.
var Objectives = []Objective{MinimizeEDP, MinimizeEnergy, MinimizeDelay}
