package drmap_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"drmap"
)

// Characterization is deterministic and moderately expensive, so tests
// and benchmarks share one evaluator set.
var (
	facadeOnce sync.Once
	facadeEvs  []*drmap.Evaluator
	facadeErr  error
)

func getEvaluators() ([]*drmap.Evaluator, error) {
	facadeOnce.Do(func() {
		facadeEvs, facadeErr = drmap.Evaluators(drmap.TableII(), 1)
	})
	return facadeEvs, facadeErr
}

func facadeEvaluators(t *testing.T) []*drmap.Evaluator {
	t.Helper()
	evs, err := getEvaluators()
	if err != nil {
		t.Fatalf("Evaluators: %v", err)
	}
	return evs
}

func TestFacadePresets(t *testing.T) {
	if got := len(drmap.Archs()); got != 4 {
		t.Fatalf("Archs() returned %d, want 4", got)
	}
	for _, a := range drmap.Archs() {
		cfg := drmap.ConfigFor(a)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v preset invalid: %v", a, err)
		}
	}
	if drmap.DDR3Config().Arch != drmap.DDR3 {
		t.Error("DDR3Config arch mismatch")
	}
	if drmap.SALPMASAConfig().Arch != drmap.SALPMASA {
		t.Error("SALPMASAConfig arch mismatch")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	for _, net := range []drmap.Network{drmap.AlexNet(), drmap.VGG16(), drmap.LeNet5(), drmap.ResNet18()} {
		if err := net.Validate(); err != nil {
			t.Errorf("%s: %v", net.Name, err)
		}
	}
	if len(drmap.Schedules()) != 4 {
		t.Error("expected 4 schedules")
	}
	if len(drmap.TableIPolicies()) != 6 {
		t.Error("expected 6 Table I policies")
	}
	if drmap.DRMapPolicy().ID != 3 {
		t.Error("DRMapPolicy is not Mapping-3")
	}
}

func TestFacadeQuickstartFlow(t *testing.T) {
	// The README quick-start must work end to end on a small network.
	evs := facadeEvaluators(t)
	res, err := drmap.RunDSE(drmap.LeNet5(), evs[0], drmap.Schedules(), drmap.TableIPolicies())
	if err != nil {
		t.Fatalf("RunDSE: %v", err)
	}
	out := drmap.RenderDSE(res)
	if !strings.Contains(out, "Mapping-3") {
		t.Errorf("DSE table does not pick DRMap:\n%s", out)
	}
}

func TestFacadeSimulatorAndEnergyModel(t *testing.T) {
	ctrl, err := drmap.NewController(drmap.DDR3Config(), drmap.ControllerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addrs := drmap.DRMapPolicy().Addresses(512, drmap.DDR3Config().Geometry)
	reqs := make([]drmap.Request, len(addrs))
	for i, a := range addrs {
		reqs[i] = drmap.Request{Addr: a}
	}
	sim, err := ctrl.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if sim.TotalCycles <= 0 {
		t.Fatal("simulation produced no cycles")
	}
	model, err := drmap.NewEnergyModel(drmap.DDR3Config())
	if err != nil {
		t.Fatal(err)
	}
	if e := model.ActEnergy(); e <= 0 {
		t.Errorf("ActEnergy = %g", e)
	}
}

func TestFacadeRenderers(t *testing.T) {
	evs := facadeEvaluators(t)
	pts, err := drmap.Fig9Series(drmap.LeNet5(), drmap.AdaptiveReuse, evs, drmap.TableIPolicies())
	if err != nil {
		t.Fatal(err)
	}
	if s := drmap.RenderTableI(); !strings.Contains(s, "column, bank, subarray, row") {
		t.Errorf("RenderTableI missing DRMap order:\n%s", s)
	}
	if s := drmap.RenderImprovements(pts); !strings.Contains(s, "DDR3") {
		t.Errorf("RenderImprovements malformed:\n%s", s)
	}
	if s := drmap.RenderSALPGains(pts); !strings.Contains(s, "SALP-MASA") {
		t.Errorf("RenderSALPGains malformed:\n%s", s)
	}
	if s := drmap.RenderFig9(pts, "adaptive-reuse"); !strings.Contains(s, "Total") {
		t.Errorf("RenderFig9 malformed:\n%s", s)
	}
	imp, err := drmap.DRMapImprovement(pts, drmap.DDR3)
	if err != nil {
		t.Fatal(err)
	}
	if imp <= 0 {
		t.Errorf("DRMap improvement on LeNet-5 = %g, want positive", imp)
	}
	gain, err := drmap.SALPImprovement(pts, 2, drmap.SALPMASA)
	if err != nil {
		t.Fatal(err)
	}
	if gain <= 0 {
		t.Errorf("MASA gain for Mapping-2 = %g, want positive", gain)
	}
}

func TestFacadeTrafficHelpers(t *testing.T) {
	l := drmap.AlexNet().Layers[1]
	tilings := drmap.EnumerateTilings(l, drmap.TableII())
	if len(tilings) == 0 {
		t.Fatal("no tilings enumerated")
	}
	tr := drmap.EstimateTraffic(l, tilings[len(tilings)/2], drmap.AdaptiveReuse, 1)
	if tr.TotalElems() <= 0 {
		t.Error("traffic estimate is zero")
	}
}

func TestFacadeObjectives(t *testing.T) {
	evs := facadeEvaluators(t)
	for _, obj := range []drmap.Objective{drmap.MinimizeEDP, drmap.MinimizeEnergy, drmap.MinimizeDelay} {
		res, err := drmap.RunDSEObjective(drmap.LeNet5(), evs[0], drmap.Schedules(),
			drmap.TableIPolicies(), obj)
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		if res.TotalEDP() <= 0 {
			t.Errorf("%v: degenerate total EDP", obj)
		}
	}
}

func TestFacadeSimulateLayer(t *testing.T) {
	spec := drmap.LayerSpec{
		Layer:    drmap.LeNet5().Layers[1],
		Tiling:   drmap.Tiling{Th: 10, Tw: 10, Tj: 16, Ti: 6},
		Schedule: drmap.OfmsReuse,
		Batch:    1,
	}
	cost, err := drmap.SimulateLayer(drmap.DDR3Config(), drmap.DRMapPolicy(), spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Cycles <= 0 || cost.Energy <= 0 {
		t.Errorf("degenerate simulated cost %+v", cost)
	}
}

func TestFacadeMultiChannelPlacements(t *testing.T) {
	g := drmap.DDR3Config().Geometry
	g.Channels = 2
	inter := drmap.ChannelInterleavedAddresses(drmap.DRMapPolicy(), 64, g)
	if len(inter) != 64 {
		t.Fatalf("interleaved: %d addresses", len(inter))
	}
	for i, a := range inter {
		if a.Channel != i%2 {
			t.Fatalf("address %d on channel %d", i, a.Channel)
		}
	}
	spill := drmap.RankSpillAddresses(drmap.DRMapPolicy(), 64, g)
	for i, a := range spill {
		if a.Channel != 0 {
			t.Fatalf("rank-spill address %d left channel 0", i)
		}
	}
}

func TestFacadeFig9Chart(t *testing.T) {
	evs := facadeEvaluators(t)
	pts, err := drmap.Fig9Series(drmap.LeNet5(), drmap.AdaptiveReuse, evs, drmap.TableIPolicies())
	if err != nil {
		t.Fatal(err)
	}
	chart := drmap.RenderFig9Chart(pts, "adaptive-reuse")
	if !strings.Contains(chart, "#") || !strings.Contains(chart, "DRMap") {
		t.Errorf("chart malformed:\n%s", chart)
	}
}

func TestFacadeCharacterize(t *testing.T) {
	p, err := drmap.Characterize(drmap.SALP1Config())
	if err != nil {
		t.Fatal(err)
	}
	if p.Arch != drmap.SALP1 {
		t.Errorf("profile arch = %v", p.Arch)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("profile shape: %v", err)
	}
	if s := drmap.RenderFig1([]*drmap.Profile{p}); !strings.Contains(s, "SALP-1") {
		t.Errorf("RenderFig1 malformed:\n%s", s)
	}
}

func TestFacadeParallelDSEAndJSON(t *testing.T) {
	evs := facadeEvaluators(t)
	ev := evs[0]
	serial, err := drmap.RunDSE(drmap.LeNet5(), ev, drmap.Schedules(), drmap.TableIPolicies())
	if err != nil {
		t.Fatal(err)
	}
	par, err := drmap.ParallelDSE(context.Background(), drmap.LeNet5(), ev, drmap.Schedules(), drmap.TableIPolicies(), 4)
	if err != nil {
		t.Fatalf("ParallelDSE: %v", err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Error("facade ParallelDSE diverged from RunDSE")
	}
	js := drmap.DSEJSON(par, ev.Timing())
	if len(js.Layers) != len(par.Layers) || js.TotalEDPJs != par.TotalEDP() {
		t.Errorf("DSEJSON mismatch: %+v", js)
	}
	enc, err := drmap.EncodeJSON(js)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(enc, "\"total_edp_js\"") {
		t.Errorf("encoded DSE missing totals:\n%s", enc)
	}
	if got := len(drmap.TableIJSON()); got != 6 {
		t.Errorf("TableIJSON has %d policies", got)
	}
}

func TestFacadeParallelCharacterizeAll(t *testing.T) {
	profiles, err := drmap.ParallelCharacterizeAll(context.Background(), 4)
	if err != nil {
		t.Fatalf("ParallelCharacterizeAll: %v", err)
	}
	backends := drmap.Backends()
	if len(profiles) != len(backends) {
		t.Fatalf("got %d profiles, want %d (one per registered backend)", len(profiles), len(backends))
	}
	for i, p := range profiles {
		if p.Backend.ID != backends[i].ID {
			t.Errorf("profile %d is %q, want %q", i, p.Backend.ID, backends[i].ID)
		}
	}
	// Backends() is ID-sorted, so the profiles are too, and every paper
	// architecture is present under its registered ID.
	byID := map[string]*drmap.Profile{}
	for i, p := range profiles {
		byID[p.Backend.ID] = p
		if i > 0 && !(profiles[i-1].Backend.ID < p.Backend.ID) {
			t.Errorf("profiles out of ID order: %q before %q", profiles[i-1].Backend.ID, p.Backend.ID)
		}
	}
	for i, id := range []string{"ddr3", "salp1", "salp2", "masa"} {
		p, ok := byID[id]
		if !ok {
			t.Errorf("paper backend %q has no profile", id)
			continue
		}
		if p.Arch != drmap.Archs()[i] {
			t.Errorf("profile %q is %v, want %v", id, p.Arch, drmap.Archs()[i])
		}
	}
	if got := len(drmap.Fig1JSON(profiles)); got != len(profiles) {
		t.Errorf("Fig1JSON has %d entries", got)
	}
}

func TestFacadeService(t *testing.T) {
	svc := drmap.NewService(drmap.ServiceOptions{Workers: 2, CacheEntries: 4})
	resp, err := svc.DSE(context.Background(), drmap.DSERequest{Arch: "ddr3", Network: "lenet5"})
	if err != nil {
		t.Fatalf("service DSE: %v", err)
	}
	if resp.Result.TotalEDPJs <= 0 {
		t.Error("service DSE returned degenerate EDP")
	}
	if again, err := svc.DSE(context.Background(), drmap.DSERequest{Arch: "ddr3", Network: "lenet5"}); err != nil || !again.Cached {
		t.Errorf("repeat service DSE: cached=%v err=%v", again != nil && again.Cached, err)
	}
}

// TestFacadeCluster exercises the distributed-serving exports: a
// coordinator with an empty membership reports ErrNoWorkers, a service
// wired to it still answers (local fallback), and a registered facade
// worker turns a batch into distributed shards.
func TestFacadeCluster(t *testing.T) {
	coord := drmap.NewClusterCoordinator(drmap.ClusterCoordinatorOptions{})
	svc := drmap.NewService(drmap.ServiceOptions{Workers: 2, CacheEntries: 8, Runner: coord})
	resp, err := svc.Batch(context.Background(), drmap.BatchRequest{Jobs: []drmap.DSERequest{
		{Arch: "ddr3", Network: "lenet5"},
		{Arch: "masa", Network: "lenet5"},
	}})
	if err != nil {
		t.Fatalf("Batch with no workers: %v", err)
	}
	if resp.Completed != 2 || resp.Failed != 0 {
		t.Fatalf("batch completed=%d failed=%d, want 2/0", resp.Completed, resp.Failed)
	}

	worker := drmap.NewClusterWorker(drmap.NewService(drmap.ServiceOptions{Workers: 2, CacheEntries: 8}), drmap.ClusterWorkerOptions{ID: "facade-w"})
	mux := http.NewServeMux()
	worker.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	coord.Membership().Heartbeat(drmap.ClusterWorkerInfo{ID: worker.ID(), URL: ts.URL, Capacity: 2})

	again, err := svc.Batch(context.Background(), drmap.BatchRequest{Jobs: []drmap.DSERequest{
		{Arch: "salp1", Network: "lenet5"},
		{Arch: "ddr4", Network: "lenet5"},
	}})
	if err != nil {
		t.Fatalf("Batch with a worker: %v", err)
	}
	if again.Completed != 2 {
		t.Fatalf("distributed batch completed=%d, want 2", again.Completed)
	}
	if worker.ShardsServed() == 0 {
		t.Error("facade worker served no shards")
	}
}
