package main

import (
	"regexp"
	"strings"
	"testing"
)

const jsonStream = `{"Action":"output","Output":"goos: linux\n"}
{"Action":"output","Output":"BenchmarkBatchMultiBackend/warm-8   \t     100\t  25000000 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Output":"BenchmarkBatchMultiBackend/warm-8   \t     100\t  21000000 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Output":"BenchmarkBatchMultiBackend/recount-8\t      10\t 188000000 ns/op\n"}
{"Action":"run","Test":"BenchmarkRepriceFlat"}
{"Action":"output","Output":"BenchmarkRepriceFlat/flat-8\t   50000\t     25321.5 ns/op\n"}
`

func TestParseBenchJSONStream(t *testing.T) {
	got, err := parseBench(strings.NewReader(jsonStream))
	if err != nil {
		t.Fatal(err)
	}
	// Minimum across repetitions, full sub-benchmark names, fractional
	// ns/op accepted.
	want := map[string]float64{
		"BenchmarkBatchMultiBackend/warm-8":    21000000,
		"BenchmarkBatchMultiBackend/recount-8": 188000000,
		"BenchmarkRepriceFlat/flat-8":          25321.5,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestParseBenchSplitEvents(t *testing.T) {
	// The runner flushes the benchmark name when the benchmark starts
	// and the numbers when it finishes, so test2json delivers one
	// result as two output events; the parser must reassemble them.
	split := `{"Action":"output","Output":"BenchmarkRegistrySweep/delta-8         \t"}
{"Action":"output","Output":"       1\t  26901691 ns/op\t 9297712 B/op\t   21306 allocs/op\n"}
{"Action":"output","Output":"BenchmarkRegistrySweep/delta-8         \t"}
{"Action":"run","Test":"noise"}
{"Action":"output","Output":"       1\t  27483031 ns/op\n"}
`
	got, err := parseBench(strings.NewReader(split))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkRegistrySweep/delta-8"] != 26901691 {
		t.Errorf("split-event parse: %v", got)
	}
}

func TestParseBenchPlainText(t *testing.T) {
	got, err := parseBench(strings.NewReader(
		"BenchmarkX-4   1000   500 ns/op\nok  \tdrmap\t1.0s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX-4"] != 500 {
		t.Errorf("plain text parse: %v", got)
	}
}

func TestGuardVerdicts(t *testing.T) {
	baseline := map[string]float64{"BenchmarkA-8": 100, "BenchmarkB-8": 100}
	pat := regexp.MustCompile("BenchmarkA")

	var rep strings.Builder
	if f := guard(baseline, map[string]float64{"BenchmarkA-8": 150}, pat, 2.0, &rep); f != 0 {
		t.Errorf("1.5x under a 2.0 cap failed: %s", rep.String())
	}
	rep.Reset()
	if f := guard(baseline, map[string]float64{"BenchmarkA-8": 250}, pat, 2.0, &rep); f != 1 {
		t.Errorf("2.5x under a 2.0 cap passed: %s", rep.String())
	}
	if !strings.Contains(rep.String(), "REGRESSION") {
		t.Errorf("report does not name the regression: %s", rep.String())
	}
	// A benchmark with no baseline passes (nothing to regress against)...
	rep.Reset()
	if f := guard(map[string]float64{}, map[string]float64{"BenchmarkA-8": 250}, pat, 2.0, &rep); f != 0 {
		t.Errorf("missing baseline failed the gate: %s", rep.String())
	}
	// ...but a pattern matching nothing current fails loudly (the gate
	// must not silently pass when the benchmark was renamed away).
	rep.Reset()
	if f := guard(baseline, map[string]float64{"BenchmarkB-8": 10}, pat, 2.0, &rep); f == 0 {
		t.Error("pattern matching no current benchmark passed")
	}
}
